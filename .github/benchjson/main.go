// Command benchjson converts `go test -bench` output files into one JSON
// array for artifact upload: each benchmark line becomes an object with the
// name, iterations, and every reported metric (ns/op, B/op, allocs/op, and
// any custom ones).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var out []result
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if !strings.HasPrefix(line, "Benchmark") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) < 4 {
				continue
			}
			iters, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			r := result{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
			// Remaining fields come in (value, unit) pairs.
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				r.Metrics[fields[i+1]] = v
			}
			out = append(out, r)
		}
		f.Close()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
