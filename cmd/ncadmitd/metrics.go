package main

import (
	"net/http"
	"sync"

	"streamcalc/internal/admit"
	"streamcalc/internal/obs"
)

// tightnessProbe publishes bound-vs-observed gauges for every admitted flow:
// the analytic delay/backlog bound next to the sim-replayed p50/p99/max, and
// their ratio (nc_bound_tightness, ≥ 1 when the network-calculus promise is
// sound). Replays are cached per (flow, platform epoch) so a scrape after a
// quiet period costs nothing; an admission or release bumps the epoch and the
// next scrape re-replays the flows that remain.
type tightnessProbe struct {
	c   *admit.Controller
	opt admit.ReplayOptions

	mu    sync.Mutex
	cache map[string]tightEntry
}

type tightEntry struct {
	epoch uint64
	t     admit.Tightness
	err   error
}

func newTightnessProbe(c *admit.Controller, opt admit.ReplayOptions) *tightnessProbe {
	return &tightnessProbe{c: c, opt: opt, cache: make(map[string]tightEntry)}
}

// tightnessFamilies are reset on every scrape so released flows' series
// disappear instead of lingering at their last value.
var tightnessFamilies = []string{
	"nc_bound_tightness",
	"nc_bound_delay_seconds",
	"nc_sim_delay_seconds",
	"nc_bound_backlog_bytes",
	"nc_sim_backlog_bytes",
}

// tightnessMaxFlows caps the per-flow replay fan-out: beyond this many
// registered flows a scrape would spend seconds simulating (and the
// per-flow series would blow up cardinality anyway), so the probe
// publishes only nc_tightness_skipped_flows and bails.
const tightnessMaxFlows = 512

// collect runs at scrape time as an obs.Registry collector.
func (p *tightnessProbe) collect(r *obs.Registry) {
	for _, fam := range tightnessFamilies {
		r.ResetFamily(fam)
	}
	if n := p.c.FlowCount(); n > tightnessMaxFlows {
		r.Gauge("nc_tightness_skipped_flows",
			"flows not replayed because the registry exceeds the tightness probe cap").
			Set(float64(n))
		return
	}
	r.Gauge("nc_tightness_skipped_flows",
		"flows not replayed because the registry exceeds the tightness probe cap").
		Set(0)
	epoch := p.c.Epoch()
	live := make(map[string]bool)
	capped := 0
	for _, af := range p.c.Flows() {
		id := af.Flow.ID
		live[id] = true

		p.mu.Lock()
		e, ok := p.cache[id]
		p.mu.Unlock()
		if !ok || e.epoch != epoch {
			t, err := p.c.Tightness(id, p.opt)
			e = tightEntry{epoch: epoch, t: t, err: err}
			p.mu.Lock()
			p.cache[id] = e
			p.mu.Unlock()
		}
		if e.err != nil {
			// The flow was released mid-scrape (or the replay failed);
			// skip its series this round.
			continue
		}

		fl := obs.Label{Key: "flow", Value: id}
		if e.t.Capped {
			// The replay hit its event cap: the observed maxima cover only a
			// prefix of the run, so the bound-over-observed ratios would read
			// as slack that was never verified. Publish the raw bound/sim
			// gauges below, but withhold the tightness ratios and count the
			// flow as capped instead.
			capped++
		} else {
			dim := func(d string) []obs.Label {
				return []obs.Label{fl, {Key: "dimension", Value: d},
					{Key: "rung", Value: e.t.Rung}}
			}
			r.Gauge("nc_bound_tightness",
				"analytic bound over sim-observed max (>= 1 means the promise held)",
				dim("delay")...).Set(e.t.DelayTightness)
			r.Gauge("nc_bound_tightness",
				"analytic bound over sim-observed max (>= 1 means the promise held)",
				dim("backlog")...).Set(e.t.BacklogTightness)
		}

		r.Gauge("nc_bound_delay_seconds", "analytic end-to-end delay bound", fl).
			Set(e.t.DelayBound.Seconds())
		q := func(name string) []obs.Label {
			return []obs.Label{fl, {Key: "quantile", Value: name}}
		}
		r.Gauge("nc_sim_delay_seconds", "sim-replayed sojourn quantiles", q("p50")...).
			Set(e.t.SimDelayP50.Seconds())
		r.Gauge("nc_sim_delay_seconds", "sim-replayed sojourn quantiles", q("p99")...).
			Set(e.t.SimDelayP99.Seconds())
		r.Gauge("nc_sim_delay_seconds", "sim-replayed sojourn quantiles", q("max")...).
			Set(e.t.SimDelayMax.Seconds())

		r.Gauge("nc_bound_backlog_bytes", "analytic end-to-end backlog bound", fl).
			Set(float64(e.t.BacklogBound))
		r.Gauge("nc_sim_backlog_bytes", "sim-replayed peak backlog", fl).
			Set(float64(e.t.SimBacklogMax))
	}
	r.Gauge("nc_tightness_capped_flows",
		"flows whose replay hit the event cap; their tightness ratios are withheld").
		Set(float64(capped))

	// Drop cache entries for flows that are gone.
	p.mu.Lock()
	for id := range p.cache {
		if !live[id] {
			delete(p.cache, id)
		}
	}
	p.mu.Unlock()
}

// metricsHandler serves the registry: Prometheus text exposition by default,
// the JSON snapshot with ?format=json.
func metricsHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	}
}
