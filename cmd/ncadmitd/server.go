package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/obs"
	"streamcalc/internal/spec"
	"streamcalc/internal/units"
)

// verdictJSON is the wire form of an admission verdict. Durations render as
// Go duration strings; rates and sizes use the units package text forms.
type verdictJSON struct {
	FlowID       string      `json:"flow_id"`
	Admitted     bool        `json:"admitted"`
	Reason       string      `json:"reason"`
	Binding      string      `json:"binding,omitempty"`
	Delay        string      `json:"delay,omitempty"`
	Backlog      units.Bytes `json:"backlog,omitempty"`
	Throughput   units.Rate  `json:"throughput,omitempty"`
	Bottleneck   string      `json:"bottleneck,omitempty"`
	HeadroomRate units.Rate  `json:"headroom_rate,omitempty"`
	Rung         string      `json:"rung,omitempty"`
	Epoch        uint64      `json:"epoch"`
	Cached       bool        `json:"cached,omitempty"`
}

func toVerdictJSON(v admit.Verdict) verdictJSON {
	out := verdictJSON{
		FlowID:   v.FlowID,
		Admitted: v.Admitted,
		Reason:   v.Reason,
		Binding:  v.Binding,
		Rung:     v.Rung,
		Epoch:    v.Epoch,
		Cached:   v.Cached,
	}
	if v.Admitted {
		out.Delay = v.Delay.String()
		out.Backlog = v.Backlog
		out.Throughput = v.Throughput
		out.Bottleneck = v.Bottleneck
		out.HeadroomRate = v.HeadroomRate
	}
	return out
}

// flowJSON is a registry listing entry.
type flowJSON struct {
	ID      string      `json:"id"`
	Path    []string    `json:"path"`
	Rate    units.Rate  `json:"rate"`
	Burst   units.Bytes `json:"burst"`
	Verdict verdictJSON `json:"verdict"`
}

// residualJSON is the wire form of a node residual report.
type residualJSON struct {
	Node    string     `json:"node"`
	Flows   []string   `json:"flows"`
	Cross   bucketJSON `json:"cross"`
	Rate    units.Rate `json:"rate"`
	Latency string     `json:"latency"`
	Starved bool       `json:"starved,omitempty"`
	Service units.Rate `json:"service_rate"`
}

type bucketJSON struct {
	Rate  units.Rate  `json:"rate"`
	Burst units.Bytes `json:"burst"`
}

// revalidateJSON is the wire form of a batch revalidation report.
type revalidateJSON struct {
	Epoch      uint64                 `json:"epoch"`
	Violations int                    `json:"violations"`
	Flows      []flowRevalidationJSON `json:"flows"`
}

type flowRevalidationJSON struct {
	FlowID        string      `json:"flow_id"`
	Delay         string      `json:"delay"`
	Backlog       units.Bytes `json:"backlog"`
	Throughput    units.Rate  `json:"throughput"`
	SimDelayMax   string      `json:"sim_delay_max"`
	SimMaxBacklog units.Bytes `json:"sim_max_backlog"`
	SimThroughput units.Rate  `json:"sim_throughput"`
	Violations    []string    `json:"violations,omitempty"`
}

// serverOptions tunes the HTTP surface beyond the core admission API.
type serverOptions struct {
	// pprof mounts net/http/pprof under /debug/pprof/ (off by default:
	// profiling endpoints leak heap contents and should only be exposed
	// deliberately).
	pprof bool
	// metrics, when non-nil, serves the registry on GET /metrics and
	// registers the bound-tightness collector on it.
	metrics *obs.Registry
	// replay tunes the tightness replay (input volume per flow, seed).
	replay admit.ReplayOptions
	// start is the process start time behind /healthz uptime_seconds (zero
	// hides the field — tests construct servers without one).
	start time.Time
}

// newServer wires the admission API onto a Go 1.22 pattern mux.
func newServer(c *admit.Controller, opt serverOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /admit", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		f, err := parseFlowBody(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		v := c.Admit(f)
		status := http.StatusOK
		if !v.Admitted {
			// The platform cannot host the flow as offered.
			status = http.StatusConflict
		}
		writeJSON(w, status, toVerdictJSON(v))
	})

	mux.HandleFunc("POST /admit/batch", func(w http.ResponseWriter, r *http.Request) {
		// Batch bodies carry whole populations; allow up to 64 MiB (a
		// million-flow ramp arrives as ~60 batches of 16k flows each).
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<26))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		wire, err := spec.ParseFlows(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		flows := make([]admit.Flow, len(wire))
		for i := range wire {
			if flows[i], err = wire[i].Admit(); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("flow %d: %w", i, err))
				return
			}
		}
		vs := c.AdmitBatch(flows)
		out := make([]verdictJSON, len(vs))
		for i, v := range vs {
			out[i] = toVerdictJSON(v)
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /flows/{id}/recheck", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		v, err := c.Recheck(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		status := http.StatusOK
		if !v.Admitted {
			status = http.StatusConflict
		}
		writeJSON(w, status, toVerdictJSON(v))
	})

	mux.HandleFunc("DELETE /flows/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !c.Release(id) {
			httpError(w, http.StatusNotFound, fmt.Errorf("no admitted flow %q", id))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /flows", func(w http.ResponseWriter, r *http.Request) {
		flows := c.Flows()
		out := make([]flowJSON, 0, len(flows))
		for _, af := range flows {
			out = append(out, flowJSON{
				ID:      af.Flow.ID,
				Path:    af.Flow.Path,
				Rate:    af.Flow.Arrival.Rate,
				Burst:   af.Flow.Arrival.Burst,
				Verdict: toVerdictJSON(af.Verdict),
			})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /nodes/{name}/residual", func(w http.ResponseWriter, r *http.Request) {
		res, err := c.ResidualService(r.PathValue("name"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, residualJSON{
			Node:    res.Node.Name,
			Flows:   res.Flows,
			Cross:   bucketJSON{Rate: res.Cross.Rate, Burst: res.Cross.Burst},
			Rate:    res.Rate,
			Latency: time.Duration(res.Curve.Latency() * float64(time.Second)).String(),
			Starved: res.Starved,
			Service: res.Node.Rate,
		})
	})

	mux.HandleFunc("POST /revalidate", func(w http.ResponseWriter, r *http.Request) {
		workers := 0 // GOMAXPROCS
		if q := r.URL.Query().Get("workers"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad workers %q", q))
				return
			}
			workers = n
		}
		rep, err := c.RevalidateAll(admit.RevalidateOptions{
			Replay:  opt.replay,
			Workers: workers,
			Context: r.Context(),
			Metrics: opt.metrics,
		})
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		out := revalidateJSON{Epoch: rep.Epoch, Violations: rep.Violations}
		for _, fr := range rep.Flows {
			out.Flows = append(out.Flows, flowRevalidationJSON{
				FlowID:        fr.FlowID,
				Delay:         fr.Delay.String(),
				Backlog:       fr.Backlog,
				Throughput:    fr.Throughput,
				SimDelayMax:   fr.SimDelayMax.String(),
				SimMaxBacklog: fr.SimMaxBacklog,
				SimThroughput: fr.SimThroughput,
				Violations:    fr.Violations,
			})
		}
		status := http.StatusOK
		if rep.Violations > 0 {
			status = http.StatusConflict
		}
		writeJSON(w, status, out)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Stats()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		// epoch is the coarse global commit counter; epoch_max and
		// epoch_distinct_nodes summarize the per-node modification epochs in
		// one O(nodes) pass (the epoch vector itself is on /metrics as
		// nc_node_epoch).
		health := map[string]any{
			"ok":                   true,
			"platform":             c.Name(),
			"epoch":                c.Epoch(),
			"epoch_max":            st.EpochMax,
			"epoch_distinct_nodes": st.EpochDistinctNode,
			"commit_conflicts":     st.CommitConflicts,
			"flows":                c.FlowCount(),
			"classes":              c.ClassCount(),
			"heap_alloc_bytes":     mem.HeapAlloc,
			"heap_sys_bytes":       mem.HeapSys,
			"caches": map[string]any{
				"verdict": map[string]any{
					"hits":     st.VerdictHits,
					"misses":   st.VerdictMisses,
					"entries":  st.VerdictEntries,
					"hit_rate": obs.HitRate(st.VerdictHits, st.VerdictMisses),
				},
				"analysis": map[string]any{
					"hits":     st.AnalysisHits,
					"misses":   st.AnalysisMisses,
					"entries":  st.AnalysisEntries,
					"hit_rate": obs.HitRate(st.AnalysisHits, st.AnalysisMisses),
				},
				"reservations": map[string]any{
					"entries": st.ReservationEntries,
				},
				"curve_ops": map[string]any{
					"hits":     st.CurveOps.Hits,
					"misses":   st.CurveOps.Misses,
					"entries":  st.CurveOps.Entries,
					"hit_rate": st.CurveOps.HitRate(),
				},
			},
		}
		// Liveness extras stay O(1): uptime is a clock read, the decision
		// rate is a fixed-size window sum, and recorder depth is one mutex.
		if !opt.start.IsZero() {
			health["uptime_seconds"] = time.Since(opt.start).Seconds()
		}
		health["decisions_per_second"] = c.DecisionRate()
		if rec := c.Recorder(); rec != nil {
			health["recorder"] = map[string]any{
				"depth": rec.Depth(),
				"cap":   rec.Cap(),
				"seq":   rec.Seq(),
			}
		}
		writeJSON(w, http.StatusOK, health)
	})

	// Flight recorder: the last N finished decisions, newest first. 404 when
	// the recorder is disabled (-decisions 0) so probes can distinguish
	// "off" from "empty".
	mux.HandleFunc("GET /debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		rec := c.Recorder()
		if rec == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("flight recorder disabled (-decisions 0)"))
			return
		}
		limit, err := decisionLimit(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		records := rec.Snapshot(limit)
		writeJSON(w, http.StatusOK, map[string]any{
			"depth":   rec.Depth(),
			"cap":     rec.Cap(),
			"seq":     rec.Seq(),
			"records": records,
		})
	})

	mux.HandleFunc("GET /debug/decisions/trace", func(w http.ResponseWriter, r *http.Request) {
		rec := c.Recorder()
		if rec == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("flight recorder disabled (-decisions 0)"))
			return
		}
		limit, err := decisionLimit(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rec.Trace(limit).WriteJSON(w)
	})

	if opt.metrics != nil {
		opt.metrics.AddCollector(newTightnessProbe(c, opt.replay).collect)
		mux.HandleFunc("GET /metrics", metricsHandler(opt.metrics))
	}

	if opt.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	return mux
}

// decisionLimit parses the ?n= record limit (0 = all retained).
func decisionLimit(r *http.Request) (int, error) {
	q := r.URL.Query().Get("n")
	if q == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad n %q", q)
	}
	return n, nil
}

// parseFlowBody decodes a wire flow and converts it to the controller type.
func parseFlowBody(body []byte) (admit.Flow, error) {
	fl, err := spec.ParseFlow(body)
	if err != nil {
		return admit.Flow{}, err
	}
	return fl.Admit()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
