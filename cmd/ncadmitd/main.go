// Command ncadmitd serves online flow admission control over a shared
// platform described in JSON. Tenants POST flows (arrival envelope, node
// path, SLO) and get verdicts with explanations; the daemon tracks admitted
// flows and per-node residual service.
//
// Usage:
//
//	ncadmitd -platform platform.json [-addr :8080] [-rung blind|fifo|tight]
//	ncadmitd -platform platform.json -validate trace.json [-simtotal total] [-seed n]
//	ncadmitd -example > platform.json
//	ncadmitd -example-trace > trace.json
//
// API:
//
//	POST   /admit                  submit a flow (spec.Flow JSON) for admission
//	POST   /admit/batch            submit a flow array transactionally; returns
//	                               a verdict array in input order
//	DELETE /flows/{id}             release an admitted flow
//	GET    /flows                  list admitted flows with their verdicts
//	GET    /flows/{id}/recheck     re-run the analytic SLO check for one flow
//	                               at the current platform state (409 when the
//	                               promise no longer holds)
//	GET    /nodes/{name}/residual  a node's residual service after reservations
//	POST   /revalidate             re-check every admitted flow by sim replay at
//	                               its current residual service, fanned across a
//	                               worker pool (?workers=N, default GOMAXPROCS);
//	                               409 when any bound or SLO is violated
//	GET    /healthz                liveness, platform epoch, uptime, decision
//	                               rate, cache/memo hit rates
//	GET    /metrics                Prometheus text metrics (?format=json for JSON),
//	                               including per-flow bound-tightness gauges
//	GET    /debug/decisions        flight recorder: the last N admission
//	                               decisions with per-phase latency breakdowns
//	                               (?n= limits; -decisions sizes the ring)
//	GET    /debug/decisions/trace  the same decisions as a Chrome trace_event
//	                               timeline (open in chrome://tracing or Perfetto)
//
// Every admission decision and release is audited as a structured log line
// on stderr (disable with -audit=false). With -pprof the net/http/pprof
// profiling handlers are mounted under /debug/pprof/ on the same listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/core"
	"streamcalc/internal/obs"
	"streamcalc/internal/spec"
	"streamcalc/internal/units"
)

func main() {
	var (
		platformPath = flag.String("platform", "", "path to the platform JSON description")
		addr         = flag.String("addr", ":8080", "listen address")
		validate     = flag.String("validate", "", "replay this admitted-flow trace through the simulator and exit")
		simTotal     = flag.String("simtotal", "8 MiB", "input volume per simulated flow in -validate mode")
		seed         = flag.Uint64("seed", 1, "simulation seed (-validate replay and /metrics tightness replay)")
		tightTotal   = flag.String("tightness-total", "1 MiB", "input volume per flow for the /metrics bound-tightness replay")
		rungFlag     = flag.String("rung", "", "default analysis tightness rung: blind, fifo or tight (overrides the platform's \"rung\" field; a flow's own \"rung\" overrides both)")
		audit        = flag.Bool("audit", true, "log every admission decision and release as a structured line on stderr")
		example      = flag.Bool("example", false, "print a sample platform and exit")
		exampleTr    = flag.Bool("example-trace", false, "print a sample trace and exit")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		nodeMetrics  = flag.Bool("node-metrics", false, "export per-node gauges on /metrics (one series per node per family; unbounded cardinality on large platforms)")
		decisions    = flag.Int("decisions", 1024, "flight-recorder depth: retain the last N admission decisions on /debug/decisions (0 disables)")
		sloObjective = flag.Duration("slo", 100*time.Millisecond, "decision-latency objective for the SLO burn-rate instruments")
		sloBudget    = flag.Float64("slo-budget", 0.01, "tolerated slow-decision fraction the SLO burn-rate gauge normalizes against")
	)
	flag.Parse()

	if *example {
		fmt.Println(spec.ExamplePlatform())
		return
	}
	if *exampleTr {
		fmt.Println(spec.ExampleTrace())
		return
	}
	if *platformPath == "" {
		fmt.Fprintln(os.Stderr, "ncadmitd: -platform is required (see -example)")
		os.Exit(2)
	}
	data, err := os.ReadFile(*platformPath)
	if err != nil {
		fail(err)
	}
	pl, err := spec.ParsePlatform(data)
	if err != nil {
		fail(err)
	}
	c, err := pl.Controller()
	if err != nil {
		fail(err)
	}
	if *rungFlag != "" {
		r, err := core.ParseRung(*rungFlag)
		if err != nil {
			fail(err)
		}
		c.SetRung(r)
	}

	if *validate != "" {
		if err := runValidate(c, *validate, *simTotal, *seed); err != nil {
			fail(err)
		}
		return
	}

	reg := obs.NewRegistry()
	c.EnableObsOpts(reg, admit.ObsOptions{
		PerNodeMetrics: *nodeMetrics,
		SLOObjective:   *sloObjective,
		SLOBudget:      *sloBudget,
	})
	if *decisions > 0 {
		c.EnableFlightRecorder(*decisions)
	}
	if *audit {
		c.SetAudit(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	tt, err := units.ParseBytes(*tightTotal)
	if err != nil {
		fail(fmt.Errorf("tightness-total: %w", err))
	}
	srv := newServer(c, serverOptions{
		pprof:   *pprofOn,
		metrics: reg,
		replay:  admit.ReplayOptions{Total: tt, Seed: *seed},
		start:   time.Now(),
	})

	fmt.Printf("ncadmitd: platform %q (%d nodes), listening on %s\n",
		c.Name(), len(c.NodeNames()), *addr)
	if err := serve(*addr, srv); err != nil {
		fail(err)
	}
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains in-flight
// requests (bounded) before returning. ReadHeaderTimeout guards against
// slow-header connection exhaustion.
func serve(addr string, h http.Handler) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintln(os.Stderr, "ncadmitd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// runValidate replays a trace through the controller, simulating every
// admitted flow at the residual service and asserting the promised bounds.
// It exits non-zero when any promise is violated.
func runValidate(c *admit.Controller, tracePath, simTotal string, seed uint64) error {
	data, err := os.ReadFile(tracePath)
	if err != nil {
		return err
	}
	wire, err := spec.ParseTrace(data)
	if err != nil {
		return err
	}
	ops, err := spec.TraceOps(wire)
	if err != nil {
		return err
	}
	total, err := units.ParseBytes(simTotal)
	if err != nil {
		return fmt.Errorf("simtotal: %w", err)
	}
	rep, err := admit.Replay(c, ops, admit.ReplayOptions{Total: total, Seed: seed})
	if err != nil {
		return err
	}

	fmt.Printf("validate: platform %q, %d trace ops (%s input per flow, seed %d)\n",
		c.Name(), len(rep.Steps), total, seed)
	for _, s := range rep.Steps {
		switch {
		case s.Op == "release":
			fmt.Printf("  [%2d] release %-8s\n", s.Index, s.FlowID)
		case s.Verdict.Admitted:
			fmt.Printf("  [%2d] admit   %-8s ok    promised delay %v backlog %v; simulated delay %v backlog %v throughput %v\n",
				s.Index, s.FlowID, s.Verdict.Delay, s.Verdict.Backlog,
				s.SimDelayMax, s.SimMaxBacklog, s.SimThroughput)
		default:
			fmt.Printf("  [%2d] admit   %-8s REJECTED (%s)\n", s.Index, s.FlowID, s.Verdict.Binding)
		}
		for _, v := range s.Violations {
			fmt.Printf("       VIOLATION: %s\n", v)
		}
	}
	fmt.Printf("validate: %d admitted, %d rejected, %d violations\n",
		rep.Admitted, rep.Rejected, rep.Violations)
	if rep.Violations > 0 {
		return fmt.Errorf("%d promised bounds violated in simulation", rep.Violations)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ncadmitd:", err)
	os.Exit(1)
}
