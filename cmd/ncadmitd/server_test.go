package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/curve"
	"streamcalc/internal/obs"
	"streamcalc/internal/spec"
	"streamcalc/internal/units"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	pl, err := spec.ParsePlatform([]byte(spec.ExamplePlatform()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := pl.Controller()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(c, serverOptions{}))
	t.Cleanup(ts.Close)
	return ts
}

// metricsServer is testServer plus a wired telemetry registry, so /metrics
// is live with the bound-tightness collector.
func metricsServer(t *testing.T) *httptest.Server {
	t.Helper()
	pl, err := spec.ParsePlatform([]byte(spec.ExamplePlatform()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := pl.Controller()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.EnableObsOpts(reg, admit.ObsOptions{PerNodeMetrics: true})
	c.EnableFlightRecorder(256)
	defer curve.SetOpTimer(nil)
	ts := httptest.NewServer(newServer(c, serverOptions{
		metrics: reg,
		replay:  admit.ReplayOptions{Total: 512 * units.KiB, Seed: 1},
		start:   time.Now(),
	}))
	t.Cleanup(ts.Close)
	return ts
}

func flowBody(id, rate string) string {
	return `{"id": "` + id + `",
		"arrival": {"rate": "` + rate + `", "burst": "64 KiB", "max_packet": "4 KiB"},
		"path": ["ingest", "encrypt", "uplink"],
		"slo": {"max_delay": "200ms", "min_throughput": "` + rate + `"}}`
}

func postAdmit(t *testing.T, ts *httptest.Server, body string) (*http.Response, verdictJSON) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/admit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v verdictJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding verdict: %v", err)
	}
	return resp, v
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode
}

func TestAPIAdmitLifecycle(t *testing.T) {
	ts := testServer(t)

	// Admit two tenants.
	resp, v := postAdmit(t, ts, flowBody("cam-1", "10 MiB/s"))
	if resp.StatusCode != http.StatusOK || !v.Admitted {
		t.Fatalf("cam-1: status %d, verdict %+v", resp.StatusCode, v)
	}
	if v.Delay == "" || v.Bottleneck != "encrypt" {
		t.Errorf("verdict lacks explanation: %+v", v)
	}
	resp, v = postAdmit(t, ts, flowBody("cam-2", "15 MiB/s"))
	if resp.StatusCode != http.StatusOK || !v.Admitted {
		t.Fatalf("cam-2: status %d, verdict %+v", resp.StatusCode, v)
	}

	// The residual on the bottleneck shrank by the admitted rates.
	var res residualJSON
	if code := getJSON(t, ts, "/nodes/encrypt/residual", &res); code != http.StatusOK {
		t.Fatalf("residual: status %d", code)
	}
	if len(res.Flows) != 2 {
		t.Errorf("residual flows = %v", res.Flows)
	}
	if res.Rate >= res.Service {
		t.Errorf("residual rate %v not below service rate %v", res.Rate, res.Service)
	}

	// A hog is rejected with 409 and an explanation.
	resp, v = postAdmit(t, ts, flowBody("hog", "400 MiB/s"))
	if resp.StatusCode != http.StatusConflict || v.Admitted {
		t.Fatalf("hog: status %d, verdict %+v", resp.StatusCode, v)
	}
	if v.Binding == "" || !strings.Contains(v.Reason, "rejected") {
		t.Errorf("rejection lacks explanation: %+v", v)
	}

	// Registry listing.
	var flows []flowJSON
	if code := getJSON(t, ts, "/flows", &flows); code != http.StatusOK || len(flows) != 2 {
		t.Fatalf("flows: status %d, %d entries", code, len(flows))
	}

	// Release and re-query.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/flows/cam-1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if code := getJSON(t, ts, "/flows", &flows); code != http.StatusOK || len(flows) != 1 {
		t.Fatalf("flows after release: status %d, %d entries", code, len(flows))
	}

	// Unknown deletions 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/flows/ghost", nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("ghost delete: status %d", dresp.StatusCode)
	}
}

func TestAPIBadRequests(t *testing.T) {
	ts := testServer(t)

	resp, err := http.Post(ts.URL+"/admit", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}

	var res residualJSON
	if code := getJSON(t, ts, "/nodes/gpu/residual", &res); code != http.StatusNotFound {
		t.Errorf("unknown node: status %d", code)
	}
}

func TestAPIHealthz(t *testing.T) {
	ts := testServer(t)

	// Exercise the caches: a repeated probe should register a verdict hit.
	postAdmit(t, ts, flowBody("hog", "400 MiB/s"))
	postAdmit(t, ts, flowBody("hog", "400 MiB/s"))

	var h struct {
		OK       bool   `json:"ok"`
		Platform string `json:"platform"`
		Epoch    uint64 `json:"epoch"`
		Caches   map[string]struct {
			Hits    uint64  `json:"hits"`
			Misses  uint64  `json:"misses"`
			Entries int     `json:"entries"`
			HitRate float64 `json:"hit_rate"`
		} `json:"caches"`
	}
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || !h.OK {
		t.Fatalf("healthz: status %d, %+v", code, h)
	}
	if h.Platform != "edge-gateway" {
		t.Errorf("platform = %q", h.Platform)
	}
	for _, name := range []string{"verdict", "analysis", "reservations", "curve_ops"} {
		if _, ok := h.Caches[name]; !ok {
			t.Errorf("healthz caches missing %q: %+v", name, h.Caches)
		}
	}
	if v := h.Caches["verdict"]; v.Hits == 0 {
		t.Errorf("verdict cache shows no hits after repeated rejection: %+v", v)
	}
}

func TestAPIBatchAndRecheck(t *testing.T) {
	ts := testServer(t)

	// A batch with two fresh flows and one intra-batch duplicate: the
	// duplicate must reject, the rest register transactionally.
	batch := `[` + flowBody("b-1", "10 MiB/s") + `,` +
		flowBody("b-2", "15 MiB/s") + `,` +
		flowBody("b-1", "10 MiB/s") + `]`
	resp, err := http.Post(ts.URL+"/admit/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	var vs []verdictJSON
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(vs))
	}
	if !vs[0].Admitted || vs[0].FlowID != "b-1" {
		t.Errorf("b-1 verdict: %+v", vs[0])
	}
	if !vs[1].Admitted || vs[1].FlowID != "b-2" {
		t.Errorf("b-2 verdict: %+v", vs[1])
	}
	if vs[2].Admitted {
		t.Errorf("intra-batch duplicate admitted: %+v", vs[2])
	}

	// Recheck an admitted flow (200), then an unknown one (404).
	var v verdictJSON
	if code := getJSON(t, ts, "/flows/b-1/recheck", &v); code != http.StatusOK || !v.Admitted {
		t.Fatalf("recheck b-1: status %d, %+v", code, v)
	}
	var e map[string]string
	if code := getJSON(t, ts, "/flows/ghost/recheck", &e); code != http.StatusNotFound {
		t.Fatalf("recheck ghost: status %d", code)
	}

	// The enriched healthz reports O(1) registry and heap figures.
	var h struct {
		Flows     int    `json:"flows"`
		Classes   int    `json:"classes"`
		HeapAlloc uint64 `json:"heap_alloc_bytes"`
		HeapSys   uint64 `json:"heap_sys_bytes"`
	}
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.Flows != 2 || h.Classes != 2 {
		t.Errorf("healthz flows/classes = %d/%d, want 2/2", h.Flows, h.Classes)
	}
	if h.HeapAlloc == 0 || h.HeapSys == 0 {
		t.Errorf("healthz heap figures missing: %+v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := metricsServer(t)

	resp, v := postAdmit(t, ts, flowBody("cam-1", "10 MiB/s"))
	if resp.StatusCode != http.StatusOK || !v.Admitted {
		t.Fatalf("cam-1: status %d, verdict %+v", resp.StatusCode, v)
	}
	postAdmit(t, ts, flowBody("hog", "400 MiB/s"))

	get := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Errorf("content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	text := get()

	for _, want := range []string{
		"# TYPE nc_admit_verdicts_total counter",
		`nc_admit_verdicts_total{result="admitted"} 1`,
		`nc_admit_verdicts_total{result="rejected"} 1`,
		"# TYPE nc_admit_decision_seconds histogram",
		`nc_node_utilization{node="encrypt"}`,
		`nc_sim_delay_seconds{flow="cam-1",quantile="max"}`,
		`nc_bound_delay_seconds{flow="cam-1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Acceptance: the admitted flow exposes a bound-tightness gauge and the
	// analytic bound dominates the observed max sojourn (ratio >= 1).
	re := regexp.MustCompile(`nc_bound_tightness\{dimension="(delay|backlog)",flow="cam-1",rung="blind"\} (\S+)`)
	ms := re.FindAllStringSubmatch(text, -1)
	if len(ms) != 2 {
		t.Fatalf("want 2 nc_bound_tightness series for cam-1, got %d in:\n%s", len(ms), text)
	}
	for _, m := range ms {
		ratio, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", m[0], err)
		}
		if ratio < 1.0 {
			t.Errorf("%s tightness %v < 1.0: analytic bound below observation", m[1], ratio)
		}
	}
	// The rejected flow must not get tightness series.
	if strings.Contains(text, `flow="hog"`) {
		t.Error("rejected flow leaked into per-flow gauges")
	}

	// Releasing the flow removes its series on the next scrape.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/flows/cam-1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if text := get(); strings.Contains(text, `flow="cam-1"`) {
		t.Error("released flow's series linger after re-scrape")
	}

	// JSON rendering.
	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("json content type %q", ct)
	}
	var snap []map[string]any
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding JSON metrics: %v", err)
	}
	if len(snap) == 0 {
		t.Error("JSON snapshot is empty")
	}
}

func TestDecisionsEndpoint(t *testing.T) {
	ts := metricsServer(t)

	if resp, v := postAdmit(t, ts, flowBody("cam-1", "10 MiB/s")); !v.Admitted {
		t.Fatalf("cam-1: status %d, %s", resp.StatusCode, v.Reason)
	}
	postAdmit(t, ts, flowBody("hog", "400 MiB/s"))

	var body struct {
		Depth   int                    `json:"depth"`
		Cap     int                    `json:"cap"`
		Seq     uint64                 `json:"seq"`
		Records []admit.DecisionRecord `json:"records"`
	}
	if code := getJSON(t, ts, "/debug/decisions", &body); code != http.StatusOK {
		t.Fatalf("decisions: status %d", code)
	}
	if body.Depth != 2 || body.Cap != 256 || len(body.Records) != 2 {
		t.Fatalf("depth/cap/records = %d/%d/%d, want 2/256/2", body.Depth, body.Cap, len(body.Records))
	}
	// Newest first: the hog rejection, then the cam-1 admission.
	var cam *admit.DecisionRecord
	for i := range body.Records {
		if body.Records[i].FlowID == "cam-1" {
			cam = &body.Records[i]
		}
	}
	if cam == nil {
		t.Fatalf("no record for cam-1 in %+v", body.Records)
	}
	if cam.Kind != "admit" || !cam.Admitted || cam.Seq == 0 {
		t.Errorf("cam-1 record: %+v", *cam)
	}
	if len(cam.Phases) == 0 || len(cam.Nodes) == 0 {
		t.Errorf("cam-1 record lacks phases/nodes: %+v", *cam)
	}

	// ?n= caps the slice; bad values are 400.
	if code := getJSON(t, ts, "/debug/decisions?n=1", &body); code != http.StatusOK || len(body.Records) != 1 {
		t.Errorf("n=1: status %d, %d records", code, len(body.Records))
	}
	resp, err := http.Get(ts.URL + "/debug/decisions?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("n=bogus: status %d, want 400", resp.StatusCode)
	}

	// The Chrome trace export validates.
	tresp, err := http.Get(ts.URL + "/debug/decisions/trace")
	if err != nil {
		t.Fatal(err)
	}
	traw, err := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if err != nil || tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d, err %v", tresp.StatusCode, err)
	}
	if err := obs.ValidateTraceBytes(traw); err != nil {
		t.Errorf("trace validation: %v", err)
	}

	// The metrics scrape passes the in-repo exposition linter and carries a
	// decision exemplar in the JSON rendering.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintExposition(mraw); len(errs) > 0 {
		t.Errorf("metrics lint: %v", errs)
	}
	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jraw, err := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jraw), `"decision_seq"`) {
		t.Error("JSON metrics carry no decision_seq exemplar")
	}

	// Healthz grows uptime, decision rate, and recorder occupancy.
	var h struct {
		Uptime   float64  `json:"uptime_seconds"`
		Rate     *float64 `json:"decisions_per_second"`
		Recorder struct {
			Depth int    `json:"depth"`
			Cap   int    `json:"cap"`
			Seq   uint64 `json:"seq"`
		} `json:"recorder"`
	}
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.Uptime <= 0 || h.Rate == nil || h.Recorder.Depth != 2 || h.Recorder.Cap != 256 {
		t.Errorf("healthz observability fields: %+v", h)
	}
}

// Without a recorder the debug endpoints 404 so probes can tell "off" from
// "empty".
func TestDecisionsDisabled(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/debug/decisions", "/debug/decisions/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestPprofGating(t *testing.T) {
	pl, err := spec.ParsePlatform([]byte(spec.ExamplePlatform()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := pl.Controller()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		on   bool
		want int
	}{
		{on: false, want: http.StatusNotFound},
		{on: true, want: http.StatusOK},
	} {
		ts := httptest.NewServer(newServer(c, serverOptions{pprof: tc.on}))
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("pprof on=%v: status %d, want %d", tc.on, resp.StatusCode, tc.want)
		}
		ts.Close()
	}
}

func TestRevalidateEndpoint(t *testing.T) {
	ts := testServer(t)

	// Empty platform: trivially sound.
	resp, err := http.Post(ts.URL+"/revalidate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep revalidateJSON
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Violations != 0 || len(rep.Flows) != 0 {
		t.Fatalf("empty revalidate: status %d, report %+v", resp.StatusCode, rep)
	}

	// Admit two flows, then batch-revalidate with an explicit worker count.
	for _, id := range []string{"r1", "r2"} {
		if resp, v := postAdmit(t, ts, flowBody(id, "10 MiB/s")); !v.Admitted {
			t.Fatalf("admit %s: status %d, %s", id, resp.StatusCode, v.Reason)
		}
	}
	resp, err = http.Post(ts.URL+"/revalidate?workers=2", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rep = revalidateJSON{}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revalidate status %d, report %+v", resp.StatusCode, rep)
	}
	if len(rep.Flows) != 2 || rep.Flows[0].FlowID != "r1" || rep.Flows[1].FlowID != "r2" {
		t.Fatalf("flows = %+v, want r1, r2 in ID order", rep.Flows)
	}
	if rep.Violations != 0 {
		t.Errorf("violations: %+v", rep.Flows)
	}
	for _, fr := range rep.Flows {
		if fr.SimDelayMax == "" || fr.Delay == "" {
			t.Errorf("flow %s: missing bounds/measurements: %+v", fr.FlowID, fr)
		}
	}

	// Bad worker count is a 400.
	resp, err = http.Post(ts.URL+"/revalidate?workers=bogus", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus workers: status %d, want 400", resp.StatusCode)
	}
}
