// Command nclint validates the repo's observability wire formats offline —
// the CI gate behind the /metrics and /debug/decisions/trace endpoints.
//
// Usage:
//
//	curl -s localhost:8080/metrics | nclint
//	nclint metrics.txt
//	curl -s localhost:8080/debug/decisions/trace | nclint -trace
//
// Without -trace the input is linted as Prometheus 0.0.4 text exposition
// (obs.LintExposition: TYPE/HELP structure, nc_ naming conventions, label
// escaping, histogram bucket monotonicity). With -trace it is validated as a
// Chrome trace_event JSON document (obs.ValidateTraceBytes). Exit status is
// 1 when any problem is found, with one line per problem on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"streamcalc/internal/obs"
)

func main() {
	trace := flag.Bool("trace", false, "validate a Chrome trace_event JSON document instead of Prometheus text")
	flag.Parse()

	data, name, err := readInput(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "nclint:", err)
		os.Exit(1)
	}

	if *trace {
		if err := obs.ValidateTraceBytes(data); err != nil {
			fmt.Fprintf(os.Stderr, "nclint: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("nclint: %s: valid trace\n", name)
		return
	}

	errs := obs.LintExposition(data)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "nclint: %s: %v\n", name, e)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "nclint: %s: %d problem(s)\n", name, len(errs))
		os.Exit(1)
	}
	fmt.Printf("nclint: %s: clean exposition\n", name)
}

// readInput returns the bytes of the single file argument, or stdin when no
// argument is given.
func readInput(args []string) ([]byte, string, error) {
	switch len(args) {
	case 0:
		data, err := io.ReadAll(os.Stdin)
		return data, "stdin", err
	case 1:
		data, err := os.ReadFile(args[0])
		return data, args[0], err
	}
	return nil, "", fmt.Errorf("at most one input file (got %d args)", len(args))
}
