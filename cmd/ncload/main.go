// Command ncload ramps a generated tenant population into the admission
// controller — in-process or against a running ncadmitd — and then drives a
// paced open-loop churn schedule, reporting per-op latency percentiles,
// pacing lateness, achieved vs target RPS, and registry/heap state as JSON.
//
// Usage:
//
//	ncload -flows 1000000 -measure 30s -out results/loadtest_1m.json -bench bench.txt
//	ncload -mode http -addr http://127.0.0.1:8080 -flows 50000 -rps 400
//	ncload -rungsweep -out results/rung_sweep.json -bench bench_fifo.txt
//	ncload -rungbench -out results/rung_scaling.json -bench bench_rung.txt
//	ncload -example-spec > population.json
//	ncload -example-platform > platform.json
//
// The workload is deterministic at the request level: the same population
// spec, seed, and flow target produce the same flow envelopes and the same
// churn op sequence (kind, target flow, scheduled time). Only runtime
// outcomes — verdicts, latencies, lateness — vary between runs.
//
// With no -platform, the built-in scenario sizes a three-node streaming
// platform so the expected demand of -flows heavy-tailed flows fills half
// of each node's capacity; with no -spec, the built-in heavy-tailed
// population spec is used. The -bench output is Go-benchmark formatted for
// the repo's .github/benchjson converter (BENCH_admitd.json in CI).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/gen"
	"streamcalc/internal/load"
	"streamcalc/internal/obs"
	"streamcalc/internal/spec"
)

func main() {
	var (
		mode         = flag.String("mode", "inproc", `"inproc" drives the controller directly; "http" drives a running ncadmitd`)
		addr         = flag.String("addr", "http://127.0.0.1:8080", "ncadmitd base URL for -mode http")
		platformPath = flag.String("platform", "", "platform JSON (default: built-in scenario sized for -flows; ignored in -mode http)")
		specPath     = flag.String("spec", "", "population spec JSON (default: built-in heavy-tailed spec)")
		flows        = flag.Int("flows", 1_000_000, "registered-flow target of the ramp phase")
		rps          = flag.Float64("rps", 0, "target churn op rate (0 keeps the spec's base_rps)")
		warmup       = flag.Duration("warmup", 2*time.Second, "churn ops before this elapses are issued but not measured")
		measure      = flag.Duration("measure", 30*time.Second, "measured churn window")
		batch        = flag.Int("batch", 16384, "ramp transaction size")
		workers      = flag.Int("workers", 0, "ramp/churn worker count (0 = GOMAXPROCS)")
		clients      = flag.Int("clients", 0, "concurrent churn client lanes with per-client lateness (0 = workers default)")
		seed         = flag.Uint64("seed", 1, "population seed (same spec+seed+flows = same request sequence)")
		out          = flag.String("out", "", "write the JSON report to this file (default stdout)")
		benchOut     = flag.String("bench", "", "write Go-benchmark lines to this file (benchjson input)")
		decisions    = flag.Int("decisions", 1<<16, "flight-recorder depth on the in-process controller: retains the last N decisions for the per-phase breakdown (0 disables; ignored in -mode http)")
		quiet        = flag.Bool("q", false, "suppress progress lines on stderr")
		rungSweep    = flag.Bool("rungsweep", false, "run the FIFO-ladder comparison sweep instead of the load (fills a shared node at each analysis rung, asserts tight admits strictly more than blind with zero replay violations)")
		rungBench    = flag.Bool("rungbench", false, "run the tight-rung lattice cost benchmark instead of the load (times the prefix-sharing search against the exhaustive reference at matched combo budgets, asserts bit-identical winners and the speedup floor)")
		exampleSpec  = flag.Bool("example-spec", false, "print the built-in population spec and exit")
		examplePlat  = flag.Bool("example-platform", false, "print the built-in platform (sized for -flows) and exit")
	)
	flag.Parse()

	if *rungSweep {
		if err := runRungSweep(*seed, *out, *benchOut, *quiet); err != nil {
			fail(err)
		}
		return
	}
	if *rungBench {
		if err := runRungBench(*out, *benchOut, *quiet); err != nil {
			fail(err)
		}
		return
	}

	sc := load.DefaultScenario(*flows)
	scenarioName := sc.Name

	if *exampleSpec {
		printJSON(sc.Spec)
		return
	}

	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		ps, err := gen.ParsePopulationSpec(data)
		if err != nil {
			fail(err)
		}
		sc.Spec = ps
		scenarioName = *specPath
	}

	pop, err := gen.NewPopulation(sc.Spec, *seed)
	if err != nil {
		fail(err)
	}
	// Resize the built-in platform against the realized template mix (the
	// spec's analytic mean undersizes under heavy-tailed template draws).
	sc = sc.Sized(pop, *flows, 2.0)

	if *examplePlat {
		printJSON(wirePlatform(sc))
		return
	}

	var target load.Target
	switch *mode {
	case "inproc":
		var c *admit.Controller
		if *platformPath != "" {
			data, err := os.ReadFile(*platformPath)
			if err != nil {
				fail(err)
			}
			pl, err := spec.ParsePlatform(data)
			if err != nil {
				fail(err)
			}
			if c, err = pl.Controller(); err != nil {
				fail(err)
			}
			scenarioName = pl.Name
		} else {
			var err error
			if c, err = sc.Controller(); err != nil {
				fail(err)
			}
		}
		if *decisions > 0 {
			// Recorder only (no metrics registry on the controller): the
			// per-phase breakdown costs one span per decision and one ring
			// push, keeping bench overhead minimal.
			c.EnableFlightRecorder(*decisions)
		}
		target = load.InProc{C: c}
	case "http":
		target = &load.HTTP{Base: *addr, Client: &http.Client{Timeout: 30 * time.Second}}
	default:
		fail(fmt.Errorf("unknown -mode %q (want inproc or http)", *mode))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := load.Config{
		Target:    target,
		Pop:       pop,
		Flows:     *flows,
		BatchSize: *batch,
		Workers:   *workers,
		Clients:   *clients,
		TargetRPS: *rps,
		Warmup:    *warmup,
		Measure:   *measure,
		Metrics:   obs.NewRegistry(),
		Context:   ctx,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ncload: "+format+"\n", args...)
		}
	}

	rep, err := load.Run(cfg)
	if err != nil {
		fail(err)
	}
	rep.Scenario = scenarioName
	rep.Mode = *mode
	rep.Seed = *seed

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	body = append(body, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			fail(err)
		}
	} else {
		os.Stdout.Write(body)
	}
	if *benchOut != "" {
		if err := os.WriteFile(*benchOut, []byte(rep.BenchText()), 0o644); err != nil {
			fail(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"ncload: done — %d flows (%d classes), admit p99 %v, achieved %.1f/%.1f rps, heap %.1f MiB\n",
			rep.Final.Flows, rep.Final.Classes, rep.Churn.Ops["admit"].P99,
			rep.Churn.AchievedRPS, rep.Churn.TargetRPS, float64(rep.Final.HeapAlloc)/(1<<20))
	}
}

// runRungSweep runs the FIFO-ladder comparison sweep (load.RungSweep) and
// writes the results/rung_sweep.json artifact plus BENCH_fifo benchmark
// lines. It exits non-zero when the ladder acceptance invariants fail —
// tight must admit strictly more flows than blind at identical SLAs, with
// every rung's replay free of bound violations — which is what the CI
// load-smoke job gates on.
func runRungSweep(seed uint64, out, benchOut string, quiet bool) error {
	cfg := load.RungSweepConfig{Replay: admit.ReplayOptions{Seed: seed}}
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ncload: "+format+"\n", args...)
		}
	}
	rep, err := load.RungSweep(cfg)
	if err != nil {
		return err
	}
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if out != "" {
		if err := os.WriteFile(out, body, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(body)
	}
	if benchOut != "" {
		if err := os.WriteFile(benchOut, []byte(rep.BenchText()), 0o644); err != nil {
			return err
		}
	}
	return rep.Check()
}

// runRungBench runs the tight-rung lattice cost benchmark (load.RungBench)
// and writes the results/rung_scaling.json artifact plus BENCH_rung
// benchmark lines. It exits non-zero when a matched case's winners diverge
// or the large matched budgets miss the speedup floor — the CI rung-cost
// gate.
func runRungBench(out, benchOut string, quiet bool) error {
	var cfg load.RungBenchConfig
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ncload: "+format+"\n", args...)
		}
	}
	rep, err := load.RungBench(cfg)
	if err != nil {
		return err
	}
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if out != "" {
		if err := os.WriteFile(out, body, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(body)
	}
	if benchOut != "" {
		if err := os.WriteFile(benchOut, []byte(rep.BenchText()), 0o644); err != nil {
			return err
		}
	}
	return rep.Check()
}

// wirePlatform renders a scenario's node set in the ncadmitd platform JSON
// dialect, so `-example-platform > p.json` feeds both ncadmitd -platform and
// ncload -platform.
func wirePlatform(sc load.Scenario) spec.Platform {
	p := spec.Platform{Name: sc.Name}
	for _, n := range sc.Nodes {
		p.Nodes = append(p.Nodes, spec.Node{
			Name:      n.Name,
			Rate:      n.Rate,
			Latency:   n.Latency.String(),
			JobIn:     n.JobIn,
			JobOut:    n.JobOut,
			MaxPacket: n.MaxPacket,
		})
	}
	return p
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ncload:", err)
	os.Exit(1)
}
