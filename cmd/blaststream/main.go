// Command blaststream runs the software BLASTN pipeline on FASTA inputs:
// seed matching against the query's 8-mer table, seed enumeration, small
// extension, ungapped X-drop extension, and (optionally) host-side gapped
// extension — the full stage chain of the paper's Figure 2.
//
// Usage:
//
//	blaststream -db db.fasta -query query.fasta [-threshold 30]
//	            [-gapped] [-gapped-threshold 40] [-chunk 1048576]
//	            [-mercator] [-stats] [-max 20]
//
// With -demo, synthetic inputs with planted homologies are generated
// instead of reading files.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamcalc/internal/blast"
	"streamcalc/internal/gen"
	"streamcalc/internal/mercator"
	"streamcalc/internal/units"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "database FASTA file")
		queryPath = flag.String("query", "", "query FASTA file")
		threshold = flag.Int("threshold", 30, "ungapped-extension score threshold")
		gapped    = flag.Bool("gapped", false, "run host-side gapped extension on the hits")
		gappedThr = flag.Int("gapped-threshold", 40, "gapped-extension score threshold")
		chunk     = flag.Int("chunk", 0, "stream the database in chunks of this many bases (0 = resident)")
		useMerc   = flag.Bool("mercator", false, "execute on the Mercator-style occupancy scheduler")
		stats     = flag.Bool("stats", false, "print per-stage measurements and job ratios")
		maxPrint  = flag.Int("max", 20, "print at most this many hits")
		demo      = flag.Bool("demo", false, "generate synthetic inputs with planted homologies")
	)
	flag.Parse()

	var db, query []byte
	switch {
	case *demo:
		query = gen.DNA(256, 1)
		db, _ = gen.DNAWithPlants(1<<22, query, 1<<18, 2)
		fmt.Println("demo mode: 4 Mbase synthetic database, 256-base query, 16 planted homologies")
	case *dbPath != "" && *queryPath != "":
		db = readFASTA(*dbPath)
		query = readFASTA(*queryPath)
	default:
		fmt.Fprintln(os.Stderr, "blaststream: need -db and -query (or -demo)")
		os.Exit(2)
	}
	fmt.Printf("database %d bases, query %d bases\n", len(db), len(query))

	start := time.Now()
	var hits []blast.Hit
	switch {
	case *useMerc:
		var rep *mercator.Report
		var err error
		hits, rep, err = blast.RunDataflow(db, query, *threshold, blast.DataflowConfig{})
		if err != nil {
			fail(err)
		}
		fmt.Printf("mercator execution: %d stage firings\n", rep.Firings)
		for _, s := range rep.Stages {
			fmt.Printf("  %-14s in %-8d out %-8d firings %-6d occupancy %.1f%%\n",
				s.Name, s.ItemsIn, s.ItemsOut, s.Firings, s.AvgOccupancy*100)
		}
	case *chunk > 0:
		var cs *blast.ChunkStats
		var err error
		hits, cs, err = blast.RunChunked(db, query, *threshold, *chunk)
		if err != nil {
			fail(err)
		}
		fmt.Printf("streamed in %d chunks: %d positions, %d matches, %d survived small extension\n",
			cs.Chunks, cs.Positions, cs.Matches, cs.SmallSurvived)
	default:
		res, err := blast.Run(db, query, *threshold)
		if err != nil {
			fail(err)
		}
		hits = res.Hits
		fmt.Printf("cascade: %d positions -> %d matches -> %d small-ext -> %d hits\n",
			res.Counts.SeedPositions, res.Counts.SeedMatches, res.Counts.SmallPassed, len(hits))
	}
	elapsed := time.Since(start)
	fmt.Printf("%d hits in %v (%s)\n", len(hits), elapsed.Round(time.Millisecond),
		units.Bytes(len(db)).Over(elapsed))

	if *gapped {
		qi, err := blast.NewQueryIndex(query)
		if err != nil {
			fail(err)
		}
		packed := blast.Pack2Bit(db)
		ghits := blast.GappedExtension(qi, packed, len(db), hits, *gappedThr, nil)
		fmt.Printf("gapped extension: %d hits above threshold %d\n", len(ghits), *gappedThr)
		for i, g := range ghits {
			if i >= *maxPrint {
				fmt.Printf("  ... and %d more\n", len(ghits)-*maxPrint)
				break
			}
			fmt.Printf("  %v gapped-score %d span db:%d q:%d\n", g.Hit, g.GappedScore, g.DBSpan, g.QuerySpan)
		}
	} else {
		for i, h := range hits {
			if i >= *maxPrint {
				fmt.Printf("  ... and %d more\n", len(hits)-*maxPrint)
				break
			}
			fmt.Printf("  %v\n", h)
		}
	}

	if *stats {
		ms, err := blast.MeasureStages(db, query, *threshold, 2)
		if err != nil {
			fail(err)
		}
		fmt.Println("\nisolated stage measurements (model inputs):")
		for _, m := range ms {
			fmt.Printf("  %-14s rate %-12s job ratio %6.2f\n", m.Name, m.Rate, m.JobRatio())
		}
	}
}

func readFASTA(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	_, seq := gen.ParseFASTA(data)
	if len(seq) == 0 {
		fail(fmt.Errorf("%s: no sequence data", path))
	}
	return seq
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "blaststream:", err)
	os.Exit(1)
}
