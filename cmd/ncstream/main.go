// Command ncstream applies the network-calculus model to a streaming
// pipeline described in JSON, optionally validating the bounds with the
// discrete-event simulator and the M/M/1 queueing baseline.
//
// Usage:
//
//	ncstream -spec pipeline.json [-sim total] [-seed n] [-queueing]
//	ncstream -example > pipeline.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"streamcalc/internal/core"
	"streamcalc/internal/queueing"
	"streamcalc/internal/spec"
	"streamcalc/internal/units"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the pipeline JSON description")
		simTotal = flag.String("sim", "", "run the simulator over this much input (e.g. \"64 MiB\")")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		qt       = flag.Bool("queueing", false, "also run the M/M/1 queueing baseline")
		subset   = flag.String("subset", "", "also analyze the node subrange i:j with the propagated arrival (e.g. \"1:4\")")
		example  = flag.Bool("example", false, "print a sample specification and exit")
	)
	flag.Parse()

	if *example {
		fmt.Println(spec.Example())
		return
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "ncstream: -spec is required (see -example)")
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fail(err)
	}
	sp, err := spec.Parse(data)
	if err != nil {
		fail(err)
	}
	if sp.IsGraph() {
		g, err := sp.CoreGraph()
		if err != nil {
			fail(err)
		}
		ga, err := core.AnalyzeGraph(g)
		if err != nil {
			fail(err)
		}
		reportGraph(ga)
		return
	}
	p, err := sp.Core()
	if err != nil {
		fail(err)
	}
	a, err := core.Analyze(p)
	if err != nil {
		fail(err)
	}
	report(a)

	if *subset != "" {
		if err := analyzeSubset(p, a, *subset); err != nil {
			fail(err)
		}
	}

	if *qt {
		res, err := queueing.Analyze(sp.Queueing())
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nqueueing (M/M/1) baseline:\n")
		fmt.Printf("  roofline prediction: %s (bottleneck: %s, stable: %v)\n",
			res.Roofline, res.Stages[res.BottleneckIndex].Name, res.Stable)
		if res.Stable {
			fmt.Printf("  mean end-to-end delay: %v\n", res.MeanDelay)
		}
	}

	if *simTotal != "" {
		total, err := units.ParseBytes(*simTotal)
		if err != nil {
			fail(err)
		}
		simP, err := sp.Sim(total, *seed)
		if err != nil {
			fail(err)
		}
		res, err := simP.Run()
		if err != nil {
			fail(err)
		}
		fmt.Printf("\ndiscrete-event simulation (%s input, seed %d):\n", total, *seed)
		fmt.Printf("  throughput (input-referred): %s\n", res.Throughput)
		fmt.Printf("  delay min/mean/max: %v / %v / %v\n", res.DelayMin, res.DelayMean, res.DelayMax)
		fmt.Printf("  max backlog: %s\n", res.MaxBacklog)
		for _, st := range res.Stages {
			fmt.Printf("  stage %-16s jobs %-8d util %5.1f%%  queue peak %-10s blocked %v\n",
				st.Name, st.Jobs, st.Utilization*100, st.MaxQueueLocal, st.BlockedTime)
		}
	}
}

func report(a *core.Analysis) {
	fmt.Printf("pipeline %q: %d nodes\n", a.Pipeline.Name, len(a.Nodes))
	fmt.Printf("\nnetwork calculus analysis:\n")
	fmt.Printf("  throughput lower bound: %s\n", a.ThroughputLower)
	fmt.Printf("  throughput upper bound: %s\n", a.ThroughputUpper)
	fmt.Printf("  bottleneck: %s\n", a.Bottleneck().Node.Name)
	fmt.Printf("  cumulative latency T_tot: %v\n", a.TotalLatency)
	if a.Overloaded {
		fmt.Printf("  regime: OVERLOADED (R_alpha > R_beta); steady-state bounds infinite\n")
		fmt.Printf("  transient delay estimate:   %v\n", a.DelayEstimate)
		fmt.Printf("  transient backlog estimate: %s\n", a.BacklogEstimate)
	} else {
		fmt.Printf("  delay bound:   %v\n", a.DelayBound)
		fmt.Printf("  backlog bound: %s\n", a.BacklogBound)
	}
	fmt.Printf("  output bound: burst %s, rate %s\n",
		units.Bytes(a.OutputBound.Burst()), units.Rate(a.OutputBound.UltimateSlope()))
	fmt.Printf("\nper-node (input-referred):\n")
	for _, n := range a.Nodes {
		agg := ""
		if n.Aggregates {
			agg = fmt.Sprintf(" aggregates(+%v)", n.AggregationDelay)
		}
		backlog := n.BacklogBound.String()
		if math.IsInf(float64(n.BacklogBound), 1) {
			backlog = "unbounded"
		}
		fmt.Printf("  %-16s %-7s rate %-12s gamma %-12s backlog %-12s%s\n",
			n.Node.Name, n.Node.Kind, n.Rate, n.MaxRate, backlog, agg)
	}
}

// analyzeSubset runs the paper's subset analysis: the node range [i, j) is
// modeled on its own, fed by the arrival bound propagated to node i.
func analyzeSubset(p core.Pipeline, a *core.Analysis, rangeSpec string) error {
	var from, to int
	if _, err := fmt.Sscanf(rangeSpec, "%d:%d", &from, &to); err != nil {
		return fmt.Errorf("subset %q: want i:j: %w", rangeSpec, err)
	}
	sub, err := p.Subrange(from, to)
	if err != nil {
		return err
	}
	in := a.InputAt(from)
	sub.Arrival = core.Arrival{
		Rate:  units.Rate(in.UltimateSlope()),
		Burst: units.Bytes(in.Burst()),
	}
	// The propagated curve is input-referred; the subrange nodes are in
	// their local units. Scale them to the sub-pipeline's input domain.
	gain := a.Nodes[from].GainBefore
	for i := range sub.Nodes {
		sub.Nodes[i].Rate = sub.Nodes[i].Rate.Mul(1 / gain)
		if sub.Nodes[i].MaxRate > 0 {
			sub.Nodes[i].MaxRate = sub.Nodes[i].MaxRate.Mul(1 / gain)
		}
		sub.Nodes[i].JobIn = sub.Nodes[i].JobIn.Mul(1 / gain)
		sub.Nodes[i].JobOut = sub.Nodes[i].JobOut.Mul(1 / gain)
		sub.Nodes[i].MaxPacket = sub.Nodes[i].MaxPacket.Mul(1 / gain)
		sub.Nodes[i].CrossRate = sub.Nodes[i].CrossRate.Mul(1 / gain)
		sub.Nodes[i].CrossBurst = sub.Nodes[i].CrossBurst.Mul(1 / gain)
	}
	sa, err := core.Analyze(sub)
	if err != nil {
		return err
	}
	fmt.Printf("\nsubset [%d:%d) with propagated arrival (rate %s, burst %s):\n",
		from, to, sub.Arrival.Rate, sub.Arrival.Burst)
	if sa.Overloaded {
		fmt.Printf("  transient delay estimate %v, backlog estimate %s\n",
			sa.DelayEstimate, sa.BacklogEstimate)
	} else {
		fmt.Printf("  delay bound %v, backlog bound %s\n", sa.DelayBound, sa.BacklogBound)
	}
	fmt.Printf("  throughput bounds %s .. %s\n", sa.ThroughputLower, sa.ThroughputUpper)
	return nil
}

func reportGraph(a *core.GraphAnalysis) {
	fmt.Printf("DAG %q: %d nodes, order %v\n", a.Graph.Name, len(a.Graph.Nodes), a.Order)
	fmt.Printf("stable: %v, source-rate capacity: %s\n", a.Stable, a.MaxSourceRate)
	fmt.Printf("\nper-node (local units):\n")
	for _, name := range a.Order {
		n := a.Nodes[name]
		backlog := n.BacklogBound.String()
		delay := fmt.Sprintf("%v", n.DelayBound)
		if n.Overloaded {
			backlog, delay = "unbounded", "unbounded"
		}
		fmt.Printf("  %-18s util %6.1f%%  delay %-14s backlog %s\n",
			name, n.Utilization*100, delay, backlog)
	}
	if a.DelayBoundInfinite {
		fmt.Printf("\ncritical path %v: unbounded (overloaded node on path)\n", a.CriticalPath)
	} else {
		fmt.Printf("\ncritical path %v: delay bound %v\n", a.CriticalPath, a.DelayBound)
	}
	fmt.Printf("total backlog bound: %s\n", a.TotalBacklog)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ncstream:", err)
	os.Exit(1)
}
