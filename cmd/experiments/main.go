// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run name] [-out dir] [-seed n] [-quick] [-parallel N] [-list]
//
// With no -run flag every experiment executes in order. -out writes CSV
// series for the figures (fig1.csv, fig4_curves.csv, fig4_sim.csv,
// fig10_curves.csv, fig10_sim.csv). -parallel runs independent experiments
// (and sweep points within them) on up to N workers, with per-experiment
// output buffered and flushed in presentation order; results are identical
// to a sequential run (0 means GOMAXPROCS, 1 disables). Experiments that
// measure real software-kernel wall-clock rates always run alone.
package main

import (
	"flag"
	"fmt"
	"os"

	"streamcalc/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment to run (default: all)")
		out      = flag.String("out", "", "directory for CSV figure series")
		seed     = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		quick    = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		parallel = flag.Int("parallel", 1, "worker count for experiments and sweeps (0 = GOMAXPROCS, 1 = sequential)")
		list     = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}
	opts := experiments.Options{OutDir: *out, Seed: *seed, Quick: *quick, Workers: *parallel}
	if *run == "" {
		if err := experiments.RunParallel(os.Stdout, opts, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := experiments.Lookup(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *run)
		os.Exit(2)
	}
	fmt.Printf("==== %s: %s ====\n", e.Name, e.Title)
	if err := e.Run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
