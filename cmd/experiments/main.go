// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run name] [-out dir] [-seed n] [-quick] [-list]
//
// With no -run flag every experiment executes in order. -out writes CSV
// series for the figures (fig1.csv, fig4_curves.csv, fig4_sim.csv,
// fig10_curves.csv, fig10_sim.csv).
package main

import (
	"flag"
	"fmt"
	"os"

	"streamcalc/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment to run (default: all)")
		out   = flag.String("out", "", "directory for CSV figure series")
		seed  = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		quick = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}
	opts := experiments.Options{OutDir: *out, Seed: *seed, Quick: *quick}
	if *run == "" {
		if err := experiments.RunAll(os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := experiments.Lookup(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *run)
		os.Exit(2)
	}
	fmt.Printf("==== %s: %s ====\n", e.Name, e.Title)
	if err := e.Run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
