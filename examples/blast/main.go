// BLAST example: run the real software BLASTN pipeline on a synthetic
// database, measure each stage in isolation, build a network-calculus model
// from those measurements, and compare it with the paper's calibrated
// Figure 3 model (Table 1 and the §4.2 bounds).
//
// Run with: go run ./examples/blast
package main

import (
	"fmt"
	"log"

	"streamcalc"
	"streamcalc/internal/apps/blastmodel"
	"streamcalc/internal/blast"
	"streamcalc/internal/gen"
	"streamcalc/internal/units"
)

func main() {
	// 1. A real BLASTN search on synthetic DNA with planted homologies.
	const dbLen = 1 << 22 // 4 Mbase database
	query := gen.DNA(256, 1)
	db, plants := gen.DNAWithPlants(dbLen, query, dbLen/16, 2)
	res, err := blast.Run(db, query, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== software BLASTN ==\n")
	fmt.Printf("database %d bases, query %d bases, %d planted homologies\n",
		dbLen, len(query), len(plants))
	fmt.Printf("stage cascade: %d positions -> %d matches -> %d small-ext -> %d hits\n",
		res.Counts.SeedPositions, res.Counts.SeedMatches,
		res.Counts.SmallPassed, len(res.Hits))
	for i, h := range res.Hits {
		if i == 3 {
			fmt.Printf("  ... and %d more hits\n", len(res.Hits)-3)
			break
		}
		fmt.Printf("  hit %v\n", h)
	}

	// 2. Measure each stage in isolation — the models' inputs.
	ms, err := blast.MeasureStages(db, query, 30, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== isolated stage measurements (model inputs) ==\n")
	for _, m := range ms {
		fmt.Printf("  %-14s rate %-12s job ratio %6.2f\n", m.Name, m.Rate, m.JobRatio())
	}

	// 3. Build a network-calculus model directly from those measurements:
	// a chain of compute nodes with measured rates and job ratios.
	nodes := make([]streamcalc.Node, 0, len(ms))
	for _, m := range ms {
		out := m.OutBytes
		if out <= 0 {
			out = 1
		}
		nodes = append(nodes, streamcalc.Node{
			Name:  m.Name,
			Kind:  streamcalc.Compute,
			Rate:  m.Rate,
			JobIn: m.InBytes, JobOut: out,
		})
	}
	p := streamcalc.Pipeline{
		Name: "software-blast",
		Arrival: streamcalc.Arrival{
			Rate:  ms[0].Rate.Mul(0.9), // feed just below the first stage's rate
			Burst: 1 * units.MiB,
		},
		Nodes: nodes,
	}
	a, err := streamcalc.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== network-calculus model of the software pipeline ==\n")
	fmt.Printf("throughput: %s .. %s (bottleneck %s)\n",
		a.ThroughputLower, a.ThroughputUpper, a.Bottleneck().Node.Name)
	fmt.Printf("delay estimate %v, backlog estimate %s\n", a.DelayEstimate, a.BacklogEstimate)

	// 4. The paper's calibrated heterogeneous deployment (Figure 3).
	pa, err := blastmodel.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== paper's Figure 3 deployment (calibrated) ==\n")
	fmt.Printf("NC bounds: %s .. %s (paper: 350 .. 704 MiB/s)\n",
		pa.ThroughputLower, pa.ThroughputUpper)
	fmt.Printf("delay estimate %v (paper 46.9 ms), backlog estimate %s (paper 20.6 MiB)\n",
		pa.DelayEstimate, pa.BacklogEstimate)
}
