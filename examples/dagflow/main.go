// DAG example: a video-analytics application whose stages form a directed
// acyclic graph rather than a chain — the general shape the paper's §4
// mentions. Frames are decoded, then the flow forks: keyframes (20%) go to
// GPU object detection while everything is also compressed for archival;
// detection results and the archive stream merge into an uplink.
//
// The Graph analysis reports per-branch envelopes, the critical path, and
// the source-rate capacity.
//
// Run with: go run ./examples/dagflow
package main

import (
	"fmt"
	"log"
	"time"

	"streamcalc"
)

func main() {
	g := streamcalc.Graph{
		Name: "video-analytics",
		Arrival: streamcalc.Arrival{
			Rate:      120 * streamcalc.MiBPerSec,
			Burst:     2 * streamcalc.MiB,
			MaxPacket: 256 * streamcalc.KiB,
		},
		Nodes: []streamcalc.Node{
			{Name: "decode", Rate: 400 * streamcalc.MiBPerSec,
				Latency: 2 * time.Millisecond, JobIn: 256 * streamcalc.KiB, JobOut: 256 * streamcalc.KiB},
			{Name: "detect-gpu", Rate: 40 * streamcalc.MiBPerSec, MaxRate: 80 * streamcalc.MiBPerSec,
				Latency: 6 * time.Millisecond, JobIn: 1 * streamcalc.MiB, JobOut: 32 * streamcalc.KiB},
			{Name: "archive-compress", Rate: 300 * streamcalc.MiBPerSec,
				Latency: time.Millisecond, JobIn: 256 * streamcalc.KiB, JobOut: 128 * streamcalc.KiB},
			{Name: "uplink", Kind: streamcalc.Link, Rate: 100 * streamcalc.MiBPerSec,
				Latency: 8 * time.Millisecond, JobIn: 64 * streamcalc.KiB, JobOut: 64 * streamcalc.KiB,
				MaxPacket: 64 * streamcalc.KiB},
		},
		Edges: []streamcalc.Edge{
			{From: "", To: "decode"},
			// 20% of frames (keyframes) go to detection...
			{From: "decode", To: "detect-gpu", Fraction: 0.2},
			// ...while the full stream is compressed for archival.
			{From: "decode", To: "archive-compress", Fraction: 1.0},
			{From: "detect-gpu", To: "uplink"},
			{From: "archive-compress", To: "uplink"},
		},
	}

	a, err := streamcalc.AnalyzeGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== DAG analysis: %s ==\n", g.Name)
	fmt.Printf("topological order: %v\n", a.Order)
	fmt.Printf("stable: %v, source-rate capacity: %s\n\n", a.Stable, a.MaxSourceRate)

	fmt.Printf("%-18s %10s %12s %14s %14s\n",
		"node", "util", "arrival", "delay bound", "backlog bound")
	for _, name := range a.Order {
		na := a.Nodes[name]
		fmt.Printf("%-18s %9.1f%% %12s %14v %14s\n",
			name, na.Utilization*100,
			streamcalc.Rate(na.AlphaIn.UltimateSlope()).String(),
			na.DelayBound.Round(10*time.Microsecond), na.BacklogBound)
	}
	fmt.Printf("\ncritical path: %v (delay bound %v)\n",
		a.CriticalPath, a.DelayBound.Round(10*time.Microsecond))
	fmt.Printf("total backlog bound: %s\n", a.TotalBacklog)

	// What-if: doubling the keyframe share overloads the GPU branch.
	g.Edges[1].Fraction = 0.45
	a2, err := streamcalc.AnalyzeGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat-if (45%% keyframes): stable=%v, GPU utilization %.0f%%\n",
		a2.Stable, a2.Nodes["detect-gpu"].Utilization*100)
}
