// Buffer-sizing example (the paper's §4.2 use case and future-work
// direction): use per-node backlog attribution to allocate queue
// capacities, then verify with the discrete-event simulator that the
// allocation never blocks, while a half-sized allocation does.
//
// Run with: go run ./examples/buffersizing
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"streamcalc"
)

func main() {
	p := streamcalc.Pipeline{
		Name: "etl",
		Arrival: streamcalc.Arrival{
			Rate:      200 * streamcalc.MiBPerSec,
			Burst:     1 * streamcalc.MiB,
			MaxPacket: 128 * streamcalc.KiB,
		},
		Nodes: []streamcalc.Node{
			{Name: "parse", Rate: 500 * streamcalc.MiBPerSec, Latency: time.Millisecond,
				JobIn: 128 * streamcalc.KiB, JobOut: 128 * streamcalc.KiB},
			{Name: "transform", Rate: 300 * streamcalc.MiBPerSec, Latency: 2 * time.Millisecond,
				JobIn: 512 * streamcalc.KiB, JobOut: 512 * streamcalc.KiB},
			{Name: "sink-writer", Rate: 250 * streamcalc.MiBPerSec, Latency: 4 * time.Millisecond,
				JobIn: 128 * streamcalc.KiB, JobOut: 128 * streamcalc.KiB},
		},
	}
	a, err := streamcalc.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== analytic buffer plan ==")
	plan := a.BufferPlan()
	for _, rec := range plan {
		fmt.Printf("  %-12s %s\n", rec.Name, rec.Capacity)
	}
	fmt.Printf("end-to-end backlog bound: %s, delay bound: %v\n\n",
		a.BacklogBound, a.DelayBound)

	run := func(label string, scale float64) {
		sim := streamcalc.NewSim(streamcalc.SimSource{
			Rate:       200 * streamcalc.MiBPerSec,
			PacketSize: 128 * streamcalc.KiB,
			Burst:      1 * streamcalc.MiB,
			TotalInput: 512 * streamcalc.MiB,
		}, 7)
		for i, n := range p.Nodes {
			cfg := streamcalc.SimStageFromRate(n.Name, n.Rate, n.Rate, n.JobIn, n.JobOut)
			cap := streamcalc.Bytes(math.Ceil(float64(plan[i].Capacity) * scale))
			if cap < n.JobIn {
				cap = n.JobIn // keep the stage startable
			}
			cfg.QueueCap = cap
			sim.Add(cfg)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		blocked := time.Duration(0)
		for _, st := range res.Stages {
			blocked += st.BlockedTime
		}
		fmt.Printf("== simulation with %s buffers ==\n", label)
		fmt.Printf("  throughput %s, delay max %v, total blocked time %v\n",
			res.Throughput, res.DelayMax, blocked)
		for _, st := range res.Stages {
			fmt.Printf("  %-12s queue peak %-10s blocked %v\n",
				st.Name, st.MaxQueueLocal, st.BlockedTime)
		}
		fmt.Println()
	}
	// Full analytic allocation: no backpressure stalls expected.
	run("analytic", 1.0)
	// Starved allocation: upstream stages must stall.
	run("quarter-size", 0.25)
}
