// Bump-in-the-wire example: run the real LZ4 + AES-256-CBC kernels over a
// TCP loopback "wire", measure the stages, and compare the deployment
// against the paper's Figure 9 model (Table 3 and the §5 bounds), including
// the bump-in-the-wire vs traditional data-path comparison.
//
// Run with: go run ./examples/bumpinthewire
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"streamcalc"
	"streamcalc/internal/aesstream"
	"streamcalc/internal/apps/bitwmodel"
	"streamcalc/internal/core"
	"streamcalc/internal/gen"
	"streamcalc/internal/link"
	"streamcalc/internal/lz4"
	"streamcalc/internal/units"
)

func main() {
	// 1. Drive the real software kernels end to end: compress, encrypt,
	// "send" (TCP loopback when available), decrypt, decompress.
	const size = 8 << 20
	data := gen.Text(size, 0.62, 7) // ~2x compressible, like the paper's average
	key := make([]byte, aesstream.KeySize)

	start := time.Now()
	compressed := lz4.Compress(nil, data)
	tCompress := time.Since(start)
	ratio := float64(len(data)) / float64(len(compressed))

	enc, err := aesstream.New(key, 9)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	ciphertext := enc.Encrypt(compressed, 4096)
	tEncrypt := time.Since(start)

	netRate, netErr := link.MeasureTCPLoopback(units.Bytes(len(ciphertext)), 64*units.KiB)

	dec, _ := aesstream.New(key, 9)
	start = time.Now()
	plain, err := dec.Decrypt(ciphertext)
	if err != nil {
		log.Fatal(err)
	}
	tDecrypt := time.Since(start)

	start = time.Now()
	restored, err := lz4.Decompress(nil, plain, len(data))
	if err != nil {
		log.Fatal(err)
	}
	tDecompress := time.Since(start)
	if !bytes.Equal(restored, data) {
		log.Fatal("round trip corrupted the data")
	}

	fmt.Printf("== software kernel measurements (%d MiB corpus, LZ4 ratio %.2fx) ==\n",
		size>>20, ratio)
	fmt.Printf("  compress   %v (%s)\n", tCompress, units.Bytes(size).Over(tCompress))
	fmt.Printf("  encrypt    %v (%s)\n", tEncrypt, units.Bytes(len(compressed)).Over(tEncrypt))
	if netErr == nil {
		fmt.Printf("  network    TCP loopback at %s\n", netRate)
	} else {
		fmt.Printf("  network    loopback unavailable (%v); using 10 GiB/s model\n", netErr)
	}
	fmt.Printf("  decrypt    %v (%s)\n", tDecrypt, units.Bytes(len(compressed)).Over(tDecrypt))
	fmt.Printf("  decompress %v (%s)\n", tDecompress, units.Bytes(size).Over(tDecompress))
	fmt.Println("  round trip verified ✓")

	// 2. The paper's calibrated Figure 9 model.
	a, err := bitwmodel.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== paper's bump-in-the-wire model (Table 3, §5) ==\n")
	fmt.Printf("NC bounds: %s .. %s (paper: 59 .. 313 MiB/s)\n",
		a.ThroughputLower, a.ThroughputUpper)
	fmt.Printf("delay estimate %v (paper 38 µs), backlog estimate %s (paper 3 KiB)\n",
		a.DelayEstimate, a.BacklogEstimate)

	// 3. Bump-in-the-wire vs traditional deployment (Figures 5-8).
	trad, err := core.Analyze(bitwmodel.TraditionalPipeline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== deployment comparison ==\n")
	fmt.Printf("  %-22s %14s %14s\n", "", "bump", "traditional")
	fmt.Printf("  %-22s %14v %14v\n", "pipeline latency", a.TotalLatency, trad.TotalLatency)
	fmt.Printf("  %-22s %14v %14v\n", "delay estimate", a.DelayEstimate, trad.DelayEstimate)
	fmt.Printf("  %-22s %14s %14s\n", "backlog estimate",
		a.BacklogEstimate.String(), trad.BacklogEstimate.String())
	fmt.Printf("removing the PCIe return trip saves %v of latency per traversal\n",
		trad.TotalLatency-a.TotalLatency)

	// 4. What-if: how much must the arrival be throttled to make the
	// steady-state bounds finite? (The paper's future-work question.)
	ov, err := streamcalc.AnalyzeOverload(bitwmodel.Pipeline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== overload guidance ==\n")
	fmt.Printf("arrival %s exceeds sustainable %s; a 64 KiB buffer overflows in ",
		ov.ArrivalRate, ov.SustainableRate)
	if d, reached := ov.TimeToFill(64 * units.KiB); reached {
		fmt.Printf("%v\n", d)
	} else {
		fmt.Printf("never\n")
	}
}
