// Quickstart: model a three-stage streaming pipeline with network calculus,
// get throughput/delay/backlog bounds and a per-node buffer plan, then
// validate the bounds with the discrete-event simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"streamcalc"
)

func main() {
	// A camera streams 100 MiB/s in 64 KiB frames into a preprocessing
	// stage, a GPU inference stage that consumes 1 MiB batches, and an
	// uplink. All rates come from isolated measurements.
	p := streamcalc.Pipeline{
		Name: "vision-pipeline",
		Arrival: streamcalc.Arrival{
			Rate:      100 * streamcalc.MiBPerSec,
			Burst:     256 * streamcalc.KiB,
			MaxPacket: 64 * streamcalc.KiB,
		},
		Nodes: []streamcalc.Node{
			{
				Name: "preprocess", Kind: streamcalc.Compute,
				Rate:    400 * streamcalc.MiBPerSec,
				Latency: 2 * time.Millisecond,
				JobIn:   64 * streamcalc.KiB, JobOut: 64 * streamcalc.KiB,
			},
			{
				Name: "gpu-inference", Kind: streamcalc.Compute,
				Rate:    160 * streamcalc.MiBPerSec,
				MaxRate: 320 * streamcalc.MiBPerSec,
				Latency: 5 * time.Millisecond,
				JobIn:   1 * streamcalc.MiB, JobOut: 64 * streamcalc.KiB, // 16:1 reduction
			},
			{
				Name: "uplink", Kind: streamcalc.Link,
				Rate:    50 * streamcalc.MiBPerSec, // local: post-reduction bytes
				Latency: 8 * time.Millisecond,
				JobIn:   64 * streamcalc.KiB, JobOut: 64 * streamcalc.KiB,
				MaxPacket: 64 * streamcalc.KiB,
			},
		},
	}

	a, err := streamcalc.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== network calculus bounds ==")
	fmt.Printf("throughput: %s (guaranteed) .. %s (best case)\n",
		a.ThroughputLower, a.ThroughputUpper)
	fmt.Printf("bottleneck: %s\n", a.Bottleneck().Node.Name)
	fmt.Printf("end-to-end delay bound: %v\n", a.DelayBound)
	fmt.Printf("data in flight bound:   %s\n", a.BacklogBound)

	fmt.Println("\n== buffer plan (per-node backlog attribution) ==")
	for _, rec := range a.BufferPlan() {
		fmt.Printf("  %-14s %s\n", rec.Name, rec.Capacity)
	}

	// Validate with the discrete-event simulator: the observed delay and
	// backlog must stay below the analytic bounds.
	sim := streamcalc.NewSim(streamcalc.SimSource{
		Rate:       100 * streamcalc.MiBPerSec,
		PacketSize: 64 * streamcalc.KiB,
		TotalInput: 256 * streamcalc.MiB,
	}, 42)
	sim.Add(streamcalc.SimStageFromRate("preprocess",
		380*streamcalc.MiBPerSec, 420*streamcalc.MiBPerSec, 64*streamcalc.KiB, 64*streamcalc.KiB))
	sim.Add(streamcalc.SimStageFromRate("gpu-inference",
		150*streamcalc.MiBPerSec, 170*streamcalc.MiBPerSec, streamcalc.MiB, 64*streamcalc.KiB))
	sim.Add(streamcalc.SimStageFromRate("uplink",
		50*streamcalc.MiBPerSec, 50*streamcalc.MiBPerSec, 64*streamcalc.KiB, 64*streamcalc.KiB))
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== discrete-event simulation ==")
	fmt.Printf("throughput: %s\n", res.Throughput)
	fmt.Printf("delay max:  %v (bound %v)\n", res.DelayMax, a.DelayBound)
	fmt.Printf("backlog:    %s (bound %s)\n", res.MaxBacklog, a.BacklogBound)
	if res.DelayMax <= a.DelayBound && res.MaxBacklog <= a.BacklogBound {
		fmt.Println("simulation within the network-calculus bounds ✓")
	} else {
		fmt.Println("WARNING: simulation exceeded a bound")
	}
}
