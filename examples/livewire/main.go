// Livewire example: actually *run* the bump-in-the-wire application as a
// concurrent streaming pipeline (LZ4 -> AES -> real TCP loopback -> AES ->
// LZ4) with the stream runtime, derive a network-calculus model from the
// live measurements, and check the analytic bounds against the observed
// behaviour — the full measure/model/validate loop of the paper on a real
// execution instead of a simulator.
//
// Run with: go run ./examples/livewire
package main

import (
	"bytes"
	"fmt"
	"log"

	"streamcalc"
	"streamcalc/internal/aesstream"
	"streamcalc/internal/gen"
	"streamcalc/internal/stream"
)

func main() {
	const chunk = 64 * 1024
	data := gen.Text(32<<20, 0.62, 11) // 32 MiB, ~2.2x compressible
	key := bytes.Repeat([]byte{0x5c}, aesstream.KeySize)

	enc, err := stream.EncryptAES(key, 1)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := stream.DecryptAES(key, 1)
	if err != nil {
		log.Fatal(err)
	}
	p := stream.New("bitw-live", 8).
		Add(stream.CompressLZ4()).
		Add(enc)
	netStage, closer, err := stream.TCPLoopback()
	if err == nil {
		defer closer()
		p.Add(netStage)
	} else {
		fmt.Printf("(TCP loopback unavailable: %v — running without the network hop)\n", err)
	}
	p.Add(dec).
		Add(stream.DecompressLZ4()).
		Add(stream.VerifySink("verify", data))

	m, err := p.Run(stream.SliceSource(data, chunk))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== live run (%s in %v) ==\n", m.InputBytes, m.Elapsed)
	fmt.Printf("throughput (input-referred): %s\n", m.Throughput)
	fmt.Printf("chunk latency min/mean/max:  %v / %v / %v\n",
		m.DelayMin, m.DelayMean, m.DelayMax)
	fmt.Printf("\n%-12s %10s %12s %12s %8s %10s\n",
		"stage", "chunks", "busy rate", "gain", "queue", "busy")
	for _, ss := range m.Stages {
		fmt.Printf("%-12s %10d %12s %12.3f %8d %10v\n",
			ss.Name, ss.Chunks, ss.Rate, ss.Gain(), ss.QueuePeakChunks, ss.BusyTime.Round(1e6))
	}

	// Derive the network-calculus model from these live measurements. The
	// source pushes as fast as backpressure admits, so the arrival envelope
	// is "mean throughput + everything the bounded queues can admit at
	// once": burst = total channel capacity.
	arrival := streamcalc.Arrival{
		Rate:      m.Throughput,
		Burst:     streamcalc.Bytes(8 * chunk * (len(m.Stages) + 1)),
		MaxPacket: chunk,
	}
	model, err := m.Model("bitw-live", arrival)
	if err != nil {
		log.Fatal(err)
	}
	a, err := streamcalc.Analyze(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== model derived from the live measurements ==\n")
	fmt.Printf("throughput bounds: %s .. %s (observed %s)\n",
		a.ThroughputLower, a.ThroughputUpper, m.Throughput)
	fmt.Printf("bottleneck: %s\n", a.Bottleneck().Node.Name)
	bound := a.DelayBound
	kind := "bound"
	if a.Overloaded {
		bound, kind = a.DelayEstimate, "estimate"
	}
	fmt.Printf("delay %s: %v (observed mean %v, max %v)\n",
		kind, bound, m.DelayMean, m.DelayMax)
	if m.DelayMax <= bound {
		fmt.Println("observed delays within the analytic envelope ✓")
	} else {
		fmt.Println("note: the max delay exceeds the envelope when the offered load is" +
			" burstier than the assumed leaky bucket (wall-clock jitter, GC, OS scheduling)")
	}
	fmt.Printf("\nbuffer plan from backlog attribution:\n")
	for _, rec := range a.BufferPlan() {
		cap := rec.Capacity.String()
		if rec.Infinite {
			cap = "unbounded (bottleneck)"
		}
		fmt.Printf("  %-12s %s\n", rec.Name, cap)
	}
}
