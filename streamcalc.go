// Package streamcalc applies deterministic network calculus to streaming
// data applications on heterogeneous computing platforms, reproducing and
// packaging the models of Faber & Chamberlain, "Application of Network
// Calculus Models to Heterogeneous Streaming Applications".
//
// The library has three interlocking parts:
//
//   - The min-plus curve algebra (Curve and its operations): leaky-bucket
//     arrival curves, rate-latency service curves, convolution,
//     deconvolution, and the deviation measures that yield delay and
//     backlog bounds.
//
//   - The pipeline model (Pipeline, Node, Analyze): describe a chain of
//     computation and communication stages by isolated measurements —
//     sustained/best-case rates, latency, job sizes, packet sizes — and
//     obtain throughput bounds, delay and backlog bounds/estimates, output
//     flow bounds, per-node backlog attribution, and buffer plans, with
//     the paper's extensions for computational elements: input-referred
//     data normalization, packetization, and job-aggregation latency.
//
//   - Validation tools: a discrete-event pipeline simulator (SimPipeline)
//     and an M/M/1 queueing network baseline (QueueingNetwork) to compare
//     the analytic bounds against, exactly as the paper does.
//
// Quick start:
//
//	p := streamcalc.Pipeline{
//	    Arrival: streamcalc.Arrival{Rate: 704 * streamcalc.MiBPerSec, Burst: 12 * streamcalc.MiB},
//	    Nodes: []streamcalc.Node{
//	        {Name: "gpu", Rate: 350 * streamcalc.MiBPerSec, JobIn: 3 * streamcalc.MiB, JobOut: 3 * streamcalc.MiB},
//	    },
//	}
//	a, err := streamcalc.Analyze(p)
//	// a.ThroughputLower, a.DelayEstimate, a.BacklogEstimate, a.BufferPlan() ...
package streamcalc

import (
	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/envelope"
	"streamcalc/internal/queueing"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

// Data volumes and rates.
type (
	// Bytes is a data volume in bytes.
	Bytes = units.Bytes
	// Rate is a data rate in bytes per second.
	Rate = units.Rate
)

// Binary-prefixed constants re-exported for call-site readability.
const (
	KiB = units.KiB
	MiB = units.MiB
	GiB = units.GiB

	KiBPerSec = units.KiBPerSec
	MiBPerSec = units.MiBPerSec
	GiBPerSec = units.GiBPerSec
)

// ParseBytes parses "16MiB", "1.5 GiB", "2048", ...
func ParseBytes(s string) (Bytes, error) { return units.ParseBytes(s) }

// ParseRate parses "350MiB/s", "10 GiB/s", ...
func ParseRate(s string) (Rate, error) { return units.ParseRate(s) }

// Curve algebra.
type (
	// Curve is a wide-sense-increasing piecewise-linear function — the
	// common representation of arrival and service curves.
	Curve = curve.Curve
	// Segment is one affine piece of a Curve.
	Segment = curve.Segment
	// CurveBucket is one leaky-bucket term of an Envelope, in raw
	// bytes/second and bytes.
	CurveBucket = curve.Bucket
)

// Curve constructors and operations.
var (
	// LeakyBucket is the affine arrival curve alpha(t) = rate*t + burst.
	LeakyBucket = curve.Affine
	// RateLatency is the service curve beta(t) = rate * max(0, t-latency).
	RateLatency = curve.RateLatency
	// Staircase is the packetized arrival curve (one packet per period).
	Staircase = curve.Staircase
	// Envelope builds the lower envelope min_i(rate_i·t + burst_i) of a
	// set of leaky buckets in O(k log k).
	Envelope = curve.Envelope

	// Convolve is min-plus convolution (service concatenation).
	Convolve = curve.Convolve
	// Deconvolve is min-plus deconvolution (output arrival bounds).
	Deconvolve = curve.Deconvolve
	// DelayBound is the horizontal deviation between an arrival and a
	// service curve.
	DelayBound = curve.HDev
	// BacklogBound is the vertical deviation between an arrival and a
	// service curve.
	BacklogBound = curve.VDev
	// Packetize applies the arrival-side packetizer transform
	// alpha + l_max·1_{t>0}.
	Packetize = curve.AddBurst
	// PacketizeService applies the service-side transform [beta - l_max]⁺.
	PacketizeService = curve.SubConstantPositive
	// ResidualService is the left-over service under blind multiplexing
	// with cross traffic: [beta - alpha_cross]⁺.
	ResidualService = curve.ResidualService
	// Shape constrains a flow through a greedy shaper: alpha ⊗ sigma.
	Shape = curve.Shape
	// SubAdditiveClosure computes f* = min_k f^{⊗k}.
	SubAdditiveClosure = curve.SubAdditiveClosure
)

// Pipeline modeling (the paper's contribution).
type (
	// Pipeline is a chain of nodes fed by an arrival flow.
	Pipeline = core.Pipeline
	// Node is one computation or communication stage, described by
	// isolated measurements.
	Node = core.Node
	// NodeKind distinguishes Compute from Link stages.
	NodeKind = core.NodeKind
	// Arrival is the offered flow (leaky bucket plus packetizer).
	Arrival = core.Arrival
	// Bucket is one leaky-bucket constraint; Arrival.Extra buckets build
	// variable-rate (multi-segment concave) envelopes.
	Bucket = core.Bucket
	// Analysis is the result of Analyze.
	Analysis = core.Analysis
	// NodeAnalysis is the per-node analysis result.
	NodeAnalysis = core.NodeAnalysis
	// BufferRecommendation is one entry of Analysis.BufferPlan.
	BufferRecommendation = core.BufferRecommendation
	// OverloadAnalysis quantifies the R_alpha > R_beta regime.
	OverloadAnalysis = core.OverloadAnalysis

	// Graph is a DAG streaming application (fan-out/fan-in); Edge routes a
	// share of a node's output to another node.
	Graph = core.Graph
	// Edge connects Graph nodes; an empty From means the offered arrival.
	Edge = core.Edge
	// GraphAnalysis is the result of AnalyzeGraph.
	GraphAnalysis = core.GraphAnalysis
	// GraphNodeAnalysis is a per-node Graph result.
	GraphNodeAnalysis = core.GraphNodeAnalysis
)

// Node kinds.
const (
	Compute = core.Compute
	Link    = core.Link
)

// Analyze applies the network-calculus model to a pipeline.
func Analyze(p Pipeline) (*Analysis, error) { return core.Analyze(p) }

// AnalyzeOverload quantifies transient backlog growth, time-to-overflow,
// and the sustainable arrival rate for a (possibly overloaded) pipeline.
func AnalyzeOverload(p Pipeline) (*OverloadAnalysis, error) { return core.AnalyzeOverload(p) }

// AnalyzeGraph applies the model to a DAG application (fan-out with
// partition fractions or broadcast, fan-in summing branch envelopes).
func AnalyzeGraph(g Graph) (*GraphAnalysis, error) { return core.AnalyzeGraph(g) }

// Validation substrates.
type (
	// SimPipeline is the discrete-event pipeline simulator.
	SimPipeline = sim.Pipeline
	// SimSource configures the simulated arrival flow.
	SimSource = sim.SourceConfig
	// SimStage configures one simulated stage.
	SimStage = sim.StageConfig
	// SimResult carries simulation measurements.
	SimResult = sim.Result

	// QueueingNetwork is the M/M/1 comparison model.
	QueueingNetwork = queueing.Network
	// QueueingStage is one station of the queueing network.
	QueueingStage = queueing.Stage
	// QueueingResult is the queueing flow-analysis result.
	QueueingResult = queueing.Result
)

// NewSim creates a pipeline simulation (deterministic for a given seed).
func NewSim(src SimSource, seed uint64) *SimPipeline { return sim.New(src, seed) }

// SimStageFromRate builds a simulated stage from isolated min/max
// throughput measurements.
var SimStageFromRate = sim.StageFromRate

// AnalyzeQueueing runs the M/M/1 flow analysis.
func AnalyzeQueueing(n QueueingNetwork) (*QueueingResult, error) { return queueing.Analyze(n) }

// TracePoint is one sample of a measured cumulative-arrivals trajectory.
type TracePoint = envelope.Point

// FitArrival estimates leaky-bucket arrival parameters that dominate a
// measured cumulative trace (event/step semantics): the flow's long-run
// rate, optionally inflated by headroom, and the minimal burst at that
// rate. This is the measurement-to-model path: feed the result into
// Arrival{Rate, Burst}.
func FitArrival(trace []TracePoint, headroom float64) (Rate, Bytes, error) {
	return envelope.Fit(trace, headroom)
}

// EmpiricalArrival computes the empirical arrival curve of a measured
// trace: the tightest envelope over all time windows up to maxWindow.
func EmpiricalArrival(trace []TracePoint, maxWindow float64, n int) (Curve, error) {
	return envelope.Empirical(trace, maxWindow, n)
}
