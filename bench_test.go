// Benchmarks regenerating the paper's tables and figures. One benchmark per
// evaluation artifact (run `go test -bench=. -benchmem`):
//
//	BenchmarkFigure1Curves        Figure 1  curve construction and bounds
//	BenchmarkTable1Blast*         Table 1   BLAST model / simulation / queueing
//	BenchmarkFigure4BlastCurves   Figure 4  BLAST curve sampling + sim trace
//	BenchmarkBlastBounds          §4.2      job-traversal corroboration
//	BenchmarkTable2Stages         Table 2   LZ4/AES software-kernel rates
//	BenchmarkTable3Bitw*          Table 3   BITW model / simulation / queueing
//	BenchmarkFigure10BitwCurves   Figure 10 BITW curve sampling + sim trace
//	BenchmarkBitwBounds           §5        job-traversal corroboration
//
// plus ablation benchmarks for the design choices DESIGN.md calls out
// (exact vs sampled convolution, deconvolution candidates, simulator event
// throughput).
package streamcalc_test

import (
	"fmt"
	"testing"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/aesstream"
	"streamcalc/internal/apps/bitwmodel"
	"streamcalc/internal/apps/blastmodel"
	"streamcalc/internal/blast"
	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/des"
	"streamcalc/internal/gen"
	"streamcalc/internal/lz4"
	"streamcalc/internal/queueing"
	"streamcalc/internal/sim"
	"streamcalc/internal/stream"
	"streamcalc/internal/units"
)

// --- Figure 1 ---------------------------------------------------------------

func BenchmarkFigure1Curves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alpha := curve.Affine(1, 4)
		beta := curve.RateLatency(2, 3)
		gamma := curve.RateLatency(3, 1)
		_ = curve.HDev(alpha, beta)
		_ = curve.VDev(alpha, beta)
		conv := curve.Convolve(alpha, gamma)
		if _, ok := curve.Deconvolve(conv, beta); !ok {
			b.Fatal("unbounded")
		}
	}
}

// --- Table 1 (BLAST) --------------------------------------------------------

func BenchmarkTable1BlastModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := blastmodel.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		if a.ThroughputLower <= 0 {
			b.Fatal("bad bound")
		}
	}
}

func BenchmarkTable1BlastSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := blastmodel.SimulateThroughput(128*units.MiB, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Throughput <= 0 {
			b.Fatal("bad throughput")
		}
	}
}

func BenchmarkTable1BlastQueueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := queueing.Analyze(blastmodel.QueueingNetwork()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4 ---------------------------------------------------------------

func BenchmarkFigure4BlastCurves(b *testing.B) {
	a, err := blastmodel.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, c := range []curve.Curve{a.AlphaPrime, a.Beta, a.OutputBound} {
			xs, _ := c.Sample(0.120, 480)
			if len(xs) != 481 {
				b.Fatal("bad sample")
			}
		}
	}
}

// --- §4.2 bounds ------------------------------------------------------------

func BenchmarkBlastBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := blastmodel.SimulateJobTraversal(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.DelayMax <= 0 {
			b.Fatal("bad delay")
		}
	}
}

// --- Table 2 (software kernels) ----------------------------------------------

func BenchmarkTable2Stages(b *testing.B) {
	const size = 4 << 20
	avg := gen.Text(size, 0.62, 1)
	compressed := lz4.Compress(nil, avg)
	key := make([]byte, aesstream.KeySize)
	enc, _ := aesstream.New(key, 1)
	ct := enc.Encrypt(compressed, 4096)

	b.Run("Compress", func(b *testing.B) {
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			lz4.Compress(nil, avg)
		}
	})
	b.Run("Encrypt", func(b *testing.B) {
		b.SetBytes(int64(len(compressed)))
		for i := 0; i < b.N; i++ {
			enc.Encrypt(compressed, 4096)
		}
	})
	b.Run("Decrypt", func(b *testing.B) {
		dec, _ := aesstream.New(key, 1)
		b.SetBytes(int64(len(compressed)))
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Decompress", func(b *testing.B) {
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			if _, err := lz4.Decompress(nil, compressed, size); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BlastSeedMatch", func(b *testing.B) {
		query := gen.DNA(256, 2)
		db := gen.DNA(1<<20, 3)
		qi, err := blast.NewQueryIndex(query)
		if err != nil {
			b.Fatal(err)
		}
		packed := blast.Pack2Bit(db)
		b.SetBytes(int64(len(packed)))
		b.ResetTimer()
		var pos []uint32
		for i := 0; i < b.N; i++ {
			pos = blast.SeedMatch(qi, packed, len(db), pos[:0])
		}
	})
}

// --- Table 3 (bump in the wire) ----------------------------------------------

func BenchmarkTable3BitwModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bitwmodel.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		if a.ThroughputUpper <= 0 {
			b.Fatal("bad bound")
		}
	}
}

func BenchmarkTable3BitwSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bitwmodel.SimulateThroughput(8*units.MiB, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Throughput <= 0 {
			b.Fatal("bad throughput")
		}
	}
}

func BenchmarkTable3BitwQueueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := queueing.Analyze(bitwmodel.QueueingNetwork()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10 ----------------------------------------------------------------

func BenchmarkFigure10BitwCurves(b *testing.B) {
	a, err := bitwmodel.Analyze()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, c := range []curve.Curve{a.AlphaPrime, a.Beta, a.OutputBound, a.Gamma} {
			xs, _ := c.Sample(100e-6, 400)
			if len(xs) != 401 {
				b.Fatal("bad sample")
			}
		}
	}
}

// --- §5 bounds -----------------------------------------------------------------

func BenchmarkBitwBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bitwmodel.SimulateJobTraversal(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.DelayMax <= 0 {
			b.Fatal("bad delay")
		}
	}
}

// --- Ablations ------------------------------------------------------------------

// Exact concave/convex convolution vs the sampled fallback: the closed
// forms are what keep pipeline analysis cheap.
func BenchmarkAblationConvolveExact(b *testing.B) {
	f := curve.RateLatency(4, 3)
	g := curve.RateLatency(7, 2)
	for i := 0; i < b.N; i++ {
		curve.Convolve(f, g)
	}
}

func BenchmarkAblationConvolveSampled(b *testing.B) {
	f := curve.RateLatency(4, 3)
	g := curve.RateLatency(7, 2)
	for i := 0; i < b.N; i++ {
		curve.ConvolveSampled(f, g, 20, 512)
	}
}

// Exact deconvolution via the candidate-max algorithm.
func BenchmarkAblationDeconvolve(b *testing.B) {
	f := curve.Min(curve.Affine(5, 1), curve.Affine(1, 9))
	g := curve.RateLatency(6, 2)
	for i := 0; i < b.N; i++ {
		if _, ok := curve.Deconvolve(f, g); !ok {
			b.Fatal("unbounded")
		}
	}
}

// Raw event throughput of the DES kernel.
func BenchmarkAblationDESEvents(b *testing.B) {
	var s des.Simulator
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.Schedule(1, tick)
		}
	}
	s.Schedule(1, tick)
	b.ResetTimer()
	s.RunAll(uint64(b.N) + 1)
}

// End-to-end simulator cost per simulated byte.
func BenchmarkAblationSimPipeline(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		p := sim.New(sim.SourceConfig{Rate: 1e8, PacketSize: 4096, TotalInput: 1 << 20}, uint64(i)).
			Add(sim.StageFromRate("a", 2e8, 3e8, 4096, 4096)).
			Add(sim.StageFromRate("b", 1.5e8, 2e8, 16384, 16384)).
			Add(sim.StageFromRate("c", 2e8, 2e8, 4096, 4096))
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks ---------------------------------------------------

// DAG analysis cost (fork/join of the dagflow example's shape).
func BenchmarkAblationGraphAnalysis(b *testing.B) {
	g := core.Graph{
		Arrival: core.Arrival{Rate: 120 * units.MiBPerSec, Burst: 2 * units.MiB},
		Nodes: []core.Node{
			{Name: "decode", Rate: 400 * units.MiBPerSec, JobIn: 1, JobOut: 1},
			{Name: "detect", Rate: 40 * units.MiBPerSec, JobIn: 1, JobOut: 1},
			{Name: "archive", Rate: 300 * units.MiBPerSec, JobIn: 1, JobOut: 1},
			{Name: "uplink", Rate: 100 * units.MiBPerSec, JobIn: 1, JobOut: 1},
		},
		Edges: []core.Edge{
			{From: "", To: "decode"},
			{From: "decode", To: "detect", Fraction: 0.2},
			{From: "decode", To: "archive"},
			{From: "detect", To: "uplink"},
			{From: "archive", To: "uplink"},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeGraph(g); err != nil {
			b.Fatal(err)
		}
	}
}

// Mercator-style scheduling throughput on the BLASTN dataflow.
func BenchmarkAblationMercatorBlast(b *testing.B) {
	query := gen.DNA(256, 60)
	db, _ := gen.DNAWithPlants(1<<18, query, 1<<15, 61)
	b.SetBytes(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := blast.RunDataflow(db, query, 28, blast.DataflowConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Live concurrent pipeline throughput (compress+encrypt+decrypt+decompress).
func BenchmarkAblationStreamRuntime(b *testing.B) {
	data := gen.Text(1<<21, 0.6, 62)
	key := make([]byte, aesstream.KeySize)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, _ := stream.EncryptAES(key, uint64(i))
		dec, _ := stream.DecryptAES(key, uint64(i))
		p := stream.New("bench", 4).
			Add(stream.CompressLZ4()).
			Add(enc).
			Add(dec).
			Add(stream.DecompressLZ4())
		if _, err := p.Run(stream.SliceSource(data, 65536)); err != nil {
			b.Fatal(err)
		}
	}
}

// Residual-service computation cost.
func BenchmarkAblationResidualService(b *testing.B) {
	beta := curve.RateLatency(10, 2)
	cross := curve.Min(curve.Affine(3, 4), curve.Affine(5, 1))
	for i := 0; i < b.N; i++ {
		if _, ok := curve.ResidualService(beta, cross); !ok {
			b.Fatal("starved")
		}
	}
}

// --- Admission control --------------------------------------------------------

// admitBenchPlatform builds a 10-node platform preloaded with 50 admitted
// tenant flows, the steady state an online controller decides against.
func admitBenchPlatform(b *testing.B) *admit.Controller {
	b.Helper()
	nodes := make([]core.Node, 10)
	names := make([]string, 10)
	for i := range nodes {
		names[i] = fmt.Sprintf("n%d", i)
		nodes[i] = core.Node{
			Name: names[i], Rate: 2 * units.GiBPerSec, Latency: 100 * time.Microsecond,
			JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB,
		}
	}
	c, err := admit.New("bench", nodes)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		from := i % 5
		f := admit.Flow{
			ID:      fmt.Sprintf("base-%d", i),
			Arrival: core.Arrival{Rate: 10 * units.MiBPerSec, Burst: 64 * units.KiB, MaxPacket: 4 * units.KiB},
			Path:    names[from : from+5],
			SLO:     admit.SLO{MaxDelay: time.Second, MinThroughput: 10 * units.MiBPerSec},
		}
		if v := c.Admit(f); !v.Admitted {
			b.Fatalf("preload admit %d: %s", i, v.Reason)
		}
	}
	return c
}

// Full admission decision against 50 co-resident flows: candidate analysis
// plus the victim re-checks, then release to restore the platform.
func BenchmarkAdmit(b *testing.B) {
	c := admitBenchPlatform(b)
	f := admit.Flow{
		ID:      "probe",
		Arrival: core.Arrival{Rate: 20 * units.MiBPerSec, Burst: 128 * units.KiB, MaxPacket: 4 * units.KiB},
		Path:    []string{"n2", "n3", "n4", "n5", "n6"},
		SLO:     admit.SLO{MaxDelay: time.Second, MinThroughput: 20 * units.MiBPerSec},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := c.Admit(f)
		if !v.Admitted {
			b.Fatalf("probe rejected: %s", v.Reason)
		}
		c.Release("probe")
	}
}

// Cache hit path: a rejected spec re-checked on an unchanged platform is
// served from the verdict cache (only rejections persist — any commit bumps
// the epoch and flushes it).
func BenchmarkAdmitCached(b *testing.B) {
	c := admitBenchPlatform(b)
	hog := admit.Flow{
		ID:      "hog",
		Arrival: core.Arrival{Rate: 3 * units.GiBPerSec, Burst: units.MiB, MaxPacket: 4 * units.KiB},
		Path:    []string{"n0", "n1", "n2", "n3", "n4"},
	}
	if v := c.Admit(hog); v.Admitted {
		b.Fatal("hog must be rejected")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := c.Admit(hog)
		if v.Admitted || !v.Cached {
			b.Fatalf("expected cached rejection, got %+v", v)
		}
	}
}
