module streamcalc

go 1.22
