package streamcalc_test

import (
	"math"
	"testing"
	"time"

	"streamcalc"
)

// The facade must expose a workable end-to-end modeling flow.
func TestFacadeAnalyze(t *testing.T) {
	p := streamcalc.Pipeline{
		Name:    "facade",
		Arrival: streamcalc.Arrival{Rate: 2 * streamcalc.MiBPerSec, Burst: 5 * streamcalc.MiB},
		Nodes: []streamcalc.Node{
			{Name: "srv", Rate: 4 * streamcalc.MiBPerSec, Latency: 3 * time.Second, JobIn: 1, JobOut: 1},
		},
	}
	a, err := streamcalc.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputLower != 2*streamcalc.MiBPerSec { // capped by arrival
		t.Errorf("lower = %v", a.ThroughputLower)
	}
	want := 4250 * time.Millisecond
	if d := a.DelayBound - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("delay = %v", a.DelayBound)
	}
	if len(a.BufferPlan()) != 1 {
		t.Error("buffer plan")
	}
}

func TestFacadeCurves(t *testing.T) {
	alpha := streamcalc.LeakyBucket(2, 5)
	beta := streamcalc.RateLatency(4, 3)
	if d := streamcalc.DelayBound(alpha, beta); math.Abs(d-4.25) > 1e-9 {
		t.Errorf("delay bound = %v", d)
	}
	if x := streamcalc.BacklogBound(alpha, beta); math.Abs(x-11) > 1e-9 {
		t.Errorf("backlog bound = %v", x)
	}
	out, ok := streamcalc.Deconvolve(streamcalc.Convolve(alpha, streamcalc.LeakyBucket(10, 0)), beta)
	if !ok {
		t.Fatal("bounded deconvolution expected")
	}
	if out.UltimateSlope() != 2 {
		t.Errorf("output rate = %v", out.UltimateSlope())
	}
	p := streamcalc.Packetize(alpha, 3)
	if p.Burst() != 8 {
		t.Errorf("packetized burst = %v", p.Burst())
	}
	bp := streamcalc.PacketizeService(beta, 8)
	if math.Abs(bp.Latency()-5) > 1e-9 {
		t.Errorf("packetized service latency = %v", bp.Latency())
	}
}

func TestFacadeSim(t *testing.T) {
	p := streamcalc.NewSim(streamcalc.SimSource{
		Rate: 100, PacketSize: 10, TotalInput: 1000,
	}, 1).Add(streamcalc.SimStageFromRate("s", 200, 200, 10, 10))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputInput != 1000 {
		t.Errorf("delivered %v", res.OutputInput)
	}
}

func TestFacadeQueueing(t *testing.T) {
	res, err := streamcalc.AnalyzeQueueing(streamcalc.QueueingNetwork{
		ArrivalRate: 50,
		Stages:      []streamcalc.QueueingStage{{Name: "q", Rate: 100, JobIn: 1, JobOut: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable || res.Roofline != 50 {
		t.Errorf("queueing result %+v", res)
	}
}

func TestFacadeOverload(t *testing.T) {
	p := streamcalc.Pipeline{
		Arrival: streamcalc.Arrival{Rate: 10, Burst: 2},
		Nodes:   []streamcalc.Node{{Name: "s", Rate: 4, JobIn: 1, JobOut: 1}},
	}
	o, err := streamcalc.AnalyzeOverload(p)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Overloaded || o.GrowthRate != 6 {
		t.Errorf("overload %+v", o)
	}
}

func TestFacadeUnits(t *testing.T) {
	b, err := streamcalc.ParseBytes("20.6 MiB")
	if err != nil || b < 20*streamcalc.MiB {
		t.Errorf("ParseBytes: %v %v", b, err)
	}
	r, err := streamcalc.ParseRate("350 MiB/s")
	if err != nil || r != 350*streamcalc.MiBPerSec {
		t.Errorf("ParseRate: %v %v", r, err)
	}
}

func TestFacadeGraph(t *testing.T) {
	g := streamcalc.Graph{
		Arrival: streamcalc.Arrival{Rate: 10, Burst: 1},
		Nodes: []streamcalc.Node{
			{Name: "a", Rate: 20, JobIn: 1, JobOut: 1},
			{Name: "b", Rate: 15, JobIn: 1, JobOut: 1},
		},
		Edges: []streamcalc.Edge{
			{From: "", To: "a"},
			{From: "a", To: "b"},
		},
	}
	a, err := streamcalc.AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Stable || len(a.CriticalPath) != 2 {
		t.Errorf("graph analysis: stable=%v path=%v", a.Stable, a.CriticalPath)
	}
}

func TestFacadeMultiflow(t *testing.T) {
	beta := streamcalc.RateLatency(10, 2)
	cross := streamcalc.LeakyBucket(3, 4)
	resid, ok := streamcalc.ResidualService(beta, cross)
	if !ok {
		t.Fatal("residual expected")
	}
	if math.Abs(resid.UltimateSlope()-7) > 1e-9 {
		t.Errorf("residual rate %v", resid.UltimateSlope())
	}
	shaped := streamcalc.Shape(streamcalc.LeakyBucket(5, 10), streamcalc.LeakyBucket(3, 2))
	if shaped.UltimateSlope() > 3+1e-12 {
		t.Error("shaper must clamp the rate")
	}
	cl := streamcalc.SubAdditiveClosure(streamcalc.RateLatency(4, 3), 8)
	if cl.Value(3) > streamcalc.RateLatency(4, 3).Value(3)+1e-9 {
		t.Error("closure must not exceed the original")
	}
}

func TestFacadeEnvelope(t *testing.T) {
	trace := []streamcalc.TracePoint{{T: 0, Cum: 0}, {T: 0, Cum: 100}, {T: 1, Cum: 100}, {T: 1, Cum: 200}, {T: 2, Cum: 200}}
	rate, burst, err := streamcalc.FitArrival(trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 100 || float64(burst) < 99 {
		t.Errorf("fit: %v %v", rate, burst)
	}
	emp, err := streamcalc.EmpiricalArrival(trace, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if emp.Value(1) < 100 {
		t.Errorf("empirical(1) = %v", emp.Value(1))
	}
}

func TestFacadeStaircaseAndBuckets(t *testing.T) {
	sc := streamcalc.Staircase(100, 2, 4)
	if sc.Value(1) != 100 {
		t.Errorf("staircase(1) = %v", sc.Value(1))
	}
	p := streamcalc.Pipeline{
		Arrival: streamcalc.Arrival{
			Rate: 10, Burst: 1,
			Extra: []streamcalc.Bucket{{Rate: 3, Burst: 8}},
		},
		Nodes: []streamcalc.Node{{Name: "s", Rate: 5, JobIn: 1, JobOut: 1}},
	}
	a, err := streamcalc.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overloaded {
		t.Error("multi-bucket envelope keeps it stable")
	}
}
