package streamcalc_test

import (
	"fmt"
	"time"

	"streamcalc"
)

// Model a two-stage pipeline and read off the network-calculus bounds.
func Example() {
	p := streamcalc.Pipeline{
		Name:    "etl",
		Arrival: streamcalc.Arrival{Rate: 2 * streamcalc.MiBPerSec, Burst: 5 * streamcalc.MiB},
		Nodes: []streamcalc.Node{
			{Name: "parse", Rate: 10 * streamcalc.MiBPerSec, Latency: time.Second,
				JobIn: 1, JobOut: 1},
			{Name: "write", Rate: 4 * streamcalc.MiBPerSec, Latency: 2 * time.Second,
				JobIn: 1, JobOut: 1},
		},
	}
	a, _ := streamcalc.Analyze(p)
	fmt.Println("lower:", a.ThroughputLower)
	fmt.Println("delay:", a.DelayBound)
	fmt.Println("backlog:", a.BacklogBound)
	// Output:
	// lower: 2 MiB/s
	// delay: 4.25s
	// backlog: 11 MiB
}

// The curve algebra directly: delay and backlog bounds of a leaky-bucket
// flow through a rate-latency server.
func ExampleDelayBound() {
	alpha := streamcalc.LeakyBucket(2, 5) // 2 B/s, 5 B burst
	beta := streamcalc.RateLatency(4, 3)  // 4 B/s after 3 s
	fmt.Println("d =", streamcalc.DelayBound(alpha, beta))
	fmt.Println("x =", streamcalc.BacklogBound(alpha, beta))
	// Output:
	// d = 4.25
	// x = 11
}

// Service concatenation: two rate-latency servers in sequence.
func ExampleConvolve() {
	b1 := streamcalc.RateLatency(4, 3)
	b2 := streamcalc.RateLatency(7, 2)
	chain := streamcalc.Convolve(b1, b2)
	fmt.Println("rate:", chain.UltimateSlope())
	fmt.Println("latency:", chain.Latency())
	// Output:
	// rate: 4
	// latency: 5
}

// Output arrival bound of a served flow: the burst grows by r*T.
func ExampleDeconvolve() {
	alpha := streamcalc.LeakyBucket(2, 5)
	beta := streamcalc.RateLatency(4, 3)
	out, ok := streamcalc.Deconvolve(alpha, beta)
	fmt.Println(ok, out.ZeroAtOrigin().Burst())
	// Output:
	// true 11
}

// Fit a leaky-bucket arrival envelope to a measured cumulative trace.
func ExampleFitArrival() {
	trace := []streamcalc.TracePoint{
		{T: 0, Cum: 0}, {T: 0, Cum: 100},
		{T: 1, Cum: 100}, {T: 1, Cum: 200},
		{T: 2, Cum: 200},
	}
	rate, burst, _ := streamcalc.FitArrival(trace, 0)
	fmt.Println(rate, burst)
	// Output:
	// 100 B/s 100 B
}

// Residual service under blind multiplexing with cross traffic.
func ExampleResidualService() {
	beta := streamcalc.RateLatency(10, 2)
	cross := streamcalc.LeakyBucket(3, 4)
	resid, _ := streamcalc.ResidualService(beta, cross)
	fmt.Println("rate:", resid.UltimateSlope())
	fmt.Printf("latency: %.3f\n", resid.Latency())
	// Output:
	// rate: 7
	// latency: 3.429
}
