// Package queueing implements the M/M/1 queueing-network flow analysis the
// paper uses as its comparison baseline (Faber et al.'s platform-agnostic
// streaming performance model): per-stage utilization from isolated mean
// service rates, a roofline throughput prediction at the bottleneck, and
// mean queue lengths/sojourn times under Markovian assumptions.
//
// Like the network-calculus model, all stage rates are normalized to the
// pipeline input through the chain of job ratios. Unlike network calculus,
// the prediction is a single nominal value (mean flow), not a bound — the
// source of the optimism visible in the paper's Tables 1 and 3.
package queueing

import (
	"errors"
	"fmt"
	"math"
	"time"

	"streamcalc/internal/units"
)

// Stage describes one station of the queueing network with measurements
// taken in isolation, in the stage's local data units.
type Stage struct {
	Name string
	// Rate is the mean service rate (local bytes/s). For the M/M/1 model
	// this is the Markovian service rate mu in byte terms.
	Rate units.Rate
	// JobIn/JobOut define the data-volume gain, exactly as in the
	// network-calculus model.
	JobIn, JobOut units.Bytes
}

// Gain returns JobOut/JobIn.
func (s Stage) Gain() float64 { return float64(s.JobOut) / float64(s.JobIn) }

// Network is a chain of stations fed at ArrivalRate (input bytes/s).
type Network struct {
	Name        string
	ArrivalRate units.Rate
	Stages      []Stage
}

// StageMetrics is the per-station analysis result.
type StageMetrics struct {
	Name string
	// Rate is the input-referred mean service rate.
	Rate units.Rate
	// Utilization is rho = lambda/mu.
	Utilization float64
	// Stable is rho < 1.
	Stable bool
	// MeanJobs is the M/M/1 mean number of jobs in the station,
	// rho/(1-rho); +Inf when unstable.
	MeanJobs float64
	// MeanSojourn is the M/M/1 mean time a job spends in the station,
	// 1/(mu_jobs - lambda_jobs); +Inf when unstable.
	MeanSojourn time.Duration
}

// Result is the network-level analysis.
type Result struct {
	Stages []StageMetrics
	// Roofline is the flow-analysis throughput prediction: the arrival rate
	// capped by the smallest input-referred service rate. This is the
	// "queueing theory prediction" of the paper's Tables 1 and 3.
	Roofline units.Rate
	// BottleneckIndex is the station with the smallest input-referred rate.
	BottleneckIndex int
	// Stable reports whether every station has rho < 1.
	Stable bool
	// MeanDelay is the sum of per-station mean sojourn times (Jackson-style
	// decomposition); +Inf when unstable.
	MeanDelay time.Duration
}

// Analyze runs the flow analysis.
func Analyze(n Network) (*Result, error) {
	if n.ArrivalRate <= 0 {
		return nil, errors.New("queueing: ArrivalRate must be positive")
	}
	if len(n.Stages) == 0 {
		return nil, errors.New("queueing: no stages")
	}
	res := &Result{Stable: true}
	gain := 1.0
	minRate := units.Rate(math.Inf(1))
	totalSojourn := 0.0
	for i, s := range n.Stages {
		if s.Rate <= 0 || s.JobIn <= 0 || s.JobOut <= 0 {
			return nil, fmt.Errorf("queueing: stage %d (%s): Rate, JobIn, JobOut must be positive", i, s.Name)
		}
		m := StageMetrics{Name: s.Name}
		m.Rate = s.Rate.Mul(1 / gain)
		lambda := float64(n.ArrivalRate)
		mu := float64(m.Rate)
		m.Utilization = lambda / mu
		m.Stable = m.Utilization < 1
		if !m.Stable {
			res.Stable = false
			m.MeanJobs = math.Inf(1)
			m.MeanSojourn = time.Duration(math.MaxInt64)
		} else {
			m.MeanJobs = m.Utilization / (1 - m.Utilization)
			// Job-level rates: jobs of (input-referred) size JobIn/gain.
			jobSize := float64(s.JobIn) / gain
			muJobs := mu / jobSize
			lambdaJobs := lambda / jobSize
			sojourn := 1 / (muJobs - lambdaJobs)
			totalSojourn += sojourn
			m.MeanSojourn = durSec(sojourn)
		}
		if m.Rate < minRate {
			minRate = m.Rate
			res.BottleneckIndex = i
		}
		gain *= s.Gain()
		res.Stages = append(res.Stages, m)
	}
	res.Roofline = n.ArrivalRate
	if minRate < res.Roofline {
		res.Roofline = minRate
	}
	if res.Stable {
		res.MeanDelay = durSec(totalSojourn)
	} else {
		res.MeanDelay = time.Duration(math.MaxInt64)
	}
	return res, nil
}

func durSec(s float64) time.Duration {
	if s >= float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(s * float64(time.Second))
}

// MM1 returns the textbook M/M/1 steady-state metrics for job arrival rate
// lambda and service rate mu (jobs/s): utilization, mean jobs in system,
// mean sojourn time, and mean waiting time. Unstable systems (lambda >= mu)
// yield +Inf values.
func MM1(lambda, mu float64) (rho, meanJobs, sojourn, wait float64) {
	if mu <= 0 || lambda < 0 {
		return math.NaN(), math.NaN(), math.NaN(), math.NaN()
	}
	rho = lambda / mu
	if rho >= 1 {
		return rho, math.Inf(1), math.Inf(1), math.Inf(1)
	}
	meanJobs = rho / (1 - rho)
	sojourn = 1 / (mu - lambda)
	wait = rho / (mu - lambda)
	return rho, meanJobs, sojourn, wait
}

// MD1MeanWait returns the M/D/1 mean waiting time (deterministic service of
// duration 1/mu): rho/(2 mu (1-rho)) — half the M/M/1 wait, useful when the
// simulator runs with (near-)deterministic stage times.
func MD1MeanWait(lambda, mu float64) float64 {
	if mu <= 0 || lambda < 0 {
		return math.NaN()
	}
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (2 * mu * (1 - rho))
}

// MG1MeanWait returns the Pollaczek–Khinchine mean waiting time of an
// M/G/1 queue: lambda * E[S^2] / (2 (1 - rho)), where the service time S
// has mean meanS and variance varS. It generalizes M/M/1 (varS = meanS^2)
// and M/D/1 (varS = 0) and matches the simulator's uniform-service stages
// (varS = width^2/12).
func MG1MeanWait(lambda, meanS, varS float64) float64 {
	if lambda < 0 || meanS <= 0 || varS < 0 {
		return math.NaN()
	}
	rho := lambda * meanS
	if rho >= 1 {
		return math.Inf(1)
	}
	es2 := varS + meanS*meanS
	return lambda * es2 / (2 * (1 - rho))
}

// MM1KLossProb returns the blocking probability of an M/M/1/K queue with at
// most K jobs in the system: the probability an arriving job is dropped.
// Used for finite-buffer what-if analysis alongside the network-calculus
// buffer plan.
func MM1KLossProb(lambda, mu float64, k int) float64 {
	if mu <= 0 || lambda < 0 || k < 1 {
		return math.NaN()
	}
	rho := lambda / mu
	if rho == 1 {
		return 1 / float64(k+1)
	}
	return (1 - rho) * math.Pow(rho, float64(k)) / (1 - math.Pow(rho, float64(k+1)))
}
