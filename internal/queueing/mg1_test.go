package queueing

import (
	"math"
	"testing"

	"streamcalc/internal/sim"
)

func TestMG1Reductions(t *testing.T) {
	lambda, mu := 50.0, 100.0
	meanS := 1 / mu
	// Exponential service: varS = meanS^2 -> reduces to M/M/1 wait.
	_, _, _, wqMM1 := MM1(lambda, mu)
	if got := MG1MeanWait(lambda, meanS, meanS*meanS); math.Abs(got-wqMM1) > 1e-12 {
		t.Errorf("M/G/1 with exp variance = %v, want M/M/1 %v", got, wqMM1)
	}
	// Deterministic service: varS = 0 -> reduces to M/D/1 wait.
	if got := MG1MeanWait(lambda, meanS, 0); math.Abs(got-MD1MeanWait(lambda, mu)) > 1e-12 {
		t.Errorf("M/G/1 with zero variance = %v, want M/D/1", got)
	}
	if !math.IsInf(MG1MeanWait(100, 0.01, 0), 1) {
		t.Error("rho >= 1 must be infinite")
	}
	if !math.IsNaN(MG1MeanWait(1, 0, 0)) {
		t.Error("non-positive mean service must be NaN")
	}
}

// The simulator's uniform-service stage matches the Pollaczek–Khinchine
// formula with varS = width^2/12.
func TestMG1AgainstUniformServiceSim(t *testing.T) {
	// Jobs of 10 bytes; service uniform in [10/120, 10/80] s = [83.3, 125] ms.
	lo, hi := 10.0/120.0, 10.0/80.0
	meanS := (lo + hi) / 2
	varS := (hi - lo) * (hi - lo) / 12
	lambda := 6.0 // jobs/s -> rho ~ 0.625

	cfg := sim.StageFromRate("u", 80, 120, 10, 10)
	p := sim.New(sim.SourceConfig{
		Rate: 60, PacketSize: 10, TotalInput: 400000, Poisson: true,
	}, 77).Add(cfg)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantSojourn := MG1MeanWait(lambda, meanS, varS) + meanS
	got := res.DelayMean.Seconds()
	if math.Abs(got-wantSojourn)/wantSojourn > 0.12 {
		t.Errorf("sim sojourn %v vs M/G/1 %v", got, wantSojourn)
	}
}
