package queueing

import (
	"math"
	"testing"
	"time"

	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

func TestMM1ClosedForms(t *testing.T) {
	rho, l, w, wq := MM1(50, 100)
	if rho != 0.5 {
		t.Errorf("rho = %v", rho)
	}
	if l != 1 {
		t.Errorf("L = %v", l)
	}
	if w != 0.02 {
		t.Errorf("W = %v", w)
	}
	if math.Abs(wq-0.01) > 1e-12 {
		t.Errorf("Wq = %v", wq)
	}
}

func TestMM1Unstable(t *testing.T) {
	_, l, w, wq := MM1(100, 100)
	if !math.IsInf(l, 1) || !math.IsInf(w, 1) || !math.IsInf(wq, 1) {
		t.Error("rho >= 1 must be infinite")
	}
	rho, _, _, _ := MM1(10, 0)
	if !math.IsNaN(rho) {
		t.Error("mu=0 must be NaN")
	}
}

func TestMD1HalvesWait(t *testing.T) {
	_, _, _, wqMM1 := MM1(50, 100)
	wqMD1 := MD1MeanWait(50, 100)
	if math.Abs(wqMD1-wqMM1/2) > 1e-12 {
		t.Errorf("M/D/1 wait %v, want half of %v", wqMD1, wqMM1)
	}
	if !math.IsInf(MD1MeanWait(100, 100), 1) {
		t.Error("unstable M/D/1 must be +Inf")
	}
	if !math.IsNaN(MD1MeanWait(1, 0)) {
		t.Error("mu=0 must be NaN")
	}
}

func TestMM1KLoss(t *testing.T) {
	// K=1 (no waiting room): loss = rho/(1+rho) for lambda=mu -> 1/2; use
	// the rho==1 branch.
	if got := MM1KLossProb(100, 100, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("K=1 rho=1 loss = %v, want 0.5", got)
	}
	// Light load, large K: loss tiny.
	if got := MM1KLossProb(10, 100, 10); got > 1e-9 {
		t.Errorf("light-load loss = %v", got)
	}
	// Loss decreases with K.
	l3 := MM1KLossProb(80, 100, 3)
	l6 := MM1KLossProb(80, 100, 6)
	if l6 >= l3 {
		t.Errorf("loss must decrease with K: %v -> %v", l3, l6)
	}
	if !math.IsNaN(MM1KLossProb(1, 1, 0)) {
		t.Error("K<1 must be NaN")
	}
}

func TestAnalyzeRoofline(t *testing.T) {
	n := Network{
		ArrivalRate: 704 * units.MiBPerSec,
		Stages: []Stage{
			{Name: "fa2bit", Rate: 800 * units.MiBPerSec, JobIn: 1, JobOut: 1},
			{Name: "gpu", Rate: 500 * units.MiBPerSec, JobIn: 1, JobOut: 1},
		},
	}
	res, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Roofline != 500*units.MiBPerSec {
		t.Errorf("roofline = %v", res.Roofline)
	}
	if res.BottleneckIndex != 1 {
		t.Errorf("bottleneck = %d", res.BottleneckIndex)
	}
	if res.Stable {
		t.Error("arrival 704 > service 500: unstable")
	}
	if !math.IsInf(res.Stages[1].MeanJobs, 1) {
		t.Error("unstable stage must have infinite queue")
	}
}

func TestAnalyzeNormalization(t *testing.T) {
	// A 2:1 filter doubles the downstream input-referred rate.
	n := Network{
		ArrivalRate: 100,
		Stages: []Stage{
			{Name: "filter", Rate: 400, JobIn: 2, JobOut: 1},
			{Name: "down", Rate: 150, JobIn: 1, JobOut: 1},
		},
	}
	res, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[1].Rate != 300 {
		t.Errorf("input-referred rate = %v, want 300", res.Stages[1].Rate)
	}
	if !res.Stable {
		t.Error("must be stable")
	}
	// rho at downstream = 100/300.
	if math.Abs(res.Stages[1].Utilization-1.0/3.0) > 1e-12 {
		t.Errorf("rho = %v", res.Stages[1].Utilization)
	}
	if res.Roofline != 100 {
		t.Errorf("roofline limited by arrival: %v", res.Roofline)
	}
	if res.MeanDelay <= 0 {
		t.Error("mean delay must be positive")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(Network{}); err == nil {
		t.Error("want error for zero arrival")
	}
	if _, err := Analyze(Network{ArrivalRate: 1}); err == nil {
		t.Error("want error for no stages")
	}
	if _, err := Analyze(Network{ArrivalRate: 1, Stages: []Stage{{Rate: 0, JobIn: 1, JobOut: 1}}}); err == nil {
		t.Error("want error for zero rate")
	}
}

// Cross-validation: the M/M/1 sojourn formula matches the discrete-event
// simulator run in Markovian mode.
func TestMM1AgainstSimulator(t *testing.T) {
	lambda, mu := 50.0, 100.0 // jobs/s, 10-byte jobs
	cfg := sim.StageFromRate("mm1", units.Rate(mu*10), units.Rate(mu*10), 10, 10)
	cfg.ExpExec = true
	p := sim.New(sim.SourceConfig{
		Rate: units.Rate(lambda * 10), PacketSize: 10,
		TotalInput: 600000, Poisson: true,
	}, 99).Add(cfg)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, _, w, _ := MM1(lambda, mu)
	got := res.DelayMean.Seconds()
	if math.Abs(got-w)/w > 0.15 {
		t.Errorf("simulated sojourn %v vs M/M/1 %v", got, w)
	}
	// Utilization should be near rho = 0.5.
	if math.Abs(res.Stages[0].Utilization-0.5) > 0.05 {
		t.Errorf("utilization %v", res.Stages[0].Utilization)
	}
}

// Determinism of the RNG streams keeps this check meaningful.
func TestMM1SimulatorSeedStability(t *testing.T) {
	run := func(seed uint64) time.Duration {
		cfg := sim.StageFromRate("mm1", 1000, 1000, 10, 10)
		cfg.ExpExec = true
		p := sim.New(sim.SourceConfig{Rate: 500, PacketSize: 10, TotalInput: 50000, Poisson: true}, seed).Add(cfg)
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.DelayMean
	}
	if run(5) != run(5) {
		t.Error("same seed must agree")
	}
}
