// Package mercator implements a software analogue of the MERCATOR
// framework the paper's BLAST implementation runs on: an irregular
// streaming-dataflow executor where stages produce a variable number of
// outputs per input (most produce zero — they are filters), finite queues
// sit between stages to collect and redistribute work, and a scheduler
// repeatedly picks the stage whose input occupancy is highest so batches
// stay full (the paper: "scheduling execution of stages is performed so as
// to maximize GPU thread occupancy and minimize overhead").
//
// Items are opaque interface values; stages process a batch at a time
// (mimicking a SIMD ensemble of the batch width) and may emit any number of
// results. The executor records per-stage batch counts, average batch fill,
// and item throughput — the occupancy statistics that motivated Mercator's
// design.
package mercator

import (
	"errors"
	"fmt"
)

// Node is one dataflow stage: it consumes a batch of items and appends its
// outputs to out.
type Node interface {
	// Name identifies the stage.
	Name() string
	// ProcessBatch consumes items and returns outputs (zero or more per
	// input; filters usually return fewer).
	ProcessBatch(items []any) []any
}

// NodeFunc adapts a function to Node.
type NodeFunc struct {
	NodeName string
	Fn       func(items []any) []any
}

// Name implements Node.
func (n NodeFunc) Name() string { return n.NodeName }

// ProcessBatch implements Node.
func (n NodeFunc) ProcessBatch(items []any) []any { return n.Fn(items) }

// Policy selects which runnable stage fires next.
type Policy int

const (
	// FullestFirst picks the stage with the most queued items — Mercator's
	// occupancy-maximizing heuristic.
	FullestFirst Policy = iota
	// RoundRobin cycles through runnable stages — the baseline the
	// occupancy scheduler is compared against.
	RoundRobin
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FullestFirst:
		return "fullest-first"
	case RoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config tunes the executor.
type Config struct {
	// BatchWidth is the SIMD ensemble width: at most this many items are
	// consumed per firing. Required >= 1.
	BatchWidth int
	// QueueCap bounds each inter-stage queue in items; a stage is not
	// runnable if its downstream queue has less than BatchWidth free slots
	// (outputs could overflow). 0 means unbounded.
	QueueCap int
	// Policy selects the scheduler.
	Policy Policy
}

// StageReport summarizes one stage after a run.
type StageReport struct {
	Name string
	// Firings is how many batches the stage executed.
	Firings int64
	// ItemsIn/ItemsOut count items consumed and produced.
	ItemsIn, ItemsOut int64
	// AvgOccupancy is mean batch fill relative to BatchWidth (the
	// scheduler's objective).
	AvgOccupancy float64
	// PeakQueue is the input-queue high-water mark in items.
	PeakQueue int
}

// Report is the result of a run.
type Report struct {
	Stages []StageReport
	// Firings is the total number of stage firings (the proxy for kernel
	// launches the scheduler minimizes).
	Firings int64
	// Outputs are the items that left the last stage.
	Outputs []any
}

// Pipeline is a chain of dataflow nodes.
type Pipeline struct {
	cfg   Config
	nodes []Node
}

// New creates a pipeline with the given configuration.
func New(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg}
}

// Add appends a node and returns the pipeline for chaining.
func (p *Pipeline) Add(n Node) *Pipeline {
	p.nodes = append(p.nodes, n)
	return p
}

// Run feeds the inputs through the dataflow until everything drains and
// returns the outputs plus scheduling statistics.
func (p *Pipeline) Run(inputs []any) (*Report, error) {
	if len(p.nodes) == 0 {
		return nil, errors.New("mercator: pipeline has no nodes")
	}
	if p.cfg.BatchWidth < 1 {
		return nil, errors.New("mercator: BatchWidth must be >= 1")
	}
	if p.cfg.QueueCap > 0 && p.cfg.QueueCap < p.cfg.BatchWidth {
		return nil, errors.New("mercator: QueueCap below BatchWidth deadlocks")
	}
	n := len(p.nodes)
	queues := make([][]any, n) // queues[i] feeds nodes[i]
	queues[0] = append(queues[0], inputs...)
	peaks := make([]int, n)
	peaks[0] = len(inputs)
	reports := make([]StageReport, n)
	for i, nd := range p.nodes {
		reports[i].Name = nd.Name()
	}
	var outputs []any
	rrNext := 0

	runnable := func(i int) bool {
		if len(queues[i]) == 0 {
			return false
		}
		if p.cfg.QueueCap > 0 && i+1 < n {
			// Worst case each input yields several outputs; require room
			// for one batch to keep progress guaranteed without overflow
			// bookkeeping (Mercator reserves output space the same way).
			if len(queues[i+1])+p.cfg.BatchWidth > p.cfg.QueueCap {
				return false
			}
		}
		return true
	}

	pick := func() int {
		switch p.cfg.Policy {
		case RoundRobin:
			for k := 0; k < n; k++ {
				i := (rrNext + k) % n
				if runnable(i) {
					rrNext = (i + 1) % n
					return i
				}
			}
		default: // FullestFirst
			best, bestLen := -1, 0
			for i := 0; i < n; i++ {
				if runnable(i) && len(queues[i]) > bestLen {
					best, bestLen = i, len(queues[i])
				}
			}
			return best
		}
		return -1
	}

	var totalFirings int64
	for {
		i := pick()
		if i < 0 {
			// No stage runnable with the downstream-space rule; if queues
			// still hold items, fall back to draining the deepest stage
			// closest to the sink (guaranteed progress: the sink has no
			// space constraint).
			i = -1
			for j := n - 1; j >= 0; j-- {
				if len(queues[j]) > 0 {
					i = j
					break
				}
			}
			if i < 0 {
				break // fully drained
			}
		}
		batch := queues[i]
		if len(batch) > p.cfg.BatchWidth {
			batch = batch[:p.cfg.BatchWidth]
		}
		queues[i] = queues[i][len(batch):]
		out := p.nodes[i].ProcessBatch(batch)
		totalFirings++
		r := &reports[i]
		r.Firings++
		r.ItemsIn += int64(len(batch))
		r.ItemsOut += int64(len(out))
		r.AvgOccupancy += float64(len(batch)) / float64(p.cfg.BatchWidth)
		if i+1 < n {
			queues[i+1] = append(queues[i+1], out...)
			if len(queues[i+1]) > peaks[i+1] {
				peaks[i+1] = len(queues[i+1])
			}
		} else {
			outputs = append(outputs, out...)
		}
	}

	for i := range reports {
		if reports[i].Firings > 0 {
			reports[i].AvgOccupancy /= float64(reports[i].Firings)
		}
		reports[i].PeakQueue = peaks[i]
	}
	return &Report{Stages: reports, Firings: totalFirings, Outputs: outputs}, nil
}
