package mercator

import (
	"testing"
)

// double emits each item twice; drop filters everything; id passes through.
func idNode(name string) Node {
	return NodeFunc{NodeName: name, Fn: func(items []any) []any { return items }}
}

func TestIdentityPipeline(t *testing.T) {
	in := make([]any, 100)
	for i := range in {
		in[i] = i
	}
	rep, err := New(Config{BatchWidth: 16}).Add(idNode("a")).Add(idNode("b")).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != 100 {
		t.Fatalf("outputs = %d", len(rep.Outputs))
	}
	// Order within a chain of identity stages is preserved.
	for i, o := range rep.Outputs {
		if o.(int) != i {
			t.Fatalf("order broken at %d: %v", i, o)
		}
	}
	if rep.Firings == 0 {
		t.Error("no firings recorded")
	}
}

func TestFilterAndExpand(t *testing.T) {
	in := make([]any, 64)
	for i := range in {
		in[i] = i
	}
	even := NodeFunc{NodeName: "even", Fn: func(items []any) []any {
		var out []any
		for _, it := range items {
			if it.(int)%2 == 0 {
				out = append(out, it)
			}
		}
		return out
	}}
	dup := NodeFunc{NodeName: "dup", Fn: func(items []any) []any {
		var out []any
		for _, it := range items {
			out = append(out, it, it)
		}
		return out
	}}
	rep, err := New(Config{BatchWidth: 8}).Add(even).Add(dup).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != 64 { // 32 evens duplicated
		t.Fatalf("outputs = %d", len(rep.Outputs))
	}
	if rep.Stages[0].ItemsIn != 64 || rep.Stages[0].ItemsOut != 32 {
		t.Errorf("filter stats: %+v", rep.Stages[0])
	}
	if rep.Stages[1].ItemsIn != 32 || rep.Stages[1].ItemsOut != 64 {
		t.Errorf("expander stats: %+v", rep.Stages[1])
	}
}

func TestOccupancySchedulerBeatsRoundRobinOnFilters(t *testing.T) {
	// A strong filter feeding an expensive stage: fullest-first batches the
	// survivors, firing the downstream stage fewer times than round-robin
	// with the same batch width.
	build := func(policy Policy) *Report {
		in := make([]any, 4096)
		for i := range in {
			in[i] = i
		}
		filter := NodeFunc{NodeName: "filter", Fn: func(items []any) []any {
			var out []any
			for _, it := range items {
				if it.(int)%16 == 0 {
					out = append(out, it)
				}
			}
			return out
		}}
		rep, err := New(Config{BatchWidth: 64, QueueCap: 1 << 16, Policy: policy}).
			Add(filter).Add(idNode("work")).Run(in)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ff := build(FullestFirst)
	rr := build(RoundRobin)
	ffWork := ff.Stages[1]
	rrWork := rr.Stages[1]
	if ffWork.ItemsIn != rrWork.ItemsIn {
		t.Fatalf("schedulers saw different item counts: %d vs %d", ffWork.ItemsIn, rrWork.ItemsIn)
	}
	if ffWork.Firings > rrWork.Firings {
		t.Errorf("fullest-first fired the work stage more often (%d) than round-robin (%d)",
			ffWork.Firings, rrWork.Firings)
	}
	if ffWork.AvgOccupancy < rrWork.AvgOccupancy {
		t.Errorf("fullest-first occupancy %.3f below round-robin %.3f",
			ffWork.AvgOccupancy, rrWork.AvgOccupancy)
	}
}

func TestQueueCapRespected(t *testing.T) {
	in := make([]any, 1000)
	for i := range in {
		in[i] = i
	}
	rep, err := New(Config{BatchWidth: 8, QueueCap: 32}).
		Add(idNode("a")).Add(idNode("b")).Add(idNode("c")).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != 1000 {
		t.Fatalf("outputs = %d", len(rep.Outputs))
	}
	// Interior queues never exceed the cap (the first queue holds the
	// offered input and is exempt, as in Mercator where input comes from
	// device memory).
	for _, s := range rep.Stages[1:] {
		if s.PeakQueue > 32 {
			t.Errorf("stage %s queue peaked at %d > cap 32", s.Name, s.PeakQueue)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BatchWidth: 4}).Run(nil); err == nil {
		t.Error("no nodes must fail")
	}
	if _, err := New(Config{BatchWidth: 0}).Add(idNode("a")).Run(nil); err == nil {
		t.Error("zero batch width must fail")
	}
	if _, err := New(Config{BatchWidth: 8, QueueCap: 4}).Add(idNode("a")).Run(nil); err == nil {
		t.Error("cap below batch width must fail")
	}
}

func TestPolicyString(t *testing.T) {
	if FullestFirst.String() != "fullest-first" || RoundRobin.String() != "round-robin" {
		t.Error("policy names")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}

func TestEmptyInput(t *testing.T) {
	rep, err := New(Config{BatchWidth: 4}).Add(idNode("a")).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != 0 || rep.Firings != 0 {
		t.Errorf("empty run: %+v", rep)
	}
}
