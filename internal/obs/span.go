package obs

import "time"

// Span is a lightweight phase-breakdown recorder for one logical operation
// (an admission decision, a batch transaction). It carries no locks and no
// goroutine identity: exactly one goroutine may write to a span at a time,
// with ownership handed off through a synchronizing operation (a channel
// send, a mutex) — the discipline the group-commit combiner already follows
// for its tickets.
//
// Phases are recorded contiguously: Mark(name) attributes everything since
// the previous mark (or the span start) to name, so the phase durations of
// a fully marked span sum to its Total by construction. Repeated marks of
// the same name accumulate. All methods are nil-receiver safe, so detached
// code paths pass nil spans and pay one branch.
type Span struct {
	start time.Time
	last  time.Time
	names []string
	durs  []time.Duration
}

// StartSpan begins a span at the current time.
func StartSpan() *Span {
	now := time.Now()
	return &Span{start: now, last: now}
}

// Mark attributes the time elapsed since the previous mark (or the span
// start) to phase and advances the cursor.
func (s *Span) Mark(phase string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.add(phase, now.Sub(s.last))
	s.last = now
}

// Add accumulates d under phase without moving the cursor — for folding in
// externally measured durations.
func (s *Span) Add(phase string, d time.Duration) {
	if s == nil {
		return
	}
	s.add(phase, d)
}

func (s *Span) add(phase string, d time.Duration) {
	for i, n := range s.names {
		if n == phase {
			s.durs[i] += d
			return
		}
	}
	s.names = append(s.names, phase)
	s.durs = append(s.durs, d)
}

// Absorb folds every phase of other into s and advances s's cursor to
// other's cursor when that is later — used when a leader records shared
// work on one span and credits it to every ticket it decided, without the
// followers double-counting that window at their next Mark.
func (s *Span) Absorb(other *Span) {
	if s == nil || other == nil {
		return
	}
	for i, n := range other.names {
		s.add(n, other.durs[i])
	}
	if other.last.After(s.last) {
		s.last = other.last
	}
}

// Start returns the span's start time (zero for nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Total returns the time elapsed since the span started.
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// PhaseDur is one named phase duration of a finished span.
type PhaseDur struct {
	Phase string        `json:"phase"`
	Dur   time.Duration `json:"dur_ns"`
}

// Phases returns the recorded phases in first-marked order.
func (s *Span) Phases() []PhaseDur {
	if s == nil {
		return nil
	}
	out := make([]PhaseDur, len(s.names))
	for i, n := range s.names {
		out[i] = PhaseDur{Phase: n, Dur: s.durs[i]}
	}
	return out
}
