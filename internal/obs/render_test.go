package obs

import (
	"math"
	"strings"
	"testing"
)

func renderText(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestRenderLabelEscapingRoundTrip: backslash, quote, and newline in label
// values render escaped and survive the exposition linter's unescape.
func TestRenderLabelEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("nc_esc_total", "escapes", Label{"path", `C:\tmp`}).Inc()
	r.Counter("nc_esc_total", "escapes", Label{"path", `say "hi"`}).Inc()
	r.Counter("nc_esc_total", "escapes", Label{"path", "two\nlines"}).Inc()

	out := renderText(t, r)
	for _, want := range []string{
		`nc_esc_total{path="C:\\tmp"} 1`,
		`nc_esc_total{path="say \"hi\""} 1`,
		`nc_esc_total{path="two\nlines"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintExposition([]byte(out)); len(errs) != 0 {
		t.Errorf("escaped exposition flagged: %v", errs)
	}
}

// TestRenderEmptyHistogramFamily: a histogram family with no series is
// omitted entirely, and one with a series but no observations renders a
// consistent all-zero bucket ladder.
func TestRenderEmptyHistogramFamily(t *testing.T) {
	r := NewRegistry()
	// Force an empty family by registering and resetting it.
	r.Histogram("nc_gone_seconds", "vanishes", []float64{1})
	r.ResetFamily("nc_gone_seconds")
	r.Histogram("nc_idle_seconds", "zero observations", []float64{0.1, 1})

	out := renderText(t, r)
	if strings.Contains(out, "nc_gone_seconds") {
		t.Errorf("empty family rendered:\n%s", out)
	}
	for _, want := range []string{
		`nc_idle_seconds_bucket{le="+Inf"} 0`,
		"nc_idle_seconds_sum 0",
		"nc_idle_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintExposition([]byte(out)); len(errs) != 0 {
		t.Errorf("zero-observation histogram flagged: %v", errs)
	}

	snap := r.Snapshot()
	for _, f := range snap {
		if f.Name == "nc_gone_seconds" {
			t.Error("empty family present in snapshot")
		}
	}
}

// TestRenderNonFiniteGauges: NaN and the infinities render in their
// Prometheus spellings and pass the linter (on gauges).
func TestRenderNonFiniteGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge("nc_odd", "odd values", Label{"v", "nan"}).Set(math.NaN())
	r.Gauge("nc_odd", "odd values", Label{"v", "pinf"}).Set(math.Inf(1))
	r.Gauge("nc_odd", "odd values", Label{"v", "ninf"}).Set(math.Inf(-1))
	r.GaugeFunc("nc_odd_fn", "pull-style NaN", func() float64 { return math.NaN() })

	out := renderText(t, r)
	for _, want := range []string{
		`nc_odd{v="nan"} NaN`,
		`nc_odd{v="pinf"} +Inf`,
		`nc_odd{v="ninf"} -Inf`,
		"nc_odd_fn NaN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintExposition([]byte(out)); len(errs) != 0 {
		t.Errorf("non-finite gauges flagged: %v", errs)
	}
}

// TestCounterFuncRendering: pull-style counters render under a counter TYPE
// in both text and snapshot form.
func TestCounterFuncRendering(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("nc_pull_total", "pull-style counter", func() float64 { n++; return n })

	out := renderText(t, r)
	if !strings.Contains(out, "# TYPE nc_pull_total counter") || !strings.Contains(out, "nc_pull_total 42") {
		t.Errorf("CounterFunc rendering wrong:\n%s", out)
	}
	snap := r.Snapshot()
	found := false
	for _, f := range snap {
		if f.Name == "nc_pull_total" {
			found = true
			if f.Type != "counter" || f.Series[0].Value != 43 {
				t.Errorf("snapshot family %+v", f)
			}
		}
	}
	if !found {
		t.Error("nc_pull_total missing from snapshot")
	}
	if errs := LintExposition([]byte(out)); len(errs) != 0 {
		t.Errorf("CounterFunc exposition flagged: %v", errs)
	}
}

// TestHistogramExemplars: ObserveEx pins the latest exemplar to the bucket
// the value lands in; exemplars surface in the JSON snapshot only — the text
// exposition stays plain 0.0.4.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nc_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveEx(0.5, &Exemplar{
		Labels: []Label{{Key: "decision_seq", Value: "7"}},
		Value:  0.5, Ts: 1700000000,
	})
	h.ObserveEx(2.5, &Exemplar{
		Labels: []Label{{Key: "decision_seq", Value: "8"}},
		Value:  2.5, Ts: 1700000001,
	})

	if ex := h.BucketExemplar(0); ex != nil {
		t.Errorf("bucket 0 has unexpected exemplar %+v", ex)
	}
	ex := h.BucketExemplar(1)
	if ex == nil || ex.Labels[0].Value != "7" {
		t.Fatalf("bucket 1 exemplar = %+v", ex)
	}
	if ex := h.BucketExemplar(2); ex == nil || ex.Value != 2.5 {
		t.Fatalf("+Inf bucket exemplar = %+v", ex)
	}

	// Text exposition: plain 0.0.4, no exemplar syntax, lint-clean.
	out := renderText(t, r)
	if strings.Contains(out, "decision_seq") || strings.Contains(out, "#"+" {") {
		t.Errorf("exemplar leaked into text exposition:\n%s", out)
	}
	if errs := LintExposition([]byte(out)); len(errs) != 0 {
		t.Errorf("exposition flagged: %v", errs)
	}

	// Snapshot carries them per bucket.
	snap := r.Snapshot()
	var buckets []BucketSnapshot
	for _, f := range snap {
		if f.Name == "nc_lat_seconds" {
			buckets = f.Series[0].Buckets
		}
	}
	if len(buckets) != 3 || buckets[0].Exemplar != nil || buckets[1].Exemplar == nil || buckets[2].Exemplar == nil {
		t.Fatalf("snapshot buckets = %+v", buckets)
	}
	if buckets[1].Exemplar.Labels[0].Value != "7" {
		t.Errorf("bucket 1 exemplar = %+v", buckets[1].Exemplar)
	}
}
