package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nc_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instance.
	if r.Counter("nc_test_total", "a counter") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("nc_test_level", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}

	// Labelled series are distinct.
	a := r.Counter("nc_lbl_total", "", Label{"k", "a"})
	b := r.Counter("nc_lbl_total", "", Label{"k", "b"})
	if a == b {
		t.Error("distinct labels share a series")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nc_h_seconds", "", []float64{1, 2, 4})

	// Underflow: well below the first bound lands in bucket 0.
	h.Observe(-5)
	h.Observe(0.5)
	// Exact boundary: le semantics, v == bound counts in that bound's bucket.
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	// Interior.
	h.Observe(1.5)
	// Just above a boundary.
	h.Observe(math.Nextafter(2, 3))
	// Overflow past every bound, including +Inf and NaN.
	h.Observe(5)
	h.Observe(math.Inf(1))
	h.Observe(math.NaN())

	want := []uint64{3, 2, 2, 3} // buckets le=1, le=2, le=4, +Inf
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
}

func TestHistogramPrometheusCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nc_h_seconds", "latency", []float64{0.1, 1}, Label{"stage", "gz"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE nc_h_seconds histogram",
		`nc_h_seconds_bucket{stage="gz",le="0.1"} 1`,
		`nc_h_seconds_bucket{stage="gz",le="1"} 2`,
		`nc_h_seconds_bucket{stage="gz",le="+Inf"} 3`,
		`nc_h_seconds_count{stage="gz"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("nc_req_total", "requests", Label{"code", "200"}).Add(7)
	r.Gauge("nc_up", "liveness").Set(1)
	r.GaugeFunc("nc_pull", "pull-style", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP nc_req_total requests",
		"# TYPE nc_req_total counter",
		`nc_req_total{code="200"} 7`,
		"nc_up 1",
		"nc_pull 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("nc_esc_total", "", Label{"path", `a"b\c` + "\n"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `nc_esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

func TestCollectorAndReset(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.AddCollector(func(reg *Registry) {
		calls++
		reg.ResetFamily("nc_dyn")
		reg.Gauge("nc_dyn", "", Label{"id", "live"}).Set(float64(calls))
	})
	// Pre-seed a series that the collector should reset away.
	r.Gauge("nc_dyn", "", Label{"id", "stale"}).Set(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "stale") {
		t.Errorf("stale series survived ResetFamily:\n%s", out)
	}
	if !strings.Contains(out, `nc_dyn{id="live"} 1`) {
		t.Errorf("collector gauge missing:\n%s", out)
	}
	if calls != 1 {
		t.Errorf("collector ran %d times, want 1", calls)
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("nc_a_total", "help a").Add(3)
	h := r.Histogram("nc_b_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot families = %d, want 2", len(snap))
	}
	if snap[0].Name != "nc_a_total" || snap[0].Series[0].Value != 3 {
		t.Errorf("counter snapshot wrong: %+v", snap[0])
	}
	hs := snap[1].Series[0]
	if hs.Count != 2 || len(hs.Buckets) != 2 || hs.Buckets[0].Count != 1 || hs.Buckets[1].Count != 1 {
		t.Errorf("histogram snapshot wrong: %+v", hs)
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"le": "+Inf"`) {
		t.Errorf("JSON missing +Inf bucket:\n%s", sb.String())
	}
}

// TestRegistryConcurrent exercises parallel writers and scrapers; run under
// -race (the CI test job does) to catch unsynchronized access.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("nc_conc_total", "")
			g := r.Gauge("nc_conc_level", "")
			h := r.Histogram("nc_conc_seconds", "", []float64{0.001, 0.01, 0.1, 1})
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.03)
				if i%100 == 0 {
					// Create fresh labelled series concurrently with scrapes.
					r.Counter("nc_conc_lbl_total", "", Label{"w", string(rune('a' + id))}).Inc()
				}
			}
		}(w)
	}
	// Concurrent scrapers.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("nc_conc_total", "").Value(); got != writers*perWriter {
		t.Errorf("concurrent counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("nc_conc_level", "").Value(); got != writers*perWriter {
		t.Errorf("concurrent gauge = %g, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("nc_conc_seconds", "", []float64{0.001, 0.01, 0.1, 1}).Count(); got != writers*perWriter {
		t.Errorf("concurrent histogram count = %d, want %d", got, writers*perWriter)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Errorf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestHitRate(t *testing.T) {
	if hr := HitRate(0, 0); hr != 0 {
		t.Errorf("HitRate(0,0) = %g", hr)
	}
	if hr := HitRate(3, 1); hr != 0.75 {
		t.Errorf("HitRate(3,1) = %g", hr)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("nc_x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as gauge did not panic")
		}
	}()
	r.Gauge("nc_x_total", "")
}
