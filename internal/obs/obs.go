// Package obs is a dependency-free telemetry layer: atomic counters, gauges
// and fixed-bucket histograms behind a Registry that renders both Prometheus
// text exposition and JSON, plus a Chrome trace_event exporter (trace.go)
// for discrete-event simulation timelines.
//
// Design goals, in order:
//
//  1. Near-zero cost on instrumented hot paths: every metric write is one or
//     two atomic operations, no locks, no allocations.
//  2. No dependencies beyond the standard library (the repo rule), so every
//     internal package may import obs without cycles.
//  3. Pull-model friendliness: collectors registered with AddCollector run
//     at scrape time, so expensive snapshots (cache stats, residual-service
//     sweeps, bound-tightness replays) are paid only when someone looks.
//
// Metric naming follows the Prometheus conventions: snake_case, a unit
// suffix (_seconds, _bytes, _total for counters), and an "nc_" prefix for
// everything this repository exports.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// --- Metric primitives ------------------------------------------------------

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus "le" semantics: an
// observation v lands in the first bucket whose upper bound satisfies
// v <= bound; values above every bound land in the implicit +Inf bucket.
// NaN observations count toward +Inf (they exceed every finite bound).
// All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64       // sorted, strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    Gauge                      // atomic float accumulation
	ex     []atomic.Pointer[Exemplar] // len(bounds)+1; latest exemplar per bucket
}

// Exemplar links one histogram bucket back to the concrete event that most
// recently landed there — typically a decision sequence number resolvable
// against the flight recorder. Stored per bucket, last-writer-wins.
type Exemplar struct {
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	// Ts is seconds since the Unix epoch at observation time.
	Ts float64 `json:"ts,omitempty"`
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bound
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveEx records one observation and attaches e as the bucket's exemplar
// (replacing any previous one). e must not be mutated after the call.
func (h *Histogram) ObserveEx(v float64, e *Exemplar) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if e != nil {
		h.ex[i].Store(e)
	}
}

// BucketExemplar returns the latest exemplar of bucket i (nil if none),
// where i == len(Bounds()) addresses the +Inf bucket.
func (h *Histogram) BucketExemplar(i int) *Exemplar { return h.ex[i].Load() }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns a copy of the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCount returns the non-cumulative count of bucket i, where
// i == len(Bounds()) addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i].Load() }

// ExponentialBuckets returns n upper bounds start, start*factor, ... —
// the usual latency-histogram layout. It panics for start <= 0, factor <= 1
// or n < 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// HitRate renders hits/(hits+misses), 0 before any lookups. The shared
// helper behind every cache-effectiveness gauge and the /healthz blob.
func HitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// --- Registry ---------------------------------------------------------------

// metricKind discriminates families.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name/value dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// series is one labelled instance within a family.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // pull-style reading; wins over c/g when set
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	series map[string]*series
	keys   []string // sorted series keys for stable rendering
}

// Registry is a set of metric families plus scrape-time collectors. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	order      []string // registration order
	collectors []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// AddCollector registers fn to run at the start of every render (scrape).
// Collectors typically snapshot an external subsystem into plain gauges;
// they may create metrics on the registry they receive.
func (r *Registry) AddCollector(fn func(*Registry)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// validName reports a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortLabels returns a sorted copy, panicking on duplicate or invalid keys.
func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q", l.Key))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label key %q", l.Key))
		}
	}
	return ls
}

// seriesKey renders sorted labels into a map key / Prometheus label block
// (empty string for no labels).
func seriesKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the family and series, enforcing kind consistency.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := sortLabels(labels)
	key := seriesKey(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{
				bounds: append([]float64(nil), f.bounds...),
				counts: make([]atomic.Uint64, len(f.bounds)+1),
				ex:     make([]atomic.Pointer[Exemplar], len(f.bounds)+1),
			}
		}
		f.series[key] = s
		i := sort.SearchStrings(f.keys, key)
		f.keys = append(f.keys, "")
		copy(f.keys[i+1:], f.keys[i:])
		f.keys[i] = key
	}
	return s
}

// Counter returns the counter series for name+labels, creating it on first
// use. Repeated calls with the same name and labels return the same Counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// GaugeFunc registers a pull-style gauge: fn is evaluated at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGauge, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// CounterFunc registers a pull-style counter: fn is evaluated at render
// time and must be monotonically non-decreasing. Use it to export counters
// whose source of truth lives elsewhere (cache hit tallies, controller
// stats) under proper counter typing instead of mirroring them as gauges.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindCounter, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram series for name+labels, creating it on
// first use with the given bucket upper bounds (sorted ascending; +Inf is
// implicit). Bounds must be non-empty and strictly increasing; families are
// created with the bounds of the first call and later calls reuse them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("obs: Histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: Histogram bounds must be strictly increasing")
		}
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).h
}

// ResetFamily drops every series of the named family (the family itself and
// its help/type stay registered). Collectors that publish per-entity gauges
// (for example per-flow bound tightness) reset before republishing so
// released entities don't linger.
func (r *Registry) ResetFamily(name string) {
	r.mu.Lock()
	if f := r.families[name]; f != nil {
		f.series = make(map[string]*series)
		f.keys = nil
	}
	r.mu.Unlock()
}

// runCollectors executes registered collectors outside the registry lock
// (collectors create metrics, which locks).
func (r *Registry) runCollectors() {
	r.mu.RLock()
	fns := append([]func(*Registry){}, r.collectors...)
	r.mu.RUnlock()
	for _, fn := range fns {
		fn(r)
	}
}
