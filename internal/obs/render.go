package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4), running collectors first. Families appear in
// registration order, series in sorted label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()

	bw := bufio.NewWriter(w)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		if len(f.keys) == 0 {
			continue
		}
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(strings.ReplaceAll(f.help, "\n", " "))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, key := range f.keys {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				v := float64(s.c.Value())
				if s.fn != nil {
					v = s.fn()
				}
				writeSample(bw, f.name, "", key, v)
			case kindGauge:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.g.Value()
				}
				writeSample(bw, f.name, "", key, v)
			case kindHistogram:
				writeHistogram(bw, f.name, key, s.h)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one "name[suffix]{labels} value" line.
func writeSample(bw *bufio.Writer, name, suffix, labels string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(bw *bufio.Writer, name, key string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(bw, name, "_bucket", withLabel(key, "le", formatValue(bound)), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(bw, name, "_bucket", withLabel(key, "le", "+Inf"), float64(cum))
	writeSample(bw, name, "_sum", key, h.Sum())
	writeSample(bw, name, "_count", key, float64(h.Count()))
}

// withLabel splices an extra label into a rendered label block.
func withLabel(key, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- JSON snapshot ----------------------------------------------------------

// BucketSnapshot is one histogram bucket in a snapshot: the upper bound
// (inclusive; +Inf for the overflow bucket), its non-cumulative count, and
// the latest exemplar to land in it (if any). Exemplars appear only in the
// JSON rendering — the text exposition stays plain 0.0.4 format, which has
// no exemplar syntax.
type BucketSnapshot struct {
	UpperBound float64   `json:"le"`
	Count      uint64    `json:"count"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// SeriesSnapshot is one labelled series in a snapshot.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram payload (nil for counters and gauges).
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
}

// FamilySnapshot is one metric family in a snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every family after running collectors. The result is
// detached: mutating it does not affect the registry.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.runCollectors()

	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]FamilySnapshot, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		if len(f.keys) == 0 {
			continue
		}
		fs := FamilySnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, key := range f.keys {
			s := f.series[key]
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				if s.fn != nil {
					ss.Value = s.fn()
				} else {
					ss.Value = float64(s.c.Value())
				}
			case kindGauge:
				if s.fn != nil {
					ss.Value = s.fn()
				} else {
					ss.Value = s.g.Value()
				}
			case kindHistogram:
				h := s.h
				for i, bound := range h.bounds {
					ss.Buckets = append(ss.Buckets, BucketSnapshot{
						UpperBound: bound, Count: h.counts[i].Load(), Exemplar: h.ex[i].Load(),
					})
				}
				ss.Buckets = append(ss.Buckets, BucketSnapshot{
					UpperBound: math.Inf(1),
					Count:      h.counts[len(h.bounds)].Load(),
					Exemplar:   h.ex[len(h.bounds)].Load(),
				})
				ss.Sum = h.Sum()
				ss.Count = h.Count()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON. Histogram +Inf bounds
// are emitted as the string "+Inf" (JSON has no infinity literal).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	type bucketJSON struct {
		UpperBound any       `json:"le"`
		Count      uint64    `json:"count"`
		Exemplar   *Exemplar `json:"exemplar,omitempty"`
	}
	type seriesJSON struct {
		Labels  map[string]string `json:"labels,omitempty"`
		Value   float64           `json:"value"`
		Buckets []bucketJSON      `json:"buckets,omitempty"`
		Sum     float64           `json:"sum,omitempty"`
		Count   uint64            `json:"count,omitempty"`
	}
	type familyJSON struct {
		Name   string       `json:"name"`
		Type   string       `json:"type"`
		Help   string       `json:"help,omitempty"`
		Series []seriesJSON `json:"series"`
	}
	out := make([]familyJSON, 0, len(snap))
	for _, f := range snap {
		fj := familyJSON{Name: f.Name, Type: f.Type, Help: f.Help}
		for _, s := range f.Series {
			sj := seriesJSON{Labels: s.Labels, Value: s.Value, Sum: s.Sum, Count: s.Count}
			for _, b := range s.Buckets {
				var le any = b.UpperBound
				if math.IsInf(b.UpperBound, 1) {
					le = "+Inf"
				}
				sj.Buckets = append(sj.Buckets, bucketJSON{UpperBound: le, Count: b.Count, Exemplar: b.Exemplar})
			}
			fj.Series = append(fj.Series, sj)
		}
		out = append(out, fj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
