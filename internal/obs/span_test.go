package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanContiguousPhases(t *testing.T) {
	s := StartSpan()
	s.Mark("a")
	s.Mark("b")
	s.Add("c", 5*time.Millisecond)
	s.Mark("d")

	ph := s.Phases()
	if len(ph) != 4 {
		t.Fatalf("phases = %+v, want 4", ph)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if ph[i].Phase != want {
			t.Errorf("phase %d = %q, want %q", i, ph[i].Phase, want)
		}
	}
	// Contiguous marking: the marked phases (a, b, d) tile [start, last
	// mark], so their sum — minus the injected c, which consumed no wall
	// clock — can never exceed the running total, and trails it only by the
	// time spent since the final mark.
	var sum time.Duration
	for _, p := range ph {
		sum += p.Dur
	}
	marked := sum - 5*time.Millisecond
	total := s.Total()
	if marked > total {
		t.Errorf("marked phases %v exceed total %v", marked, total)
	}
	if total-marked > time.Second {
		t.Errorf("unattributed time %v too large", total-marked)
	}
	if s.Start().IsZero() {
		t.Error("zero start time")
	}
}

func TestSpanAbsorb(t *testing.T) {
	a := StartSpan()
	a.Mark("own")
	b := StartSpan()
	b.Add("shared", 2*time.Millisecond)
	b.Mark("late")

	a.Absorb(b)
	a.Mark("after")

	names := []string{}
	for _, p := range a.Phases() {
		names = append(names, p.Phase)
	}
	want := []string{"own", "shared", "late", "after"}
	if len(names) != len(want) {
		t.Fatalf("phases = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phases = %v, want %v", names, want)
		}
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.Mark("x")
	s.Add("y", time.Second)
	s.Absorb(StartSpan())
	if s.Total() != 0 || len(s.Phases()) != 0 || !s.Start().IsZero() {
		t.Error("nil span must read as zero")
	}
}

func TestRingWrapAndSeq(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 3 || r.Len() != 0 || r.Seq() != 0 {
		t.Fatalf("fresh ring: cap %d len %d seq %d", r.Cap(), r.Len(), r.Seq())
	}
	for i := 1; i <= 5; i++ {
		if seq := r.Push(i * 10); seq != uint64(i) {
			t.Errorf("push %d: seq %d", i, seq)
		}
	}
	if r.Len() != 3 || r.Seq() != 5 {
		t.Errorf("after wrap: len %d seq %d", r.Len(), r.Seq())
	}
	got := r.Snapshot(0)
	want := []int{50, 40, 30} // newest first
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
	if lim := r.Snapshot(2); len(lim) != 2 || lim[0] != 50 {
		t.Errorf("limited snapshot = %v", lim)
	}
}

func TestRingPushSeq(t *testing.T) {
	type rec struct{ seq uint64 }
	r := NewRing[rec](2)
	r.PushSeq(func(seq uint64) rec { return rec{seq} })
	r.PushSeq(func(seq uint64) rec { return rec{seq} })
	got := r.Snapshot(0)
	if got[0].seq != 2 || got[1].seq != 1 {
		t.Errorf("embedded seqs = %+v", got)
	}
	if NewRing[int](0).Cap() != 1 {
		t.Error("capacity not clamped to 1")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing[uint64](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.PushSeq(func(seq uint64) uint64 { return seq })
				r.Snapshot(8)
			}
		}()
	}
	wg.Wait()
	if r.Seq() != 1600 {
		t.Errorf("seq %d, want 1600", r.Seq())
	}
	// Retained entries carry their own seq (PushSeq atomicity).
	for i, v := range r.Snapshot(0) {
		if v != 1600-uint64(i) {
			t.Fatalf("entry %d = %d, want %d", i, v, 1600-uint64(i))
		}
	}
}

func TestWindowSumRate(t *testing.T) {
	w := NewWindow(60)
	if w.Seconds() != 60 {
		t.Fatalf("seconds = %d", w.Seconds())
	}
	w.Add(3)
	w.Add(2)
	if got := w.Sum(); got != 5 {
		t.Errorf("sum = %d, want 5", got)
	}
	if got, want := w.Rate(), 5.0/60; got != want {
		t.Errorf("rate = %g, want %g", got, want)
	}
	if NewWindow(0).Seconds() < 1 {
		t.Error("window seconds not clamped")
	}
}
