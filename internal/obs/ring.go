package obs

import "sync"

// Ring is a fixed-capacity overwrite-oldest buffer with a monotonic
// sequence number — the storage behind the admission flight recorder. A
// single short mutex guards pushes and snapshots; at recorder depth in the
// thousands the copy under lock is microseconds, far below decision cost.
type Ring[T any] struct {
	mu   sync.Mutex
	buf  []T
	n    int    // filled entries, <= len(buf)
	next int    // index the next push lands at
	seq  uint64 // total pushes ever (1-based seq of the latest entry)
}

// NewRing returns a ring holding the last n entries (n < 1 is clamped to 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{buf: make([]T, n)}
}

// Push appends v, overwriting the oldest entry when full, and returns the
// monotonic sequence number (1-based) assigned to v.
func (r *Ring[T]) Push(v T) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.seq++
	return r.seq
}

// PushSeq appends the entry produced by fn, which receives the sequence
// number being assigned — for entry types that embed their own sequence
// number. Runs under the ring mutex; fn must be cheap and non-blocking.
func (r *Ring[T]) PushSeq(fn func(seq uint64) T) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.buf[r.next] = fn(r.seq)
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	return r.seq
}

// Snapshot returns up to limit entries, newest first (limit <= 0 means all
// retained entries).
func (r *Ring[T]) Snapshot(limit int) []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		// newest entry sits just before next, walking backwards
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		out[i] = r.buf[idx]
	}
	return out
}

// Len returns the number of retained entries.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Seq returns the sequence number of the most recent push (0 when empty).
func (r *Ring[T]) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
