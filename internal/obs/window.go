package obs

import (
	"sync"
	"time"
)

// Window counts events over a sliding window of whole seconds, for cheap
// rate and burn-rate figures without a timeseries store. Writers pay one
// short mutex; readers sum len(slots) counters. Slots older than the
// window are lazily zeroed on access, so an idle window decays to zero.
type Window struct {
	mu    sync.Mutex
	slots []windowSlot
}

type windowSlot struct {
	sec int64 // unix second this slot currently represents
	n   uint64
}

// NewWindow returns a window spanning the given number of seconds
// (clamped to at least 1).
func NewWindow(seconds int) *Window {
	if seconds < 1 {
		seconds = 1
	}
	return &Window{slots: make([]windowSlot, seconds)}
}

// Add records n events at the current time.
func (w *Window) Add(n uint64) {
	sec := time.Now().Unix()
	w.mu.Lock()
	s := &w.slots[sec%int64(len(w.slots))]
	if s.sec != sec {
		s.sec = sec
		s.n = 0
	}
	s.n += n
	w.mu.Unlock()
}

// Sum returns the number of events recorded within the window.
func (w *Window) Sum() uint64 {
	sec := time.Now().Unix()
	oldest := sec - int64(len(w.slots)) + 1
	w.mu.Lock()
	var total uint64
	for i := range w.slots {
		if w.slots[i].sec >= oldest && w.slots[i].sec <= sec {
			total += w.slots[i].n
		}
	}
	w.mu.Unlock()
	return total
}

// Rate returns events per second averaged over the window span.
func (w *Window) Rate() float64 {
	return float64(w.Sum()) / float64(len(w.slots))
}

// Seconds returns the window span.
func (w *Window) Seconds() int { return len(w.slots) }
