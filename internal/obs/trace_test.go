package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validateTraceJSON checks data against the Chrome trace_event "JSON Object
// Format": a traceEvents array whose entries carry the required fields with
// legal phase codes, finite non-negative microsecond timestamps, and
// non-negative durations on complete events. Shared by the sim integration
// test via ValidateTraceBytes.
func validateTraceJSON(t *testing.T, data []byte) {
	t.Helper()
	if err := ValidateTraceBytes(data); err != nil {
		t.Fatalf("trace schema: %v", err)
	}
}

func TestTraceEventSchema(t *testing.T) {
	tr := NewTrace()
	tr.ThreadName(1, "compress")
	tr.Complete("job", "stage", 1, 0.5, 0.25, map[string]any{"bytes": 4096})
	tr.Instant("stall", "stage", 1, 0.9, nil)
	tr.Counter("queue", 1, 1.0, map[string]float64{"bytes": 123})

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	validateTraceJSON(t, []byte(sb.String()))

	// Spot-check unit conversion: seconds in, microseconds out.
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(f.TraceEvents))
	}
	x := f.TraceEvents[1]
	if x.Phase != "X" || x.Ts != 0.5*1e6 || x.Dur != 0.25*1e6 {
		t.Errorf("complete event wrong: %+v", x)
	}
}

func TestTraceEmptyRendersArray(t *testing.T) {
	var sb strings.Builder
	if err := NewTrace().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Errorf("empty trace should render an empty array:\n%s", sb.String())
	}
	validateTraceJSON(t, []byte(sb.String()))
}

func TestTraceWriteFile(t *testing.T) {
	tr := NewTrace()
	tr.Complete("job", "stage", 2, 0, 1, nil)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	validateTraceJSON(t, data)
}

func TestValidateTraceBytesRejects(t *testing.T) {
	for name, bad := range map[string]string{
		"not json":      "nope",
		"missing array": `{"displayTimeUnit":"ms"}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"ZZ","ts":0,"pid":0,"tid":0}]}`,
		"negative ts":   `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":0,"tid":0}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-5,"pid":0,"tid":0}]}`,
		"unnamed":       `{"traceEvents":[{"ph":"i","ts":0,"pid":0,"tid":0}]}`,
	} {
		if err := ValidateTraceBytes([]byte(bad)); err == nil {
			t.Errorf("%s: validated unexpectedly", name)
		}
	}
}

func TestTraceTimestampsFinite(t *testing.T) {
	tr := NewTrace()
	tr.Complete("job", "stage", 1, 2, math.Inf(1), nil)
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err == nil {
		// json.Marshal fails on +Inf, so WriteTo must surface an error rather
		// than emit a broken file.
		t.Error("expected an encoding error for an infinite duration")
	}
}
