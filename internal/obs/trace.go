package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Trace collects events in the Chrome trace_event JSON format (the "JSON
// Array Format" with an object wrapper), loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. The discrete-event
// simulator writes one complete ("X") event per stage service span, plus
// instant and counter events for stalls and queue levels; timestamps are
// simulation seconds converted to trace microseconds.
//
// A Trace is safe for concurrent use (the simulator is single-goroutine,
// but scrapers may export mid-run).
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// TraceEvent is one trace_event record. Fields follow the Trace Event
// Format spec: Phase is the single-character event type ("X" complete,
// "i" instant, "C" counter, "M" metadata), Ts and Dur are microseconds.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int64          `json:"pid"`
	Tid   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope: t/p/g
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the on-disk wrapper object.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

const usPerSec = 1e6

// Complete records a complete event: a span of durSec seconds starting at
// startSec on thread tid.
func (t *Trace) Complete(name, cat string, tid int64, startSec, durSec float64, args map[string]any) {
	t.append(TraceEvent{
		Name: name, Cat: cat, Phase: "X",
		Ts: startSec * usPerSec, Dur: durSec * usPerSec,
		Tid: tid, Args: args,
	})
}

// Instant records a thread-scoped instant event at tSec.
func (t *Trace) Instant(name, cat string, tid int64, tSec float64, args map[string]any) {
	t.append(TraceEvent{
		Name: name, Cat: cat, Phase: "i", Scope: "t",
		Ts: tSec * usPerSec, Tid: tid, Args: args,
	})
}

// Counter records a counter event: the named series takes the given values
// at tSec (rendered as a stacked area track).
func (t *Trace) Counter(name string, tid int64, tSec float64, values map[string]float64) {
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.append(TraceEvent{
		Name: name, Phase: "C",
		Ts: tSec * usPerSec, Tid: tid, Args: args,
	})
}

// ThreadName records metadata naming thread tid in the viewer.
func (t *Trace) ThreadName(tid int64, name string) {
	t.append(TraceEvent{
		Name: "thread_name", Phase: "M", Tid: tid,
		Args: map[string]any{"name": name},
	})
}

func (t *Trace) append(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteJSON writes the trace as a Chrome trace_event JSON object.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	if events == nil {
		events = []TraceEvent{} // render "traceEvents": [], not null
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateTraceBytes checks data against the Chrome trace_event JSON Object
// Format: a "traceEvents" array whose entries each have a name, a known
// single-character phase, a finite non-negative microsecond timestamp, and —
// for complete ("X") events — a finite non-negative duration. Used by unit
// tests to assert exported traces stay loadable in Perfetto.
func ValidateTraceBytes(data []byte) error {
	var f struct {
		TraceEvents *[]TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, e := range *f.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("obs: trace event %d has no name", i)
		}
		switch e.Phase {
		case "X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f":
		default:
			return fmt.Errorf("obs: trace event %d (%s) has unknown phase %q", i, e.Name, e.Phase)
		}
		if math.IsNaN(e.Ts) || math.IsInf(e.Ts, 0) || e.Ts < 0 {
			return fmt.Errorf("obs: trace event %d (%s) has bad timestamp %v", i, e.Name, e.Ts)
		}
		if e.Phase == "X" && (math.IsNaN(e.Dur) || math.IsInf(e.Dur, 0) || e.Dur < 0) {
			return fmt.Errorf("obs: trace event %d (%s) has bad duration %v", i, e.Name, e.Dur)
		}
	}
	return nil
}

// WriteFile writes the trace to path (0644).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
