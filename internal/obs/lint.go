package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text-exposition (0.0.4) payload:
// structural rules first (TYPE before samples, parseable sample lines,
// no duplicate series), then the repository's own conventions (nc_ prefix
// on owned families, counters end in _total, gauges and histograms do
// not). It returns every problem found, nil for a clean payload. The CI
// load-smoke job pipes live /metrics scrapes through it via cmd/nclint,
// and obs's own tests run rendered registries through it as a self-check.
func LintExposition(data []byte) []error {
	l := &expoLint{
		types:  make(map[string]string),
		series: make(map[string]int),
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		l.line(line, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errf(line, "read: %v", err)
	}
	l.finish()
	return l.errs
}

type expoLint struct {
	errs   []error
	types  map[string]string // family -> declared TYPE
	series map[string]int    // family+labels -> first line seen
	// histogram bookkeeping: per family+labels (sans le), the running
	// cumulative-bucket state and observed _count value.
	hist map[string]*histLint
}

type histLint struct {
	line    int
	lastLe  float64
	lastCum float64
	haveInf bool
	infVal  float64
	count   float64
	hasCnt  bool
}

func (l *expoLint) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *expoLint) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		l.comment(n, s)
		return
	}
	l.sample(n, s)
}

func (l *expoLint) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			l.errf(n, "malformed TYPE line: %q", s)
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validName(name) {
			l.errf(n, "TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown TYPE %q for %s", typ, name)
		}
		if prev, ok := l.types[name]; ok {
			l.errf(n, "duplicate TYPE for %s (already %s)", name, prev)
			return
		}
		l.types[name] = typ
		l.lintName(n, name, typ)
	case "HELP":
		if len(fields) < 3 {
			l.errf(n, "malformed HELP line: %q", s)
		}
	}
}

// lintName enforces the repo naming conventions on nc_-owned families.
func (l *expoLint) lintName(n int, name, typ string) {
	if !strings.HasPrefix(name, "nc_") {
		return // foreign family (e.g. go_ runtime metrics) — structural rules only
	}
	switch typ {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			l.errf(n, "counter %s must end in _total", name)
		}
	case "gauge", "histogram":
		for _, suffix := range []string{"_total", "_bucket"} {
			if strings.HasSuffix(name, suffix) {
				l.errf(n, "%s %s must not end in %s (reserved for counters/histogram series)", typ, name, suffix)
			}
		}
	}
}

// sample parses one "name{labels} value [timestamp]" line.
func (l *expoLint) sample(n int, s string) {
	name, rest, labels, ok := splitSample(s)
	if !ok {
		l.errf(n, "unparseable sample line: %q", s)
		return
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		l.errf(n, "sample %s: want 'value [timestamp]', got %q", name, rest)
		return
	}
	val, err := parseValue(fields[0])
	if err != nil {
		l.errf(n, "sample %s: bad value %q", name, fields[0])
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			l.errf(n, "sample %s: bad timestamp %q", name, fields[1])
		}
	}
	if !validName(name) {
		l.errf(n, "invalid metric name %q", name)
		return
	}

	family, suffix := familyOf(name, l.types)
	typ, declared := l.types[family]
	if !declared {
		l.errf(n, "sample %s before (or without) its TYPE declaration", name)
		typ = "untyped"
	}
	if typ == "histogram" && suffix == "" {
		l.errf(n, "histogram family %s has a bare sample %s (want _bucket/_sum/_count)", family, name)
	}

	le, labelsNoLe, lerr := extractLe(labels)
	if lerr != nil {
		l.errf(n, "sample %s: %v", name, lerr)
		return
	}

	key := name + "{" + labelsNoLe + "}"
	if suffix == "_bucket" {
		l.bucket(n, family+"{"+labelsNoLe+"}", le, val, labels)
		key += "|le=" + strconv.FormatFloat(le, 'g', -1, 64)
	} else if typ == "histogram" && suffix == "_count" {
		h := l.histFor(family + "{" + labelsNoLe + "}")
		h.count, h.hasCnt = val, true
	}
	if prev, dup := l.series[key]; dup {
		l.errf(n, "duplicate series %s (first at line %d)", key, prev)
	} else {
		l.series[key] = n
	}

	if typ == "counter" && (val < 0 || math.IsNaN(val)) {
		l.errf(n, "counter %s has non-monotonic value %v", name, val)
	}
}

func (l *expoLint) histFor(key string) *histLint {
	if l.hist == nil {
		l.hist = make(map[string]*histLint)
	}
	h := l.hist[key]
	if h == nil {
		h = &histLint{lastLe: math.Inf(-1)}
		l.hist[key] = h
	}
	return h
}

// bucket checks one _bucket sample: le parses, cumulative counts are
// non-decreasing in le order (the renderer emits ascending le).
func (l *expoLint) bucket(n int, key string, le, cum float64, rawLabels string) {
	if !strings.Contains(rawLabels, "le=") {
		l.errf(n, "bucket of %s missing le label", key)
		return
	}
	h := l.histFor(key)
	h.line = n
	if le <= h.lastLe {
		l.errf(n, "bucket of %s: le %v out of order (after %v)", key, le, h.lastLe)
	}
	if cum < h.lastCum {
		l.errf(n, "bucket of %s: cumulative count decreased (%v after %v)", key, cum, h.lastCum)
	}
	h.lastLe, h.lastCum = le, cum
	if math.IsInf(le, 1) {
		h.haveInf, h.infVal = true, cum
	}
}

// finish runs whole-payload checks once every line is consumed.
func (l *expoLint) finish() {
	for key, h := range l.hist {
		if !h.haveInf {
			l.errf(h.line, "histogram %s missing +Inf bucket", key)
			continue
		}
		if h.hasCnt && h.count != h.infVal {
			l.errf(h.line, "histogram %s: _count %v != +Inf bucket %v", key, h.count, h.infVal)
		}
	}
}

// familyOf strips a histogram sample suffix when the base family is
// declared as a histogram.
func familyOf(name string, types map[string]string) (family, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, sfx); ok {
			if t, declared := types[base]; declared && t == "histogram" {
				return base, sfx
			}
		}
	}
	return name, ""
}

// splitSample separates "name{labels} rest" respecting quoted label values.
func splitSample(s string) (name, rest, labels string, ok bool) {
	brace := strings.IndexByte(s, '{')
	sp := strings.IndexByte(s, ' ')
	if brace == -1 || (sp != -1 && sp < brace) {
		if sp == -1 {
			return "", "", "", false
		}
		return s[:sp], s[sp+1:], "", true
	}
	// scan for the closing brace outside quotes
	inQuote, esc := false, false
	for i := brace + 1; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			if i+1 >= len(s) || s[i+1] != ' ' {
				return "", "", "", false
			}
			if err := lintLabels(s[brace+1 : i]); err != nil {
				return "", "", "", false
			}
			return s[:brace], s[i+2:], s[brace+1 : i], true
		}
	}
	return "", "", "", false
}

// lintLabels validates a label block body: k="v" pairs, comma separated,
// values with legal escapes only.
func lintLabels(body string) error {
	for _, kv := range splitLabelPairs(body) {
		eq := strings.IndexByte(kv, '=')
		if eq == -1 {
			return fmt.Errorf("label pair %q missing '='", kv)
		}
		k, v := kv[:eq], kv[eq+1:]
		if !validName(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label %s value %q not quoted", k, v)
		}
		if _, err := unescapeLabel(v[1 : len(v)-1]); err != nil {
			return fmt.Errorf("label %s: %v", k, err)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	start, inQuote, esc := 0, false, false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// unescapeLabel reverses escapeLabel, rejecting unknown escapes.
func unescapeLabel(v string) (string, error) {
	if !strings.ContainsRune(v, '\\') {
		return v, nil
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' {
			b.WriteByte(v[i])
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("trailing backslash in label value %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("invalid escape \\%c in label value %q", v[i], v)
		}
	}
	return b.String(), nil
}

// extractLe pulls the le label out of a rendered label block, returning the
// remaining pairs re-joined (sorted order is preserved) for series keying.
func extractLe(labels string) (le float64, rest string, err error) {
	if labels == "" {
		return 0, "", nil
	}
	var kept []string
	for _, kv := range splitLabelPairs(labels) {
		if !strings.HasPrefix(kv, "le=") {
			kept = append(kept, kv)
			continue
		}
		raw := strings.Trim(kv[len("le="):], `"`)
		le, err = parseValue(raw)
		if err != nil {
			return 0, "", fmt.Errorf("bad le value %q", raw)
		}
	}
	return le, strings.Join(kept, ","), nil
}

// parseValue parses a sample value, accepting the Prometheus spellings of
// the non-finite floats.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
