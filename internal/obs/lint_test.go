package obs

import (
	"strings"
	"testing"
)

func lintErrs(t *testing.T, text string) []error {
	t.Helper()
	return LintExposition([]byte(text))
}

func wantLint(t *testing.T, text, fragment string) {
	t.Helper()
	errs := lintErrs(t, text)
	for _, e := range errs {
		if strings.Contains(e.Error(), fragment) {
			return
		}
	}
	t.Errorf("no lint error containing %q in %v", fragment, errs)
}

func TestLintCleanExposition(t *testing.T) {
	text := `# HELP nc_req_total requests
# TYPE nc_req_total counter
nc_req_total{code="200"} 7
nc_req_total{code="500"} 0
# TYPE nc_up gauge
nc_up 1
# TYPE nc_lat_seconds histogram
nc_lat_seconds_bucket{le="0.1"} 1
nc_lat_seconds_bucket{le="1"} 2
nc_lat_seconds_bucket{le="+Inf"} 3
nc_lat_seconds_sum 4.2
nc_lat_seconds_count 3
`
	if errs := lintErrs(t, text); len(errs) != 0 {
		t.Errorf("clean exposition flagged: %v", errs)
	}
}

func TestLintNamingConventions(t *testing.T) {
	wantLint(t, "# TYPE nc_requests counter\nnc_requests 1\n", "must end in _total")
	wantLint(t, "# TYPE nc_flows_total gauge\nnc_flows_total 1\n", "must not end in _total")
	wantLint(t, "# TYPE nc_lat_bucket gauge\nnc_lat_bucket 1\n", "must not end in _bucket")
	// Foreign families are exempt from nc_ conventions.
	if errs := lintErrs(t, "# TYPE go_goroutines gauge\ngo_goroutines 12\n"); len(errs) != 0 {
		t.Errorf("foreign family flagged: %v", errs)
	}
}

func TestLintStructural(t *testing.T) {
	wantLint(t, "nc_orphan_total 1\n", "before (or without) its TYPE")
	wantLint(t, "# TYPE nc_x_total counter\n# TYPE nc_x_total counter\n", "duplicate TYPE")
	wantLint(t, "# TYPE nc_x_total bogus\n", "unknown TYPE")
	wantLint(t, "# TYPE nc_x_total counter\nnc_x_total 1\nnc_x_total 2\n", "duplicate series")
	wantLint(t, "# TYPE nc_x_total counter\nnc_x_total notanumber\n", "bad value")
	wantLint(t, "# TYPE nc_x_total counter\nnc_x_total -1\n", "non-monotonic")
	wantLint(t, "# TYPE nc_x_total counter\nnc_x_total NaN\n", "non-monotonic")
	wantLint(t, `# TYPE nc_x_total counter`+"\n"+`nc_x_total{k="v} 1`+"\n", "unparseable")
	wantLint(t, `# TYPE nc_x_total counter`+"\n"+`nc_x_total{k="a\z"} 1`+"\n", "unparseable")
}

func TestLintHistogramRules(t *testing.T) {
	// Missing +Inf bucket.
	wantLint(t, `# TYPE nc_h_seconds histogram
nc_h_seconds_bucket{le="1"} 2
nc_h_seconds_sum 1
nc_h_seconds_count 2
`, "missing +Inf")
	// Non-monotone cumulative counts.
	wantLint(t, `# TYPE nc_h_seconds histogram
nc_h_seconds_bucket{le="1"} 5
nc_h_seconds_bucket{le="2"} 3
nc_h_seconds_bucket{le="+Inf"} 5
nc_h_seconds_count 5
`, "cumulative count decreased")
	// le values out of order.
	wantLint(t, `# TYPE nc_h_seconds histogram
nc_h_seconds_bucket{le="2"} 1
nc_h_seconds_bucket{le="1"} 2
nc_h_seconds_bucket{le="+Inf"} 2
`, "out of order")
	// _count disagreeing with the +Inf bucket.
	wantLint(t, `# TYPE nc_h_seconds histogram
nc_h_seconds_bucket{le="+Inf"} 3
nc_h_seconds_count 4
`, "_count 4 != +Inf bucket 3")
	// A bare sample under a histogram family.
	wantLint(t, `# TYPE nc_h_seconds histogram
nc_h_seconds 3
`, "bare sample")
	// Labelled histograms are tracked per label set.
	text := `# TYPE nc_h_seconds histogram
nc_h_seconds_bucket{op="a",le="1"} 1
nc_h_seconds_bucket{op="a",le="+Inf"} 1
nc_h_seconds_bucket{op="b",le="1"} 0
nc_h_seconds_bucket{op="b",le="+Inf"} 2
nc_h_seconds_count{op="a"} 1
nc_h_seconds_count{op="b"} 2
`
	if errs := lintErrs(t, text); len(errs) != 0 {
		t.Errorf("labelled histogram flagged: %v", errs)
	}
}

func TestLintGaugeNonFinite(t *testing.T) {
	// Gauges may carry NaN and the infinities; counters may not.
	text := `# TYPE nc_ratio gauge
nc_ratio{k="nan"} NaN
nc_ratio{k="pinf"} +Inf
nc_ratio{k="ninf"} -Inf
`
	if errs := lintErrs(t, text); len(errs) != 0 {
		t.Errorf("non-finite gauges flagged: %v", errs)
	}
}
