package spec

import (
	"strings"
	"testing"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

func TestExampleParsesAndAnalyzes(t *testing.T) {
	p, err := Parse([]byte(Example()))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.Core()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(cp)
	if err != nil {
		t.Fatal(err)
	}
	// The example is the paper's bump-in-the-wire pipeline: bounds must
	// land at 59 / ~313 MiB/s.
	if got := float64(a.ThroughputLower) / float64(units.MiBPerSec); got < 58 || got > 60 {
		t.Errorf("lower = %.1f", got)
	}
	if got := float64(a.ThroughputUpper) / float64(units.MiBPerSec); got < 308 || got > 318 {
		t.Errorf("upper = %.1f", got)
	}
}

func TestExampleSimRuns(t *testing.T) {
	p, err := Parse([]byte(Example()))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.Sim(2*units.MiB, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Throughput) / float64(units.MiBPerSec)
	if got < 55 || got > 70 {
		t.Errorf("sim throughput = %.1f MiB/s", got)
	}
}

func TestExampleQueueing(t *testing.T) {
	p, _ := Parse([]byte(Example()))
	n := p.Queueing()
	if len(n.Stages) != 6 || n.ArrivalRate != 2662*units.MiBPerSec {
		t.Errorf("queueing network: %+v", n)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("malformed JSON must fail")
	}
	if _, err := Parse([]byte(`{"arrival":{"rate":"banana"}}`)); err == nil {
		t.Error("bad rate must fail")
	}
}

func TestCoreConversionErrors(t *testing.T) {
	cases := []string{
		`{"name":"x","arrival":{"rate":"1 MiB/s"},"nodes":[
		  {"name":"n","kind":"quantum","rate":"1 MiB/s","job_in":"1 B","job_out":"1 B"}]}`,
		`{"name":"x","arrival":{"rate":"1 MiB/s"},"nodes":[
		  {"name":"n","rate":"1 MiB/s","latency":"soon","job_in":"1 B","job_out":"1 B"}]}`,
		`{"name":"x","arrival":{"rate":"1 MiB/s"},"nodes":[]}`,
	}
	for i, c := range cases {
		p, err := Parse([]byte(c))
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		if _, err := p.Core(); err == nil {
			t.Errorf("case %d: expected conversion error", i)
		}
	}
}

func TestSimErrors(t *testing.T) {
	p, err := Parse([]byte(`{"name":"x","arrival":{"rate":"1 MiB/s"},"nodes":[
	  {"name":"n","rate":"2 MiB/s","job_in":"1 KiB","job_out":"1 KiB",
	   "sim_min_rate":"3 MiB/s","sim_max_rate":"2 MiB/s"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sim(units.MiB, 1); err == nil {
		t.Error("inverted sim band must fail")
	}
	empty, _ := Parse([]byte(`{"name":"x","arrival":{"rate":"1 MiB/s"}}`))
	if _, err := empty.Sim(units.MiB, 1); err == nil {
		t.Error("no nodes must fail")
	}
	bad, _ := Parse([]byte(`{"name":"x","arrival":{"rate":"1 MiB/s"},"nodes":[
	  {"name":"n","rate":"2 MiB/s","latency":"nope","job_in":"1 KiB","job_out":"1 KiB"}]}`))
	if _, err := bad.Sim(units.MiB, 1); err == nil {
		t.Error("bad latency must fail in Sim")
	}
}

func TestDefaultPacketFromJobIn(t *testing.T) {
	p, err := Parse([]byte(`{"name":"x","arrival":{"rate":"1 MiB/s"},"nodes":[
	  {"name":"n","rate":"2 MiB/s","job_in":"4 KiB","job_out":"4 KiB"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.Sim(64*units.KiB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExampleIsValidJSONDocument(t *testing.T) {
	if !strings.Contains(Example(), "bump-in-the-wire") {
		t.Error("example must describe the bump-in-the-wire pipeline")
	}
}
