package spec

import (
	"testing"

	"streamcalc/internal/core"
)

const dagSpec = `{
  "name": "dag",
  "arrival": {"rate": "120 MiB/s", "burst": "2 MiB"},
  "nodes": [
    {"name": "decode",  "rate": "400 MiB/s", "job_in": "256 KiB", "job_out": "256 KiB"},
    {"name": "detect",  "rate": "40 MiB/s",  "job_in": "1 MiB",   "job_out": "32 KiB"},
    {"name": "archive", "rate": "300 MiB/s", "job_in": "256 KiB", "job_out": "128 KiB"},
    {"name": "uplink",  "kind": "link", "rate": "100 MiB/s", "job_in": "64 KiB", "job_out": "64 KiB"}
  ],
  "edges": [
    {"to": "decode"},
    {"from": "decode", "to": "detect", "fraction": 0.2},
    {"from": "decode", "to": "archive"},
    {"from": "detect", "to": "uplink"},
    {"from": "archive", "to": "uplink"}
  ]
}`

func TestGraphSpecRoundTrip(t *testing.T) {
	p, err := Parse([]byte(dagSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsGraph() {
		t.Fatal("edges present must mean graph")
	}
	g, err := p.CoreGraph()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Stable {
		t.Error("DAG spec must be stable")
	}
	if len(a.Order) != 4 {
		t.Errorf("order %v", a.Order)
	}
}

func TestChainSpecIsNotGraph(t *testing.T) {
	p, err := Parse([]byte(Example()))
	if err != nil {
		t.Fatal(err)
	}
	if p.IsGraph() {
		t.Error("example chain must not be a graph")
	}
}
