// Package spec reads and writes pipeline descriptions as JSON so the
// command-line tools can model arbitrary streaming applications without
// recompiling. Rates and sizes accept human-friendly strings ("350 MiB/s",
// "3 MiB") and durations use Go syntax ("11.29ms").
package spec

import (
	"encoding/json"
	"fmt"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/queueing"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

// Bucket mirrors core.Bucket.
type Bucket struct {
	Rate  units.Rate  `json:"rate"`
	Burst units.Bytes `json:"burst,omitempty"`
}

// Arrival mirrors core.Arrival with parseable fields.
type Arrival struct {
	Rate      units.Rate  `json:"rate"`
	Burst     units.Bytes `json:"burst,omitempty"`
	MaxPacket units.Bytes `json:"max_packet,omitempty"`
	// Extra lists additional leaky-bucket constraints (variable-rate
	// envelopes).
	Extra []Bucket `json:"extra,omitempty"`
}

// Node mirrors core.Node with parseable fields plus optional simulation
// hints (min/max measured rates for the DES execution-time band).
type Node struct {
	Name      string      `json:"name"`
	Kind      string      `json:"kind,omitempty"` // "compute" (default) or "link"
	Rate      units.Rate  `json:"rate"`
	MaxRate   units.Rate  `json:"max_rate,omitempty"`
	Latency   string      `json:"latency,omitempty"`
	JobIn     units.Bytes `json:"job_in"`
	JobOut    units.Bytes `json:"job_out"`
	MaxPacket units.Bytes `json:"max_packet,omitempty"`
	BestGain  float64     `json:"best_gain,omitempty"`

	// CrossRate/CrossBurst describe competing traffic sharing the node
	// (blind multiplexing; the flow gets the residual service).
	CrossRate  units.Rate  `json:"cross_rate,omitempty"`
	CrossBurst units.Bytes `json:"cross_burst,omitempty"`

	// SimMinRate/SimMaxRate bound the simulated per-job execution rate;
	// both default to Rate (deterministic service).
	SimMinRate units.Rate `json:"sim_min_rate,omitempty"`
	SimMaxRate units.Rate `json:"sim_max_rate,omitempty"`
	// QueueCap bounds the simulated input queue (backpressure); 0 =
	// unbounded.
	QueueCap units.Bytes `json:"queue_cap,omitempty"`
	// StallEvery/StallFor inject periodic service interruptions in the
	// simulator (failure injection; Go duration syntax).
	StallEvery string `json:"stall_every,omitempty"`
	StallFor   string `json:"stall_for,omitempty"`
}

// Edge routes a share of From's output to To (DAG mode). An empty From
// means the offered arrival flow.
type Edge struct {
	From     string  `json:"from,omitempty"`
	To       string  `json:"to"`
	Fraction float64 `json:"fraction,omitempty"`
}

// Pipeline is the JSON document root. With Edges present the description is
// a DAG (analyzed by CoreGraph); otherwise the nodes form a chain.
type Pipeline struct {
	Name    string  `json:"name"`
	Arrival Arrival `json:"arrival"`
	Nodes   []Node  `json:"nodes"`
	Edges   []Edge  `json:"edges,omitempty"`
}

// IsGraph reports whether the description uses explicit DAG edges.
func (p *Pipeline) IsGraph() bool { return len(p.Edges) > 0 }

// Parse decodes a JSON pipeline description.
func Parse(data []byte) (*Pipeline, error) {
	var p Pipeline
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &p, nil
}

// Core converts the description to the network-calculus model input.
func (p *Pipeline) Core() (core.Pipeline, error) {
	out := core.Pipeline{
		Name: p.Name,
		Arrival: core.Arrival{
			Rate:      p.Arrival.Rate,
			Burst:     p.Arrival.Burst,
			MaxPacket: p.Arrival.MaxPacket,
		},
	}
	for _, b := range p.Arrival.Extra {
		out.Arrival.Extra = append(out.Arrival.Extra, core.Bucket{Rate: b.Rate, Burst: b.Burst})
	}
	for i, n := range p.Nodes {
		cn, err := n.core(i)
		if err != nil {
			return core.Pipeline{}, err
		}
		out.Nodes = append(out.Nodes, cn)
	}
	if err := out.Validate(); err != nil {
		return core.Pipeline{}, err
	}
	return out, nil
}

// core converts one node description to the model node (i for error
// messages).
func (n Node) core(i int) (core.Node, error) {
	kind := core.Compute
	switch n.Kind {
	case "", "compute":
	case "link":
		kind = core.Link
	default:
		return core.Node{}, fmt.Errorf("spec: node %d (%s): unknown kind %q", i, n.Name, n.Kind)
	}
	var lat time.Duration
	if n.Latency != "" {
		var err error
		lat, err = time.ParseDuration(n.Latency)
		if err != nil {
			return core.Node{}, fmt.Errorf("spec: node %d (%s): latency: %w", i, n.Name, err)
		}
	}
	return core.Node{
		Name:       n.Name,
		Kind:       kind,
		Rate:       n.Rate,
		MaxRate:    n.MaxRate,
		Latency:    lat,
		JobIn:      n.JobIn,
		JobOut:     n.JobOut,
		MaxPacket:  n.MaxPacket,
		BestGain:   n.BestGain,
		CrossRate:  n.CrossRate,
		CrossBurst: n.CrossBurst,
	}, nil
}

// CoreGraph converts a DAG description to the graph model input.
func (p *Pipeline) CoreGraph() (core.Graph, error) {
	chain, err := p.Core()
	if err != nil && len(p.Nodes) > 0 {
		// Core validates as a chain; a graph reuses its node conversion but
		// tolerates chain-specific failures only if they stem from node
		// content, so surface the error.
		return core.Graph{}, err
	}
	g := core.Graph{Name: p.Name, Arrival: chain.Arrival, Nodes: chain.Nodes}
	for _, e := range p.Edges {
		g.Edges = append(g.Edges, core.Edge{From: e.From, To: e.To, Fraction: e.Fraction})
	}
	return g, nil
}

// Queueing converts the description to the M/M/1 baseline input.
func (p *Pipeline) Queueing() queueing.Network {
	n := queueing.Network{Name: p.Name, ArrivalRate: p.Arrival.Rate}
	for _, nd := range p.Nodes {
		n.Stages = append(n.Stages, queueing.Stage{
			Name: nd.Name, Rate: nd.Rate, JobIn: nd.JobIn, JobOut: nd.JobOut,
		})
	}
	return n
}

// Sim builds the discrete-event simulation for the description, offering
// totalInput at the arrival rate in max_packet-sized packets (or job_in of
// the first node when no packet size is given).
func (p *Pipeline) Sim(totalInput units.Bytes, seed uint64) (*sim.Pipeline, error) {
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("spec: no nodes")
	}
	packet := p.Arrival.MaxPacket
	if packet <= 0 {
		packet = p.Nodes[0].JobIn
	}
	src := sim.SourceConfig{
		Rate:       p.Arrival.Rate,
		PacketSize: packet,
		Burst:      p.Arrival.Burst,
		TotalInput: totalInput,
	}
	// Multi-bucket arrivals play back greedily at the envelope.
	if len(p.Arrival.Extra) > 0 {
		src.Envelope = append(src.Envelope, sim.EnvelopeBucket{
			Rate: p.Arrival.Rate, Burst: p.Arrival.Burst + p.Arrival.MaxPacket,
		})
		for _, b := range p.Arrival.Extra {
			src.Envelope = append(src.Envelope, sim.EnvelopeBucket{Rate: b.Rate, Burst: b.Burst})
		}
	}
	sp := sim.New(src, seed)
	for i, n := range p.Nodes {
		minRate, maxRate := n.SimMinRate, n.SimMaxRate
		if minRate <= 0 {
			minRate = n.Rate
		}
		if maxRate <= 0 {
			maxRate = minRate
		}
		if maxRate < minRate {
			return nil, fmt.Errorf("spec: node %d (%s): sim_max_rate below sim_min_rate", i, n.Name)
		}
		cfg := sim.StageFromRate(n.Name, minRate, maxRate, n.JobIn, n.JobOut)
		cfg.QueueCap = n.QueueCap
		if n.Latency != "" {
			lat, err := time.ParseDuration(n.Latency)
			if err != nil {
				return nil, fmt.Errorf("spec: node %d (%s): latency: %w", i, n.Name, err)
			}
			cfg.Startup = lat
		}
		if n.StallEvery != "" && n.StallFor != "" {
			se, err := time.ParseDuration(n.StallEvery)
			if err != nil {
				return nil, fmt.Errorf("spec: node %d (%s): stall_every: %w", i, n.Name, err)
			}
			sf, err := time.ParseDuration(n.StallFor)
			if err != nil {
				return nil, fmt.Errorf("spec: node %d (%s): stall_for: %w", i, n.Name, err)
			}
			cfg.StallEvery, cfg.StallFor = se, sf
		}
		sp.Add(cfg)
	}
	return sp, nil
}

// Example returns a documented sample specification (the paper's
// bump-in-the-wire pipeline).
func Example() string {
	return `{
  "name": "bump-in-the-wire",
  "arrival": {"rate": "2662 MiB/s", "burst": "1311 B", "max_packet": "1 KiB"},
  "nodes": [
    {"name": "compress",   "rate": "2662 MiB/s", "max_rate": "6386 MiB/s",
     "latency": "60ns", "job_in": "1 KiB", "job_out": "1 KiB",
     "max_packet": "1 KiB", "best_gain": 0.18868,
     "sim_min_rate": "1181 MiB/s", "sim_max_rate": "6386 MiB/s", "queue_cap": "4 KiB"},
    {"name": "encrypt",    "rate": "59 MiB/s",
     "latency": "50ns", "job_in": "1 KiB", "job_out": "1 KiB", "max_packet": "1 KiB",
     "sim_min_rate": "56 MiB/s", "sim_max_rate": "68 MiB/s", "queue_cap": "4 KiB"},
    {"name": "network",    "kind": "link", "rate": "10 GiB/s",
     "latency": "80ns", "job_in": "1 KiB", "job_out": "1 KiB", "max_packet": "1 KiB",
     "queue_cap": "4 KiB"},
    {"name": "decrypt",    "rate": "90 MiB/s", "max_rate": "113 MiB/s",
     "latency": "40ns", "job_in": "1 KiB", "job_out": "1 KiB", "max_packet": "1 KiB",
     "sim_min_rate": "77 MiB/s", "sim_max_rate": "113 MiB/s", "queue_cap": "4 KiB"},
    {"name": "decompress", "rate": "1495 MiB/s", "max_rate": "1543 MiB/s",
     "latency": "20ns", "job_in": "1 KiB", "job_out": "1 KiB",
     "max_packet": "1 KiB", "best_gain": 5.3,
     "sim_min_rate": "1426 MiB/s", "sim_max_rate": "1543 MiB/s", "queue_cap": "4 KiB"},
    {"name": "pcie",       "kind": "link", "rate": "11 GiB/s",
     "latency": "14ns", "job_in": "1 KiB", "job_out": "1 KiB", "max_packet": "1 KiB",
     "queue_cap": "4 KiB"}
  ]
}`
}
