package spec

import (
	"testing"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/units"
)

func TestExamplePlatformBuildsController(t *testing.T) {
	p, err := ParsePlatform([]byte(ExamplePlatform()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Controller()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NodeNames(); len(got) != 3 || got[1] != "encrypt" {
		t.Errorf("node names = %v", got)
	}
}

func TestExampleTraceReplays(t *testing.T) {
	p, err := ParsePlatform([]byte(ExamplePlatform()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Controller()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ParseTrace([]byte(ExampleTrace()))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := TraceOps(wire)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := admit.Replay(c, ops, admit.ReplayOptions{Total: 2 * units.MiB, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 3 || rep.Rejected != 1 {
		t.Errorf("admitted/rejected = %d/%d, want 3/1", rep.Admitted, rep.Rejected)
	}
	if rep.Violations != 0 {
		for _, s := range rep.Steps {
			for _, v := range s.Violations {
				t.Errorf("step %d: %s", s.Index, v)
			}
		}
	}
}

func TestFlowAdmitConversion(t *testing.T) {
	fl, err := ParseFlow([]byte(`{
		"id": "t", "arrival": {"rate": "10 MiB/s", "burst": "64 KiB", "max_packet": "4 KiB",
			"extra": [{"rate": "5 MiB/s", "burst": "128 KiB"}]},
		"path": ["a", "b"],
		"slo": {"max_delay": "20ms", "max_backlog": "1 MiB", "min_throughput": "10 MiB/s"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	af, err := fl.Admit()
	if err != nil {
		t.Fatal(err)
	}
	if af.ID != "t" || len(af.Path) != 2 || len(af.Arrival.Extra) != 1 {
		t.Errorf("converted flow = %+v", af)
	}
	if af.SLO.MaxDelay != 20*time.Millisecond || af.SLO.MaxBacklog != units.MiB {
		t.Errorf("converted SLO = %+v", af.SLO)
	}

	fl.SLO.MaxDelay = "bogus"
	if _, err := fl.Admit(); err == nil {
		t.Error("bad max_delay must error")
	}
}
