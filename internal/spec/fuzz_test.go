package spec

import "testing"

// FuzzParseSpec feeds arbitrary bytes through every JSON entry point and
// the conversions behind them: malformed input must surface as errors, never
// as panics.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(Example()))
	f.Add([]byte(ExamplePlatform()))
	f.Add([]byte(ExampleTrace()))
	f.Add([]byte(`{"name":"x","arrival":{"rate":"1 MiB/s"},"nodes":[` +
		`{"name":"n","rate":"2 MiB/s","job_in":"1 KiB","job_out":"1 KiB"}]}`))
	f.Add([]byte(`{"id":"t","arrival":{"rate":"-3 MiB/s"},"path":["n"],"slo":{"max_delay":"5x"}}`))
	f.Add([]byte(`{"nodes":[{"name":"n","kind":"gpu"}]}`))
	f.Add([]byte(`[{"op":"admit"},{"op":"release","id":"t"}]`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := Parse(data); err == nil {
			p.Core()
			p.CoreGraph()
			p.Queueing()
			p.Sim(1024, 1)
		}
		if fl, err := ParseFlow(data); err == nil {
			fl.Admit()
		}
		if pl, err := ParsePlatform(data); err == nil {
			pl.Controller()
		}
		if ops, err := ParseTrace(data); err == nil {
			TraceOps(ops)
		}
	})
}
