package spec

// This file holds the admission-control wire formats: platforms, tenant
// flows, SLOs, and admit/release traces, as consumed by cmd/ncadmitd.

import (
	"encoding/json"
	"fmt"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// SLO mirrors admit.SLO; the delay bound uses Go duration syntax.
type SLO struct {
	MaxDelay      string      `json:"max_delay,omitempty"`
	MaxBacklog    units.Bytes `json:"max_backlog,omitempty"`
	MinThroughput units.Rate  `json:"min_throughput,omitempty"`
}

// Flow mirrors admit.Flow: an admission candidate offered to the daemon.
// Rung optionally overrides the platform's analysis tightness for this flow
// ("blind", "fifo" or "tight"; empty defers to the platform default).
type Flow struct {
	ID      string   `json:"id"`
	Arrival Arrival  `json:"arrival"`
	Path    []string `json:"path"`
	SLO     SLO      `json:"slo,omitempty"`
	Rung    string   `json:"rung,omitempty"`
}

// Platform describes an admission-controller platform: named nodes using
// the pipeline Node schema (latency strings, optional background cross
// traffic), plus an optional default analysis tightness rung ("blind",
// "fifo" or "tight") applied to flows that do not carry their own.
// Simulation hints are ignored by the controller.
type Platform struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	Rung  string `json:"rung,omitempty"`
}

// TraceOp is one wire-format step of an admitted-flow trace.
type TraceOp struct {
	Op   string `json:"op"` // "admit" or "release"
	Flow *Flow  `json:"flow,omitempty"`
	ID   string `json:"id,omitempty"`
}

// ParseFlow decodes a JSON flow description.
func ParseFlow(data []byte) (*Flow, error) {
	var f Flow
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &f, nil
}

// ParseFlows decodes a JSON array of flow descriptions (the batch-admission
// request body).
func ParseFlows(data []byte) ([]Flow, error) {
	var fs []Flow
	if err := json.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return fs, nil
}

// FromAdmit converts a controller flow back to its wire description — the
// inverse of Flow.Admit, used by HTTP clients (the load harness) that
// generate admit.Flow values and must serialize them.
func FromAdmit(f admit.Flow) Flow {
	out := Flow{
		ID:   f.ID,
		Path: f.Path,
		Arrival: Arrival{
			Rate:      f.Arrival.Rate,
			Burst:     f.Arrival.Burst,
			MaxPacket: f.Arrival.MaxPacket,
		},
	}
	for _, b := range f.Arrival.Extra {
		out.Arrival.Extra = append(out.Arrival.Extra, Bucket{Rate: b.Rate, Burst: b.Burst})
	}
	if f.SLO.MaxDelay > 0 {
		out.SLO.MaxDelay = f.SLO.MaxDelay.String()
	}
	out.SLO.MaxBacklog = f.SLO.MaxBacklog
	out.SLO.MinThroughput = f.SLO.MinThroughput
	if f.Rung != core.RungDefault {
		out.Rung = f.Rung.String()
	}
	return out
}

// ParsePlatform decodes a JSON platform description.
func ParsePlatform(data []byte) (*Platform, error) {
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &p, nil
}

// ParseTrace decodes a JSON array of trace operations.
func ParseTrace(data []byte) ([]TraceOp, error) {
	var ops []TraceOp
	if err := json.Unmarshal(data, &ops); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return ops, nil
}

// Admit converts the description to the controller's flow type.
func (f *Flow) Admit() (admit.Flow, error) {
	out := admit.Flow{
		ID:   f.ID,
		Path: append([]string(nil), f.Path...),
		Arrival: core.Arrival{
			Rate:      f.Arrival.Rate,
			Burst:     f.Arrival.Burst,
			MaxPacket: f.Arrival.MaxPacket,
		},
	}
	for _, b := range f.Arrival.Extra {
		out.Arrival.Extra = append(out.Arrival.Extra, core.Bucket{Rate: b.Rate, Burst: b.Burst})
	}
	if f.SLO.MaxDelay != "" {
		d, err := time.ParseDuration(f.SLO.MaxDelay)
		if err != nil {
			return admit.Flow{}, fmt.Errorf("spec: flow %q: max_delay: %w", f.ID, err)
		}
		out.SLO.MaxDelay = d
	}
	out.SLO.MaxBacklog = f.SLO.MaxBacklog
	out.SLO.MinThroughput = f.SLO.MinThroughput
	r, err := core.ParseRung(f.Rung)
	if err != nil {
		return admit.Flow{}, fmt.Errorf("spec: flow %q: %w", f.ID, err)
	}
	out.Rung = r
	return out, nil
}

// Core converts the platform node descriptions to model nodes.
func (p *Platform) Core() ([]core.Node, error) {
	out := make([]core.Node, 0, len(p.Nodes))
	for i, n := range p.Nodes {
		cn, err := n.core(i)
		if err != nil {
			return nil, err
		}
		out = append(out, cn)
	}
	return out, nil
}

// Controller builds an admission controller from the platform description,
// applying the platform's default analysis rung when one is declared.
func (p *Platform) Controller() (*admit.Controller, error) {
	nodes, err := p.Core()
	if err != nil {
		return nil, err
	}
	c, err := admit.New(p.Name, nodes)
	if err != nil {
		return nil, err
	}
	r, err := core.ParseRung(p.Rung)
	if err != nil {
		return nil, fmt.Errorf("spec: platform %q: %w", p.Name, err)
	}
	c.SetRung(r)
	return c, nil
}

// TraceOps converts a wire trace to controller trace operations.
func TraceOps(ops []TraceOp) ([]admit.TraceOp, error) {
	out := make([]admit.TraceOp, 0, len(ops))
	for i, op := range ops {
		a := admit.TraceOp{Op: op.Op, ID: op.ID}
		if op.Flow != nil {
			f, err := op.Flow.Admit()
			if err != nil {
				return nil, fmt.Errorf("spec: trace step %d: %w", i, err)
			}
			a.Flow = f
		}
		out = append(out, a)
	}
	return out, nil
}

// ExamplePlatform returns a documented sample platform for cmd/ncadmitd: a
// three-stage edge gateway shared by tenants.
func ExamplePlatform() string {
	return `{
  "name": "edge-gateway",
  "nodes": [
    {"name": "ingest",  "rate": "200 MiB/s", "latency": "200us",
     "job_in": "4 KiB", "job_out": "4 KiB", "max_packet": "4 KiB"},
    {"name": "encrypt", "rate": "50 MiB/s",  "latency": "500us",
     "job_in": "4 KiB", "job_out": "4 KiB", "max_packet": "4 KiB"},
    {"name": "uplink",  "kind": "link", "rate": "120 MiB/s", "latency": "1ms",
     "job_in": "4 KiB", "job_out": "4 KiB", "max_packet": "4 KiB"}
  ]
}`
}

// ExampleTrace returns a sample admitted-flow trace exercising admission,
// rejection, and release against ExamplePlatform.
func ExampleTrace() string {
	return `[
  {"op": "admit", "flow": {"id": "cam-1",
    "arrival": {"rate": "10 MiB/s", "burst": "64 KiB", "max_packet": "4 KiB"},
    "path": ["ingest", "encrypt", "uplink"],
    "slo": {"max_delay": "200ms", "max_backlog": "16 MiB", "min_throughput": "10 MiB/s"}}},
  {"op": "admit", "flow": {"id": "cam-2",
    "arrival": {"rate": "15 MiB/s", "burst": "64 KiB", "max_packet": "4 KiB"},
    "path": ["ingest", "encrypt", "uplink"],
    "slo": {"max_delay": "200ms", "min_throughput": "15 MiB/s"}}},
  {"op": "admit", "flow": {"id": "bulk",
    "arrival": {"rate": "400 MiB/s", "burst": "1 MiB", "max_packet": "4 KiB"},
    "path": ["ingest", "encrypt", "uplink"],
    "slo": {"min_throughput": "400 MiB/s"}}},
  {"op": "release", "id": "cam-1"},
  {"op": "admit", "flow": {"id": "cam-3",
    "arrival": {"rate": "20 MiB/s", "burst": "64 KiB", "max_packet": "4 KiB"},
    "path": ["ingest", "encrypt", "uplink"],
    "slo": {"max_delay": "200ms", "min_throughput": "20 MiB/s"}}}
]`
}
