package spec

import (
	"testing"

	"streamcalc/internal/units"
)

func TestSpecStallInjection(t *testing.T) {
	doc := `{"name":"x","arrival":{"rate":"1000 B/s"},"nodes":[
	  {"name":"s","rate":"2000 B/s","job_in":"10 B","job_out":"10 B",
	   "stall_every":"50ms","stall_for":"50ms"}]}`
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.Sim(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2000 B/s duty-cycled 50/50 -> ~1000 B/s effective; saturated at the
	// arrival rate minus stall effects.
	if res.Stages[0].Stalls == 0 {
		t.Error("stalls not injected")
	}
	// Bad duration strings fail.
	bad := `{"name":"x","arrival":{"rate":"1 B/s"},"nodes":[
	  {"name":"s","rate":"2 B/s","job_in":"1 B","job_out":"1 B",
	   "stall_every":"soon","stall_for":"50ms"}]}`
	pb, _ := Parse([]byte(bad))
	if _, err := pb.Sim(100, 1); err == nil {
		t.Error("bad stall_every must fail")
	}
	bad2 := `{"name":"x","arrival":{"rate":"1 B/s"},"nodes":[
	  {"name":"s","rate":"2 B/s","job_in":"1 B","job_out":"1 B",
	   "stall_every":"50ms","stall_for":"later"}]}`
	pb2, _ := Parse([]byte(bad2))
	if _, err := pb2.Sim(100, 1); err == nil {
		t.Error("bad stall_for must fail")
	}
}

func TestSpecEnvelopePlayback(t *testing.T) {
	doc := `{"name":"x",
	  "arrival":{"rate":"1000 B/s","burst":"50 B","max_packet":"10 B",
	             "extra":[{"rate":"200 B/s","burst":"500 B"}]},
	  "nodes":[{"name":"s","rate":"5000 B/s","job_in":"10 B","job_out":"10 B"}]}`
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.Sim(4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Greedy playback of the two-bucket envelope: long-run rate near the
	// sustained 200 B/s bucket.
	tp := float64(res.Throughput)
	if tp > 240 || tp < 150 {
		t.Errorf("throughput %v, want ~200 (sustained bucket)", tp)
	}
	if res.OutputInput != units.Bytes(4000) {
		t.Errorf("conservation: %v", res.OutputInput)
	}
}
