package link

import (
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

func TestModelNode(t *testing.T) {
	m := Model{Name: "net", Bandwidth: 10 * units.GiBPerSec, Latency: 2 * time.Microsecond, MTU: units.KiB}
	n := m.Node()
	if n.Kind != core.Link {
		t.Error("kind must be Link")
	}
	if n.Rate != m.Bandwidth || n.MaxPacket != units.KiB || n.JobIn != units.KiB {
		t.Errorf("node fields: %+v", n)
	}
	// Fluid link defaults to unit jobs.
	f := Model{Name: "fluid", Bandwidth: 1}.Node()
	if f.JobIn != 1 || f.MaxPacket != 0 {
		t.Errorf("fluid node: %+v", f)
	}
}

func TestTransferTime(t *testing.T) {
	m := Model{Bandwidth: 1000, Latency: time.Second}
	got := m.TransferTime(2000)
	if got != 3*time.Second {
		t.Errorf("transfer time = %v", got)
	}
}

func TestPresetsAreUsable(t *testing.T) {
	for _, m := range []Model{TenGbE, PCIe3x16} {
		p := core.Pipeline{
			Arrival: core.Arrival{Rate: units.MiBPerSec, Burst: units.KiB},
			Nodes:   []core.Node{m.Node()},
		}
		if _, err := core.Analyze(p); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestMeasureTCPLoopback(t *testing.T) {
	rate, err := MeasureTCPLoopback(4*units.MiB, 64*units.KiB)
	if err != nil {
		t.Skipf("loopback unavailable in this environment: %v", err)
	}
	if rate < 10*units.MiBPerSec {
		t.Errorf("loopback rate implausibly low: %v", rate)
	}
}

func TestMeasureTCPLoopbackValidation(t *testing.T) {
	if _, err := MeasureTCPLoopback(0, 1); err == nil {
		t.Error("zero total must fail")
	}
	if _, err := MeasureTCPLoopback(1, 0); err == nil {
		t.Error("zero chunk must fail")
	}
}
