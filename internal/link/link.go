// Package link models the communication substrates of heterogeneous
// deployments — network links and PCIe buses — as rate-latency elements, and
// provides a real TCP loopback transfer driver (stdlib net) so link service
// rates can be measured the way the paper measures its FPGA TCP stack.
package link

import (
	"fmt"
	"io"
	"net"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// Model is a communication link characterized by bandwidth and propagation
// latency — exactly the information a rate-latency service curve encodes.
type Model struct {
	Name string
	// Bandwidth is the sustained transfer rate.
	Bandwidth units.Rate
	// Latency is the propagation/setup delay.
	Latency time.Duration
	// MTU is the maximum packet the link carries at once (the l_max of the
	// packetizer adjustment); 0 models a fluid link.
	MTU units.Bytes
}

// Node converts the link into a pipeline node for the network-calculus
// model (job sizes of one MTU, or unit jobs for fluid links).
func (m Model) Node() core.Node {
	job := m.MTU
	if job <= 0 {
		job = 1
	}
	return core.Node{
		Name:      m.Name,
		Kind:      core.Link,
		Rate:      m.Bandwidth,
		MaxRate:   m.Bandwidth,
		Latency:   m.Latency,
		JobIn:     job,
		JobOut:    job,
		MaxPacket: m.MTU,
	}
}

// TransferTime returns how long the link needs to move n bytes: latency
// plus serialization.
func (m Model) TransferTime(n units.Bytes) time.Duration {
	return m.Latency + n.Time(m.Bandwidth)
}

// Common link presets used by the paper's case studies.
var (
	// TenGbE approximates the OCT FPGA network path the paper measures at
	// 10 GiB/s.
	TenGbE = Model{Name: "network", Bandwidth: 10 * units.GiBPerSec, Latency: 2 * time.Microsecond, MTU: 1 * units.KiB}
	// PCIe3x16 approximates the measured 11 GiB/s PCIe link.
	PCIe3x16 = Model{Name: "pcie", Bandwidth: 11 * units.GiBPerSec, Latency: 1 * time.Microsecond, MTU: 4 * units.KiB}
)

// MeasureTCPLoopback transfers total bytes over a real TCP connection on
// the loopback interface in chunkSize writes and returns the achieved
// throughput. It exercises an actual network stack end to end (listener,
// dial, copy, close) the way the paper measures its FPGA TCP kernel in
// isolation.
func MeasureTCPLoopback(total, chunkSize units.Bytes) (units.Rate, error) {
	if total <= 0 || chunkSize <= 0 {
		return 0, fmt.Errorf("link: total and chunkSize must be positive")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, fmt.Errorf("link: listen: %w", err)
	}
	defer ln.Close()

	errCh := make(chan error, 1)
	recvDone := make(chan int64, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		n, err := io.Copy(io.Discard, conn)
		if err != nil {
			errCh <- err
			return
		}
		recvDone <- n
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, fmt.Errorf("link: dial: %w", err)
	}
	buf := make([]byte, int(chunkSize))
	start := time.Now()
	var sent int64
	for sent < int64(total) {
		n := int64(len(buf))
		if rem := int64(total) - sent; rem < n {
			n = rem
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			conn.Close()
			return 0, fmt.Errorf("link: write: %w", err)
		}
		sent += n
	}
	conn.Close()
	select {
	case n := <-recvDone:
		elapsed := time.Since(start)
		return units.Bytes(n).Over(elapsed), nil
	case err := <-errCh:
		return 0, fmt.Errorf("link: receiver: %w", err)
	case <-time.After(30 * time.Second):
		return 0, fmt.Errorf("link: transfer timed out")
	}
}
