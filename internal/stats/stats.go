// Package stats provides the summary statistics used by the measurement
// harnesses and the discrete-event simulator: running summaries, histograms,
// time-weighted integrals, and watermark tracking.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a running summary (count, mean, variance via Welford,
// min, max) of a stream of observations.
type Summary struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the unbiased sample variance, or NaN for n < 2.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation, or NaN for n < 2.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN when empty.
func (s *Summary) Min() float64 {
	if !s.hasSamples {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN when empty.
func (s *Summary) Max() float64 {
	if !s.hasSamples {
		return math.NaN()
	}
	return s.max
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// using the normal approximation. NaN for n < 2.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String renders "mean=… sd=… min=… max=… n=…".
func (s *Summary) String() string {
	return fmt.Sprintf("mean=%.6g sd=%.6g min=%.6g max=%.6g n=%d",
		s.Mean(), s.StdDev(), s.Min(), s.Max(), s.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It sorts a copy; xs is unmodified.
// NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if len(c) == 1 {
		return c[0]
	}
	pos := q * float64(len(c)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[i]*(1-frac) + c[i+1]*frac
}

// Watermark tracks the running maximum (high-water mark) of a level that
// moves up and down, e.g. queue occupancy.
type Watermark struct {
	level float64
	peak  float64
}

// Adjust moves the level by delta and updates the peak.
func (w *Watermark) Adjust(delta float64) {
	w.level += delta
	if w.level > w.peak {
		w.peak = w.level
	}
}

// Set sets the level to v directly and updates the peak.
func (w *Watermark) Set(v float64) {
	w.level = v
	if w.level > w.peak {
		w.peak = w.level
	}
}

// Level returns the current level.
func (w *Watermark) Level() float64 { return w.level }

// Peak returns the highest level ever seen.
func (w *Watermark) Peak() float64 { return w.peak }

// TimeWeighted accumulates the time integral of a piecewise-constant level,
// yielding time averages (e.g. average queue length).
type TimeWeighted struct {
	lastT    float64
	level    float64
	integral float64
	started  bool
	startT   float64
}

// Observe records that the level changed to v at time t. Time must be
// non-decreasing across calls.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started {
		tw.started = true
		tw.startT = t
	} else {
		tw.integral += tw.level * (t - tw.lastT)
	}
	tw.lastT = t
	tw.level = v
}

// AverageUntil returns the time average of the level over [start, t].
// NaN if nothing was observed or t precedes the first observation.
func (tw *TimeWeighted) AverageUntil(t float64) float64 {
	if !tw.started || t <= tw.startT {
		return math.NaN()
	}
	total := tw.integral + tw.level*(t-tw.lastT)
	return total / (t - tw.startT)
}

// Histogram is a fixed-width-bin histogram over [lo, hi); out-of-range
// observations are clamped into the first/last bin.
type Histogram struct {
	lo, hi float64
	bins   []int64
	n      int64
}

// NewHistogram creates a histogram with nbins equal-width bins spanning
// [lo, hi). It panics when nbins < 1 or hi ≤ lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		panic("stats: NewHistogram nbins < 1")
	}
	if hi <= lo {
		panic("stats: NewHistogram hi <= lo")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*w
}
