package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty summary should be NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 = %v", s.CI95())
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-sample summary wrong")
	}
	if !math.IsNaN(s.Variance()) || !math.IsNaN(s.CI95()) {
		t.Error("variance of 1 sample should be NaN")
	}
}

func TestSummaryNegatives(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(-1)
	if s.Min() != -5 || s.Max() != -1 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

// Property: mean lies within [min, max], variance non-negative.
func TestSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		cnt := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitude so Welford precision holds comfortably.
			x = math.Mod(x, 1e9)
			s.Add(x)
			cnt++
		}
		if cnt == 0 {
			return true
		}
		m := s.Mean()
		if m < s.Min()-1e-6 || m > s.Max()+1e-6 {
			return false
		}
		if cnt >= 2 && s.Variance() < -1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if q := Quantile([]float64{7}, 0.3); q != 7 {
		t.Errorf("single = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty should be NaN")
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q should be NaN")
	}
	// Input must be unmodified.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile modified its input")
	}
}

func TestWatermark(t *testing.T) {
	var w Watermark
	w.Adjust(5)
	w.Adjust(-2)
	w.Adjust(4)
	if w.Level() != 7 {
		t.Errorf("level = %v", w.Level())
	}
	if w.Peak() != 7 {
		t.Errorf("peak = %v", w.Peak())
	}
	w.Adjust(-7)
	if w.Peak() != 7 {
		t.Errorf("peak after drop = %v", w.Peak())
	}
	w.Set(100)
	if w.Peak() != 100 || w.Level() != 100 {
		t.Error("Set failed")
	}
}

// Property: peak is monotone non-decreasing and always >= level.
func TestWatermarkInvariant(t *testing.T) {
	f := func(deltas []int8) bool {
		var w Watermark
		prevPeak := 0.0
		for _, d := range deltas {
			w.Adjust(float64(d))
			if w.Peak() < prevPeak || w.Peak() < w.Level() {
				return false
			}
			prevPeak = w.Peak()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	if !math.IsNaN(tw.AverageUntil(10)) {
		t.Error("empty average should be NaN")
	}
	tw.Observe(0, 2) // level 2 during [0,4)
	tw.Observe(4, 6) // level 6 during [4,8)
	got := tw.AverageUntil(8)
	if !almostEq(got, 4, 1e-12) {
		t.Errorf("avg = %v, want 4", got)
	}
	// Continuing past last observation extends the last level.
	got = tw.AverageUntil(16)
	// integral = 2*4 + 6*12 = 80, over 16 => 5
	if !almostEq(got, 5, 1e-12) {
		t.Errorf("avg = %v, want 5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 9.9, -2, 42} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	// -2 clamps into bin 0, 42 clamps into bin 4.
	if h.Bin(0) != 3 { // 0.5, 1, -2
		t.Errorf("bin0 = %d", h.Bin(0))
	}
	if h.Bin(4) != 2 { // 9.9, 42
		t.Errorf("bin4 = %d", h.Bin(4))
	}
	if h.NumBins() != 5 {
		t.Errorf("NumBins = %d", h.NumBins())
	}
	if c := h.BinCenter(0); !almostEq(c, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", c)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: histogram total count equals number of Adds.
func TestHistogramCount(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 13)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
		}
		var sum int64
		for i := 0; i < h.NumBins(); i++ {
			sum += h.Bin(i)
		}
		return sum == h.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
