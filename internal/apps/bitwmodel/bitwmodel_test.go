package bitwmodel

import (
	"math"
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/queueing"
	"streamcalc/internal/units"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

// Table 3, analytic rows: upper 313 MiB/s, lower 59 MiB/s.
func TestTable3NetworkCalculusBounds(t *testing.T) {
	a, err := Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(a.ThroughputLower) / float64(units.MiBPerSec); relErr(got, 59) > 0.005 {
		t.Errorf("lower bound = %.1f MiB/s, want 59", got)
	}
	if got := float64(a.ThroughputUpper) / float64(units.MiBPerSec); relErr(got, 313) > 0.005 {
		t.Errorf("upper bound = %.1f MiB/s, want 313 (= 59 x 5.3)", got)
	}
	if a.Bottleneck().Node.Name != "encrypt" {
		t.Errorf("bottleneck = %s", a.Bottleneck().Node.Name)
	}
}

// §5 points 1 and 2: d = 38 µs, x = 3 KiB (transient estimates).
func TestSection5Estimates(t *testing.T) {
	a, err := Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Overloaded {
		t.Error("R_alpha (2662) > R_beta (59): must flag overload")
	}
	if got := a.DelayEstimate.Seconds() * 1e6; relErr(got, 38) > 0.01 {
		t.Errorf("delay estimate = %.2f µs, want 38", got)
	}
	if got := float64(a.BacklogEstimate) / float64(units.KiB); relErr(got, 3) > 0.01 {
		t.Errorf("backlog estimate = %.3f KiB, want 3", got)
	}
}

// Table 3, queueing-theory row: 151 MiB/s (we derive 68 x 2.2 ~ 150).
func TestTable3QueueingPrediction(t *testing.T) {
	res, err := queueing.Analyze(QueueingNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Roofline) / float64(units.MiBPerSec); relErr(got, 151) > 0.02 {
		t.Errorf("queueing roofline = %.1f MiB/s, want ~151", got)
	}
}

// Table 3, simulation row: 61 MiB/s, just above the lower bound.
func TestTable3Simulation(t *testing.T) {
	res, err := SimulateThroughput(32*units.MiB, SimSeed)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Throughput) / float64(units.MiBPerSec)
	if got < 58 || got > 64 {
		t.Errorf("simulated throughput = %.1f MiB/s, want ~61", got)
	}
	a, _ := Analyze()
	lower := float64(a.ThroughputLower) / float64(units.MiBPerSec)
	upper := float64(a.ThroughputUpper) / float64(units.MiBPerSec)
	if got < lower-2 || got > upper {
		t.Errorf("simulation %.1f outside NC bounds [%.1f, %.1f]", got, lower, upper)
	}
}

// §5 corroboration: traversal delays near the 38 µs estimate, backlog
// below 3 KiB. In the overloaded regime the closed form is the paper's §3
// heuristic estimate rather than a hard bound, so the simulation is
// required to land within 10% of it (the paper's own simulator observed
// 25.7–36.7 µs).
func TestJobTraversalWithinEstimates(t *testing.T) {
	res, err := SimulateJobTraversal(SimSeed)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Analyze()
	limit := time.Duration(float64(a.DelayEstimate) * 1.10)
	if res.DelayMax > limit {
		t.Errorf("sim delay max %v exceeds estimate %v by more than 10%%", res.DelayMax, a.DelayEstimate)
	}
	if res.DelayMax < 20*time.Microsecond {
		t.Errorf("sim delay max %v implausibly small", res.DelayMax)
	}
	if res.MaxBacklog > a.BacklogEstimate {
		t.Errorf("sim backlog %v exceeds estimate %v", res.MaxBacklog, a.BacklogEstimate)
	}
}

// Table 3 ordering: lower <= sim <= QT <= upper.
func TestTable3Ordering(t *testing.T) {
	a, _ := Analyze()
	qt, _ := queueing.Analyze(QueueingNetwork())
	simRes, err := SimulateThroughput(32*units.MiB, SimSeed)
	if err != nil {
		t.Fatal(err)
	}
	lower := float64(a.ThroughputLower)
	upper := float64(a.ThroughputUpper)
	s := float64(simRes.Throughput)
	q := float64(qt.Roofline)
	if !(lower <= s*1.02 && s <= q && q <= upper) {
		t.Errorf("ordering violated: lower %.0f, sim %.0f, qt %.0f, upper %.0f MiB/s",
			lower/float64(units.MiBPerSec), s/float64(units.MiBPerSec),
			q/float64(units.MiBPerSec), upper/float64(units.MiBPerSec))
	}
}

// The bump-in-the-wire advantage (Figures 5-8): same throughput bounds,
// strictly lower latency estimate than the traditional deployment with its
// extra PCIe + host hops.
func TestBumpVsTraditional(t *testing.T) {
	bump, err := Analyze()
	if err != nil {
		t.Fatal(err)
	}
	trad, err := core.Analyze(TraditionalPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if trad.ThroughputLower != bump.ThroughputLower {
		t.Errorf("throughput lower differs: %v vs %v", trad.ThroughputLower, bump.ThroughputLower)
	}
	if trad.DelayEstimate <= bump.DelayEstimate {
		t.Errorf("traditional delay %v must exceed bump-in-the-wire %v",
			trad.DelayEstimate, bump.DelayEstimate)
	}
	if trad.TotalLatency <= bump.TotalLatency {
		t.Error("traditional latency must exceed bump-in-the-wire")
	}
}

func TestPipelinesValidate(t *testing.T) {
	if err := Pipeline().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TraditionalPipeline().Validate(); err != nil {
		t.Fatal(err)
	}
	if len(TraditionalPipeline().Nodes) != len(Pipeline().Nodes)+2 {
		t.Error("traditional pipeline must add two hops")
	}
}
