// Package bitwmodel encodes the paper's second case study: the
// bump-in-the-wire FPGA compression/encryption pipeline of Figure 9
// (compress -> encrypt -> network -> decrypt -> decompress -> PCIe), with
// the per-stage throughputs of Table 2 and the compression-ratio handling
// of §5: the lower-bound service curves assume a compression ratio of 1.0
// while the maximum service curves assume the largest observed ratio
// (5.3x), which multiplies the input-referred maximum rate of every stage
// between the compressor and the decompressor.
//
// Published model outputs reproduced here:
//
//	NC throughput upper bound   313 MiB/s   (Table 3) = 59 x 5.3
//	NC throughput lower bound    59 MiB/s   (Table 3)
//	virtual delay estimate       38 µs      (§5 point 1)
//	backlog estimate              3 KiB     (§5 point 2)
//
// The encryption stage is the bottleneck. The paper's baseline encrypt rate
// (59 MiB/s) sits between the Table 2 minimum (56) and average (68); we use
// the paper's 59 so the published bounds come out exactly and note the
// difference against Table 2. As in the BLAST study, the arrival rate
// (compressor-limited ingest at 2662 MiB/s) far exceeds the bottleneck, so
// the delay/backlog figures are the §3 transient per-job estimates.
package bitwmodel

import (
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/queueing"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

// Compression ratios observed for the LZ4 kernel (paper Table 2 caption).
const (
	RatioMin = 1.0
	RatioAvg = 2.2
	RatioMax = 5.3
)

// Calibrated model parameters.
const (
	// ArrivalRate is the ingest rate (the compressor's sustained average —
	// the fastest the source can push data into the bump).
	ArrivalRate = 2662 * units.MiBPerSec
	// Chunk is the normalized transfer granularity: the paper's simulation
	// gathers at most 1 KiB normalized chunks for the network.
	Chunk = 1 * units.KiB
	// ArrivalBurst + Chunk = b' = 2334.6 B, solved from the published 38 µs
	// delay and 3 KiB backlog figures.
	ArrivalBurst = units.Bytes(1310.6)

	// EncryptRate is the paper's baseline sustained AES rate (between the
	// Table 2 minimum of 56 and average of 68 MiB/s).
	EncryptRate = 59 * units.MiBPerSec
)

// SimSeed is the default deterministic seed for the validation simulations.
const SimSeed = 2024

// Pipeline returns the calibrated Figure 9 pipeline with Table 2 rates.
// Worst-case (ratio 1.0) volume gains parameterize the lower-bound curves;
// BestGain carries the 5.3x maximum ratio into the maximum service curves.
func Pipeline() core.Pipeline {
	return core.Pipeline{
		Name: "bump-in-the-wire",
		Arrival: core.Arrival{
			Rate:      ArrivalRate,
			Burst:     ArrivalBurst,
			MaxPacket: Chunk,
		},
		Nodes: []core.Node{
			{
				Name: "compress", Kind: core.Compute,
				Rate: 2662 * units.MiBPerSec, MaxRate: 6386 * units.MiBPerSec,
				Latency: 60 * time.Nanosecond,
				JobIn:   Chunk, JobOut: Chunk, // ratio 1.0 worst case
				BestGain:  1 / RatioMax,
				MaxPacket: Chunk,
			},
			{
				// The bottleneck. The maximum service curve keeps the same
				// baseline rate; the 5.3x best-case compression upstream is
				// what lifts its input-referred ceiling to 313 MiB/s.
				Name: "encrypt", Kind: core.Compute,
				Rate: EncryptRate, MaxRate: EncryptRate,
				Latency: 50 * time.Nanosecond,
				JobIn:   Chunk, JobOut: Chunk,
				MaxPacket: Chunk,
			},
			{
				Name: "network", Kind: core.Link,
				Rate:    10 * units.GiBPerSec,
				Latency: 80 * time.Nanosecond,
				JobIn:   Chunk, JobOut: Chunk,
				MaxPacket: Chunk,
			},
			{
				Name: "decrypt", Kind: core.Compute,
				Rate: 90 * units.MiBPerSec, MaxRate: 113 * units.MiBPerSec,
				Latency: 40 * time.Nanosecond,
				JobIn:   Chunk, JobOut: Chunk,
				MaxPacket: Chunk,
			},
			{
				Name: "decompress", Kind: core.Compute,
				Rate: 1495 * units.MiBPerSec, MaxRate: 1543 * units.MiBPerSec,
				Latency: 20 * time.Nanosecond,
				JobIn:   Chunk, JobOut: Chunk, // ratio 1.0 worst case
				BestGain:  RatioMax, // restores the volume in the best case
				MaxPacket: Chunk,
			},
			{
				Name: "pcie", Kind: core.Link,
				Rate:    11 * units.GiBPerSec,
				Latency: 14 * time.Nanosecond,
				JobIn:   Chunk, JobOut: Chunk,
				MaxPacket: Chunk,
			},
		},
	}
}

// Analyze runs the network-calculus model on the calibrated pipeline.
func Analyze() (*core.Analysis, error) { return core.Analyze(Pipeline()) }

// QueueingNetwork returns the M/M/1 comparison model: Table 2 average rates
// with the average compression ratio (2.2x), whose roofline lands at the
// paper's 151 MiB/s prediction (68 x 2.2 ~ 150).
func QueueingNetwork() queueing.Network {
	avgOut := units.Bytes(float64(Chunk) / RatioAvg)
	return queueing.Network{
		Name:        "bump-in-the-wire",
		ArrivalRate: ArrivalRate,
		Stages: []queueing.Stage{
			{Name: "compress", Rate: 2662 * units.MiBPerSec, JobIn: Chunk, JobOut: avgOut},
			{Name: "encrypt", Rate: 68 * units.MiBPerSec, JobIn: avgOut, JobOut: avgOut},
			{Name: "network", Rate: 10 * units.GiBPerSec, JobIn: avgOut, JobOut: avgOut},
			{Name: "decrypt", Rate: 90 * units.MiBPerSec, JobIn: avgOut, JobOut: avgOut},
			{Name: "decompress", Rate: 1495 * units.MiBPerSec, JobIn: avgOut, JobOut: Chunk},
			{Name: "pcie", Rate: 11 * units.GiBPerSec, JobIn: Chunk, JobOut: Chunk},
		},
	}
}

// simStages builds the discrete-event simulation stages. Like the paper's
// simulator, the network gathers 1 KiB normalized chunks and the worst-case
// compression ratio (1.0) applies, so volumes are unchanged end to end.
// The crypto and codec kernels stream at finer granularity (AES processes
// 16-byte blocks; the FPGA deployment overlaps kernels through stream
// channels, which the paper notes its own simulator does not model), so
// those stages use 256-byte jobs. The encrypt band [56, 68] has a
// uniform-execution mean rate of ~61.4 MiB/s — the paper's simulated
// 61 MiB/s.
func simStages(capped bool) []sim.StageConfig {
	mk := func(name string, minRate, maxRate units.Rate, job, cap units.Bytes) sim.StageConfig {
		cfg := sim.StageFromRate(name, minRate, maxRate, job, job)
		if capped && cap > 0 {
			cfg.QueueCap = cap
		}
		return cfg
	}
	fine := units.Bytes(256)
	return []sim.StageConfig{
		mk("compress", 1181*units.MiBPerSec, 6386*units.MiBPerSec, Chunk, 4*units.KiB),
		mk("encrypt", 56*units.MiBPerSec, 68*units.MiBPerSec, fine, 4*units.KiB),
		mk("network", 10*units.GiBPerSec, 10*units.GiBPerSec, fine, 4*units.KiB),
		mk("decrypt", 77*units.MiBPerSec, 113*units.MiBPerSec, fine, 4*units.KiB),
		mk("decompress", 1426*units.MiBPerSec, 1543*units.MiBPerSec, fine, 4*units.KiB),
		mk("pcie", 11*units.GiBPerSec, 11*units.GiBPerSec, fine, 4*units.KiB),
	}
}

// SimulateThroughput runs the long-run simulation with finite queues; the
// throughput is the paper's Table 3 simulation row (61 MiB/s).
func SimulateThroughput(totalInput units.Bytes, seed uint64) (*sim.Result, error) {
	p := sim.New(sim.SourceConfig{
		Rate:       ArrivalRate,
		PacketSize: Chunk,
		TotalInput: totalInput,
	}, seed)
	for _, st := range simStages(true) {
		p.Add(st)
	}
	return p.Run()
}

// SimulateJobTraversal pushes a single b'-sized burst through the pipeline
// and reports traversal delays (paper: 25.7–36.7 µs, within the 38 µs
// estimate) and the backlog watermark (paper: 2 KiB, within 3 KiB).
func SimulateJobTraversal(seed uint64) (*sim.Result, error) {
	total := ArrivalBurst + Chunk
	p := sim.New(sim.SourceConfig{
		Rate:       ArrivalRate,
		PacketSize: Chunk,
		Burst:      ArrivalBurst,
		TotalInput: total,
	}, seed)
	for _, st := range simStages(false) {
		p.Add(st)
	}
	return p.Run()
}

// TraditionalPipeline models the same functionality deployed the
// traditional way (paper Figures 5 and 7): the FPGA hangs off the host
// PCIe bus, so compressed+encrypted data must cross PCIe back to host
// memory and then out through the host NIC — two extra data movements that
// the bump-in-the-wire configuration eliminates.
func TraditionalPipeline() core.Pipeline {
	p := Pipeline()
	extra := []core.Node{
		{
			Name: "pcie-fpga-to-host", Kind: core.Link,
			Rate:    11 * units.GiBPerSec,
			Latency: 900 * time.Nanosecond,
			JobIn:   Chunk, JobOut: Chunk,
			MaxPacket: Chunk,
		},
		{
			Name: "host-staging", Kind: core.Compute,
			Rate:    8 * units.GiBPerSec,
			Latency: 500 * time.Nanosecond,
			JobIn:   Chunk, JobOut: Chunk,
			MaxPacket: Chunk,
		},
	}
	// Insert the extra hops between encrypt and network.
	nodes := make([]core.Node, 0, len(p.Nodes)+2)
	nodes = append(nodes, p.Nodes[:2]...)
	nodes = append(nodes, extra...)
	nodes = append(nodes, p.Nodes[2:]...)
	p.Nodes = nodes
	p.Name = "traditional-fpga"
	return p
}
