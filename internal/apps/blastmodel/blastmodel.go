// Package blastmodel encodes the paper's first case study: the BLASTN
// streaming pipeline of Figure 3 (FPGA fa2bit -> decompose -> network ->
// compose -> PCIe -> GPU Mercator pipeline), with stage parameters
// calibrated so that our implementation of the paper's equations reproduces
// the published model outputs:
//
//	NC throughput upper bound   704 MiB/s   (Table 1)
//	NC throughput lower bound   350 MiB/s   (Table 1)
//	virtual delay estimate      46.9 ms     (§4.2 point 1)
//	backlog estimate            20.6 MiB    (§4.2 point 2)
//
// The underlying per-stage rates come from reference [12], which the paper
// does not reprint; the calibration solves the paper's closed forms
// (d = T_tot + b'/R_beta, x = b' + R_alpha*T_tot) for the free parameters:
// with R_beta = 350 and R_alpha = 704 MiB/s, T_tot = 11.822 ms and
// b' = 12.277 MiB. The burst is attributed to the fa2bit FPGA's block
// output and the bulk of the latency to GPU job dispatch.
//
// Note that R_alpha (704) exceeds R_beta (350): the system operates in the
// paper's overloaded regime, so the steady-state NC bounds are infinite and
// the reported delay/backlog figures are the paper's §3 transient per-job
// estimates (Analysis.DelayEstimate / BacklogEstimate).
package blastmodel

import (
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/queueing"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

// Calibrated arrival parameters (input-referred FASTA bytes).
const (
	// ArrivalRate is the fa2bit FPGA source rate — the NC upper bound on
	// performance (the arrival curve caps throughput).
	ArrivalRate = 704 * units.MiBPerSec
	// ArrivalBurst + ArrivalPacket = b' = 12.277 MiB, solved from the
	// paper's published delay and backlog figures.
	ArrivalBurst  = units.Bytes(12.0273 * float64(units.MiB))
	ArrivalPacket = units.Bytes(0.25 * float64(units.MiB))

	// BottleneckRate is the GPU Mercator pipeline's sustained
	// input-referred rate — the NC lower bound.
	BottleneckRate = 350 * units.MiBPerSec
	// GPUMaxRate is the best-case (maximum service curve) GPU rate; above
	// the arrival rate, so the upper bound is arrival-limited at 704.
	GPUMaxRate = 880 * units.MiBPerSec

	// GPULatency is the GPU job-dispatch latency. Together with the two
	// job-aggregation delays (node E and the GPU each collect 3 MiB
	// input-referred blocks from the 704 MiB/s flow: 2 x 4.261 ms) and the
	// smaller communication latencies, T_tot = 11.823 ms.
	GPULatency = 2768 * time.Microsecond
)

// SimSeed is the default deterministic seed for the validation simulations.
const SimSeed = 2024

// Pipeline returns the calibrated Figure 3 pipeline. Stage rates are in
// local units; fa2bit's 4:1 lossless packing makes downstream rates worth
// 4x input-referred.
func Pipeline() core.Pipeline {
	return core.Pipeline{
		Name: "blast",
		Arrival: core.Arrival{
			Rate:      ArrivalRate,
			Burst:     ArrivalBurst,
			MaxPacket: ArrivalPacket,
		},
		Nodes: []core.Node{
			{
				// DIBS fa2bit on the FPGA: 4 bases -> 1 byte, matching the
				// arrival rate (the R_alpha = R_beta scenario at this node).
				// The FPGA DMA engine releases packed output in the same
				// large blocks decompose consumes (MaxPacket is in local
				// input units: 6 MiB of bases = 1536 KiB packed), so
				// decompose receives whole blocks and adds no aggregation
				// latency of its own — the burst term already carries the
				// FPGA block boundary.
				Name: "fa2bit", Kind: core.Compute,
				Rate: 704 * units.MiBPerSec, MaxRate: 1024 * units.MiBPerSec,
				Latency: 300 * time.Microsecond,
				JobIn:   4, JobOut: 1,
				MaxPacket: 6 * units.MiB,
			},
			{
				// Node D: decompose large FPGA blocks into network packets.
				Name: "decompose", Kind: core.Compute,
				Rate:    2 * units.GiBPerSec,
				Latency: 50 * time.Microsecond,
				JobIn:   1536 * units.KiB, JobOut: 1536 * units.KiB,
				MaxPacket: 64 * units.KiB,
			},
			{
				Name: "network", Kind: core.Link,
				Rate:    10 * units.GiBPerSec,
				Latency: 22 * time.Microsecond,
				JobIn:   64 * units.KiB, JobOut: 64 * units.KiB,
				MaxPacket: 64 * units.KiB,
			},
			{
				// Node E: compose larger blocks for GPU delivery (3 MiB
				// input-referred); collecting one from the 704 MiB/s flow
				// adds the 4.26 ms aggregation latency of the T_n^tot
				// recursion.
				Name: "compose", Kind: core.Compute,
				Rate:    2 * units.GiBPerSec,
				Latency: 150 * time.Microsecond,
				JobIn:   768 * units.KiB, JobOut: 768 * units.KiB,
				MaxPacket: 768 * units.KiB,
			},
			{
				Name: "pcie", Kind: core.Link,
				Rate:    11 * units.GiBPerSec,
				Latency: 10 * time.Microsecond,
				JobIn:   64 * units.KiB, JobOut: 64 * units.KiB,
				MaxPacket: 64 * units.KiB,
			},
			{
				// The whole GPU Mercator BLASTN pipeline folded into one
				// node, as the paper folds it; local rates are in packed
				// (2-bit) bytes, 1/4 of input-referred. It collects 3 MiB
				// (input-referred) jobs: the second aggregation delay.
				Name: "gpu-blast", Kind: core.Compute,
				Rate: BottleneckRate.Mul(0.25), MaxRate: GPUMaxRate.Mul(0.25),
				Latency: GPULatency,
				JobIn:   768 * units.KiB, JobOut: 16 * units.KiB,
			},
		},
	}
}

// Analyze runs the network-calculus model on the calibrated pipeline.
func Analyze() (*core.Analysis, error) { return core.Analyze(Pipeline()) }

// QueueingNetwork returns the M/M/1 comparison model. Its service rates are
// the optimistic isolated mean rates of reference [12] (the GPU pipeline at
// an isolated mean of 500 MiB/s input-referred), which is why the queueing
// prediction over-predicts relative to the simulation — exactly the gap the
// paper discusses.
func QueueingNetwork() queueing.Network {
	return queueing.Network{
		Name:        "blast",
		ArrivalRate: ArrivalRate,
		Stages: []queueing.Stage{
			{Name: "fa2bit", Rate: 704 * units.MiBPerSec, JobIn: 4, JobOut: 1},
			{Name: "decompose", Rate: 2 * units.GiBPerSec, JobIn: 2 * units.MiB, JobOut: 2 * units.MiB},
			{Name: "network", Rate: 10 * units.GiBPerSec, JobIn: 64 * units.KiB, JobOut: 64 * units.KiB},
			{Name: "compose", Rate: 2 * units.GiBPerSec, JobIn: 3 * units.MiB, JobOut: 3 * units.MiB},
			{Name: "pcie", Rate: 11 * units.GiBPerSec, JobIn: 3 * units.MiB, JobOut: 3 * units.MiB},
			// Isolated mean GPU rate (local packed units): 125 -> 500
			// input-referred.
			{Name: "gpu-blast", Rate: 125 * units.MiBPerSec, JobIn: 3 * units.MiB, JobOut: 16 * units.KiB},
		},
	}
}

// simStages builds the discrete-event simulation stages matching the
// pipeline. The GPU band [87.5, 89.0] MiB/s (local) has a uniform-execution
// mean of ~88.2, i.e. ~353 MiB/s input-referred — the paper's simulated
// throughput. capped adds finite queues (backpressure), used for the
// long-run throughput experiment.
func simStages(capped bool) []sim.StageConfig {
	mk := func(name string, minRate, maxRate units.Rate, jobIn, jobOut, cap units.Bytes) sim.StageConfig {
		cfg := sim.StageFromRate(name, minRate, maxRate, jobIn, jobOut)
		if capped && cap > 0 {
			cfg.QueueCap = cap
		}
		return cfg
	}
	gpu := mk("gpu-blast", 87.5*units.MiBPerSec, 89.0*units.MiBPerSec, 768*units.KiB, 4*units.KiB, 2*units.MiB)
	// The GPU dispatch latency is a one-time startup delay (the T of the
	// rate-latency service curve).
	gpu.Startup = GPULatency
	return []sim.StageConfig{
		mk("fa2bit", 704*units.MiBPerSec, 712*units.MiBPerSec, 256*units.KiB, 64*units.KiB, units.MiB),
		mk("decompose", 2*units.GiBPerSec, 2*units.GiBPerSec, 512*units.KiB, 512*units.KiB, 2*units.MiB),
		mk("network", 10*units.GiBPerSec, 10*units.GiBPerSec, 64*units.KiB, 64*units.KiB, units.MiB),
		mk("compose", 2*units.GiBPerSec, 2*units.GiBPerSec, 768*units.KiB, 768*units.KiB, 2*units.MiB),
		mk("pcie", 11*units.GiBPerSec, 11*units.GiBPerSec, 768*units.KiB, 768*units.KiB, 2*units.MiB),
		gpu,
	}
}

// SimulateThroughput runs the long-run discrete-event simulation with
// finite queues (backpressure throttles the 704 MiB/s source down to what
// the GPU sustains) and returns the measurements; the throughput is the
// paper's Table 1 simulation row (353 MiB/s).
func SimulateThroughput(totalInput units.Bytes, seed uint64) (*sim.Result, error) {
	p := sim.New(sim.SourceConfig{
		Rate:       ArrivalRate,
		PacketSize: 256 * units.KiB,
		TotalInput: totalInput,
	}, seed)
	for _, st := range simStages(true) {
		p.Add(st)
	}
	return p.Run()
}

// SimulateJobTraversal pushes a single b'-sized job (the arrival burst)
// through the unthrottled pipeline and reports its traversal delays — the
// experiment behind the paper's observed 40.7–46.4 ms simulator delays and
// the backlog watermark (which stays below the 20.6 MiB estimate).
func SimulateJobTraversal(seed uint64) (*sim.Result, error) {
	total := ArrivalBurst + ArrivalPacket
	p := sim.New(sim.SourceConfig{
		Rate:       ArrivalRate,
		PacketSize: ArrivalPacket,
		Burst:      ArrivalBurst,
		TotalInput: total,
	}, seed)
	for _, st := range simStages(false) {
		p.Add(st)
	}
	return p.Run()
}
