package blastmodel

import (
	"math"
	"testing"
	"time"

	"streamcalc/internal/queueing"
	"streamcalc/internal/units"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

// Table 1, analytic rows: upper 704 MiB/s, lower 350 MiB/s.
func TestTable1NetworkCalculusBounds(t *testing.T) {
	a, err := Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(a.ThroughputUpper) / float64(units.MiBPerSec); relErr(got, 704) > 0.005 {
		t.Errorf("upper bound = %.1f MiB/s, want 704", got)
	}
	if got := float64(a.ThroughputLower) / float64(units.MiBPerSec); relErr(got, 350) > 0.005 {
		t.Errorf("lower bound = %.1f MiB/s, want 350", got)
	}
	if a.Bottleneck().Node.Name != "gpu-blast" {
		t.Errorf("bottleneck = %s", a.Bottleneck().Node.Name)
	}
}

// §4.2 points 1 and 2: d = 46.9 ms, x = 20.6 MiB (transient estimates —
// the system is in the R_alpha > R_beta regime).
func TestSection42Estimates(t *testing.T) {
	a, err := Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Overloaded {
		t.Error("BLAST operates with R_alpha > R_beta; Analyze must flag it")
	}
	if got := a.DelayEstimate.Seconds() * 1000; relErr(got, 46.9) > 0.01 {
		t.Errorf("delay estimate = %.2f ms, want 46.9", got)
	}
	if got := float64(a.BacklogEstimate) / float64(units.MiB); relErr(got, 20.6) > 0.01 {
		t.Errorf("backlog estimate = %.2f MiB, want 20.6", got)
	}
}

// Table 1, queueing-theory row: 500 MiB/s.
func TestTable1QueueingPrediction(t *testing.T) {
	res, err := queueing.Analyze(QueueingNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Roofline) / float64(units.MiBPerSec); relErr(got, 500) > 0.005 {
		t.Errorf("queueing roofline = %.1f MiB/s, want 500", got)
	}
}

// Table 1, simulation row: 353 MiB/s (paper), just above the lower bound.
func TestTable1Simulation(t *testing.T) {
	res, err := SimulateThroughput(512*units.MiB, SimSeed)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Throughput) / float64(units.MiBPerSec)
	if got < 348 || got > 360 {
		t.Errorf("simulated throughput = %.1f MiB/s, want ~353", got)
	}
	// The key shape property: the simulation lands between the NC bounds,
	// just above the lower one.
	a, _ := Analyze()
	lower := float64(a.ThroughputLower) / float64(units.MiBPerSec)
	upper := float64(a.ThroughputUpper) / float64(units.MiBPerSec)
	if got < lower-5 || got > upper {
		t.Errorf("simulation %.1f outside NC bounds [%.1f, %.1f]", got, lower, upper)
	}
}

// §4.2 corroboration: simulated job-traversal delays land below (and near)
// the 46.9 ms estimate, and the backlog watermark stays below 20.6 MiB.
func TestJobTraversalWithinEstimates(t *testing.T) {
	res, err := SimulateJobTraversal(SimSeed)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Analyze()
	if res.DelayMax > a.DelayEstimate {
		t.Errorf("sim delay max %v exceeds estimate %v", res.DelayMax, a.DelayEstimate)
	}
	if res.DelayMax < 38*time.Millisecond {
		t.Errorf("sim delay max %v implausibly far below the estimate", res.DelayMax)
	}
	if res.MaxBacklog > a.BacklogEstimate {
		t.Errorf("sim backlog %v exceeds estimate %v", res.MaxBacklog, a.BacklogEstimate)
	}
	if res.MaxBacklog < 10*units.MiB {
		t.Errorf("sim backlog %v should be near the burst size", res.MaxBacklog)
	}
}

// The ordering of Table 1 must hold: lower <= sim <= QT <= upper.
func TestTable1Ordering(t *testing.T) {
	a, _ := Analyze()
	qt, _ := queueing.Analyze(QueueingNetwork())
	simRes, err := SimulateThroughput(256*units.MiB, SimSeed)
	if err != nil {
		t.Fatal(err)
	}
	lower := float64(a.ThroughputLower)
	upper := float64(a.ThroughputUpper)
	s := float64(simRes.Throughput)
	q := float64(qt.Roofline)
	if !(lower <= s*1.01 && s <= q && q <= upper) {
		t.Errorf("ordering violated: lower %.0f, sim %.0f, qt %.0f, upper %.0f",
			lower/1e6, s/1e6, q/1e6, upper/1e6)
	}
}

func TestPipelineValidates(t *testing.T) {
	if err := Pipeline().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	a, err := SimulateThroughput(64*units.MiB, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateThroughput(64*units.MiB, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.DelayMax != b.DelayMax {
		t.Error("same seed must reproduce")
	}
}
