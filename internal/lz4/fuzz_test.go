package lz4

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip: any input must compress and decompress back to itself.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("abcabcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 100))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, src []byte) {
		c := Compress(nil, src)
		if len(c) > MaxCompressedLen(len(src)) {
			t.Fatalf("compressed %d exceeds bound %d", len(c), MaxCompressedLen(len(src)))
		}
		d, err := Decompress(nil, c, len(src)+16)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(d, src) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(d))
		}
	})
}

// FuzzDecompress: arbitrary (possibly corrupt) blocks must never panic or
// overrun the size limit; errors are fine.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{0x10}, 64)
	f.Add([]byte{0xF0, 255, 255, 0}, 64)
	f.Add(Compress(nil, []byte("seed data for the corpus")), 64)
	f.Fuzz(func(t *testing.T, blob []byte, limit int) {
		if limit < 0 {
			limit = -limit
		}
		limit %= 1 << 16
		out, err := Decompress(nil, blob, limit)
		if err == nil && limit > 0 && len(out) > limit {
			t.Fatalf("output %d exceeded limit %d without error", len(out), limit)
		}
	})
}
