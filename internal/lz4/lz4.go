// Package lz4 implements the LZ4 block format from scratch (compression
// with a hash-table match finder in the style of the reference "fast"
// compressor, and decompression), standing in for the Xilinx Vitis LZ4
// streaming kernel of the paper's bump-in-the-wire case study. A chunked
// stream framing (Frame/Deframe) mirrors how the Vitis kernel streams data
// in fixed-size chunks through FIFO channels.
//
// Block format (https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md):
// a sequence of [token][literal-length*][literals][offset][match-length*]
// records, where the token packs 4-bit literal and match lengths, lengths
// >= 15 continue in 255-saturated extension bytes, offsets are 2-byte
// little-endian, and matches are at least 4 bytes. The final sequence is
// literals-only; the last 5 bytes of a block are always literals and no
// match may start within the final 12 bytes.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch   = 4
	mfLimit    = 12 // no match may start within this many bytes of the end
	lastLits   = 5  // the final 5 bytes must be literals
	maxOffset  = 65535
	hashLog    = 16
	hashShift  = 64 - hashLog
	hashPrime  = 0x9e3779b185ebca87
	tokenLits  = 0xF0
	tokenMatch = 0x0F
)

// MaxCompressedLen returns the worst-case compressed size for n input bytes
// (incompressible data expands slightly: token + length extensions).
func MaxCompressedLen(n int) int {
	if n < 0 {
		return 0
	}
	return n + n/255 + 16
}

func hash4(v uint32) uint32 {
	return uint32((uint64(v) * hashPrime) >> hashShift)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// Compress appends the LZ4 block encoding of src to dst and returns the
// result. The output decompresses to exactly src with Decompress.
func Compress(dst, src []byte) []byte {
	n := len(src)
	if n == 0 {
		return dst
	}
	if n < mfLimit+minMatch {
		// Too short for any match: emit one literal-only sequence.
		return emitFinalLiterals(dst, src)
	}
	var table [1 << hashLog]int32 // position+1 of the last occurrence
	anchor := 0
	i := 0
	limit := n - mfLimit // last position a match may start at (exclusive-ish)

	for i < limit {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > maxOffset || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		// Extend the match backwards over pending literals.
		for i > anchor && cand > 0 && src[i-1] == src[cand-1] {
			i--
			cand--
		}
		// Extend forwards; matches must leave the last lastLits bytes as
		// literals.
		matchEnd := i + minMatch
		maxEnd := n - lastLits
		for matchEnd < maxEnd && src[matchEnd] == src[cand+(matchEnd-i)] {
			matchEnd++
		}
		matchLen := matchEnd - i
		if matchLen < minMatch {
			i++
			continue
		}
		dst = emitSequence(dst, src[anchor:i], i-cand, matchLen)
		i = matchEnd
		anchor = i
		// Refresh the table with a couple of positions inside the match to
		// improve subsequent matching (as the reference compressor does).
		if i < limit {
			table[hash4(load32(src, i-2))] = int32(i - 1)
		}
	}
	return emitFinalLiterals(dst, src[anchor:])
}

// emitSequence writes one [token][litlen][literals][offset][matchlen] record.
func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	ml := matchLen - minMatch
	var token byte
	if litLen >= 15 {
		token = tokenLits
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 0x0F
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLenExt(dst, ml-15)
	}
	return dst
}

// emitFinalLiterals writes the mandatory literal-only final sequence.
func emitFinalLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	var token byte
	if litLen >= 15 {
		token = tokenLits
	} else {
		token = byte(litLen) << 4
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	return append(dst, literals...)
}

func appendLenExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// ErrCorrupt reports a malformed LZ4 block.
var ErrCorrupt = errors.New("lz4: corrupt block")

// Decompress appends the decoded contents of the LZ4 block src to dst and
// returns the result. maxSize bounds the decoded size (0 = no bound) as a
// safety limit against decompression bombs.
func Decompress(dst, src []byte, maxSize int) ([]byte, error) {
	base := len(dst)
	i := 0
	n := len(src)
	for i < n {
		token := src[i]
		i++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, i, err = readLenExt(src, i, litLen)
			if err != nil {
				return dst, err
			}
		}
		if i+litLen > n {
			return dst, ErrCorrupt
		}
		if maxSize > 0 && len(dst)-base+litLen > maxSize {
			return dst, fmt.Errorf("lz4: decoded size exceeds limit %d", maxSize)
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen
		if i == n {
			return dst, nil // final literal-only sequence
		}
		// Offset.
		if i+2 > n {
			return dst, ErrCorrupt
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(dst)-base {
			return dst, ErrCorrupt
		}
		// Match length.
		matchLen := int(token & 0x0F)
		if matchLen == 15 {
			var err error
			matchLen, i, err = readLenExt(src, i, matchLen)
			if err != nil {
				return dst, err
			}
		}
		matchLen += minMatch
		if maxSize > 0 && len(dst)-base+matchLen > maxSize {
			return dst, fmt.Errorf("lz4: decoded size exceeds limit %d", maxSize)
		}
		// Overlapping copy, byte by byte (offset may be < matchLen).
		pos := len(dst) - offset
		for k := 0; k < matchLen; k++ {
			dst = append(dst, dst[pos+k])
		}
	}
	return dst, nil
}

func readLenExt(src []byte, i, base int) (length, next int, err error) {
	length = base
	for {
		if i >= len(src) {
			return 0, i, ErrCorrupt
		}
		b := src[i]
		i++
		length += int(b)
		if b != 255 {
			return length, i, nil
		}
	}
}

// Ratio returns the compression ratio original/compressed for a buffer
// (>= 1 means the data shrank). It returns 1 for empty input.
func Ratio(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	c := Compress(nil, src)
	if len(c) == 0 {
		return 1
	}
	return float64(len(src)) / float64(len(c))
}
