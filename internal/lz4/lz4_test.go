package lz4

import (
	"bytes"
	"testing"
	"testing/quick"

	"streamcalc/internal/gen"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	c := Compress(nil, src)
	d, err := Decompress(nil, c, len(src)+16)
	if err != nil {
		t.Fatalf("decompress: %v (input %d bytes)", err, len(src))
	}
	if !bytes.Equal(d, src) {
		t.Fatalf("round trip mismatch: in %d bytes, out %d bytes", len(src), len(d))
	}
	return c
}

func TestRoundTripEmpty(t *testing.T) {
	if c := Compress(nil, nil); len(c) != 0 {
		t.Errorf("empty input compressed to %d bytes", len(c))
	}
	d, err := Decompress(nil, nil, 0)
	if err != nil || len(d) != 0 {
		t.Errorf("empty decompress: %v %d", err, len(d))
	}
}

func TestRoundTripShort(t *testing.T) {
	for n := 1; n <= 20; n++ {
		roundTrip(t, bytes.Repeat([]byte{'x'}, n))
		roundTrip(t, gen.Incompressible(n, uint64(n)))
	}
}

func TestRoundTripRepetitive(t *testing.T) {
	src := gen.Repetitive(100000, "")
	c := roundTrip(t, src)
	if ratio := float64(len(src)) / float64(len(c)); ratio < 10 {
		t.Errorf("repetitive data should compress > 10x, got %.1f", ratio)
	}
}

func TestRoundTripIncompressible(t *testing.T) {
	src := gen.Incompressible(100000, 1)
	c := roundTrip(t, src)
	if len(c) > len(src)+len(src)/200+16 {
		t.Errorf("expansion too large: %d -> %d", len(src), len(c))
	}
	if r := Ratio(src); r > 1.02 {
		t.Errorf("incompressible ratio = %.3f", r)
	}
}

func TestRoundTripTunableRedundancy(t *testing.T) {
	// The gen.Text redundancy knob must span the paper's observed
	// compression ratios (1.0 min, 2.2 avg, 5.3 max).
	low := Ratio(gen.Text(1<<20, 0.1, 2))
	mid := Ratio(gen.Text(1<<20, 0.4, 2))
	high := Ratio(gen.Text(1<<20, 0.9, 2))
	if !(low < mid && mid < high) {
		t.Errorf("ratios must increase with redundancy: %.2f %.2f %.2f", low, mid, high)
	}
	if high < 4 {
		t.Errorf("high-redundancy ratio %.2f, want > 4", high)
	}
	roundTrip(t, gen.Text(1<<20, 0.4, 3))
	roundTrip(t, gen.Text(1<<20, 0.9, 4))
}

func TestRoundTripOverlappingMatches(t *testing.T) {
	// RLE-style data exercises overlapping copies (offset < matchLen).
	src := append([]byte{'a'}, bytes.Repeat([]byte{'b'}, 1000)...)
	src = append(src, "tail-literals"...)
	roundTrip(t, src)
}

func TestRoundTripLongLiteralRuns(t *testing.T) {
	// > 255+15 literals forces multi-byte length extensions.
	src := gen.Incompressible(1000, 5)
	src = append(src, bytes.Repeat([]byte("pattern!"), 100)...)
	roundTrip(t, src)
}

func TestRoundTripDNA(t *testing.T) {
	roundTrip(t, gen.DNA(1<<16, 7))
	seq, _ := gen.DNAWithPlants(1<<16, gen.DNA(500, 8), 4096, 9)
	roundTrip(t, seq)
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{0x10},            // 1 literal promised, none present
		{0x01, 'a'},       // match with missing offset
		{0x01, 'a', 0, 0}, // zero offset
		{0x01, 'a', 9, 0}, // offset beyond output
		{0xF0, 255},       // unterminated length extension
	}
	for i, c := range cases {
		if _, err := Decompress(nil, c, 1<<20); err == nil {
			t.Errorf("case %d: expected corruption error", i)
		}
	}
}

func TestDecompressSizeLimit(t *testing.T) {
	src := gen.Repetitive(10000, "abcd")
	c := Compress(nil, src)
	if _, err := Decompress(nil, c, 100); err == nil {
		t.Error("expected size-limit error")
	}
}

func TestMaxCompressedLen(t *testing.T) {
	if MaxCompressedLen(-1) != 0 {
		t.Error("negative input")
	}
	for _, n := range []int{0, 1, 100, 100000} {
		src := gen.Incompressible(n, uint64(n))
		c := Compress(nil, src)
		if len(c) > MaxCompressedLen(n) {
			t.Errorf("n=%d: compressed %d exceeds bound %d", n, len(c), MaxCompressedLen(n))
		}
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	src := gen.Text(5000, 0.5, 11)
	c := Compress(append([]byte(nil), prefix...), src)
	if !bytes.HasPrefix(c, prefix) {
		t.Fatal("Compress must append to dst")
	}
	d, err := Decompress(nil, c[len(prefix):], len(src))
	if err != nil || !bytes.Equal(d, src) {
		t.Fatal("append-mode round trip failed")
	}
}

// Property: every byte slice round-trips.
func TestRoundTripQuick(t *testing.T) {
	f := func(src []byte) bool {
		c := Compress(nil, src)
		d, err := Decompress(nil, c, len(src)+16)
		return err == nil && bytes.Equal(d, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressText(b *testing.B) {
	src := gen.Text(1<<20, 0.6, 1)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(nil, src)
	}
}

func BenchmarkDecompressText(b *testing.B) {
	src := gen.Text(1<<20, 0.6, 1)
	c := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, c, len(src)); err != nil {
			b.Fatal(err)
		}
	}
}
