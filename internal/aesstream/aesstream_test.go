package aesstream

import (
	"bytes"
	"testing"
	"testing/quick"

	"streamcalc/internal/gen"
)

func key() []byte { return bytes.Repeat([]byte{0x42}, KeySize) }

func TestRoundTrip(t *testing.T) {
	enc, err := New(key(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := New(key(), 1)
	for _, n := range []int{0, 1, 15, 16, 17, 1000, 65536} {
		src := gen.Text(n, 0.5, uint64(n))
		ct := enc.Encrypt(src, 4096)
		pt, err := dec.Decrypt(ct)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(pt, src) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestKeyValidation(t *testing.T) {
	if _, err := New([]byte("short"), 0); err == nil {
		t.Error("short key must fail")
	}
}

func TestWrongKeyFailsOrGarbles(t *testing.T) {
	enc, _ := New(key(), 1)
	other := bytes.Repeat([]byte{0x24}, KeySize)
	dec, _ := New(other, 1)
	src := gen.Text(1000, 0.5, 3)
	ct := enc.Encrypt(src, 256)
	pt, err := dec.Decrypt(ct)
	if err == nil && bytes.Equal(pt, src) {
		t.Error("wrong key must not recover plaintext")
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	enc, _ := New(key(), 1)
	src := gen.Repetitive(4096, "secret ")
	ct := enc.Encrypt(src, 1024)
	if bytes.Contains(ct, src[:64]) {
		t.Error("ciphertext leaks plaintext")
	}
	// Identical chunks must encrypt differently (fresh IV per chunk).
	c1 := enc.EncryptChunk(nil, src[:1024])
	c2 := enc.EncryptChunk(nil, src[:1024])
	if bytes.Equal(c1[20:], c2[20:]) {
		t.Error("identical chunks produced identical ciphertext")
	}
}

func TestDecryptErrors(t *testing.T) {
	dec, _ := New(key(), 1)
	cases := [][]byte{
		{1, 2, 3},                     // short header
		append(make([]byte, 4+16), 0), // length 0
		{0, 0, 0, 17, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // not block-multiple
	}
	for i, c := range cases {
		if _, err := dec.Decrypt(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Truncated frame.
	enc, _ := New(key(), 1)
	ct := enc.Encrypt(gen.Text(100, 0.5, 1), 64)
	if _, err := dec.Decrypt(ct[:len(ct)-5]); err == nil {
		t.Error("truncated frame must fail")
	}
	// Corrupted padding.
	ct2 := enc.Encrypt(gen.Text(100, 0.5, 2), 256)
	ct2[len(ct2)-1] ^= 0xFF
	if _, err := dec.Decrypt(ct2); err == nil {
		t.Error("corrupted ciphertext should break padding with high probability")
	}
}

func TestChunkingIndependence(t *testing.T) {
	// The same data encrypted with different chunk sizes must still decrypt.
	src := gen.Text(10000, 0.4, 5)
	for _, chunk := range []int{1, 100, 1024, 100000} {
		enc, _ := New(key(), 9)
		dec, _ := New(key(), 9)
		pt, err := dec.Decrypt(enc.Encrypt(src, chunk))
		if err != nil || !bytes.Equal(pt, src) {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
	}
}

func TestOverhead(t *testing.T) {
	if Overhead() != 36 {
		t.Errorf("overhead = %d", Overhead())
	}
	enc, _ := New(key(), 1)
	src := make([]byte, 1024)
	ct := enc.EncryptChunk(nil, src)
	if len(ct) > 1024+Overhead() {
		t.Errorf("chunk overhead exceeded: %d", len(ct))
	}
}

func TestRoundTripQuick(t *testing.T) {
	enc, _ := New(key(), 7)
	dec, _ := New(key(), 7)
	f := func(src []byte) bool {
		pt, err := dec.Decrypt(enc.Encrypt(src, 512))
		return err == nil && bytes.Equal(pt, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	enc, _ := New(key(), 1)
	src := gen.Text(1<<20, 0.5, 1)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encrypt(src, 4096)
	}
}

func BenchmarkDecrypt(b *testing.B) {
	enc, _ := New(key(), 1)
	dec, _ := New(key(), 1)
	src := gen.Text(1<<20, 0.5, 1)
	ct := enc.Encrypt(src, 4096)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}
