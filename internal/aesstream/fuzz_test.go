package aesstream

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip: any plaintext and chunk size must survive the
// encrypt/decrypt round trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil), 16)
	f.Add([]byte("hello"), 1)
	f.Add(bytes.Repeat([]byte{7}, 100), 33)
	f.Fuzz(func(t *testing.T, src []byte, chunk int) {
		if chunk < 0 {
			chunk = -chunk
		}
		chunk = chunk%8192 + 1
		key := bytes.Repeat([]byte{0x42}, KeySize)
		enc, err := New(key, 1)
		if err != nil {
			t.Fatal(err)
		}
		dec, _ := New(key, 1)
		pt, err := dec.Decrypt(enc.Encrypt(src, chunk))
		if err != nil {
			t.Fatalf("decrypt own output: %v", err)
		}
		if !bytes.Equal(pt, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecrypt: arbitrary ciphertext streams must never panic.
func FuzzDecrypt(f *testing.F) {
	key := bytes.Repeat([]byte{0x42}, KeySize)
	enc, _ := New(key, 1)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 16})
	f.Add(enc.Encrypt([]byte("corpus seed"), 8))
	f.Fuzz(func(t *testing.T, blob []byte) {
		dec, _ := New(key, 1)
		_, _ = dec.Decrypt(blob) // must not panic
	})
}
