// Package aesstream provides chunked AES-256-CBC encryption and decryption
// over a data stream, standing in for the Vitis 256-bit CBC AES kernel of
// the paper's bump-in-the-wire case study. Data is processed in chunks;
// each chunk is padded (PKCS#7), encrypted under a fresh IV derived from a
// deterministic counter sequence, and framed as
//
//	[4-byte big-endian ciphertext length][16-byte IV][ciphertext]
//
// so the decryptor can operate chunk-by-chunk exactly as a streaming FPGA
// kernel would.
package aesstream

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
)

// KeySize is the AES-256 key length in bytes.
const KeySize = 32

// Stream encrypts or decrypts a sequence of chunks under one key.
type Stream struct {
	block cipher.Block
	ivSeq uint64
	seed  [8]byte
}

// New creates a Stream for a 32-byte key. The ivSeed diversifies the
// deterministic per-chunk IVs (a production system would use random IVs;
// determinism keeps simulations and tests reproducible).
func New(key []byte, ivSeed uint64) (*Stream, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aesstream: key must be %d bytes, got %d", KeySize, len(key))
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	s := &Stream{block: b}
	binary.BigEndian.PutUint64(s.seed[:], ivSeed)
	return s, nil
}

func (s *Stream) nextIV() [aes.BlockSize]byte {
	var iv [aes.BlockSize]byte
	copy(iv[:8], s.seed[:])
	binary.BigEndian.PutUint64(iv[8:], s.ivSeq)
	s.ivSeq++
	// Whiten the counter through one block encryption so IVs are
	// unpredictable given the key.
	s.block.Encrypt(iv[:], iv[:])
	return iv
}

// pad appends PKCS#7 padding up to the AES block size.
func pad(dst, src []byte) []byte {
	p := aes.BlockSize - len(src)%aes.BlockSize
	dst = append(dst, src...)
	for i := 0; i < p; i++ {
		dst = append(dst, byte(p))
	}
	return dst
}

// unpad strips and validates PKCS#7 padding.
func unpad(b []byte) ([]byte, error) {
	if len(b) == 0 || len(b)%aes.BlockSize != 0 {
		return nil, errors.New("aesstream: invalid padded length")
	}
	p := int(b[len(b)-1])
	if p == 0 || p > aes.BlockSize || p > len(b) {
		return nil, errors.New("aesstream: invalid padding")
	}
	for _, c := range b[len(b)-p:] {
		if int(c) != p {
			return nil, errors.New("aesstream: invalid padding")
		}
	}
	return b[:len(b)-p], nil
}

// EncryptChunk appends one framed encrypted chunk to dst.
func (s *Stream) EncryptChunk(dst, plaintext []byte) []byte {
	iv := s.nextIV()
	padded := pad(nil, plaintext)
	ct := make([]byte, len(padded))
	cipher.NewCBCEncrypter(s.block, iv[:]).CryptBlocks(ct, padded)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(ct)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, iv[:]...)
	return append(dst, ct...)
}

// DecryptChunk decodes one framed chunk from src, appending the plaintext
// to dst and returning the remaining unread bytes of src.
func (s *Stream) DecryptChunk(dst, src []byte) (out, rest []byte, err error) {
	if len(src) < 4+aes.BlockSize {
		return dst, src, errors.New("aesstream: short frame header")
	}
	n := int(binary.BigEndian.Uint32(src))
	if n <= 0 || n%aes.BlockSize != 0 {
		return dst, src, errors.New("aesstream: invalid frame length")
	}
	if len(src) < 4+aes.BlockSize+n {
		return dst, src, errors.New("aesstream: truncated frame")
	}
	iv := src[4 : 4+aes.BlockSize]
	ct := src[4+aes.BlockSize : 4+aes.BlockSize+n]
	pt := make([]byte, n)
	cipher.NewCBCDecrypter(s.block, iv).CryptBlocks(pt, ct)
	un, err := unpad(pt)
	if err != nil {
		return dst, src, err
	}
	return append(dst, un...), src[4+aes.BlockSize+n:], nil
}

// Encrypt processes a whole buffer in chunkSize pieces and returns the
// framed ciphertext stream.
func (s *Stream) Encrypt(src []byte, chunkSize int) []byte {
	if chunkSize <= 0 {
		chunkSize = 4096
	}
	out := make([]byte, 0, len(src)+len(src)/chunkSize*36+64)
	for i := 0; i < len(src); i += chunkSize {
		end := i + chunkSize
		if end > len(src) {
			end = len(src)
		}
		out = s.EncryptChunk(out, src[i:end])
	}
	if len(src) == 0 {
		out = s.EncryptChunk(out, nil)
	}
	return out
}

// Decrypt processes a whole framed stream and returns the plaintext.
func (s *Stream) Decrypt(src []byte) ([]byte, error) {
	var out []byte
	var err error
	for len(src) > 0 {
		out, src, err = s.DecryptChunk(out, src)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Overhead returns the framing overhead in bytes per chunk (length header,
// IV, and worst-case padding).
func Overhead() int { return 4 + aes.BlockSize + aes.BlockSize }
