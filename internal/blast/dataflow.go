package blast

import (
	"fmt"

	"streamcalc/internal/mercator"
)

// This file runs the BLASTN stages as a Mercator-style irregular dataflow
// (the way the paper's GPU implementation executes them): items flow
// through finite queues, the scheduler batches work to keep occupancy
// high, and each stage filters or expands its item stream.

// DataflowConfig tunes the Mercator-style execution.
type DataflowConfig struct {
	// BatchWidth is the SIMD ensemble width (default 256).
	BatchWidth int
	// QueueCap bounds the inter-stage queues in items (default 4096).
	QueueCap int
	// Policy selects the scheduler (default mercator.FullestFirst).
	Policy mercator.Policy
}

// RunDataflow executes the pipeline on the Mercator-style executor and
// returns the hits plus the scheduling report. The hit set is identical to
// Run's (scheduling changes order and batching, not results).
func RunDataflow(db, query []byte, threshold int, cfg DataflowConfig) ([]Hit, *mercator.Report, error) {
	if cfg.BatchWidth <= 0 {
		cfg.BatchWidth = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	qi, err := NewQueryIndex(query)
	if err != nil {
		return nil, nil, err
	}
	packed := Pack2Bit(db)
	dbLen := len(db)

	seedMatch := mercator.NodeFunc{NodeName: "seed-match", Fn: func(items []any) []any {
		var out []any
		for _, it := range items {
			p := it.(uint32)
			if len(qi.Positions(kmerAtAligned(packed, int(p)))) > 0 {
				out = append(out, p)
			}
		}
		return out
	}}
	seedEnum := mercator.NodeFunc{NodeName: "seed-enum", Fn: func(items []any) []any {
		var out []any
		for _, it := range items {
			p := it.(uint32)
			for _, q := range qi.Positions(kmerAtAligned(packed, int(p))) {
				out = append(out, Match{P: p, Q: q})
			}
		}
		return out
	}}
	smallExt := mercator.NodeFunc{NodeName: "small-ext", Fn: func(items []any) []any {
		batch := make([]Match, len(items))
		for i, it := range items {
			batch[i] = it.(Match)
		}
		passed := SmallExtension(qi, packed, dbLen, batch, nil)
		out := make([]any, len(passed))
		for i, m := range passed {
			out[i] = m
		}
		return out
	}}
	ungapped := mercator.NodeFunc{NodeName: "ungapped-ext", Fn: func(items []any) []any {
		batch := make([]Match, len(items))
		for i, it := range items {
			batch[i] = it.(Match)
		}
		hits := UngappedExtension(qi, packed, dbLen, batch, threshold, nil)
		out := make([]any, len(hits))
		for i, h := range hits {
			out[i] = h
		}
		return out
	}}

	inputs := make([]any, 0, dbLen/4)
	for p := 0; p+K <= dbLen; p += 4 {
		inputs = append(inputs, uint32(p))
	}
	pipe := mercator.New(mercator.Config{
		BatchWidth: cfg.BatchWidth,
		QueueCap:   cfg.QueueCap,
		Policy:     cfg.Policy,
	}).Add(seedMatch).Add(seedEnum).Add(smallExt).Add(ungapped)

	rep, err := pipe.Run(inputs)
	if err != nil {
		return nil, nil, err
	}
	hits := make([]Hit, 0, len(rep.Outputs))
	for _, o := range rep.Outputs {
		h, ok := o.(Hit)
		if !ok {
			return nil, nil, fmt.Errorf("blast: unexpected dataflow output %T", o)
		}
		hits = append(hits, h)
	}
	return hits, rep, nil
}
