package blast

// This file implements the individual pipeline stages. Each stage is a pure
// function over its input stream so it can be timed in isolation; Run chains
// them and Counts captures the inter-stage data volumes the models need.

// SeedMatch scans every byte-aligned 8-mer of the packed database and emits
// the positions whose 8-mer occurs in the query index — the stage is a
// highly selective filter for query lengths far below 2^16.
func SeedMatch(qi *QueryIndex, packedDB []byte, dbLen int, out []uint32) []uint32 {
	for p := 0; p+K <= dbLen; p += 4 {
		km := kmerAtAligned(packedDB, p)
		if len(qi.table[km]) > 0 {
			out = append(out, uint32(p))
		}
	}
	return out
}

// SeedEnumerate expands each matching database position into the concrete
// (p, q) matches by reading the index — on average 1-2 matches per position
// for non-repetitive queries.
func SeedEnumerate(qi *QueryIndex, packedDB []byte, positions []uint32, out []Match) []Match {
	for _, p := range positions {
		km := kmerAtAligned(packedDB, int(p))
		for _, q := range qi.table[km] {
			out = append(out, Match{P: p, Q: q})
		}
	}
	return out
}

// SmallExtension tries to extend each seed match by up to 3 bases on each
// side, requiring exact matches; matches reaching total length >= 11 pass
// to ungapped extension.
func SmallExtension(qi *QueryIndex, packedDB []byte, dbLen int, matches []Match, out []Match) []Match {
	for _, m := range matches {
		length := K
		// Left.
		p, q := int(m.P), int(m.Q)
		for k := 1; k <= 3; k++ {
			if p-k < 0 || q-k < 0 {
				break
			}
			if baseAt(packedDB, p-k) != baseAt(qi.packed, q-k) {
				break
			}
			length++
		}
		// Right.
		for k := 0; k < 3; k++ {
			dp, dq := p+K+k, q+K+k
			if dp >= dbLen || dq >= qi.n {
				break
			}
			if baseAt(packedDB, dp) != baseAt(qi.packed, dq) {
				break
			}
			length++
		}
		if length >= 11 {
			out = append(out, m)
		}
	}
	return out
}

// UngappedExtension extends each surviving match in both directions with
// match/mismatch scoring and an X-drop cutoff, limited to a Window-base
// window centered on the seed. Matches whose best score reaches threshold
// become hits.
func UngappedExtension(qi *QueryIndex, packedDB []byte, dbLen int, matches []Match, threshold int, out []Hit) []Hit {
	half := (Window - K) / 2
	for _, m := range matches {
		p, q := int(m.P), int(m.Q)
		score := K * MatchScore // the seed itself
		best := score
		leftExt, rightExt := 0, 0

		// Left extension.
		s := score
		bestLeft := 0
		for k := 1; k <= half; k++ {
			dp, dq := p-k, q-k
			if dp < 0 || dq < 0 {
				break
			}
			if baseAt(packedDB, dp) == baseAt(qi.packed, dq) {
				s += MatchScore
			} else {
				s += MismatchScore
			}
			if s > best {
				best = s
				bestLeft = k
			}
			if best-s > XDrop {
				break
			}
		}
		leftExt = bestLeft

		// Right extension continues from the best left score.
		s = best
		bestRight := 0
		for k := 0; k < half; k++ {
			dp, dq := p+K+k, q+K+k
			if dp >= dbLen || dq >= qi.n {
				break
			}
			if baseAt(packedDB, dp) == baseAt(qi.packed, dq) {
				s += MatchScore
			} else {
				s += MismatchScore
			}
			if s > best {
				best = s
				bestRight = k + 1
			}
			if best-s > XDrop {
				break
			}
		}
		rightExt = bestRight

		if best >= threshold {
			out = append(out, Hit{P: m.P, Q: m.Q, Score: best, Len: K + leftExt + rightExt})
		}
	}
	return out
}

// Counts records the data volume entering and leaving each stage of one
// Run, in bytes of the natural item representation (bases for sequences,
// 4 bytes per position, 8 per match, 16 per hit). The models derive job
// ratios from these.
type Counts struct {
	FastaBytes    int // raw input bases
	PackedBytes   int // after fa2bit
	SeedPositions int
	SeedMatches   int
	SmallPassed   int
	Hits          int
}

// ItemBytes are the byte sizes of the inter-stage item types.
const (
	PositionBytes = 4
	MatchBytes    = 8
	HitBytes      = 16
)

// Result of a full pipeline run.
type Result struct {
	Hits   []Hit
	Counts Counts
}

// Run executes the whole BLASTN pipeline: pack the database, seed-match
// against the query index, enumerate, small-extend, and ungapped-extend
// with the given score threshold.
func Run(db, query []byte, threshold int) (*Result, error) {
	qi, err := NewQueryIndex(query)
	if err != nil {
		return nil, err
	}
	packed := Pack2Bit(db)
	positions := SeedMatch(qi, packed, len(db), nil)
	matches := SeedEnumerate(qi, packed, positions, nil)
	passed := SmallExtension(qi, packed, len(db), matches, nil)
	hits := UngappedExtension(qi, packed, len(db), passed, threshold, nil)
	return &Result{
		Hits: hits,
		Counts: Counts{
			FastaBytes:    len(db),
			PackedBytes:   len(packed),
			SeedPositions: len(positions),
			SeedMatches:   len(matches),
			SmallPassed:   len(passed),
			Hits:          len(hits),
		},
	}, nil
}
