package blast

import (
	"bytes"
	"testing"

	"streamcalc/internal/gen"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 100, 1001} {
		seq := gen.DNA(n, uint64(n))
		packed := Pack2Bit(seq)
		if len(packed) != (n+3)/4 {
			t.Errorf("n=%d: packed len %d", n, len(packed))
		}
		back := Unpack2Bit(packed, n)
		if !bytes.Equal(back, seq) {
			t.Errorf("n=%d: round trip failed", n)
		}
	}
}

func TestPackHandlesAmbiguityAndCase(t *testing.T) {
	packed := Pack2Bit([]byte("acgtN"))
	if got := Unpack2Bit(packed, 5); string(got) != "ACGTA" {
		t.Errorf("got %s", got)
	}
}

func TestKmerConsistency(t *testing.T) {
	seq := gen.DNA(64, 3)
	packed := Pack2Bit(seq)
	for p := 0; p+K <= 64; p += 4 {
		if kmerAt(packed, p) != kmerAtAligned(packed, p) {
			t.Fatalf("aligned/general kmer mismatch at %d", p)
		}
	}
}

func TestQueryIndexPositions(t *testing.T) {
	query := []byte("ACGTACGTACGT") // 8-mers at 0..4, with repeats
	qi, err := NewQueryIndex(query)
	if err != nil {
		t.Fatal(err)
	}
	km := kmerAt(Pack2Bit(query), 0)
	pos := qi.Positions(km)
	// "ACGTACGT" occurs at positions 0 and 4.
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 4 {
		t.Errorf("positions = %v", pos)
	}
	if qi.QueryLen() != 12 {
		t.Errorf("query len = %d", qi.QueryLen())
	}
}

func TestQueryIndexErrors(t *testing.T) {
	if _, err := NewQueryIndex([]byte("ACGT")); err == nil {
		t.Error("short query must fail")
	}
}

func TestSeedMatchFindsPlantedQuery(t *testing.T) {
	query := gen.DNA(64, 5)
	// Plant at byte-aligned positions so the aligned scan sees the exact
	// 8-mers.
	db, plants := gen.DNAWithPlants(1<<16, query, 4096, 6)
	qi, _ := NewQueryIndex(query)
	packed := Pack2Bit(db)
	positions := SeedMatch(qi, packed, len(db), nil)
	found := map[int]bool{}
	for _, p := range positions {
		found[int(p)] = true
	}
	for _, plant := range plants {
		if plant%4 != 0 {
			continue
		}
		if !found[plant] {
			t.Errorf("planted query at %d not seed-matched", plant)
		}
	}
	if len(positions) == 0 {
		t.Fatal("no seed matches at all")
	}
}

func TestSeedMatchSelectivity(t *testing.T) {
	// Random database vs short query: expected hit rate per byte-aligned
	// 8-mer is ~(#query 8-mers)/65536 — strongly filtering.
	query := gen.DNA(128, 7)
	db := gen.DNA(1<<18, 8)
	qi, _ := NewQueryIndex(query)
	packed := Pack2Bit(db)
	positions := SeedMatch(qi, packed, len(db), nil)
	scanned := len(db) / 4
	rate := float64(len(positions)) / float64(scanned)
	if rate > 0.02 {
		t.Errorf("selectivity too weak: %.4f", rate)
	}
}

func TestEndToEndFindsPlants(t *testing.T) {
	query := gen.DNA(256, 9)
	db, plants := gen.DNAWithPlants(1<<17, query, 8192, 10)
	res, err := Run(db, query, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits for planted queries")
	}
	// Every byte-aligned plant must yield at least one high-scoring hit
	// near its position.
	for _, plant := range plants {
		if plant%4 != 0 {
			continue
		}
		ok := false
		for _, h := range res.Hits {
			if int(h.P) >= plant && int(h.P) < plant+256 && h.Score >= 30 {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("no hit covering plant at %d", plant)
		}
	}
}

func TestEndToEndMutatedQueryStillHits(t *testing.T) {
	target := gen.DNA(200, 11)
	db, _ := gen.DNAWithPlants(1<<16, target, 1<<15, 12)
	query := gen.MutatedCopy(target, 0.03, 13) // 3% mutations
	res, err := Run(db, query, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Error("homologous query should still hit")
	}
}

func TestRandomDBFewHits(t *testing.T) {
	query := gen.DNA(128, 14)
	db := gen.DNA(1<<17, 15)
	res, err := Run(db, query, 28)
	if err != nil {
		t.Fatal(err)
	}
	// With threshold 28 on random data, hits should be rare (expected
	// extension score stays near the seed score of 8).
	if res.Counts.Hits > res.Counts.SeedMatches/10+5 {
		t.Errorf("too many hits on random data: %+v", res.Counts)
	}
	// Filter cascade: each stage reduces or modestly expands volume.
	if res.Counts.SeedPositions == 0 {
		t.Skip("no seed positions on this seed (extremely unlikely)")
	}
	if res.Counts.SeedMatches < res.Counts.SeedPositions {
		t.Errorf("enumeration can only expand: %+v", res.Counts)
	}
	if res.Counts.SmallPassed > res.Counts.SeedMatches {
		t.Errorf("small extension can only filter: %+v", res.Counts)
	}
}

func TestSmallExtensionFilters(t *testing.T) {
	// A seed match with mismatches on both flanks must be rejected
	// (8 < 11), while a planted long identity passes.
	query := gen.DNA(64, 16)
	db, _ := gen.DNAWithPlants(1<<14, query, 1<<13, 17)
	qi, _ := NewQueryIndex(query)
	packed := Pack2Bit(db)
	positions := SeedMatch(qi, packed, len(db), nil)
	matches := SeedEnumerate(qi, packed, positions, nil)
	passed := SmallExtension(qi, packed, len(db), matches, nil)
	if len(passed) > len(matches) {
		t.Error("small extension must filter")
	}
	if len(passed) == 0 {
		t.Error("planted identities must pass small extension")
	}
}

func TestUngappedExtensionScoresPlant(t *testing.T) {
	query := gen.DNA(100, 18)
	db, plants := gen.DNAWithPlants(1<<14, query, 1<<13, 19)
	qi, _ := NewQueryIndex(query)
	packed := Pack2Bit(db)
	positions := SeedMatch(qi, packed, len(db), nil)
	matches := SeedEnumerate(qi, packed, positions, nil)
	passed := SmallExtension(qi, packed, len(db), matches, nil)
	hits := UngappedExtension(qi, packed, len(db), passed, 40, nil)
	if len(plants) > 0 && len(hits) == 0 {
		t.Fatal("planted 100-base identity must score >= 40")
	}
	for _, h := range hits {
		if h.Len < K || h.Len > Window {
			t.Errorf("hit length %d outside [K, Window]", h.Len)
		}
		if h.Score < 40 {
			t.Errorf("hit below threshold: %v", h)
		}
	}
}

func TestHitString(t *testing.T) {
	h := Hit{P: 1, Q: 2, Score: 3, Len: 4}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestMeasureStages(t *testing.T) {
	query := gen.DNA(256, 20)
	db, _ := gen.DNAWithPlants(1<<18, query, 1<<14, 21)
	ms, err := MeasureStages(db, query, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("stages = %d", len(ms))
	}
	names := []string{"fa2bit", "seed-match", "seed-enum", "small-ext", "ungapped-ext"}
	for i, m := range ms {
		if m.Name != names[i] {
			t.Errorf("stage %d name %q", i, m.Name)
		}
		if m.Rate <= 0 {
			t.Errorf("stage %s rate %v", m.Name, m.Rate)
		}
	}
	// fa2bit has a fixed 4:1 job ratio.
	if r := ms[0].JobRatio(); r < 3.9 || r > 4.2 {
		t.Errorf("fa2bit job ratio = %v, want ~4", r)
	}
	// seed-match is strongly filtering: job ratio >> 1.
	if r := ms[1].JobRatio(); r < 2 {
		t.Errorf("seed-match job ratio = %v, want filtering", r)
	}
	if _, err := MeasureStages(db, []byte("ACG"), 30, 1); err == nil {
		t.Error("short query must fail")
	}
}

func BenchmarkSeedMatch(b *testing.B) {
	query := gen.DNA(256, 22)
	db := gen.DNA(1<<20, 23)
	qi, _ := NewQueryIndex(query)
	packed := Pack2Bit(db)
	b.SetBytes(int64(len(packed)))
	b.ResetTimer()
	var positions []uint32
	for i := 0; i < b.N; i++ {
		positions = SeedMatch(qi, packed, len(db), positions[:0])
	}
}

func BenchmarkFullPipeline(b *testing.B) {
	query := gen.DNA(256, 24)
	db, _ := gen.DNAWithPlants(1<<20, query, 1<<16, 25)
	b.SetBytes(int64(len(db)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(db, query, 30); err != nil {
			b.Fatal(err)
		}
	}
}
