package blast

import (
	"testing"

	"streamcalc/internal/gen"
)

func TestChunkedMatchesDirectRun(t *testing.T) {
	query := gen.DNA(200, 71)
	db, _ := gen.DNAWithPlants(1<<16, query, 1<<13, 72)
	direct, err := Run(db, query, 28)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{64, 1000, 4096, 1 << 15, 1 << 20} {
		hits, stats, err := RunChunked(db, query, 28, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(direct.Hits) {
			t.Fatalf("chunk %d: %d hits vs %d direct", chunk, len(hits), len(direct.Hits))
		}
		for i := range hits {
			if hits[i] != direct.Hits[i] {
				t.Fatalf("chunk %d: hit %d differs", chunk, i)
			}
		}
		if stats.Positions != direct.Counts.SeedPositions {
			t.Errorf("chunk %d: positions %d vs %d", chunk, stats.Positions, direct.Counts.SeedPositions)
		}
		wantChunks := (1<<16 + chunkRounded(chunk) - 1) / chunkRounded(chunk)
		if stats.Chunks != wantChunks {
			t.Errorf("chunk %d: chunks %d, want %d", chunk, stats.Chunks, wantChunks)
		}
	}
}

// chunkRounded mirrors RunChunked's rounding.
func chunkRounded(c int) int {
	if c < 4*K {
		c = 4 * K
	}
	if rem := c % 4; rem != 0 {
		c += 4 - rem
	}
	return c
}

func TestChunkedOddSizesAndBoundaries(t *testing.T) {
	// A plant placed to straddle a chunk boundary must still be found.
	query := gen.DNA(120, 73)
	db := gen.DNA(10000, 74)
	copy(db[4000-60:], query) // straddles the 4000 boundary used below
	direct, err := Run(db, query, 25)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, err := RunChunked(db, query, 25, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(direct.Hits) {
		t.Fatalf("boundary-straddling plant lost: %d vs %d", len(hits), len(direct.Hits))
	}
}

func TestChunkedShortQuery(t *testing.T) {
	if _, _, err := RunChunked(gen.DNA(100, 75), []byte("AC"), 10, 64); err == nil {
		t.Error("short query must fail")
	}
}
