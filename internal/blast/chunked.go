package blast

// Chunked streaming execution: the database is scanned in fixed-size
// batches, the way the deployed system streams it from the FPGA through
// the network to GPU memory, rather than as one resident buffer. Seed
// scanning honors chunk boundaries with an overlap of K-1 bases so no
// byte-aligned 8-mer is missed; extension stages read the packed database
// (resident in device memory in the real system). The hit set is identical
// to Run's.

// ChunkStats records per-chunk progress of a streaming run.
type ChunkStats struct {
	Chunks        int
	Positions     int
	Matches       int
	SmallSurvived int
}

// RunChunked executes the pipeline scanning the database in chunkBases-base
// batches and returns the hits plus chunk statistics. chunkBases is rounded
// up to a multiple of 4 (byte alignment); values below 4*K are raised to
// that minimum.
func RunChunked(db, query []byte, threshold, chunkBases int) ([]Hit, *ChunkStats, error) {
	qi, err := NewQueryIndex(query)
	if err != nil {
		return nil, nil, err
	}
	if chunkBases < 4*K {
		chunkBases = 4 * K
	}
	if rem := chunkBases % 4; rem != 0 {
		chunkBases += 4 - rem
	}
	packed := Pack2Bit(db)
	dbLen := len(db)
	stats := &ChunkStats{}
	var hits []Hit
	var positions []uint32
	var matches, passed []Match

	for start := 0; start < dbLen; start += chunkBases {
		end := start + chunkBases
		if end > dbLen {
			end = dbLen
		}
		stats.Chunks++
		// Scan byte-aligned positions whose 8-mer starts inside
		// [start, end); the 8-mer itself may read up to K-1 bases past the
		// chunk (the overlap the streaming transport carries).
		positions = positions[:0]
		for p := start; p < end && p+K <= dbLen; p += 4 {
			if len(qi.table[kmerAtAligned(packed, p)]) > 0 {
				positions = append(positions, uint32(p))
			}
		}
		stats.Positions += len(positions)

		matches = SeedEnumerate(qi, packed, positions, matches[:0])
		stats.Matches += len(matches)

		passed = SmallExtension(qi, packed, dbLen, matches, passed[:0])
		stats.SmallSurvived += len(passed)

		hits = UngappedExtension(qi, packed, dbLen, passed, threshold, hits)
	}
	return hits, stats, nil
}
