package blast

import (
	"time"

	"streamcalc/internal/units"
)

// StageMeasurement is an isolated measurement of one pipeline stage — the
// inputs the paper's models are parameterized from.
type StageMeasurement struct {
	Name string
	// InBytes and OutBytes are the stage's input and output volumes in
	// their natural representations; their ratio is the job ratio of the
	// paper's Figure 3.
	InBytes, OutBytes units.Bytes
	// Elapsed is the isolated wall-clock processing time.
	Elapsed time.Duration
	// Rate is InBytes / Elapsed.
	Rate units.Rate
}

// JobRatio returns InBytes/OutBytes (the Figure 3 annotation).
func (m StageMeasurement) JobRatio() float64 {
	if m.OutBytes == 0 {
		return 0
	}
	return float64(m.InBytes) / float64(m.OutBytes)
}

// MeasureStages runs every stage of the pipeline in isolation on the given
// database and query, timing each with the outputs of the previous stage
// already materialized (so the measurement excludes upstream work), and
// returns the per-stage measurements in pipeline order. repeat > 1 runs
// each stage several times and reports the total volume over total time.
func MeasureStages(db, query []byte, threshold, repeat int) ([]StageMeasurement, error) {
	if repeat < 1 {
		repeat = 1
	}
	qi, err := NewQueryIndex(query)
	if err != nil {
		return nil, err
	}

	var out []StageMeasurement

	// fa2bit.
	var packed []byte
	m := timeStage("fa2bit", repeat, units.Bytes(len(db)), func() units.Bytes {
		packed = Pack2Bit(db)
		return units.Bytes(len(packed))
	})
	out = append(out, m)

	// seed match.
	var positions []uint32
	m = timeStage("seed-match", repeat, units.Bytes(len(packed)), func() units.Bytes {
		positions = SeedMatch(qi, packed, len(db), positions[:0])
		return units.Bytes(len(positions) * PositionBytes)
	})
	out = append(out, m)

	// seed enumeration.
	var matches []Match
	m = timeStage("seed-enum", repeat, units.Bytes(len(positions)*PositionBytes), func() units.Bytes {
		matches = SeedEnumerate(qi, packed, positions, matches[:0])
		return units.Bytes(len(matches) * MatchBytes)
	})
	out = append(out, m)

	// small extension.
	var passed []Match
	m = timeStage("small-ext", repeat, units.Bytes(len(matches)*MatchBytes), func() units.Bytes {
		passed = SmallExtension(qi, packed, len(db), matches, passed[:0])
		return units.Bytes(len(passed) * MatchBytes)
	})
	out = append(out, m)

	// ungapped extension.
	var hits []Hit
	m = timeStage("ungapped-ext", repeat, units.Bytes(len(passed)*MatchBytes), func() units.Bytes {
		hits = UngappedExtension(qi, packed, len(db), passed, threshold, hits[:0])
		return units.Bytes(len(hits) * HitBytes)
	})
	out = append(out, m)

	return out, nil
}

func timeStage(name string, repeat int, in units.Bytes, f func() units.Bytes) StageMeasurement {
	start := time.Now()
	var outBytes units.Bytes
	for r := 0; r < repeat; r++ {
		outBytes = f()
	}
	elapsed := time.Since(start)
	total := in.Mul(float64(repeat))
	m := StageMeasurement{
		Name:     name,
		InBytes:  in,
		OutBytes: outBytes,
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		m.Rate = total.Over(elapsed)
	}
	return m
}
