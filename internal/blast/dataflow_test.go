package blast

import (
	"sort"
	"testing"

	"streamcalc/internal/gen"
	"streamcalc/internal/mercator"
)

func sortHits(hs []Hit) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].P != hs[j].P {
			return hs[i].P < hs[j].P
		}
		return hs[i].Q < hs[j].Q
	})
}

// The Mercator-style dataflow must produce exactly the same hit set as the
// straight-line pipeline — scheduling changes batching, not results.
func TestDataflowMatchesDirectRun(t *testing.T) {
	query := gen.DNA(200, 51)
	db, _ := gen.DNAWithPlants(1<<16, query, 1<<14, 52)
	direct, err := Run(db, query, 28)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []mercator.Policy{mercator.FullestFirst, mercator.RoundRobin} {
		hits, rep, err := RunDataflow(db, query, 28, DataflowConfig{Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(direct.Hits) {
			t.Fatalf("%v: %d hits vs direct %d", policy, len(hits), len(direct.Hits))
		}
		a := append([]Hit(nil), hits...)
		b := append([]Hit(nil), direct.Hits...)
		sortHits(a)
		sortHits(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: hit %d differs: %v vs %v", policy, i, a[i], b[i])
			}
		}
		// The filter cascade shows in the per-stage item counts.
		if rep.Stages[0].ItemsOut >= rep.Stages[0].ItemsIn {
			t.Error("seed-match must filter")
		}
	}
}

func TestDataflowOccupancyAdvantage(t *testing.T) {
	query := gen.DNA(200, 53)
	db := gen.DNA(1<<17, 54)
	_, ff, err := RunDataflow(db, query, 28, DataflowConfig{Policy: mercator.FullestFirst})
	if err != nil {
		t.Fatal(err)
	}
	_, rr, err := RunDataflow(db, query, 28, DataflowConfig{Policy: mercator.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	// Downstream of the strong seed-match filter, fullest-first should use
	// no more firings than round-robin.
	for i := 1; i < len(ff.Stages); i++ {
		if ff.Stages[i].Firings > rr.Stages[i].Firings {
			t.Errorf("stage %s: fullest-first fired %d > round-robin %d",
				ff.Stages[i].Name, ff.Stages[i].Firings, rr.Stages[i].Firings)
		}
	}
}

func TestDataflowShortQueryError(t *testing.T) {
	if _, _, err := RunDataflow(gen.DNA(1000, 55), []byte("ACG"), 20, DataflowConfig{}); err == nil {
		t.Error("short query must fail")
	}
}
