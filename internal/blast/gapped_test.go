package blast

import (
	"testing"

	"streamcalc/internal/gen"
)

func TestGappedExtensionExactIdentity(t *testing.T) {
	// A planted exact copy should reach (close to) the full window score
	// and never score below its ungapped hit.
	query := gen.DNA(120, 41)
	db, plants := gen.DNAWithPlants(1<<15, query, 1<<14, 42)
	if len(plants) == 0 {
		t.Skip("no plants")
	}
	res, gapped, err := RunGapped(db, query, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(gapped) == 0 {
		t.Fatal("planted identity must survive gapped extension")
	}
	for _, g := range gapped {
		if g.GappedScore < g.Score {
			t.Errorf("gapped score %d below ungapped %d (gaps are optional)",
				g.GappedScore, g.Score)
		}
		if g.DBSpan < K || g.QuerySpan < K {
			t.Errorf("span smaller than seed: %+v", g)
		}
	}
	_ = res
}

func TestGappedExtensionBridgesAnInsertion(t *testing.T) {
	// Build a database region = query with one base inserted in the
	// middle. Ungapped extension stops at the frameshift; gapped extension
	// bridges it and scores substantially higher.
	query := gen.DNA(100, 43)
	region := make([]byte, 0, len(query)+1)
	region = append(region, query[:52]...)
	region = append(region, 'A') // insertion
	region = append(region, query[52:]...)

	db := gen.DNA(1<<14, 44)
	pos := 4096 // byte-aligned
	copy(db[pos:], region)

	qi, err := NewQueryIndex(query)
	if err != nil {
		t.Fatal(err)
	}
	packed := Pack2Bit(db)
	positions := SeedMatch(qi, packed, len(db), nil)
	matches := SeedEnumerate(qi, packed, positions, nil)
	passed := SmallExtension(qi, packed, len(db), matches, nil)
	hits := UngappedExtension(qi, packed, len(db), passed, 20, nil)
	if len(hits) == 0 {
		t.Fatal("no ungapped hits over the planted region")
	}
	gapped := GappedExtension(qi, packed, len(db), hits, 20, nil)
	if len(gapped) == 0 {
		t.Fatal("no gapped hits")
	}
	bestUngapped, bestGapped := 0, 0
	for _, h := range hits {
		if int(h.P) >= pos && int(h.P) < pos+len(region) && h.Score > bestUngapped {
			bestUngapped = h.Score
		}
	}
	for _, g := range gapped {
		if int(g.P) >= pos && int(g.P) < pos+len(region) && g.GappedScore > bestGapped {
			bestGapped = g.GappedScore
		}
	}
	// Bridging one insertion costs GapOpen but recovers the other half of
	// the identity: the gapped score must clearly beat the ungapped one.
	if bestGapped <= bestUngapped {
		t.Errorf("gapped %d should beat ungapped %d across an insertion",
			bestGapped, bestUngapped)
	}
	// Spans differ by ~the insertion on the DB side.
	for _, g := range gapped {
		if g.DBSpan < 0 || g.QuerySpan < 0 || g.DBSpan > Window || g.QuerySpan > Window {
			t.Errorf("implausible spans %+v", g)
		}
	}
}

func TestGappedExtensionFiltersByThreshold(t *testing.T) {
	query := gen.DNA(100, 45)
	db, _ := gen.DNAWithPlants(1<<14, query, 1<<13, 46)
	res, err := Run(db, query, 20)
	if err != nil {
		t.Fatal(err)
	}
	qi, _ := NewQueryIndex(query)
	packed := Pack2Bit(db)
	low := GappedExtension(qi, packed, len(db), res.Hits, 10, nil)
	high := GappedExtension(qi, packed, len(db), res.Hits, 55, nil)
	if len(high) > len(low) {
		t.Error("higher threshold cannot admit more hits")
	}
}

func TestGappedExtensionAtSequenceEdges(t *testing.T) {
	// Hits right at the start/end of the database must not read out of
	// bounds.
	query := gen.DNA(64, 47)
	db := make([]byte, 1<<12)
	copy(db, gen.DNA(1<<12, 48))
	copy(db[0:], query[:32])            // prefix identity at the very start
	copy(db[len(db)-32:], query[32:64]) // suffix identity at the very end
	res, gapped, err := RunGapped(db, query, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	_ = gapped // success = no panic; scores are incidental
}

func BenchmarkGappedExtension(b *testing.B) {
	query := gen.DNA(256, 49)
	db, _ := gen.DNAWithPlants(1<<18, query, 1<<14, 50)
	res, err := Run(db, query, 25)
	if err != nil {
		b.Fatal(err)
	}
	qi, _ := NewQueryIndex(query)
	packed := Pack2Bit(db)
	b.ResetTimer()
	var out []GappedHit
	for i := 0; i < b.N; i++ {
		out = GappedExtension(qi, packed, len(db), res.Hits, 30, out[:0])
	}
}
