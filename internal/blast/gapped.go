package blast

// Gapped extension: the stage the paper's implementation defers to the host
// processor ("for BLASTN, that stage takes negligible time compared to the
// rest of the pipeline"). We implement it as banded Needleman–Wunsch-style
// alignment with affine gap penalties, seeded at each ungapped hit and
// extended independently to the left and right, so the full NCBI-style
// pipeline can run end to end.

// Gap scoring (BLASTN-flavored): gap open and extend penalties on top of
// the match/mismatch scores shared with ungapped extension.
const (
	GapOpen   = -5
	GapExtend = -2
	// GappedXDrop terminates extension when the score falls this far below
	// the best seen (a coarser cutoff than ungapped, as NCBI uses).
	GappedXDrop = 15
	// Band is the half-width of the alignment band: the maximum difference
	// between the database and query offsets explored.
	Band = 8
)

// GappedHit is the result of gapped extension of an ungapped hit.
type GappedHit struct {
	Hit
	// GappedScore is the total score of the best gapped alignment through
	// the seed.
	GappedScore int
	// DBSpan and QuerySpan are the aligned lengths on each sequence.
	DBSpan, QuerySpan int
}

// GappedExtension extends each hit with banded affine-gap alignment in both
// directions and keeps those whose gapped score reaches threshold.
func GappedExtension(qi *QueryIndex, packedDB []byte, dbLen int, hits []Hit, threshold int, out []GappedHit) []GappedHit {
	for _, h := range hits {
		right, dbR, qR := bandedExtend(qi, packedDB, dbLen, int(h.P)+K, int(h.Q)+K, +1)
		left, dbL, qL := bandedExtend(qi, packedDB, dbLen, int(h.P)-1, int(h.Q)-1, -1)
		score := K*MatchScore + left + right
		if score >= threshold {
			out = append(out, GappedHit{
				Hit:         h,
				GappedScore: score,
				DBSpan:      K + dbL + dbR,
				QuerySpan:   K + qL + qR,
			})
		}
	}
	return out
}

// bandedExtend runs a banded affine-gap dynamic program from (p0, q0)
// moving in direction dir (+1 right, -1 left) and returns the best score
// gain plus the spans consumed on each sequence at the best cell.
func bandedExtend(qi *QueryIndex, packedDB []byte, dbLen, p0, q0, dir int) (best, dbSpan, qSpan int) {
	// Remaining lengths in this direction.
	var dbRem, qRem int
	if dir > 0 {
		dbRem = dbLen - p0
		qRem = qi.n - q0
	} else {
		dbRem = p0 + 1
		qRem = q0 + 1
	}
	if dbRem <= 0 || qRem <= 0 {
		return 0, 0, 0
	}
	// Cap the extension window like the ungapped stage does.
	limit := (Window - K) / 2
	if dbRem > limit {
		dbRem = limit
	}
	if qRem > limit {
		qRem = limit
	}

	const negInf = -1 << 20
	width := 2*Band + 1
	// Three banded DP rows (match/mismatch M, gap-in-db D, gap-in-query Q),
	// indexed by diagonal offset d = j - i + Band where i walks the DB and
	// j the query.
	m := make([]int, width)
	dRow := make([]int, width)
	qRow := make([]int, width)
	mPrev := make([]int, width)
	dPrev := make([]int, width)
	qPrev := make([]int, width)
	for k := 0; k < width; k++ {
		mPrev[k], dPrev[k], qPrev[k] = negInf, negInf, negInf
	}
	mPrev[Band] = 0 // empty extension

	best, dbSpan, qSpan = 0, 0, 0
	// Anti-diagonal sweep: step s consumes one more DB base per row; query
	// positions come from the band.
	for i := 1; i <= dbRem; i++ {
		rowBest := negInf
		for k := 0; k < width; k++ {
			j := i + k - Band // query length consumed at this cell
			if j < 0 || j > qRem {
				m[k], dRow[k], qRow[k] = negInf, negInf, negInf
				continue
			}
			// Gap in query (consume DB only): from same diagonal shifted.
			gq := negInf
			if k+1 < width {
				if v := mPrev[k+1] + GapOpen; v > gq {
					gq = v
				}
				if v := qPrev[k+1] + GapExtend; v > gq {
					gq = v
				}
			}
			qRow[k] = gq
			// Gap in DB (consume query only): from this row's previous cell.
			gd := negInf
			if k > 0 {
				if v := m[k-1] + GapOpen; v > gd {
					gd = v
				}
				if v := dRow[k-1] + GapExtend; v > gd {
					gd = v
				}
			}
			dRow[k] = gd
			// Match/mismatch: consume one of each.
			mm := negInf
			if j >= 1 {
				prev := mPrev[k]
				if dPrev[k] > prev {
					prev = dPrev[k]
				}
				if qPrev[k] > prev {
					prev = qPrev[k]
				}
				if prev > negInf/2 {
					pi := p0 + dir*(i-1)
					qj := q0 + dir*(j-1)
					s := MismatchScore
					if baseAt(packedDB, pi) == baseAt(qi.packed, qj) {
						s = MatchScore
					}
					mm = prev + s
				}
			}
			m[k] = mm
			for _, v := range [3]int{mm, gd, gq} {
				if v > best {
					best = v
					dbSpan, qSpan = i, j
				}
				if v > rowBest {
					rowBest = v
				}
			}
		}
		if rowBest < best-GappedXDrop {
			break // X-drop cutoff
		}
		copy(mPrev, m)
		copy(dPrev, dRow)
		copy(qPrev, qRow)
	}
	if best < 0 {
		return 0, 0, 0
	}
	return best, dbSpan, qSpan
}

// RunGapped executes the full pipeline including gapped extension:
// thresholds apply to the ungapped stage (threshold) and the gapped stage
// (gappedThreshold).
func RunGapped(db, query []byte, threshold, gappedThreshold int) (*Result, []GappedHit, error) {
	res, err := Run(db, query, threshold)
	if err != nil {
		return nil, nil, err
	}
	qi, err := NewQueryIndex(query)
	if err != nil {
		return nil, nil, err
	}
	packed := Pack2Bit(db)
	gapped := GappedExtension(qi, packed, len(db), res.Hits, gappedThreshold, nil)
	return res, gapped, nil
}
