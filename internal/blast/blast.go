// Package blast implements the BLASTN biosequence-alignment pipeline of the
// paper's first case study as real, runnable software: the fa2bit packing
// pre-processing step (implemented on an FPGA in the paper), seed matching
// against a query 8-mer hash table, seed enumeration, small extension, and
// ungapped (X-drop) extension in a bounded window. Each stage can run in
// isolation so its throughput and job ratio can be measured the way the
// paper parameterizes its models from isolated measurements.
//
// Stage chain (paper Figure 2):
//
//	FASTA -> fa2bit -> seed match -> seed enumeration -> small extension
//	      -> ungapped extension -> hits
package blast

import (
	"errors"
	"fmt"
)

// K is the seed length in bases (8-mers, as NCBI BLASTN uses by default for
// its lookup table in the paper's implementation).
const K = 8

// Window is the maximum ungapped-extension window in bases, centered on the
// seed match (the paper's implementation limits extension to a fixed
// 128-base window).
const Window = 128

// Scoring used by ungapped extension: BLASTN-style match reward and
// mismatch penalty with an X-drop cutoff.
const (
	MatchScore    = 1
	MismatchScore = -3
	XDrop         = 10
)

// code maps a nucleotide to its 2-bit encoding (A=0, C=1, G=2, T=3).
// Ambiguous bases (N etc.) map to A, matching common packed-database
// behaviour of treating unknowns as an arbitrary base.
func code(b byte) uint16 {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	default:
		return 0
	}
}

// Pack2Bit converts an ASCII base sequence to its 2-bit packed form (the
// DIBS fa2bit data-integration task): four bases per byte, first base in
// the low-order bits. The trailing partial byte (if any) is zero-padded.
func Pack2Bit(seq []byte) []byte {
	out := make([]byte, (len(seq)+3)/4)
	for i, b := range seq {
		out[i/4] |= byte(code(b)) << (2 * (i % 4))
	}
	return out
}

// Unpack2Bit reverses Pack2Bit for n bases.
func Unpack2Bit(packed []byte, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = "ACGT"[(packed[i/4]>>(2*(i%4)))&3]
	}
	return out
}

// baseAt returns the 2-bit code of base i in a packed sequence.
func baseAt(packed []byte, i int) uint16 {
	return uint16(packed[i/4]>>(2*(i%4))) & 3
}

// kmerAt returns the 16-bit 8-mer code starting at base position i of a
// packed sequence (positions need not be byte aligned).
func kmerAt(packed []byte, i int) uint16 {
	var v uint16
	for k := 0; k < K; k++ {
		v |= baseAt(packed, i+k) << (2 * k)
	}
	return v
}

// kmerAtAligned returns the 8-mer at byte-aligned base position i (i%4==0)
// using a direct 2-byte load — the fast path the seed-match stage scans
// with.
func kmerAtAligned(packed []byte, i int) uint16 {
	j := i / 4
	return uint16(packed[j]) | uint16(packed[j+1])<<8
}

// QueryIndex is the hash table over all 8-mers of the query sequence,
// stored in GPU DRAM in the paper's implementation.
type QueryIndex struct {
	// table maps each possible 8-mer to the query positions where it
	// occurs.
	table [1 << (2 * K)][]uint32
	// packed is the 2-bit query; n its length in bases.
	packed []byte
	n      int
}

// NewQueryIndex builds the index for a query sequence (ASCII bases).
// Queries shorter than K are rejected.
func NewQueryIndex(query []byte) (*QueryIndex, error) {
	if len(query) < K {
		return nil, errors.New("blast: query shorter than seed length")
	}
	if len(query) >= 1<<31 {
		return nil, errors.New("blast: query too long for 32-bit positions")
	}
	qi := &QueryIndex{packed: Pack2Bit(query), n: len(query)}
	for i := 0; i+K <= len(query); i++ {
		km := kmerAt(qi.packed, i)
		qi.table[km] = append(qi.table[km], uint32(i))
	}
	return qi, nil
}

// QueryLen returns the query length in bases.
func (qi *QueryIndex) QueryLen() int { return qi.n }

// Positions returns the query positions of an 8-mer code.
func (qi *QueryIndex) Positions(kmer uint16) []uint32 { return qi.table[kmer] }

// Match is a seed match: database position P and query position Q.
type Match struct {
	P, Q uint32
}

// Hit is an ungapped-extension result above threshold.
type Hit struct {
	// P and Q are the positions of the original seed match.
	P, Q uint32
	// Score is the best ungapped extension score.
	Score int
	// Len is the extended match length in bases.
	Len int
}

// String renders a hit compactly.
func (h Hit) String() string {
	return fmt.Sprintf("db:%d query:%d score:%d len:%d", h.P, h.Q, h.Score, h.Len)
}
