package core

import (
	"math"
	"testing"
	"time"

	"streamcalc/internal/units"
)

func TestOverloadAnalysisBasic(t *testing.T) {
	p := simple(10, 2, 4, time.Second)
	o, err := AnalyzeOverload(p)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Overloaded {
		t.Fatal("must be overloaded")
	}
	if o.GrowthRate != 6 {
		t.Errorf("growth = %v, want 6", o.GrowthRate)
	}
	if o.SustainableRate != 4 {
		t.Errorf("sustainable = %v, want 4", o.SustainableRate)
	}
}

func TestOverloadBacklogAt(t *testing.T) {
	p := simple(10, 2, 4, time.Second)
	o, _ := AnalyzeOverload(p)
	// At t=0: just the burst.
	if got := o.BacklogAt(0); math.Abs(float64(got)-2) > 1e-9 {
		t.Errorf("backlog(0) = %v", got)
	}
	// During latency (t=1s): burst + arrivals = 2 + 10 = 12.
	if got := o.BacklogAt(time.Second); math.Abs(float64(got)-12) > 1e-9 {
		t.Errorf("backlog(1s) = %v", got)
	}
	// After latency (t=3s): 2 + 30 - 4*2 = 24.
	if got := o.BacklogAt(3 * time.Second); math.Abs(float64(got)-24) > 1e-9 {
		t.Errorf("backlog(3s) = %v", got)
	}
}

func TestOverloadTimeToFill(t *testing.T) {
	p := simple(10, 2, 4, time.Second)
	o, _ := AnalyzeOverload(p)
	// Buffer below burst overflows immediately.
	if d, reached := o.TimeToFill(1); !reached || d != 0 {
		t.Errorf("tiny buffer: %v %v", d, reached)
	}
	// Buffer 7: filled during latency at 2 + 10t = 7 -> t = 0.5 s.
	d, reached := o.TimeToFill(7)
	if !reached || d != 500*time.Millisecond {
		t.Errorf("buffer 7: %v %v", d, reached)
	}
	// Buffer 24: phase 2; 12 at end of latency, then growth 6/s:
	// 1 + 12/6 = 3 s.
	d, reached = o.TimeToFill(24)
	if !reached || d != 3*time.Second {
		t.Errorf("buffer 24: %v %v", d, reached)
	}
}

func TestOverloadNotOverloaded(t *testing.T) {
	p := simple(2, 1, 4, time.Second)
	o, err := AnalyzeOverload(p)
	if err != nil {
		t.Fatal(err)
	}
	if o.Overloaded || o.GrowthRate != 0 {
		t.Error("not overloaded")
	}
	// A large buffer is never filled.
	if _, reached := o.TimeToFill(100 * units.MiB); reached {
		t.Error("buffer must never fill in underload")
	}
	// Transient backlog still bounded by burst + latency arrivals.
	if got := o.BacklogAt(time.Second); math.Abs(float64(got)-3) > 1e-9 {
		t.Errorf("backlog(1s) = %v, want 3", got)
	}
	// Long-run backlog settles (arrivals minus service clamps at arrivals).
	long := o.BacklogAt(time.Hour)
	if float64(long) < 0 {
		t.Errorf("backlog must stay non-negative, got %v", long)
	}
}

func TestOverloadValidatesPipeline(t *testing.T) {
	if _, err := AnalyzeOverload(Pipeline{}); err == nil {
		t.Error("expected validation error")
	}
}
