package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"streamcalc/internal/units"
)

// Dimensional-consistency properties of the model: physical rescalings of a
// pipeline must transform the bounds predictably.

func randomStablePipeline(rng *rand.Rand) Pipeline {
	n := 1 + rng.Intn(4)
	nodes := make([]Node, n)
	arr := units.Rate(50 + rng.Float64()*100)
	for i := range nodes {
		nodes[i] = Node{
			Name:    string(rune('a' + i)),
			Rate:    arr + units.Rate(20+rng.Float64()*200), // above arrival: stable
			Latency: time.Duration(rng.Intn(1000)) * time.Millisecond,
			JobIn:   units.Bytes(1 + rng.Intn(64)),
			JobOut:  units.Bytes(1 + rng.Intn(64)),
		}
	}
	return Pipeline{
		Name:    "prop",
		Arrival: Arrival{Rate: arr, Burst: units.Bytes(rng.Float64() * 500), MaxPacket: units.Bytes(rng.Intn(32))},
		Nodes:   nodes,
	}
}

// Scaling every rate by k (and keeping volumes fixed) divides delays by k
// and keeps data-volume bounds unchanged — for fluid pipelines (no
// latencies, no aggregation), exactly.
func TestRateScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		p := randomStablePipeline(rng)
		// Fluid variant: drop latencies (they are absolute times and do not
		// scale with rates).
		for i := range p.Nodes {
			p.Nodes[i].Latency = 0
		}
		a1, err := Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Float64()*9
		scaled := p
		scaled.Nodes = append([]Node(nil), p.Nodes...)
		scaled.Arrival.Rate = p.Arrival.Rate.Mul(k)
		for i := range scaled.Nodes {
			scaled.Nodes[i].Rate = scaled.Nodes[i].Rate.Mul(k)
			if scaled.Nodes[i].MaxRate > 0 {
				scaled.Nodes[i].MaxRate = scaled.Nodes[i].MaxRate.Mul(k)
			}
		}
		a2, err := Analyze(scaled)
		if err != nil {
			t.Fatal(err)
		}
		// Delay scales by 1/k.
		d1, d2 := a1.DelayEstimate.Seconds(), a2.DelayEstimate.Seconds()
		if d1 > 0 && math.Abs(d2-d1/k) > d1/k*0.01+1e-9 {
			t.Fatalf("trial %d: delay %v scaled to %v, want %v (k=%v)", trial, d1, d2, d1/k, k)
		}
		// Backlog estimate unchanged (volumes don't scale).
		b1, b2 := float64(a1.BacklogEstimate), float64(a2.BacklogEstimate)
		if math.Abs(b2-b1) > b1*0.01+1e-9 {
			t.Fatalf("trial %d: backlog %v changed to %v under rate scaling", trial, b1, b2)
		}
		// Throughput bounds scale by k.
		if math.Abs(float64(a2.ThroughputLower)-k*float64(a1.ThroughputLower)) > float64(a1.ThroughputLower)*0.01 {
			t.Fatalf("trial %d: lower bound did not scale", trial)
		}
	}
}

// Scaling every data volume by k (rates fixed) multiplies both delay and
// backlog estimates by k for burst-dominated fluid pipelines.
func TestVolumeScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 25; trial++ {
		p := randomStablePipeline(rng)
		for i := range p.Nodes {
			p.Nodes[i].Latency = 0
		}
		if p.Arrival.Burst == 0 {
			p.Arrival.Burst = 100
		}
		a1, err := Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		k := 2 + rng.Float64()*8
		scaled := p
		scaled.Nodes = append([]Node(nil), p.Nodes...)
		scaled.Arrival.Burst = p.Arrival.Burst.Mul(k)
		scaled.Arrival.MaxPacket = p.Arrival.MaxPacket.Mul(k)
		for i := range scaled.Nodes {
			scaled.Nodes[i].JobIn = scaled.Nodes[i].JobIn.Mul(k)
			scaled.Nodes[i].JobOut = scaled.Nodes[i].JobOut.Mul(k)
			scaled.Nodes[i].MaxPacket = scaled.Nodes[i].MaxPacket.Mul(k)
		}
		a2, err := Analyze(scaled)
		if err != nil {
			t.Fatal(err)
		}
		d1, d2 := a1.DelayEstimate.Seconds(), a2.DelayEstimate.Seconds()
		if d1 > 0 && math.Abs(d2-k*d1) > k*d1*0.01+1e-9 {
			t.Fatalf("trial %d: delay %v scaled to %v, want %v", trial, d1, d2, k*d1)
		}
		b1, b2 := float64(a1.BacklogEstimate), float64(a2.BacklogEstimate)
		if math.Abs(b2-k*b1) > k*b1*0.01+1e-9 {
			t.Fatalf("trial %d: backlog %v scaled to %v, want %v", trial, b1, b2, k*b1)
		}
	}
}

// Relabeling (splitting a node into two half-latency nodes with the same
// rate) must not improve the folded bounds.
func TestNodeSplittingMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 20; trial++ {
		p := randomStablePipeline(rng)
		a1, err := Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		split := p
		split.Nodes = nil
		for _, n := range p.Nodes {
			h1, h2 := n, n
			h1.Latency, h2.Latency = n.Latency/2, n.Latency-n.Latency/2
			h1.Name, h2.Name = n.Name+"-1", n.Name+"-2"
			// The data-volume gain applies once: the second half is a
			// volume-neutral stage operating in h1's output units.
			h2.JobIn, h2.JobOut = n.JobOut, n.JobOut
			// Its local rate is in post-gain units.
			h2.Rate = n.Rate.Mul(n.Gain())
			if h2.MaxRate > 0 {
				h2.MaxRate = n.MaxRate.Mul(n.Gain())
			}
			split.Nodes = append(split.Nodes, h1, h2)
		}
		a2, err := Analyze(split)
		if err != nil {
			t.Fatal(err)
		}
		// The split chain has the same total latency and bottleneck, but
		// may add aggregation terms: delay must not shrink.
		if a2.DelayEstimate < a1.DelayEstimate-time.Millisecond {
			t.Fatalf("trial %d: splitting nodes reduced delay %v -> %v",
				trial, a1.DelayEstimate, a2.DelayEstimate)
		}
		if math.Abs(float64(a2.ThroughputLower-a1.ThroughputLower)) > float64(a1.ThroughputLower)*1e-9 {
			t.Fatalf("trial %d: splitting changed the bottleneck: %v vs %v",
				trial, a1.ThroughputLower, a2.ThroughputLower)
		}
	}
}
