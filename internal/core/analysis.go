package core

import (
	"fmt"
	"math"
	"time"

	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// NodeAnalysis carries the per-node results of an Analyze run, all in
// input-referred units.
type NodeAnalysis struct {
	Node Node
	// GainBefore is the product of the data-volume gains of all upstream
	// nodes: one input byte corresponds to GainBefore bytes at this node's
	// input.
	GainBefore float64

	// Rate and MaxRate are the node's service rates referred to the
	// pipeline input. MaxRate uses the best-case gain chain (see
	// Node.BestGain).
	Rate    units.Rate
	MaxRate units.Rate

	// JobIn is the aggregation block size referred to the input.
	JobIn units.Bytes
	// Aggregates reports whether this node collects a block larger than the
	// upstream node emits (triggering the aggregation-latency term).
	Aggregates bool
	// AggregationDelay is b_n / R_alpha,n-1 when Aggregates, else 0.
	AggregationDelay time.Duration
	// CumulativeLatency is T_n^tot: the paper's recursion
	// T_n^tot = T_{n-1}^tot + b_n/R_alpha,n-1 + T_n.
	CumulativeLatency time.Duration

	// FIFOTheta is the chosen theta of the FIFO left-over family at this
	// node (meaningful only when the node carries cross traffic and the
	// analysis ran above the blind rung; 0 means the blind residual).
	FIFOTheta float64

	// ArrivalRate is the long-run rate of the flow arriving at this node
	// (input-referred): the arrival rate clipped by upstream bottlenecks.
	ArrivalRate units.Rate
	// AlphaIn is the arrival-curve bound on the flow entering this node,
	// propagated through upstream output bounds.
	AlphaIn curve.Curve
	// Beta and Gamma are the node's packetized service curves
	// (input-referred, time in seconds).
	Beta, Gamma curve.Curve

	// BacklogBound is the vertical deviation between AlphaIn and Beta plus
	// the node's aggregation buffer: the analytic contribution of this node
	// to system data occupancy (used for buffer allocation).
	BacklogBound units.Bytes
	// DelayBound is the horizontal deviation between AlphaIn and Beta: the
	// worst-case queueing+service delay at this node in isolation.
	DelayBound time.Duration
	// Overloaded reports ArrivalRate > Rate for this node (infinite
	// steady-state bounds; see OverloadAnalysis).
	Overloaded bool
}

// Analysis is the result of applying the network-calculus model to a
// pipeline. All curves are input-referred: x-axis seconds, y-axis bytes of
// pipeline input data.
type Analysis struct {
	Pipeline Pipeline
	Nodes    []NodeAnalysis

	// Rung is the resolved analysis rung the bounds were computed at.
	Rung Rung

	// Alpha is the offered arrival curve; AlphaPrime adds the packetizer
	// burst l_max.
	Alpha, AlphaPrime curve.Curve
	// Beta is the concatenated (min-plus convolved) packetized service
	// curve of the whole chain, with the job-aggregation latency folded in.
	Beta curve.Curve
	// Gamma is the concatenated maximum service curve.
	Gamma curve.Curve
	// OutputBound is alpha* = (alpha' ⊗ gamma) ⊘ beta, the bound on the
	// flow leaving the pipeline, normalized to zero at the origin.
	OutputBound curve.Curve

	// TotalLatency is T_N^tot for the full chain.
	TotalLatency time.Duration
	// DelayBound is the end-to-end virtual delay bound d (+Inf if
	// overloaded).
	DelayBound time.Duration
	// DelayBoundInfinite reports an unbounded delay (overload).
	DelayBoundInfinite bool
	// BacklogBound is the end-to-end data-occupancy bound x.
	BacklogBound units.Bytes
	// BacklogBoundInfinite reports an unbounded backlog (overload).
	BacklogBoundInfinite bool

	// DelayEstimate and BacklogEstimate are the closed-form values
	// d = T_tot + b'/R_beta and x = b' + R_alpha*T_tot. In the stable
	// regime they coincide with DelayBound/BacklogBound; in the overloaded
	// regime (R_alpha > R_beta), where the steady-state bounds are
	// infinite, they are the per-job transient estimates the paper's §3
	// hypothesizes remain useful for sizing queues as a job traverses the
	// system — and they are what the paper reports for both case studies.
	DelayEstimate   time.Duration
	BacklogEstimate units.Bytes

	// ThroughputLower is the guaranteed sustained throughput (the ultimate
	// slope of Beta): the network-calculus lower bound of the paper's
	// Tables 1 and 3.
	ThroughputLower units.Rate
	// ThroughputUpper is the best-case throughput: the arrival rate capped
	// by the ultimate slope of Gamma — the paper's upper bound.
	ThroughputUpper units.Rate

	// Overloaded reports that the arrival rate exceeds some node's
	// sustained service rate, making the steady-state bounds infinite.
	Overloaded bool
	// BottleneckIndex is the node with the smallest input-referred
	// sustained rate.
	BottleneckIndex int

	// TightCombos and TightPruned report the tight rung's θ-lattice search
	// effort for this analysis: vectors scored and vectors skipped by
	// branch-and-bound pruning (both zero below RungTight). Their sum is
	// the full lattice size after grid thinning.
	TightCombos, TightPruned int
}

// secs converts a time.Duration to float64 seconds (curve x-axis unit).
func secs(d time.Duration) float64 { return d.Seconds() }

// dur converts float64 seconds to time.Duration, saturating at the maximum.
func dur(s float64) time.Duration {
	if s >= float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(s * float64(time.Second))
}

// Analyze applies the network-calculus model to the pipeline and returns
// the bounds and curves. It is equivalent to AnalyzeMemo(p, nil).
func Analyze(p Pipeline) (*Analysis, error) { return timedAnalyze(p) }

// AnalyzeMemo is Analyze with a result cache: when m is non-nil and holds an
// analysis for a structurally identical pipeline, that result is returned
// directly (analyses are immutable once published — callers must not mutate
// a shared *Analysis). The admission controller threads one Memo through its
// standalone, candidate, and victim re-check analyses, where the same
// pipelines recur for every probe.
func AnalyzeMemo(p Pipeline, m *Memo) (*Analysis, error) {
	if m == nil {
		return timedAnalyze(p)
	}
	return m.analyze(p)
}

func analyze(p Pipeline) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Rung.Resolved() == RungTight {
		return analyzeTight(p)
	}
	return analyzeWith(p, nil)
}

// analyzeWith runs one analysis pass. A non-nil thetas slice (indexed by
// node) pins the FIFO left-over theta at every cross-traffic node — the
// tight rung's joint enumeration drives this; entries at nodes without
// cross traffic are ignored. With thetas nil the residual at a cross node
// follows the pipeline's rung: the blind residual, or the per-node greedy
// FIFO member for RungFIFO.
func analyzeWith(p Pipeline, thetas []float64) (*Analysis, error) {
	rung := p.Rung.Resolved()
	a := &Analysis{Pipeline: p, Rung: rung}

	// Arrival curves (input-referred by definition). Extra buckets tighten
	// the envelope to a concave piecewise-linear minimum.
	alpha := p.Arrival.Envelope()
	alphaPrime := alpha
	if p.Arrival.MaxPacket > 0 {
		alphaPrime = curve.AddBurst(alpha, float64(p.Arrival.MaxPacket))
	}
	a.Alpha, a.AlphaPrime = alpha, alphaPrime
	// The effective long-run arrival rate is the envelope's ultimate slope
	// (the smallest bucket rate).
	arrivalRate := units.Rate(alpha.UltimateSlope())

	// Per-node normalization and curve construction.
	gain := 1.0     // product of gains of upstream nodes (lower-bound curves)
	gainBest := 1.0 // product of best-case gains (maximum service curves)
	arrRate := arrivalRate
	cumLatency := time.Duration(0)
	alphaIn := alphaPrime
	minRate := units.Rate(math.Inf(1))
	minMaxRate := units.Rate(math.Inf(1))
	a.BottleneckIndex = 0

	// grain is the delivery granularity of the upstream element in the local
	// bytes of the current node's input: the source packet size for the first
	// node; for later nodes whatever the upstream stage releases at once —
	// its emitted job, or its output packetizer block when that is larger.
	// A node aggregates whenever its JobIn exceeds this grain. The previous
	// condition compared JobIn against the arrival-envelope burst instead,
	// but the burst is an upper bound on what the flow MAY deliver at once,
	// not a guarantee: a compliant flow trickling packets at its sustained
	// rate fills the job buffer in b_n / R_alpha,n-1, and a bound that
	// skipped the charge was measurably violated by simulation (the
	// experiments/crossval sub-packet slack filed in PR 3 was the backlog
	// shadow of this, with delay overshoots up to 30% on other seeds).
	// An unpacketized arrival (MaxPacket = 0) declares no delivery grain;
	// the model follows the paper and charges no head-node aggregation for
	// it (no simulatable source is grain-free — sim sources require a
	// packet size — so the soundness cross-validation is unaffected).
	grain := math.Inf(1)
	if p.Arrival.MaxPacket > 0 {
		grain = float64(p.Arrival.MaxPacket)
	}

	for i, n := range p.Nodes {
		na := NodeAnalysis{Node: n, GainBefore: gain}
		na.Rate = n.Rate.Mul(1 / gain)
		na.MaxRate = n.maxRateOrRate().Mul(1 / gainBest)
		na.JobIn = n.JobIn.Mul(1 / gain)
		na.ArrivalRate = arrRate
		// Cross traffic under blind multiplexing: the flow of interest only
		// receives the residual service, so the node's effective sustained
		// rate drops by the cross rate (validation guarantees it stays
		// positive).
		crossRate := n.CrossRate.Mul(1 / gain)
		crossBurst := n.CrossBurst.Mul(1 / gain)
		if crossRate > 0 {
			na.Rate -= crossRate
		}

		// Packetized service curves (input-referred). With cross traffic the
		// base curve is the residual [beta_full - alpha_cross]⁺, whose
		// latency (b_c + R·T)/(R - r_c) — not the raw T — is what the node
		// contributes to the end-to-end latency recursion: the folded chain
		// curve must stay below the concatenation of the residual curves.
		lmax := float64(n.MaxPacket.Mul(1 / gain))
		effLatency := n.Latency
		var beta curve.Curve
		if crossRate > 0 {
			full := curve.RateLatency(float64(n.Rate.Mul(1/gain)), secs(n.Latency))
			crossC := curve.Affine(float64(crossRate), float64(crossBurst))
			var resid curve.Curve
			var ok bool
			switch {
			case thetas != nil:
				// Tight rung: theta pinned by the joint enumeration.
				na.FIFOTheta = thetas[i]
				resid, ok = curve.FIFOResidual(full, crossC, thetas[i])
			case rung == RungFIFO:
				// Greedy rung: best member against this node's propagated
				// arrival. Candidates are dominance-safe (theta = 0, the
				// blind residual, included), so the node — and by pointwise
				// dominance the whole chain — never does worse than blind.
				resid, na.FIFOTheta, ok = curve.FIFOResidualBest(alphaIn, full, crossC)
			default:
				resid, ok = curve.ResidualService(full, crossC)
			}
			if !ok {
				return nil, fmt.Errorf("core: node %d (%s): cross traffic starves the node", i, n.Name)
			}
			beta = resid
			effLatency = dur(resid.Latency())
		} else {
			beta = curve.RateLatency(float64(na.Rate), secs(n.Latency))
		}

		// Aggregation: the node collects JobIn before dispatching; if that
		// exceeds the grain the upstream element delivers (the paper's
		// b_n > b_{n-1} with b_0 the source packet), collecting a job costs
		// b_n / R_alpha,n-1. The comparison is in this node's local bytes on
		// both sides.
		if float64(n.JobIn) > grain*(1+1e-12) {
			na.Aggregates = true
			na.AggregationDelay = na.JobIn.Time(arrRate)
		}
		na.CumulativeLatency = cumLatency + na.AggregationDelay + effLatency
		cumLatency = na.CumulativeLatency
		if lmax > 0 {
			beta = curve.SubConstantPositive(beta, lmax)
		}
		gamma := curve.RateLatency(float64(na.MaxRate), 0) // best case: no delay
		na.Beta, na.Gamma = beta, gamma

		// Per-node bounds against the propagated arrival bound. The
		// aggregation buffer itself holds up to one job.
		na.AlphaIn = alphaIn
		na.Overloaded = float64(arrRate) > float64(na.Rate)*(1+1e-12)
		if na.Overloaded {
			na.BacklogBound = units.Bytes(math.Inf(1))
			na.DelayBound = time.Duration(math.MaxInt64)
		} else {
			na.BacklogBound = units.Bytes(curve.VDev(alphaIn, beta))
			if na.Aggregates {
				na.BacklogBound += na.JobIn
			}
			na.DelayBound = dur(curve.HDev(alphaIn, beta))
		}

		// Propagate the flow to the next node: output bound
		// alpha* = (alphaIn ⊗ gamma) ⊘ beta, reinterpreted as an arrival
		// curve. Under overload the output is service-limited instead.
		if !na.Overloaded {
			conv := curve.Convolve(alphaIn, gamma)
			if out, ok := curve.Deconvolve(conv, beta); ok {
				alphaIn = out.ZeroAtOrigin()
			}
		} else {
			// The node drains at its own rate; downstream sees at most that.
			alphaIn = curve.Affine(float64(na.Rate), math.Max(float64(na.JobIn), float64(n.MaxPacket.Mul(1/gain))))
		}

		if na.Rate < minRate {
			minRate = na.Rate
			a.BottleneckIndex = i
		}
		if na.MaxRate < minMaxRate {
			minMaxRate = na.MaxRate
		}
		if float64(na.Rate) < float64(arrRate) {
			arrRate = na.Rate
		}
		gain *= n.Gain()
		gainBest *= n.bestGainOrGain()
		// The next node receives blocks of whatever this node releases at
		// once: its emitted job, or its packetizer block when larger
		// (MaxPacket is in local input units; ×Gain converts to the emitted
		// stream's units, matching the next node's JobIn).
		grain = math.Max(float64(n.JobOut), float64(n.MaxPacket)*n.Gain())
		a.Nodes = append(a.Nodes, na)
	}

	a.TotalLatency = cumLatency

	// End-to-end service curves: the paper folds the whole chain into a
	// single rate-latency node with the bottleneck rate and the cumulative
	// (aggregation-aware) latency. This equals the min-plus concatenation
	// of the per-node curves with the aggregation delays inserted as pure
	// delay elements.
	a.Beta = curve.RateLatency(float64(minRate), secs(cumLatency))
	a.Gamma = curve.RateLatency(float64(minMaxRate), 0)

	// Closed-form per-job estimates (valid in all three regimes; the
	// paper's §3 hypothesis for the overloaded case).
	a.DelayEstimate = dur(secs(cumLatency) + a.AlphaPrime.Burst()/float64(minRate))
	a.BacklogEstimate = units.Bytes(a.AlphaPrime.Burst() + float64(arrivalRate)*secs(cumLatency))

	// End-to-end bounds.
	a.Overloaded = float64(arrivalRate) > float64(minRate)*(1+1e-12)
	if a.Overloaded {
		a.DelayBoundInfinite = true
		a.BacklogBoundInfinite = true
		a.DelayBound = time.Duration(math.MaxInt64)
		a.BacklogBound = units.Bytes(math.Inf(1))
	} else {
		a.DelayBound = dur(curve.HDev(alphaPrime, a.Beta))
		a.BacklogBound = units.Bytes(curve.VDev(alphaPrime, a.Beta))
	}

	// Output flow bound alpha* = (alpha' ⊗ gamma) ⊘ beta.
	convAG := curve.Convolve(alphaPrime, a.Gamma)
	if out, ok := curve.Deconvolve(convAG, a.Beta); ok {
		a.OutputBound = out.ZeroAtOrigin()
	} else {
		a.OutputBound = convAG // overloaded: deconvolution diverges
	}

	// Throughput bounds (paper Tables 1 and 3). Both are capped by the
	// offered load: a stable pipeline cannot deliver more than arrives.
	a.ThroughputLower = minRate
	if arrivalRate < a.ThroughputLower {
		a.ThroughputLower = arrivalRate
	}
	a.ThroughputUpper = arrivalRate
	if minMaxRate < a.ThroughputUpper {
		a.ThroughputUpper = minMaxRate
	}
	return a, nil
}

// ConcatenatedBeta returns the min-plus concatenation of the per-node
// packetized service curves, with each node's aggregation delay inserted as
// a pure-delay element. Unlike the folded rate-latency Beta (the paper's
// closed form, which carries the packetizer adjustment on the arrival side
// only), this curve subtracts l_max at every hop, so delay and backlog
// bounds derived from it remain valid for multi-hop store-and-forward
// chains — the sound choice when the bounds back admission promises.
func (a *Analysis) ConcatenatedBeta() curve.Curve {
	var out curve.Curve
	for i, na := range a.Nodes {
		b := curve.ShiftRight(na.Beta, secs(na.AggregationDelay))
		if i == 0 {
			out = b
		} else {
			out = curve.Convolve(out, b)
		}
	}
	return out
}

// InputAt returns the arrival-curve bound on the flow entering node i (the
// propagated output bound of the upstream subchain), for use with Subrange.
func (a *Analysis) InputAt(i int) curve.Curve {
	return a.Nodes[i].AlphaIn
}

// Bottleneck returns the analysis entry of the bottleneck node.
func (a *Analysis) Bottleneck() NodeAnalysis { return a.Nodes[a.BottleneckIndex] }

// BufferPlan returns the recommended per-node buffer capacities: each
// node's analytic backlog contribution, rounded up to whole bytes. Nodes
// with infinite bounds (overload) report Capacity < 0 with Infinite set.
type BufferRecommendation struct {
	Name     string
	Capacity units.Bytes
	Infinite bool
}

// BufferPlan derives a per-node buffer allocation from the analysis — the
// paper's §4.2 use case ("assist a developer in allocating buffers").
func (a *Analysis) BufferPlan() []BufferRecommendation {
	out := make([]BufferRecommendation, len(a.Nodes))
	for i, na := range a.Nodes {
		rec := BufferRecommendation{Name: na.Node.Name}
		if math.IsInf(float64(na.BacklogBound), 1) {
			rec.Infinite = true
			rec.Capacity = -1
		} else {
			rec.Capacity = units.Bytes(math.Ceil(float64(na.BacklogBound)))
		}
		out[i] = rec
	}
	return out
}
