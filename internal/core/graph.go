package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// The paper notes (§4) that "streaming data applications are often modeled
// as a chain of nodes interconnected into a directed acyclic graph"; the
// two case studies are chains, so Pipeline covers them, but this file
// provides the DAG generalization: nodes connected by edges that may
// partition a flow across branches (fractions) or broadcast it, with
// fan-in summing the branch envelopes.
//
// Unlike Pipeline (which normalizes everything to the pipeline input),
// Graph analysis works in each node's local units and scales cumulative
// curves along edges by fraction x upstream gain. Per-node bounds use the
// node's local arrival envelope; the end-to-end delay bound is the
// critical-path sum of per-node delay bounds (conservative: it does not
// exploit pay-bursts-only-once).

// SourceName is the implicit origin of the offered flow in a Graph.
const SourceName = "__source__"

// Edge routes a share of From's output to To. From may be SourceName (or
// empty) for the offered arrival flow.
type Edge struct {
	From, To string
	// Fraction is the share of the From flow's volume carried by this
	// edge. Defaults to 1 (all of it). Partitioning edges from one node
	// should sum to <= 1; broadcast edges each carry 1.
	Fraction float64
}

// Graph is a DAG streaming application.
type Graph struct {
	Name    string
	Arrival Arrival
	Nodes   []Node
	Edges   []Edge
}

// GraphNodeAnalysis carries per-node results in the node's local units.
type GraphNodeAnalysis struct {
	Node Node
	// AlphaIn is the local arrival envelope (sum of incoming edge flows).
	AlphaIn curve.Curve
	// Utilization is arrival rate over service rate.
	Utilization float64
	// Overloaded reports utilization > 1.
	Overloaded bool
	// DelayBound and BacklogBound are this node's local bounds (infinite
	// under overload).
	DelayBound   time.Duration
	BacklogBound units.Bytes
}

// GraphAnalysis is the result of AnalyzeGraph.
type GraphAnalysis struct {
	Graph Graph
	// Order is a topological order of the node names.
	Order []string
	// Nodes maps node names to their analyses.
	Nodes map[string]*GraphNodeAnalysis
	// Stable reports that every node's arrival rate is within its service
	// rate.
	Stable bool
	// DelayBound is the critical-path sum of per-node delay bounds
	// (infinite when any node on a path is overloaded).
	DelayBound time.Duration
	// DelayBoundInfinite marks an unbounded critical path.
	DelayBoundInfinite bool
	// CriticalPath lists the node names realizing DelayBound.
	CriticalPath []string
	// TotalBacklog sums the per-node backlog bounds (infinite if any is).
	TotalBacklog units.Bytes
	// MaxSourceRate is the largest offered rate with every node stable —
	// the graph's throughput capacity in source units.
	MaxSourceRate units.Rate
}

// AnalyzeGraph applies the network-calculus model to a DAG application.
func AnalyzeGraph(g Graph) (*GraphAnalysis, error) {
	if err := g.Arrival.validate(); err != nil {
		return nil, err
	}
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("core: graph has no nodes")
	}
	byName := make(map[string]*Node, len(g.Nodes))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if err := n.validate(i); err != nil {
			return nil, err
		}
		if n.Name == "" || n.Name == SourceName {
			return nil, fmt.Errorf("core: graph node %d needs a unique non-reserved name", i)
		}
		if _, dup := byName[n.Name]; dup {
			return nil, fmt.Errorf("core: duplicate node name %q", n.Name)
		}
		byName[n.Name] = n
	}

	// Normalize and validate edges.
	type edge struct {
		from, to string
		fraction float64
	}
	edges := make([]edge, 0, len(g.Edges))
	indeg := map[string]int{}
	for i, e := range g.Edges {
		from := e.From
		if from == "" {
			from = SourceName
		}
		if from != SourceName {
			if _, ok := byName[from]; !ok {
				return nil, fmt.Errorf("core: edge %d: unknown From %q", i, e.From)
			}
		}
		if _, ok := byName[e.To]; !ok {
			return nil, fmt.Errorf("core: edge %d: unknown To %q", i, e.To)
		}
		f := e.Fraction
		if f == 0 {
			f = 1
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("core: edge %d: fraction %v outside (0, 1]", i, e.Fraction)
		}
		edges = append(edges, edge{from: from, to: e.To, fraction: f})
		if from != SourceName {
			// Source edges do not gate the topological order (the source
			// pseudo-node is always "done").
			indeg[e.To]++
		}
	}

	// Topological order (Kahn), deterministic by name.
	order := make([]string, 0, len(g.Nodes))
	ready := []string{}
	for name := range byName {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	remaining := make(map[string]int, len(indeg))
	for k, v := range indeg {
		remaining[k] = v
	}
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		order = append(order, name)
		next := []string{}
		for _, e := range edges {
			if e.from != name {
				continue
			}
			remaining[e.to]--
			if remaining[e.to] == 0 {
				next = append(next, e.to)
			}
		}
		sort.Strings(next)
		ready = append(ready, next...)
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("core: graph has a cycle or disconnected-by-edge nodes")
	}

	// Propagate arrival envelopes in topological order.
	res := &GraphAnalysis{
		Graph: g,
		Order: order,
		Nodes: map[string]*GraphNodeAnalysis{},
	}
	alpha := g.Arrival.PacketizedEnvelope()
	outCurve := map[string]curve.Curve{SourceName: alpha}

	res.Stable = true
	maxScale := math.Inf(1)
	sumBacklog := 0.0
	backlogInf := false
	nodeDelay := map[string]float64{}

	for _, name := range order {
		n := byName[name]
		// Local arrival: sum of incoming edges.
		var in curve.Curve
		have := false
		for _, e := range edges {
			if e.to != name {
				continue
			}
			src, ok := outCurve[e.from]
			if !ok {
				return nil, fmt.Errorf("core: internal: missing output curve for %q", e.from)
			}
			contrib := curve.Scale(src, e.fraction)
			if !have {
				in, have = contrib, true
			} else {
				in = curve.Add(in, contrib)
			}
		}
		if !have {
			return nil, fmt.Errorf("core: node %q has no incoming edges (connect it to %q for the source)", name, SourceName)
		}
		na := &GraphNodeAnalysis{Node: *n, AlphaIn: in}
		arrRate := in.UltimateSlope()
		na.Utilization = arrRate / float64(n.Rate)
		na.Overloaded = na.Utilization > 1+1e-12
		if na.Overloaded {
			res.Stable = false
		}
		if s := float64(n.Rate) / arrRate; arrRate > 0 && s < maxScale {
			maxScale = s
		}

		beta := curve.RateLatency(float64(n.Rate), secs(n.Latency))
		if n.MaxPacket > 0 {
			beta = curve.SubConstantPositive(beta, float64(n.MaxPacket))
		}
		if na.Overloaded {
			na.DelayBound = time.Duration(math.MaxInt64)
			na.BacklogBound = units.Bytes(math.Inf(1))
			backlogInf = true
			nodeDelay[name] = math.Inf(1)
			// Downstream sees a service-limited flow.
			outCurve[name] = curve.Scale(curve.Affine(float64(n.Rate), math.Max(float64(n.JobIn), float64(n.MaxPacket))), n.Gain())
		} else {
			d := curve.HDev(in, beta)
			na.DelayBound = dur(d)
			nodeDelay[name] = d
			na.BacklogBound = units.Bytes(curve.VDev(in, beta))
			sumBacklog += float64(na.BacklogBound)
			gamma := curve.RateLatency(float64(n.maxRateOrRate()), 0)
			conv := curve.Convolve(in, gamma)
			if outB, ok := curve.Deconvolve(conv, beta); ok {
				outCurve[name] = curve.Scale(outB.ZeroAtOrigin(), n.Gain())
			} else {
				outCurve[name] = curve.Scale(in, n.Gain())
			}
		}
		res.Nodes[name] = na
	}

	// Critical path over the DAG (longest per-node-delay sum from any
	// source-fed node to any sink node).
	bestTo := map[string]float64{}
	prev := map[string]string{}
	for _, name := range order {
		d := nodeDelay[name]
		best := 0.0
		from := ""
		for _, e := range edges {
			if e.to != name || e.from == SourceName {
				continue
			}
			if v, ok := bestTo[e.from]; ok && v > best {
				best, from = v, e.from
			}
		}
		bestTo[name] = best + d
		prev[name] = from
	}
	worst := 0.0
	worstName := ""
	for name, v := range bestTo {
		if v > worst || worstName == "" {
			worst, worstName = v, name
		}
	}
	for at := worstName; at != ""; at = prev[at] {
		res.CriticalPath = append([]string{at}, res.CriticalPath...)
	}
	if math.IsInf(worst, 1) {
		res.DelayBoundInfinite = true
		res.DelayBound = time.Duration(math.MaxInt64)
	} else {
		res.DelayBound = dur(worst)
	}
	if backlogInf {
		res.TotalBacklog = units.Bytes(math.Inf(1))
	} else {
		res.TotalBacklog = units.Bytes(sumBacklog)
	}
	// Rates propagate linearly with the source rate while the graph stays
	// stable, so the capacity is the offered rate scaled to the first
	// saturation point. (With an already-overloaded node the propagated
	// rates are service-clipped, making this indicative rather than exact.)
	if math.IsInf(maxScale, 1) {
		res.MaxSourceRate = units.Rate(math.Inf(1))
	} else {
		res.MaxSourceRate = g.Arrival.Rate.Mul(maxScale)
	}
	return res, nil
}
