package core

import (
	"math"
	"testing"
	"time"
)

func TestCrossTrafficResidualRate(t *testing.T) {
	// Server at 10 shared with cross traffic at 4: the flow of interest
	// gets the residual 6.
	p := Pipeline{
		Name:    "shared",
		Arrival: Arrival{Rate: 2, Burst: 1},
		Nodes: []Node{{
			Name: "shared", Rate: 10, Latency: time.Second,
			JobIn: 1, JobOut: 1,
			CrossRate: 4, CrossBurst: 2,
		}},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes[0].Rate != 6 {
		t.Errorf("residual rate = %v, want 6", a.Nodes[0].Rate)
	}
	// Lower throughput bound capped by arrival (2 < residual 6).
	if a.ThroughputLower != 2 {
		t.Errorf("lower = %v", a.ThroughputLower)
	}
	// The node beta must be the residual: latency (b_c + R*T)/(R - r_c) =
	// (2 + 10*1)/6 = 2 s.
	if got := a.Nodes[0].Beta.Latency(); math.Abs(got-2) > 1e-9 {
		t.Errorf("residual latency = %v, want 2", got)
	}
	// Delay bound grows versus the exclusive-server case.
	alone := p
	alone.Nodes = []Node{{Name: "alone", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1}}
	aAlone, _ := Analyze(alone)
	if a.Nodes[0].DelayBound <= aAlone.Nodes[0].DelayBound {
		t.Error("shared node must have a larger delay bound")
	}
}

func TestCrossTrafficStarvationRejected(t *testing.T) {
	p := Pipeline{
		Arrival: Arrival{Rate: 1},
		Nodes: []Node{{
			Name: "s", Rate: 5, JobIn: 1, JobOut: 1,
			CrossRate: 5, CrossBurst: 0,
		}},
	}
	if _, err := Analyze(p); err == nil {
		t.Error("cross rate == service rate must be rejected")
	}
	p.Nodes[0].CrossRate = -1
	if _, err := Analyze(p); err == nil {
		t.Error("negative cross rate must be rejected")
	}
}

func TestCrossTrafficOverloadsFlow(t *testing.T) {
	// Residual (10-7=3) below the arrival rate 5: overloaded regime.
	p := Pipeline{
		Arrival: Arrival{Rate: 5, Burst: 1},
		Nodes: []Node{{
			Name: "s", Rate: 10, JobIn: 1, JobOut: 1,
			CrossRate: 7, CrossBurst: 1,
		}},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Overloaded {
		t.Error("flow must be overloaded on the residual service")
	}
	if a.ThroughputLower != 3 {
		t.Errorf("lower = %v", a.ThroughputLower)
	}
}

func TestMultiBucketArrivalEnvelope(t *testing.T) {
	// Peak 10 B/s with small burst, sustained 3 B/s with large burst: the
	// envelope is their min; the long-run rate is 3.
	p := Pipeline{
		Arrival: Arrival{
			Rate: 10, Burst: 1,
			Extra: []Bucket{{Rate: 3, Burst: 8}},
		},
		Nodes: []Node{{Name: "s", Rate: 5, Latency: time.Second, JobIn: 1, JobOut: 1}},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overloaded {
		t.Error("sustained rate 3 < service 5: stable")
	}
	// Envelope at small t follows the peak bucket, at large t the
	// sustained one.
	if got := a.Alpha.Value(0.5); math.Abs(got-6) > 1e-9 { // 10*0.5+1
		t.Errorf("alpha(0.5) = %v, want 6", got)
	}
	if got := a.Alpha.Value(10); math.Abs(got-38) > 1e-9 { // 3*10+8
		t.Errorf("alpha(10) = %v, want 38", got)
	}
	if a.ThroughputUpper != 3 {
		t.Errorf("upper = %v, want long-run 3", a.ThroughputUpper)
	}
	// Delay bound: hdev of the two-bucket envelope vs RL(5, 1). The peak
	// bucket intersects the sustained one at t=1 (value 11); the worst
	// horizontal gap is at the knee: beta reaches 11 at t = 1+11/5 = 3.2,
	// so d = 2.2.
	if got := a.DelayBound.Seconds(); math.Abs(got-2.2) > 1e-6 {
		t.Errorf("delay bound = %v, want 2.2 s", got)
	}
}

func TestMultiBucketValidation(t *testing.T) {
	p := Pipeline{
		Arrival: Arrival{Rate: 1, Extra: []Bucket{{Rate: 0, Burst: 1}}},
		Nodes:   []Node{{Name: "s", Rate: 5, JobIn: 1, JobOut: 1}},
	}
	if _, err := Analyze(p); err == nil {
		t.Error("zero-rate extra bucket must be rejected")
	}
}

func TestMultiBucketReducesBacklogBound(t *testing.T) {
	// Adding a tighter bucket can only shrink (or keep) the bounds.
	base := Pipeline{
		Arrival: Arrival{Rate: 4, Burst: 10},
		Nodes:   []Node{{Name: "s", Rate: 5, Latency: time.Second, JobIn: 1, JobOut: 1}},
	}
	tight := base
	tight.Arrival.Extra = []Bucket{{Rate: 4, Burst: 2}}
	a1, _ := Analyze(base)
	a2, _ := Analyze(tight)
	if a2.BacklogBound > a1.BacklogBound {
		t.Errorf("tighter envelope increased backlog bound: %v > %v",
			a2.BacklogBound, a1.BacklogBound)
	}
	if a2.DelayBound > a1.DelayBound {
		t.Errorf("tighter envelope increased delay bound")
	}
}

func TestCrossTrafficNormalization(t *testing.T) {
	// Cross traffic downstream of a 2:1 filter is specified in local units
	// and must be referred to the input like everything else.
	p := Pipeline{
		Arrival: Arrival{Rate: 4, Burst: 1},
		Nodes: []Node{
			{Name: "filter", Rate: 20, JobIn: 2, JobOut: 1},
			{Name: "shared", Rate: 10, JobIn: 1, JobOut: 1, CrossRate: 4, CrossBurst: 1},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// Input-referred: rate 20, cross 8 -> residual 12.
	if a.Nodes[1].Rate != 12 {
		t.Errorf("referred residual = %v, want 12", a.Nodes[1].Rate)
	}
}
