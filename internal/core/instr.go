package core

import (
	"sync/atomic"
	"time"
)

// AnalysisTimer receives the wall-clock duration of one computed (memo-miss
// or uncached) pipeline analysis.
type AnalysisTimer func(seconds float64)

var analysisTimer atomic.Pointer[AnalysisTimer]

// SetAnalysisTimer attaches fn as the process-wide analysis timer; nil
// detaches. Memo hits are not timed — only real Analyze work is reported —
// so the resulting histogram measures the cost/accuracy trade-off the
// bounds computation actually pays (cf. Bouillard 2020). The previous timer
// is returned so callers can restore it.
func SetAnalysisTimer(fn AnalysisTimer) (prev AnalysisTimer) {
	var old *AnalysisTimer
	if fn == nil {
		old = analysisTimer.Swap(nil)
	} else {
		old = analysisTimer.Swap(&fn)
	}
	if old == nil {
		return nil
	}
	return *old
}

// timedAnalyze runs analyze, reporting its duration when a timer is
// attached. Detached cost: one atomic pointer load per computed analysis.
func timedAnalyze(p Pipeline) (*Analysis, error) {
	t := analysisTimer.Load()
	if t == nil {
		return analyze(p)
	}
	start := time.Now()
	a, err := analyze(p)
	(*t)(time.Since(start).Seconds())
	return a, err
}
