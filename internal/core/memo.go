package core

import (
	"math"
	"sync"
)

// Memo is a bounded cache of Analyze results keyed by a structural digest of
// the pipeline description (name, arrival buckets, and every node field).
// Identical pipelines — the common case in admission control, where each
// probe re-analyzes the same standalone flows and candidate paths — share
// one immutable *Analysis.
//
// A Memo is safe for concurrent use. Cached analyses are returned by
// pointer; callers must treat them as read-only.
type Memo struct {
	mu      sync.Mutex
	entries map[uint64]memoEntry
	hits    uint64
	misses  uint64
}

type memoEntry struct {
	a   *Analysis
	err error
}

// memoCap bounds the number of cached analyses; on overflow roughly half
// the entries are evicted (map order, effectively random).
const memoCap = 1024

// NewMemo returns an empty analysis cache.
func NewMemo() *Memo { return &Memo{} }

// Stats returns the cumulative hit/miss counters and current entry count.
func (m *Memo) Stats() (hits, misses uint64, entries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses, len(m.entries)
}

func (m *Memo) analyze(p Pipeline) (*Analysis, error) {
	key := p.digest()
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.hits++
		m.mu.Unlock()
		return e.a, e.err
	}
	m.misses++
	m.mu.Unlock()

	a, err := timedAnalyze(p)

	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[uint64]memoEntry, 64)
	}
	if len(m.entries) >= memoCap {
		drop := len(m.entries) / 2
		for k := range m.entries {
			if drop == 0 {
				break
			}
			delete(m.entries, k)
			drop--
		}
	}
	m.entries[key] = memoEntry{a: a, err: err}
	m.mu.Unlock()
	return a, err
}

// digest hashes every field of the pipeline description that Analyze reads.
// The Name is included because it is embedded verbatim in the Analysis (and
// in Subrange-derived names); two pipelines differing only by name must not
// share a cached result.
func (p Pipeline) digest() uint64 {
	h := newDigest()
	h.str(p.Name)
	h.f64(float64(p.Arrival.Rate))
	h.f64(float64(p.Arrival.Burst))
	h.f64(float64(p.Arrival.MaxPacket))
	h.u64(uint64(len(p.Arrival.Extra)))
	for _, b := range p.Arrival.Extra {
		h.f64(float64(b.Rate))
		h.f64(float64(b.Burst))
	}
	h.u64(uint64(len(p.Nodes)))
	for _, n := range p.Nodes {
		h.str(n.Name)
		h.u64(uint64(n.Kind))
		h.f64(float64(n.Rate))
		h.f64(float64(n.MaxRate))
		h.u64(uint64(n.Latency))
		h.f64(float64(n.JobIn))
		h.f64(float64(n.JobOut))
		h.f64(float64(n.MaxPacket))
		h.f64(n.BestGain)
		h.f64(float64(n.CrossRate))
		h.f64(float64(n.CrossBurst))
	}
	// The resolved rung, so RungDefault and an explicit RungBlind share a
	// cached analysis while the other rungs get their own entries.
	h.u64(uint64(p.Rung.Resolved()))
	return h.sum()
}

// digestState is a small splitmix-style incremental hasher (FNV-quality
// avalanche without allocations).
type digestState struct{ h uint64 }

func newDigest() *digestState { return &digestState{h: 0x9e3779b97f4a7c15} }

func (d *digestState) u64(v uint64) {
	h := d.h ^ v
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	d.h = h
}

func (d *digestState) f64(v float64) {
	if v == 0 {
		v = 0 // fold -0 into +0
	}
	d.u64(math.Float64bits(v))
}

func (d *digestState) str(s string) {
	d.u64(uint64(len(s)))
	// Fold 8 bytes at a time; the tail is zero-padded by the loop bound.
	var acc uint64
	n := 0
	for i := 0; i < len(s); i++ {
		acc = acc<<8 | uint64(s[i])
		n++
		if n == 8 {
			d.u64(acc)
			acc, n = 0, 0
		}
	}
	if n > 0 {
		d.u64(acc)
	}
}

func (d *digestState) sum() uint64 {
	h := d.h
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return h
}
