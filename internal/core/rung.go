package core

import (
	"fmt"
	"math"
	"sort"

	"streamcalc/internal/curve"
	"streamcalc/internal/pool"
)

// Rung selects the multi-flow analysis tightness for nodes that carry cross
// traffic — the accuracy/tractability knob of the FIFO ladder. Every rung
// produces sound bounds; climbing the ladder only tightens them:
//
//	blind  — arbitrary-order multiplexing residual [beta - alpha_cross]⁺.
//	         No FIFO assumption, cheapest, loosest.
//	fifo   — per-node greedy member of the theta-parameterized FIFO
//	         left-over family, theta chosen to minimize that node's delay
//	         bound against its propagated arrival. Each chosen member
//	         dominates the blind residual pointwise, so the end-to-end
//	         bound never regresses.
//	tight  — joint enumeration of the per-node theta grids (the exact
//	         small-topology formulation): every dominance-safe theta vector
//	         is analyzed and the end-to-end delay bound minimized, fanned
//	         over the worker pool. Cost grows with the product of per-node
//	         grid sizes; intended for bounded node counts.
type Rung uint8

const (
	// RungDefault is the zero value and resolves to RungBlind, keeping
	// zero-valued Pipeline literals on the pre-ladder behavior.
	RungDefault Rung = iota
	RungBlind
	RungFIFO
	RungTight
)

// Resolved maps RungDefault to RungBlind and leaves other values alone.
func (r Rung) Resolved() Rung {
	if r == RungDefault {
		return RungBlind
	}
	return r
}

// String returns the wire name of the resolved rung.
func (r Rung) String() string {
	switch r.Resolved() {
	case RungBlind:
		return "blind"
	case RungFIFO:
		return "fifo"
	case RungTight:
		return "tight"
	default:
		return fmt.Sprintf("Rung(%d)", uint8(r))
	}
}

// ParseRung parses a wire name; "" and "default" resolve to RungDefault so
// callers can distinguish "explicitly blind" from "unset".
func ParseRung(s string) (Rung, error) {
	switch s {
	case "", "default":
		return RungDefault, nil
	case "blind":
		return RungBlind, nil
	case "fifo":
		return RungFIFO, nil
	case "tight":
		return RungTight, nil
	}
	return RungDefault, fmt.Errorf("core: unknown analysis rung %q (want blind, fifo or tight)", s)
}

// Rungs lists the ladder in ascending tightness, for sweeps and flags.
func Rungs() []Rung { return []Rung{RungBlind, RungFIFO, RungTight} }

// tightMaxCombos caps the joint theta-vector enumeration; per-node grids
// are thinned (endpoints kept) until the product fits. 2^11 keeps the top
// rung interactive for the small topologies it targets while still
// exhausting 3-4 cross nodes at full grid resolution.
const tightMaxCombos = 2048

// analyzeTight runs the top rung: enumerate the cartesian product of the
// per-cross-node dominance-safe theta grids, analyze every vector in
// parallel, and keep the one minimizing the end-to-end delay bound of the
// concatenated chain curve. Ties keep the lexicographically smallest
// vector (theta = 0 entries first), making the result deterministic and
// never worse than the blind rung.
func analyzeTight(p Pipeline) (*Analysis, error) {
	alphaPrime := p.Arrival.PacketizedEnvelope()
	grids := make([][]float64, len(p.Nodes))
	gain := 1.0
	combos := 1
	hasCross := false
	for i, n := range p.Nodes {
		if n.CrossRate > 0 {
			full := curve.RateLatency(float64(n.Rate.Mul(1/gain)), secs(n.Latency))
			cross := curve.Affine(float64(n.CrossRate.Mul(1/gain)), float64(n.CrossBurst.Mul(1/gain)))
			g := curve.FIFOThetaCandidates(full, cross)
			if g == nil {
				return nil, fmt.Errorf("core: node %d (%s): cross traffic starves the node", i, n.Name)
			}
			// Arrival-aware candidate (see FIFOResidualBest): where the
			// post-theta service jump just covers the cross plus source
			// bursts. The source envelope is an over-approximation of the
			// propagated arrival at inner nodes, which only affects grid
			// quality, never soundness.
			if tmax := g[len(g)-1]; tmax > 0 {
				if th := full.InverseLower(float64(n.CrossBurst.Mul(1/gain)) + alphaPrime.Burst()); th > 0 && th < tmax && !math.IsInf(th, 1) {
					g = append(g, th)
					sort.Float64s(g)
				}
			}
			grids[i] = g
			combos *= len(g)
			hasCross = true
		}
		gain *= n.Gain()
	}
	if !hasCross {
		return analyzeWith(p, nil)
	}
	// Seed the search with the greedy rung's vector so the top rung never
	// loses to the rung below it, even when grid thinning (below) drops
	// the exact theta the greedy pass picked.
	var greedy []float64
	pg := p
	pg.Rung = RungFIFO
	if ga, err := analyzeWith(pg, nil); err == nil {
		greedy = make([]float64, len(p.Nodes))
		for i, na := range ga.Nodes {
			greedy[i] = na.FIFOTheta
		}
	}
	for combos > tightMaxCombos {
		// Thin the largest grid to half, keeping its endpoints.
		li := -1
		for i, g := range grids {
			if li < 0 || len(g) > len(grids[li]) {
				if len(g) > 2 {
					li = i
				}
			}
		}
		if li < 0 {
			break // every grid already minimal
		}
		combos /= len(grids[li])
		grids[li] = thinGrid(grids[li], (len(grids[li])+1)/2)
		combos *= len(grids[li])
	}

	decode := func(idx int) []float64 {
		thetas := make([]float64, len(p.Nodes))
		for i, g := range grids {
			if len(g) == 0 {
				continue
			}
			thetas[i] = g[idx%len(g)]
			idx /= len(g)
		}
		return thetas
	}

	scores := make([]float64, combos)
	errs := make([]error, combos)
	_ = pool.ForEach(nil, 0, combos, nil, func(idx int) error {
		a, err := analyzeWith(p, decode(idx))
		if err != nil {
			errs[idx] = err
			return nil // evaluate every vector; lowest-index error wins below
		}
		scores[idx] = curve.HDev(a.AlphaPrime, a.ConcatenatedBeta())
		return nil
	})
	best := 0
	for idx := 1; idx < combos; idx++ {
		if errs[best] != nil {
			break
		}
		if errs[idx] == nil && scores[idx] < scores[best]*(1-1e-12) {
			best = idx
		}
	}
	if errs[best] != nil {
		return nil, errs[best]
	}
	win := decode(best)
	if greedy != nil {
		if ga, err := analyzeWith(p, greedy); err == nil {
			if curve.HDev(ga.AlphaPrime, ga.ConcatenatedBeta()) < scores[best]*(1-1e-12) {
				return ga, nil
			}
		}
	}
	return analyzeWith(p, win)
}

// thinGrid keeps k evenly spaced entries of g including both endpoints.
func thinGrid(g []float64, k int) []float64 {
	if k < 2 {
		k = 2
	}
	if len(g) <= k {
		return g
	}
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, g[i*(len(g)-1)/(k-1)])
	}
	return out
}

// RungDelayBound is a convenience for sweeps: the end-to-end delay bound of
// the concatenated chain curve at the given rung, in seconds (+Inf when
// overloaded or starved).
func RungDelayBound(p Pipeline, r Rung) float64 {
	p.Rung = r
	a, err := Analyze(p)
	if err != nil || a.Overloaded {
		return math.Inf(1)
	}
	return curve.HDev(a.AlphaPrime, a.ConcatenatedBeta())
}
