package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"streamcalc/internal/curve"
	"streamcalc/internal/pool"
)

// Rung selects the multi-flow analysis tightness for nodes that carry cross
// traffic — the accuracy/tractability knob of the FIFO ladder. Every rung
// produces sound bounds; climbing the ladder only tightens them:
//
//	blind  — arbitrary-order multiplexing residual [beta - alpha_cross]⁺.
//	         No FIFO assumption, cheapest, loosest.
//	fifo   — per-node greedy member of the theta-parameterized FIFO
//	         left-over family, theta chosen to minimize that node's delay
//	         bound against its propagated arrival. Each chosen member
//	         dominates the blind residual pointwise, so the end-to-end
//	         bound never regresses.
//	tight  — joint optimization of the per-node theta grids (the exact
//	         small-topology formulation): the dominance-safe theta lattice
//	         is searched by a prefix-sharing depth-first walk with
//	         branch-and-bound pruning (see analyzeTight), minimizing the
//	         end-to-end delay bound of the concatenated chain curve. Cost
//	         grows with the number of lattice edges actually expanded, not
//	         with combos × nodes.
type Rung uint8

const (
	// RungDefault is the zero value and resolves to RungBlind, keeping
	// zero-valued Pipeline literals on the pre-ladder behavior.
	RungDefault Rung = iota
	RungBlind
	RungFIFO
	RungTight
)

// Resolved maps RungDefault to RungBlind and leaves other values alone.
func (r Rung) Resolved() Rung {
	if r == RungDefault {
		return RungBlind
	}
	return r
}

// String returns the wire name of the resolved rung.
func (r Rung) String() string {
	switch r.Resolved() {
	case RungBlind:
		return "blind"
	case RungFIFO:
		return "fifo"
	case RungTight:
		return "tight"
	default:
		return fmt.Sprintf("Rung(%d)", uint8(r))
	}
}

// ParseRung parses a wire name; "" and "default" resolve to RungDefault so
// callers can distinguish "explicitly blind" from "unset".
func ParseRung(s string) (Rung, error) {
	switch s {
	case "", "default":
		return RungDefault, nil
	case "blind":
		return RungBlind, nil
	case "fifo":
		return RungFIFO, nil
	case "tight":
		return RungTight, nil
	}
	return RungDefault, fmt.Errorf("core: unknown analysis rung %q (want blind, fifo or tight)", s)
}

// Rungs lists the ladder in ascending tightness, for sweeps and flags.
func Rungs() []Rung { return []Rung{RungBlind, RungFIFO, RungTight} }

// tightMaxCombos caps the joint theta-vector lattice; per-node grids are
// thinned (endpoints kept) until the product fits. The prefix-sharing search
// costs roughly one convolution and one HDev per expanded lattice edge
// instead of a full pipeline analysis per vector, so the cap sits 32x above
// the pre-DP exhaustive budget of 2048: full-resolution grids on 4-6 cross
// nodes fit without thinning.
const tightMaxCombos = 1 << 16

// Cumulative tight-rung search effort, exported for telemetry
// (nc_rung_combos_total / nc_rung_pruned_total in internal/admit).
var (
	rungCombosTotal atomic.Uint64
	rungPrunedTotal atomic.Uint64
)

// RungSearchStats reports the process-wide cumulative tight-rung lattice
// counters: θ-vectors scored and θ-vectors skipped by branch-and-bound
// pruning. combos+pruned is the total lattice size the searches covered.
func RungSearchStats() (combos, pruned uint64) {
	return rungCombosTotal.Load(), rungPrunedTotal.Load()
}

// tightGrids builds the per-cross-node dominance-safe theta grids (nil at
// nodes without cross traffic), inserts the arrival-aware candidate with
// near-equal dedupe, and thins the largest grids until the lattice fits
// maxCombos (<= 0 means the default tightMaxCombos).
func tightGrids(p Pipeline, maxCombos int) (grids [][]float64, combos int, hasCross bool, err error) {
	alphaPrime := p.Arrival.PacketizedEnvelope()
	grids = make([][]float64, len(p.Nodes))
	gain := 1.0
	combos = 1
	for i, n := range p.Nodes {
		if n.CrossRate > 0 {
			full := curve.RateLatency(float64(n.Rate.Mul(1/gain)), secs(n.Latency))
			cross := curve.Affine(float64(n.CrossRate.Mul(1/gain)), float64(n.CrossBurst.Mul(1/gain)))
			g := curve.FIFOThetaCandidates(full, cross)
			if g == nil {
				return nil, 0, false, fmt.Errorf("core: node %d (%s): cross traffic starves the node", i, n.Name)
			}
			// Arrival-aware candidate (see FIFOResidualBest): where the
			// post-theta service jump just covers the cross plus source
			// bursts. The source envelope is an over-approximation of the
			// propagated arrival at inner nodes, which only affects grid
			// quality, never soundness. The deduping insert keeps a
			// candidate that coincides with a structural breakpoint from
			// silently doubling a slice of the lattice.
			if tmax := g[len(g)-1]; tmax > 0 {
				if th := full.InverseLower(float64(n.CrossBurst.Mul(1/gain)) + alphaPrime.Burst()); th > 0 && th < tmax && !math.IsInf(th, 1) {
					g = curve.FIFOThetaInsert(g, th)
				}
			}
			grids[i] = g
			combos *= len(g)
			hasCross = true
		}
		gain *= n.Gain()
	}
	if maxCombos <= 0 {
		maxCombos = tightMaxCombos
	}
	for combos > maxCombos {
		// Thin the largest grid to half, keeping its endpoints.
		li := -1
		for i, g := range grids {
			if li < 0 || len(g) > len(grids[li]) {
				if len(g) > 2 {
					li = i
				}
			}
		}
		if li < 0 {
			break // every grid already minimal
		}
		combos /= len(grids[li])
		grids[li] = thinGrid(grids[li], (len(grids[li])+1)/2)
		combos *= len(grids[li])
	}
	return grids, combos, hasCross, nil
}

// tightGreedy returns the per-node greedy FIFO θ-vector — the rung-below
// seed that keeps the top rung from losing to grid thinning — or nil when
// the greedy pass fails.
func tightGreedy(p Pipeline) []float64 {
	pg := p
	pg.Rung = RungFIFO
	ga, err := analyzeWith(pg, nil)
	if err != nil {
		return nil
	}
	greedy := make([]float64, len(p.Nodes))
	for i, na := range ga.Nodes {
		greedy[i] = na.FIFOTheta
	}
	return greedy
}

// tightSearch is the immutable per-search state shared by all workers of the
// prefix-sharing lattice walk.
//
// The search exploits the separability of the tight-rung score: for a pinned
// θ-vector the scored chain curve is the left fold
//
//	⊗_i ShiftRight(SubConstantPositive(residual_i(θ_i), lmax_i), agg_i)
//
// where only the cross-node residual depends on θ_i — the aggregation
// delays, packetizer terms, and non-cross betas are all θ-independent (they
// come from one base analysis pass). So each node contributes a small menu
// of chain elements, built once per θ candidate (O(Σ|grid_i|) curve
// constructions), and sibling vectors sharing a θ-prefix share the partial
// chain convolution: each expanded lattice edge costs one convolution, and
// each leaf one HDev.
type tightSearch struct {
	alphaPrime curve.Curve
	// elems[i] holds node i's candidate chain elements, indexed like
	// grids[i]; a single entry at nodes without cross traffic.
	elems [][]curve.Curve
	// leaves[k] is the number of lattice leaves below level k
	// (Π_{i>=k} len(elems[i])); leaves[len(elems)] = 1.
	leaves []int
	// sufMax[k] is the best-possible suffix chain from level k on: the
	// convolution of the per-level pointwise maxima. Any realizable suffix
	// chain is pointwise below it, so (prefix ⊗ sufMax) bounds every
	// completion's score from below (HDev is anti-monotone in the service
	// curve) — the branch-and-bound cut.
	sufMax []curve.Curve
	// pruneAt[k] marks the levels where the cut is worth evaluating: a
	// choice level with further choices below it.
	pruneAt []bool
}

// newTightSearch precomputes the per-candidate chain elements and the
// branch-and-bound suffix bounds. base is a completed analysis at θ = 0
// everywhere, supplying every θ-independent ingredient.
func newTightSearch(p Pipeline, base *Analysis, grids [][]float64) (*tightSearch, error) {
	n := len(p.Nodes)
	s := &tightSearch{alphaPrime: base.AlphaPrime, elems: make([][]curve.Curve, n)}
	gain := 1.0
	for i, node := range p.Nodes {
		agg := secs(base.Nodes[i].AggregationDelay)
		if len(grids[i]) == 0 {
			// No choice at this level: the base pass's packetized beta is
			// exactly what any θ-vector's analysis would produce here.
			s.elems[i] = []curve.Curve{curve.ShiftRight(base.Nodes[i].Beta, agg)}
		} else {
			full := curve.RateLatency(float64(node.Rate.Mul(1/gain)), secs(node.Latency))
			crossC := curve.Affine(float64(node.CrossRate.Mul(1/gain)), float64(node.CrossBurst.Mul(1/gain)))
			lmax := float64(node.MaxPacket.Mul(1 / gain))
			es := make([]curve.Curve, len(grids[i]))
			for j, th := range grids[i] {
				resid, ok := curve.FIFOResidual(full, crossC, th)
				if !ok {
					// Unreachable once the base pass succeeded (starvation
					// is θ-independent); kept as a hard error for safety.
					return nil, fmt.Errorf("core: node %d (%s): cross traffic starves the node", i, node.Name)
				}
				beta := resid
				if lmax > 0 {
					beta = curve.SubConstantPositive(beta, lmax)
				}
				es[j] = curve.ShiftRight(beta, agg)
			}
			s.elems[i] = es
		}
		gain *= node.Gain()
	}
	s.leaves = make([]int, n+1)
	s.leaves[n] = 1
	for k := n - 1; k >= 0; k-- {
		s.leaves[k] = s.leaves[k+1] * len(s.elems[k])
	}
	s.sufMax = make([]curve.Curve, n)
	for k := n - 1; k >= 0; k-- {
		lm := s.elems[k][0]
		for _, e := range s.elems[k][1:] {
			lm = curve.Max(lm, e)
		}
		if k < n-1 {
			lm = curve.Convolve(lm, s.sufMax[k+1])
		}
		s.sufMax[k] = lm
	}
	s.pruneAt = make([]bool, n)
	for k := 0; k < n; k++ {
		s.pruneAt[k] = len(s.elems[k]) > 1 && k+1 < n && s.leaves[k+1] > 1
	}
	return s, nil
}

// prunePad guards the branch-and-bound cut against floating-point drift
// between the folded suffix-max curves and the exactly scored leaves: a
// subtree is skipped only when its lower bound clears the incumbent by more
// than the accumulated kernel tolerance, so pruning can never drop a leaf
// the exhaustive reference would have selected — the bit-identity contract
// of TestTightMatchesExhaustive.
const prunePad = 1e-6

// tightWorker walks one top-level branch of the lattice depth-first,
// carrying the prefix convolution down and reusing its buffers across every
// leaf: the steady-state walk allocates nothing per vector.
type tightWorker struct {
	s       *tightSearch
	scratch *curve.Scratch
	vec     []int // candidate index per level of the current path
	bestVec []int
	best    float64
	hasBest bool
	combos  int
	pruned  int
}

func newTightWorker(s *tightSearch) *tightWorker {
	n := len(s.elems)
	return &tightWorker{
		s: s, scratch: curve.NewScratch(),
		vec: make([]int, n), bestVec: make([]int, n),
		best: math.Inf(1),
	}
}

// leaf scores one complete chain. Strict improvement is required to replace
// the incumbent, so score ties keep the earliest leaf in depth-first order —
// the same lowest-index rule the exhaustive reference applies.
func (w *tightWorker) leaf(chain curve.Curve) {
	w.combos++
	score := w.scratch.HDev(w.s.alphaPrime, chain)
	if !w.hasBest || score < w.best {
		w.hasBest = true
		w.best = score
		copy(w.bestVec, w.vec)
	}
}

// dfs expands the lattice below level k with the prefix chain ⊗-folded so
// far. Runs of single-candidate levels fold eagerly; at choice levels the
// branch-and-bound cut skips subtrees whose lower bound cannot beat the
// incumbent.
func (w *tightWorker) dfs(k int, prefix curve.Curve) {
	s := w.s
	n := len(s.elems)
	for k < n && len(s.elems[k]) == 1 {
		w.vec[k] = 0
		prefix = curve.Convolve(prefix, s.elems[k][0])
		k++
	}
	if k == n {
		w.leaf(prefix)
		return
	}
	for j, e := range s.elems[k] {
		w.vec[k] = j
		next := curve.Convolve(prefix, e)
		if s.pruneAt[k] && w.hasBest {
			lb := w.scratch.HDev(s.alphaPrime, curve.Convolve(next, s.sufMax[k+1]))
			if lb >= w.best+prunePad*(1+math.Abs(w.best)) {
				w.pruned += s.leaves[k+1]
				continue
			}
		}
		w.dfs(k+1, next)
	}
}

type tightResult struct {
	ok             bool
	score          float64
	vec            []int
	combos, pruned int
}

func (w *tightWorker) result() tightResult {
	return tightResult{ok: w.hasBest, score: w.best, vec: w.bestVec, combos: w.combos, pruned: w.pruned}
}

// analyzeTight runs the top rung at the default lattice budget.
func analyzeTight(p Pipeline) (*Analysis, error) { return analyzeTightBudget(p, 0) }

// analyzeTightBudget runs the prefix-sharing θ-lattice search: build the
// dominance-safe grids, precompute each node's candidate chain elements
// once, then walk the lattice depth-first — fanning the top-level branches
// over the worker pool — keeping the θ-vector that minimizes the end-to-end
// delay bound of the concatenated chain curve. Score ties keep the
// lexicographically smallest vector (lattice leaves are visited in
// lexicographic θ-index order and only strict improvements replace the
// incumbent), making the result deterministic at any worker count and never
// worse than the blind rung.
func analyzeTightBudget(p Pipeline, maxCombos int) (*Analysis, error) {
	grids, _, hasCross, err := tightGrids(p, maxCombos)
	if err != nil {
		return nil, err
	}
	if !hasCross {
		return analyzeWith(p, nil)
	}
	// Base pass at θ = 0 everywhere: supplies every θ-independent ingredient
	// (aggregation delays, non-cross betas, the packetized source envelope).
	// Analysis errors are θ-independent — the θ = 0 vector failing means
	// every vector fails, which is the only condition the search reports as
	// an error.
	base, err := analyzeWith(p, make([]float64, len(p.Nodes)))
	if err != nil {
		return nil, err
	}
	// Seed the search with the greedy rung's vector so the top rung never
	// loses to the rung below it, even when grid thinning drops the exact
	// theta the greedy pass picked.
	greedy := tightGreedy(p)
	s, err := newTightSearch(p, base, grids)
	if err != nil {
		return nil, err
	}

	n := len(s.elems)
	c0 := 0
	for c0 < n && len(s.elems[c0]) == 1 {
		c0++
	}
	var results []tightResult
	if c0 == n {
		// Degenerate single-vector lattice.
		w := newTightWorker(s)
		chain := s.elems[0][0]
		for i := 1; i < n; i++ {
			chain = curve.Convolve(chain, s.elems[i][0])
		}
		w.leaf(chain)
		results = []tightResult{w.result()}
	} else {
		var pre curve.Curve
		hasPre := c0 > 0
		if hasPre {
			pre = s.elems[0][0]
			for i := 1; i < c0; i++ {
				pre = curve.Convolve(pre, s.elems[i][0])
			}
		}
		results = make([]tightResult, len(s.elems[c0]))
		_ = pool.ForEach(nil, 0, len(results), nil, func(b int) error {
			w := newTightWorker(s)
			w.vec[c0] = b
			p0 := s.elems[c0][b]
			if hasPre {
				p0 = curve.Convolve(pre, p0)
			}
			w.dfs(c0+1, p0)
			results[b] = w.result()
			return nil
		})
	}

	// Merge in branch order: branch index is the most significant digit of
	// the leaf order, so "first strict minimum" stays the lexicographically
	// smallest winning vector regardless of worker count.
	bestB := -1
	totCombos, totPruned := 0, 0
	for b := range results {
		r := &results[b]
		totCombos += r.combos
		totPruned += r.pruned
		if !r.ok {
			continue
		}
		if bestB < 0 || r.score < results[bestB].score {
			bestB = b
		}
	}
	rungCombosTotal.Add(uint64(totCombos))
	rungPrunedTotal.Add(uint64(totPruned))
	if bestB < 0 {
		// Unreachable — every branch scores its first leaf before pruning
		// can engage — but guard rather than return a nil analysis.
		return nil, fmt.Errorf("core: tight-rung search expanded no candidate vector")
	}
	bestScore := results[bestB].score
	win := make([]float64, n)
	for i, g := range grids {
		if len(g) > 0 {
			win[i] = g[results[bestB].vec[i]]
		}
	}
	finish := func(a *Analysis) *Analysis {
		a.TightCombos, a.TightPruned = totCombos, totPruned
		return a
	}
	if greedy != nil {
		if ga, err := analyzeWith(p, greedy); err == nil {
			if curve.HDev(ga.AlphaPrime, ga.ConcatenatedBeta()) < bestScore*(1-1e-12) {
				return finish(ga), nil
			}
		}
	}
	a, err := analyzeWith(p, win)
	if err != nil {
		return nil, err
	}
	return finish(a), nil
}

// AnalyzeTightBudget runs the tight rung with an explicit lattice budget
// (maxCombos <= 0 uses the built-in default). This is the benchmarking
// entry point behind ncload -rungbench; production analyses route through
// Analyze, which uses the default budget.
func AnalyzeTightBudget(p Pipeline, maxCombos int) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Rung = RungTight
	return analyzeTightBudget(p, maxCombos)
}

// AnalyzeTightExhaustive is the pre-DP reference implementation of the tight
// rung: one full pipeline analysis per θ-vector over the same grids, the
// same leaf order (first node most significant), and the same exact-minimum
// selection as the prefix-sharing search, so the two return bit-identical
// winning vectors. It exists for differential tests and as the -rungbench
// speedup baseline; it allocates and analyzes combinatorially and must not
// be used on hot paths.
func AnalyzeTightExhaustive(p Pipeline, maxCombos int) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Rung = RungTight
	grids, combos, hasCross, err := tightGrids(p, maxCombos)
	if err != nil {
		return nil, err
	}
	if !hasCross {
		return analyzeWith(p, nil)
	}
	greedy := tightGreedy(p)
	scores := make([]float64, combos)
	errs := make([]error, combos)
	_ = pool.ForEach(nil, 0, combos, nil, func(idx int) error {
		a, err := analyzeWith(p, decodeTight(grids, idx))
		if err != nil {
			errs[idx] = err
			return nil // evaluate every vector; only all-errored fails below
		}
		scores[idx] = curve.HDev(a.AlphaPrime, a.ConcatenatedBeta())
		return nil
	})
	best := bestIndex(scores, errs)
	if best < 0 {
		// Every vector errored: report the lowest-index error.
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	}
	win := decodeTight(grids, best)
	if greedy != nil {
		if ga, err := analyzeWith(p, greedy); err == nil {
			if curve.HDev(ga.AlphaPrime, ga.ConcatenatedBeta()) < scores[best]*(1-1e-12) {
				ga.TightCombos = combos
				return ga, nil
			}
		}
	}
	a, err := analyzeWith(p, win)
	if err != nil {
		return nil, err
	}
	a.TightCombos = combos
	return a, nil
}

// bestIndex returns the index of the smallest score among the vectors that
// did not error, ties keeping the lowest index, or -1 when every vector
// errored. Skipping errored entries (instead of bailing on the first) is
// what lets a partially failed sweep still return its true minimum.
func bestIndex(scores []float64, errs []error) int {
	best := -1
	for i := range scores {
		if errs[i] != nil {
			continue
		}
		if best < 0 || scores[i] < scores[best] {
			best = i
		}
	}
	return best
}

// decodeTight maps a leaf index onto its θ-vector with the first node as the
// most significant digit — the exhaustive reference's enumeration order,
// chosen to match the DP search's depth-first leaf order so score ties
// resolve to the same vector in both implementations.
func decodeTight(grids [][]float64, idx int) []float64 {
	thetas := make([]float64, len(grids))
	for i := len(grids) - 1; i >= 0; i-- {
		g := grids[i]
		if len(g) == 0 {
			continue
		}
		thetas[i] = g[idx%len(g)]
		idx /= len(g)
	}
	return thetas
}

// thinGrid keeps k evenly spaced entries of g including both endpoints.
func thinGrid(g []float64, k int) []float64 {
	if k < 2 {
		k = 2
	}
	if len(g) <= k {
		return g
	}
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, g[i*(len(g)-1)/(k-1)])
	}
	return out
}

// RungDelayBound is a convenience for sweeps: the end-to-end delay bound of
// the concatenated chain curve at the given rung, in seconds (+Inf when
// overloaded or starved).
func RungDelayBound(p Pipeline, r Rung) float64 {
	p.Rung = r
	a, err := Analyze(p)
	if err != nil || a.Overloaded {
		return math.Inf(1)
	}
	return curve.HDev(a.AlphaPrime, a.ConcatenatedBeta())
}
