package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

func TestRungParseRoundTrip(t *testing.T) {
	for _, r := range Rungs() {
		got, err := ParseRung(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRung(%q) = %v, %v", r.String(), got, err)
		}
	}
	for _, s := range []string{"", "default"} {
		if got, err := ParseRung(s); err != nil || got != RungDefault {
			t.Errorf("ParseRung(%q) = %v, %v, want RungDefault", s, got, err)
		}
	}
	if _, err := ParseRung("bogus"); err == nil {
		t.Error("bogus rung accepted")
	}
	if RungDefault.Resolved() != RungBlind || RungDefault.String() != "blind" {
		t.Error("zero-value rung must resolve to blind")
	}
}

func TestPipelineDigestDistinguishesRungs(t *testing.T) {
	p := Pipeline{
		Arrival: Arrival{Rate: 2, Burst: 1},
		Nodes:   []Node{{Name: "s", Rate: 10, JobIn: 1, JobOut: 1, CrossRate: 4, CrossBurst: 2}},
	}
	blind, fifo, tight := p, p, p
	blind.Rung, fifo.Rung, tight.Rung = RungBlind, RungFIFO, RungTight
	if p.digest() != blind.digest() {
		t.Error("default and explicit blind must share a digest")
	}
	if p.digest() == fifo.digest() || fifo.digest() == tight.digest() {
		t.Error("distinct rungs must not share a digest (memo poisoning)")
	}
}

// randomCrossPipeline builds a stable 1-3 node chain where every node
// carries cross traffic, the shape the ladder exists for.
func randomCrossPipeline(rng *rand.Rand) Pipeline {
	n := 1 + rng.Intn(3)
	arrRate := units.Rate(1 + rng.Float64()*4)
	nodes := make([]Node, n)
	for i := range nodes {
		rate := arrRate.Mul(2 + rng.Float64()*4)
		cross := rate.Mul(0.2 + rng.Float64()*0.4) // residual stays above arrival
		nodes[i] = Node{
			Name: string(rune('a' + i)), Rate: rate,
			Latency: time.Duration(rng.Intn(2000)) * time.Millisecond,
			JobIn:   1, JobOut: 1,
			CrossRate: cross, CrossBurst: units.Bytes(rng.Float64() * 10),
		}
	}
	return Pipeline{
		Name:    "rung-fuzz",
		Arrival: Arrival{Rate: arrRate, Burst: units.Bytes(1 + rng.Float64()*5)},
		Nodes:   nodes,
	}
}

// The ladder property: delay bounds are monotone non-increasing up the
// ladder, and the chain service curve of every FIFO rung dominates the
// blind chain pointwise.
func TestRungLadderMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		p := randomCrossPipeline(rng)
		dBlind := RungDelayBound(p, RungBlind)
		dFIFO := RungDelayBound(p, RungFIFO)
		dTight := RungDelayBound(p, RungTight)
		eps := 1e-9 * (1 + dBlind)
		if dFIFO > dBlind+eps {
			t.Errorf("trial %d: fifo delay %v above blind %v", trial, dFIFO, dBlind)
		}
		if dTight > dFIFO+eps {
			t.Errorf("trial %d: tight delay %v above fifo %v", trial, dTight, dFIFO)
		}

		pb, pf, pt := p, p, p
		pb.Rung, pf.Rung, pt.Rung = RungBlind, RungFIFO, RungTight
		ab, err1 := Analyze(pb)
		af, err2 := Analyze(pf)
		at, err3 := Analyze(pt)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("trial %d: %v %v %v", trial, err1, err2, err3)
		}
		chainB := ab.ConcatenatedBeta()
		for name, a := range map[string]*Analysis{"fifo": af, "tight": at} {
			chain := a.ConcatenatedBeta()
			xs := append(chainB.Breakpoints(), chain.Breakpoints()...)
			last := xs[0]
			for _, x := range xs {
				if x > last {
					last = x
				}
			}
			xs = append(xs, last+1, last*2+5)
			for _, x := range xs {
				want := chainB.Value(x)
				if chain.Value(x) < want-1e-6*(1+want) {
					t.Fatalf("trial %d: %s chain below blind at t=%v: %v < %v",
						trial, name, x, chain.Value(x), want)
				}
			}
		}
	}
}

// A canonical shared node where the FIFO rungs are strictly tighter: blind
// pays the cross burst and latency amplified by the residual rate; the
// theta-shifted member pays only theta = the blind latency.
func TestRungStrictImprovement(t *testing.T) {
	p := Pipeline{
		Name:    "shared",
		Arrival: Arrival{Rate: 2, Burst: 1},
		Nodes: []Node{{
			Name: "s", Rate: 10, Latency: time.Second,
			JobIn: 1, JobOut: 1,
			CrossRate: 4, CrossBurst: 2,
		}},
	}
	dBlind := RungDelayBound(p, RungBlind)
	dFIFO := RungDelayBound(p, RungFIFO)
	dTight := RungDelayBound(p, RungTight)
	// Blind: residual RL(6, 2), delay 2 + 1/6. FIFO at the arrival-aware
	// theta* = T + (b_c + b_a)/R = 1.3: the service right after theta*
	// exactly covers both bursts, collapsing the delay bound to theta* —
	// the exact aggregate FIFO bound for a single shared node.
	if math.Abs(dBlind-(2+1.0/6)) > 1e-9 {
		t.Errorf("blind delay = %v, want %v", dBlind, 2+1.0/6)
	}
	if math.Abs(dFIFO-1.3) > 1e-9 {
		t.Errorf("fifo delay = %v, want 1.3", dFIFO)
	}
	if dFIFO >= dBlind || dTight > dFIFO+1e-12 {
		t.Errorf("ladder not strictly improving: blind %v fifo %v tight %v", dBlind, dFIFO, dTight)
	}
	// The chosen theta is recorded for traces.
	pf := p
	pf.Rung = RungFIFO
	af, err := Analyze(pf)
	if err != nil {
		t.Fatal(err)
	}
	if af.Rung != RungFIFO || math.Abs(af.Nodes[0].FIFOTheta-1.3) > 1e-9 {
		t.Errorf("rung/theta not recorded: rung=%v theta=%v", af.Rung, af.Nodes[0].FIFOTheta)
	}
}

// Rungs only change cross-traffic handling: without cross nodes all three
// produce identical bounds (and the single-flow paper goldens stay put).
func TestRungNoCrossNoEffect(t *testing.T) {
	p := Pipeline{
		Arrival: Arrival{Rate: 4, Burst: 8, MaxPacket: 2},
		Nodes: []Node{
			{Name: "a", Rate: 10, Latency: time.Second, JobIn: 4, JobOut: 4, MaxPacket: 2},
			{Name: "b", Rate: 9, Latency: time.Second / 2, JobIn: 4, JobOut: 4, MaxPacket: 2},
		},
	}
	d := RungDelayBound(p, RungBlind)
	for _, r := range []Rung{RungFIFO, RungTight} {
		if got := RungDelayBound(p, r); math.Abs(got-d) > 1e-12 {
			t.Errorf("rung %v changed a cross-free pipeline: %v vs %v", r, got, d)
		}
	}
}

func TestRungDelayBoundOverloaded(t *testing.T) {
	p := Pipeline{
		Arrival: Arrival{Rate: 5, Burst: 1},
		Nodes:   []Node{{Name: "s", Rate: 10, JobIn: 1, JobOut: 1, CrossRate: 7, CrossBurst: 1}},
	}
	for _, r := range Rungs() {
		if got := RungDelayBound(p, r); !math.IsInf(got, 1) {
			t.Errorf("rung %v: overloaded flow must report +Inf, got %v", r, got)
		}
	}
}

// Analyses at different rungs must not collide in the Memo.
func TestMemoSeparatesRungs(t *testing.T) {
	m := NewMemo()
	p := Pipeline{
		Arrival: Arrival{Rate: 2, Burst: 1},
		Nodes:   []Node{{Name: "s", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1, CrossRate: 4, CrossBurst: 2}},
	}
	pf := p
	pf.Rung = RungFIFO
	ab, err1 := AnalyzeMemo(p, m)
	af, err2 := AnalyzeMemo(pf, m)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if _, misses, entries := m.Stats(); misses != 2 || entries != 2 {
		t.Errorf("rungs shared a memo entry: misses=%d entries=%d", misses, entries)
	}
	if curve.HDev(af.AlphaPrime, af.ConcatenatedBeta()) >= curve.HDev(ab.AlphaPrime, ab.ConcatenatedBeta()) {
		t.Error("fifo rung not tighter through the memo path")
	}
}

// randomMixedPipeline builds a 2-4 node chain mixing cross and cross-free
// nodes, packetizers, and job aggregation — the general shape the
// prefix-sharing search must reproduce exactly.
func randomMixedPipeline(rng *rand.Rand) Pipeline {
	n := 2 + rng.Intn(3)
	arrRate := units.Rate(1 + rng.Float64()*4)
	nodes := make([]Node, n)
	for i := range nodes {
		rate := arrRate.Mul(2 + rng.Float64()*4)
		nodes[i] = Node{
			Name: string(rune('a' + i)), Rate: rate,
			Latency: time.Duration(rng.Intn(2000)) * time.Millisecond,
			JobIn:   1, JobOut: 1,
		}
		if rng.Float64() < 0.75 {
			nodes[i].CrossRate = rate.Mul(0.2 + rng.Float64()*0.4)
			nodes[i].CrossBurst = units.Bytes(rng.Float64() * 10)
		}
		if rng.Float64() < 0.5 {
			nodes[i].MaxPacket = units.Bytes(1 + rng.Float64())
		}
		if rng.Float64() < 0.3 {
			nodes[i].JobIn, nodes[i].JobOut = 4, 4
		}
	}
	return Pipeline{
		Name:    "rung-mix",
		Arrival: Arrival{Rate: arrRate, Burst: units.Bytes(1 + rng.Float64()*5), MaxPacket: 1},
		Nodes:   nodes,
	}
}

// The tentpole differential: at matched budgets the prefix-sharing search
// must return a bit-identical winning θ-vector and delay bound to the
// pre-DP exhaustive enumeration, and its scored+pruned counters must cover
// the whole thinned lattice.
func TestTightMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		p := randomMixedPipeline(rng)
		for _, budget := range []int{16, 128} {
			dp, err1 := AnalyzeTightBudget(p, budget)
			ex, err2 := AnalyzeTightExhaustive(p, budget)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d budget %d: error mismatch: %v vs %v", trial, budget, err1, err2)
			}
			if err1 != nil {
				continue
			}
			for i := range dp.Nodes {
				if dp.Nodes[i].FIFOTheta != ex.Nodes[i].FIFOTheta {
					t.Fatalf("trial %d budget %d node %d: θ %v (dp) != %v (exhaustive)",
						trial, budget, i, dp.Nodes[i].FIFOTheta, ex.Nodes[i].FIFOTheta)
				}
			}
			if dp.DelayBound != ex.DelayBound || dp.DelayBoundInfinite != ex.DelayBoundInfinite {
				t.Fatalf("trial %d budget %d: delay %v/%v != %v/%v", trial, budget,
					dp.DelayBound, dp.DelayBoundInfinite, ex.DelayBound, ex.DelayBoundInfinite)
			}
			if dp.TightCombos+dp.TightPruned != ex.TightCombos {
				t.Fatalf("trial %d budget %d: lattice coverage %d+%d != %d",
					trial, budget, dp.TightCombos, dp.TightPruned, ex.TightCombos)
			}
		}
	}
}

// The ladder property on the mixed-shape pipelines: tight <= fifo <= blind.
func TestRungLadderMonotoneMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		p := randomMixedPipeline(rng)
		dBlind := RungDelayBound(p, RungBlind)
		dFIFO := RungDelayBound(p, RungFIFO)
		dTight := RungDelayBound(p, RungTight)
		eps := 1e-9 * (1 + dBlind)
		if dFIFO > dBlind+eps || dTight > dFIFO+eps {
			t.Errorf("trial %d: ladder not monotone: blind %v fifo %v tight %v",
				trial, dBlind, dFIFO, dTight)
		}
	}
}

// Regression for the best-selection bug: an errored vector must be skipped,
// not abort the sweep; only an all-errored sweep fails.
func TestBestIndexSkipsErrors(t *testing.T) {
	boom := errors.New("boom")
	if got := bestIndex([]float64{0, 5, 3, 4}, []error{boom, nil, nil, nil}); got != 2 {
		t.Errorf("bestIndex = %d, want 2 (errored index 0 must be skipped, not returned)", got)
	}
	if got := bestIndex([]float64{1, 2}, []error{boom, boom}); got != -1 {
		t.Errorf("bestIndex = %d, want -1 when every vector errored", got)
	}
	if got := bestIndex([]float64{7, 3, 3}, make([]error, 3)); got != 1 {
		t.Errorf("bestIndex = %d, want 1 (ties keep the lowest index)", got)
	}
}

// Regression for the duplicate-θ grid bug: after the arrival-aware insert
// every grid must stay strictly increasing (no near-equal duplicates
// silently multiplying the combo budget), and the reported combo count must
// match the grid product.
func TestTightGridsStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		grids, combos, _, err := tightGrids(randomMixedPipeline(rng), 0)
		if err != nil {
			continue
		}
		prod := 1
		for i, g := range grids {
			for j := 1; j < len(g); j++ {
				if g[j] <= g[j-1] {
					t.Fatalf("trial %d node %d: grid not strictly increasing at %d: %v", trial, i, j, g)
				}
			}
			if len(g) > 0 {
				prod *= len(g)
			}
		}
		if prod != combos {
			t.Fatalf("trial %d: combos %d != grid product %d", trial, combos, prod)
		}
	}
}

// The search-effort counters feed telemetry: a tight analysis must stamp
// TightCombos/TightPruned and bump the process-wide totals.
func TestTightSearchCounters(t *testing.T) {
	p := Pipeline{
		Arrival: Arrival{Rate: 2, Burst: 1},
		Nodes: []Node{
			{Name: "a", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1, CrossRate: 4, CrossBurst: 2},
			{Name: "b", Rate: 12, Latency: time.Second / 2, JobIn: 1, JobOut: 1, CrossRate: 3, CrossBurst: 1},
		},
	}
	c0, p0 := RungSearchStats()
	a, err := AnalyzeTightBudget(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, combos, _, err := tightGrids(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.TightCombos <= 0 || a.TightCombos+a.TightPruned != combos {
		t.Errorf("TightCombos=%d TightPruned=%d, want sum %d", a.TightCombos, a.TightPruned, combos)
	}
	c1, p1 := RungSearchStats()
	if c1-c0 != uint64(a.TightCombos) || p1-p0 != uint64(a.TightPruned) {
		t.Errorf("global counters moved by %d/%d, want %d/%d", c1-c0, p1-p0, a.TightCombos, a.TightPruned)
	}
	pb := p
	pb.Rung = RungBlind
	ab, err := Analyze(pb)
	if err != nil {
		t.Fatal(err)
	}
	if ab.TightCombos != 0 || ab.TightPruned != 0 {
		t.Errorf("blind analysis reported search effort: %d/%d", ab.TightCombos, ab.TightPruned)
	}
}
