package core_test

// Fuzzed soundness of the FIFO tightness ladder: a server at full rate R
// shared FIFO-order between the flow of interest and greedy cross traffic
// is simulated as one merged greedy source — the worst case for every
// byte's virtual delay, and with both flows bursting at t = 0 the
// worst-delayed byte can always be attributed to the flow of interest
// (the cross flow fills the front of the burst, the foi the tail). Every
// rung's analytic delay bound for the flow of interest must therefore
// cover the simulated p100 delay.

import (
	"math/rand"
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

func TestRungBoundsCoverFIFOSim(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		packet := units.Bytes(float64(int(8) << rng.Intn(3)))
		rf := units.Rate(50 + rng.Float64()*200)
		bf := units.Bytes(rng.Float64() * 100)
		rc := units.Rate(50 + rng.Float64()*200)
		bc := units.Bytes(rng.Float64() * 200)
		total := rf + rc
		R := total.Mul(1.2 + rng.Float64())
		T := time.Duration(rng.Intn(40)) * time.Millisecond

		p := core.Pipeline{
			Name:    "fifo-sim",
			Arrival: core.Arrival{Rate: rf, Burst: bf, MaxPacket: packet},
			Nodes: []core.Node{{
				Name: "s", Rate: R, Latency: T,
				JobIn: packet, JobOut: packet, MaxPacket: packet,
				CrossRate: rc, CrossBurst: bc,
			}},
		}

		sp := sim.New(sim.SourceConfig{
			Rate:       total,
			PacketSize: packet,
			Burst:      bf + bc,
			TotalInput: units.Bytes(float64(total) * 2),
		}, uint64(trial)+5)
		scfg := sim.StageFromRate("s", R, R, packet, packet)
		scfg.Startup = T
		sp.Add(scfg)
		res, err := sp.Run()
		if err != nil {
			t.Fatal(err)
		}

		for _, r := range core.Rungs() {
			bound := core.RungDelayBound(p, r)
			if got := res.DelayMax.Seconds(); got > bound*(1+1e-9) {
				t.Errorf("trial %d: rung %v bound %.6fs below simulated FIFO delay %.6fs\nR=%v T=%v foi=(%v,%v) cross=(%v,%v) packet=%v",
					trial, r, bound, got, R, T, rf, bf, rc, bc, packet)
			}
		}
	}
}
