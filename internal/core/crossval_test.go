package core_test

// Randomized cross-validation of the analytic model against the
// discrete-event simulator: for arbitrary stable pipelines, the simulated
// virtual delay and backlog must stay within the bounds derived from the
// per-node packetized service curves (chain concatenation plus the
// aggregation-latency terms). This is the paper's central claim exercised
// over a whole family of systems rather than two case studies.

import (
	"math/rand"
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

type cfg struct {
	arrival core.Arrival
	nodes   []core.Node
	// simBandHigh scales each node's best-case sim rate above the
	// guaranteed rate used by the model.
	simBandHigh float64
}

func randomConfig(rng *rand.Rand) cfg {
	n := 1 + rng.Intn(3)
	arrRate := units.Rate(100 + rng.Float64()*400)
	packet := units.Bytes(float64(int(8) << rng.Intn(4))) // 8..64
	nodes := make([]core.Node, n)
	for i := range nodes {
		nodes[i] = core.Node{
			Name:    string(rune('a' + i)),
			Rate:    arrRate.Mul(1.15 + rng.Float64()*2), // stable with margin
			Latency: time.Duration(rng.Intn(50)) * time.Millisecond,
			JobIn:   packet.Mul(float64(int(1) << rng.Intn(3))), // packet..4*packet
		}
		nodes[i].JobOut = nodes[i].JobIn
		nodes[i].MaxPacket = nodes[i].JobIn
	}
	return cfg{
		arrival: core.Arrival{
			Rate:      arrRate,
			Burst:     units.Bytes(rng.Float64() * 200),
			MaxPacket: packet,
		},
		nodes:       nodes,
		simBandHigh: 1 + rng.Float64()*0.3,
	}
}

// chainBound computes the conservative end-to-end delay and backlog bounds
// from the per-node analysis: the concatenated packetized service curves
// with the aggregation delays inserted as pure-delay elements — exactly
// ConcatenatedBeta, the curve that backs admission promises. No
// discretization slack is added on top: AlphaPrime already dominates the
// source's packet staircase, and the job-fill hold-back lives in the chain
// curve via the grain-based aggregation charge.
func chainBound(t *testing.T, a *core.Analysis) (delay float64, backlog float64) {
	t.Helper()
	chain := a.ConcatenatedBeta()
	delay = curve.HDev(a.AlphaPrime, chain)
	backlog = curve.VDev(a.AlphaPrime, chain)
	return delay, backlog
}

func TestCrossValidationSimWithinBounds(t *testing.T) {
	// Several independent draw sequences: the bounds must hold for any
	// generated family, not one frozen math/rand stream.
	for _, src := range []int64{1234, 99, 20260807} {
		rng := rand.New(rand.NewSource(src))
		testCrossValidationSimWithinBounds(t, rng)
	}
}

func testCrossValidationSimWithinBounds(t *testing.T, rng *rand.Rand) {
	for trial := 0; trial < 60; trial++ {
		c := randomConfig(rng)
		p := core.Pipeline{Name: "xval", Arrival: c.arrival, Nodes: c.nodes}
		a, err := core.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.Overloaded {
			t.Fatalf("trial %d: config should be stable", trial)
		}
		delayBound, backlogBound := chainBound(t, a)

		// Simulate: worst-case service at exactly the guaranteed rate up to
		// simBandHigh above it; stage startup = model latency.
		sp := sim.New(sim.SourceConfig{
			Rate:       c.arrival.Rate,
			PacketSize: c.arrival.MaxPacket,
			Burst:      c.arrival.Burst,
			TotalInput: units.Bytes(float64(c.arrival.Rate) * 2), // ~2 s of data
		}, uint64(trial)+1)
		for _, nd := range c.nodes {
			scfg := sim.StageFromRate(nd.Name, nd.Rate, nd.Rate.Mul(c.simBandHigh), nd.JobIn, nd.JobOut)
			scfg.Startup = nd.Latency
			sp.Add(scfg)
		}
		res, err := sp.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Tolerance is float rounding only (relative 1e-9): both sides are
		// exact curve algebra and event arithmetic, so a sound model needs
		// no packet or byte of structural headroom.
		if got := res.DelayMax.Seconds(); got > delayBound*(1+1e-9) {
			t.Errorf("trial %d: sim delay %.4fs exceeds chain bound %.4fs\narrival %+v nodes %+v",
				trial, got, delayBound, c.arrival, c.nodes)
		}
		if got := float64(res.MaxBacklog); got > backlogBound*(1+1e-9) {
			t.Errorf("trial %d: sim backlog %.1f exceeds chain bound %.1f", trial, got, backlogBound)
		}
		// Throughput sanity: the pipeline is stable, so everything drains
		// at the offered rate.
		want := float64(c.arrival.Rate) * 2
		if got := float64(res.OutputInput); got < want*(1-1e-9) || got > want*(1+1e-9) {
			t.Errorf("trial %d: conservation broken: %v vs %v", trial, got, want)
		}
	}
}

// The same cross-validation under failure injection: a stalling stage is
// bounded by the model with the degraded (duty-cycled) rate and one extra
// stall of latency.
func TestCrossValidationWithStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 20; trial++ {
		arrRate := units.Rate(100 + rng.Float64()*200)
		fullRate := arrRate.Mul(1.6 + rng.Float64())
		stallEvery := time.Duration(50+rng.Intn(100)) * time.Millisecond
		stallFor := time.Duration(5+rng.Intn(20)) * time.Millisecond
		duty := float64(stallEvery) / float64(stallEvery+stallFor)
		degraded := fullRate.Mul(duty)
		if float64(degraded) <= float64(arrRate)*1.05 {
			continue // keep a stability margin
		}
		job := units.Bytes(16)

		p := core.Pipeline{
			Name:    "stall",
			Arrival: core.Arrival{Rate: arrRate, Burst: 50, MaxPacket: 16},
			Nodes: []core.Node{{
				Name: "srv", Rate: degraded, Latency: stallFor,
				JobIn: job, JobOut: job, MaxPacket: job,
			}},
		}
		a, err := core.Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		delayBound, backlogBound := chainBound(t, a)

		scfg := sim.StageFromRate("srv", fullRate, fullRate, job, job)
		scfg.StallEvery = stallEvery
		scfg.StallFor = stallFor
		sp := sim.New(sim.SourceConfig{
			Rate: arrRate, PacketSize: 16, Burst: 50,
			TotalInput: units.Bytes(float64(arrRate) * 2),
		}, uint64(trial)+77).Add(scfg)
		res, err := sp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.DelayMax.Seconds(); got > delayBound+1e-9 {
			t.Errorf("trial %d: stalled sim delay %.4fs exceeds degraded bound %.4fs",
				trial, got, delayBound)
		}
		if got := float64(res.MaxBacklog); got > backlogBound+1e-6 {
			t.Errorf("trial %d: stalled sim backlog %.1f exceeds bound %.1f", trial, got, backlogBound)
		}
	}
}
