package core

import (
	"math"
	"time"

	"streamcalc/internal/units"
)

// OverloadAnalysis quantifies the transient behaviour when the arrival rate
// exceeds the sustained service rate (R_alpha > R_beta) — the regime the
// paper's future work calls out. Steady-state network-calculus bounds are
// infinite there, but the finite-horizon view still answers the questions a
// deployment engineer has: how fast does backlog grow, when does a given
// buffer overflow, and what arrival rate would the system tolerate.
type OverloadAnalysis struct {
	// Overloaded is false when R_alpha <= R_beta; the remaining fields are
	// then zero and BacklogAt/TimeToFill degrade gracefully.
	Overloaded bool
	// ArrivalRate and ServiceRate are input-referred long-run rates of the
	// arrival curve and of the bottleneck service.
	ArrivalRate units.Rate
	ServiceRate units.Rate
	// GrowthRate = ArrivalRate - ServiceRate (> 0 iff Overloaded): the
	// asymptotic rate at which backlog accumulates.
	GrowthRate units.Rate
	// InitialBurst is the burst (plus packetization) that lands immediately.
	InitialBurst units.Bytes
	// Latency is the cumulative latency during which no output is produced.
	Latency time.Duration
	// SustainableRate is the largest arrival rate with finite bounds — the
	// bottleneck's sustained input-referred rate. "How much must arrivals be
	// throttled" for queues at risk of overflowing.
	SustainableRate units.Rate
}

// AnalyzeOverload inspects the pipeline's overload behaviour. It is valid
// for both regimes: when the pipeline is not overloaded the result simply
// reports Overloaded == false and a zero growth rate.
func AnalyzeOverload(p Pipeline) (*OverloadAnalysis, error) {
	a, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	o := &OverloadAnalysis{
		ArrivalRate:     p.Arrival.Rate,
		ServiceRate:     a.ThroughputLower,
		InitialBurst:    p.Arrival.Burst + p.Arrival.MaxPacket,
		Latency:         a.TotalLatency,
		SustainableRate: a.ThroughputLower,
	}
	if float64(o.ArrivalRate) > float64(o.ServiceRate) {
		o.Overloaded = true
		o.GrowthRate = o.ArrivalRate - o.ServiceRate
	}
	return o, nil
}

// BacklogAt returns the worst-case backlog after the system has been running
// for d: the vertical gap between the arrival curve and the bottleneck
// service curve at horizon d. This is finite for every finite d even under
// overload (the finite-horizon transient bound).
func (o *OverloadAnalysis) BacklogAt(d time.Duration) units.Bytes {
	t := d.Seconds()
	arr := float64(o.InitialBurst) + float64(o.ArrivalRate)*t
	served := float64(o.ServiceRate) * math.Max(0, t-o.Latency.Seconds())
	if served > arr {
		served = arr
	}
	return units.Bytes(arr - served)
}

// TimeToFill returns how long the system can run before the total backlog
// exceeds buffer, and reached=false when the buffer is never exceeded
// (non-overloaded regime with a sufficient buffer).
func (o *OverloadAnalysis) TimeToFill(buffer units.Bytes) (d time.Duration, reached bool) {
	if float64(buffer) < float64(o.InitialBurst) {
		return 0, true // the initial burst alone overflows it
	}
	// Phase 1: during the latency window, backlog grows at the arrival rate.
	tl := o.Latency.Seconds()
	endOfLatency := float64(o.InitialBurst) + float64(o.ArrivalRate)*tl
	if endOfLatency >= float64(buffer) {
		t := (float64(buffer) - float64(o.InitialBurst)) / float64(o.ArrivalRate)
		return dur(t), true
	}
	// Phase 2: backlog grows at GrowthRate.
	if !o.Overloaded || o.GrowthRate <= 0 {
		return 0, false
	}
	t := tl + (float64(buffer)-endOfLatency)/float64(o.GrowthRate)
	return dur(t), true
}
