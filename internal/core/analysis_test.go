package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// simple builds a one-node pipeline for closed-form checks.
func simple(arrRate units.Rate, burst units.Bytes, svcRate units.Rate, lat time.Duration) Pipeline {
	return Pipeline{
		Name:    "simple",
		Arrival: Arrival{Rate: arrRate, Burst: burst},
		Nodes: []Node{{
			Name: "srv", Rate: svcRate, Latency: lat, JobIn: 1, JobOut: 1,
		}},
	}
}

func TestAnalyzeSingleNodeClosedForms(t *testing.T) {
	// alpha = 2 MiB/s with 5 MiB burst; beta = 4 MiB/s after 3 s.
	p := simple(2*units.MiBPerSec, 5*units.MiB, 4*units.MiBPerSec, 3*time.Second)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// d <= T + b/R = 3 + 5/4 = 4.25 s.
	wantD := 4250 * time.Millisecond
	if diff := a.DelayBound - wantD; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("delay bound = %v, want %v", a.DelayBound, wantD)
	}
	// x <= b + R_alpha*T = 5 + 2*3 = 11 MiB.
	if math.Abs(float64(a.BacklogBound-11*units.MiB)) > 1e3 {
		t.Errorf("backlog bound = %v, want 11 MiB", a.BacklogBound)
	}
	// Lower bound capped by the offered load (arrival 2 < service 4).
	if a.ThroughputLower != 2*units.MiBPerSec {
		t.Errorf("lower throughput = %v", a.ThroughputLower)
	}
	// Upper bound limited by the arrival rate (gamma has rate 4).
	if a.ThroughputUpper != 2*units.MiBPerSec {
		t.Errorf("upper throughput = %v", a.ThroughputUpper)
	}
	// Output bound: leaky bucket with burst b + rT = 5 + 2*3 = 11 MiB.
	ob := a.OutputBound
	if math.Abs(ob.Burst()-float64(11*units.MiB)) > 1e3 {
		t.Errorf("output burst = %v, want 11 MiB", units.Bytes(ob.Burst()))
	}
	if math.Abs(ob.UltimateSlope()-float64(2*units.MiBPerSec)) > 1 {
		t.Errorf("output rate = %v", units.Rate(ob.UltimateSlope()))
	}
	if a.Overloaded {
		t.Error("not overloaded")
	}
}

func TestAnalyzePacketization(t *testing.T) {
	p := simple(2, 5, 4, 3*time.Second)
	p.Arrival.MaxPacket = 2
	p.Nodes[0].MaxPacket = 4
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// alpha' = alpha + l_max: burst 5+2 = 7.
	if got := a.AlphaPrime.Burst(); math.Abs(got-7) > 1e-9 {
		t.Errorf("alpha' burst = %v", got)
	}
	// beta' = [beta - 4]+ : latency grows by 4/4 = 1 s -> node beta latency 4 s.
	if got := a.Nodes[0].Beta.Latency(); math.Abs(got-4) > 1e-9 {
		t.Errorf("beta' latency = %v", got)
	}
	// End-to-end delay: T + b'/R where the packetized node latency is used
	// in the per-node curve but the chain beta uses T_tot (= node latency).
	if a.DelayBound <= 0 {
		t.Error("delay bound must be positive")
	}
}

func TestAnalyzeChainConcatenation(t *testing.T) {
	p := Pipeline{
		Name:    "chain",
		Arrival: Arrival{Rate: 2, Burst: 1},
		Nodes: []Node{
			{Name: "a", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1},
			{Name: "b", Rate: 5, Latency: 2 * time.Second, JobIn: 1, JobOut: 1},
			{Name: "c", Rate: 8, Latency: time.Second, JobIn: 1, JobOut: 1},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.BottleneckIndex != 1 {
		t.Errorf("bottleneck = %d, want 1", a.BottleneckIndex)
	}
	if a.ThroughputLower != 2 { // capped by the 2 B/s arrival
		t.Errorf("lower = %v", a.ThroughputLower)
	}
	if a.TotalLatency != 4*time.Second {
		t.Errorf("total latency = %v", a.TotalLatency)
	}
	// Chain beta = RateLatency(5, 4s).
	if got := a.Beta.Latency(); math.Abs(got-4) > 1e-9 {
		t.Errorf("beta latency = %v", got)
	}
	if got := a.Beta.UltimateSlope(); math.Abs(got-5) > 1e-9 {
		t.Errorf("beta rate = %v", got)
	}
}

func TestAnalyzeJobRatioNormalization(t *testing.T) {
	// A 2:1 filter halves downstream data: a downstream stage measured at
	// rate 3 handles 6 input-referred bytes/s.
	p := Pipeline{
		Name:    "filter",
		Arrival: Arrival{Rate: 4, Burst: 1},
		Nodes: []Node{
			{Name: "filter", Rate: 8, JobIn: 2, JobOut: 1},
			{Name: "down", Rate: 3, JobIn: 1, JobOut: 1},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Nodes[1].Rate; math.Abs(float64(got)-6) > 1e-9 {
		t.Errorf("input-referred rate = %v, want 6", got)
	}
	if got := a.Nodes[1].GainBefore; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("gain before = %v", got)
	}
	// Bottleneck is the downstream node at 6 input-referred; the offered
	// load of 4 caps the guaranteed throughput.
	if a.ThroughputLower != 4 {
		t.Errorf("lower = %v", a.ThroughputLower)
	}
}

func TestAnalyzeExpanderNormalization(t *testing.T) {
	// A 1:2 expander doubles downstream data: a stage measured at rate 8
	// handles only 4 input-referred bytes/s.
	p := Pipeline{
		Name:    "expand",
		Arrival: Arrival{Rate: 3, Burst: 0},
		Nodes: []Node{
			{Name: "expand", Rate: 8, JobIn: 1, JobOut: 2},
			{Name: "down", Rate: 8, JobIn: 1, JobOut: 1},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Nodes[1].Rate; math.Abs(float64(got)-4) > 1e-9 {
		t.Errorf("input-referred rate = %v, want 4", got)
	}
}

func TestAnalyzeAggregationLatency(t *testing.T) {
	// Node 2 collects 12-byte jobs from a stream arriving at 4 B/s:
	// aggregation adds 12/4 = 3 s. T_tot = T1 + 3 + T2.
	p := Pipeline{
		Name:    "agg",
		Arrival: Arrival{Rate: 4, Burst: 0, MaxPacket: 1},
		Nodes: []Node{
			{Name: "first", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1},
			{Name: "agg", Rate: 10, Latency: 2 * time.Second, JobIn: 12, JobOut: 12},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	na := a.Nodes[1]
	if !na.Aggregates {
		t.Fatal("node 1 must aggregate")
	}
	if na.AggregationDelay != 3*time.Second {
		t.Errorf("aggregation delay = %v, want 3 s", na.AggregationDelay)
	}
	if a.TotalLatency != 6*time.Second {
		t.Errorf("total latency = %v, want 6 s", a.TotalLatency)
	}
	// Arrival rate at node 1 is still 4 (upstream rate 10 doesn't clip it).
	if na.ArrivalRate != 4 {
		t.Errorf("arrival rate at agg node = %v", na.ArrivalRate)
	}
	// No aggregation when the upstream block already covers JobIn.
	p.Nodes[1].JobIn = 1
	p.Nodes[1].JobOut = 1
	a2, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Nodes[1].Aggregates {
		t.Error("should not aggregate")
	}
	if a2.TotalLatency != 3*time.Second {
		t.Errorf("total latency = %v, want 3 s", a2.TotalLatency)
	}
}

func TestAnalyzeOverloadedFlags(t *testing.T) {
	p := simple(10, 1, 4, time.Second)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Overloaded || !a.DelayBoundInfinite || !a.BacklogBoundInfinite {
		t.Error("overload must be flagged with infinite bounds")
	}
	if !a.Nodes[0].Overloaded {
		t.Error("node must be overloaded")
	}
	if !math.IsInf(float64(a.Nodes[0].BacklogBound), 1) {
		t.Error("node backlog must be +Inf")
	}
}

func TestAnalyzeArrivalRateClipping(t *testing.T) {
	// A slow first node clips the arrival rate seen downstream.
	p := Pipeline{
		Name:    "clip",
		Arrival: Arrival{Rate: 10, Burst: 1},
		Nodes: []Node{
			{Name: "slow", Rate: 3, JobIn: 1, JobOut: 1},
			{Name: "fast", Rate: 20, JobIn: 1, JobOut: 1},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Nodes[1].ArrivalRate; got != 3 {
		t.Errorf("downstream arrival rate = %v, want 3", got)
	}
	// Downstream node itself is fine even though the system is overloaded.
	if a.Nodes[1].Overloaded {
		t.Error("downstream node must not be overloaded")
	}
	if !a.Overloaded {
		t.Error("system is overloaded at the first node")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Pipeline{
		{},                          // no arrival rate
		{Arrival: Arrival{Rate: 1}}, // no nodes
		{Arrival: Arrival{Rate: 1, Burst: -1}, Nodes: []Node{{Rate: 1, JobIn: 1, JobOut: 1}}},
		{Arrival: Arrival{Rate: 1}, Nodes: []Node{{Rate: 0, JobIn: 1, JobOut: 1}}},
		{Arrival: Arrival{Rate: 1}, Nodes: []Node{{Rate: 1, JobIn: 0, JobOut: 1}}},
		{Arrival: Arrival{Rate: 1}, Nodes: []Node{{Rate: 2, MaxRate: 1, JobIn: 1, JobOut: 1}}},
		{Arrival: Arrival{Rate: 1}, Nodes: []Node{{Rate: 1, JobIn: 1, JobOut: 1, Latency: -time.Second}}},
		{Arrival: Arrival{Rate: 1}, Nodes: []Node{{Rate: 1, JobIn: 1, JobOut: 1, MaxPacket: -1}}},
	}
	for i, p := range cases {
		if _, err := Analyze(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSubrange(t *testing.T) {
	p := Pipeline{
		Name:    "chain",
		Arrival: Arrival{Rate: 2, Burst: 1},
		Nodes: []Node{
			{Name: "a", Rate: 10, JobIn: 1, JobOut: 1},
			{Name: "b", Rate: 5, JobIn: 1, JobOut: 1},
			{Name: "c", Rate: 8, JobIn: 1, JobOut: 1},
		},
	}
	sub, err := p.Subrange(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Nodes) != 2 || sub.Nodes[0].Name != "b" {
		t.Errorf("subrange nodes = %v", sub.Nodes)
	}
	if !strings.Contains(sub.Name, "[1:3]") {
		t.Errorf("subrange name = %q", sub.Name)
	}
	if _, err := p.Subrange(2, 1); err == nil {
		t.Error("expected error for inverted range")
	}
	if _, err := p.Subrange(0, 4); err == nil {
		t.Error("expected error for out-of-range")
	}
}

func TestBufferPlan(t *testing.T) {
	p := Pipeline{
		Name:    "chain",
		Arrival: Arrival{Rate: 2, Burst: 3},
		Nodes: []Node{
			{Name: "a", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1},
			{Name: "b", Rate: 5, Latency: time.Second, JobIn: 1, JobOut: 1},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := a.BufferPlan()
	if len(plan) != 2 {
		t.Fatalf("plan size %d", len(plan))
	}
	for _, rec := range plan {
		if rec.Infinite || rec.Capacity <= 0 {
			t.Errorf("rec %+v should be finite positive", rec)
		}
	}
	// First node: alpha=(2t+3) vs beta=(10(t-1)): vdev = 3+2 = 5.
	if got := plan[0].Capacity; math.Abs(float64(got)-5) > 1e-6 {
		t.Errorf("node a capacity = %v, want 5", got)
	}
}

func TestBufferPlanOverload(t *testing.T) {
	p := simple(10, 1, 4, time.Second)
	a, _ := Analyze(p)
	plan := a.BufferPlan()
	if !plan[0].Infinite {
		t.Error("overloaded node must report infinite buffer")
	}
}

func TestInputAtPropagation(t *testing.T) {
	p := Pipeline{
		Name:    "prop",
		Arrival: Arrival{Rate: 2, Burst: 4},
		Nodes: []Node{
			{Name: "a", Rate: 5, Latency: time.Second, JobIn: 1, JobOut: 1},
			{Name: "b", Rate: 5, JobIn: 1, JobOut: 1},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	in0 := a.InputAt(0)
	in1 := a.InputAt(1)
	// Downstream arrival bound must dominate upstream (burst grows through
	// the server) while keeping the same rate.
	if in1.Burst() < in0.Burst() {
		t.Error("burst must not shrink through a server")
	}
	if math.Abs(in1.UltimateSlope()-in0.UltimateSlope()) > 1e-9 {
		t.Error("long-run rate preserved")
	}
}

func TestNodeKindString(t *testing.T) {
	if Compute.String() != "compute" || Link.String() != "link" {
		t.Error("kind strings")
	}
	if NodeKind(42).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestGainAndJobRatio(t *testing.T) {
	n := Node{JobIn: 4, JobOut: 2}
	if n.Gain() != 0.5 || n.JobRatio() != 2 {
		t.Errorf("gain %v ratio %v", n.Gain(), n.JobRatio())
	}
}

// The analysis output-flow bound must dominate what a fluid simulation of
// the arrival through a rate-latency server can produce.
func TestOutputBoundDominatesService(t *testing.T) {
	p := simple(2, 5, 4, 3*time.Second)
	a, _ := Analyze(p)
	beta := curve.RateLatency(4, 3)
	alpha := curve.Affine(2, 5)
	for _, x := range []float64{0.5, 1, 2, 5, 10, 100} {
		served := math.Min(alpha.Value(x), beta.Value(x))
		if a.OutputBound.Value(x) < served-1e-6 {
			t.Errorf("output bound below achievable output at t=%g", x)
		}
	}
}

func TestEstimatesMatchBoundsWhenStable(t *testing.T) {
	p := simple(2*units.MiBPerSec, 5*units.MiB, 4*units.MiBPerSec, 3*time.Second)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.DelayEstimate - a.DelayBound; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("estimate %v vs bound %v", a.DelayEstimate, a.DelayBound)
	}
	if math.Abs(float64(a.BacklogEstimate-a.BacklogBound)) > 1e3 {
		t.Errorf("estimate %v vs bound %v", a.BacklogEstimate, a.BacklogBound)
	}
}

func TestEstimatesFiniteUnderOverload(t *testing.T) {
	// R_alpha > R_beta: steady-state bounds infinite, but the paper's
	// closed-form per-job estimates stay finite.
	p := simple(10, 2, 4, time.Second)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.DelayBoundInfinite {
		t.Fatal("must be overloaded")
	}
	// d = T + b/R_beta = 1 + 2/4 = 1.5 s.
	if a.DelayEstimate != 1500*time.Millisecond {
		t.Errorf("delay estimate = %v", a.DelayEstimate)
	}
	// x = b + R_alpha*T = 2 + 10 = 12.
	if math.Abs(float64(a.BacklogEstimate)-12) > 1e-9 {
		t.Errorf("backlog estimate = %v", a.BacklogEstimate)
	}
}

func TestBestGainAffectsOnlyMaxRate(t *testing.T) {
	// A compressor whose lower-bound curve assumes ratio 1.0 but whose
	// best case achieves 5x: downstream gamma rates multiply by 5.
	p := Pipeline{
		Name:    "bitw",
		Arrival: Arrival{Rate: 1000, Burst: 1},
		Nodes: []Node{
			{Name: "compress", Rate: 500, MaxRate: 800, JobIn: 10, JobOut: 10, BestGain: 0.2},
			{Name: "encrypt", Rate: 59, MaxRate: 59, JobIn: 10, JobOut: 10},
		},
	}
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// Lower-bound rates unaffected by BestGain.
	if a.Nodes[1].Rate != 59 {
		t.Errorf("encrypt rate = %v", a.Nodes[1].Rate)
	}
	// Max rate of encrypt referred through best-case gain 0.2: 59*5.
	if math.Abs(float64(a.Nodes[1].MaxRate)-295) > 1e-9 {
		t.Errorf("encrypt max rate = %v, want 295", a.Nodes[1].MaxRate)
	}
	if a.ThroughputLower != 59 {
		t.Errorf("lower = %v", a.ThroughputLower)
	}
	// Upper = min(arrival 1000, compress gamma 800, encrypt gamma 295).
	if math.Abs(float64(a.ThroughputUpper)-295) > 1e-9 {
		t.Errorf("upper = %v", a.ThroughputUpper)
	}
}

func TestBestGainValidation(t *testing.T) {
	p := Pipeline{
		Arrival: Arrival{Rate: 1},
		Nodes:   []Node{{Rate: 1, JobIn: 1, JobOut: 1, BestGain: -1}},
	}
	if _, err := Analyze(p); err == nil {
		t.Error("negative BestGain must fail validation")
	}
}
