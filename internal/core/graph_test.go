package core

import (
	"math"
	"testing"
	"time"
)

func chainGraph() Graph {
	return Graph{
		Name:    "chain",
		Arrival: Arrival{Rate: 2, Burst: 5},
		Nodes: []Node{
			{Name: "a", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1},
			{Name: "b", Rate: 4, Latency: 2 * time.Second, JobIn: 1, JobOut: 1},
		},
		Edges: []Edge{
			{From: "", To: "a"},
			{From: "a", To: "b"},
		},
	}
}

func TestGraphChainMatchesLocalBounds(t *testing.T) {
	g := chainGraph()
	res, err := AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("chain is stable")
	}
	// Node a: alpha (2t+5) vs RL(10, 1): delay = 1 + 5/10 = 1.5.
	if d := res.Nodes["a"].DelayBound.Seconds(); math.Abs(d-1.5) > 1e-9 {
		t.Errorf("a delay = %v", d)
	}
	// Order respects the chain.
	if res.Order[0] != "a" || res.Order[1] != "b" {
		t.Errorf("order = %v", res.Order)
	}
	// Critical path covers both nodes.
	if len(res.CriticalPath) != 2 {
		t.Errorf("critical path = %v", res.CriticalPath)
	}
	// Capacity: node b saturates first at rate 4.
	if math.Abs(float64(res.MaxSourceRate)-4) > 1e-9 {
		t.Errorf("capacity = %v", res.MaxSourceRate)
	}
	if res.DelayBound <= res.Nodes["a"].DelayBound {
		t.Error("path delay must exceed a single node's")
	}
}

func TestGraphPartitionForkJoin(t *testing.T) {
	// Source splits 60/40 across two workers which merge into a sink.
	g := Graph{
		Name:    "forkjoin",
		Arrival: Arrival{Rate: 10, Burst: 2},
		Nodes: []Node{
			{Name: "split", Rate: 100, JobIn: 1, JobOut: 1},
			{Name: "w1", Rate: 8, JobIn: 1, JobOut: 1},
			{Name: "w2", Rate: 6, JobIn: 1, JobOut: 1},
			{Name: "join", Rate: 100, JobIn: 1, JobOut: 1},
		},
		Edges: []Edge{
			{From: "", To: "split"},
			{From: "split", To: "w1", Fraction: 0.6},
			{From: "split", To: "w2", Fraction: 0.4},
			{From: "w1", To: "join"},
			{From: "w2", To: "join"},
		},
	}
	res, err := AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("stable: w1 sees 6 <= 8, w2 sees 4 <= 6")
	}
	// Branch arrival rates.
	if r := res.Nodes["w1"].AlphaIn.UltimateSlope(); math.Abs(r-6) > 1e-6 {
		t.Errorf("w1 arrival rate = %v, want 6", r)
	}
	if r := res.Nodes["w2"].AlphaIn.UltimateSlope(); math.Abs(r-4) > 1e-6 {
		t.Errorf("w2 arrival rate = %v, want 4", r)
	}
	// The join sees the sum of both branches back at ~the source rate.
	if r := res.Nodes["join"].AlphaIn.UltimateSlope(); math.Abs(r-10) > 1e-6 {
		t.Errorf("join arrival rate = %v, want 10", r)
	}
	// Capacity: w1 at 6/8 utilization is the binding branch:
	// scale = 8/6 -> capacity 13.33.
	if c := float64(res.MaxSourceRate); math.Abs(c-10*8.0/6.0) > 1e-6 {
		t.Errorf("capacity = %v, want 13.33", c)
	}
}

func TestGraphBroadcastOverloads(t *testing.T) {
	// Broadcasting the full flow to a slow branch overloads it.
	g := Graph{
		Arrival: Arrival{Rate: 10, Burst: 1},
		Nodes: []Node{
			{Name: "tap", Rate: 100, JobIn: 1, JobOut: 1},
			{Name: "slow-analytics", Rate: 5, JobIn: 1, JobOut: 1},
			{Name: "main", Rate: 50, JobIn: 1, JobOut: 1},
		},
		Edges: []Edge{
			{From: "", To: "tap"},
			{From: "tap", To: "slow-analytics", Fraction: 1},
			{From: "tap", To: "main", Fraction: 1},
		},
	}
	res, err := AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Fatal("slow branch must overload")
	}
	if !res.Nodes["slow-analytics"].Overloaded {
		t.Error("slow branch not flagged")
	}
	if res.Nodes["main"].Overloaded {
		t.Error("main branch is fine")
	}
	if !res.DelayBoundInfinite && res.CriticalPath[len(res.CriticalPath)-1] == "slow-analytics" {
		t.Error("critical path through the overloaded node must be infinite")
	}
	if !math.IsInf(float64(res.TotalBacklog), 1) {
		t.Error("total backlog must be infinite")
	}
}

func TestGraphGainScaling(t *testing.T) {
	// A 4:1 filter upstream quarters the volume its successor sees.
	g := Graph{
		Arrival: Arrival{Rate: 8, Burst: 4},
		Nodes: []Node{
			{Name: "filter", Rate: 20, JobIn: 4, JobOut: 1},
			{Name: "down", Rate: 3, JobIn: 1, JobOut: 1},
		},
		Edges: []Edge{
			{From: "", To: "filter"},
			{From: "filter", To: "down"},
		},
	}
	res, err := AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Nodes["down"].AlphaIn.UltimateSlope(); math.Abs(r-2) > 1e-6 {
		t.Errorf("downstream local arrival rate = %v, want 2", r)
	}
	if !res.Stable {
		t.Error("stable: 2 <= 3")
	}
}

func TestGraphValidationErrors(t *testing.T) {
	base := chainGraph()

	noNodes := base
	noNodes.Nodes = nil
	if _, err := AnalyzeGraph(noNodes); err == nil {
		t.Error("no nodes must fail")
	}

	dup := base
	dup.Nodes = []Node{
		{Name: "a", Rate: 1, JobIn: 1, JobOut: 1},
		{Name: "a", Rate: 1, JobIn: 1, JobOut: 1},
	}
	if _, err := AnalyzeGraph(dup); err == nil {
		t.Error("duplicate names must fail")
	}

	badEdge := base
	badEdge.Edges = []Edge{{From: "", To: "nope"}}
	if _, err := AnalyzeGraph(badEdge); err == nil {
		t.Error("unknown edge target must fail")
	}

	badFrom := base
	badFrom.Edges = []Edge{{From: "ghost", To: "a"}}
	if _, err := AnalyzeGraph(badFrom); err == nil {
		t.Error("unknown edge source must fail")
	}

	badFraction := base
	badFraction.Edges = []Edge{{From: "", To: "a", Fraction: 1.5}}
	if _, err := AnalyzeGraph(badFraction); err == nil {
		t.Error("fraction > 1 must fail")
	}

	cycle := base
	cycle.Edges = []Edge{
		{From: "", To: "a"},
		{From: "a", To: "b"},
		{From: "b", To: "a"},
	}
	if _, err := AnalyzeGraph(cycle); err == nil {
		t.Error("cycle must fail")
	}

	orphan := base
	orphan.Edges = []Edge{{From: "", To: "a"}} // b unreachable
	if _, err := AnalyzeGraph(orphan); err == nil {
		t.Error("node without incoming edges must fail")
	}

	reserved := base
	reserved.Nodes = []Node{{Name: SourceName, Rate: 1, JobIn: 1, JobOut: 1}}
	if _, err := AnalyzeGraph(reserved); err == nil {
		t.Error("reserved node name must fail")
	}
}

func TestGraphChainAgreesWithPipeline(t *testing.T) {
	// The same stable chain analyzed as a Pipeline and as a Graph must
	// agree on per-node utilization and stability (the Graph's path delay
	// is conservative: >= the pipeline's folded bound is not required, but
	// node-level delays coincide for the first node).
	p := Pipeline{
		Arrival: Arrival{Rate: 2, Burst: 5},
		Nodes: []Node{
			{Name: "a", Rate: 10, Latency: time.Second, JobIn: 1, JobOut: 1},
		},
	}
	pa, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	g := Graph{
		Arrival: p.Arrival,
		Nodes:   p.Nodes,
		Edges:   []Edge{{From: "", To: "a"}},
	}
	ga, err := AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	pd := pa.Nodes[0].DelayBound
	gd := ga.Nodes["a"].DelayBound
	if d := pd - gd; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("pipeline %v vs graph %v", pd, gd)
	}
}
