// Package core implements the paper's primary contribution: deterministic
// network-calculus models of streaming data applications running on
// heterogeneous platforms, where pipeline stages are either computations
// (FPGA/GPU/CPU kernels) or communications (network links, PCIe buses).
//
// A pipeline is a chain of nodes. Each node is characterized by isolated
// measurements — sustained and best-case service rates, initial latency, the
// data block sizes it consumes and emits (the job ratio), and its maximum
// packet size. The model:
//
//   - normalizes all data volumes to the pipeline input (following
//     Timcheck & Buhler), so every curve is expressed in input-referred
//     bytes;
//   - applies the packetizer adjustments alpha' = alpha + l_max·1_{t>0} and
//     beta' = [beta - l_max]⁺;
//   - accounts for job aggregation: a node that must collect b_n bytes
//     before dispatching adds b_n / R_alpha,n-1 to the cumulative latency
//     (the paper's T_n^tot recursion);
//   - produces end-to-end and per-node bounds: virtual delay (horizontal
//     deviation), backlog (vertical deviation), output arrival bound
//     alpha* = (alpha ⊗ gamma) ⊘ beta, and lower/upper throughput bounds.
package core

import (
	"errors"
	"fmt"
	"time"

	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// NodeKind distinguishes computation stages from communication stages. Both
// are modeled with rate-latency service curves; the distinction is carried
// through for reporting and for the bump-in-the-wire data-path comparisons.
type NodeKind int

const (
	// Compute marks a computational stage (kernel, filter, codec, ...).
	Compute NodeKind = iota
	// Link marks a communication stage (network link, PCIe bus, ...).
	Link
)

// String returns "compute" or "link".
func (k NodeKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Link:
		return "link"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node describes one stage of a streaming pipeline via measurements taken in
// isolation. Rates and block sizes are in the node's *local* data units
// (what the stage itself sees); the analysis converts everything to
// input-referred units using the chain of job ratios.
type Node struct {
	// Name identifies the stage in reports.
	Name string
	// Kind is Compute or Link.
	Kind NodeKind

	// Rate is the sustained (guaranteed, worst-case) service rate — the R of
	// the rate-latency service curve beta. Required > 0.
	Rate units.Rate
	// MaxRate is the best-case service rate — the R of the maximum service
	// curve gamma. Defaults to Rate when zero.
	MaxRate units.Rate

	// Latency is the node's initial delay T (pipeline fill, kernel launch,
	// link propagation).
	Latency time.Duration

	// JobIn is the data block size the node consumes per activation. When it
	// exceeds the block size delivered by the upstream node, the node
	// aggregates (the paper's "job ratio" effect) and the aggregation time
	// joins the latency recursion. Required > 0.
	JobIn units.Bytes
	// JobOut is the block size emitted per activation. Required > 0.
	// JobOut/JobIn is the node's data volume gain (e.g. < 1 for a filter or
	// compressor, > 1 for an expander or decompressor).
	JobOut units.Bytes

	// MaxPacket is l_max, the maximum packet the node's packetizer releases;
	// zero models a fluid (bit-by-bit) server.
	MaxPacket units.Bytes

	// BestGain, when non-zero, is the data-volume gain used for the
	// maximum service curve gamma instead of JobOut/JobIn. The paper's
	// bump-in-the-wire model uses this for the compressor: the lower-bound
	// service curve assumes a compression ratio of 1.0 (gain 1) while the
	// maximum service curve assumes the largest observed ratio (gain
	// 1/ratio), which multiplies every downstream maximum service rate by
	// the ratio until decompression removes it.
	BestGain float64

	// CrossRate/CrossBurst, when CrossRate > 0, describe competing traffic
	// (leaky bucket, in the node's local units) that shares this node under
	// blind multiplexing. The flow of interest then only receives the
	// residual service [beta - alpha_cross]⁺ — a multi-flow extension of
	// the paper's single-flow model. CrossRate must stay below Rate.
	CrossRate  units.Rate
	CrossBurst units.Bytes
}

// bestGainOrGain returns BestGain, defaulting to Gain().
func (n Node) bestGainOrGain() float64 {
	if n.BestGain > 0 {
		return n.BestGain
	}
	return n.Gain()
}

// Gain returns the node's data-volume gain JobOut/JobIn.
func (n Node) Gain() float64 { return float64(n.JobOut) / float64(n.JobIn) }

// JobRatio returns JobIn/JobOut as the paper's Figure 3 annotates nodes
// (ratio of input block size to output block size).
func (n Node) JobRatio() float64 { return float64(n.JobIn) / float64(n.JobOut) }

func (n Node) validate(i int) error {
	if n.Rate <= 0 {
		return fmt.Errorf("core: node %d (%s): Rate must be positive", i, n.Name)
	}
	if n.MaxRate < 0 {
		return fmt.Errorf("core: node %d (%s): MaxRate must be non-negative", i, n.Name)
	}
	if n.MaxRate > 0 && n.MaxRate < n.Rate {
		return fmt.Errorf("core: node %d (%s): MaxRate %v below sustained Rate %v", i, n.Name, n.MaxRate, n.Rate)
	}
	if n.Latency < 0 {
		return fmt.Errorf("core: node %d (%s): negative Latency", i, n.Name)
	}
	if n.JobIn <= 0 || n.JobOut <= 0 {
		return fmt.Errorf("core: node %d (%s): JobIn and JobOut must be positive", i, n.Name)
	}
	if n.MaxPacket < 0 {
		return fmt.Errorf("core: node %d (%s): negative MaxPacket", i, n.Name)
	}
	if n.BestGain < 0 {
		return fmt.Errorf("core: node %d (%s): negative BestGain", i, n.Name)
	}
	if n.CrossRate < 0 || n.CrossBurst < 0 {
		return fmt.Errorf("core: node %d (%s): negative cross-traffic parameters", i, n.Name)
	}
	if n.CrossRate >= n.Rate && n.CrossRate > 0 {
		return fmt.Errorf("core: node %d (%s): cross traffic (%v) starves the node (rate %v)", i, n.Name, n.CrossRate, n.Rate)
	}
	return nil
}

// maxRateOrRate returns MaxRate, defaulting to Rate.
func (n Node) maxRateOrRate() units.Rate {
	if n.MaxRate > 0 {
		return n.MaxRate
	}
	return n.Rate
}

// Bucket is one leaky-bucket constraint rate·t + burst.
type Bucket struct {
	Rate  units.Rate
	Burst units.Bytes
}

// Arrival describes the flow offered to the pipeline as a leaky-bucket
// (affine) arrival curve alpha(t) = Rate·t + Burst, packetized with packets
// of at most MaxPacket bytes. Additional buckets in Extra tighten the
// envelope to their pointwise minimum — the "variable rate" arrival curves
// of the paper's future work (e.g. a fast short-term peak rate combined
// with a slower sustained rate).
type Arrival struct {
	// Rate is the long-run arrival rate R_alpha. Required > 0.
	Rate units.Rate
	// Burst is the instantaneous burst allowance b.
	Burst units.Bytes
	// MaxPacket is l_max of the arriving flow's packetizer (0 = fluid).
	MaxPacket units.Bytes
	// Extra lists additional leaky-bucket constraints; the arrival curve
	// is the minimum of all buckets (a concave piecewise-linear envelope).
	Extra []Bucket
}

func (a Arrival) validate() error {
	if a.Rate <= 0 {
		return errors.New("core: arrival Rate must be positive")
	}
	if a.Burst < 0 || a.MaxPacket < 0 {
		return errors.New("core: arrival Burst and MaxPacket must be non-negative")
	}
	for i, b := range a.Extra {
		if b.Rate <= 0 || b.Burst < 0 {
			return fmt.Errorf("core: arrival Extra[%d]: Rate must be positive, Burst non-negative", i)
		}
	}
	return nil
}

// Validate checks the arrival description for structural errors. It is the
// exported form of the check Analyze performs, for callers (like the
// admission controller) that need to reject malformed specs before building
// curves from them.
func (a Arrival) Validate() error { return a.validate() }

// Envelope returns the arrival curve: the concave envelope
// min_i(Rate_i·t + Burst_i) over the primary bucket and all Extra buckets,
// built in one pass by curve.Envelope. The arrival must be valid.
func (a Arrival) Envelope() curve.Curve {
	buckets := make([]curve.Bucket, 0, 1+len(a.Extra))
	buckets = append(buckets, curve.Bucket{Rate: float64(a.Rate), Burst: float64(a.Burst)})
	for _, b := range a.Extra {
		buckets = append(buckets, curve.Bucket{Rate: float64(b.Rate), Burst: float64(b.Burst)})
	}
	return curve.Envelope(buckets)
}

// PacketizedEnvelope returns the packetizer-adjusted arrival curve
// alpha' = alpha + l_max·1_{t>0} (equal to Envelope when MaxPacket is 0).
func (a Arrival) PacketizedEnvelope() curve.Curve {
	alpha := a.Envelope()
	if a.MaxPacket > 0 {
		alpha = curve.AddBurst(alpha, float64(a.MaxPacket))
	}
	return alpha
}

// Pipeline is a chain of nodes fed by an arrival flow. Data flows through
// Nodes in slice order (a directed chain, the common shape of the streaming
// applications the paper models).
type Pipeline struct {
	Name    string
	Arrival Arrival
	Nodes   []Node
	// Rung selects the multi-flow analysis tightness (the FIFO ladder) for
	// nodes carrying cross traffic. The zero value resolves to RungBlind,
	// the pre-ladder behavior.
	Rung Rung
}

// Validate checks the pipeline description for structural errors.
func (p Pipeline) Validate() error {
	if err := p.Arrival.validate(); err != nil {
		return err
	}
	if len(p.Nodes) == 0 {
		return errors.New("core: pipeline has no nodes")
	}
	for i, n := range p.Nodes {
		if err := n.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Subrange returns a pipeline consisting of nodes [from, to) of p with the
// same arrival specification — the paper's "any desired subset of the
// streaming application" analysis. The caller usually replaces the arrival
// with the propagated output bound at node from (see Analysis.InputAt).
func (p Pipeline) Subrange(from, to int) (Pipeline, error) {
	if from < 0 || to > len(p.Nodes) || from >= to {
		return Pipeline{}, fmt.Errorf("core: invalid subrange [%d, %d) of %d nodes", from, to, len(p.Nodes))
	}
	sub := p
	sub.Name = fmt.Sprintf("%s[%d:%d]", p.Name, from, to)
	sub.Nodes = append([]Node(nil), p.Nodes[from:to]...)
	return sub, nil
}
