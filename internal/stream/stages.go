package stream

import (
	"bytes"
	"fmt"
	"io"
	"net"

	"streamcalc/internal/aesstream"
	"streamcalc/internal/lz4"
)

// This file provides ready-made stages wrapping the repository's software
// kernels, so the bump-in-the-wire application can be *run* (not only
// modeled): LZ4 compression/decompression, AES-256-CBC encryption/
// decryption, and a real TCP loopback hop.

// CompressLZ4 returns a stage that LZ4-compresses each chunk, prefixing a
// 4-byte big-endian length of the original data so decompression can size
// its buffers.
func CompressLZ4() Stage {
	return StageFunc{
		StageName: "compress",
		Fn: func(c Chunk) ([]Chunk, error) {
			out := make([]byte, 0, lz4.MaxCompressedLen(len(c.Data))+4)
			out = append(out,
				byte(len(c.Data)>>24), byte(len(c.Data)>>16),
				byte(len(c.Data)>>8), byte(len(c.Data)))
			out = lz4.Compress(out, c.Data)
			return []Chunk{c.Derive(out)}, nil
		},
	}
}

// DecompressLZ4 reverses CompressLZ4.
func DecompressLZ4() Stage {
	return StageFunc{
		StageName: "decompress",
		Fn: func(c Chunk) ([]Chunk, error) {
			if len(c.Data) < 4 {
				return nil, fmt.Errorf("decompress: short chunk (%d bytes)", len(c.Data))
			}
			n := int(c.Data[0])<<24 | int(c.Data[1])<<16 | int(c.Data[2])<<8 | int(c.Data[3])
			out, err := lz4.Decompress(make([]byte, 0, n), c.Data[4:], n)
			if err != nil {
				return nil, err
			}
			if len(out) != n {
				return nil, fmt.Errorf("decompress: got %d bytes, want %d", len(out), n)
			}
			return []Chunk{c.Derive(out)}, nil
		},
	}
}

// EncryptAES returns a stage that encrypts each chunk with AES-256-CBC
// (framed, fresh IV per chunk).
func EncryptAES(key []byte, ivSeed uint64) (Stage, error) {
	s, err := aesstream.New(key, ivSeed)
	if err != nil {
		return nil, err
	}
	return StageFunc{
		StageName: "encrypt",
		Fn: func(c Chunk) ([]Chunk, error) {
			return []Chunk{c.Derive(s.EncryptChunk(nil, c.Data))}, nil
		},
	}, nil
}

// DecryptAES reverses EncryptAES.
func DecryptAES(key []byte, ivSeed uint64) (Stage, error) {
	s, err := aesstream.New(key, ivSeed)
	if err != nil {
		return nil, err
	}
	return StageFunc{
		StageName: "decrypt",
		Fn: func(c Chunk) ([]Chunk, error) {
			out, rest, err := s.DecryptChunk(nil, c.Data)
			if err != nil {
				return nil, err
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("decrypt: %d trailing bytes in frame", len(rest))
			}
			return []Chunk{c.Derive(out)}, nil
		},
	}, nil
}

// tcpLoop is a Stage that round-trips every chunk through a real TCP
// connection on the loopback interface (send framed, echo back, receive),
// exercising an actual network stack inside the pipeline.
type tcpLoop struct {
	ln   net.Listener
	conn net.Conn
	rbuf []byte
}

// TCPLoopback dials a freshly started echo server on 127.0.0.1 and returns
// the stage. Close it with the returned closer when done.
func TCPLoopback() (Stage, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("stream: tcp listen: %w", err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(conn, conn) // echo
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, nil, fmt.Errorf("stream: tcp dial: %w", err)
	}
	t := &tcpLoop{ln: ln, conn: conn}
	closer := func() error {
		conn.Close()
		return ln.Close()
	}
	return t, closer, nil
}

// Name implements Stage.
func (t *tcpLoop) Name() string { return "network" }

// Process implements Stage: write a length-prefixed frame and read it back.
func (t *tcpLoop) Process(c Chunk) ([]Chunk, error) {
	var hdr [4]byte
	hdr[0], hdr[1] = byte(len(c.Data)>>24), byte(len(c.Data)>>16)
	hdr[2], hdr[3] = byte(len(c.Data)>>8), byte(len(c.Data))
	if _, err := t.conn.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("network: write header: %w", err)
	}
	if _, err := t.conn.Write(c.Data); err != nil {
		return nil, fmt.Errorf("network: write: %w", err)
	}
	if _, err := io.ReadFull(t.conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("network: read header: %w", err)
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if cap(t.rbuf) < n {
		t.rbuf = make([]byte, n)
	}
	buf := t.rbuf[:n]
	if _, err := io.ReadFull(t.conn, buf); err != nil {
		return nil, fmt.Errorf("network: read: %w", err)
	}
	return []Chunk{c.Derive(append([]byte(nil), buf...))}, nil
}

// Passthrough is an identity stage (useful as a measurement probe).
func Passthrough(name string) Stage {
	return StageFunc{
		StageName: name,
		Fn:        func(c Chunk) ([]Chunk, error) { return []Chunk{c}, nil },
	}
}

// VerifySink returns a stage that checks the stream reassembles to want,
// reporting a mismatch as a stage error at flush time.
func VerifySink(name string, want []byte) Stage {
	var got bytes.Buffer
	return StageFunc{
		StageName: name,
		Fn: func(c Chunk) ([]Chunk, error) {
			got.Write(c.Data)
			return []Chunk{c}, nil
		},
		FlushFn: func() ([]Chunk, error) {
			if !bytes.Equal(got.Bytes(), want) {
				return nil, fmt.Errorf("%s: stream mismatch: got %d bytes, want %d",
					name, got.Len(), len(want))
			}
			return nil, nil
		},
	}
}
