// Package stream is a small concurrent streaming-pipeline runtime: stages
// connected by bounded channels, one goroutine per stage, with byte-level
// instrumentation (per-stage rates, busy time, queue watermarks, end-to-end
// latency). It executes the kind of heterogeneous streaming application the
// paper models — and its measurements convert directly into the
// network-calculus model's node parameters, closing the loop between a real
// deployment and the analytic bounds.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// Chunk is one unit of flowing data. Input-referred accounting rides along
// with the payload so compression/filtering downstream does not distort
// throughput normalization.
type Chunk struct {
	// Data is the payload in the stage's local representation.
	Data []byte
	// InputBytes is how many pipeline-input bytes this chunk represents.
	InputBytes int
	// Emitted is when the chunk('s input data) entered the pipeline.
	Emitted time.Time
}

// Stage transforms chunks. Implementations must be safe for a single
// goroutine (the runtime never calls one stage concurrently with itself).
type Stage interface {
	// Name identifies the stage in metrics.
	Name() string
	// Process consumes one chunk and returns zero or more output chunks.
	// Returned chunks should carry the input-referred accounting of the
	// consumed data (helpers: Chunk.Derive).
	Process(c Chunk) ([]Chunk, error)
}

// Flusher is implemented by stages that buffer data internally and must
// emit a tail at end-of-stream.
type Flusher interface {
	Flush() ([]Chunk, error)
}

// Derive returns an output chunk carrying this chunk's input-referred
// accounting and original emission time.
func (c Chunk) Derive(data []byte) Chunk {
	return Chunk{Data: data, InputBytes: c.InputBytes, Emitted: c.Emitted}
}

// StageFunc adapts a function to the Stage interface.
type StageFunc struct {
	StageName string
	Fn        func(c Chunk) ([]Chunk, error)
	FlushFn   func() ([]Chunk, error)
}

// Name implements Stage.
func (s StageFunc) Name() string { return s.StageName }

// Process implements Stage.
func (s StageFunc) Process(c Chunk) ([]Chunk, error) { return s.Fn(c) }

// Flush implements Flusher when FlushFn is set.
func (s StageFunc) Flush() ([]Chunk, error) {
	if s.FlushFn == nil {
		return nil, nil
	}
	return s.FlushFn()
}

// conduit is an instrumented bounded channel between stages.
type conduit struct {
	ch        chan Chunk
	depth     atomic.Int64 // chunks currently queued
	peakDepth atomic.Int64
	bytes     atomic.Int64 // local bytes currently queued
	peakBytes atomic.Int64
}

func newConduit(capacity int) *conduit {
	if capacity < 1 {
		capacity = 1
	}
	return &conduit{ch: make(chan Chunk, capacity)}
}

func (q *conduit) send(c Chunk) {
	d := q.depth.Add(1)
	maxAtomic(&q.peakDepth, d)
	b := q.bytes.Add(int64(len(c.Data)))
	maxAtomic(&q.peakBytes, b)
	q.ch <- c
}

func (q *conduit) recv() (Chunk, bool) {
	c, ok := <-q.ch
	if ok {
		q.depth.Add(-1)
		q.bytes.Add(-int64(len(c.Data)))
	}
	return c, ok
}

func maxAtomic(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StageStats summarizes one stage after a run.
type StageStats struct {
	Name     string
	Chunks   int64
	InBytes  units.Bytes // local bytes consumed
	OutBytes units.Bytes // local bytes produced
	// InputBytes is the input-referred volume that passed through.
	InputBytes units.Bytes
	// BusyTime is the total wall-clock time spent inside Process/Flush.
	BusyTime time.Duration
	// Rate is InBytes/BusyTime: the stage's isolated-equivalent service
	// rate while busy (what the network-calculus model consumes).
	Rate units.Rate
	// QueuePeakChunks/QueuePeakBytes are input-queue high-water marks.
	QueuePeakChunks int64
	QueuePeakBytes  units.Bytes
}

// Gain returns OutBytes/InBytes (data-volume gain).
func (s StageStats) Gain() float64 {
	if s.InBytes == 0 {
		return 1
	}
	return float64(s.OutBytes) / float64(s.InBytes)
}

// Metrics is the result of a run.
type Metrics struct {
	// Elapsed is wall-clock time from first emission to pipeline drain.
	Elapsed time.Duration
	// InputBytes is the input-referred volume offered; OutputBytes the
	// local volume delivered by the last stage.
	InputBytes  units.Bytes
	OutputBytes units.Bytes
	// Throughput is input-referred: InputBytes / Elapsed.
	Throughput units.Rate
	// DelayMin/Mean/Max summarize per-chunk end-to-end latencies observed
	// at the sink.
	DelayMin, DelayMean, DelayMax time.Duration
	// Stages holds per-stage summaries in pipeline order.
	Stages []StageStats
}

// Pipeline is a configured chain of stages.
type Pipeline struct {
	name     string
	stages   []Stage
	capacity int
}

// New creates a pipeline; capacity is the bounded depth (in chunks) of each
// inter-stage queue — the backpressure knob.
func New(name string, capacity int) *Pipeline {
	return &Pipeline{name: name, capacity: capacity}
}

// Add appends a stage and returns the pipeline for chaining.
func (p *Pipeline) Add(s Stage) *Pipeline {
	p.stages = append(p.stages, s)
	return p
}

// Source yields input chunks; it returns a zero-length chunk and false at
// end of stream.
type Source func() (Chunk, bool)

// SliceSource feeds a buffer in chunkSize pieces, stamping accounting.
func SliceSource(data []byte, chunkSize int) Source {
	if chunkSize <= 0 {
		chunkSize = 64 * 1024
	}
	off := 0
	return func() (Chunk, bool) {
		if off >= len(data) {
			return Chunk{}, false
		}
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		c := Chunk{Data: data[off:end], InputBytes: end - off, Emitted: time.Now()}
		off = end
		return c, true
	}
}

// Run drives the source through every stage concurrently and blocks until
// the pipeline drains, returning the metrics. A stage error aborts the run.
func (p *Pipeline) Run(src Source) (*Metrics, error) {
	if len(p.stages) == 0 {
		return nil, errors.New("stream: pipeline has no stages")
	}
	type stageState struct {
		stage    Stage
		in       *conduit
		chunks   atomic.Int64
		inBytes  atomic.Int64
		outBytes atomic.Int64
		inputRef atomic.Int64
		busyNS   atomic.Int64
	}
	states := make([]*stageState, len(p.stages))
	for i, s := range p.stages {
		states[i] = &stageState{stage: s, in: newConduit(p.capacity)}
	}
	sink := newConduit(p.capacity)

	var firstErr error
	var errOnce sync.Once
	var failed atomic.Bool
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			failed.Store(true)
		})
	}

	var wg sync.WaitGroup
	for i, st := range states {
		out := sink
		if i+1 < len(states) {
			out = states[i+1].in
		}
		wg.Add(1)
		go func(st *stageState, out *conduit) {
			defer wg.Done()
			defer close(out.ch)
			emit := func(chunks []Chunk) {
				for _, oc := range chunks {
					st.outBytes.Add(int64(len(oc.Data)))
					out.send(oc)
				}
			}
			for {
				c, ok := st.in.recv()
				if !ok {
					break
				}
				if failed.Load() {
					continue // drain without processing
				}
				st.chunks.Add(1)
				st.inBytes.Add(int64(len(c.Data)))
				st.inputRef.Add(int64(c.InputBytes))
				t0 := time.Now()
				outs, err := st.stage.Process(c)
				st.busyNS.Add(time.Since(t0).Nanoseconds())
				if err != nil {
					fail(fmt.Errorf("stream: stage %s: %w", st.stage.Name(), err))
					continue
				}
				emit(outs)
			}
			if f, ok := st.stage.(Flusher); ok && !failed.Load() {
				t0 := time.Now()
				outs, err := f.Flush()
				st.busyNS.Add(time.Since(t0).Nanoseconds())
				if err != nil {
					fail(fmt.Errorf("stream: stage %s: flush: %w", st.stage.Name(), err))
				} else {
					emit(outs)
				}
			}
		}(st, out)
	}

	// Sink collector.
	m := &Metrics{}
	var delaySum time.Duration
	var delayN int64
	var sinkWG sync.WaitGroup
	sinkWG.Add(1)
	go func() {
		defer sinkWG.Done()
		for {
			c, ok := sink.recv()
			if !ok {
				return
			}
			m.OutputBytes += units.Bytes(len(c.Data))
			if !c.Emitted.IsZero() {
				d := time.Since(c.Emitted)
				if delayN == 0 || d < m.DelayMin {
					m.DelayMin = d
				}
				if d > m.DelayMax {
					m.DelayMax = d
				}
				delaySum += d
				delayN++
			}
		}
	}()

	start := time.Now()
	var offered int64
	for {
		c, ok := src()
		if !ok {
			break
		}
		offered += int64(c.InputBytes)
		states[0].in.send(c)
	}
	close(states[0].in.ch)
	wg.Wait()
	sinkWG.Wait()
	m.Elapsed = time.Since(start)

	if firstErr != nil {
		return nil, firstErr
	}
	m.InputBytes = units.Bytes(offered)
	if m.Elapsed > 0 {
		m.Throughput = m.InputBytes.Over(m.Elapsed)
	}
	if delayN > 0 {
		m.DelayMean = delaySum / time.Duration(delayN)
	}
	for i, st := range states {
		ss := StageStats{
			Name:            p.stages[i].Name(),
			Chunks:          st.chunks.Load(),
			InBytes:         units.Bytes(st.inBytes.Load()),
			OutBytes:        units.Bytes(st.outBytes.Load()),
			InputBytes:      units.Bytes(st.inputRef.Load()),
			BusyTime:        time.Duration(st.busyNS.Load()),
			QueuePeakChunks: st.in.peakDepth.Load(),
			QueuePeakBytes:  units.Bytes(st.in.peakBytes.Load()),
		}
		if ss.BusyTime > 0 {
			ss.Rate = ss.InBytes.Over(ss.BusyTime)
		}
		m.Stages = append(m.Stages, ss)
	}
	return m, nil
}

// Model converts measured stage statistics into a network-calculus pipeline
// fed by the given arrival description: each stage becomes a node whose
// sustained rate is its measured busy-time rate and whose job sizes are the
// average chunk sizes. This is the paper's parameterize-from-measurement
// path applied to a live deployment.
func (m *Metrics) Model(name string, arrival core.Arrival) (core.Pipeline, error) {
	p := core.Pipeline{Name: name, Arrival: arrival}
	for _, ss := range m.Stages {
		if ss.Chunks == 0 || ss.Rate <= 0 {
			return core.Pipeline{}, fmt.Errorf("stream: stage %s has no measurements", ss.Name)
		}
		jobIn := units.Bytes(float64(ss.InBytes) / float64(ss.Chunks))
		jobOut := units.Bytes(float64(ss.OutBytes) / float64(ss.Chunks))
		if jobIn <= 0 {
			jobIn = 1
		}
		if jobOut <= 0 {
			jobOut = 1 // total filters keep a token output volume
		}
		p.Nodes = append(p.Nodes, core.Node{
			Name:      ss.Name,
			Kind:      core.Compute,
			Rate:      ss.Rate,
			JobIn:     jobIn,
			JobOut:    jobOut,
			MaxPacket: jobOut,
		})
	}
	if err := p.Validate(); err != nil {
		return core.Pipeline{}, err
	}
	return p, nil
}
