package stream

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"streamcalc/internal/aesstream"
	"streamcalc/internal/core"
	"streamcalc/internal/gen"
	"streamcalc/internal/units"
)

func key() []byte { return bytes.Repeat([]byte{7}, aesstream.KeySize) }

func TestPassthroughPipeline(t *testing.T) {
	data := gen.Text(1<<18, 0.5, 1)
	p := New("pass", 8).
		Add(Passthrough("a")).
		Add(VerifySink("check", data))
	m, err := p.Run(SliceSource(data, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if m.InputBytes != units.Bytes(len(data)) {
		t.Errorf("input %v", m.InputBytes)
	}
	if m.OutputBytes != units.Bytes(len(data)) {
		t.Errorf("output %v", m.OutputBytes)
	}
	if m.Throughput <= 0 || m.Elapsed <= 0 {
		t.Error("throughput/elapsed must be positive")
	}
	if len(m.Stages) != 2 {
		t.Fatalf("stages %d", len(m.Stages))
	}
	if m.Stages[0].Chunks != 64 {
		t.Errorf("chunks = %d, want 64", m.Stages[0].Chunks)
	}
}

func TestCompressEncryptRoundTripPipeline(t *testing.T) {
	data := gen.Text(1<<19, 0.6, 2)
	enc, err := EncryptAES(key(), 5)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecryptAES(key(), 5)
	if err != nil {
		t.Fatal(err)
	}
	p := New("bitw", 4).
		Add(CompressLZ4()).
		Add(enc).
		Add(dec).
		Add(DecompressLZ4()).
		Add(VerifySink("check", data))
	m, err := p.Run(SliceSource(data, 16384))
	if err != nil {
		t.Fatal(err)
	}
	// Compression shrinks the stream between compress and decompress.
	if m.Stages[1].InBytes >= units.Bytes(len(data)) {
		t.Errorf("encrypt saw %v, want < input (compressed)", m.Stages[1].InBytes)
	}
	// Gain of compressor < 1, of decompressor > 1.
	if g := m.Stages[0].Gain(); g >= 1 {
		t.Errorf("compressor gain %v", g)
	}
	if g := m.Stages[3].Gain(); g <= 1 {
		t.Errorf("decompressor gain %v", g)
	}
	// Input-referred accounting conserved to the last stage.
	last := m.Stages[len(m.Stages)-1]
	if last.InputBytes != units.Bytes(len(data)) {
		t.Errorf("input-referred at sink %v", last.InputBytes)
	}
	if m.DelayMax <= 0 || m.DelayMin <= 0 || m.DelayMean < m.DelayMin || m.DelayMean > m.DelayMax {
		t.Errorf("delay stats inconsistent: %v %v %v", m.DelayMin, m.DelayMean, m.DelayMax)
	}
}

func TestTCPLoopbackStage(t *testing.T) {
	st, closer, err := TCPLoopback()
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer closer()
	data := gen.Text(1<<18, 0.5, 3)
	p := New("net", 4).
		Add(st).
		Add(VerifySink("check", data))
	if _, err := p.Run(SliceSource(data, 8192)); err != nil {
		t.Fatal(err)
	}
}

func TestFullBumpInTheWire(t *testing.T) {
	st, closer, err := TCPLoopback()
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer closer()
	data := gen.Text(1<<19, 0.62, 4)
	enc, _ := EncryptAES(key(), 9)
	dec, _ := DecryptAES(key(), 9)
	p := New("bitw-live", 4).
		Add(CompressLZ4()).
		Add(enc).
		Add(st).
		Add(dec).
		Add(DecompressLZ4()).
		Add(VerifySink("check", data))
	m, err := p.Run(SliceSource(data, 16384))
	if err != nil {
		t.Fatal(err)
	}
	// Every stage must have been measured.
	for _, ss := range m.Stages {
		if ss.Chunks == 0 {
			t.Errorf("stage %s processed nothing", ss.Name)
		}
		if ss.Name != "check" && ss.Rate <= 0 {
			t.Errorf("stage %s rate %v", ss.Name, ss.Rate)
		}
	}
}

func TestStageErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	p := New("err", 2).
		Add(Passthrough("ok")).
		Add(StageFunc{StageName: "bad", Fn: func(c Chunk) ([]Chunk, error) {
			return nil, boom
		}})
	_, err := p.Run(SliceSource(make([]byte, 1<<16), 4096))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestFlushErrorPropagates(t *testing.T) {
	data := []byte("payload")
	p := New("verify", 2).Add(VerifySink("check", []byte("different")))
	if _, err := p.Run(SliceSource(data, 4)); err == nil {
		t.Fatal("verification mismatch must fail the run")
	}
}

func TestEmptyPipeline(t *testing.T) {
	p := New("empty", 2)
	if _, err := p.Run(SliceSource([]byte("x"), 1)); err == nil {
		t.Fatal("empty pipeline must fail")
	}
}

func TestBackpressureBoundsQueues(t *testing.T) {
	slow := StageFunc{StageName: "slow", Fn: func(c Chunk) ([]Chunk, error) {
		time.Sleep(200 * time.Microsecond)
		return []Chunk{c}, nil
	}}
	p := New("bp", 2).
		Add(Passthrough("fast")).
		Add(slow)
	m, err := p.Run(SliceSource(make([]byte, 1<<16), 1024))
	if err != nil {
		t.Fatal(err)
	}
	// Bounded channels: peak depth can exceed capacity only by in-flight
	// sends (sender increments before blocking on the channel).
	if m.Stages[1].QueuePeakChunks > 4 {
		t.Errorf("queue peak %d exceeds bound", m.Stages[1].QueuePeakChunks)
	}
}

func TestMetricsModel(t *testing.T) {
	data := gen.Text(1<<19, 0.6, 6)
	enc, _ := EncryptAES(key(), 3)
	dec, _ := DecryptAES(key(), 3)
	p := New("modeled", 4).
		Add(CompressLZ4()).
		Add(enc).
		Add(dec).
		Add(DecompressLZ4())
	m, err := p.Run(SliceSource(data, 16384))
	if err != nil {
		t.Fatal(err)
	}
	arrival := core.Arrival{Rate: m.Throughput, Burst: 16384, MaxPacket: 16384}
	cp, err := m.Model("live", arrival)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(cp)
	if err != nil {
		t.Fatal(err)
	}
	if a.ThroughputLower <= 0 {
		t.Error("model must produce bounds")
	}
	// The busy-rate of each stage must be at least the end-to-end
	// throughput (a stage can't be slower than the pipeline it served).
	for _, na := range a.Nodes {
		if float64(na.Rate) < float64(m.Throughput)*0.5 {
			t.Errorf("node %s rate %v implausibly below pipeline throughput %v",
				na.Node.Name, na.Rate, m.Throughput)
		}
	}
}

func TestModelRejectsEmptyMeasurements(t *testing.T) {
	m := &Metrics{Stages: []StageStats{{Name: "ghost"}}}
	if _, err := m.Model("x", core.Arrival{Rate: 1}); err == nil {
		t.Fatal("unmeasured stage must fail")
	}
}

func TestSliceSourceChunking(t *testing.T) {
	src := SliceSource(make([]byte, 10), 4)
	sizes := []int{}
	for {
		c, ok := src()
		if !ok {
			break
		}
		sizes = append(sizes, len(c.Data))
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[2] != 2 {
		t.Errorf("chunking %v", sizes)
	}
	// Default chunk size kicks in for non-positive values.
	src = SliceSource(make([]byte, 10), 0)
	c, ok := src()
	if !ok || len(c.Data) != 10 {
		t.Error("default chunk size")
	}
}

func TestDeriveKeepsAccounting(t *testing.T) {
	now := time.Now()
	c := Chunk{Data: []byte("abc"), InputBytes: 3, Emitted: now}
	d := c.Derive([]byte("xy"))
	if d.InputBytes != 3 || !d.Emitted.Equal(now) || string(d.Data) != "xy" {
		t.Errorf("derive: %+v", d)
	}
}
