package load

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamcalc/internal/gen"
	"streamcalc/internal/obs"
	"streamcalc/internal/pool"
)

// Config tunes one harness run.
type Config struct {
	Target Target
	Pop    *gen.Population

	// Flows is the registered-flow target of the ramp phase: batches are
	// offered until the registry holds at least this many flows (or the
	// overcommit cap of 4× is reached — the scenario is then undersized).
	Flows int
	// BatchSize is the ramp transaction size (default 16384).
	BatchSize int
	// Workers bounds concurrent ramp batches and churn workers (< 1 means
	// GOMAXPROCS).
	Workers int
	// Clients is the number of concurrent churn issuers: the planned
	// schedule is dealt round-robin across this many client lanes, each
	// issuing its own ops in order and recording its own pacing lateness
	// (< 1 falls back to the Workers default, capped at 64).
	Clients int

	// TargetRPS overrides the population spec's churn base rate by
	// time-rescaling the planned schedule (0 keeps the spec's base_rps).
	TargetRPS float64
	// Warmup and Measure bound the churn phases: ops scheduled before
	// Warmup elapses are issued but not recorded.
	Warmup  time.Duration
	Measure time.Duration

	// Metrics, when non-nil, receives per-op latency and lateness
	// histograms plus the worker-pool telemetry.
	Metrics *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Context cancels the run early (nil means Background).
	Context context.Context
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// LoadBuckets are the histogram bounds for harness op latency and pacing
// lateness (seconds): 10µs to ~40s.
var LoadBuckets = obs.ExponentialBuckets(1e-5, 4, 12)

// Run executes the full harness sequence — ramp, steady-state assertion,
// paced warmup+measure churn, final snapshot — and returns the report.
//
// The workload is deterministic at the request level: the flows of every
// ramp batch and the kind, target, and scheduled time of every churn op are
// pure functions of (population spec, seed, flow target). Runtime outcomes
// (verdicts, latencies, which releases miss) depend on the target's state
// and timing and are what the report measures.
func Run(cfg Config) (*Report, error) {
	if cfg.Target == nil || cfg.Pop == nil {
		return nil, fmt.Errorf("load: config needs Target and Pop")
	}
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("load: config needs Flows > 0")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16384
	}
	if cfg.Measure <= 0 {
		return nil, fmt.Errorf("load: config needs Measure > 0")
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := pool.Workers(cfg.Workers, 1<<30)

	rep := &Report{
		Mode:       "custom",
		Seed:       0,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		StartedAt:  time.Now(),
	}
	start := time.Now()

	if err := ramp(ctx, &cfg, rep); err != nil {
		return nil, err
	}

	steady, err := cfg.Target.Stats()
	if err != nil {
		return nil, fmt.Errorf("load: steady-state snapshot: %w", err)
	}
	rep.Steady = steady
	if steady.Flows == 0 {
		return nil, fmt.Errorf("load: steady-state assertion failed: registry is empty after ramp")
	}
	cfg.logf("steady state: %d flows, %d classes, epoch %d, heap %.1f MiB",
		steady.Flows, steady.Classes, steady.Epoch, float64(steady.HeapAlloc)/(1<<20))

	if err := churn(ctx, &cfg, rep); err != nil {
		return nil, err
	}

	// Phase breakdown: whatever admission decisions the target's flight
	// recorder still retains (best effort — a missing recorder or an old
	// daemon just omits the section).
	if recs, err := cfg.Target.Decisions(0); err != nil {
		cfg.logf("decisions fetch failed: %v", err)
	} else if ph := PhaseStats(recs); ph != nil {
		rep.Churn.Phases = ph
		if st, ok := ph["analysis"]; ok {
			cfg.logf("phases: analysis p50 %v p99 %v over %d decisions", st.P50, st.P99, st.Count)
		}
	}

	final, err := cfg.Target.Stats()
	if err != nil {
		return nil, fmt.Errorf("load: final snapshot: %w", err)
	}
	rep.Final = final
	rep.Duration = time.Since(start)
	return rep, nil
}

// ramp registers flows in transactional batches until the registry holds at
// least cfg.Flows. The first wave (exactly enough batches for the target if
// nothing rejects) fans out over the worker pool; if SLO rejections leave
// the registry short, sequential top-up batches follow until the target or
// the 4× overcommit cap is reached.
func ramp(ctx context.Context, cfg *Config, rep *Report) error {
	t0 := time.Now()
	nBatches := (cfg.Flows + cfg.BatchSize - 1) / cfg.BatchSize
	var admitted, offered, batches atomic.Int64

	runBatch := func(lo, hi int) error {
		n, err := cfg.Target.AdmitBatch(cfg.Pop.Flows(lo, hi))
		if err != nil {
			return fmt.Errorf("load: ramp batch [%d,%d): %w", lo, hi, err)
		}
		admitted.Add(int64(n))
		offered.Add(int64(hi - lo))
		b := batches.Add(1)
		if b%16 == 0 {
			cfg.logf("ramp: %d batches, %d/%d admitted", b, admitted.Load(), cfg.Flows)
		}
		return nil
	}

	err := pool.ForEach(ctx, cfg.Workers, nBatches, pool.NewMetrics(cfg.Metrics, "load-ramp"), func(i int) error {
		lo := i * cfg.BatchSize
		hi := lo + cfg.BatchSize
		if hi > cfg.Flows {
			hi = cfg.Flows
		}
		return runBatch(lo, hi)
	})
	if err != nil {
		return err
	}

	// Top up past rejections: later indexes draw fresh template assignments,
	// so loose-tier flows keep landing until the target count registers.
	next := cfg.Flows
	for int(admitted.Load()) < cfg.Flows && next < 4*cfg.Flows {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := runBatch(next, next+cfg.BatchSize); err != nil {
			return err
		}
		next += cfg.BatchSize
	}

	d := time.Since(t0)
	rep.Ramp = RampReport{
		TargetFlows: cfg.Flows,
		Offered:     int(offered.Load()),
		Admitted:    int(admitted.Load()),
		Rejected:    int(offered.Load() - admitted.Load()),
		Batches:     int(batches.Load()),
		BatchSize:   cfg.BatchSize,
		Duration:    d,
		FlowsPerSec: float64(admitted.Load()) / d.Seconds(),
	}
	cfg.logf("ramp done: %d admitted / %d offered in %v (%.0f flows/s)",
		rep.Ramp.Admitted, rep.Ramp.Offered, d.Round(time.Millisecond), rep.Ramp.FlowsPerSec)
	if int(admitted.Load()) < cfg.Flows {
		cfg.logf("ramp fell short of %d flows: scenario platform is undersized", cfg.Flows)
	}
	return nil
}

// planWindow plans the churn schedule covering [0, window) of phase time,
// rescaled from the spec's base_rps to targetRPS (0 keeps the spec rate).
// PlanOps is prefix-stable in n, so growing the plan until it spans the
// window preserves determinism.
func planWindow(pop *gen.Population, rampN int, window time.Duration, targetRPS float64) ([]gen.Op, float64) {
	base := pop.Spec().Arrival.BaseRPS
	scale := 1.0
	rps := base
	if targetRPS > 0 {
		scale = base / targetRPS
		rps = targetRPS
	}
	specWindow := time.Duration(float64(window) / scale)

	n := int(specWindow.Seconds()*base*1.5) + 64
	var ops []gen.Op
	for {
		ops = pop.PlanOps(rampN, n)
		if ops[len(ops)-1].At >= specWindow {
			break
		}
		n *= 2
	}
	cut := sort.Search(len(ops), func(i int) bool { return ops[i].At >= specWindow })
	ops = ops[:cut]
	if scale != 1 {
		for i := range ops {
			ops[i].At = time.Duration(float64(ops[i].At) * scale)
		}
	}
	return ops, rps
}

// churn drives the paced open-loop schedule: the planned ops are dealt
// round-robin across cfg.Clients concurrent client lanes; each lane issues
// its own ops in schedule order, sleeping until each deadline, and records
// latency and lateness. Ops scheduled inside the warmup window are issued
// but excluded from the statistics. Lateness is summarized both globally
// and per client lane, so a single stalled client is visible next to the
// aggregate.
func churn(ctx context.Context, cfg *Config, rep *Report) error {
	window := cfg.Warmup + cfg.Measure
	ops, rps := planWindow(cfg.Pop, cfg.Flows, window, cfg.TargetRPS)
	if len(ops) == 0 {
		return fmt.Errorf("load: churn plan is empty (rps %.1f over %v)", rps, window)
	}
	warmCount := sort.Search(len(ops), func(i int) bool { return ops[i].At >= cfg.Warmup })
	lanes := cfg.Clients
	if lanes < 1 {
		lanes = pool.Workers(cfg.Workers, 64)
	}
	if lanes > len(ops) {
		lanes = len(ops)
	}
	cfg.logf("churn: %d ops over %v at %.1f rps (%d warmup, %d clients)",
		len(ops), window, rps, warmCount, lanes)

	var hists map[gen.OpKind]*obs.Histogram
	var lateHist *obs.Histogram
	if cfg.Metrics != nil {
		hists = make(map[gen.OpKind]*obs.Histogram)
		for _, k := range []gen.OpKind{gen.OpAdmit, gen.OpRelease, gen.OpRecheck} {
			hists[k] = cfg.Metrics.Histogram("nc_load_op_seconds",
				"harness-observed op latency", LoadBuckets,
				obs.Label{Key: "op", Value: k.String()})
		}
		lateHist = cfg.Metrics.Histogram("nc_load_lateness_seconds",
			"open-loop pacing debt (issue minus scheduled time)", LoadBuckets)
	}

	lat := make([]int64, len(ops))
	late := make([]int64, len(ops))
	miss := make([]bool, len(ops))
	errs := make([]bool, len(ops))
	var errCount atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	recordErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var issued atomic.Int64
	t0 := time.Now()
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			// The lane's ops (every lanes-th index) are in schedule order, so
			// sleeping to each deadline keeps the lane open-loop on its own
			// sub-schedule.
			for i := lane; i < len(ops); i += lanes {
				if cctx.Err() != nil {
					return
				}
				op := ops[i]
				sched := t0.Add(op.At)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				issue := time.Now()
				var ok bool
				var err error
				switch op.Kind {
				case gen.OpAdmit:
					ok, err = cfg.Target.Admit(op.Flow)
				case gen.OpRelease:
					ok, err = cfg.Target.Release(op.ID)
				case gen.OpRecheck:
					ok, err = cfg.Target.Recheck(op.ID)
				}
				took := time.Since(issue)
				done := issued.Add(1)
				lat[i] = took.Nanoseconds()
				l := issue.Sub(sched)
				if l < 0 {
					l = 0
				}
				late[i] = l.Nanoseconds()
				miss[i] = err == nil && !ok
				if hists != nil {
					hists[op.Kind].Observe(took.Seconds())
					lateHist.Observe(l.Seconds())
				}
				if err != nil {
					errs[i] = true
					recordErr(fmt.Errorf("load: churn op %d (%s): %w", i, op.Kind, err))
					// Individual transport errors are tolerated and counted; a
					// drowning target (>10% failing after the first 50) aborts
					// the phase.
					if n := errCount.Add(1); n > 50 && n*10 > done {
						cancel()
					}
				}
			}
		}(lane)
	}
	wg.Wait()
	wall := time.Since(t0)
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if cctx.Err() != nil {
		// Only our own error-rate cancel can get here.
		return fmt.Errorf("load: churn aborted after %d op errors; first: %w", errCount.Load(), firstErr)
	}

	// Partition the measured window per op kind.
	byKind := map[string][]int64{}
	missCount := map[string]int{}
	errKind := map[string]int{}
	measured := 0
	for i := warmCount; i < len(ops); i++ {
		k := ops[i].Kind.String()
		byKind[k] = append(byKind[k], lat[i])
		if miss[i] {
			missCount[k]++
		}
		if errs[i] {
			errKind[k]++
		}
		measured++
	}
	opStats := make(map[string]LatencyStats, len(byKind))
	for k, ns := range byKind {
		st := summarize(ns)
		st.Misses = missCount[k]
		st.Errors = errKind[k]
		opStats[k] = st
	}
	measureWall := wall - cfg.Warmup
	if measureWall <= 0 {
		measureWall = cfg.Measure
	}
	perClient := make([]LatencyStats, lanes)
	for lane := 0; lane < lanes; lane++ {
		var ns []int64
		for i := warmCount; i < len(ops); i++ {
			if i%lanes == lane {
				ns = append(ns, late[i])
			}
		}
		perClient[lane] = summarize(ns)
	}
	rep.Churn = ChurnReport{
		TargetRPS:      rps,
		AchievedRPS:    float64(measured) / measureWall.Seconds(),
		WarmupOps:      warmCount,
		MeasuredOps:    measured,
		Clients:        lanes,
		Duration:       wall,
		Ops:            opStats,
		Lateness:       summarize(append([]int64(nil), late[warmCount:]...)),
		ClientLateness: perClient,
	}
	if n := errCount.Load(); n > 0 {
		cfg.logf("churn: %d op errors; first: %v", n, firstErr)
	}
	cfg.logf("churn done: %d measured ops in %v (%.1f rps achieved, lateness p99 %v)",
		measured, wall.Round(time.Millisecond), rep.Churn.AchievedRPS, rep.Churn.Lateness.P99)
	return nil
}
