package load

import (
	"math"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/core"
	"streamcalc/internal/gen"
	"streamcalc/internal/units"
)

// Scenario bundles a platform and a population spec sized for each other.
type Scenario struct {
	Name  string
	Nodes []core.Node
	Spec  gen.PopulationSpec
}

// Controller builds an admission controller over the scenario platform.
func (s Scenario) Controller() (*admit.Controller, error) {
	return admit.New(s.Name, s.Nodes)
}

// Sized returns a copy of the scenario whose node rates are recomputed from
// the population's realized template mix: each node's expected per-flow
// demand is the popularity-weighted sum of the template rates crossing it,
// and the node gets headroom × that demand at `flows` registered flows.
// DefaultScenario sizes from the rate distribution's analytic mean, which a
// heavy-tailed template draw can exceed severalfold — realized sizing keeps
// the admission profile (loose tiers fit, the tightest tier rejects at the
// margin) stable across seeds and scales.
func (s Scenario) Sized(pop *gen.Population, flows int, headroom float64) Scenario {
	demand := make(map[string]float64, len(s.Nodes))
	ws := pop.TemplateWeights()
	for i, t := range pop.Templates() {
		for _, n := range t.Path {
			demand[n] += ws[i] * float64(t.Arrival.Rate)
		}
	}
	nodes := make([]core.Node, len(s.Nodes))
	copy(nodes, s.Nodes)
	for i := range nodes {
		if d := demand[nodes[i].Name]; d > 0 {
			nodes[i].Rate = units.Rate(headroom * d * float64(flows))
		}
	}
	s.Nodes = nodes
	return s
}

// DefaultScenario builds the canonical million-flow scenario: a three-node
// streaming platform (ingest → transcode → egress, with a transcode-less
// bypass path) and a heavy-tailed population whose aggregate expected
// demand at `flows` registered flows consumes 1/headroom of each node's
// capacity (headroom 2.0). The SLO tier mix is deliberately sized so the
// loosest tiers always fit while the tightest tier starts rejecting as the
// registry fills — a realistic admission profile rather than a pure
// pass-through.
func DefaultScenario(flows int) Scenario {
	spec := gen.PopulationSpec{
		Templates:    64,
		TemplateSkew: 1,
		// Flow sustained rates: Pareto(α=1.6) from 64 KiB/s, clipped at
		// 64 MiB/s — mean ≈ 171 KiB/s with a heavy tail.
		RateDist: gen.Dist{Kind: "pareto", Min: 64 << 10, Alpha: 1.6, Max: 64 << 20},
		// Bursts: lognormal around 4 KiB (σ=0.8, mean ≈ 5.6 KiB).
		BurstDist:      gen.Dist{Kind: "lognormal", Mu: math.Log(4 << 10), Sigma: 0.8},
		MaxPacketBytes: 1500,
		Paths: [][]string{
			{"ingest", "transcode", "egress"},
			{"ingest", "egress"},
		},
		PathSkew: 0.8,
		SLOTiers: []gen.SLOTier{
			{Weight: 0.7, MaxDelayMs: 500},
			{Weight: 0.2, MaxDelayMs: 250},
			{Weight: 0.1, MaxDelayMs: 120, MinThroughputFrac: 0.9},
		},
		Churn: gen.ChurnMix{Admit: 0.4, Release: 0.4, Recheck: 0.2},
		Arrival: gen.ArrivalProcess{
			BaseRPS:          500,
			DiurnalAmplitude: 0.3,
			DiurnalPeriodSec: 60,
			BurstFactor:      2,
			BurstOnSec:       2,
			BurstOffSec:      10,
		},
	}

	// Expected hosted rate per node: every flow crosses ingest and egress;
	// only the Zipf-favored 3-node path crosses transcode.
	meanRate := spec.RateDist.Mean()
	w0 := 1.0 / (1.0 + math.Pow(2, -spec.PathSkew)) // popularity of path 0
	const headroom = 2.0
	size := func(share float64) units.Rate {
		return units.Rate(headroom * share * meanRate * float64(flows))
	}
	// Stages process one MTU-sized block per activation, matching the
	// population's packet size: a larger job block would (correctly, under
	// the grain-based aggregation model) charge every flow a job-fill
	// latency of JobIn/rate, which for the slowest Pareto flows dwarfs the
	// tight SLO tiers and turns the scenario into a pure rejection test.
	node := func(name string, rate units.Rate, lat time.Duration) core.Node {
		return core.Node{
			Name: name, Rate: rate, Latency: lat,
			JobIn: 1500, JobOut: 1500, MaxPacket: 1500,
		}
	}
	return Scenario{
		Name: "default-streaming",
		Nodes: []core.Node{
			node("ingest", size(1.0), 200*time.Microsecond),
			node("transcode", size(w0), 500*time.Microsecond),
			node("egress", size(1.0), 300*time.Microsecond),
		},
		Spec: spec,
	}
}
