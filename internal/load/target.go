// Package load is an open-loop load harness for the admission controller:
// it ramps a generated tenant population (internal/gen) into a target —
// an in-process admit.Controller or a running ncadmitd over HTTP — then
// drives a paced churn schedule through warmup and measure phases,
// recording per-op latency, pacing lateness, and registry/heap state into a
// reproducible JSON report.
//
// The harness is open-loop by design: every operation has a scheduled
// issue time fixed before the run starts (gen.Population.PlanOps), and
// workers sleep until each op's deadline rather than issuing as fast as
// responses return. A closed-loop driver self-throttles when the system
// slows down, silently hiding overload (coordinated omission); open-loop
// pacing keeps offered load constant and surfaces overload honestly as
// growing lateness and latency tails.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"

	"streamcalc/internal/admit"
	"streamcalc/internal/spec"
)

// TargetStats is the steady-state snapshot the harness asserts between
// phases.
type TargetStats struct {
	Flows     int    `json:"flows"`
	Classes   int    `json:"classes"`
	Epoch     uint64 `json:"epoch"`
	HeapAlloc uint64 `json:"heap_alloc_bytes"`
	HeapSys   uint64 `json:"heap_sys_bytes"`
	// EpochMax and EpochDistinctNodes summarize the per-node modification
	// epochs; CommitConflicts counts failed optimistic validate-and-commit
	// sections (zero when concurrent traffic never overlapped). Older
	// ncadmitd builds omit these healthz fields; they default to zero.
	EpochMax           uint64 `json:"epoch_max"`
	EpochDistinctNodes int    `json:"epoch_distinct_nodes"`
	CommitConflicts    uint64 `json:"commit_conflicts"`
}

// Target abstracts where the load lands: the in-process controller or a
// remote ncadmitd. Implementations must be safe for concurrent use.
type Target interface {
	// Admit offers one flow; admitted reports the verdict. err is reserved
	// for transport/protocol failures — a rejection is not an error.
	Admit(f admit.Flow) (admitted bool, err error)
	// AdmitBatch offers a batch transactionally, returning the number
	// admitted.
	AdmitBatch(fs []admit.Flow) (admitted int, err error)
	// Release frees a flow; ok is false when the flow wasn't registered
	// (a planned-schedule miss, not an error).
	Release(id string) (ok bool, err error)
	// Recheck re-asserts one admitted flow's SLO analytically; ok is false
	// when the flow wasn't registered.
	Recheck(id string) (ok bool, err error)
	// Stats snapshots the registry and heap.
	Stats() (TargetStats, error)
	// Decisions returns up to limit flight-recorder records, newest first
	// (limit <= 0 means all retained). Targets without a recorder return
	// (nil, nil); the harness then simply omits the phase breakdown.
	Decisions(limit int) ([]admit.DecisionRecord, error)
}

// --- In-process target ------------------------------------------------------

// InProc drives an admit.Controller directly — the configuration that
// isolates controller cost from HTTP transport cost.
type InProc struct{ C *admit.Controller }

func (t InProc) Admit(f admit.Flow) (bool, error) { return t.C.Admit(f).Admitted, nil }

func (t InProc) AdmitBatch(fs []admit.Flow) (int, error) {
	n := 0
	for _, v := range t.C.AdmitBatch(fs) {
		if v.Admitted {
			n++
		}
	}
	return n, nil
}

func (t InProc) Release(id string) (bool, error) { return t.C.Release(id), nil }

func (t InProc) Recheck(id string) (bool, error) {
	v, err := t.C.Recheck(id)
	if err != nil {
		return false, nil // not admitted: a schedule miss
	}
	return v.Admitted, nil
}

func (t InProc) Decisions(limit int) ([]admit.DecisionRecord, error) {
	rec := t.C.Recorder()
	if rec == nil {
		return nil, nil
	}
	return rec.Snapshot(limit), nil
}

func (t InProc) Stats() (TargetStats, error) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	emax, edistinct := t.C.EpochStats()
	return TargetStats{
		Flows:              t.C.FlowCount(),
		Classes:            t.C.ClassCount(),
		Epoch:              t.C.Epoch(),
		HeapAlloc:          m.HeapAlloc,
		HeapSys:            m.HeapSys,
		EpochMax:           emax,
		EpochDistinctNodes: edistinct,
		CommitConflicts:    t.C.CommitConflicts(),
	}, nil
}

// --- HTTP target ------------------------------------------------------------

// HTTP drives a running ncadmitd over its REST API.
type HTTP struct {
	Base   string // e.g. "http://127.0.0.1:8080"
	Client *http.Client
}

func (t *HTTP) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTP) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, t.Base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

func (t *HTTP) Admit(f admit.Flow) (bool, error) {
	body, err := json.Marshal(spec.FromAdmit(f))
	if err != nil {
		return false, err
	}
	status, _, err := t.do(http.MethodPost, "/admit", body)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
		return true, nil
	case http.StatusConflict:
		return false, nil
	}
	return false, fmt.Errorf("POST /admit: unexpected status %d", status)
}

func (t *HTTP) AdmitBatch(fs []admit.Flow) (int, error) {
	wire := make([]spec.Flow, len(fs))
	for i, f := range fs {
		wire[i] = spec.FromAdmit(f)
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return 0, err
	}
	status, out, err := t.do(http.MethodPost, "/admit/batch", body)
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("POST /admit/batch: unexpected status %d", status)
	}
	var verdicts []struct {
		Admitted bool `json:"admitted"`
	}
	if err := json.Unmarshal(out, &verdicts); err != nil {
		return 0, fmt.Errorf("POST /admit/batch: %w", err)
	}
	n := 0
	for _, v := range verdicts {
		if v.Admitted {
			n++
		}
	}
	return n, nil
}

func (t *HTTP) Release(id string) (bool, error) {
	status, _, err := t.do(http.MethodDelete, "/flows/"+id, nil)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusNoContent:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("DELETE /flows/%s: unexpected status %d", id, status)
}

func (t *HTTP) Recheck(id string) (bool, error) {
	status, _, err := t.do(http.MethodGet, "/flows/"+id+"/recheck", nil)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
		return true, nil
	case http.StatusConflict, http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("GET /flows/%s/recheck: unexpected status %d", id, status)
}

func (t *HTTP) Decisions(limit int) ([]admit.DecisionRecord, error) {
	path := "/debug/decisions"
	if limit > 0 {
		path += fmt.Sprintf("?n=%d", limit)
	}
	status, out, err := t.do(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		// Recorder disabled (or an older daemon): no phase breakdown.
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/decisions: unexpected status %d", status)
	}
	var body struct {
		Records []admit.DecisionRecord `json:"records"`
	}
	if err := json.Unmarshal(out, &body); err != nil {
		return nil, fmt.Errorf("GET /debug/decisions: %w", err)
	}
	return body.Records, nil
}

func (t *HTTP) Stats() (TargetStats, error) {
	status, out, err := t.do(http.MethodGet, "/healthz", nil)
	if err != nil {
		return TargetStats{}, err
	}
	if status != http.StatusOK {
		return TargetStats{}, fmt.Errorf("GET /healthz: unexpected status %d", status)
	}
	var h struct {
		Flows              int    `json:"flows"`
		Classes            int    `json:"classes"`
		Epoch              uint64 `json:"epoch"`
		HeapAlloc          uint64 `json:"heap_alloc_bytes"`
		HeapSys            uint64 `json:"heap_sys_bytes"`
		EpochMax           uint64 `json:"epoch_max"`
		EpochDistinctNodes int    `json:"epoch_distinct_nodes"`
		CommitConflicts    uint64 `json:"commit_conflicts"`
	}
	if err := json.Unmarshal(out, &h); err != nil {
		return TargetStats{}, fmt.Errorf("GET /healthz: %w", err)
	}
	return TargetStats(h), nil
}
