package load

import (
	"fmt"
	"strings"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// This file is the tight-rung cost harness behind ncload -rungbench: it
// times the prefix-sharing θ-lattice search against the exhaustive
// per-vector reference at matched combo budgets (verifying the winning
// vectors are bit-identical along the way), then pushes the DP alone
// through lattice sizes the exhaustive formulation could never afford.
// The artifact lands in results/rung_scaling.json and, through the
// benchjson bridge, BENCH_rung.json.

// RungBenchConfig drives the lattice-cost comparison.
type RungBenchConfig struct {
	// Reps is the number of cold (memo-reset) runs per measurement; the
	// minimum is reported. Default 3.
	Reps int
	// MinSpeedup is the matched-case acceptance floor for Check. The local
	// artifact records ~an order of magnitude; CI gates conservatively.
	// Default 3.
	MinSpeedup float64
	Logf       func(format string, args ...any)
}

// RungBenchCase is one (nodes, budget) measurement.
type RungBenchCase struct {
	Nodes  int `json:"nodes"`
	Budget int `json:"budget"`
	// Combos is the lattice size after grid thinning (scored + pruned).
	Combos int `json:"combos"`
	Scored int `json:"scored"`
	Pruned int `json:"pruned"`
	// DPNanos and ExhaustiveNanos are cold wall-clock times (minimum over
	// reps); ExhaustiveNanos is zero for the DP-only scaling cases.
	DPNanos         int64   `json:"dp_ns"`
	ExhaustiveNanos int64   `json:"exhaustive_ns,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	// Match reports that both implementations returned the same winning
	// θ-vector and delay bound, bit for bit (matched cases only).
	Match      bool          `json:"match"`
	DelayBound time.Duration `json:"delay_bound_ns"`
}

// RungBenchReport is the rung-cost artifact (results/rung_scaling.json).
type RungBenchReport struct {
	Scenario   string          `json:"scenario"`
	Reps       int             `json:"reps"`
	MinSpeedup float64         `json:"min_speedup"`
	Cases      []RungBenchCase `json:"cases"`
}

// rungBenchPipeline builds a deterministic n-node chain where every node
// carries cross traffic with distinct rates, latencies, and bursts, so each
// node contributes a full θ grid and the joint lattice is as rich as the
// candidate generator allows.
func rungBenchPipeline(n int) core.Pipeline {
	nodes := make([]core.Node, n)
	for i := range nodes {
		rate := units.Rate(100e6 + 10e6*float64(i))
		nodes[i] = core.Node{
			Name:    fmt.Sprintf("x%d", i),
			Rate:    rate,
			Latency: time.Duration(20+10*i) * time.Millisecond,
			JobIn:   1500, JobOut: 1500, MaxPacket: 1500,
			CrossRate:  rate.Mul(0.35 + 0.05*float64(i%3)),
			CrossBurst: units.Bytes(2e6 + 5e5*float64(i)),
		}
	}
	return core.Pipeline{
		Name:    "rung-bench",
		Arrival: core.Arrival{Rate: 5e6, Burst: 4e6, MaxPacket: 1500},
		Nodes:   nodes,
		Rung:    core.RungTight,
	}
}

// timeCold runs fn reps times with the curve-op memo reset before each run
// and returns the minimum wall clock plus the last result.
func timeCold(reps int, fn func() (*core.Analysis, error)) (int64, *core.Analysis, error) {
	best := int64(0)
	var a *core.Analysis
	for r := 0; r < reps; r++ {
		curve.ResetMemo()
		start := time.Now()
		res, err := fn()
		took := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, nil, err
		}
		if best == 0 || took < best {
			best = took
		}
		a = res
	}
	return best, a, nil
}

// sameWinner reports bit-identical winning θ-vectors and delay bounds.
func sameWinner(a, b *core.Analysis) bool {
	if a.DelayBound != b.DelayBound || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i].FIFOTheta != b.Nodes[i].FIFOTheta {
			return false
		}
	}
	return true
}

// RungBench measures the tight-rung search cost across node count × lattice
// budget: DP vs exhaustive at matched budgets small enough for the
// reference, then DP alone at full-resolution budgets.
func RungBench(cfg RungBenchConfig) (*RungBenchReport, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.MinSpeedup <= 0 {
		cfg.MinSpeedup = 3
	}
	rep := &RungBenchReport{
		Scenario:   "rung-bench/cross-chain",
		Reps:       cfg.Reps,
		MinSpeedup: cfg.MinSpeedup,
	}
	type caseSpec struct {
		nodes, budget int
		matched       bool
	}
	// The per-node grids are small (a rate-latency service against an
	// affine cross envelope yields a handful of structural θ candidates),
	// so the lattice grows with node count; the budget axis exercises the
	// thinning path (the 64-budget rows force it) and the full-resolution
	// headroom the raised default cap buys on 5-6 cross nodes, where the
	// pre-DP 2048 cap already had to thin.
	var specs []caseSpec
	for _, n := range []int{2, 3, 4, 5, 6} {
		for _, b := range []int{64, 2048, 65536} {
			specs = append(specs, caseSpec{n, b, true})
		}
	}
	for _, n := range []int{7, 8} {
		specs = append(specs, caseSpec{n, 65536, false})
	}
	for _, sp := range specs {
		p := rungBenchPipeline(sp.nodes)
		dpNs, dp, err := timeCold(cfg.Reps, func() (*core.Analysis, error) {
			return core.AnalyzeTightBudget(p, sp.budget)
		})
		if err != nil {
			return nil, fmt.Errorf("rung bench: dp n=%d budget=%d: %w", sp.nodes, sp.budget, err)
		}
		c := RungBenchCase{
			Nodes: sp.nodes, Budget: sp.budget,
			Combos: dp.TightCombos + dp.TightPruned,
			Scored: dp.TightCombos, Pruned: dp.TightPruned,
			DPNanos: dpNs, DelayBound: dp.DelayBound,
		}
		if sp.matched {
			exNs, ex, err := timeCold(cfg.Reps, func() (*core.Analysis, error) {
				return core.AnalyzeTightExhaustive(p, sp.budget)
			})
			if err != nil {
				return nil, fmt.Errorf("rung bench: exhaustive n=%d budget=%d: %w", sp.nodes, sp.budget, err)
			}
			c.ExhaustiveNanos = exNs
			c.Speedup = float64(exNs) / float64(dpNs)
			c.Match = sameWinner(dp, ex)
		}
		if cfg.Logf != nil {
			if sp.matched {
				cfg.Logf("n=%d budget=%-5d combos=%-5d dp=%-10v exhaustive=%-10v speedup=%5.1fx pruned=%d match=%v",
					c.Nodes, c.Budget, c.Combos, time.Duration(c.DPNanos),
					time.Duration(c.ExhaustiveNanos), c.Speedup, c.Pruned, c.Match)
			} else {
				cfg.Logf("n=%d budget=%-5d combos=%-5d dp=%-10v pruned=%d (dp-only)",
					c.Nodes, c.Budget, c.Combos, time.Duration(c.DPNanos), c.Pruned)
			}
		}
		rep.Cases = append(rep.Cases, c)
	}
	return rep, nil
}

// Check asserts the rung-cost acceptance invariants: every matched case
// returned a bit-identical winner, every large matched lattice (>= 500
// combos; smaller ones are setup-dominated and exempt) cleared the speedup
// floor, and the search counters covered each lattice exactly.
func (r *RungBenchReport) Check() error {
	matched, large := 0, 0
	for _, c := range r.Cases {
		if c.Scored+c.Pruned != c.Combos || c.Scored <= 0 {
			return fmt.Errorf("rung bench: n=%d budget=%d: counters %d+%d do not cover lattice %d",
				c.Nodes, c.Budget, c.Scored, c.Pruned, c.Combos)
		}
		if c.ExhaustiveNanos == 0 {
			continue
		}
		matched++
		if !c.Match {
			return fmt.Errorf("rung bench: n=%d budget=%d: DP and exhaustive winners differ",
				c.Nodes, c.Budget)
		}
		if c.Combos >= 500 {
			large++
			if c.Speedup < r.MinSpeedup {
				return fmt.Errorf("rung bench: n=%d budget=%d: speedup %.1fx below the %.1fx floor",
					c.Nodes, c.Budget, c.Speedup, r.MinSpeedup)
			}
		}
	}
	if matched == 0 {
		return fmt.Errorf("rung bench: no matched DP-vs-exhaustive cases")
	}
	if large == 0 {
		return fmt.Errorf("rung bench: no matched case had a large enough lattice to gate the speedup")
	}
	return nil
}

// BenchText renders the cases as Go benchmark lines for the
// .github/benchjson converter — the bridge into BENCH_rung.json.
func (r *RungBenchReport) BenchText() string {
	var b strings.Builder
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "BenchmarkRungLatticeN%dC%d 1 %d ns/op %d combos %d pruned",
			c.Nodes, c.Budget, c.DPNanos, c.Combos, c.Pruned)
		if c.ExhaustiveNanos > 0 {
			fmt.Fprintf(&b, " %d exhaustive-ns %.1f speedup", c.ExhaustiveNanos, c.Speedup)
		}
		b.WriteString("\n")
	}
	return b.String()
}
