package load

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"streamcalc/internal/admit"
)

// LatencyStats summarizes one op kind's measured latencies (exact
// percentiles over every recorded sample, not histogram interpolation).
type LatencyStats struct {
	Count  int `json:"count"`
	Errors int `json:"errors,omitempty"`
	// Misses counts planned ops whose target flow wasn't registered
	// (releases/rechecks of flows the controller had rejected — expected
	// under a planned open-loop schedule) and rejected admissions.
	Misses int           `json:"misses,omitempty"`
	P50    time.Duration `json:"p50_ns"`
	P90    time.Duration `json:"p90_ns"`
	P99    time.Duration `json:"p99_ns"`
	Max    time.Duration `json:"max_ns"`
	Mean   time.Duration `json:"mean_ns"`
}

// summarize computes exact percentile statistics; ns is consumed (sorted in
// place).
func summarize(ns []int64) LatencyStats {
	s := LatencyStats{Count: len(ns)}
	if len(ns) == 0 {
		return s
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(ns)-1))
		return time.Duration(ns[i])
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	s.Max = time.Duration(ns[len(ns)-1])
	s.Mean = time.Duration(sum / int64(len(ns)))
	return s
}

// RampReport covers the bulk-registration phase.
type RampReport struct {
	TargetFlows int           `json:"target_flows"`
	Offered     int           `json:"offered"`
	Admitted    int           `json:"admitted"`
	Rejected    int           `json:"rejected"`
	Batches     int           `json:"batches"`
	BatchSize   int           `json:"batch_size"`
	Duration    time.Duration `json:"duration_ns"`
	FlowsPerSec float64       `json:"flows_per_second"`
}

// ChurnReport covers the paced warmup+measure churn phase.
type ChurnReport struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	WarmupOps   int     `json:"warmup_ops"`
	MeasuredOps int     `json:"measured_ops"`
	// Clients is the number of concurrent issuer lanes the planned schedule
	// was dealt across.
	Clients  int           `json:"clients"`
	Duration time.Duration `json:"duration_ns"`
	// Ops keys are "admit", "release", "recheck".
	Ops map[string]LatencyStats `json:"ops"`
	// Lateness is issue-time minus scheduled-time per measured op: the
	// open-loop pacing debt. A growing tail here means the target (or the
	// harness host) cannot keep up with the offered rate.
	Lateness LatencyStats `json:"lateness"`
	// ClientLateness is each client lane's own pacing debt over the measured
	// window — a single stalled client is visible here next to the aggregate.
	ClientLateness []LatencyStats `json:"client_lateness,omitempty"`
	// Phases summarizes the target's flight-recorder phase breakdown over the
	// admission decisions it retained at the end of the run (keys are the
	// admit phase names: queue_wait, analysis, victim_sweep, ...). Absent
	// when the target has no recorder.
	Phases map[string]LatencyStats `json:"phases,omitempty"`
}

// Report is the full run artifact, JSON-serializable for results/ and CI.
type Report struct {
	Scenario   string        `json:"scenario"`
	Mode       string        `json:"mode"` // "inproc" or "http"
	Seed       uint64        `json:"seed"`
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	StartedAt  time.Time     `json:"started_at"`
	Duration   time.Duration `json:"duration_ns"`

	Ramp   RampReport  `json:"ramp"`
	Steady TargetStats `json:"steady"` // snapshot after ramp, before churn
	Churn  ChurnReport `json:"churn"`
	Final  TargetStats `json:"final"` // snapshot after churn
}

// BenchText renders the report as Go benchmark lines parseable by the
// repo's .github/benchjson converter (fields: name, iterations, then
// value/unit pairs) — the bridge into BENCH_admitd.json.
func (r *Report) BenchText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BenchmarkNcloadRamp %d %.0f ns/op %.1f flows-per-sec %d flows %d classes %d heap-bytes\n",
		maxInt(r.Ramp.Offered, 1),
		float64(r.Ramp.Duration.Nanoseconds())/float64(maxInt(r.Ramp.Offered, 1)),
		r.Ramp.FlowsPerSec, r.Steady.Flows, r.Steady.Classes, r.Steady.HeapAlloc)
	for _, kind := range []string{"admit", "release", "recheck"} {
		st, ok := r.Churn.Ops[kind]
		if !ok || st.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "BenchmarkNcloadChurn%s %d %d ns/op %d p50-ns %d p99-ns %d max-ns\n",
			strings.ToUpper(kind[:1])+kind[1:], st.Count,
			st.Mean.Nanoseconds(), st.P50.Nanoseconds(), st.P99.Nanoseconds(), st.Max.Nanoseconds())
	}
	fmt.Fprintf(&b, "BenchmarkNcloadPacing %d %.1f target-rps %.1f achieved-rps %d lateness-p99-ns %d final-flows %d clients %d commit-conflicts\n",
		maxInt(r.Churn.MeasuredOps, 1), r.Churn.TargetRPS, r.Churn.AchievedRPS,
		r.Churn.Lateness.P99.Nanoseconds(), r.Final.Flows, r.Churn.Clients, r.Final.CommitConflicts)
	phases := make([]string, 0, len(r.Churn.Phases))
	for p := range r.Churn.Phases {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	for _, p := range phases {
		st := r.Churn.Phases[p]
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "BenchmarkNcloadPhase%s %d %d ns/op %d p50-ns %d p99-ns %d max-ns\n",
			camelPhase(p), st.Count,
			st.Mean.Nanoseconds(), st.P50.Nanoseconds(), st.P99.Nanoseconds(), st.Max.Nanoseconds())
	}
	return b.String()
}

// PhaseStats aggregates flight-recorder records into per-phase latency
// summaries. Only single-flow admission decisions contribute: batch ramp
// traffic and releases have different phase shapes and would skew the churn
// breakdown.
func PhaseStats(recs []admit.DecisionRecord) map[string]LatencyStats {
	byPhase := map[string][]int64{}
	for _, rec := range recs {
		if rec.Kind != admit.KindAdmit {
			continue
		}
		for _, p := range rec.Phases {
			byPhase[p.Phase] = append(byPhase[p.Phase], int64(p.Dur))
		}
	}
	if len(byPhase) == 0 {
		return nil
	}
	out := make(map[string]LatencyStats, len(byPhase))
	for p, ns := range byPhase {
		out[p] = summarize(ns)
	}
	return out
}

// camelPhase turns a snake_case phase name into the CamelCase suffix of its
// benchmark line ("queue_wait" -> "QueueWait").
func camelPhase(p string) string {
	var b strings.Builder
	up := true
	for _, r := range p {
		if r == '_' {
			up = true
			continue
		}
		if up && 'a' <= r && r <= 'z' {
			r -= 'a' - 'A'
		}
		up = false
		b.WriteRune(r)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
