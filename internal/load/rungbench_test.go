package load

import (
	"strings"
	"testing"
	"time"
)

// Check's gates on synthetic reports: counter coverage, winner identity, and
// the speedup floor on large matched lattices (small ones exempt).
func TestRungBenchCheck(t *testing.T) {
	good := &RungBenchReport{
		MinSpeedup: 3,
		Cases: []RungBenchCase{
			{Nodes: 2, Budget: 64, Combos: 9, Scored: 9, DPNanos: 100,
				ExhaustiveNanos: 120, Speedup: 1.2, Match: true},
			{Nodes: 6, Budget: 65536, Combos: 2304, Scored: 100, Pruned: 2204,
				DPNanos: 100, ExhaustiveNanos: 2000, Speedup: 20, Match: true},
			{Nodes: 8, Budget: 65536, Combos: 36864, Scored: 200, Pruned: 36664, DPNanos: 500},
		},
	}
	if err := good.Check(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}

	bad := *good
	bad.Cases = append([]RungBenchCase(nil), good.Cases...)
	bad.Cases[1].Match = false
	if err := bad.Check(); err == nil || !strings.Contains(err.Error(), "winners differ") {
		t.Errorf("diverging winners not caught: %v", err)
	}

	slow := *good
	slow.Cases = append([]RungBenchCase(nil), good.Cases...)
	slow.Cases[1].Speedup = 2
	if err := slow.Check(); err == nil || !strings.Contains(err.Error(), "speedup") {
		t.Errorf("speedup floor not enforced: %v", err)
	}

	uncovered := *good
	uncovered.Cases = append([]RungBenchCase(nil), good.Cases...)
	uncovered.Cases[2].Pruned = 0
	if err := uncovered.Check(); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Errorf("counter coverage not enforced: %v", err)
	}
}

// A single small matched case end to end: the DP and exhaustive timings are
// real, winners must match, and the bench rendering carries the case into
// BENCH_rung.json via the benchjson bridge format.
func TestRungBenchSmoke(t *testing.T) {
	p := rungBenchPipeline(3)
	if len(p.Nodes) != 3 || p.Nodes[0].CrossRate <= 0 {
		t.Fatalf("bench pipeline malformed: %+v", p.Nodes)
	}
	rep := &RungBenchReport{Cases: []RungBenchCase{{
		Nodes: 3, Budget: 64, Combos: 36, Scored: 28, Pruned: 8,
		DPNanos: 1000, ExhaustiveNanos: 5000, Speedup: 5, Match: true,
		DelayBound: 100 * time.Millisecond,
	}}}
	txt := rep.BenchText()
	if !strings.Contains(txt, "BenchmarkRungLatticeN3C64 1 1000 ns/op 36 combos 8 pruned 5000 exhaustive-ns 5.0 speedup") {
		t.Errorf("bench text format drifted:\n%s", txt)
	}
}
