package load

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/gen"
	"streamcalc/internal/obs"
	"streamcalc/internal/spec"
)

func smallConfig(t *testing.T) (Config, Scenario) {
	t.Helper()
	sc := DefaultScenario(2000)
	pop, err := gen.NewPopulation(sc.Spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := sc.Controller()
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Target:    InProc{C: ctrl},
		Pop:       pop,
		Flows:     2000,
		BatchSize: 512,
		Workers:   4,
		TargetRPS: 600,
		Warmup:    200 * time.Millisecond,
		Measure:   time.Second,
	}, sc
}

func TestHarnessInProc(t *testing.T) {
	cfg, _ := smallConfig(t)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.Target.(InProc).C.EnableFlightRecorder(1 << 14)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ramp.Admitted < cfg.Flows {
		t.Fatalf("ramp admitted %d < target %d (offered %d)", rep.Ramp.Admitted, cfg.Flows, rep.Ramp.Offered)
	}
	if rep.Steady.Flows < cfg.Flows {
		t.Fatalf("steady flows %d < target %d", rep.Steady.Flows, cfg.Flows)
	}
	if rep.Steady.Classes == 0 || rep.Steady.Classes > 64 {
		t.Fatalf("steady classes %d out of [1, 64]", rep.Steady.Classes)
	}
	if rep.Churn.MeasuredOps == 0 {
		t.Fatal("no measured churn ops")
	}
	ad := rep.Churn.Ops["admit"]
	if ad.Count == 0 || ad.P50 <= 0 || ad.Errors > 0 {
		t.Fatalf("bad admit stats: %+v", ad)
	}
	// In-process at this scale the harness must keep pace: achieved within
	// 30% of target.
	if rep.Churn.AchievedRPS < 0.7*rep.Churn.TargetRPS {
		t.Fatalf("achieved %.1f rps vs target %.1f", rep.Churn.AchievedRPS, rep.Churn.TargetRPS)
	}

	// The target's flight recorder feeds a per-phase breakdown: single-flow
	// admissions always pass precheck and the combiner queue.
	if len(rep.Churn.Phases) == 0 {
		t.Fatal("no phase breakdown despite an enabled flight recorder")
	}
	for _, phase := range []string{"precheck", "queue_wait"} {
		st, ok := rep.Churn.Phases[phase]
		if !ok || st.Count == 0 || st.P99 <= 0 {
			t.Errorf("phase %q stats missing/empty: %+v", phase, st)
		}
	}

	// The report round-trips as JSON and renders benchjson-parseable lines.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
	bench := rep.BenchText()
	for _, want := range []string{"BenchmarkNcloadRamp ", "BenchmarkNcloadChurnAdmit ", "BenchmarkNcloadPacing ", "BenchmarkNcloadPhaseQueueWait "} {
		if !strings.Contains(bench, want) {
			t.Fatalf("bench text missing %q:\n%s", want, bench)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(bench), "\n") {
		if f := strings.Fields(line); len(f) < 4 || len(f)%2 != 0 {
			t.Fatalf("malformed bench line (want name + iters + value/unit pairs): %q", line)
		}
	}
}

// The HTTP target must drive the daemon's REST surface; a stub server
// exposing the same routes over a real controller checks the client side.
func TestHarnessHTTP(t *testing.T) {
	cfg, sc := smallConfig(t)
	ctrl, err := sc.Controller()
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /admit/batch", func(w http.ResponseWriter, r *http.Request) {
		var wire []spec.Flow
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		flows := make([]admit.Flow, 0, len(wire))
		for i := range wire {
			f, err := wire[i].Admit()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			flows = append(flows, f)
		}
		type verdict struct {
			Admitted bool `json:"admitted"`
		}
		vs := ctrl.AdmitBatch(flows)
		out := make([]verdict, len(vs))
		for i, v := range vs {
			out[i] = verdict{Admitted: v.Admitted}
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("POST /admit", func(w http.ResponseWriter, r *http.Request) {
		var wire spec.Flow
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f, err := wire.Admit()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !ctrl.Admit(f).Admitted {
			w.WriteHeader(http.StatusConflict)
			return
		}
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("DELETE /flows/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !ctrl.Release(r.PathValue("id")) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /flows/{id}/recheck", func(w http.ResponseWriter, r *http.Request) {
		v, err := ctrl.Recheck(r.PathValue("id"))
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		if !v.Admitted {
			w.WriteHeader(http.StatusConflict)
			return
		}
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"flows": ctrl.FlowCount(), "classes": ctrl.ClassCount(),
			"epoch": ctrl.Epoch(), "heap_alloc_bytes": 1,
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cfg.Target = &HTTP{Base: srv.URL, Client: srv.Client()}
	cfg.Flows = 500
	cfg.BatchSize = 128
	cfg.TargetRPS = 300
	cfg.Measure = 500 * time.Millisecond
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ramp.Admitted < cfg.Flows {
		t.Fatalf("http ramp admitted %d < %d", rep.Ramp.Admitted, cfg.Flows)
	}
	if rep.Churn.MeasuredOps == 0 {
		t.Fatal("no measured ops over http")
	}
	for k, st := range rep.Churn.Ops {
		if st.Errors > 0 {
			t.Fatalf("op %s saw %d transport errors", k, st.Errors)
		}
	}
}

// The ramp request stream is deterministic: two harness runs from the same
// spec and seed offer identical flows (runtime latencies differ; the
// request sequence must not).
func TestHarnessDeterministicWorkload(t *testing.T) {
	sc := DefaultScenario(1000)
	a, err := gen.NewPopulation(sc.Spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.NewPopulation(sc.Spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	af, bf := a.Flows(0, 1000), b.Flows(0, 1000)
	for i := range af {
		if af[i].ID != bf[i].ID || af[i].Arrival.Rate != bf[i].Arrival.Rate ||
			af[i].Arrival.Burst != bf[i].Arrival.Burst {
			t.Fatalf("flow %d differs between identically seeded populations", i)
		}
	}
}

// The rung sweep is the acceptance artifact for the FIFO tightness ladder:
// the tight rung must admit strictly more identical-SLA tenants than blind,
// every rung's sim replay must respect its promised bounds, and the bench
// rendering must carry the admitted counts into BENCH_fifo.json.
func TestRungSweepLadder(t *testing.T) {
	rep, err := RungSweep(RungSweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	blind, tight := rep.Result("blind"), rep.Result("tight")
	if blind == nil || tight == nil {
		t.Fatalf("missing rung results: %+v", rep.Rungs)
	}
	if tight.Admitted <= blind.Admitted {
		t.Fatalf("tight admitted %d, blind %d — want strictly more", tight.Admitted, blind.Admitted)
	}
	if !strings.Contains(rep.BenchText(), "BenchmarkRungSweepTight") {
		t.Errorf("bench text missing tight rung:\n%s", rep.BenchText())
	}
}
