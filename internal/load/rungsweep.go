package load

import (
	"fmt"
	"strings"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// RungSweepConfig drives the FIFO-ladder comparison: the same shared platform
// is filled with identical-SLA tenants once per analysis rung, so the
// admitted-flow counts measure exactly what the tightness knob buys.
type RungSweepConfig struct {
	// Rungs to sweep (default: blind, fifo, tight).
	Rungs []core.Rung
	// MaxFlows caps the fill per rung (default 64).
	MaxFlows int
	// Replay validates every admitted flow by sim replay at its residual
	// service after the fill; Replay.Total defaults to 1 MiB.
	Replay admit.ReplayOptions
	Logf   func(format string, args ...any)
}

// RungResult is one rung's fill outcome.
type RungResult struct {
	Rung     string `json:"rung"`
	Admitted int    `json:"admitted"`
	// FirstDelay and LastDelay are the promised delay bounds of the first
	// and last admitted flow — how the bound degrades as the node fills.
	FirstDelay time.Duration `json:"first_delay_ns"`
	LastDelay  time.Duration `json:"last_delay_ns"`
	// Decide summarizes the per-admission decision latency (the cost axis
	// of the accuracy/tractability trade).
	Decide LatencyStats `json:"decide"`
	// Violations counts sim-replay bound violations across the admitted
	// flows (must be 0: every rung's bounds are sound, tighter rungs are
	// just less pessimistic).
	Violations int `json:"violations"`
}

// RungSweepReport is the rung-comparison artifact (results/rung_sweep.json).
type RungSweepReport struct {
	Scenario string        `json:"scenario"`
	SLO      time.Duration `json:"slo_ns"`
	MaxFlows int           `json:"max_flows"`
	Seed     uint64        `json:"seed"`
	Rungs    []RungResult  `json:"rungs"`
}

// rungSweepScenario is the canonical sweep platform: one shared 100 MB/s
// node filled by 5 MB/s tenants with 4 MB bursts under an 800 ms delay SLO.
// The numbers are chosen so the ladder separates: the blind residual charges
// every tenant the full cross burst at the residual rate, while the FIFO
// left-over family absorbs it into the theta shift, so the tighter rungs
// keep admitting well after blind's bound crosses the SLO.
func rungSweepScenario() (core.Node, admit.Flow, time.Duration) {
	node := core.Node{
		Name: "shared", Rate: 100e6, Latency: 100 * time.Millisecond,
		JobIn: 1500, JobOut: 1500, MaxPacket: 1500,
	}
	tenant := admit.Flow{
		Arrival: core.Arrival{Rate: 5e6, Burst: 4e6, MaxPacket: 1500},
		Path:    []string{"shared"},
	}
	return node, tenant, 800 * time.Millisecond
}

// RungSweep fills the sweep platform once per rung with identical tenants
// and reports admitted counts, decision-latency stats, and replay soundness.
// The acceptance invariant — tighter rungs admit at least as many flows, the
// tight rung strictly more than blind, all with zero replay violations — is
// asserted by the caller (ncload -rungsweep, the CI load-smoke gate).
func RungSweep(cfg RungSweepConfig) (*RungSweepReport, error) {
	if len(cfg.Rungs) == 0 {
		cfg.Rungs = []core.Rung{core.RungBlind, core.RungFIFO, core.RungTight}
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = 64
	}
	if cfg.Replay.Total <= 0 {
		cfg.Replay.Total = units.MiB
	}
	node, tenant, slo := rungSweepScenario()
	rep := &RungSweepReport{
		Scenario: "rung-sweep/shared-node",
		SLO:      slo,
		MaxFlows: cfg.MaxFlows,
		Seed:     cfg.Replay.Seed,
	}
	for _, r := range cfg.Rungs {
		c, err := admit.New("rung-sweep", []core.Node{node})
		if err != nil {
			return nil, err
		}
		c.SetRung(r)
		res := RungResult{Rung: r.Resolved().String()}
		lat := make([]int64, 0, cfg.MaxFlows)
		for i := 0; i < cfg.MaxFlows; i++ {
			f := tenant
			f.ID = fmt.Sprintf("t-%d", i)
			f.SLO = admit.SLO{MaxDelay: slo}
			start := time.Now()
			v := c.Admit(f)
			lat = append(lat, time.Since(start).Nanoseconds())
			if !v.Admitted {
				break
			}
			if res.Admitted == 0 {
				res.FirstDelay = v.Delay
			}
			res.LastDelay = v.Delay
			res.Admitted++
		}
		res.Decide = summarize(lat)
		rv, err := c.RevalidateAll(admit.RevalidateOptions{Replay: cfg.Replay})
		if err != nil {
			return nil, fmt.Errorf("rung %s: revalidate: %w", res.Rung, err)
		}
		res.Violations = rv.Violations
		if cfg.Logf != nil {
			cfg.Logf("rung %-5s admitted %2d/%d (bound %v → %v), decide p99 %v, %d replay violations",
				res.Rung, res.Admitted, cfg.MaxFlows, res.FirstDelay, res.LastDelay,
				res.Decide.P99, res.Violations)
		}
		rep.Rungs = append(rep.Rungs, res)
	}
	return rep, nil
}

// Result returns the sweep outcome for one rung name, or nil.
func (r *RungSweepReport) Result(rung string) *RungResult {
	for i := range r.Rungs {
		if r.Rungs[i].Rung == rung {
			return &r.Rungs[i]
		}
	}
	return nil
}

// Check asserts the ladder acceptance invariants: no rung's replay violated
// a promised bound, admitted counts are non-decreasing up the ladder, and
// the tightest swept rung admits strictly more flows than the cheapest.
func (r *RungSweepReport) Check() error {
	if len(r.Rungs) < 2 {
		return fmt.Errorf("rung sweep: need at least 2 rungs, got %d", len(r.Rungs))
	}
	for i, res := range r.Rungs {
		if res.Violations > 0 {
			return fmt.Errorf("rung sweep: rung %s had %d replay violations", res.Rung, res.Violations)
		}
		if i > 0 && res.Admitted < r.Rungs[i-1].Admitted {
			return fmt.Errorf("rung sweep: rung %s admitted %d < %s's %d",
				res.Rung, res.Admitted, r.Rungs[i-1].Rung, r.Rungs[i-1].Admitted)
		}
	}
	first, last := r.Rungs[0], r.Rungs[len(r.Rungs)-1]
	if last.Admitted <= first.Admitted {
		return fmt.Errorf("rung sweep: %s admitted %d, not strictly more than %s's %d",
			last.Rung, last.Admitted, first.Rung, first.Admitted)
	}
	return nil
}

// BenchText renders the sweep as Go benchmark lines for the .github/benchjson
// converter — the bridge into BENCH_fifo.json.
func (r *RungSweepReport) BenchText() string {
	var b strings.Builder
	for _, res := range r.Rungs {
		fmt.Fprintf(&b, "BenchmarkRungSweep%s %d %d ns/op %d admitted-flows %d violations %d last-delay-ns\n",
			strings.ToUpper(res.Rung[:1])+res.Rung[1:],
			maxInt(res.Decide.Count, 1), res.Decide.Mean.Nanoseconds(),
			res.Admitted, res.Violations, res.LastDelay.Nanoseconds())
	}
	return b.String()
}
