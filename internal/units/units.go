// Package units provides data-size and data-rate quantities used throughout
// the network-calculus models, the discrete-event simulator, and the
// measurement harnesses.
//
// Internally all data volumes are float64 bytes and all rates are float64
// bytes per second. The type wrappers exist to keep call sites readable and
// to centralize parsing/formatting of the binary-prefixed units (KiB, MiB,
// GiB) that the paper reports.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Bytes is a data volume in bytes. Fractional values are permitted because
// model curves are continuous fluid approximations.
type Bytes float64

// Binary-prefixed data-volume constants.
const (
	B   Bytes = 1
	KiB Bytes = 1024
	MiB Bytes = 1024 * 1024
	GiB Bytes = 1024 * 1024 * 1024
	TiB Bytes = 1024 * 1024 * 1024 * 1024
)

// Rate is a data rate in bytes per second.
type Rate float64

// Common data-rate constants.
const (
	BytePerSec Rate = 1
	KiBPerSec  Rate = 1024
	MiBPerSec  Rate = 1024 * 1024
	GiBPerSec  Rate = 1024 * 1024 * 1024
)

// PerSecond returns the rate corresponding to transferring b bytes every
// second.
func (b Bytes) PerSecond() Rate { return Rate(b) }

// Over returns the rate achieved by moving b bytes in d. It returns +Inf for
// non-positive durations of positive volumes and 0 for zero volume.
func (b Bytes) Over(d time.Duration) Rate {
	if d <= 0 {
		if b == 0 {
			return 0
		}
		return Rate(math.Inf(1))
	}
	return Rate(float64(b) / d.Seconds())
}

// Time returns how long transferring b bytes takes at rate r.
// A non-positive rate yields an infinite duration (reported as the maximum
// representable time.Duration).
func (b Bytes) Time(r Rate) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := float64(b) / float64(r)
	if sec >= float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(sec * float64(time.Second))
}

// Mul scales the volume by x.
func (b Bytes) Mul(x float64) Bytes { return Bytes(float64(b) * x) }

// Bytes returns the volume moved at rate r during d.
func (r Rate) Bytes(d time.Duration) Bytes { return Bytes(float64(r) * d.Seconds()) }

// Mul scales the rate by x.
func (r Rate) Mul(x float64) Rate { return Rate(float64(r) * x) }

// String formats the volume with an automatically chosen binary prefix,
// e.g. "20.6 MiB".
func (b Bytes) String() string {
	v := float64(b)
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case v >= float64(TiB):
		return fmt.Sprintf("%s%.3g TiB", neg, v/float64(TiB))
	case v >= float64(GiB):
		return fmt.Sprintf("%s%.3g GiB", neg, v/float64(GiB))
	case v >= float64(MiB):
		return fmt.Sprintf("%s%.3g MiB", neg, v/float64(MiB))
	case v >= float64(KiB):
		return fmt.Sprintf("%s%.3g KiB", neg, v/float64(KiB))
	default:
		return fmt.Sprintf("%s%.3g B", neg, v)
	}
}

// String formats the rate with an automatically chosen binary prefix,
// e.g. "350 MiB/s".
func (r Rate) String() string {
	v := float64(r)
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case math.IsInf(v, 1):
		return neg + "inf"
	case v >= float64(GiBPerSec):
		return fmt.Sprintf("%s%.3g GiB/s", neg, v/float64(GiBPerSec))
	case v >= float64(MiBPerSec):
		return fmt.Sprintf("%s%.3g MiB/s", neg, v/float64(MiBPerSec))
	case v >= float64(KiBPerSec):
		return fmt.Sprintf("%s%.3g KiB/s", neg, v/float64(KiBPerSec))
	default:
		return fmt.Sprintf("%s%.3g B/s", neg, v)
	}
}

var sizeSuffixes = []struct {
	suffix string
	unit   Bytes
}{
	{"TiB", TiB}, {"GiB", GiB}, {"MiB", MiB}, {"KiB", KiB},
	{"TB", 1e12}, {"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3},
	{"B", B},
}

// ParseBytes parses strings such as "16MiB", "1.5 GiB", "512 B", "2048".
// A bare number is interpreted as bytes.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	for _, sf := range sizeSuffixes {
		if strings.HasSuffix(t, sf.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(t, sf.suffix))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: parse %q: %w", s, err)
			}
			return Bytes(v) * sf.unit, nil
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse %q: %w", s, err)
	}
	return Bytes(v), nil
}

// ParseRate parses strings such as "350MiB/s", "10 GiB/s", "1024" (bytes/s).
func ParseRate(s string) (Rate, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimSuffix(t, "/s")
	b, err := ParseBytes(t)
	if err != nil {
		return 0, fmt.Errorf("units: parse rate %q: %w", s, err)
	}
	return Rate(b), nil
}

// MarshalText implements encoding.TextMarshaler for Bytes.
func (b Bytes) MarshalText() ([]byte, error) { return []byte(b.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler for Bytes.
func (b *Bytes) UnmarshalText(text []byte) error {
	v, err := ParseBytes(string(text))
	if err != nil {
		return err
	}
	*b = v
	return nil
}

// MarshalText implements encoding.TextMarshaler for Rate.
func (r Rate) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler for Rate.
func (r *Rate) UnmarshalText(text []byte) error {
	v, err := ParseRate(string(text))
	if err != nil {
		return err
	}
	*r = v
	return nil
}
