package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1 KiB"},
		{1536, "1.5 KiB"},
		{MiB, "1 MiB"},
		{20.6 * MiB, "20.6 MiB"},
		{GiB, "1 GiB"},
		{-2 * MiB, "-2 MiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   Rate
		want string
	}{
		{350 * MiBPerSec, "350 MiB/s"},
		{10 * GiBPerSec, "10 GiB/s"},
		{Rate(math.Inf(1)), "inf"},
		{100, "100 B/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Rate.String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"16MiB", 16 * MiB},
		{"1.5 GiB", 1.5 * GiB},
		{"512 B", 512},
		{"2048", 2048},
		{"3KiB", 3 * KiB},
		{"1MB", 1e6},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "12QiB", "MiB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q): expected error", in)
		}
	}
}

func TestParseRate(t *testing.T) {
	got, err := ParseRate("350 MiB/s")
	if err != nil {
		t.Fatal(err)
	}
	if got != 350*MiBPerSec {
		t.Errorf("got %v", got)
	}
	if _, err := ParseRate("x/s"); err == nil {
		t.Error("expected error")
	}
}

func TestBytesTime(t *testing.T) {
	if d := (350 * MiB).Time(350 * MiBPerSec); d != time.Second {
		t.Errorf("Time = %v, want 1s", d)
	}
	if d := Bytes(100).Time(0); d != time.Duration(math.MaxInt64) {
		t.Errorf("zero-rate Time = %v, want max", d)
	}
}

func TestBytesOver(t *testing.T) {
	if r := (2 * MiB).Over(2 * time.Second); r != MiBPerSec {
		t.Errorf("Over = %v", r)
	}
	if r := Bytes(0).Over(0); r != 0 {
		t.Errorf("0/0 = %v, want 0", r)
	}
	if r := Bytes(1).Over(0); !math.IsInf(float64(r), 1) {
		t.Errorf("1/0 = %v, want +Inf", r)
	}
}

func TestRateBytes(t *testing.T) {
	if b := (10 * MiBPerSec).Bytes(500 * time.Millisecond); b != 5*MiB {
		t.Errorf("Bytes = %v", b)
	}
}

func TestTextRoundTrip(t *testing.T) {
	b := 20.5 * MiB
	txt, err := b.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Bytes
	if err := back.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(back-b)) > float64(b)*1e-2 {
		t.Errorf("round trip %v -> %s -> %v", float64(b), txt, float64(back))
	}

	r := 350 * MiBPerSec
	txt, err = r.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var rback Rate
	if err := rback.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rback-r)) > float64(r)*1e-2 {
		t.Errorf("round trip %v -> %s -> %v", float64(r), txt, float64(rback))
	}
	if err := rback.UnmarshalText([]byte("nope")); err == nil {
		t.Error("expected error")
	}
	var bb Bytes
	if err := bb.UnmarshalText([]byte("nope")); err == nil {
		t.Error("expected error")
	}
}

// Property: Time and Over are inverses (where defined).
func TestTimeOverInverse(t *testing.T) {
	f := func(vol uint32, rate uint32) bool {
		b := Bytes(vol%(1<<20) + 1)
		r := Rate(rate%(1<<20) + 1)
		d := b.Time(r)
		got := r.Bytes(d)
		return math.Abs(float64(got-b)) <= float64(b)*1e-6+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips within formatting precision.
func TestStringParseRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := Bytes(v % uint64(10*TiB))
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// %.3g keeps 3 significant digits.
		return math.Abs(float64(parsed-b)) <= float64(b)*5e-3+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
