// Package envelope estimates arrival curves from measured cumulative
// traffic traces: given the (t, cumulative bytes) trajectory of a real or
// simulated flow, it computes the empirical arrival curve (the tightest
// wide-sense-increasing envelope over all time windows) and fits minimal
// leaky-bucket parameters — turning observations into the alpha the
// network-calculus model needs.
package envelope

import (
	"errors"
	"math"
	"sort"

	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// Point is one sample of a cumulative-arrivals trajectory.
type Point struct {
	T   float64 // seconds
	Cum float64 // cumulative bytes at T
}

// validate checks monotonicity in both coordinates.
func validate(trace []Point) error {
	if len(trace) < 2 {
		return errors.New("envelope: need at least two trace points")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].T < trace[i-1].T || trace[i].Cum < trace[i-1].Cum {
			return errors.New("envelope: trace must be non-decreasing in time and volume")
		}
	}
	return nil
}

// LeakyBucket fits the minimal leaky-bucket envelope for a given rate: the
// smallest burst b such that cum(t) - cum(s) <= rate*(t-s) + b for all
// windows. The trace is interpreted with event (step) semantics: the
// cumulative count jumps at each sample instant, so a packet arriving at
// t_i contributes a zero-width window of its own size. With rate below the
// trace's long-run rate the burst grows with trace length; callers usually
// pass MinSustainRate or higher.
func LeakyBucket(trace []Point, rate units.Rate) (units.Bytes, error) {
	if err := validate(trace); err != nil {
		return 0, err
	}
	if rate <= 0 {
		return 0, errors.New("envelope: rate must be positive")
	}
	// b = max over window ends of (cumAfter_i - rate*t_i) minus the minimum
	// over earlier window starts of (cumBefore_j - rate*t_j), in one sweep.
	// cumBefore at a sample is the previous sample's cumulative value (the
	// level just before the jump).
	minSeen := math.Inf(1)
	burst := 0.0
	prevCum := trace[0].Cum
	for i, p := range trace {
		before := prevCum
		if i == 0 {
			before = p.Cum // no jump attributed to the first sample
		}
		if low := before - float64(rate)*p.T; low < minSeen {
			minSeen = low
		}
		if v := p.Cum - float64(rate)*p.T - minSeen; v > burst {
			burst = v
		}
		prevCum = p.Cum
	}
	return units.Bytes(burst), nil
}

// MinSustainRate returns the long-run rate of the trace (total volume over
// total time).
func MinSustainRate(trace []Point) (units.Rate, error) {
	if err := validate(trace); err != nil {
		return 0, err
	}
	first, last := trace[0], trace[len(trace)-1]
	dt := last.T - first.T
	if dt <= 0 {
		return 0, errors.New("envelope: trace spans zero time")
	}
	return units.Rate((last.Cum - first.Cum) / dt), nil
}

// Empirical computes the empirical arrival curve at n window lengths up to
// maxWindow: alpha_emp(w) = max over s of cum(s+w) - cum(s), evaluated on
// the trace's own sample points with linear interpolation. The result is a
// concave-ish staircase suitable for plotting or for dominating-envelope
// checks; Fit returns a parametric bound instead.
func Empirical(trace []Point, maxWindow float64, n int) (curve.Curve, error) {
	if err := validate(trace); err != nil {
		return curve.Zero(), err
	}
	if n < 2 {
		n = 2
	}
	if maxWindow <= 0 {
		maxWindow = trace[len(trace)-1].T - trace[0].T
	}
	cumAt := interpolator(trace)
	xs := make([]float64, n+1)
	ys := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		w := maxWindow * float64(i) / float64(n)
		xs[i] = w
		best := 0.0
		for _, p := range trace {
			if v := cumAt(p.T+w) - p.Cum; v > best {
				best = v
			}
		}
		// Windows ending at trace points matter too (bursts land there).
		for _, p := range trace {
			if v := p.Cum - cumAt(p.T-w); v > best {
				best = v
			}
		}
		ys[i] = best
	}
	// Enforce monotonicity (numeric guard) and a zero origin.
	for i := 1; i <= n; i++ {
		if ys[i] < ys[i-1] {
			ys[i] = ys[i-1]
		}
	}
	finalSlope := 0.0
	if n >= 2 {
		finalSlope = (ys[n] - ys[n-1]) / (xs[n] - xs[n-1])
	}
	return curve.FromPoints(xs, ys, finalSlope), nil
}

// interpolator returns cum(t) under event (step) semantics: the value of
// the last sample at or before t (right-continuous), clamped at the ends.
func interpolator(trace []Point) func(t float64) float64 {
	return func(t float64) float64 {
		if t < trace[0].T {
			return trace[0].Cum
		}
		i := sort.Search(len(trace), func(i int) bool { return trace[i].T > t })
		return trace[i-1].Cum
	}
}

// Fit returns leaky-bucket arrival parameters that dominate the trace: the
// long-run rate (optionally inflated by headroom >= 0, e.g. 0.05 for +5%)
// and the minimal burst at that rate.
func Fit(trace []Point, headroom float64) (units.Rate, units.Bytes, error) {
	rate, err := MinSustainRate(trace)
	if err != nil {
		return 0, 0, err
	}
	if headroom < 0 {
		headroom = 0
	}
	rate = rate.Mul(1 + headroom)
	burst, err := LeakyBucket(trace, rate)
	if err != nil {
		return 0, 0, err
	}
	return rate, burst, nil
}

// FromTracePoints adapts the simulator's TracePoint-like series (durations
// and byte counts) into envelope Points.
func FromTracePoints(ts []float64, cums []float64) []Point {
	n := len(ts)
	if len(cums) < n {
		n = len(cums)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = Point{T: ts[i], Cum: cums[i]}
	}
	return out
}
