package envelope

import (
	"math"
	"testing"

	"streamcalc/internal/sim"
)

// constantTrace builds the trajectory of a constant-rate packet flow.
func constantTrace(rate float64, packet float64, n int) []Point {
	out := make([]Point, 0, n+1)
	cum := 0.0
	out = append(out, Point{0, 0})
	for i := 1; i <= n; i++ {
		cum += packet
		out = append(out, Point{T: packet * float64(i) / rate, Cum: cum})
	}
	return out
}

func TestMinSustainRate(t *testing.T) {
	tr := constantTrace(100, 10, 50)
	r, err := MinSustainRate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(r)-100) > 1e-9 {
		t.Errorf("rate = %v", r)
	}
}

func TestLeakyBucketConstantFlow(t *testing.T) {
	tr := constantTrace(100, 10, 50)
	// At the sustain rate the burst equals one packet (each packet lands
	// instantaneously ahead of the fluid line).
	b, err := LeakyBucket(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if float64(b) < 9.9 || float64(b) > 10.1 {
		t.Errorf("burst = %v, want ~10", b)
	}
	// A faster rate needs less burst.
	b2, _ := LeakyBucket(tr, 200)
	if b2 > b {
		t.Errorf("higher rate must not need more burst: %v > %v", b2, b)
	}
}

func TestLeakyBucketBurstyFlow(t *testing.T) {
	// A 100-byte burst at t=0, then silence, then another at t=1.
	tr := []Point{{0, 0}, {0, 100}, {1, 100}, {1, 200}, {2, 200}}
	rate, err := MinSustainRate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rate)-100) > 1e-9 {
		t.Fatalf("sustain rate = %v", rate)
	}
	b, _ := LeakyBucket(tr, 100)
	if float64(b) < 99 {
		t.Errorf("burst = %v, want >= 100", b)
	}
	// The envelope must dominate the trace: check a window of 1s.
	if float64(b)+100*1 < 200-1e-9 {
		t.Error("envelope fails to cover a 1-second window")
	}
}

func TestFitDominatesTrace(t *testing.T) {
	tr := []Point{{0, 0}, {0.1, 500}, {0.5, 600}, {1.0, 1500}, {2.0, 1600}}
	rate, burst, err := Fit(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	// alpha(t-s) >= cum(t)-cum(s) for all trace windows.
	for i := range tr {
		for j := i + 1; j < len(tr); j++ {
			w := tr[j].T - tr[i].T
			vol := tr[j].Cum - tr[i].Cum
			if float64(rate)*w+float64(burst) < vol-1e-6 {
				t.Fatalf("envelope violated on window [%v,%v]: %v < %v",
					tr[i].T, tr[j].T, float64(rate)*w+float64(burst), vol)
			}
		}
	}
	// Headroom inflates the rate.
	r2, _, _ := Fit(tr, 0.10)
	if float64(r2) <= float64(rate) {
		t.Error("headroom must raise the rate")
	}
}

func TestEmpiricalCurve(t *testing.T) {
	tr := constantTrace(100, 10, 100)
	emp, err := Empirical(tr, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical curve of a constant flow: ~rate*w + packet.
	for _, w := range []float64{0.1, 0.25, 0.5} {
		got := emp.Value(w)
		want := 100*w + 10
		if got < want-10.5 || got > want+10.5 {
			t.Errorf("emp(%v) = %v, want ~%v", w, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := MinSustainRate(nil); err == nil {
		t.Error("empty trace must fail")
	}
	if _, err := MinSustainRate([]Point{{0, 0}}); err == nil {
		t.Error("single point must fail")
	}
	if _, err := LeakyBucket([]Point{{0, 0}, {1, -1}}, 1); err == nil {
		t.Error("decreasing volume must fail")
	}
	if _, err := LeakyBucket([]Point{{1, 0}, {0, 1}}, 1); err == nil {
		t.Error("decreasing time must fail")
	}
	if _, err := LeakyBucket(constantTrace(1, 1, 3), 0); err == nil {
		t.Error("zero rate must fail")
	}
	if _, err := MinSustainRate([]Point{{1, 0}, {1, 5}}); err == nil {
		t.Error("zero-duration trace must fail")
	}
	if _, err := Empirical(nil, 1, 2); err == nil {
		t.Error("empty trace must fail in Empirical")
	}
}

// End-to-end: fit an envelope to the simulator's output trajectory and
// verify the downstream NC analysis with that alpha dominates the
// simulated flow.
func TestFitFromSimulatorTrace(t *testing.T) {
	p := sim.New(sim.SourceConfig{Rate: 1000, PacketSize: 50, TotalInput: 20000}, 3).
		Add(sim.StageFromRate("srv", 1500, 2500, 50, 50))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]float64, len(res.Output))
	cums := make([]float64, len(res.Output))
	for i, pt := range res.Output {
		ts[i] = pt.T.Seconds()
		cums[i] = float64(pt.Cum)
	}
	trace := FromTracePoints(ts, cums)
	rate, burst, err := Fit(trace, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || burst < 0 {
		t.Fatalf("fit: %v %v", rate, burst)
	}
	// The fitted envelope dominates every window of the observed output.
	for i := range trace {
		for j := i + 1; j < len(trace); j++ {
			w := trace[j].T - trace[i].T
			vol := trace[j].Cum - trace[i].Cum
			if float64(rate)*w+float64(burst) < vol-1e-6 {
				t.Fatalf("fitted envelope violated on sim trace")
			}
		}
	}
}
