package sim

import (
	"math"
	"sort"
	"time"

	"streamcalc/internal/des"
	"streamcalc/internal/stats"
	"streamcalc/internal/units"
)

// span is a contiguous chunk of flowing data: local bytes plus the
// input-referred bytes they correspond to.
type span struct {
	local float64
	input float64
	// tIn is the arrival time of the span's oldest byte at the current
	// queue (for per-stage sojourn measurement).
	tIn float64
}

// byteQueue is a FIFO of spans with byte-level granularity: pops may split
// spans, attributing input-referred bytes proportionally.
type byteQueue struct {
	spans      []span
	head       int
	localBytes float64
	inputBytes float64
	capLocal   float64 // 0 = unbounded
	wmLocal    stats.Watermark
	wmInput    stats.Watermark
}

func (q *byteQueue) hasSpace(local float64) bool {
	return q.capLocal == 0 || q.localBytes+local <= q.capLocal+1e-9
}

func (q *byteQueue) push(s span) {
	q.spans = append(q.spans, s)
	q.localBytes += s.local
	q.inputBytes += s.input
	q.wmLocal.Set(q.localBytes)
	q.wmInput.Set(q.inputBytes)
}

// pop removes exactly amount local bytes (amount must be <= localBytes up to
// rounding) and returns the covered span.
func (q *byteQueue) pop(amount float64) span {
	out := span{tIn: math.Inf(1)}
	remaining := amount
	for remaining > 1e-12 && q.head < len(q.spans) {
		s := &q.spans[q.head]
		if s.local <= remaining+1e-12 {
			out.local += s.local
			out.input += s.input
			if s.tIn < out.tIn {
				out.tIn = s.tIn
			}
			remaining -= s.local
			q.head++
			continue
		}
		frac := remaining / s.local
		out.local += remaining
		out.input += s.input * frac
		if s.tIn < out.tIn {
			out.tIn = s.tIn
		}
		s.input -= s.input * frac
		s.local -= remaining
		remaining = 0
	}
	if q.head > 1024 && q.head*2 > len(q.spans) {
		q.spans = append([]span(nil), q.spans[q.head:]...)
		q.head = 0
	}
	q.localBytes -= out.local
	q.inputBytes -= out.input
	if q.localBytes < 0 {
		q.localBytes = 0
	}
	if q.inputBytes < 0 {
		q.inputBytes = 0
	}
	return out
}

// stage is the runtime state machine for one pipeline stage.
type stage struct {
	cfg StageConfig
	run *run
	idx int
	rng *des.RNG

	in   byteQueue
	next *stage // nil means the sink follows

	busy         bool
	blocked      bool
	pendingOut   span
	upstreamDone bool
	doneSent     bool

	jobs         int64
	busyTime     float64
	blockedSince float64
	blockedTime  float64
	firstInput   float64
	lastOutput   float64
	sawInput     bool
	stallAccum   float64
	stalls       int64
	sojourn      stats.Summary
}

// run owns the simulator and all runtime state for one execution.
type run struct {
	p   *Pipeline
	sim *des.Simulator

	stages []*stage
	srcRNG *des.RNG

	// Source state.
	emitted    float64 // bytes offered so far
	srcDone    bool
	srcBlocked bool
	// Emission log for virtual-delay lookup: cumulative input after each
	// emission and its time.
	emitT   []float64
	emitCum []float64

	// Sink state.
	cumOut       float64
	delays       stats.Summary
	delaySamples []float64 // raw per-departure delays, for quantiles
	backlog      stats.Watermark
	lastT        float64

	inTrace, outTrace *trace

	// Telemetry (nil when detached; every probe site is one nil check).
	pr *probes
	tr *tracer
}

func newRun(p *Pipeline) *run {
	r := &run{p: p, sim: &des.Simulator{}}
	r.srcRNG = des.NewRNG(p.seed, 0)
	r.inTrace = newTrace(4096)
	r.outTrace = newTrace(4096)
	if p.reg != nil {
		r.pr = newProbes(p.reg, p.stages)
		r.sim.SetObserver(r.pr.observer())
	}
	if p.tw != nil {
		r.tr = newTracer(p.tw, p.stages)
	}
	var next *stage
	for i := len(p.stages) - 1; i >= 0; i-- {
		st := &stage{cfg: p.stages[i], run: r, idx: i, next: next}
		st.rng = des.NewRNG(p.seed, uint64(i)+1)
		st.in.capLocal = float64(p.stages[i].QueueCap)
		next = st
	}
	for st := next; st != nil; st = st.next {
		r.stages = append(r.stages, st)
	}
	return r
}

func (r *run) start() {
	if r.p.src.Burst > 0 {
		r.sim.Schedule(0, func() { r.emit(float64(r.p.src.Burst)) })
	}
	r.sim.Schedule(0, r.sourceTick)
}

// sourceTick emits the next packet if the first queue has space, otherwise
// marks the source blocked; the queue wakes it on space.
func (r *run) sourceTick() {
	if r.srcDone {
		return
	}
	total := float64(r.p.src.TotalInput)
	if r.emitted >= total-1e-9 {
		r.finishSource()
		return
	}
	size := math.Min(float64(r.p.src.PacketSize), total-r.emitted)
	first := r.stages[0]
	if !first.in.hasSpace(size) {
		r.srcBlocked = true
		return
	}
	r.emit(size)
	if r.emitted >= total-1e-9 {
		r.finishSource()
		return
	}
	var gap float64
	switch {
	case len(r.p.src.Envelope) > 0:
		// Greedy envelope playback: the next packet goes out at the
		// earliest time every bucket allows emitted+P total bytes.
		next := math.Min(float64(r.p.src.PacketSize), total-r.emitted)
		t := r.sim.Now()
		for _, b := range r.p.src.Envelope {
			need := (r.emitted + next - float64(b.Burst)) / float64(b.Rate)
			if need > t {
				t = need
			}
		}
		gap = t - r.sim.Now()
	case r.p.src.Poisson:
		gap = r.srcRNG.Exp(float64(r.p.src.PacketSize) / float64(r.p.src.Rate))
	default:
		gap = size / float64(r.p.src.Rate)
	}
	r.sim.Schedule(gap, r.sourceTick)
}

func (r *run) emit(size float64) {
	r.emitted += size
	r.emitT = append(r.emitT, r.sim.Now())
	r.emitCum = append(r.emitCum, r.emitted)
	r.inTrace.add(r.sim.Now(), r.emitted)
	r.backlog.Set(r.emitted - r.cumOut)
	if r.pr != nil {
		r.pr.inputBytes.Set(r.emitted)
		r.pr.backlog.Set(r.emitted - r.cumOut)
	}
	if r.tr != nil {
		r.tr.input(r.sim.Now(), r.emitted)
	}
	first := r.stages[0]
	first.onArrival(span{local: size, input: size})
}

func (r *run) finishSource() {
	r.srcDone = true
	r.stages[0].upstreamDone = true
	r.stages[0].tryStart()
}

// inputTimeOf returns the time at which the cumulative offered input first
// reached cum.
func (r *run) inputTimeOf(cum float64) float64 {
	i := sort.SearchFloat64s(r.emitCum, cum-1e-6)
	if i >= len(r.emitT) {
		i = len(r.emitT) - 1
	}
	if i < 0 {
		return 0
	}
	return r.emitT[i]
}

// deliver is called by the last stage: data leaves the system.
func (r *run) deliver(s span) {
	now := r.sim.Now()
	r.cumOut += s.input
	r.outTrace.add(now, r.cumOut)
	r.backlog.Set(r.emitted - r.cumOut)
	d := now - r.inputTimeOf(r.cumOut)
	if d < 0 {
		d = 0
	}
	r.delays.Add(d)
	r.delaySamples = append(r.delaySamples, d)
	r.lastT = now
	if r.pr != nil {
		r.pr.outBytes.Set(r.cumOut)
		r.pr.backlog.Set(r.emitted - r.cumOut)
	}
	if r.tr != nil {
		r.tr.output(now, r.cumOut)
	}
}

// onArrival receives a span into the stage's input queue.
func (st *stage) onArrival(s span) {
	if !st.sawInput {
		st.sawInput = true
		st.firstInput = st.run.sim.Now()
	}
	s.tIn = st.run.sim.Now()
	st.in.push(s)
	st.noteQueueLevel()
	st.tryStart()
}

// noteQueueLevel publishes the stage's current input-queue occupancy to the
// attached metrics registry and trace, if any.
func (st *stage) noteQueueLevel() {
	r := st.run
	if r.pr != nil {
		r.pr.queue[st.idx].Set(st.in.localBytes)
	}
	if r.tr != nil {
		r.tr.queueLevel(st.idx, r.sim.Now(), st.in.localBytes)
	}
}

// ready reports whether a job (full or flush) can start.
func (st *stage) ready() (amount float64, ok bool) {
	jobIn := float64(st.cfg.JobIn)
	if st.in.localBytes >= jobIn-1e-9 {
		return math.Min(jobIn, st.in.localBytes), true
	}
	if st.upstreamDone && st.in.localBytes > 1e-9 {
		return st.in.localBytes, true // final partial flush
	}
	return 0, false
}

func (st *stage) tryStart() {
	if st.busy || st.blocked {
		return
	}
	amount, ok := st.ready()
	if !ok {
		st.maybePropagateDone()
		return
	}
	job := st.in.pop(amount)
	st.noteQueueLevel()
	st.notifyUpstreamSpace()
	frac := amount / float64(st.cfg.JobIn)
	if frac > 1 {
		frac = 1
	}
	var exec float64
	minE, maxE := st.cfg.MinExec.Seconds(), st.cfg.MaxExec.Seconds()
	if st.cfg.ExpExec {
		exec = st.rng.Exp((minE + maxE) / 2)
	} else {
		exec = st.rng.Uniform(minE, maxE)
		if minE == maxE {
			exec = minE
		}
	}
	exec *= frac
	if st.jobs == 0 && st.cfg.Startup > 0 {
		exec += st.cfg.Startup.Seconds()
	}
	if st.cfg.StallEvery > 0 && st.cfg.StallFor > 0 {
		st.stallAccum += exec
		var jobStalls int64
		for st.stallAccum >= st.cfg.StallEvery.Seconds() {
			st.stallAccum -= st.cfg.StallEvery.Seconds()
			exec += st.cfg.StallFor.Seconds()
			st.stalls++
			jobStalls++
		}
		if jobStalls > 0 {
			r := st.run
			if r.pr != nil {
				r.pr.stalls[st.idx].Add(uint64(jobStalls))
				r.pr.stallT[st.idx].Add(float64(jobStalls) * st.cfg.StallFor.Seconds())
			}
			if r.tr != nil {
				r.tr.stall(st.idx, r.sim.Now(), float64(jobStalls)*st.cfg.StallFor.Seconds())
			}
		}
	}
	gain := 1.0
	if st.cfg.GainFn != nil {
		gain = st.cfg.GainFn(st.rng)
	}
	out := span{local: float64(st.cfg.JobOut) * frac * gain, input: job.input}
	st.busy = true
	st.jobs++
	st.busyTime += exec
	if st.run.pr != nil {
		st.run.pr.jobs[st.idx].Inc()
	}
	jobArrival := job.tIn
	startT := st.run.sim.Now()
	execDur := exec
	jobLocal := job.local
	st.run.sim.Schedule(exec, func() {
		if st.run.tr != nil {
			st.run.tr.jobSpan(st.idx, st.cfg.Name, startT, execDur, jobLocal, out.local, out.input)
		}
		st.recordSojourn(jobArrival)
		st.finish(out)
	})
}

func (st *stage) finish(out span) {
	st.busy = false
	st.lastOutput = st.run.sim.Now()
	st.push(out)
}

// recordSojourn notes the stage residence time of the job whose oldest
// byte arrived at tIn.
func (st *stage) recordSojourn(tIn float64) {
	if !math.IsInf(tIn, 1) {
		d := st.run.sim.Now() - tIn
		st.sojourn.Add(d)
		if st.run.pr != nil {
			st.run.pr.sojourn[st.idx].Observe(d)
		}
	}
}

// push attempts to hand out downstream, blocking on backpressure.
func (st *stage) push(out span) {
	if st.next == nil {
		st.run.deliver(out)
		st.afterPush()
		return
	}
	if out.local <= 1e-12 {
		// A filter may emit nothing; account the input data as consumed
		// (it leaves the system here, input-referred accounting keeps it).
		st.next.onArrival(out)
		st.afterPush()
		return
	}
	if st.next.in.hasSpace(out.local) {
		st.next.onArrival(out)
		st.afterPush()
		return
	}
	st.blocked = true
	st.blockedSince = st.run.sim.Now()
	st.pendingOut = out
}

func (st *stage) afterPush() {
	st.tryStart()
	st.maybePropagateDone()
}

// notifyUpstreamSpace wakes a blocked upstream element (stage or source)
// after this stage consumed from its input queue.
func (st *stage) notifyUpstreamSpace() {
	r := st.run
	if st.idx == 0 {
		if r.srcBlocked {
			r.srcBlocked = false
			r.sim.Schedule(0, r.sourceTick)
		}
		return
	}
	up := r.stages[st.idx-1]
	if up.blocked && st.in.hasSpace(up.pendingOut.local) {
		up.blocked = false
		blockedFor := r.sim.Now() - up.blockedSince
		up.blockedTime += blockedFor
		if r.pr != nil {
			r.pr.blocked[up.idx].Add(blockedFor)
		}
		if r.tr != nil && blockedFor > 0 {
			r.tr.blockedSpan(up.idx, up.blockedSince, blockedFor)
		}
		out := up.pendingOut
		up.pendingOut = span{}
		r.sim.Schedule(0, func() {
			st.onArrival(out)
			up.afterPush()
		})
	}
}

// maybePropagateDone tells the next stage that no more input will come once
// this stage is fully drained.
func (st *stage) maybePropagateDone() {
	if st.doneSent || !st.upstreamDone {
		return
	}
	if st.busy || st.blocked || st.in.localBytes > 1e-9 {
		return
	}
	if st.in.inputBytes > 1e-9 {
		// Residual input-referred accounting with no local payload (a
		// filter dropped the tail): forward it so conservation holds.
		resid := span{local: 0, input: st.in.inputBytes}
		st.in.spans = nil
		st.in.head = 0
		st.in.inputBytes = 0
		st.in.localBytes = 0
		st.push(resid)
		return
	}
	st.doneSent = true
	if st.next != nil {
		st.next.upstreamDone = true
		st.next.tryStart()
		st.next.maybePropagateDone()
	}
}

func (r *run) result() (*Result, error) {
	res := &Result{
		Elapsed:     dur(r.lastT),
		InputBytes:  units.Bytes(r.emitted),
		OutputInput: units.Bytes(r.cumOut),
		MaxBacklog:  units.Bytes(r.backlog.Peak()),
		Input:       r.inTrace.points(),
		Output:      r.outTrace.points(),
	}
	if r.lastT > 0 {
		res.Throughput = units.Rate(r.cumOut / r.lastT)
	}
	if r.delays.N() > 0 {
		res.DelayMin = dur(r.delays.Min())
		res.DelayMean = dur(r.delays.Mean())
		res.DelayMax = dur(r.delays.Max())
		res.DelayP50 = dur(stats.Quantile(r.delaySamples, 0.5))
		res.DelayP99 = dur(stats.Quantile(r.delaySamples, 0.99))
	}
	for _, st := range r.stages {
		sr := StageResult{
			Name:          st.cfg.Name,
			Jobs:          st.jobs,
			Stalls:        st.stalls,
			MaxQueueLocal: units.Bytes(st.in.wmLocal.Peak()),
			MaxQueueInput: units.Bytes(st.in.wmInput.Peak()),
			BlockedTime:   dur(st.blockedTime),
		}
		if st.sojourn.N() > 0 {
			sr.SojournMean = dur(st.sojourn.Mean())
			sr.SojournMax = dur(st.sojourn.Max())
		}
		if span := st.lastOutput - st.firstInput; span > 0 {
			sr.Utilization = st.busyTime / span
		}
		res.Stages = append(res.Stages, sr)
	}
	return res, nil
}

func dur(s float64) time.Duration {
	if s >= float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(s * float64(time.Second))
}

// trace is a decimating trajectory recorder: it keeps at most cap points by
// doubling its sampling stride when full.
type trace struct {
	cap    int
	stride int
	seen   int
	pts    []TracePoint
}

func newTrace(capacity int) *trace {
	if capacity < 8 {
		capacity = 8
	}
	return &trace{cap: capacity, stride: 1}
}

func (tr *trace) add(t, cum float64) {
	tr.seen++
	if (tr.seen-1)%tr.stride != 0 {
		return
	}
	tr.pts = append(tr.pts, TracePoint{T: dur(t), Cum: units.Bytes(cum)})
	if len(tr.pts) >= tr.cap {
		half := make([]TracePoint, 0, tr.cap/2+1)
		for i := 0; i < len(tr.pts); i += 2 {
			half = append(half, tr.pts[i])
		}
		tr.pts = half
		tr.stride *= 2
	}
}

func (tr *trace) points() []TracePoint { return append([]TracePoint(nil), tr.pts...) }
