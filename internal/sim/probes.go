package sim

import (
	"streamcalc/internal/des"
	"streamcalc/internal/obs"
)

// SojournBuckets are the default histogram bounds for per-stage sojourn
// times (seconds): 1µs to ~4500s in powers of 4, wide enough for both the
// BLASTN batch pipelines and millisecond-scale live flows.
var SojournBuckets = obs.ExponentialBuckets(1e-6, 4, 16)

// probes holds the per-run metric handles. A nil *probes (no registry
// attached) costs one pointer check at each instrumentation site.
type probes struct {
	reg *obs.Registry

	events  *obs.Counter
	clock   *obs.Gauge
	pending *obs.Gauge
	capHits *obs.Counter

	backlog    *obs.Gauge
	inputBytes *obs.Gauge
	outBytes   *obs.Gauge

	queue   []*obs.Gauge     // per stage, local bytes
	jobs    []*obs.Counter   // per stage activations
	sojourn []*obs.Histogram // per stage residence seconds
	stalls  []*obs.Counter   // per stage injected interruptions
	stallT  []*obs.Gauge     // per stage accumulated stall seconds
	blocked []*obs.Gauge     // per stage accumulated backpressure seconds
}

// newProbes registers the run's metric families on reg.
func newProbes(reg *obs.Registry, stages []StageConfig) *probes {
	p := &probes{
		reg:        reg,
		events:     reg.Counter("nc_sim_events_total", "discrete events executed by the kernel"),
		clock:      reg.Gauge("nc_sim_clock_seconds", "current simulation time"),
		pending:    reg.Gauge("nc_sim_pending_events", "events waiting on the calendar"),
		capHits:    reg.Counter("nc_sim_event_cap_total", "runs truncated by the event-count safety cap"),
		backlog:    reg.Gauge("nc_sim_backlog_bytes", "input-referred data in flight (all queues and in-service)"),
		inputBytes: reg.Gauge("nc_sim_input_bytes", "cumulative data offered by the source"),
		outBytes:   reg.Gauge("nc_sim_output_input_bytes", "cumulative input-referred data delivered"),
	}
	for _, cfg := range stages {
		l := obs.Label{Key: "stage", Value: cfg.Name}
		p.queue = append(p.queue, reg.Gauge("nc_sim_stage_queue_bytes", "stage input-queue occupancy, local bytes", l))
		p.jobs = append(p.jobs, reg.Counter("nc_sim_stage_jobs_total", "stage activations", l))
		p.sojourn = append(p.sojourn, reg.Histogram("nc_sim_stage_sojourn_seconds",
			"per-job stage residence time: oldest byte arrival to job completion", SojournBuckets, l))
		p.stalls = append(p.stalls, reg.Counter("nc_sim_stage_stalls_total", "injected service interruptions", l))
		p.stallT = append(p.stallT, reg.Gauge("nc_sim_stage_stall_seconds", "accumulated injected stall time", l))
		p.blocked = append(p.blocked, reg.Gauge("nc_sim_stage_blocked_seconds", "accumulated downstream-backpressure time", l))
	}
	return p
}

// observer returns a des.Observer that streams kernel counters onto the
// registry.
func (p *probes) observer() des.Observer {
	return &des.FuncObserver{
		Execute: func(t float64, pending int) {
			p.events.Inc()
			p.clock.Set(t)
			p.pending.Set(float64(pending))
		},
	}
}

// tracer wraps the trace writer with the run's thread layout: tid 0 is the
// source, tids 1..N the stages, tid N+1 the sink.
type tracer struct {
	tw     *obs.Trace
	sink   int64
	queues []string // per-stage counter-track names
}

func newTracer(tw *obs.Trace, stages []StageConfig) *tracer {
	tr := &tracer{tw: tw, sink: int64(len(stages)) + 1}
	tw.ThreadName(0, "source")
	for i, cfg := range stages {
		tw.ThreadName(int64(i)+1, cfg.Name)
		tr.queues = append(tr.queues, "queue "+cfg.Name)
	}
	tw.ThreadName(tr.sink, "sink")
	return tr
}

func (tr *tracer) jobSpan(stageIdx int, name string, start, dur float64, localIn, localOut, input float64) {
	tr.tw.Complete(name, "stage", int64(stageIdx)+1, start, dur, map[string]any{
		"local_in":  localIn,
		"local_out": localOut,
		"input":     input,
	})
}

func (tr *tracer) stall(stageIdx int, t, dur float64) {
	tr.tw.Instant("stall", "stage", int64(stageIdx)+1, t, map[string]any{"seconds": dur})
}

func (tr *tracer) blockedSpan(stageIdx int, start, dur float64) {
	tr.tw.Complete("blocked", "backpressure", int64(stageIdx)+1, start, dur, nil)
}

func (tr *tracer) queueLevel(stageIdx int, t, localBytes float64) {
	tr.tw.Counter(tr.queues[stageIdx], int64(stageIdx)+1, t, map[string]float64{"bytes": localBytes})
}

func (tr *tracer) input(t, cum float64) {
	tr.tw.Counter("input", 0, t, map[string]float64{"bytes": cum})
}

func (tr *tracer) output(t, cum float64) {
	tr.tw.Counter("output", tr.sink, t, map[string]float64{"bytes": cum})
}
