package sim

import (
	"context"
	"time"

	"streamcalc/internal/obs"
	"streamcalc/internal/pool"
	"streamcalc/internal/stats"
	"streamcalc/internal/units"
)

// Replication aggregates independent simulation runs (different seeds) into
// means with 95% confidence half-widths — the standard way to report
// discrete-event results.
type Replication struct {
	Runs int
	// Throughput statistics in bytes/s.
	ThroughputMean units.Rate
	ThroughputCI   units.Rate
	// DelayMaxMean/CI aggregate the per-run maximum delays.
	DelayMaxMean time.Duration
	DelayMaxCI   time.Duration
	// BacklogMean/CI aggregate the per-run backlog watermarks.
	BacklogMean units.Bytes
	BacklogCI   units.Bytes
}

// ReplicateOptions tunes ReplicateParallel.
type ReplicateOptions struct {
	// Workers bounds the concurrent replications; < 1 means GOMAXPROCS.
	// The aggregated result is bit-identical for every worker count.
	Workers int
	// Context cancels outstanding replications early (nil means Background).
	Context context.Context
	// Metrics, when non-nil, receives the replication pool telemetry:
	// workers-busy gauge, queue-wait and per-replication duration
	// histograms, completed-run counter (pool label "replicate").
	Metrics *obs.Registry
}

// runSummary is one replication's contribution to the aggregate, extracted
// on the worker and folded in seed order afterwards.
type runSummary struct {
	throughput float64
	delayMaxNS float64 // float64(time.Duration): exact integer nanoseconds
	backlog    float64
}

// Replicate builds and runs the pipeline n times with seeds base+1..base+n
// and aggregates throughput, max delay, and backlog watermark. The build
// function receives the seed for each replication. Replications run
// concurrently on up to GOMAXPROCS workers; use ReplicateParallel to pick
// the worker count or thread a context/metrics registry.
func Replicate(build func(seed uint64) *Pipeline, base uint64, n int) (*Replication, error) {
	return ReplicateParallel(build, base, n, ReplicateOptions{})
}

// ReplicateParallel is Replicate with an explicit worker pool: the n
// seed-indexed replications are dispatched to opt.Workers goroutines, each
// run's summary is recorded in its seed slot, and the statistics are folded
// in seed order once all runs finish — so the aggregate is bit-identical
// regardless of worker count or completion interleaving. Each replication
// owns an independent Pipeline (its own RNG and kernel), making the fan-out
// safe; errors surface as the lowest failing seed's error, also
// deterministically.
//
// Per-run maxima are accumulated as float64 nanoseconds (exact for any
// time.Duration below ~104 days), not float seconds — the seconds round trip
// loses nanosecond precision on long runs.
func ReplicateParallel(build func(seed uint64) *Pipeline, base uint64, n int, opt ReplicateOptions) (*Replication, error) {
	if n < 1 {
		n = 1
	}
	sums := make([]runSummary, n)
	pm := pool.NewMetrics(opt.Metrics, "replicate")
	err := pool.ForEach(opt.Context, opt.Workers, n, pm, func(i int) error {
		res, err := build(base + uint64(i) + 1).Run()
		if err != nil {
			return err
		}
		sums[i] = runSummary{
			throughput: float64(res.Throughput),
			delayMaxNS: float64(res.DelayMax),
			backlog:    float64(res.MaxBacklog),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var tp, dmax, backlog stats.Summary
	for _, s := range sums {
		tp.Add(s.throughput)
		dmax.Add(s.delayMaxNS)
		backlog.Add(s.backlog)
	}
	rep := &Replication{
		Runs:           n,
		ThroughputMean: units.Rate(tp.Mean()),
		DelayMaxMean:   time.Duration(dmax.Mean()),
		BacklogMean:    units.Bytes(backlog.Mean()),
	}
	if n >= 2 {
		rep.ThroughputCI = units.Rate(tp.CI95())
		rep.DelayMaxCI = time.Duration(dmax.CI95())
		rep.BacklogCI = units.Bytes(backlog.CI95())
	}
	return rep, nil
}
