package sim

import (
	"time"

	"streamcalc/internal/stats"
	"streamcalc/internal/units"
)

// Replication aggregates independent simulation runs (different seeds) into
// means with 95% confidence half-widths — the standard way to report
// discrete-event results.
type Replication struct {
	Runs int
	// Throughput statistics in bytes/s.
	ThroughputMean units.Rate
	ThroughputCI   units.Rate
	// DelayMaxMean/CI aggregate the per-run maximum delays.
	DelayMaxMean time.Duration
	DelayMaxCI   time.Duration
	// BacklogMean/CI aggregate the per-run backlog watermarks.
	BacklogMean units.Bytes
	BacklogCI   units.Bytes
}

// Replicate builds and runs the pipeline n times with seeds base+1..base+n
// and aggregates throughput, max delay, and backlog watermark. The build
// function receives the seed for each replication.
func Replicate(build func(seed uint64) *Pipeline, base uint64, n int) (*Replication, error) {
	if n < 1 {
		n = 1
	}
	var tp, dmax, backlog stats.Summary
	for i := 0; i < n; i++ {
		res, err := build(base + uint64(i) + 1).Run()
		if err != nil {
			return nil, err
		}
		tp.Add(float64(res.Throughput))
		dmax.Add(res.DelayMax.Seconds())
		backlog.Add(float64(res.MaxBacklog))
	}
	rep := &Replication{
		Runs:           n,
		ThroughputMean: units.Rate(tp.Mean()),
		DelayMaxMean:   time.Duration(dmax.Mean() * float64(time.Second)),
		BacklogMean:    units.Bytes(backlog.Mean()),
	}
	if n >= 2 {
		rep.ThroughputCI = units.Rate(tp.CI95())
		rep.DelayMaxCI = time.Duration(dmax.CI95() * float64(time.Second))
		rep.BacklogCI = units.Bytes(backlog.CI95())
	}
	return rep, nil
}
