package sim

import (
	"testing"

	"streamcalc/internal/core"
)

func TestEnvelopeSourceRespectsBuckets(t *testing.T) {
	// Peak 1000 B/s with 50 B burst, sustained 200 B/s with 500 B burst.
	p := New(SourceConfig{
		PacketSize: 10,
		TotalInput: 4000,
		Envelope: []EnvelopeBucket{
			{Rate: 1000, Burst: 50},
			{Rate: 200, Burst: 500},
		},
	}, 41).Add(StageFromRate("fast", 1e6, 1e6, 10, 10))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputInput != 4000 {
		t.Fatalf("delivered %v", res.OutputInput)
	}
	// The emission trajectory must never exceed either bucket.
	for _, pt := range res.Input {
		tt := pt.T.Seconds()
		for _, b := range []struct{ r, bb float64 }{{1000, 50}, {200, 500}} {
			if float64(pt.Cum) > b.bb+b.r*tt+10+1e-6 { // +packet granularity
				t.Fatalf("emission %v at %v exceeds bucket (%v, %v)", pt.Cum, tt, b.r, b.bb)
			}
		}
	}
	// Long-run throughput approaches the sustained bucket rate.
	if tp := float64(res.Throughput); tp > 230 || tp < 150 {
		t.Errorf("throughput %v, want ~200 (sustained bucket)", tp)
	}
}

// The greedy envelope source is the worst case for the multi-bucket NC
// bounds: simulated delays must stay within them.
func TestEnvelopeSourceWithinMultiBucketBounds(t *testing.T) {
	p := New(SourceConfig{
		PacketSize: 10,
		TotalInput: 20000,
		Envelope: []EnvelopeBucket{
			{Rate: 1000, Burst: 50},
			{Rate: 200, Burst: 500},
		},
	}, 42).Add(StageFromRate("srv", 400, 400, 10, 10))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	cp := core.Pipeline{
		Arrival: core.Arrival{
			Rate: 1000, Burst: 50, MaxPacket: 10,
			Extra: []core.Bucket{{Rate: 200, Burst: 500}},
		},
		Nodes: []core.Node{{Name: "srv", Rate: 400, JobIn: 10, JobOut: 10, MaxPacket: 10}},
	}
	a, err := core.Analyze(cp)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overloaded {
		t.Fatal("stable configuration expected")
	}
	if res.DelayMax > a.DelayBound {
		t.Errorf("sim delay %v exceeds multi-bucket NC bound %v", res.DelayMax, a.DelayBound)
	}
	if res.MaxBacklog > a.BacklogBound+10 {
		t.Errorf("sim backlog %v exceeds bound %v", res.MaxBacklog, a.BacklogBound)
	}
	// The bound should also be reasonably tight against the greedy
	// (worst-case) source: within 3x.
	if a.DelayBound > 3*res.DelayMax {
		t.Errorf("bound %v very loose vs greedy worst case %v", a.DelayBound, res.DelayMax)
	}
}

func TestEnvelopeSourceValidation(t *testing.T) {
	p := New(SourceConfig{
		PacketSize: 10, TotalInput: 100,
		Envelope: []EnvelopeBucket{{Rate: 0, Burst: 1}},
	}, 43).Add(StageFromRate("s", 100, 100, 10, 10))
	if _, err := p.Run(); err == nil {
		t.Error("zero-rate bucket must fail")
	}
}
