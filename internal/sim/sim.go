// Package sim simulates streaming data pipelines with a discrete-event
// model that mirrors the paper's SimPy validation tool: each stage has
// minimum and maximum execution times, a data block size to consume and one
// to emit; events are packet arrival at a node, initiation of execution when
// the node becomes free, and departure on completion. Execution times are
// drawn from a uniform distribution between the configured bounds.
//
// All volumes are tracked twice: in local bytes (what the stage actually
// sees, after compression/filtering upstream) and in input-referred bytes
// (the pipeline-input data the bytes correspond to), so measured throughput,
// delay, and backlog are directly comparable with the network-calculus
// model's normalized curves.
package sim

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"time"

	"streamcalc/internal/des"
	"streamcalc/internal/obs"
	"streamcalc/internal/units"
)

// SourceConfig describes the flow offered to the pipeline.
type SourceConfig struct {
	// Rate is the long-run emission rate in bytes/s.
	Rate units.Rate
	// PacketSize is the size of each emitted packet; the final packet may be
	// smaller. Required > 0.
	PacketSize units.Bytes
	// Burst is released instantly at time 0 (in addition to the regular
	// packet schedule).
	Burst units.Bytes
	// Poisson draws exponential interarrival times instead of the default
	// deterministic schedule (useful for validating the M/M/1 queueing
	// model).
	Poisson bool
	// Envelope, when non-empty, makes the source a greedy multi-bucket
	// emitter: packets are released at the earliest instants allowed by
	// the envelope min_i(Burst_i + Rate_i * t) — the worst-case arrival
	// process of a variable-rate (concave) arrival curve. Rate/Burst/
	// Poisson are ignored in this mode (Rate may still be set for
	// reporting).
	Envelope []EnvelopeBucket
	// TotalInput ends the run after this much data has been offered.
	// Required > 0.
	TotalInput units.Bytes
}

// EnvelopeBucket is one leaky-bucket constraint of a greedy source
// envelope.
type EnvelopeBucket struct {
	Rate  units.Rate
	Burst units.Bytes
}

// StageConfig describes one pipeline stage.
type StageConfig struct {
	Name string
	// MinExec and MaxExec bound the uniform per-job execution time for a
	// full job of JobIn bytes. Partial (flush) jobs scale proportionally.
	MinExec, MaxExec time.Duration
	// JobIn is consumed per activation; JobOut is emitted. Local bytes.
	JobIn, JobOut units.Bytes
	// QueueCap bounds the input queue in local bytes; 0 means unbounded.
	// A full queue exerts backpressure: the upstream element blocks.
	QueueCap units.Bytes
	// GainFn, when non-nil, scales JobOut per job (e.g. a random
	// compression ratio). It receives the stage's private RNG stream.
	GainFn func(rng *des.RNG) float64
	// ExpExec draws execution times from an exponential distribution with
	// mean (MinExec+MaxExec)/2 instead of uniform (for queueing-theory
	// validation).
	ExpExec bool
	// Startup is a one-time initial delay added to the stage's first job —
	// the T of a rate-latency service curve (pipeline fill, kernel launch).
	Startup time.Duration
	// StallEvery/StallFor inject periodic service interruptions (GC
	// pauses, contention, DVFS dips): after every StallEvery of
	// accumulated busy time the stage pauses for StallFor. The effective
	// sustained rate drops by the factor StallEvery/(StallEvery+StallFor),
	// which a rate-latency service curve with that reduced rate and an
	// extra StallFor of latency still bounds.
	StallEvery, StallFor time.Duration
}

// StageFromRate builds a StageConfig for a stage measured in isolation at
// the given min and max throughput (local bytes/s) processing jobIn-byte
// jobs into jobOut-byte outputs. The execution-time bounds are
// jobIn/maxRate and jobIn/minRate.
func StageFromRate(name string, minRate, maxRate units.Rate, jobIn, jobOut units.Bytes) StageConfig {
	return StageConfig{
		Name:    name,
		MinExec: jobIn.Time(maxRate),
		MaxExec: jobIn.Time(minRate),
		JobIn:   jobIn,
		JobOut:  jobOut,
	}
}

// TracePoint is one step of a cumulative-data trajectory.
type TracePoint struct {
	T   time.Duration
	Cum units.Bytes
}

// StageResult summarizes one stage after a run.
type StageResult struct {
	Name string
	// Jobs is the number of activations (including a final partial flush).
	Jobs int64
	// Utilization is busy time over the span from first input to last
	// output.
	Utilization float64
	// MaxQueueLocal and MaxQueueInput are input-queue high-water marks.
	MaxQueueLocal units.Bytes
	MaxQueueInput units.Bytes
	// BlockedTime is how long the stage was blocked on downstream
	// backpressure.
	BlockedTime time.Duration
	// Stalls counts injected service interruptions (see
	// StageConfig.StallEvery).
	Stalls int64
	// SojournMean/SojournMax summarize per-job stage residence times: the
	// span from a job's oldest byte arriving at the stage's queue to the
	// job's completion. Comparable with the per-node network-calculus
	// delay bound.
	SojournMean, SojournMax time.Duration
}

// Result summarizes a pipeline run.
type Result struct {
	// Elapsed is the simulated time from start to the last departure.
	Elapsed time.Duration
	// InputBytes is the data offered; OutputInput is the input-referred
	// data delivered (equal for lossless pipelines).
	InputBytes  units.Bytes
	OutputInput units.Bytes
	// Throughput is input-referred delivered data over elapsed time.
	Throughput units.Rate
	// DelayMin/Mean/Max summarize per-departure virtual delay: the age of
	// the newest input byte covered by the cumulative output.
	DelayMin, DelayMean, DelayMax time.Duration
	// DelayP50 and DelayP99 are per-departure virtual-delay quantiles, for
	// bound-tightness comparison against the analytic worst case.
	DelayP50, DelayP99 time.Duration
	// MaxBacklog is the system-wide high-water mark of input-referred data
	// in flight (all queues and in-service data).
	MaxBacklog units.Bytes
	// Events is the number of discrete events the kernel executed; Capped
	// reports that the run was truncated by the event-count safety cap
	// (see Pipeline.WithMaxEvents) and the measurements are partial.
	Events uint64
	Capped bool
	// Stages holds per-stage summaries in pipeline order.
	Stages []StageResult
	// Input and Output are (decimated) cumulative trajectories in
	// input-referred bytes — the stairstep curves of the paper's Figures 4
	// and 10.
	Input, Output []TracePoint
}

// Pipeline is a configured simulation. Build with New, add stages in order,
// then Run.
type Pipeline struct {
	src    SourceConfig
	stages []StageConfig
	seed   uint64

	reg       *obs.Registry
	tw        *obs.Trace
	maxEvents uint64
}

// New creates a pipeline simulation fed by src, reproducible for a given
// seed.
func New(src SourceConfig, seed uint64) *Pipeline {
	return &Pipeline{src: src, seed: seed}
}

// Add appends a stage and returns the pipeline for chaining.
func (p *Pipeline) Add(cfg StageConfig) *Pipeline {
	p.stages = append(p.stages, cfg)
	return p
}

// WithMetrics streams run telemetry onto reg: kernel event counters, queue
// depth gauges, per-stage sojourn histograms, stall and backpressure
// accounting. Detached (the default) the run pays only nil checks.
func (p *Pipeline) WithMetrics(reg *obs.Registry) *Pipeline {
	p.reg = reg
	return p
}

// WithTrace records a Chrome trace_event timeline of the run onto tw: one
// span per stage activation, instants for stalls, spans for backpressure
// blocking, and counter tracks for queue levels and cumulative input/output.
// Load the exported file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (p *Pipeline) WithTrace(tw *obs.Trace) *Pipeline {
	p.tw = tw
	return p
}

// WithMaxEvents caps the number of kernel events (0 restores the default,
// effectively unlimited). A capped run returns partial measurements with
// Result.Capped set, increments nc_sim_event_cap_total when metrics are
// attached, and logs a warning.
func (p *Pipeline) WithMaxEvents(n uint64) *Pipeline {
	p.maxEvents = n
	return p
}

func (p *Pipeline) validate() error {
	if p.src.Rate <= 0 && len(p.src.Envelope) == 0 {
		return errors.New("sim: source Rate must be positive")
	}
	for i, b := range p.src.Envelope {
		if b.Rate <= 0 || b.Burst < 0 {
			return fmt.Errorf("sim: source Envelope[%d]: Rate must be positive, Burst non-negative", i)
		}
	}
	if p.src.PacketSize <= 0 {
		return errors.New("sim: source PacketSize must be positive")
	}
	if p.src.TotalInput <= 0 {
		return errors.New("sim: source TotalInput must be positive")
	}
	if len(p.stages) == 0 {
		return errors.New("sim: pipeline has no stages")
	}
	for i, s := range p.stages {
		if s.JobIn <= 0 || s.JobOut <= 0 {
			return fmt.Errorf("sim: stage %d (%s): JobIn and JobOut must be positive", i, s.Name)
		}
		if s.MinExec < 0 || s.MaxExec < s.MinExec {
			return fmt.Errorf("sim: stage %d (%s): need 0 <= MinExec <= MaxExec", i, s.Name)
		}
		if s.QueueCap < 0 {
			return fmt.Errorf("sim: stage %d (%s): negative QueueCap", i, s.Name)
		}
		if s.QueueCap > 0 && s.QueueCap < s.JobIn {
			return fmt.Errorf("sim: stage %d (%s): QueueCap below JobIn deadlocks", i, s.Name)
		}
		if s.Startup < 0 {
			return fmt.Errorf("sim: stage %d (%s): negative Startup", i, s.Name)
		}
	}
	return nil
}

// Run executes the simulation to completion and returns the measurements.
// A run truncated by the event cap (WithMaxEvents) is not an error: it
// returns the partial measurements with Result.Capped set, alongside a
// logged warning and an nc_sim_event_cap_total increment when metrics are
// attached — silent truncation would read as a finished run.
func (p *Pipeline) Run() (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	r := newRun(p)
	r.start()
	max := p.maxEvents
	if max == 0 {
		max = math.MaxUint64 - 1
	}
	executed, capped := r.sim.RunAll(max)
	if capped {
		if r.pr != nil {
			r.pr.capHits.Inc()
		}
		slog.Warn("sim: event cap hit, returning partial measurements",
			"max_events", max, "sim_time_s", r.sim.Now(), "pending", r.sim.Pending())
	}
	res, err := r.result()
	if err != nil {
		return nil, err
	}
	res.Events = executed
	res.Capped = capped
	return res, nil
}
