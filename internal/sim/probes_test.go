package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamcalc/internal/obs"
	"streamcalc/internal/units"
)

// metricsPipeline builds a small two-stage pipeline with stalls and a
// bounded inter-stage queue so every probe family gets exercised.
func metricsPipeline() (*Pipeline, SourceConfig) {
	src := SourceConfig{
		Rate:       1000,
		PacketSize: 100,
		TotalInput: 20000,
	}
	p := New(src, 7).
		Add(StageConfig{
			Name: "fast", MinExec: 10 * time.Millisecond, MaxExec: 20 * time.Millisecond,
			JobIn: 100, JobOut: 100,
		}).
		Add(StageConfig{
			Name: "slow", MinExec: 80 * time.Millisecond, MaxExec: 120 * time.Millisecond,
			JobIn: 100, JobOut: 100, QueueCap: 200,
			StallEvery: 200 * time.Millisecond, StallFor: 50 * time.Millisecond,
		})
	return p, src
}

func TestRunWithMetrics(t *testing.T) {
	p, src := metricsPipeline()
	reg := obs.NewRegistry()
	res, err := p.WithMetrics(reg).Run()
	if err != nil {
		t.Fatal(err)
	}

	if res.Events == 0 {
		t.Error("Result.Events = 0")
	}
	if ev := reg.Counter("nc_sim_events_total", "").Value(); ev != res.Events {
		t.Errorf("nc_sim_events_total = %d, Result.Events = %d", ev, res.Events)
	}
	if got := reg.Gauge("nc_sim_input_bytes", "").Value(); got != float64(src.TotalInput) {
		t.Errorf("nc_sim_input_bytes = %g, want %g", got, float64(src.TotalInput))
	}
	if got := reg.Gauge("nc_sim_output_input_bytes", "").Value(); got != float64(src.TotalInput) {
		t.Errorf("nc_sim_output_input_bytes = %g, want %g (lossless pipeline)", got, float64(src.TotalInput))
	}

	slow := obs.Label{Key: "stage", Value: "slow"}
	jobs := reg.Counter("nc_sim_stage_jobs_total", "", slow).Value()
	if int64(jobs) != res.Stages[1].Jobs {
		t.Errorf("jobs counter = %d, StageResult.Jobs = %d", jobs, res.Stages[1].Jobs)
	}
	soj := reg.Histogram("nc_sim_stage_sojourn_seconds", "", SojournBuckets, slow)
	if int64(soj.Count()) != res.Stages[1].Jobs {
		t.Errorf("sojourn histogram count = %d, want %d", soj.Count(), res.Stages[1].Jobs)
	}
	if stalls := reg.Counter("nc_sim_stage_stalls_total", "", slow).Value(); int64(stalls) != res.Stages[1].Stalls {
		t.Errorf("stalls counter = %d, StageResult.Stalls = %d", stalls, res.Stages[1].Stalls)
	}
	if res.Stages[1].Stalls == 0 {
		t.Error("expected injected stalls in this configuration")
	}
	if bt := reg.Gauge("nc_sim_stage_blocked_seconds", "", obs.Label{Key: "stage", Value: "fast"}).Value(); bt <= 0 {
		t.Error("expected backpressure blocking on the fast stage")
	}

	// The exposition includes the sim families.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"nc_sim_events_total", "nc_sim_stage_sojourn_seconds_bucket", `stage="slow"`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestDelayQuantiles(t *testing.T) {
	p, _ := metricsPipeline()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayP50 <= 0 || res.DelayP99 <= 0 {
		t.Fatalf("quantiles not populated: p50=%v p99=%v", res.DelayP50, res.DelayP99)
	}
	if res.DelayP50 > res.DelayP99 || res.DelayP99 > res.DelayMax {
		t.Errorf("quantile ordering broken: p50=%v p99=%v max=%v", res.DelayP50, res.DelayP99, res.DelayMax)
	}
}

func TestRunWithTraceValidates(t *testing.T) {
	p, _ := metricsPipeline()
	tw := obs.NewTrace()
	res, err := p.WithTrace(tw).Run()
	if err != nil {
		t.Fatal(err)
	}
	if tw.Len() == 0 {
		t.Fatal("trace recorded no events")
	}

	// One complete span per stage activation, plus metadata/instants/counters.
	var spans int64
	var sawStall, sawThreadName bool
	for _, e := range tw.Events() {
		switch {
		case e.Phase == "X" && e.Cat == "stage":
			spans++
		case e.Phase == "i" && e.Name == "stall":
			sawStall = true
		case e.Phase == "M" && e.Name == "thread_name":
			sawThreadName = true
		}
	}
	wantSpans := res.Stages[0].Jobs + res.Stages[1].Jobs
	if spans != wantSpans {
		t.Errorf("stage spans = %d, want %d (total jobs)", spans, wantSpans)
	}
	if !sawStall || !sawThreadName {
		t.Errorf("trace missing stall instants (%v) or thread names (%v)", sawStall, sawThreadName)
	}

	// The exported file is valid Chrome trace_event JSON (the acceptance
	// criterion: loadable in Perfetto).
	path := filepath.Join(t.TempDir(), "sim_trace.json")
	if err := tw.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceBytes(data); err != nil {
		t.Fatalf("exported trace fails schema validation: %v", err)
	}
}

func TestEventCapSurfaced(t *testing.T) {
	p, _ := metricsPipeline()
	reg := obs.NewRegistry()
	res, err := p.WithMetrics(reg).WithMaxEvents(50).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatal("Result.Capped not set for a truncated run")
	}
	if res.Events != 50 {
		t.Errorf("Result.Events = %d, want 50", res.Events)
	}
	if hits := reg.Counter("nc_sim_event_cap_total", "").Value(); hits != 1 {
		t.Errorf("nc_sim_event_cap_total = %d, want 1", hits)
	}

	// An uncapped run reports Capped = false.
	p2, _ := metricsPipeline()
	res2, err := p2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Capped {
		t.Error("uncapped run reports Capped")
	}
}

// benchPipeline is a deterministic two-stage pipeline for overhead
// comparison; the workload is identical across variants.
func benchPipeline() *Pipeline {
	src := SourceConfig{Rate: 1e6, PacketSize: 1024, TotalInput: 1024 * units.Bytes(512)}
	return New(src, 1).
		Add(StageConfig{Name: "a", MinExec: time.Microsecond, MaxExec: 2 * time.Microsecond, JobIn: 1024, JobOut: 1024}).
		Add(StageConfig{Name: "b", MinExec: time.Microsecond, MaxExec: 2 * time.Microsecond, JobIn: 2048, JobOut: 2048})
}

// BenchmarkPipelineRun is the detached baseline: telemetry compiled in but
// not attached, so every probe site is a nil check. Compare against
// BenchmarkPipelineRunObserved for the attached cost; the CI bench job
// uploads both as BENCH_obs.json.
func BenchmarkPipelineRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchPipeline().Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineRunObserved(b *testing.B) {
	reg := obs.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchPipeline().WithMetrics(reg).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
