package sim

import (
	"testing"
)

func TestReplicateAggregates(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 20000}, seed).
			Add(StageFromRate("s", 400, 600, 10, 10))
	}
	rep, err := Replicate(build, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 8 {
		t.Errorf("runs = %d", rep.Runs)
	}
	// Mean throughput near the uniform-service harmonic mean (~480-500).
	tp := float64(rep.ThroughputMean)
	if tp < 420 || tp > 560 {
		t.Errorf("mean throughput = %v", tp)
	}
	if rep.ThroughputCI <= 0 || rep.DelayMaxMean <= 0 || rep.BacklogMean <= 0 {
		t.Errorf("aggregates missing: %+v", rep)
	}
	// CI shrinks with more replications (sanity, statistical but stable
	// given deterministic seeds).
	rep2, err := Replicate(build, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Runs != 2 {
		t.Error("runs")
	}
}

func TestReplicateSingleRunNoCI(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 1000}, seed).
			Add(StageFromRate("s", 200, 200, 10, 10))
	}
	rep, err := Replicate(build, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThroughputCI != 0 {
		t.Error("single run must not report a CI")
	}
}

func TestReplicatePropagatesErrors(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{}, seed) // invalid source
	}
	if _, err := Replicate(build, 0, 3); err == nil {
		t.Error("expected error")
	}
}
