package sim

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"streamcalc/internal/obs"
)

func TestReplicateAggregates(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 20000}, seed).
			Add(StageFromRate("s", 400, 600, 10, 10))
	}
	rep, err := Replicate(build, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 8 {
		t.Errorf("runs = %d", rep.Runs)
	}
	// Mean throughput near the uniform-service harmonic mean (~480-500).
	tp := float64(rep.ThroughputMean)
	if tp < 420 || tp > 560 {
		t.Errorf("mean throughput = %v", tp)
	}
	if rep.ThroughputCI <= 0 || rep.DelayMaxMean <= 0 || rep.BacklogMean <= 0 {
		t.Errorf("aggregates missing: %+v", rep)
	}
	// CI shrinks with more replications (sanity, statistical but stable
	// given deterministic seeds).
	rep2, err := Replicate(build, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Runs != 2 {
		t.Error("runs")
	}
}

func TestReplicateSingleRunNoCI(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 1000}, seed).
			Add(StageFromRate("s", 200, 200, 10, 10))
	}
	rep, err := Replicate(build, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThroughputCI != 0 {
		t.Error("single run must not report a CI")
	}
}

func TestReplicatePropagatesErrors(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{}, seed) // invalid source
	}
	if _, err := Replicate(build, 0, 3); err == nil {
		t.Error("expected error")
	}
}

// TestReplicateParallelDeterministic is the bit-identity contract: the same
// seeds must aggregate to exactly the same Replication at worker counts 1,
// 2, and GOMAXPROCS (the -race CI job runs this concurrently too).
func TestReplicateParallelDeterministic(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 20000}, seed).
			Add(StageFromRate("a", 400, 600, 10, 10)).
			Add(StageFromRate("b", 700, 900, 10, 10))
	}
	want, err := ReplicateParallel(build, 7, 12, ReplicateOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := ReplicateParallel(build, 7, 12, ReplicateOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *got != *want {
			t.Errorf("workers=%d: aggregate differs:\n got %+v\nwant %+v", workers, *got, *want)
		}
	}
}

// TestReplicateDelayPrecision checks the nanosecond-exact aggregation path:
// identical deterministic runs must average to exactly the single-run
// DelayMax, with no float-seconds round-trip error.
func TestReplicateDelayPrecision(t *testing.T) {
	build := func(seed uint64) *Pipeline {
		// Deterministic service (MinExec == MaxExec): every seed produces the
		// same trajectory, so the mean of the per-run maxima must equal any
		// single run's maximum to the nanosecond.
		return New(SourceConfig{Rate: 1000, PacketSize: 7, TotalInput: 7001}, seed).
			Add(StageFromRate("d", 500, 500, 7, 7))
	}
	single, err := build(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplicateParallel(build, 0, 5, ReplicateOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DelayMaxMean != single.DelayMax {
		t.Errorf("DelayMaxMean = %d ns, want exactly %d ns",
			rep.DelayMaxMean.Nanoseconds(), single.DelayMax.Nanoseconds())
	}
	if rep.DelayMaxCI != 0 {
		t.Errorf("identical runs must have zero CI, got %v", rep.DelayMaxCI)
	}
}

func TestReplicateParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 10000}, seed).
			Add(StageFromRate("s", 400, 600, 10, 10))
	}
	_, err := ReplicateParallel(build, 0, 64, ReplicateOptions{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReplicateParallelMetrics checks the pool telemetry wiring: one
// completed task and one duration observation per replication.
func TestReplicateParallelMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	build := func(seed uint64) *Pipeline {
		return New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 5000}, seed).
			Add(StageFromRate("s", 400, 600, 10, 10))
	}
	if _, err := ReplicateParallel(build, 0, 6, ReplicateOptions{Workers: 2, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`nc_pool_tasks_total{pool="replicate"} 6`,
		`nc_pool_workers_busy{pool="replicate"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}
