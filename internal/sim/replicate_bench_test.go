package sim

import (
	"fmt"
	"testing"

	"streamcalc/internal/units"
)

// benchBuild is a quick-mode-sized replication workload: a three-stage
// pipeline pushing ~100k events per run, representative of the per-seed
// work the experiments driver and admit -validate replay fan out.
func benchBuild(seed uint64) *Pipeline {
	return New(SourceConfig{
		Rate:       200 * units.MiBPerSec,
		PacketSize: 4 * units.KiB,
		Burst:      64 * units.KiB,
		TotalInput: 32 * units.MiB,
	}, seed).
		Add(StageFromRate("compress", 300*units.MiBPerSec, 500*units.MiBPerSec, 4*units.KiB, 2*units.KiB)).
		Add(StageFromRate("network", 400*units.MiBPerSec, 400*units.MiBPerSec, 2*units.KiB, 2*units.KiB)).
		Add(StageFromRate("decompress", 600*units.MiBPerSec, 800*units.MiBPerSec, 2*units.KiB, 4*units.KiB))
}

// BenchmarkReplicateParallel measures the replication fan-out at fixed
// worker counts; the workers=1 case is the sequential baseline, so the
// speedup in BENCH_sim.json reads directly as ns/op(1) / ns/op(N).
func BenchmarkReplicateParallel(b *testing.B) {
	const runs = 8
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := ReplicateParallel(benchBuild, 1000, runs, ReplicateOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Runs != runs {
					b.Fatalf("runs = %d", rep.Runs)
				}
			}
		})
	}
}
