package sim

import (
	"math"
	"testing"
	"time"

	"streamcalc/internal/curve"
)

func TestStallInjectionReducesThroughput(t *testing.T) {
	// Stage at 100 B/s that stalls 50 ms after every 50 ms of work:
	// effective rate ~50 B/s.
	cfg := StageFromRate("stall", 100, 100, 10, 10)
	cfg.StallEvery = 50 * time.Millisecond
	cfg.StallFor = 50 * time.Millisecond
	p := New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 2000}, 21).Add(cfg)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Throughput)
	if got < 45 || got > 55 {
		t.Errorf("stalled throughput = %v, want ~50", got)
	}
	if res.Stages[0].Stalls == 0 {
		t.Error("stalls must be counted")
	}
}

func TestStallInjectionWithinDegradedNCBound(t *testing.T) {
	// Failure injection vs the model: a stage rated 200 B/s with periodic
	// stalls (every 100 ms, for 25 ms) behaves like a rate-latency server
	// with rate 200*100/125 = 160 and one extra StallFor of latency. The
	// simulated delays must stay within the degraded bound.
	cfg := StageFromRate("srv", 200, 200, 10, 10)
	cfg.StallEvery = 100 * time.Millisecond
	cfg.StallFor = 25 * time.Millisecond
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 5000}, 22).Add(cfg)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Degraded service curve: rate 160, latency StallFor (the worst-case
	// pause), packetized by the 10-byte job.
	beta := curve.SubConstantPositive(curve.RateLatency(160, 0.025), 10)
	alpha := curve.AddBurst(curve.Affine(100, 0), 10)
	bound := curve.HDev(alpha, beta)
	if res.DelayMax.Seconds() > bound {
		t.Errorf("stalled delay %v exceeds degraded NC bound %.3fs", res.DelayMax, bound)
	}
	backlogBound := curve.VDev(alpha, beta)
	if float64(res.MaxBacklog) > backlogBound+10 { // +in-service job
		t.Errorf("stalled backlog %v exceeds degraded bound %.1f", res.MaxBacklog, backlogBound)
	}
}

func TestStallValidationUnaffected(t *testing.T) {
	// Zero stall parameters change nothing.
	base := StageFromRate("a", 100, 100, 10, 10)
	run := func(cfg StageConfig) float64 {
		p := New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 1000}, 23).Add(cfg)
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Throughput)
	}
	a := run(base)
	withZero := base
	withZero.StallEvery = time.Second // StallFor zero -> no effect
	b := run(withZero)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("zero StallFor must not change behavior: %v vs %v", a, b)
	}
}
