package sim

import (
	"testing"
	"time"

	"streamcalc/internal/curve"
)

func TestSojournStatsRecorded(t *testing.T) {
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 2000}, 31).
		Add(StageFromRate("a", 300, 300, 10, 10)).
		Add(StageFromRate("b", 150, 150, 10, 10))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if st.SojournMean <= 0 || st.SojournMax < st.SojournMean {
			t.Errorf("stage %s sojourn stats: mean %v max %v", st.Name, st.SojournMean, st.SojournMax)
		}
	}
	// Stage b serves 10-byte jobs at 150 B/s: sojourn at least the 66.7 ms
	// service time.
	if res.Stages[1].SojournMean < 60*time.Millisecond {
		t.Errorf("b sojourn mean %v below service time", res.Stages[1].SojournMean)
	}
}

// Per-stage sojourns stay within the per-node NC delay bounds for a stable
// pipeline (the paper's node-level analysis).
func TestSojournWithinNodeBounds(t *testing.T) {
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 50000}, 32).
		Add(StageFromRate("a", 200, 260, 10, 10)).
		Add(StageFromRate("b", 140, 180, 10, 10))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Node-level NC bounds with packetized curves (l = 10): alpha for each
	// node is conservatively the source envelope (rates only shrink
	// downstream).
	alpha := curve.AddBurst(curve.Affine(100, 0), 10)
	for i, worst := range []float64{200, 140} {
		beta := curve.SubConstantPositive(curve.RateLatency(worst, 0), 10)
		bound := curve.HDev(alpha, beta)
		got := res.Stages[i].SojournMax.Seconds()
		if got > bound+1e-9 {
			t.Errorf("stage %d sojourn max %.4fs exceeds NC node bound %.4fs", i, got, bound)
		}
	}
}
