package sim

import (
	"math"
	"testing"
	"time"

	"streamcalc/internal/des"
	"streamcalc/internal/units"
)

func mustRun(t *testing.T, p *Pipeline) *Result {
	t.Helper()
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSourceLimitedThroughput(t *testing.T) {
	// Fast stage (200 B/s) behind a 100 B/s source: throughput ~ 100 B/s.
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 1000}, 1).
		Add(StageFromRate("fast", 200, 200, 10, 10))
	res := mustRun(t, p)
	if res.OutputInput != 1000 {
		t.Fatalf("delivered %v, want 1000", res.OutputInput)
	}
	if !relClose(float64(res.Throughput), 100, 0.05) {
		t.Errorf("throughput = %v, want ~100 B/s", float64(res.Throughput))
	}
	// Per-job delay is exactly the 50 ms service time (no queueing).
	if res.DelayMax > 120*time.Millisecond {
		t.Errorf("delay max = %v", res.DelayMax)
	}
}

func TestBottleneckLimitedThroughput(t *testing.T) {
	// Slow stage (50 B/s) behind a 100 B/s source: throughput ~ 50 B/s and
	// backlog builds to about half the input.
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 1000}, 1).
		Add(StageFromRate("slow", 50, 50, 10, 10))
	res := mustRun(t, p)
	if !relClose(float64(res.Throughput), 50, 0.05) {
		t.Errorf("throughput = %v, want ~50 B/s", float64(res.Throughput))
	}
	if res.MaxBacklog < 400 || res.MaxBacklog > 600 {
		t.Errorf("backlog watermark = %v, want ~500", res.MaxBacklog)
	}
	if res.Stages[0].Utilization < 0.95 {
		t.Errorf("bottleneck utilization = %v", res.Stages[0].Utilization)
	}
}

func TestChainBottleneck(t *testing.T) {
	p := New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 5000}, 2).
		Add(StageFromRate("a", 800, 800, 10, 10)).
		Add(StageFromRate("b", 200, 200, 10, 10)).
		Add(StageFromRate("c", 600, 600, 10, 10))
	res := mustRun(t, p)
	if !relClose(float64(res.Throughput), 200, 0.05) {
		t.Errorf("throughput = %v, want ~200", float64(res.Throughput))
	}
	if res.OutputInput != 5000 {
		t.Errorf("conservation: delivered %v of 5000", res.OutputInput)
	}
}

func TestAggregationWaitsForJob(t *testing.T) {
	// Stage consumes 100-byte jobs from 10-byte packets at 100 B/s: first
	// output can't appear before 1 s (collecting) + exec.
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 500}, 3).
		Add(StageFromRate("agg", 1000, 1000, 100, 100))
	res := mustRun(t, p)
	if res.DelayMin < 80*time.Millisecond {
		t.Errorf("first-output delay %v too small for aggregation", res.DelayMin)
	}
	if res.Stages[0].Jobs != 5 {
		t.Errorf("jobs = %d, want 5", res.Stages[0].Jobs)
	}
	// Queue watermark must have reached ~a full job.
	if res.Stages[0].MaxQueueLocal < 80 {
		t.Errorf("queue watermark = %v", res.Stages[0].MaxQueueLocal)
	}
}

func TestCompressionNormalization(t *testing.T) {
	// A 2:1 compressor followed by a stage: input-referred conservation and
	// input-referred throughput unaffected by local shrinkage.
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 1000}, 4).
		Add(StageFromRate("compress", 400, 400, 10, 5)).
		Add(StageFromRate("down", 400, 400, 5, 5))
	res := mustRun(t, p)
	if res.OutputInput != 1000 {
		t.Fatalf("input-referred conservation broken: %v", res.OutputInput)
	}
	if !relClose(float64(res.Throughput), 100, 0.05) {
		t.Errorf("throughput = %v, want ~100", float64(res.Throughput))
	}
}

func TestVariableGain(t *testing.T) {
	// Random compression between 1x and 5x; conservation must still hold.
	gain := func(rng *des.RNG) float64 { return 1.0 / rng.Uniform(1, 5) }
	cfg := StageFromRate("lz", 400, 400, 10, 10)
	cfg.GainFn = gain
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 1000}, 5).
		Add(cfg).
		Add(StageFromRate("down", 800, 800, 1, 1))
	res := mustRun(t, p)
	if math.Abs(float64(res.OutputInput-1000)) > 1e-6 {
		t.Errorf("conservation: %v", res.OutputInput)
	}
}

func TestFilterDropsEverything(t *testing.T) {
	// Gain 0 filter: local output vanishes but input-referred accounting
	// still reaches the sink.
	cfg := StageFromRate("drop", 400, 400, 10, 10)
	cfg.GainFn = func(*des.RNG) float64 { return 0 }
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 200}, 6).
		Add(cfg).
		Add(StageFromRate("down", 800, 800, 10, 10))
	res := mustRun(t, p)
	if math.Abs(float64(res.OutputInput-200)) > 1e-6 {
		t.Errorf("conservation with total filtering: %v", res.OutputInput)
	}
}

func TestPartialFlush(t *testing.T) {
	// 1050 bytes through 100-byte jobs: 10 full jobs + 1 partial flush.
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 1050}, 7).
		Add(StageFromRate("agg", 1000, 1000, 100, 100))
	res := mustRun(t, p)
	if res.Stages[0].Jobs != 11 {
		t.Errorf("jobs = %d, want 11", res.Stages[0].Jobs)
	}
	if math.Abs(float64(res.OutputInput-1050)) > 1e-6 {
		t.Errorf("delivered %v", res.OutputInput)
	}
}

func TestBackpressureBlocksUpstream(t *testing.T) {
	// Fast producer into a slow consumer with a tiny queue: the producer
	// must record blocked time and the queue watermark must respect the cap.
	slow := StageFromRate("slow", 50, 50, 10, 10)
	slow.QueueCap = 30
	p := New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 500}, 8).
		Add(StageFromRate("fast", 1000, 1000, 10, 10)).
		Add(slow)
	res := mustRun(t, p)
	if res.Stages[0].BlockedTime <= 0 {
		t.Error("fast stage must block on backpressure")
	}
	if res.Stages[1].MaxQueueLocal > 30+1e-6 {
		t.Errorf("queue exceeded cap: %v", res.Stages[1].MaxQueueLocal)
	}
	if math.Abs(float64(res.OutputInput-500)) > 1e-6 {
		t.Errorf("conservation: %v", res.OutputInput)
	}
	if !relClose(float64(res.Throughput), 50, 0.06) {
		t.Errorf("throughput = %v, want ~50", float64(res.Throughput))
	}
}

func TestSourceBlockedByCap(t *testing.T) {
	// First stage queue capped: the source itself must stall, and overall
	// system backlog stays bounded by cap + in-flight jobs.
	st := StageFromRate("slow", 50, 50, 10, 10)
	st.QueueCap = 50
	p := New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 1000}, 9).
		Add(st)
	res := mustRun(t, p)
	if res.MaxBacklog > 100 {
		t.Errorf("backlog %v should be bounded by cap + in-flight", res.MaxBacklog)
	}
	if math.Abs(float64(res.OutputInput-1000)) > 1e-6 {
		t.Errorf("conservation: %v", res.OutputInput)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Pipeline {
		cfg := StageFromRate("var", 40, 80, 10, 10)
		return New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 2000}, 42).Add(cfg)
	}
	r1 := mustRun(t, build())
	r2 := mustRun(t, build())
	if r1.Throughput != r2.Throughput || r1.DelayMax != r2.DelayMax || r1.MaxBacklog != r2.MaxBacklog {
		t.Error("same seed must reproduce identical results")
	}
	r3, _ := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 2000}, 43).
		Add(StageFromRate("var", 40, 80, 10, 10)).Run()
	if r1.DelayMax == r3.DelayMax && r1.MaxBacklog == r3.MaxBacklog {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestUniformExecWithinBounds(t *testing.T) {
	// With exec in [0.1, 0.2] s per 10-byte job, long-run throughput lands
	// within [50, 100] B/s.
	p := New(SourceConfig{Rate: 1000, PacketSize: 10, TotalInput: 5000}, 10).
		Add(StageFromRate("u", 50, 100, 10, 10))
	res := mustRun(t, p)
	tp := float64(res.Throughput)
	if tp < 50 || tp > 100 {
		t.Errorf("throughput %v outside service envelope [50,100]", tp)
	}
	// Mean of uniform exec: ~0.15 s/job -> ~66.7 B/s.
	if !relClose(tp, 66.7, 0.1) {
		t.Errorf("throughput %v, want ~66.7", tp)
	}
}

func TestTrajectoriesMonotone(t *testing.T) {
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 3000}, 11).
		Add(StageFromRate("s", 120, 180, 10, 10))
	res := mustRun(t, p)
	if len(res.Output) < 2 || len(res.Input) < 2 {
		t.Fatal("trajectories missing")
	}
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i].Cum < res.Output[i-1].Cum || res.Output[i].T < res.Output[i-1].T {
			t.Fatal("output trajectory must be monotone")
		}
	}
	last := res.Output[len(res.Output)-1]
	if last.Cum > res.OutputInput {
		t.Error("trajectory exceeds delivered volume")
	}
}

func TestTraceDecimationCap(t *testing.T) {
	// 100k packets would blow past the 4096-point cap; decimation must hold.
	p := New(SourceConfig{Rate: 1e6, PacketSize: 10, TotalInput: 1e6}, 12).
		Add(StageFromRate("s", 2e6, 2e6, 10, 10))
	res := mustRun(t, p)
	if len(res.Output) > 4096 {
		t.Errorf("trace length %d exceeds cap", len(res.Output))
	}
}

func TestMM1MeanSojourn(t *testing.T) {
	// Poisson arrivals, exponential service: mean sojourn time should be
	// near 1/(mu - lambda). lambda = 50 jobs/s, mu = 100 jobs/s -> 20 ms.
	cfg := StageFromRate("mm1", 100*10, 100*10, 10, 10) // 10 ms per 10-byte job
	cfg.ExpExec = true
	p := New(SourceConfig{Rate: 500, PacketSize: 10, TotalInput: 400000, Poisson: true}, 13).
		Add(cfg)
	res := mustRun(t, p)
	want := 0.020
	got := res.DelayMean.Seconds()
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("M/M/1 mean sojourn = %v, want ~%v", got, want)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []*Pipeline{
		New(SourceConfig{}, 0).Add(StageFromRate("s", 1, 1, 1, 1)),
		New(SourceConfig{Rate: 1, PacketSize: 0, TotalInput: 1}, 0).Add(StageFromRate("s", 1, 1, 1, 1)),
		New(SourceConfig{Rate: 1, PacketSize: 1, TotalInput: 0}, 0).Add(StageFromRate("s", 1, 1, 1, 1)),
		New(SourceConfig{Rate: 1, PacketSize: 1, TotalInput: 1}, 0),
		New(SourceConfig{Rate: 1, PacketSize: 1, TotalInput: 1}, 0).Add(StageConfig{Name: "bad", JobIn: 0, JobOut: 1}),
		New(SourceConfig{Rate: 1, PacketSize: 1, TotalInput: 1}, 0).Add(StageConfig{Name: "bad", JobIn: 1, JobOut: 1, MinExec: 2 * time.Second, MaxExec: time.Second}),
		New(SourceConfig{Rate: 1, PacketSize: 1, TotalInput: 1}, 0).Add(StageConfig{Name: "bad", JobIn: 10, JobOut: 1, QueueCap: 5}),
	}
	for i, p := range cases {
		if _, err := p.Run(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBurstReleasedAtZero(t *testing.T) {
	p := New(SourceConfig{Rate: 100, PacketSize: 10, Burst: 200, TotalInput: 500}, 14).
		Add(StageFromRate("s", 1000, 1000, 10, 10))
	res := mustRun(t, p)
	// Burst of 200 at t=0 raises the backlog watermark immediately.
	if res.MaxBacklog < 190 {
		t.Errorf("burst backlog watermark = %v", res.MaxBacklog)
	}
	if float64(res.InputBytes) < 500 {
		t.Errorf("input %v", res.InputBytes)
	}
}

// The central property of the paper: simulated delay and backlog stay within
// the network-calculus bounds for a matched single-node system.
func TestSimWithinNetworkCalculusBounds(t *testing.T) {
	// Source: 100 B/s in 10-byte packets. Stage: deterministic 200 B/s.
	// NC: alpha' = 100 t + 10 (packetized), beta = [200 t - 10]+.
	// Delay bound: l/R + b'/R = 0.05 + 0.05 = 0.1 s.
	// Backlog bound: b' + 0 = 10 B (+ in-service job 10).
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 10000}, 15).
		Add(StageFromRate("srv", 200, 200, 10, 10))
	res := mustRun(t, p)
	if res.DelayMax > 100*time.Millisecond {
		t.Errorf("sim delay %v exceeds NC bound 100 ms", res.DelayMax)
	}
	if res.MaxBacklog > 20 {
		t.Errorf("sim backlog %v exceeds NC-derived bound 20 B", res.MaxBacklog)
	}
}

func TestStageFromRate(t *testing.T) {
	cfg := StageFromRate("x", 50, 100, 10, 5)
	if cfg.MinExec != 100*time.Millisecond || cfg.MaxExec != 200*time.Millisecond {
		t.Errorf("exec bounds %v %v", cfg.MinExec, cfg.MaxExec)
	}
	if cfg.JobIn != 10 || cfg.JobOut != 5 {
		t.Error("job sizes")
	}
}

func TestElapsedAndDelayPositive(t *testing.T) {
	p := New(SourceConfig{Rate: 100, PacketSize: 10, TotalInput: 100}, 16).
		Add(StageFromRate("s", 200, 200, 10, 10))
	res := mustRun(t, p)
	if res.Elapsed <= 0 {
		t.Error("elapsed must be positive")
	}
	if res.DelayMin <= 0 {
		t.Error("delays must be positive (service takes time)")
	}
	if res.DelayMean < res.DelayMin || res.DelayMean > res.DelayMax {
		t.Error("mean delay outside [min,max]")
	}
}

var benchSink units.Rate

func BenchmarkPipelineSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := New(SourceConfig{Rate: 1e6, PacketSize: 1024, TotalInput: 1e6}, uint64(i)).
			Add(StageFromRate("a", 2e6, 3e6, 1024, 1024)).
			Add(StageFromRate("b", 1.5e6, 2e6, 4096, 4096)).
			Add(StageFromRate("c", 2e6, 2e6, 1024, 1024))
		res, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res.Throughput
	}
}
