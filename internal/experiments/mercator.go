package experiments

import (
	"fmt"
	"io"

	"streamcalc/internal/blast"
	"streamcalc/internal/gen"
	"streamcalc/internal/mercator"
)

// Mercator demonstrates the queue-based irregular-dataflow execution the
// paper's §4.1 describes: BLASTN stages produce variable outputs per input,
// so batching survivors behind finite queues keeps "SIMD" occupancy high.
// The occupancy-maximizing scheduler is compared with round-robin.
func Mercator(w io.Writer, o Options) error {
	dbLen := 1 << 19
	if o.Quick {
		dbLen = 1 << 16
	}
	query := gen.DNA(256, o.seed()+10)
	db, _ := gen.DNAWithPlants(dbLen, query, dbLen/8, o.seed()+11)

	for _, policy := range []mercator.Policy{mercator.FullestFirst, mercator.RoundRobin} {
		hits, rep, err := blast.RunDataflow(db, query, 28, blast.DataflowConfig{Policy: policy})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  scheduler %-14s hits %-6d total firings %d\n", policy, len(hits), rep.Firings)
		fmt.Fprintf(w, "    %-14s %10s %10s %10s %12s\n", "stage", "in", "out", "firings", "occupancy")
		for _, s := range rep.Stages {
			fmt.Fprintf(w, "    %-14s %10d %10d %10d %11.1f%%\n",
				s.Name, s.ItemsIn, s.ItemsOut, s.Firings, s.AvgOccupancy*100)
		}
	}
	fmt.Fprintf(w, "  (seed matching filters most items; batching survivors keeps occupancy high)\n")
	return nil
}
