// Package experiments regenerates every table and figure of the paper's
// evaluation: Figure 1 (curve illustration), Figure 4 and Table 1 (BLAST),
// Table 2, Figure 10 and Table 3 (bump in the wire), the §4.2/§5 delay and
// backlog corroborations, and the extension studies (buffer planning,
// overload, bump-vs-traditional). Each experiment writes a human-readable
// report to a writer and, when an output directory is configured, CSV
// series for the figures.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"streamcalc/internal/aesstream"
	"streamcalc/internal/apps/bitwmodel"
	"streamcalc/internal/apps/blastmodel"
	"streamcalc/internal/blast"
	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/gen"
	"streamcalc/internal/lz4"
	"streamcalc/internal/obs"
	"streamcalc/internal/pool"
	"streamcalc/internal/queueing"
	"streamcalc/internal/stats"
	"streamcalc/internal/units"
)

// Options configure a run.
type Options struct {
	// OutDir, when non-empty, receives CSV files for the figures.
	OutDir string
	// Seed drives the simulations (default blastmodel.SimSeed).
	Seed uint64
	// Quick shrinks workload sizes for fast smoke runs (used by tests).
	Quick bool
	// Workers bounds intra-experiment parallelism (sweep points, replicated
	// sims); < 1 means GOMAXPROCS, 1 disables. Results are deterministic at
	// every worker count.
	Workers int
	// Metrics, when non-nil, receives worker-pool telemetry from the driver
	// and the sweep helpers.
	Metrics *obs.Registry
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return blastmodel.SimSeed
	}
	return o.Seed
}

// Experiment is a named, runnable reproduction target.
type Experiment struct {
	Name  string
	Title string
	Run   func(w io.Writer, o Options) error
	// Serial marks experiments that measure wall-clock throughput of real
	// software kernels (LZ4, AES, BLASTN): running them concurrently with
	// anything else would contend for CPU and skew the measured rates, so
	// the parallel driver runs them alone after the concurrent batch.
	Serial bool
}

// All returns the registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{Name: "fig1", Title: "Figure 1: arrival/service curves, backlog, delay, output bound", Run: Fig1},
		{Name: "table1", Title: "Table 1: BLAST throughput (NC bounds vs sim vs queueing)", Run: Table1},
		{Name: "fig4", Title: "Figure 4: BLAST model curves and simulated output", Run: Fig4},
		{Name: "blastbounds", Title: "§4.2: BLAST delay and backlog corroboration", Run: BlastBounds},
		{Name: "blaststages", Title: "Figure 2/3: software BLASTN per-stage measurements", Run: BlastStages, Serial: true},
		{Name: "table2", Title: "Table 2: bump-in-the-wire per-stage throughputs (software kernels)", Run: Table2, Serial: true},
		{Name: "table3", Title: "Table 3: bump-in-the-wire throughput (NC bounds vs sim vs queueing)", Run: Table3},
		{Name: "fig10", Title: "Figure 10: bump-in-the-wire model curves and simulated output", Run: Fig10},
		{Name: "bitwbounds", Title: "§5: bump-in-the-wire delay and backlog corroboration", Run: BitwBounds},
		{Name: "bitwcompare", Title: "Figures 5-8: bump-in-the-wire vs traditional deployment", Run: BitwCompare},
		{Name: "buffers", Title: "Extension: per-node buffer plans from backlog attribution", Run: Buffers},
		{Name: "overload", Title: "Extension: R_alpha > R_beta transient analysis", Run: Overload},
		{Name: "multiflow", Title: "Extension: cross traffic (residual service) and shaped arrivals", Run: Multiflow},
		{Name: "sweepjob", Title: "Ablation: GPU job-aggregation size vs latency/backlog (BLAST)", Run: SweepJobSize},
		{Name: "sweepchunk", Title: "Ablation: transfer chunk size vs delay estimate and simulation (BITW)", Run: SweepChunk},
		{Name: "mercator", Title: "§4.1: Mercator-style occupancy scheduling of the BLASTN dataflow", Run: Mercator},
		{Name: "crossval", Title: "Future work: bound soundness/tightness over random pipelines", Run: CrossVal},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment sequentially in presentation order.
func RunAll(w io.Writer, o Options) error {
	return RunParallel(w, o, 1)
}

// RunParallel executes the registry with up to `workers` experiments in
// flight (< 1 means GOMAXPROCS; 1 is the sequential RunAll). Every
// experiment writes into a private buffer, and the buffers are flushed in
// presentation order, so the report is byte-identical to a sequential run
// for every deterministic experiment. Entries marked Serial (wall-clock
// kernel measurements) run alone after the concurrent batch — their
// measured rates must not contend with sibling experiments for CPU. On
// failure the earliest (presentation-order) failing experiment's error is
// returned, along with the reports of everything before it.
func RunParallel(w io.Writer, o Options, workers int) error {
	return runEntries(w, o, workers, All())
}

// runEntries is the RunParallel engine over an explicit entry list.
func runEntries(w io.Writer, o Options, workers int, all []Experiment) error {
	bufs := make([]bytes.Buffer, len(all))
	errs := make([]error, len(all))
	run := func(i int) {
		e := all[i]
		fmt.Fprintf(&bufs[i], "==== %s: %s ====\n", e.Name, e.Title)
		if err := e.Run(&bufs[i], o); err != nil {
			errs[i] = fmt.Errorf("%s: %w", e.Name, err)
			return
		}
		fmt.Fprintln(&bufs[i])
	}

	var concurrent []int
	for i, e := range all {
		if workers != 1 && e.Serial {
			continue
		}
		concurrent = append(concurrent, i)
	}
	pm := pool.NewMetrics(o.Metrics, "experiments")
	// Experiment errors are recorded per slot, not returned through the
	// pool: the driver reports in presentation order below.
	_ = pool.ForEach(context.Background(), workers, len(concurrent), pm, func(k int) error {
		run(concurrent[k])
		return nil
	})
	if workers != 1 {
		for i, e := range all {
			if e.Serial {
				run(i)
			}
		}
	}

	for i := range all {
		if errs[i] != nil {
			// Flush everything completed before the failure, then stop —
			// matching the sequential driver's partial report.
			return errs[i]
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// writeCSV dumps parallel series under OutDir (no-op with empty OutDir).
func writeCSV(o Options, name string, header []string, rows [][]float64) error {
	if o.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(o.OutDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(f, ",")
		}
		fmt.Fprint(f, h)
	}
	fmt.Fprintln(f)
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%g", v)
		}
		fmt.Fprintln(f)
	}
	return nil
}

// curveRows samples curves on a shared horizon for CSV export.
func curveRows(horizon float64, n int, cs ...curve.Curve) [][]float64 {
	rows := make([][]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		t := horizon * float64(i) / float64(n)
		row := []float64{t}
		for _, c := range cs {
			row = append(row, c.Value(t))
		}
		rows = append(rows, row)
	}
	return rows
}

func mibs(r units.Rate) float64  { return float64(r) / float64(units.MiBPerSec) }
func mib(b units.Bytes) float64  { return float64(b) / float64(units.MiB) }
func kib(b units.Bytes) float64  { return float64(b) / float64(units.KiB) }
func ms(d time.Duration) float64 { return d.Seconds() * 1e3 }
func us(d time.Duration) float64 { return d.Seconds() * 1e6 }

// Fig1 reproduces the illustrative Figure 1: a leaky-bucket arrival curve,
// a rate-latency service curve and a maximum service curve, with the
// derived backlog, virtual delay, and output flow bound.
func Fig1(w io.Writer, o Options) error {
	alpha := curve.Affine(1, 4)      // R_alpha=1, b=4
	beta := curve.RateLatency(2, 3)  // R_beta=2, T=3
	gamma := curve.RateLatency(3, 1) // best case
	d := curve.HDev(alpha, beta)
	x := curve.VDev(alpha, beta)
	conv := curve.Convolve(alpha, gamma)
	out, ok := curve.Deconvolve(conv, beta)
	if !ok {
		return fmt.Errorf("unexpected unbounded deconvolution")
	}
	out = out.ZeroAtOrigin()
	fmt.Fprintf(w, "alpha  = leaky bucket R=1, b=4\n")
	fmt.Fprintf(w, "beta   = rate-latency R=2, T=3\n")
	fmt.Fprintf(w, "gamma  = rate-latency R=3, T=1\n")
	fmt.Fprintf(w, "virtual delay d = %.3f (closed form T + b/R = %.3f)\n", d, 3+4.0/2.0)
	fmt.Fprintf(w, "backlog x       = %.3f (closed form b + R_a*T = %.3f)\n", x, 4+1.0*3)
	fmt.Fprintf(w, "output bound alpha* : burst %.3f, rate %.3f\n", out.Burst(), out.UltimateSlope())
	return writeCSV(o, "fig1.csv",
		[]string{"t", "alpha", "beta", "gamma", "alpha_star"},
		curveRows(12, 240, alpha, beta, gamma, out))
}

// throughputTable prints one Table 1/3-style comparison.
func throughputTable(w io.Writer, rows [][2]string) {
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s  %s\n", width, r[0], r[1])
	}
}

// Table1 reproduces the BLAST throughput table.
func Table1(w io.Writer, o Options) error {
	a, err := blastmodel.Analyze()
	if err != nil {
		return err
	}
	qt, err := queueing.Analyze(blastmodel.QueueingNetwork())
	if err != nil {
		return err
	}
	total := 512 * units.MiB
	reps := 3
	if o.Quick {
		total = 96 * units.MiB
		reps = 1
	}
	var tp stats.Summary
	for i := 0; i < reps; i++ {
		simRes, err := blastmodel.SimulateThroughput(total, o.seed()+uint64(i))
		if err != nil {
			return err
		}
		tp.Add(float64(simRes.Throughput))
	}
	simCell := fmt.Sprintf("%.0f MiB/s (353)", tp.Mean()/float64(units.MiBPerSec))
	if reps > 1 {
		simCell = fmt.Sprintf("%.0f ± %.1f MiB/s over %d seeds (353)",
			tp.Mean()/float64(units.MiBPerSec), tp.CI95()/float64(units.MiBPerSec), reps)
	}
	throughputTable(w, [][2]string{
		{"Source", "Value (paper)"},
		{"Network calculus upper bound", fmt.Sprintf("%.0f MiB/s (704)", mibs(a.ThroughputUpper))},
		{"Network calculus lower bound", fmt.Sprintf("%.0f MiB/s (350)", mibs(a.ThroughputLower))},
		{"Discrete-event simulation model", simCell},
		{"Queueing theory prediction", fmt.Sprintf("%.0f MiB/s (500)", mibs(qt.Roofline))},
		{"Measured throughput [12]", "n/a here (355 in paper)"},
	})
	return nil
}

// Fig4 exports the BLAST model curves plus the simulated cumulative-output
// stairstep that must lie between the bounds.
func Fig4(w io.Writer, o Options) error {
	a, err := blastmodel.Analyze()
	if err != nil {
		return err
	}
	total := 96 * units.MiB
	if o.Quick {
		total = 48 * units.MiB
	}
	simRes, err := blastmodel.SimulateThroughput(total, o.seed())
	if err != nil {
		return err
	}
	horizon := 0.120 // 120 ms
	rows := curveRows(horizon, 480, a.AlphaPrime, a.Beta, a.OutputBound)
	fmt.Fprintf(w, "curves sampled over %.0f ms; sim trajectory has %d points\n",
		horizon*1e3, len(simRes.Output))
	if err := writeCSV(o, "fig4_curves.csv",
		[]string{"t_s", "alpha_prime_B", "beta_B", "alpha_star_B"}, rows); err != nil {
		return err
	}
	var simRows [][]float64
	for _, p := range simRes.Output {
		simRows = append(simRows, []float64{p.T.Seconds(), float64(p.Cum)})
	}
	if err := writeCSV(o, "fig4_sim.csv", []string{"t_s", "cum_out_B"}, simRows); err != nil {
		return err
	}
	// Shape property: at every simulated departure the cumulative output
	// lies at or below the arrival envelope.
	violations := 0
	for _, p := range simRes.Output {
		if float64(p.Cum) > a.AlphaPrime.Value(p.T.Seconds())+1 {
			violations++
		}
	}
	fmt.Fprintf(w, "sim output vs alpha' envelope violations: %d\n", violations)
	return nil
}

// BlastBounds reports the §4.2 delay/backlog corroboration.
func BlastBounds(w io.Writer, o Options) error {
	a, err := blastmodel.Analyze()
	if err != nil {
		return err
	}
	simRes, err := blastmodel.SimulateJobTraversal(o.seed())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "model delay estimate  : %.1f ms (paper 46.9)\n", ms(a.DelayEstimate))
	fmt.Fprintf(w, "sim delay min/max     : %.1f / %.1f ms (paper 40.7 / 46.4)\n",
		ms(simRes.DelayMin), ms(simRes.DelayMax))
	fmt.Fprintf(w, "model backlog estimate: %.1f MiB (paper 20.6 MiB)\n", mib(a.BacklogEstimate))
	fmt.Fprintf(w, "sim backlog watermark : %.1f MiB (paper reports 20.1 KiB; see EXPERIMENTS.md erratum)\n",
		mib(simRes.MaxBacklog))
	fmt.Fprintf(w, "regime: R_alpha (%.0f) > R_beta (%.0f): figures are the §3 transient estimates\n",
		mibs(blastmodel.ArrivalRate), mibs(a.ThroughputLower))
	return nil
}

// BlastStages runs the real software BLASTN pipeline and reports isolated
// per-stage throughputs and job ratios — the Figure 2/3 parameterization
// path.
func BlastStages(w io.Writer, o Options) error {
	dbLen := 1 << 22
	repeat := 3
	if o.Quick {
		dbLen = 1 << 18
		repeat = 1
	}
	query := gen.DNA(256, o.seed())
	db, _ := gen.DNAWithPlants(dbLen, query, dbLen/8, o.seed()+1)
	ms, err := blast.MeasureStages(db, query, 30, repeat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-14s %14s %14s %10s\n", "stage", "in", "out", "job ratio")
	for _, m := range ms {
		fmt.Fprintf(w, "  %-14s %14s %14s %10.2f   (%s)\n",
			m.Name, m.InBytes.String(), m.OutBytes.String(), m.JobRatio(), m.Rate.String())
	}
	res, err := blast.Run(db, query, 30)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  end-to-end: %d seed positions, %d matches, %d passed small ext, %d hits\n",
		res.Counts.SeedPositions, res.Counts.SeedMatches, res.Counts.SmallPassed, res.Counts.Hits)
	return nil
}

// Table2 measures our software LZ4 and AES kernels on corpora spanning the
// paper's observed compression ratios and prints them alongside the paper's
// Table 2 FPGA-kernel numbers.
func Table2(w io.Writer, o Options) error {
	size := 1 << 24
	if o.Quick {
		size = 1 << 20
	}
	corpora := map[string][]byte{
		"min": gen.Incompressible(size, o.seed()),
		"avg": gen.Text(size, 0.40, o.seed()+1),
		"max": gen.Text(size, 0.90, o.seed()+2),
	}
	type row struct {
		name string
		vals map[string]units.Rate
	}
	mkRow := func(name string) *row { return &row{name: name, vals: map[string]units.Rate{}} }
	compress, decompress := mkRow("Compress"), mkRow("Decompress")
	encrypt, decrypt := mkRow("Encrypt"), mkRow("Decrypt")
	ratios := map[string]float64{}

	key := make([]byte, aesstream.KeySize)
	for label, data := range corpora {
		start := time.Now()
		c := lz4.Compress(nil, data)
		compress.vals[label] = units.Bytes(len(data)).Over(time.Since(start))
		ratios[label] = float64(len(data)) / float64(len(c))

		start = time.Now()
		if _, err := lz4.Decompress(nil, c, len(data)); err != nil {
			return err
		}
		decompress.vals[label] = units.Bytes(len(data)).Over(time.Since(start))

		enc, err := aesstream.New(key, 1)
		if err != nil {
			return err
		}
		start = time.Now()
		ct := enc.Encrypt(c, 4096)
		encrypt.vals[label] = units.Bytes(len(c)).Over(time.Since(start))

		dec, _ := aesstream.New(key, 1)
		start = time.Now()
		if _, err := dec.Decrypt(ct); err != nil {
			return err
		}
		decrypt.vals[label] = units.Bytes(len(c)).Over(time.Since(start))
	}

	fmt.Fprintf(w, "  software-kernel measurements (paper Table 2 measured FPGA kernels):\n")
	fmt.Fprintf(w, "  %-12s %14s %14s %14s\n", "function", "min-corpus", "avg-corpus", "max-corpus")
	for _, r := range []*row{compress, encrypt, decrypt, decompress} {
		fmt.Fprintf(w, "  %-12s %14s %14s %14s\n", r.name,
			r.vals["min"].String(), r.vals["avg"].String(), r.vals["max"].String())
	}
	var labels []string
	for l := range ratios {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(w, "  LZ4 ratio on %s corpus: %.2fx\n", l, ratios[l])
	}
	fmt.Fprintf(w, "  paper ratios: 1.0 min / 2.2 avg / 5.3 max\n")
	fmt.Fprintf(w, "  paper rates : compress 1181/2662/6386, encrypt 56/68/75, network 10 GiB/s,\n")
	fmt.Fprintf(w, "                decrypt 77/90/113, decompress 1426/1495/1543, PCIe 11 GiB/s (MiB/s)\n")
	return nil
}

// Table3 reproduces the bump-in-the-wire throughput table.
func Table3(w io.Writer, o Options) error {
	a, err := bitwmodel.Analyze()
	if err != nil {
		return err
	}
	qt, err := queueing.Analyze(bitwmodel.QueueingNetwork())
	if err != nil {
		return err
	}
	total := 32 * units.MiB
	reps := 3
	if o.Quick {
		total = 8 * units.MiB
		reps = 1
	}
	var tp stats.Summary
	for i := 0; i < reps; i++ {
		simRes, err := bitwmodel.SimulateThroughput(total, o.seed()+uint64(i))
		if err != nil {
			return err
		}
		tp.Add(float64(simRes.Throughput))
	}
	simCell := fmt.Sprintf("%.0f MiB/s (61)", tp.Mean()/float64(units.MiBPerSec))
	if reps > 1 {
		simCell = fmt.Sprintf("%.1f ± %.2f MiB/s over %d seeds (61)",
			tp.Mean()/float64(units.MiBPerSec), tp.CI95()/float64(units.MiBPerSec), reps)
	}
	throughputTable(w, [][2]string{
		{"Source", "Value (paper)"},
		{"Network calculus upper bound", fmt.Sprintf("%.0f MiB/s (313)", mibs(a.ThroughputUpper))},
		{"Network calculus lower bound", fmt.Sprintf("%.0f MiB/s (59)", mibs(a.ThroughputLower))},
		{"Discrete-event simulation model", simCell},
		{"Queueing theory prediction", fmt.Sprintf("%.0f MiB/s (151)", mibs(qt.Roofline))},
	})
	return nil
}

// Fig10 exports the bump-in-the-wire curves and simulated output (the
// paper omits gamma from this plot; we export it anyway in its own column).
func Fig10(w io.Writer, o Options) error {
	a, err := bitwmodel.Analyze()
	if err != nil {
		return err
	}
	simRes, err := bitwmodel.SimulateThroughput(4*units.MiB, o.seed())
	if err != nil {
		return err
	}
	horizon := 100e-6
	rows := curveRows(horizon, 400, a.AlphaPrime, a.Beta, a.OutputBound, a.Gamma)
	fmt.Fprintf(w, "curves sampled over %.0f µs; sim trajectory has %d points\n",
		horizon*1e6, len(simRes.Output))
	if err := writeCSV(o, "fig10_curves.csv",
		[]string{"t_s", "alpha_prime_B", "beta_B", "alpha_star_B", "gamma_B"}, rows); err != nil {
		return err
	}
	var simRows [][]float64
	for _, p := range simRes.Output {
		simRows = append(simRows, []float64{p.T.Seconds(), float64(p.Cum)})
	}
	return writeCSV(o, "fig10_sim.csv", []string{"t_s", "cum_out_B"}, simRows)
}

// BitwBounds reports the §5 delay/backlog corroboration.
func BitwBounds(w io.Writer, o Options) error {
	a, err := bitwmodel.Analyze()
	if err != nil {
		return err
	}
	simRes, err := bitwmodel.SimulateJobTraversal(o.seed())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "model delay estimate  : %.1f µs (paper 38)\n", us(a.DelayEstimate))
	fmt.Fprintf(w, "sim delay min/max     : %.1f / %.1f µs (paper 25.7 / 36.7)\n",
		us(simRes.DelayMin), us(simRes.DelayMax))
	fmt.Fprintf(w, "model backlog estimate: %.2f KiB (paper 3)\n", kib(a.BacklogEstimate))
	fmt.Fprintf(w, "sim backlog watermark : %.2f KiB (paper 2)\n", kib(simRes.MaxBacklog))
	return nil
}

// BitwCompare contrasts the bump-in-the-wire deployment with the
// traditional PCIe-attached one (Figures 5-8): same throughput, extra
// latency from the PCIe + host-staging hops.
func BitwCompare(w io.Writer, o Options) error {
	bump, err := bitwmodel.Analyze()
	if err != nil {
		return err
	}
	trad, err := core.Analyze(bitwmodel.TraditionalPipeline())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-28s %18s %18s\n", "", "bump-in-the-wire", "traditional")
	fmt.Fprintf(w, "  %-28s %18.0f %18.0f\n", "throughput lower (MiB/s)",
		mibs(bump.ThroughputLower), mibs(trad.ThroughputLower))
	fmt.Fprintf(w, "  %-28s %18.2f %18.2f\n", "delay estimate (µs)",
		us(bump.DelayEstimate), us(trad.DelayEstimate))
	fmt.Fprintf(w, "  %-28s %18.3f %18.3f\n", "cumulative latency (µs)",
		us(bump.TotalLatency), us(trad.TotalLatency))
	fmt.Fprintf(w, "  %-28s %18.2f %18.2f\n", "backlog estimate (KiB)",
		kib(bump.BacklogEstimate), kib(trad.BacklogEstimate))
	fmt.Fprintf(w, "  eliminating the PCIe return trip saves %.3f µs of pipeline latency\n",
		us(trad.TotalLatency-bump.TotalLatency))
	return nil
}

// Buffers prints the analytic per-node buffer plans for both case studies —
// the paper's "assist a developer in allocating buffers" use case.
func Buffers(w io.Writer, o Options) error {
	for _, app := range []struct {
		name string
		an   func() (*core.Analysis, error)
	}{
		{"BLAST", blastmodel.Analyze},
		{"bump-in-the-wire", bitwmodel.Analyze},
	} {
		a, err := app.an()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %s per-node backlog attribution:\n", app.name)
		for _, rec := range a.BufferPlan() {
			if rec.Infinite {
				fmt.Fprintf(w, "    %-20s unbounded (downstream of overload point; size via overload analysis)\n", rec.Name)
			} else {
				fmt.Fprintf(w, "    %-20s %s\n", rec.Name, rec.Capacity.String())
			}
		}
	}
	return nil
}

// Multiflow exercises the multi-flow and back-pressure extensions on the
// bump-in-the-wire pipeline: a second tenant's traffic on the shared
// network link shrinks the residual service, and shaping the arrival down
// to the sustainable rate restores finite steady-state bounds.
func Multiflow(w io.Writer, o Options) error {
	base := bitwmodel.Pipeline()
	a0, err := core.Analyze(base)
	if err != nil {
		return err
	}

	// A second tenant sends 5 GiB/s through the same 10 GiB/s link.
	shared := base
	shared.Nodes = append([]core.Node(nil), base.Nodes...)
	for i := range shared.Nodes {
		if shared.Nodes[i].Name == "network" {
			shared.Nodes[i].CrossRate = 5 * units.GiBPerSec
			shared.Nodes[i].CrossBurst = 64 * units.KiB
		}
	}
	a1, err := core.Analyze(shared)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  network link shared with a 5 GiB/s tenant:\n")
	fmt.Fprintf(w, "    residual link rate: %.1f -> %.1f GiB/s\n",
		float64(a0.Nodes[2].Rate)/float64(units.GiBPerSec),
		float64(a1.Nodes[2].Rate)/float64(units.GiBPerSec))
	fmt.Fprintf(w, "    pipeline lower bound unchanged at %.0f MiB/s (encrypt still dominates)\n",
		mibs(a1.ThroughputLower))
	fmt.Fprintf(w, "    delay estimate: %.2f -> %.2f µs\n", us(a0.DelayEstimate), us(a1.DelayEstimate))

	// Back-pressure as a shaper: throttle the arrival to the sustainable
	// rate; the steady-state bounds become finite.
	shaped := base
	shaped.Arrival.Extra = []core.Bucket{{Rate: a0.ThroughputLower, Burst: 2 * units.KiB}}
	a2, err := core.Analyze(shaped)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  arrival shaped to the sustainable %.0f MiB/s:\n", mibs(a0.ThroughputLower))
	fmt.Fprintf(w, "    overloaded: %v -> %v\n", a0.Overloaded, a2.Overloaded)
	if !a2.Overloaded {
		fmt.Fprintf(w, "    finite steady-state bounds: delay %.2f µs, backlog %.2f KiB\n",
			us(a2.DelayBound), kib(a2.BacklogBound))
	}
	return nil
}

// Overload exercises the future-work extension: transient growth, time to
// overflow, and sustainable-rate guidance for the overloaded BLAST intake.
func Overload(w io.Writer, o Options) error {
	ov, err := core.AnalyzeOverload(blastmodel.Pipeline())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  overloaded: %v (arrival %.0f vs service %.0f MiB/s)\n",
		ov.Overloaded, mibs(ov.ArrivalRate), mibs(ov.ServiceRate))
	fmt.Fprintf(w, "  backlog growth rate: %.0f MiB/s\n", mibs(ov.GrowthRate))
	for _, buf := range []units.Bytes{32 * units.MiB, 128 * units.MiB, 512 * units.MiB} {
		d, reached := ov.TimeToFill(buf)
		if reached {
			fmt.Fprintf(w, "  a %s buffer overflows after %.1f ms\n", buf.String(), ms(d))
		} else {
			fmt.Fprintf(w, "  a %s buffer never overflows\n", buf.String())
		}
	}
	fmt.Fprintf(w, "  sustainable arrival rate: %.0f MiB/s (throttle target)\n", mibs(ov.SustainableRate))
	return nil
}
