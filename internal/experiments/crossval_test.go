package experiments

import (
	"io"
	"testing"
)

// The cross-validation must be sound for any seed, not the one frozen
// sequence the experiment harness happens to run: CrossVal errors when any
// analytic bound is violated by its simulation, so sweeping seeds here is a
// direct regression test of the grain-based aggregation model (PR 3 filed a
// sub-packet backlog slack that was in fact a missing job-fill latency
// charge, with delay overshoots up to ~30% on non-default seeds).
func TestCrossValSoundAcrossSeeds(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	for seed := 1; seed <= seeds; seed++ {
		if err := CrossVal(io.Discard, Options{Seed: uint64(seed)}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
