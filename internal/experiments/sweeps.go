package experiments

import (
	"fmt"
	"io"

	"streamcalc/internal/apps/bitwmodel"
	"streamcalc/internal/apps/blastmodel"
	"streamcalc/internal/core"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

// SweepJobSize ablates the paper's job-aggregation term: the BLAST GPU (and
// compose node) job size is swept and the resulting cumulative latency,
// delay estimate, and backlog estimate reported. Aggregation delay scales
// as b_n / R_alpha, so halving the job size halves the aggregation
// contribution — the knob the paper's T_n^tot recursion exposes.
func SweepJobSize(w io.Writer, o Options) error {
	fmt.Fprintf(w, "  %-12s %12s %12s %12s\n", "job size", "T_tot (ms)", "d est (ms)", "x est (MiB)")
	var rows [][]float64
	for _, j := range []units.Bytes{768 * units.KiB / 2, 768 * units.KiB, 2 * 768 * units.KiB, 4 * 768 * units.KiB} {
		p := blastmodel.Pipeline()
		for i := range p.Nodes {
			switch p.Nodes[i].Name {
			case "compose":
				p.Nodes[i].JobIn, p.Nodes[i].JobOut, p.Nodes[i].MaxPacket = j, j, j
			case "gpu-blast":
				p.Nodes[i].JobIn = j
			}
		}
		a, err := core.Analyze(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-12s %12.2f %12.2f %12.2f\n",
			units.Bytes(4*float64(j)).String(), // input-referred
			ms(a.TotalLatency), ms(a.DelayEstimate), mib(a.BacklogEstimate))
		rows = append(rows, []float64{4 * float64(j), ms(a.TotalLatency), ms(a.DelayEstimate), mib(a.BacklogEstimate)})
	}
	fmt.Fprintf(w, "  (aggregation delay = job/R_alpha: linear in the job size)\n")
	return writeCSV(o, "sweep_jobsize.csv",
		[]string{"job_bytes_input_referred", "t_tot_ms", "delay_est_ms", "backlog_est_mib"}, rows)
}

// SweepChunk ablates the packet/chunk granularity of the bump-in-the-wire
// pipeline: the network chunk adds directly to the packetized burst b', so
// the delay estimate d = T_tot + b'/R_beta grows linearly with the chunk.
// A quick traversal simulation is run at each point for comparison.
func SweepChunk(w io.Writer, o Options) error {
	fmt.Fprintf(w, "  %-10s %14s %14s %14s\n", "chunk", "d est (µs)", "sim max (µs)", "x est (KiB)")
	var rows [][]float64
	for _, chunk := range []units.Bytes{256, 512, units.KiB, 2 * units.KiB, 4 * units.KiB} {
		p := bitwmodel.Pipeline()
		p.Arrival.MaxPacket = chunk
		for i := range p.Nodes {
			p.Nodes[i].JobIn, p.Nodes[i].JobOut, p.Nodes[i].MaxPacket = chunk, chunk, chunk
		}
		a, err := core.Analyze(p)
		if err != nil {
			return err
		}
		simMax, err := sweepChunkSim(chunk, o.seed())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s %14.2f %14.2f %14.2f\n",
			chunk.String(), us(a.DelayEstimate), simMax, kib(a.BacklogEstimate))
		rows = append(rows, []float64{float64(chunk), us(a.DelayEstimate), simMax, kib(a.BacklogEstimate)})
	}
	fmt.Fprintf(w, "  (the chunk adds to the packetized burst: d grows linearly with it)\n")
	return writeCSV(o, "sweep_chunk.csv",
		[]string{"chunk_bytes", "delay_est_us", "sim_max_us", "backlog_est_kib"}, rows)
}

// sweepChunkSim runs a single-burst traversal with the given chunk size and
// returns the max observed delay in microseconds.
func sweepChunkSim(chunk units.Bytes, seed uint64) (float64, error) {
	fine := chunk / 4
	if fine < 64 {
		fine = 64
	}
	mk := func(name string, minRate, maxRate units.Rate, job units.Bytes) sim.StageConfig {
		return sim.StageFromRate(name, minRate, maxRate, job, job)
	}
	total := bitwmodel.ArrivalBurst + chunk
	p := sim.New(sim.SourceConfig{
		Rate:       bitwmodel.ArrivalRate,
		PacketSize: chunk,
		Burst:      bitwmodel.ArrivalBurst,
		TotalInput: total,
	}, seed)
	p.Add(mk("compress", 1181*units.MiBPerSec, 6386*units.MiBPerSec, chunk)).
		Add(mk("encrypt", 56*units.MiBPerSec, 68*units.MiBPerSec, fine)).
		Add(mk("network", 10*units.GiBPerSec, 10*units.GiBPerSec, fine)).
		Add(mk("decrypt", 77*units.MiBPerSec, 113*units.MiBPerSec, fine)).
		Add(mk("decompress", 1426*units.MiBPerSec, 1543*units.MiBPerSec, fine)).
		Add(mk("pcie", 11*units.GiBPerSec, 11*units.GiBPerSec, fine))
	res, err := p.Run()
	if err != nil {
		return 0, err
	}
	return res.DelayMax.Seconds() * 1e6, nil
}
