package experiments

import (
	"context"
	"fmt"
	"io"

	"streamcalc/internal/apps/bitwmodel"
	"streamcalc/internal/apps/blastmodel"
	"streamcalc/internal/core"
	"streamcalc/internal/pool"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

// sweepPoint is one evaluated sweep point: the formatted report line and the
// CSV row it contributes.
type sweepPoint struct {
	line string
	row  []float64
}

// sweepParallel evaluates n independent sweep points on the Options worker
// pool (o.Workers; < 1 means GOMAXPROCS) and returns them in index order —
// each point owns its simulator and seed, so the table is identical at
// every worker count. The pool telemetry lands on o.Metrics under the
// "sweep:<name>" label.
func sweepParallel(o Options, name string, n int, eval func(i int) (sweepPoint, error)) ([]sweepPoint, error) {
	pts := make([]sweepPoint, n)
	pm := pool.NewMetrics(o.Metrics, "sweep:"+name)
	err := pool.ForEach(context.Background(), o.Workers, n, pm, func(i int) error {
		p, err := eval(i)
		if err != nil {
			return err
		}
		pts[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// SweepJobSize ablates the paper's job-aggregation term: the BLAST GPU (and
// compose node) job size is swept and the resulting cumulative latency,
// delay estimate, and backlog estimate reported. Aggregation delay scales
// as b_n / R_alpha, so halving the job size halves the aggregation
// contribution — the knob the paper's T_n^tot recursion exposes.
func SweepJobSize(w io.Writer, o Options) error {
	jobs := []units.Bytes{768 * units.KiB / 2, 768 * units.KiB, 2 * 768 * units.KiB, 4 * 768 * units.KiB}
	pts, err := sweepParallel(o, "jobsize", len(jobs), func(i int) (sweepPoint, error) {
		j := jobs[i]
		p := blastmodel.Pipeline()
		for k := range p.Nodes {
			switch p.Nodes[k].Name {
			case "compose":
				p.Nodes[k].JobIn, p.Nodes[k].JobOut, p.Nodes[k].MaxPacket = j, j, j
			case "gpu-blast":
				p.Nodes[k].JobIn = j
			}
		}
		a, err := core.Analyze(p)
		if err != nil {
			return sweepPoint{}, err
		}
		return sweepPoint{
			line: fmt.Sprintf("  %-12s %12.2f %12.2f %12.2f\n",
				units.Bytes(4*float64(j)).String(), // input-referred
				ms(a.TotalLatency), ms(a.DelayEstimate), mib(a.BacklogEstimate)),
			row: []float64{4 * float64(j), ms(a.TotalLatency), ms(a.DelayEstimate), mib(a.BacklogEstimate)},
		}, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-12s %12s %12s %12s\n", "job size", "T_tot (ms)", "d est (ms)", "x est (MiB)")
	var rows [][]float64
	for _, p := range pts {
		fmt.Fprint(w, p.line)
		rows = append(rows, p.row)
	}
	fmt.Fprintf(w, "  (aggregation delay = job/R_alpha: linear in the job size)\n")
	return writeCSV(o, "sweep_jobsize.csv",
		[]string{"job_bytes_input_referred", "t_tot_ms", "delay_est_ms", "backlog_est_mib"}, rows)
}

// SweepChunk ablates the packet/chunk granularity of the bump-in-the-wire
// pipeline: the network chunk adds directly to the packetized burst b', so
// the delay estimate d = T_tot + b'/R_beta grows linearly with the chunk.
// A quick traversal simulation is run at each point for comparison.
func SweepChunk(w io.Writer, o Options) error {
	chunks := []units.Bytes{256, 512, units.KiB, 2 * units.KiB, 4 * units.KiB}
	pts, err := sweepParallel(o, "chunk", len(chunks), func(i int) (sweepPoint, error) {
		chunk := chunks[i]
		p := bitwmodel.Pipeline()
		p.Arrival.MaxPacket = chunk
		for j := range p.Nodes {
			p.Nodes[j].JobIn, p.Nodes[j].JobOut, p.Nodes[j].MaxPacket = chunk, chunk, chunk
		}
		a, err := core.Analyze(p)
		if err != nil {
			return sweepPoint{}, err
		}
		simMax, err := sweepChunkSim(chunk, o.seed())
		if err != nil {
			return sweepPoint{}, err
		}
		return sweepPoint{
			line: fmt.Sprintf("  %-10s %14.2f %14.2f %14.2f\n",
				chunk.String(), us(a.DelayEstimate), simMax, kib(a.BacklogEstimate)),
			row: []float64{float64(chunk), us(a.DelayEstimate), simMax, kib(a.BacklogEstimate)},
		}, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-10s %14s %14s %14s\n", "chunk", "d est (µs)", "sim max (µs)", "x est (KiB)")
	var rows [][]float64
	for _, p := range pts {
		fmt.Fprint(w, p.line)
		rows = append(rows, p.row)
	}
	fmt.Fprintf(w, "  (the chunk adds to the packetized burst: d grows linearly with it)\n")
	return writeCSV(o, "sweep_chunk.csv",
		[]string{"chunk_bytes", "delay_est_us", "sim_max_us", "backlog_est_kib"}, rows)
}

// sweepChunkSim runs a single-burst traversal with the given chunk size and
// returns the max observed delay in microseconds.
func sweepChunkSim(chunk units.Bytes, seed uint64) (float64, error) {
	fine := chunk / 4
	if fine < 64 {
		fine = 64
	}
	mk := func(name string, minRate, maxRate units.Rate, job units.Bytes) sim.StageConfig {
		return sim.StageFromRate(name, minRate, maxRate, job, job)
	}
	total := bitwmodel.ArrivalBurst + chunk
	p := sim.New(sim.SourceConfig{
		Rate:       bitwmodel.ArrivalRate,
		PacketSize: chunk,
		Burst:      bitwmodel.ArrivalBurst,
		TotalInput: total,
	}, seed)
	p.Add(mk("compress", 1181*units.MiBPerSec, 6386*units.MiBPerSec, chunk)).
		Add(mk("encrypt", 56*units.MiBPerSec, 68*units.MiBPerSec, fine)).
		Add(mk("network", 10*units.GiBPerSec, 10*units.GiBPerSec, fine)).
		Add(mk("decrypt", 77*units.MiBPerSec, 113*units.MiBPerSec, fine)).
		Add(mk("decompress", 1426*units.MiBPerSec, 1543*units.MiBPerSec, fine)).
		Add(mk("pcie", 11*units.GiBPerSec, 11*units.GiBPerSec, fine))
	res, err := p.Run()
	if err != nil {
		return 0, err
	}
	return res.DelayMax.Seconds() * 1e6, nil
}
