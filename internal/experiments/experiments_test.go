package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "table1", "fig4", "blastbounds", "blaststages",
		"table2", "table3", "fig10", "bitwbounds", "bitwcompare",
		"buffers", "overload", "multiflow",
		"sweepjob", "sweepchunk", "mercator", "crossval",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry size %d, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("slot %d = %s, want %s", i, all[i].Name, name)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Errorf("%s: incomplete entry", name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table1"); !ok {
		t.Error("table1 must exist")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown name must miss")
	}
}

// Every experiment must run cleanly in quick mode and produce output
// containing its key result markers.
func TestAllExperimentsQuick(t *testing.T) {
	markers := map[string][]string{
		"fig1":        {"virtual delay", "backlog", "output bound"},
		"table1":      {"704", "350", "Queueing"},
		"fig4":        {"sim trajectory", "violations: 0"},
		"blastbounds": {"46.9", "20.6"},
		"blaststages": {"fa2bit", "seed-match", "ungapped-ext", "hits"},
		"table2":      {"Compress", "Encrypt", "LZ4 ratio"},
		"table3":      {"313", "59"},
		"fig10":       {"sim trajectory"},
		"bitwbounds":  {"38", "KiB"},
		"bitwcompare": {"bump-in-the-wire", "traditional"},
		"buffers":     {"backlog attribution"},
		"overload":    {"sustainable arrival rate"},
		"multiflow":   {"residual link rate", "shaped"},
		"sweepjob":    {"T_tot", "aggregation delay"},
		"sweepchunk":  {"d est", "sim max"},
		"mercator":    {"fullest-first", "round-robin", "occupancy"},
		"crossval":    {"violations: 0", "tightness"},
	}
	dir := t.TempDir()
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(&buf, Options{Quick: true, OutDir: dir}); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		out := buf.String()
		for _, m := range markers[e.Name] {
			if !strings.Contains(out, m) {
				t.Errorf("%s: output missing %q:\n%s", e.Name, m, out)
			}
		}
	}
}

func TestCSVFilesWritten(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	for _, name := range []string{"fig1", "fig4", "fig10"} {
		e, _ := Lookup(name)
		if err := e.Run(&buf, Options{Quick: true, OutDir: dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, f := range []string{"fig1.csv", "fig4_curves.csv", "fig4_sim.csv", "fig10_curves.csv", "fig10_sim.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 3 {
			t.Errorf("%s: only %d lines", f, len(lines))
		}
		if !strings.Contains(lines[0], "t") {
			t.Errorf("%s: missing header: %s", f, lines[0])
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	// Each section header contains "====" twice (prefix and suffix).
	if c := strings.Count(buf.String(), "===="); c != 2*len(All()) {
		t.Errorf("section marker count %d, want %d", c, 2*len(All()))
	}
}
