package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "table1", "fig4", "blastbounds", "blaststages",
		"table2", "table3", "fig10", "bitwbounds", "bitwcompare",
		"buffers", "overload", "multiflow",
		"sweepjob", "sweepchunk", "mercator", "crossval",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry size %d, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("slot %d = %s, want %s", i, all[i].Name, name)
		}
		if all[i].Title == "" || all[i].Run == nil {
			t.Errorf("%s: incomplete entry", name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table1"); !ok {
		t.Error("table1 must exist")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown name must miss")
	}
}

// Every experiment must run cleanly in quick mode and produce output
// containing its key result markers.
func TestAllExperimentsQuick(t *testing.T) {
	markers := map[string][]string{
		"fig1":        {"virtual delay", "backlog", "output bound"},
		"table1":      {"704", "350", "Queueing"},
		"fig4":        {"sim trajectory", "violations: 0"},
		"blastbounds": {"46.9", "20.6"},
		"blaststages": {"fa2bit", "seed-match", "ungapped-ext", "hits"},
		"table2":      {"Compress", "Encrypt", "LZ4 ratio"},
		"table3":      {"313", "59"},
		"fig10":       {"sim trajectory"},
		"bitwbounds":  {"38", "KiB"},
		"bitwcompare": {"bump-in-the-wire", "traditional"},
		"buffers":     {"backlog attribution"},
		"overload":    {"sustainable arrival rate"},
		"multiflow":   {"residual link rate", "shaped"},
		"sweepjob":    {"T_tot", "aggregation delay"},
		"sweepchunk":  {"d est", "sim max"},
		"mercator":    {"fullest-first", "round-robin", "occupancy"},
		"crossval":    {"violations: 0", "tightness"},
	}
	dir := t.TempDir()
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(&buf, Options{Quick: true, OutDir: dir}); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		out := buf.String()
		for _, m := range markers[e.Name] {
			if !strings.Contains(out, m) {
				t.Errorf("%s: output missing %q:\n%s", e.Name, m, out)
			}
		}
	}
}

func TestCSVFilesWritten(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	for _, name := range []string{"fig1", "fig4", "fig10"} {
		e, _ := Lookup(name)
		if err := e.Run(&buf, Options{Quick: true, OutDir: dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, f := range []string{"fig1.csv", "fig4_curves.csv", "fig4_sim.csv", "fig10_curves.csv", "fig10_sim.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 3 {
			t.Errorf("%s: only %d lines", f, len(lines))
		}
		if !strings.Contains(lines[0], "t") {
			t.Errorf("%s: missing header: %s", f, lines[0])
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	// Each section header contains "====" twice (prefix and suffix).
	if c := strings.Count(buf.String(), "===="); c != 2*len(All()) {
		t.Errorf("section marker count %d, want %d", c, 2*len(All()))
	}
}

// TestRunParallelMatchesSequential runs a deterministic subset of the
// registry (no wall-clock measurement experiments) through the sequential
// and the parallel driver and requires byte-identical reports, flushed in
// presentation order.
func TestRunParallelMatchesSequential(t *testing.T) {
	var entries []Experiment
	for _, name := range []string{"fig1", "table1", "blastbounds", "sweepjob", "sweepchunk", "buffers"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		entries = append(entries, e)
	}
	var seq bytes.Buffer
	if err := runEntries(&seq, Options{Quick: true}, 1, entries); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		var par bytes.Buffer
		if err := runEntries(&par, Options{Quick: true, Workers: workers}, workers, entries); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.String() != seq.String() {
			t.Errorf("workers=%d: parallel report differs from sequential", workers)
		}
	}
}

// TestRunParallelSerialExperiments checks that Serial-marked entries still
// appear in their presentation slot when the driver runs concurrently.
func TestRunParallelSerialExperiments(t *testing.T) {
	mk := func(name string, serial bool) Experiment {
		return Experiment{Name: name, Title: name, Serial: serial,
			Run: func(w io.Writer, o Options) error {
				fmt.Fprintf(w, "body-%s\n", name)
				return nil
			}}
	}
	entries := []Experiment{mk("a", false), mk("b", true), mk("c", false)}
	var buf bytes.Buffer
	if err := runEntries(&buf, Options{}, 3, entries); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, ib, ic := strings.Index(out, "body-a"), strings.Index(out, "body-b"), strings.Index(out, "body-c")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("presentation order broken (a=%d b=%d c=%d):\n%s", ia, ib, ic, out)
	}
}

// TestRunParallelError requires the earliest failing experiment's error,
// with the reports before it flushed — at any worker count.
func TestRunParallelError(t *testing.T) {
	ok := Experiment{Name: "ok", Title: "ok", Run: func(w io.Writer, o Options) error {
		fmt.Fprintln(w, "fine")
		return nil
	}}
	boom := Experiment{Name: "boom", Title: "boom", Run: func(w io.Writer, o Options) error {
		return errors.New("exploded")
	}}
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		err := runEntries(&buf, Options{}, workers, []Experiment{ok, boom, ok})
		if err == nil || !strings.Contains(err.Error(), "boom: exploded") {
			t.Errorf("workers=%d: err = %v", workers, err)
		}
		if !strings.Contains(buf.String(), "fine") {
			t.Errorf("workers=%d: pre-failure report not flushed", workers)
		}
	}
}
