package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/sim"
	"streamcalc/internal/stats"
	"streamcalc/internal/units"
)

// CrossVal addresses the paper's future-work call to "validate the models
// over a wider range of empirical experiments": it draws a family of random
// stable pipelines, bounds each analytically (per-node packetized curves,
// concatenated, plus aggregation delays), simulates each, and reports the
// tightness of the bounds — the fraction of the analytic bound that the
// simulation actually reaches. A violation count of zero is the soundness
// check; the tightness distribution quantifies how conservative the bounds
// are across the family.
func CrossVal(w io.Writer, o Options) error {
	trials := 80
	if o.Quick {
		trials = 20
	}

	var delayTight, backlogTight stats.Summary
	violations := 0
	var rows [][]float64

	for trial := 0; trial < trials; trial++ {
		// Each trial owns an independent RNG stream derived from (seed,
		// trial), so the generated family — and therefore the soundness
		// check below — is invariant to how many draws any one trial makes.
		// The check must hold for every draw sequence, not one frozen one.
		rng := rand.New(rand.NewSource(int64(o.seed()*0x9e3779b97f4a7c15 + uint64(trial))))
		n := 1 + rng.Intn(3)
		arrRate := units.Rate(100 + rng.Float64()*400)
		packet := units.Bytes(float64(int(8) << rng.Intn(4)))
		nodes := make([]core.Node, n)
		for i := range nodes {
			job := packet.Mul(float64(int(1) << rng.Intn(3)))
			nodes[i] = core.Node{
				Name:      fmt.Sprintf("n%d", i),
				Rate:      arrRate.Mul(1.15 + rng.Float64()*2),
				Latency:   time.Duration(rng.Intn(50)) * time.Millisecond,
				JobIn:     job,
				JobOut:    job,
				MaxPacket: job,
			}
		}
		p := core.Pipeline{
			Name: "crossval",
			Arrival: core.Arrival{
				Rate:      arrRate,
				Burst:     units.Bytes(rng.Float64() * 200),
				MaxPacket: packet,
			},
			Nodes: nodes,
		}
		a, err := core.Analyze(p)
		if err != nil {
			return err
		}
		// Chain bound: the concatenated per-node packetized curves with the
		// aggregation delays inserted as pure-delay elements (the same curve
		// that backs admission promises). The deviations against α' are the
		// whole bound — no discretization fudge terms: α' already covers the
		// source's packet staircase (α'(t) = α(t) + l_max ≥ b + P·⌈rt/P⌉),
		// and the aggregation hold-back is in the chain curve itself.
		chain := a.ConcatenatedBeta()
		delayBound := curve.HDev(a.AlphaPrime, chain)
		backlogBound := curve.VDev(a.AlphaPrime, chain)

		sp := sim.New(sim.SourceConfig{
			Rate:       p.Arrival.Rate,
			PacketSize: packet,
			Burst:      p.Arrival.Burst,
			TotalInput: units.Bytes(float64(arrRate) * 2),
		}, o.seed()+uint64(trial))
		for _, nd := range nodes {
			cfg := sim.StageFromRate(nd.Name, nd.Rate, nd.Rate.Mul(1+rng.Float64()*0.3), nd.JobIn, nd.JobOut)
			cfg.Startup = nd.Latency
			sp.Add(cfg)
		}
		res, err := sp.Run()
		if err != nil {
			return err
		}
		dT := res.DelayMax.Seconds() / delayBound
		bT := float64(res.MaxBacklog) / backlogBound
		delayTight.Add(dT)
		backlogTight.Add(bT)
		// Soundness: bound ≥ simulation. Both sides are exact curve algebra
		// and event arithmetic in float64, so the only slack a sound model
		// needs is rounding noise — a relative 1e-9 (≈ few ulps over the
		// operation chains involved), NOT a packet or byte of headroom.
		if dT > 1+1e-9 || bT > 1+1e-9 {
			violations++
			fmt.Fprintf(w, "  VIOLATION trial %d: delay sim/bound %.6f, backlog sim/bound %.6f\n", trial, dT, bT)
		}
		rows = append(rows, []float64{float64(trial), delayBound, res.DelayMax.Seconds(), backlogBound, float64(res.MaxBacklog)})
	}

	fmt.Fprintf(w, "  random stable pipelines: %d (1-3 stages each)\n", trials)
	fmt.Fprintf(w, "  bound violations: %d\n", violations)
	fmt.Fprintf(w, "  delay tightness   sim/bound: mean %.2f, min %.2f, max %.2f\n",
		delayTight.Mean(), delayTight.Min(), delayTight.Max())
	fmt.Fprintf(w, "  backlog tightness sim/bound: mean %.2f, min %.2f, max %.2f\n",
		backlogTight.Mean(), backlogTight.Min(), backlogTight.Max())
	fmt.Fprintf(w, "  (1.0 = the simulation reaches the bound exactly; bounds are sound when\n")
	fmt.Fprintf(w, "   violations = 0 and useful when tightness stays near 1)\n")
	if err := writeCSV(o, "crossval.csv",
		[]string{"trial", "delay_bound_s", "sim_delay_s", "backlog_bound_B", "sim_backlog_B"}, rows); err != nil {
		return err
	}
	// A violated bound is a model-soundness failure, not a statistic: fail
	// the experiment so CI and the experiment harness cannot miss it.
	if violations > 0 {
		return fmt.Errorf("crossval: %d of %d analytic bounds violated by simulation", violations, trials)
	}
	return nil
}
