package des

import "math"

// RNG is a xoshiro256+ pseudo-random generator seeded via splitmix64,
// implemented from scratch so simulation streams are reproducible across Go
// releases and platforms. Distinct streams for distinct model components are
// obtained with NewRNG(seed, streamID).
type RNG struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator for the given seed and stream identifier.
// Different stream IDs under the same seed yield statistically independent
// sequences.
func NewRNG(seed, stream uint64) *RNG {
	x := seed ^ (stream * 0x9e3779b97f4a7c15)
	r := &RNG{}
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// Avoid the all-zero state (splitmix64 makes this astronomically
	// unlikely, but the generator would be stuck there).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256+).
func (r *RNG) Uint64() uint64 {
	result := r.s[0] + r.s[3]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi). For hi <= lo it returns lo
// (degenerate interval).
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean
// (inverse-transform sampling). Mean must be positive.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Intn returns a uniform integer in [0, n). It panics for n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
