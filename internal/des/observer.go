package des

// Observer receives kernel-level probes from a Simulator. All callbacks run
// synchronously on the simulation goroutine; implementations must not call
// back into the Simulator.
//
// The hooks are designed so an unattached simulator pays only a nil
// interface check per event (see BenchmarkEventLoop vs
// BenchmarkEventLoopObserved): the kernel never allocates or computes
// anything on the observer's behalf.
type Observer interface {
	// OnSchedule fires after an event is pushed onto the calendar: now is
	// the current clock, at the event's activation time, pending the
	// calendar size including the new event.
	OnSchedule(now, at float64, pending int)
	// OnExecute fires immediately before an event's callback runs, after
	// the clock advanced to t; pending is the calendar size without the
	// executing event.
	OnExecute(t float64, pending int)
	// OnAdvance fires when executing an event moves the clock strictly
	// forward, before OnExecute.
	OnAdvance(from, to float64)
}

// SetObserver attaches o to the simulator (nil detaches). Attaching mid-run
// is allowed; hooks fire from the next operation on.
func (s *Simulator) SetObserver(o Observer) { s.obs = o }

// Observer returns the attached observer, or nil.
func (s *Simulator) Observer() Observer { return s.obs }

// FuncObserver adapts three optional funcs into an Observer; nil fields are
// skipped. Handy for tests and one-off probes.
type FuncObserver struct {
	Schedule func(now, at float64, pending int)
	Execute  func(t float64, pending int)
	Advance  func(from, to float64)
}

// OnSchedule implements Observer.
func (f *FuncObserver) OnSchedule(now, at float64, pending int) {
	if f.Schedule != nil {
		f.Schedule(now, at, pending)
	}
}

// OnExecute implements Observer.
func (f *FuncObserver) OnExecute(t float64, pending int) {
	if f.Execute != nil {
		f.Execute(t, pending)
	}
}

// OnAdvance implements Observer.
func (f *FuncObserver) OnAdvance(from, to float64) {
	if f.Advance != nil {
		f.Advance(from, to)
	}
}
