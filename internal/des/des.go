// Package des provides a deterministic discrete-event simulation kernel: an
// event calendar ordered by (time, insertion sequence) and a simulation
// clock. It plays the role SimPy plays for the paper's validation
// experiments, with deterministic tie-breaking so runs are exactly
// reproducible.
package des

import (
	"math"
)

// Event is a scheduled callback.
type event struct {
	t   float64 // absolute simulation time, seconds
	seq uint64  // tie-breaker: insertion order
	fn  func()
}

// Simulator owns the clock and the event calendar. The zero value is ready
// to use (clock at 0, empty calendar).
type Simulator struct {
	now    float64
	seq    uint64
	events calendar
	count  uint64   // events executed
	obs    Observer // nil when detached (the common case)
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.count }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// are clamped to zero (fn runs at the current time, after already-scheduled
// same-time events).
func (s *Simulator) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute time t (clamped to the current time if in
// the past). Non-finite times are clamped to the current time as well: a NaN
// in the calendar would make every ordering comparison false and silently
// corrupt the heap, and a +Inf event would drag the clock to infinity and
// forbid all further scheduling, so both degenerate to "run now" like
// Schedule's NaN/negative-delay clamp.
func (s *Simulator) ScheduleAt(t float64, fn func()) {
	if t < s.now || math.IsNaN(t) || math.IsInf(t, 0) {
		t = s.now
	}
	s.seq++
	s.events.push(event{t: t, seq: s.seq, fn: fn})
	if s.obs != nil {
		s.obs.OnSchedule(s.now, t, len(s.events))
	}
}

// Step executes the next event, advancing the clock. It reports false when
// the calendar is empty.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.events.pop()
	if s.obs != nil && e.t > s.now {
		s.obs.OnAdvance(s.now, e.t)
	}
	s.now = e.t
	s.count++
	if s.obs != nil {
		s.obs.OnExecute(e.t, len(s.events))
	}
	e.fn()
	return true
}

// Run executes events until the calendar is empty or the clock would pass
// until (exclusive). Events exactly at until still run. It returns the
// number of events executed during this call.
func (s *Simulator) Run(until float64) uint64 {
	start := s.count
	for len(s.events) > 0 && s.events[0].t <= until {
		s.Step()
	}
	return s.count - start
}

// RunAll executes events until the calendar is empty, with a safety cap on
// the number of events (to catch accidental infinite self-scheduling).
// It returns the number executed and whether the cap was hit.
func (s *Simulator) RunAll(maxEvents uint64) (executed uint64, capped bool) {
	start := s.count
	for len(s.events) > 0 {
		if s.count-start >= maxEvents {
			return s.count - start, true
		}
		s.Step()
	}
	return s.count - start, false
}
