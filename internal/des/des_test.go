package des

import (
	"math"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	var s Simulator
	var order []int
	s.Schedule(2, func() { order = append(order, 2) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(3, func() { order = append(order, 3) })
	s.RunAll(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Processed() != 3 {
		t.Errorf("processed = %d", s.Processed())
	}
}

func TestTieBreakInsertionOrder(t *testing.T) {
	var s Simulator
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.RunAll(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of insertion order: %v", order)
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	var s Simulator
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(1, func() { times = append(times, s.Now()) })
	})
	s.RunAll(100)
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	var s Simulator
	n := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(float64(i), func() { n++ })
	}
	ran := s.Run(3)
	if ran != 3 || n != 3 {
		t.Errorf("ran %d, n %d", ran, n)
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run(100)
	if n != 5 {
		t.Errorf("n = %d", n)
	}
}

func TestRunAllCap(t *testing.T) {
	var s Simulator
	var reschedule func()
	reschedule = func() { s.Schedule(1, reschedule) }
	s.Schedule(1, reschedule)
	executed, capped := s.RunAll(50)
	if !capped || executed != 50 {
		t.Errorf("executed %d capped %v", executed, capped)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var s Simulator
	s.Schedule(5, func() {
		s.Schedule(-3, func() {
			if s.Now() != 5 {
				t.Errorf("negative delay ran at %v", s.Now())
			}
		})
	})
	s.RunAll(10)
}

func TestScheduleAtPastClamped(t *testing.T) {
	var s Simulator
	s.Schedule(5, func() {
		s.ScheduleAt(1, func() {
			if s.Now() != 5 {
				t.Errorf("past event ran at %v", s.Now())
			}
		})
	})
	s.RunAll(10)
}

func TestStepEmpty(t *testing.T) {
	var s Simulator
	if s.Step() {
		t.Error("Step on empty calendar must return false")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 0)
	b := NewRNG(42, 0)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed/stream must agree")
		}
	}
	c := NewRNG(42, 1)
	same := 0
	d := NewRNG(42, 0)
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different streams should diverge, %d collisions", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7, 3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(11, 0)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Uniform(2, 6)
		if v < 2 || v >= 6 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.02 {
		t.Errorf("uniform mean = %v, want ~4", mean)
	}
	if got := r.Uniform(5, 5); got != 5 {
		t.Errorf("degenerate uniform = %v", got)
	}
}

func TestRNGExpMoments(t *testing.T) {
	r := NewRNG(13, 0)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("exp mean = %v, want ~2.5", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(17, 0)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d count %d far from uniform", i, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}
