package des

import (
	"testing"
)

func TestObserverHooks(t *testing.T) {
	var s Simulator
	var schedules, executes, advances int
	var lastFrom, lastTo float64
	s.SetObserver(&FuncObserver{
		Schedule: func(now, at float64, pending int) {
			schedules++
			if at < now {
				t.Errorf("OnSchedule at %g before now %g", at, now)
			}
			if pending < 1 {
				t.Errorf("OnSchedule pending = %d", pending)
			}
		},
		Execute: func(tm float64, pending int) { executes++ },
		Advance: func(from, to float64) {
			advances++
			lastFrom, lastTo = from, to
			if to <= from {
				t.Errorf("OnAdvance %g -> %g not forward", from, to)
			}
		},
	})

	s.Schedule(1, func() {})
	s.Schedule(1, func() {}) // same time: no second advance
	s.Schedule(2, func() { s.Schedule(0, func() {}) })
	if n, capped := s.RunAll(100); n != 4 || capped {
		t.Fatalf("RunAll = %d, capped %v", n, capped)
	}

	if schedules != 4 {
		t.Errorf("schedules = %d, want 4", schedules)
	}
	if executes != 4 {
		t.Errorf("executes = %d, want 4", executes)
	}
	// Clock advances: 0->1 and 1->2 only (same-time events don't advance).
	if advances != 2 || lastFrom != 1 || lastTo != 2 {
		t.Errorf("advances = %d (last %g->%g), want 2 (1->2)", advances, lastFrom, lastTo)
	}
}

func TestObserverDetach(t *testing.T) {
	var s Simulator
	fired := 0
	o := &FuncObserver{Execute: func(float64, int) { fired++ }}
	s.SetObserver(o)
	if s.Observer() != o {
		t.Error("Observer() did not return the attached observer")
	}
	s.Schedule(0, func() {})
	s.Step()
	s.SetObserver(nil)
	s.Schedule(0, func() {})
	s.Step()
	if fired != 1 {
		t.Errorf("observer fired %d times, want 1 (detached for the second event)", fired)
	}
}

// benchLoop schedules a self-rescheduling chain of n events and drains it.
func benchLoop(b *testing.B, s *Simulator, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		remaining := n
		var tick func()
		tick = func() {
			remaining--
			if remaining > 0 {
				s.Schedule(1e-6, tick)
			}
		}
		s.Schedule(0, tick)
		s.RunAll(uint64(n) + 1)
	}
}

// BenchmarkEventLoop measures the bare kernel: schedule + heap + dispatch,
// no observer attached. The observed variant quantifies the per-event cost
// of an attached observer; the delta between this and the pre-hook kernel
// is just a nil check (see BENCH_obs.json in CI).
func BenchmarkEventLoop(b *testing.B) {
	var s Simulator
	benchLoop(b, &s, 1000)
}

func BenchmarkEventLoopObserved(b *testing.B) {
	var s Simulator
	var events uint64
	s.SetObserver(&FuncObserver{
		Execute: func(float64, int) { events++ },
	})
	benchLoop(b, &s, 1000)
}
