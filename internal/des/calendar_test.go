package des

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// refHeap is the original container/heap-based calendar, kept as the
// differential reference for the specialized 4-ary heap.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestCalendarDifferential drives the 4-ary calendar and the container/heap
// reference through the same random interleaving of pushes and pops and
// asserts identical pop sequences, including (time, seq) tie-breaks.
func TestCalendarDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var cal calendar
	var ref refHeap
	var seq uint64
	for step := 0; step < 20000; step++ {
		if len(cal) != len(ref) {
			t.Fatalf("step %d: size mismatch %d vs %d", step, len(cal), len(ref))
		}
		if len(ref) == 0 || rng.Intn(3) != 0 {
			seq++
			// Coarse time grid so duplicate times (tie-breaks) are frequent.
			e := event{t: float64(rng.Intn(50)), seq: seq}
			cal.push(e)
			heap.Push(&ref, e)
		} else {
			got := cal.pop()
			want := heap.Pop(&ref).(event)
			if got.t != want.t || got.seq != want.seq {
				t.Fatalf("step %d: pop (t=%g seq=%d), reference (t=%g seq=%d)",
					step, got.t, got.seq, want.t, want.seq)
			}
		}
	}
	for len(ref) > 0 {
		got := cal.pop()
		want := heap.Pop(&ref).(event)
		if got.t != want.t || got.seq != want.seq {
			t.Fatalf("drain: pop (t=%g seq=%d), reference (t=%g seq=%d)",
				got.t, got.seq, want.t, want.seq)
		}
	}
}

// TestScheduleAtNonFinite is the regression test for the NaN hole: Schedule
// clamped NaN delays but ScheduleAt passed NaN straight into the calendar,
// where every ordering comparison is false and the heap silently corrupts.
// Non-finite times must now clamp to the current time, preserving the order
// of every finite event around them.
func TestScheduleAtNonFinite(t *testing.T) {
	var s Simulator
	var order []int
	s.Schedule(1, func() { order = append(order, 1) })
	s.ScheduleAt(math.NaN(), func() { order = append(order, -1) }) // runs now (t=0)
	s.Schedule(2, func() { order = append(order, 2) })
	s.ScheduleAt(math.Inf(1), func() { order = append(order, -2) }) // clamped to now
	s.ScheduleAt(math.Inf(-1), func() { order = append(order, -3) })
	s.Schedule(3, func() { order = append(order, 3) })
	if n, capped := s.RunAll(100); n != 6 || capped {
		t.Fatalf("RunAll = %d, capped %v", n, capped)
	}
	want := []int{-1, -2, -3, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3 (no Inf contamination)", s.Now())
	}
	// The clock must still accept ordinary scheduling afterwards.
	s.Schedule(1, func() { order = append(order, 4) })
	s.RunAll(10)
	if s.Now() != 4 {
		t.Errorf("clock after follow-up = %v, want 4", s.Now())
	}
}

// BenchmarkScheduleStep isolates the ScheduleAt+Step steady state (calendar
// capacity warm, one event in, one event out). The specialized calendar must
// run this at 0 allocs/op — the container/heap version paid two interface
// boxings per event.
func BenchmarkScheduleStep(b *testing.B) {
	var s Simulator
	fn := func() {}
	s.ScheduleAt(0, fn)
	s.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleAt(s.Now()+1e-6, fn)
		s.Step()
	}
}
