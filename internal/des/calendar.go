package des

// calendar is the event queue: a 4-ary min-heap over []event ordered by
// (time, insertion sequence), specialized to avoid the interface boxing of
// container/heap — Push/Pop on the standard library heap take and return
// `any`, which allocates once per direction for a struct-sized element.
// Here push appends into the slice's spare capacity and pop reuses the
// vacated tail slot, so the steady state (schedule one, execute one) runs
// with zero allocations (see BenchmarkScheduleStep).
//
// A 4-ary layout halves the tree depth of the binary heap: sift-down does
// more comparisons per level but far fewer cache-missing level hops, which
// wins on the pointer-free 24-byte event records the simulator moves. The
// ordering is differential-tested against a container/heap reference in
// calendar_test.go.
type calendar []event

// before is the strict ordering: earlier time first, insertion order
// breaking ties. Callers must never feed NaN times (ScheduleAt clamps).
func before(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// push inserts e, restoring the heap invariant by sifting up.
func (c *calendar) push(e event) {
	h := append(*c, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*c = h
}

// pop removes and returns the minimum event. Callers must check len > 0.
func (c *calendar) pop() event {
	h := *c
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the closure reference so the GC can reclaim it
	h = h[:n]
	*c = h

	// Sift down: swap with the smallest of up to four children.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if before(h[j], h[min]) {
				min = j
			}
		}
		if !before(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return root
}
