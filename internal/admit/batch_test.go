package admit

import (
	"fmt"
	"testing"

	"streamcalc/internal/units"
)

func TestAdmitBatchAllFit(t *testing.T) {
	c := testPlatform(t)
	flows := make([]Flow, 8)
	for i := range flows {
		flows[i] = tenant(fmt.Sprintf("b%d", i), units.MiBPerSec)
	}
	vs := c.AdmitBatch(flows)
	if len(vs) != len(flows) {
		t.Fatalf("got %d verdicts for %d flows", len(vs), len(flows))
	}
	for i, v := range vs {
		if !v.Admitted {
			t.Fatalf("flow %d rejected: %s", i, v.Reason)
		}
		if v.FlowID != flows[i].ID {
			t.Errorf("verdict %d carries id %q, want %q", i, v.FlowID, flows[i].ID)
		}
	}
	if n := c.FlowCount(); n != len(flows) {
		t.Fatalf("registry holds %d flows, want %d", n, len(flows))
	}
	// One transaction bumps the epoch once, not once per flow.
	if e := c.Epoch(); e != 1 {
		t.Errorf("epoch %d after one batch, want 1", e)
	}
}

// A batch that overcommits the platform admits a prefix-consistent subset
// whose members all still pass an analytic recheck (the transactional
// guarantee: only explicitly verified states are ever committed).
func TestAdmitBatchPartialRejection(t *testing.T) {
	c := testPlatform(t)
	flows := make([]Flow, 16)
	for i := range flows {
		// 16 × 8 MiB/s = 128 MiB/s offered against the 50 MiB/s encrypt
		// stage: only a handful can fit.
		flows[i] = tenant(fmt.Sprintf("p%d", i), 8*units.MiBPerSec)
	}
	vs := c.AdmitBatch(flows)
	admitted, rejected := 0, 0
	for _, v := range vs {
		if v.Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	if admitted == 0 {
		t.Fatal("expected some admissions")
	}
	if rejected == 0 {
		t.Fatal("expected some rejections (batch overcommits encrypt)")
	}
	if n := c.FlowCount(); n != admitted {
		t.Fatalf("registry holds %d flows, %d verdicts say admitted", n, admitted)
	}
	for _, v := range vs {
		if !v.Admitted {
			continue
		}
		rv, err := c.Recheck(v.FlowID)
		if err != nil {
			t.Fatalf("recheck %s: %v", v.FlowID, err)
		}
		if !rv.Admitted {
			t.Fatalf("committed flow %s fails recheck: %s", v.FlowID, rv.Reason)
		}
	}
}

func TestAdmitBatchDuplicateIDs(t *testing.T) {
	c := testPlatform(t)
	if !c.Admit(tenant("dup", units.MiBPerSec)).Admitted {
		t.Fatal("seed admission failed")
	}
	vs := c.AdmitBatch([]Flow{
		tenant("dup", units.MiBPerSec),   // already registered
		tenant("fresh", units.MiBPerSec), // fine
		tenant("twice", units.MiBPerSec), // first of an intra-batch pair
		tenant("twice", units.MiBPerSec), // intra-batch duplicate
	})
	if vs[0].Admitted {
		t.Error("registered duplicate must reject")
	}
	if !vs[1].Admitted {
		t.Errorf("fresh flow rejected: %s", vs[1].Reason)
	}
	if !vs[2].Admitted {
		t.Errorf("first of intra-batch pair rejected: %s", vs[2].Reason)
	}
	if vs[3].Admitted {
		t.Error("intra-batch duplicate must reject")
	}
	if n := c.FlowCount(); n != 3 { // dup (pre-seeded) + fresh + twice
		t.Errorf("registry holds %d flows, want 3", n)
	}
}

// Identical batches against identically built controllers must return
// identical verdict sequences — the batch path shares the deterministic
// decision core.
func TestAdmitBatchDeterministic(t *testing.T) {
	mk := func() []Verdict {
		c := testPlatform(t)
		flows := make([]Flow, 24)
		for i := range flows {
			flows[i] = tenant(fmt.Sprintf("d%d", i), 6*units.MiBPerSec)
		}
		return c.AdmitBatch(flows)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Admitted != b[i].Admitted || a[i].Reason != b[i].Reason {
			t.Fatalf("verdict %d differs between identical runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// Flows sharing one equivalence class collapse to a single analyzed class
// regardless of member count.
func TestAdmitBatchClassCollapse(t *testing.T) {
	c := testPlatform(t)
	flows := make([]Flow, 32)
	for i := range flows {
		flows[i] = tenant(fmt.Sprintf("c%d", i), units.MiBPerSec)
	}
	for _, v := range c.AdmitBatch(flows) {
		if !v.Admitted {
			t.Fatalf("rejected: %s", v.Reason)
		}
	}
	if n := c.ClassCount(); n != 1 {
		t.Errorf("32 identical flows occupy %d classes, want 1", n)
	}
	if n := c.FlowCount(); n != 32 {
		t.Errorf("registry holds %d flows, want 32", n)
	}
	// Releasing one member keeps the class; releasing all drops it.
	for i := 0; i < 31; i++ {
		if !c.Release(fmt.Sprintf("c%d", i)) {
			t.Fatalf("release c%d failed", i)
		}
	}
	if n := c.ClassCount(); n != 1 {
		t.Errorf("class count %d with one member left, want 1", n)
	}
	if !c.Release("c31") {
		t.Fatal("release c31 failed")
	}
	if n := c.ClassCount(); n != 0 {
		t.Errorf("class count %d after releasing all members, want 0", n)
	}
}
