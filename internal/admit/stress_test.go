package admit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// TestConcurrentAdmitRelease hammers one controller with 64 goroutines
// admitting, querying, and releasing flows concurrently (run under -race).
// Afterwards every reservation must be gone and the residual state must
// equal the pristine platform.
func TestConcurrentAdmitRelease(t *testing.T) {
	const (
		workers = 64
		rounds  = 25
	)
	nodes := make([]core.Node, 8)
	names := make([]string, 8)
	for i := range nodes {
		names[i] = fmt.Sprintf("n%d", i)
		nodes[i] = core.Node{
			Name: names[i], Rate: 400 * units.MiBPerSec, Latency: 100 * time.Microsecond,
			JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB,
		}
	}
	c, err := New("stress", nodes)
	if err != nil {
		t.Fatal(err)
	}
	pristine := make(map[string]Residual)
	for _, n := range names {
		r, err := c.ResidualService(n)
		if err != nil {
			t.Fatal(err)
		}
		pristine[n] = r
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Each worker walks a different subchain of the platform.
				from := (g + i) % (len(names) - 1)
				to := from + 1 + (g+i)%(len(names)-from-1) + 1
				f := Flow{
					ID:      fmt.Sprintf("g%d-%d", g, i),
					Arrival: core.Arrival{Rate: units.Rate(1+g%5) * units.MiBPerSec, Burst: 16 * units.KiB, MaxPacket: 4 * units.KiB},
					Path:    names[from:to],
					SLO:     SLO{MaxDelay: time.Second, MaxBacklog: 64 * units.MiB},
				}
				v := c.Admit(f)
				// Interleave queries with mutations.
				if _, err := c.ResidualService(names[(g+i)%len(names)]); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					c.Flows()
				}
				if v.Admitted {
					if !c.Release(f.ID) {
						t.Errorf("admitted flow %s vanished", f.ID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := len(c.Flows()); n != 0 {
		t.Fatalf("%d flows leaked after release", n)
	}
	for _, n := range names {
		r, err := c.ResidualService(n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cross != pristine[n].Cross {
			t.Errorf("node %s: leaked cross traffic %+v", n, r.Cross)
		}
		if !r.Curve.Equal(pristine[n].Curve) {
			t.Errorf("node %s: residual differs from pristine", n)
		}
	}
}

// TestConcurrentCapacityNeverOversubscribed runs concurrent admits without
// releases and checks the committed reservations never exceed any node's
// service rate (the controller must enforce this regardless of
// interleaving).
func TestConcurrentCapacityNeverOversubscribed(t *testing.T) {
	nodes := []core.Node{
		{Name: "shared", Rate: 100 * units.MiBPerSec, Latency: 100 * time.Microsecond,
			JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB},
	}
	c, err := New("cap", nodes)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := Flow{
				ID:      fmt.Sprintf("w%d", g),
				Arrival: core.Arrival{Rate: 9 * units.MiBPerSec, Burst: 16 * units.KiB, MaxPacket: 4 * units.KiB},
				Path:    []string{"shared"},
				SLO:     SLO{MinThroughput: 9 * units.MiBPerSec},
			}
			c.Admit(f)
		}(g)
	}
	wg.Wait()

	r, err := c.ResidualService("shared")
	if err != nil {
		t.Fatal(err)
	}
	admitted := len(c.Flows())
	if admitted == 0 {
		t.Fatal("no flow admitted at all")
	}
	if float64(r.Cross.Rate) >= float64(100*units.MiBPerSec) {
		t.Fatalf("committed %d flows oversubscribe the node: cross %v", admitted, r.Cross.Rate)
	}
	// 9 MiB/s tenants on a 100 MiB/s node: at most 11 can hold their
	// min_throughput SLO.
	if admitted > 11 {
		t.Errorf("admitted %d tenants, capacity allows at most 11", admitted)
	}
}
