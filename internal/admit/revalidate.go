package admit

import (
	"context"
	"fmt"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/obs"
	"streamcalc/internal/pool"
	"streamcalc/internal/units"
)

// RevalidateOptions tunes a batch revalidation pass.
type RevalidateOptions struct {
	// Replay configures each flow's simulation (input volume, seed,
	// throughput slack), exactly as in -validate trace replay.
	Replay ReplayOptions
	// Workers bounds the concurrent per-flow re-checks; < 1 means
	// GOMAXPROCS. The report is identical at every worker count.
	Workers int
	// Context cancels outstanding re-checks early (nil means Background).
	Context context.Context
	// Metrics, when non-nil, receives the revalidation pool telemetry
	// (pool label "revalidate").
	Metrics *obs.Registry
}

// FlowRevalidation is one admitted flow's re-check: the analytic bounds
// recomputed under the platform's current reservations, the simulated
// replay measurements, and any violations of bounds or SLO.
type FlowRevalidation struct {
	FlowID string
	// Delay/Backlog/Throughput are the current analytic bounds for the flow
	// given today's co-resident reservations (not the possibly looser
	// bounds promised at admission time).
	Delay      time.Duration
	Backlog    units.Bytes
	Throughput units.Rate
	// Sim measurements from the residual-service replay.
	SimDelayMax   time.Duration
	SimMaxBacklog units.Bytes
	SimThroughput units.Rate
	// Violations lists broken bounds/SLO dimensions (empty when sound).
	Violations []string
}

// RevalidateReport summarizes a batch revalidation.
type RevalidateReport struct {
	// Epoch is the platform epoch the snapshot was taken at.
	Epoch uint64
	// Flows holds one re-check per admitted flow, sorted by flow ID.
	Flows []FlowRevalidation
	// Violations totals the violation entries across all flows.
	Violations int
}

// RevalidateAll re-checks every admitted flow against the platform's
// current state: each flow's end-to-end bounds are recomputed with its
// co-residents' reservations as cross traffic (the same victim analysis an
// admission probe runs), its replay simulation is re-run at the current
// residual service, and the measurements are asserted against both the
// recomputed bounds and the flow's SLO. The per-flow re-checks — the
// expensive part, one full DES replay each — fan out across a bounded
// worker pool; results are assembled in flow-ID order, so the report is
// deterministic for every worker count.
//
// The snapshot is taken once up front: admissions or releases that commit
// while the batch runs are not reflected (compare Report.Epoch with
// Controller.Epoch — the coarse global commit counter, which bumps on every
// commit or release regardless of which nodes changed — to detect that; the
// finer per-node epochs only drive verdict-cache invalidation).
func (c *Controller) RevalidateAll(opt RevalidateOptions) (*RevalidateReport, error) {
	c.mu.RLock()
	epoch := c.epoch.Load()
	ids := c.sortedFlowIDs()
	flows := make([]Flow, len(ids))
	for i, id := range ids {
		flows[i] = c.flows[id].flowFor(id)
	}
	c.mu.RUnlock()

	rep := &RevalidateReport{Epoch: epoch, Flows: make([]FlowRevalidation, len(flows))}
	pm := pool.NewMetrics(opt.Metrics, "revalidate")
	err := pool.ForEach(opt.Context, opt.Workers, len(flows), pm, func(i int) error {
		fr, err := c.revalidateFlow(flows[i], opt.Replay)
		if err != nil {
			return fmt.Errorf("admit: revalidate %q: %w", flows[i].ID, err)
		}
		rep.Flows[i] = fr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rep.Flows {
		rep.Violations += len(rep.Flows[i].Violations)
	}
	return rep, nil
}

// revalidateFlow re-checks one admitted flow: fresh analytic bounds under
// the current co-resident cross traffic, then a residual-service replay
// checked against those bounds and the SLO.
func (c *Controller) revalidateFlow(f Flow, opt ReplayOptions) (FlowRevalidation, error) {
	fr := FlowRevalidation{FlowID: f.ID}
	if opt.Total <= 0 {
		opt.Total = 8 * units.MiB
	}
	if opt.ThroughputSlack <= 0 {
		opt.ThroughputSlack = 0.05
	}

	a, err := core.AnalyzeMemo(c.sharedPipelineSnapshot(f), c.memo)
	if err != nil {
		return fr, err
	}
	b := boundsOf(a)
	fr.Delay, fr.Backlog, fr.Throughput = b.delay, b.backlog, b.throughput

	sp, err := c.replaySim(f, opt)
	if err != nil {
		return fr, err
	}
	res, err := sp.Run()
	if err != nil {
		return fr, err
	}
	fr.SimDelayMax = res.DelayMax
	fr.SimMaxBacklog = res.MaxBacklog
	fr.SimThroughput = res.Throughput

	promised := Verdict{Delay: b.delay, Backlog: b.backlog, Throughput: b.throughput}
	fr.Violations = boundViolations(promised, f.SLO, res, opt.ThroughputSlack)
	return fr, nil
}

// sharedPipelineSnapshot is the lock-taking sibling of pipelineFor for
// concurrent readers: it builds f's pipeline with the co-resident cross
// traffic (excluding f's own reservation) under the read locks each shard
// needs, instead of assuming the registry write lock.
func (c *Controller) sharedPipelineSnapshot(f Flow) core.Pipeline {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var exclude verdictKey
	excludeN := 0
	if cs, ok := c.flows[f.ID]; ok {
		exclude, excludeN = cs.key, 1
	}
	p := core.Pipeline{Name: c.name + "/shared", Arrival: f.Arrival, Rung: c.rungFor(f)}
	for _, name := range f.Path {
		sh := c.shards[name]
		sh.mu.RLock()
		n := sh.node
		agg := sh.aggregate(exclude, excludeN)
		sh.mu.RUnlock()
		n.CrossRate += agg.Rate
		n.CrossBurst += agg.Burst
		p.Nodes = append(p.Nodes, n)
	}
	return p
}
