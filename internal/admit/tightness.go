package admit

import (
	"fmt"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// Tightness compares the analytic bounds promised to one admitted flow
// against the behavior a deterministic replay of the flow actually observes.
// The replay plays the flow's offered envelope into the residual service its
// co-resident reservations leave (the worst case the admission analysis
// assumed), so the analytic bound must dominate every observation: a
// tightness ratio below 1 means the network-calculus promise was violated.
type Tightness struct {
	FlowID string
	// Rung is the analysis tightness rung the bounds were computed at (the
	// rung the flow was admitted with).
	Rung string
	// Epoch is the global platform epoch (the coarse per-commit counter, not
	// a per-node epoch) the comparison was taken at. The analytic bounds are
	// recomputed at this epoch (under the co-resident reservations of the
	// moment), not copied from the possibly older admission verdict — both
	// sides of the comparison must see the same platform state.
	Epoch uint64

	// Delay: analytic HDev bound vs. the replayed sojourn distribution.
	DelayBound  time.Duration
	SimDelayP50 time.Duration
	SimDelayP99 time.Duration
	SimDelayMax time.Duration
	// DelayTightness = DelayBound / SimDelayMax (≥ 1 when the bound is
	// sound; close to 1 means the bound is tight).
	DelayTightness float64

	// Backlog: analytic VDev bound vs. the replayed peak in-flight bytes.
	BacklogBound     units.Bytes
	SimBacklogMax    units.Bytes
	BacklogTightness float64

	// Capped reports the replay hit its event cap and the observations are
	// partial (ratios are still published; treat them as lower-coverage).
	Capped bool
	// Events is the number of simulator events the replay executed.
	Events uint64
}

// Tightness replays admitted flow id through the discrete-event simulator at
// its residual service and reports the analytic bounds next to the observed
// p50/p99/max sojourn and peak backlog. Deterministic per ReplayOptions seed.
func (c *Controller) Tightness(id string, opt ReplayOptions) (Tightness, error) {
	if opt.Total <= 0 {
		opt.Total = 8 * units.MiB
	}
	c.mu.RLock()
	fs, ok := c.flows[id]
	if !ok {
		c.mu.RUnlock()
		return Tightness{}, fmt.Errorf("admit: tightness: flow %q not admitted", id)
	}
	f := fs.flowFor(id)
	// Current analytic bounds: the flow under today's co-resident cross
	// traffic (the registry read lock excludes commits, so the shard state is
	// stable). The admission-time verdict may be looser or tighter — flows
	// admitted or released since then changed the residual service.
	a, err := core.AnalyzeMemo(c.pipelineFor(f, nil), c.memo)
	c.mu.RUnlock()
	if err != nil {
		return Tightness{}, fmt.Errorf("admit: tightness: flow %q: %w", id, err)
	}
	b := boundsOf(a)

	sp, err := c.replaySim(f, opt)
	if err != nil {
		return Tightness{}, fmt.Errorf("admit: tightness: flow %q: %w", id, err)
	}
	res, err := sp.Run()
	if err != nil {
		return Tightness{}, fmt.Errorf("admit: tightness: flow %q: %w", id, err)
	}

	t := Tightness{
		FlowID: id,
		Rung:   a.Rung.String(),
		Epoch:  c.Epoch(),

		DelayBound:  b.delay,
		SimDelayP50: res.DelayP50,
		SimDelayP99: res.DelayP99,
		SimDelayMax: res.DelayMax,

		BacklogBound:  b.backlog,
		SimBacklogMax: res.MaxBacklog,

		Capped: res.Capped,
		Events: res.Events,
	}
	if res.DelayMax > 0 {
		t.DelayTightness = b.delay.Seconds() / res.DelayMax.Seconds()
	}
	if res.MaxBacklog > 0 {
		t.BacklogTightness = float64(b.backlog) / float64(res.MaxBacklog)
	}
	return t, nil
}
