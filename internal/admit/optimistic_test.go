package admit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

func isolationPlatform(t *testing.T) (*Controller, []string, []string) {
	t.Helper()
	var nodes []core.Node
	var aNames, bNames []string
	for i := 0; i < 3; i++ {
		a := fmt.Sprintf("a%d", i)
		b := fmt.Sprintf("b%d", i)
		aNames = append(aNames, a)
		bNames = append(bNames, b)
		for _, name := range []string{a, b} {
			nodes = append(nodes, core.Node{
				Name: name, Rate: 200 * units.MiBPerSec, Latency: 100 * time.Microsecond,
				JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB,
			})
		}
	}
	c, err := New("isolation", nodes)
	if err != nil {
		t.Fatal(err)
	}
	return c, aNames, bNames
}

// TestDisjointPathEpochIsolation drives concurrent Admit/AdmitBatch/Release
// traffic over the a-side of a two-sided platform and asserts the b-side is
// completely untouched: per-node epochs of the b nodes never move, and a
// rejection verdict cached against the b-side before the storm is still
// served from cache afterwards (zero cross-path invalidation). Run with
// -race.
func TestDisjointPathEpochIsolation(t *testing.T) {
	c, aNames, bNames := isolationPlatform(t)

	// Seed a b-side tenant, then cache a b-side rejection (a hog whose rate
	// exceeds the residual the tenant leaves).
	seed := Flow{
		ID:      "b-seed",
		Arrival: core.Arrival{Rate: 50 * units.MiBPerSec, Burst: 64 * units.KiB, MaxPacket: 4 * units.KiB},
		Path:    bNames,
		SLO:     SLO{MaxDelay: time.Second},
	}
	if v := c.Admit(seed); !v.Admitted {
		t.Fatalf("seed not admitted: %s", v.Reason)
	}
	hog := Flow{
		ID:      "b-hog",
		Arrival: core.Arrival{Rate: 180 * units.MiBPerSec, Burst: 64 * units.KiB, MaxPacket: 4 * units.KiB},
		Path:    bNames,
		SLO:     SLO{MaxDelay: time.Second},
	}
	if v := c.Admit(hog); v.Admitted {
		t.Fatalf("hog unexpectedly admitted")
	}
	if v := c.Admit(hog); !v.Cached {
		t.Fatalf("second hog probe not served from cache: %s", v.Reason)
	}

	bEpochs := make(map[string]uint64)
	for _, n := range bNames {
		bEpochs[n] = c.shards[n].epoch.Load()
	}
	aEpochBefore := make(map[string]uint64)
	for _, n := range aNames {
		aEpochBefore[n] = c.shards[n].epoch.Load()
	}

	// Concurrent a-side storm: sequential admits, batch admits, releases.
	const workers = 16
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				mk := func(tag string) Flow {
					return Flow{
						ID:      fmt.Sprintf("a-%d-%d-%s", g, i, tag),
						Arrival: core.Arrival{Rate: units.Rate(1+g%3) * units.MiBPerSec, Burst: 16 * units.KiB, MaxPacket: 4 * units.KiB},
						Path:    aNames,
						SLO:     SLO{MaxDelay: time.Second},
					}
				}
				if g%2 == 0 {
					f := mk("s")
					if v := c.Admit(f); v.Admitted {
						c.Release(f.ID)
					}
				} else {
					f1, f2 := mk("x"), mk("y")
					for _, v := range c.AdmitBatch([]Flow{f1, f2}) {
						if v.Admitted {
							c.Release(v.FlowID)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for _, n := range bNames {
		if got := c.shards[n].epoch.Load(); got != bEpochs[n] {
			t.Errorf("untouched node %s: epoch moved %d -> %d", n, bEpochs[n], got)
		}
	}
	moved := false
	for _, n := range aNames {
		if c.shards[n].epoch.Load() != aEpochBefore[n] {
			moved = true
		}
	}
	if !moved {
		t.Errorf("a-side epochs never advanced despite %d admits", workers*10)
	}
	// The b-side rejection must still be served from cache: the a-side storm
	// invalidated nothing on the disjoint path.
	if v := c.Admit(hog); !v.Cached {
		t.Errorf("b-side rejection evicted by disjoint a-side traffic: %s", v.Reason)
	}
	if v := c.Admit(hog); v.Admitted {
		t.Errorf("hog admitted after storm")
	}
}

// TestConcurrentMatchesSerializedReplay runs a concurrent mix of
// Admit/AdmitBatch/Release and asserts the final registry state is
// bit-identical to a serialized replay of the same surviving set on a fresh
// controller: same flow count, same per-node cross traffic, same residual
// curves. Run with -race.
func TestConcurrentMatchesSerializedReplay(t *testing.T) {
	mkController := func() (*Controller, []string) {
		names := make([]string, 6)
		nodes := make([]core.Node, 6)
		for i := range nodes {
			names[i] = fmt.Sprintf("n%d", i)
			nodes[i] = core.Node{
				Name: names[i], Rate: 800 * units.MiBPerSec, Latency: 100 * time.Microsecond,
				JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB,
			}
		}
		c, err := New("replay", nodes)
		if err != nil {
			t.Fatal(err)
		}
		return c, names
	}

	c, names := mkController()
	const workers = 16

	// Each worker admits 4 flows (two sequential, two via one batch) on its
	// own subchain, then releases its even-numbered ones. Ample capacity: if
	// anything is rejected the test setup is wrong, and the surviving set is
	// a deterministic function of (worker, index).
	mk := func(g, i int) Flow {
		from := g % (len(names) - 2)
		return Flow{
			ID:      fmt.Sprintf("g%d-%d", g, i),
			Arrival: core.Arrival{Rate: units.Rate(1+g%4) * units.MiBPerSec, Burst: units.Bytes(16+4*(i%2)) * units.KiB, MaxPacket: 4 * units.KiB},
			Path:    names[from : from+3],
			SLO:     SLO{MaxDelay: time.Second},
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, v := range []Verdict{c.Admit(mk(g, 0)), c.Admit(mk(g, 1))} {
				if !v.Admitted {
					t.Errorf("flow %s rejected: %s", v.FlowID, v.Reason)
				}
			}
			for _, v := range c.AdmitBatch([]Flow{mk(g, 2), mk(g, 3)}) {
				if !v.Admitted {
					t.Errorf("flow %s rejected in batch: %s", v.FlowID, v.Reason)
				}
			}
			for i := 0; i < 4; i += 2 {
				if !c.Release(fmt.Sprintf("g%d-%d", g, i)) {
					t.Errorf("release g%d-%d failed", g, i)
				}
			}
		}(g)
	}
	wg.Wait()

	// Serialized replay: the same surviving set admitted one by one.
	ref, _ := mkController()
	for g := 0; g < workers; g++ {
		for i := 1; i < 4; i += 2 {
			if v := ref.Admit(mk(g, i)); !v.Admitted {
				t.Fatalf("replay rejected %s: %s", v.FlowID, v.Reason)
			}
		}
	}

	if got, want := c.FlowCount(), ref.FlowCount(); got != want {
		t.Fatalf("flow count %d, serialized replay has %d", got, want)
	}
	for _, n := range names {
		rc, err := c.ResidualService(n)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := ref.ResidualService(n)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Cross != rr.Cross {
			t.Errorf("node %s: cross %+v, serialized replay %+v", n, rc.Cross, rr.Cross)
		}
		if !rc.Curve.Equal(rr.Curve) {
			t.Errorf("node %s: residual curve differs from serialized replay", n)
		}
	}
}
