package admit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamcalc/internal/obs"
	"streamcalc/internal/units"
)

// phaseSum adds up a record's phase durations.
func phaseSum(rec DecisionRecord) time.Duration {
	var sum time.Duration
	for _, p := range rec.Phases {
		sum += p.Dur
	}
	return sum
}

// TestFlightRecorderSingle: one admission and one release land in the
// recorder with verdict metadata, contiguous phases, and dependency epochs.
func TestFlightRecorderSingle(t *testing.T) {
	c := testPlatform(t)
	rec := c.EnableFlightRecorder(16)

	v := c.Admit(tenant("t1", 10*units.MiBPerSec))
	if !v.Admitted {
		t.Fatalf("expected admission: %s", v.Reason)
	}
	recs := rec.Snapshot(0)
	if len(recs) != 1 {
		t.Fatalf("recorder depth %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindAdmit || r.FlowID != "t1" || !r.Admitted || r.Seq != 1 {
		t.Errorf("record %+v", r)
	}
	if r.Epoch != v.Epoch {
		t.Errorf("record epoch %d, verdict epoch %d", r.Epoch, v.Epoch)
	}
	if len(r.Nodes) != 3 {
		t.Errorf("want 3 dependency nodes (path length), got %+v", r.Nodes)
	}
	if sum, total := phaseSum(r), r.Total; sum > total || total-sum > total/10+time.Millisecond {
		t.Errorf("phase sum %v vs total %v", sum, total)
	}
	// The contiguous span must include the core phases.
	seen := map[string]bool{}
	for _, p := range r.Phases {
		seen[p.Phase] = true
	}
	for _, want := range []string{PhasePrecheck, PhaseQueueWait, PhaseValidateCommit, PhaseHandoff} {
		if !seen[want] {
			t.Errorf("phase %q missing from %+v", want, r.Phases)
		}
	}

	if !c.Release("t1") {
		t.Fatal("release failed")
	}
	recs = rec.Snapshot(1)
	if len(recs) != 1 || recs[0].Kind != KindRelease || !recs[0].Released {
		t.Errorf("newest record after release: %+v", recs)
	}
}

// TestFlightRecorderConcurrent is the acceptance race test: many concurrent
// clients push admissions and releases through the group combiner, and every
// recorded decision's phase durations must sum to (approximately) its total
// latency — the contiguous-marking invariant — while the recorder retains
// verdict metadata for a just-admitted flow. Run with -race.
func TestFlightRecorderConcurrent(t *testing.T) {
	c := testPlatform(t)
	reg := obs.NewRegistry()
	c.EnableObs(reg)
	rec := c.EnableFlightRecorder(4096)

	const clients = 8
	const perClient = 40
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := fmt.Sprintf("c%d-f%d", cl, i)
				// Mixed rates so some admissions reject and some contend;
				// immediate releases keep epochs moving under the sweepers.
				rate := units.Rate(1+cl) * units.MiBPerSec / 4
				if v := c.Admit(tenant(id, rate)); v.Admitted && i%3 == 0 {
					c.Release(id)
				}
			}
		}(cl)
	}
	wg.Wait()

	recs := rec.Snapshot(0)
	if len(recs) < clients*perClient {
		t.Fatalf("recorder holds %d records, want >= %d", len(recs), clients*perClient)
	}
	admitSeen := false
	for _, r := range recs {
		sum, total := phaseSum(r), r.Total
		if sum > total {
			t.Fatalf("record %d (%s %s): phase sum %v exceeds total %v\nphases: %+v",
				r.Seq, r.Kind, r.FlowID, sum, total, r.Phases)
		}
		// Contiguous marking leaves only the unmarked tail (sub-microsecond
		// bookkeeping) unattributed; allow 10% + 1ms scheduling slop.
		if gap := total - sum; gap > total/10+time.Millisecond {
			t.Errorf("record %d (%s %s): %v of %v unattributed\nphases: %+v",
				r.Seq, r.Kind, r.FlowID, gap, total, r.Phases)
		}
		if r.Kind == KindAdmit && r.Admitted && !r.Cached {
			admitSeen = true
			if len(r.Nodes) == 0 {
				t.Errorf("admitted record %d lacks dependency nodes: %+v", r.Seq, r)
			}
			if r.Retries < 0 || r.Retries > maxCommitRetries {
				t.Errorf("record %d retries %d out of range", r.Seq, r.Retries)
			}
		}
	}
	if !admitSeen {
		t.Fatal("no uncached admitted decision recorded")
	}

	// Seq numbers are unique and dense enough to order the ring.
	seqs := map[uint64]bool{}
	for _, r := range recs {
		if seqs[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seqs[r.Seq] = true
	}

	// The registry scrape stays lint-clean under the full decision mix.
	text := scrape(t, reg)
	if errs := obs.LintExposition([]byte(text)); len(errs) > 0 {
		t.Errorf("exposition lint after concurrent run: %v", errs)
	}

	// The Chrome trace export of the retained window validates.
	tr := rec.Trace(128)
	if tr.Len() == 0 {
		t.Fatal("empty trace export")
	}
	var buf writerBuf
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceBytes(buf.b); err != nil {
		t.Errorf("trace validation: %v", err)
	}
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestRingOverwrite: the recorder keeps only the newest records, and the
// group-commit path preserves per-record group sizes.
func TestFlightRecorderOverwrite(t *testing.T) {
	c := testPlatform(t)
	rec := c.EnableFlightRecorder(4)

	for i := 0; i < 10; i++ {
		c.Admit(tenant(fmt.Sprintf("f%d", i), units.MiBPerSec))
	}
	recs := rec.Snapshot(0)
	if len(recs) != 4 || rec.Depth() != 4 {
		t.Fatalf("depth %d, want 4", len(recs))
	}
	if rec.Seq() != 10 {
		t.Errorf("seq %d, want 10", rec.Seq())
	}
	if recs[0].Seq != 10 || recs[3].Seq != 7 {
		t.Errorf("snapshot not newest-first: %d..%d", recs[0].Seq, recs[3].Seq)
	}
}
