package admit

import (
	"fmt"
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// sharedNodePlatform is a single node with static background cross traffic,
// the canonical shape where the FIFO rungs are strictly tighter than blind:
// blind residual RL(6, 13/6) gives delay 2+1/6 s for an (2,1) arrival, the
// FIFO family collapses it to theta* = 1.3 s.
func sharedNodePlatform(t *testing.T) *Controller {
	t.Helper()
	c, err := New("shared", []core.Node{{
		Name: "s", Rate: 10, Latency: time.Second,
		JobIn: 1, JobOut: 1,
		CrossRate: 4, CrossBurst: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func rungTenant(id string, r core.Rung, maxDelay time.Duration) Flow {
	return Flow{
		ID: id,
		// MaxPacket matches the node job size so the replay's packetized
		// source is covered by the analytic envelope.
		Arrival: core.Arrival{Rate: 2, Burst: 1, MaxPacket: 1},
		Path:    []string{"s"},
		SLO:     SLO{MaxDelay: maxDelay},
		Rung:    r,
	}
}

// rungBound learns the promised delay of the canonical tenant at one rung
// on a fresh platform (no SLO, so the admission always succeeds).
func rungBound(t *testing.T, r core.Rung) time.Duration {
	t.Helper()
	c := sharedNodePlatform(t)
	v := c.Admit(rungTenant("probe", r, 0))
	if !v.Admitted {
		t.Fatalf("rung %v probe rejected: %s", r, v.Reason)
	}
	return v.Delay
}

// An SLO between the blind bound and the FIFO bound: blind must reject, the
// tighter rungs must admit — the ladder is a real admission knob, not just
// a reporting field.
func TestRungAdmitsWhereBlindRejects(t *testing.T) {
	dBlind := rungBound(t, core.RungBlind)
	dFIFO := rungBound(t, core.RungFIFO)
	dTight := rungBound(t, core.RungTight)
	if dFIFO >= dBlind || dTight > dFIFO {
		t.Fatalf("ladder not improving: blind %v fifo %v tight %v", dBlind, dFIFO, dTight)
	}
	slo := (dBlind + dFIFO) / 2
	for _, r := range []core.Rung{core.RungFIFO, core.RungTight} {
		c := sharedNodePlatform(t)
		vb := c.Admit(rungTenant("blind-flow", core.RungBlind, slo))
		if vb.Admitted {
			t.Fatalf("blind rung admitted past its bound: %s", vb.Reason)
		}
		if vb.Binding != "max_delay" || vb.Rung != "blind" {
			t.Errorf("blind rejection: binding=%q rung=%q", vb.Binding, vb.Rung)
		}
		v := c.Admit(rungTenant("tight-flow", r, slo))
		if !v.Admitted {
			t.Fatalf("rung %v rejected an admissible flow: %s", r, v.Reason)
		}
		if v.Rung != r.String() {
			t.Errorf("verdict rung = %q, want %q", v.Rung, r)
		}
		if v.Delay > slo || v.Delay <= 0 {
			t.Errorf("rung %v promised delay %v outside (0, %v]", r, v.Delay, slo)
		}
	}
}

// The controller-wide default applies to flows that do not carry their own
// rung, and a per-flow override beats it in both directions.
func TestRungControllerDefaultAndOverride(t *testing.T) {
	slo := (rungBound(t, core.RungBlind) + rungBound(t, core.RungFIFO)) / 2
	c := sharedNodePlatform(t)
	c.SetRung(core.RungFIFO)
	if c.DefaultRung() != core.RungFIFO {
		t.Fatalf("DefaultRung = %v", c.DefaultRung())
	}
	if v := c.Admit(rungTenant("deflt", core.RungDefault, slo)); !v.Admitted || v.Rung != "fifo" {
		t.Fatalf("default-rung flow: admitted=%v rung=%q (%s)", v.Admitted, v.Rung, v.Reason)
	}
	if v := c.Admit(rungTenant("force-blind", core.RungBlind, slo)); v.Admitted {
		t.Fatalf("blind override not honored: %s", v.Reason)
	}
}

// Capacity acceptance: filling one shared node with identical delay-SLO
// tenants, the tight rung must admit strictly more flows than blind. Every
// admitted flow's promise is then revalidated by sim replay at its residual
// service — more admissions, still zero violations.
func TestRungTightAdmitsMoreFlows(t *testing.T) {
	fill := func(r core.Rung) (int, *Controller) {
		c, err := New("cap", []core.Node{{
			Name: "s", Rate: 100, Latency: 100 * time.Millisecond,
			JobIn: 1, JobOut: 1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		c.SetRung(r)
		n := 0
		for ; n < 64; n++ {
			f := Flow{
				ID:      fmt.Sprintf("f-%d", n),
				Arrival: core.Arrival{Rate: 5, Burst: 4, MaxPacket: 1},
				Path:    []string{"s"},
				SLO:     SLO{MaxDelay: 800 * time.Millisecond},
			}
			if v := c.Admit(f); !v.Admitted {
				break
			}
		}
		return n, c
	}
	nBlind, _ := fill(core.RungBlind)
	nTight, ct := fill(core.RungTight)
	if nBlind < 1 || nTight <= nBlind {
		t.Fatalf("tight rung admitted %d flows, blind %d — want strictly more", nTight, nBlind)
	}
	rep, err := ct.RevalidateAll(RevalidateOptions{Replay: ReplayOptions{Total: units.MiB, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		for _, fr := range rep.Flows {
			for _, v := range fr.Violations {
				t.Errorf("%s: %s", fr.FlowID, v)
			}
		}
	}
}

// The rung is part of the class identity: identical specs at different
// rungs must not share a class (their reservations and verdicts differ).
func TestRungSeparatesClasses(t *testing.T) {
	c := sharedNodePlatform(t)
	if v := c.Admit(rungTenant("a", core.RungFIFO, 0)); !v.Admitted {
		t.Fatal(v.Reason)
	}
	if v := c.Admit(rungTenant("b", core.RungTight, 0)); !v.Admitted {
		t.Fatal(v.Reason)
	}
	if got := c.ClassCount(); got != 2 {
		t.Errorf("ClassCount = %d, want 2 (rung must split classes)", got)
	}
	// Snapshot round-trip pins the admitted rung on the flow.
	for _, af := range c.Flows() {
		want := core.RungFIFO
		if af.Flow.ID == "b" {
			want = core.RungTight
		}
		if af.Flow.Rung != want {
			t.Errorf("flow %s snapshot rung = %v, want %v", af.Flow.ID, af.Flow.Rung, want)
		}
	}
}

// Rung-aware replay: an admitted FIFO-rung flow survives the -validate
// replay (the sim stages serve the rate-latency majorant of the chosen
// theta-shifted residual, so the analytic bounds must dominate), and the
// tightness probe reports the rung with sound ratios.
func TestRungReplayAndTightness(t *testing.T) {
	for _, r := range []core.Rung{core.RungBlind, core.RungFIFO, core.RungTight} {
		c := sharedNodePlatform(t)
		rep, err := Replay(c, []TraceOp{
			{Op: "admit", Flow: rungTenant("flow", r, 0)},
		}, ReplayOptions{Total: units.MiB, Seed: 3})
		if err != nil {
			t.Fatalf("rung %v: %v", r, err)
		}
		if rep.Admitted != 1 || rep.Violations != 0 {
			t.Fatalf("rung %v: admitted=%d violations=%d: %+v",
				r, rep.Admitted, rep.Violations, rep.Steps)
		}
		ti, err := c.Tightness("flow", ReplayOptions{Total: units.MiB, Seed: 3})
		if err != nil {
			t.Fatalf("rung %v: %v", r, err)
		}
		if ti.Rung != r.String() {
			t.Errorf("tightness rung = %q, want %q", ti.Rung, r)
		}
		if ti.DelayTightness < 1 || ti.BacklogTightness < 1 {
			t.Errorf("rung %v: tightness below 1: delay %v backlog %v",
				r, ti.DelayTightness, ti.BacklogTightness)
		}
	}
}

// Victims keep their own rung: a blind-rung resident whose SLO only holds
// under its blind bound must not be re-judged (and spuriously kept or
// evicted) at a tight candidate's rung. The candidate's extra cross pushes
// the blind victim past its SLO, so the admission must be rejected even
// though the victim would pass at the candidate's tighter rung.
func TestRungVictimCheckedAtOwnRung(t *testing.T) {
	c := sharedNodePlatform(t)
	// Give the resident barely more headroom than its own blind bound.
	res := rungTenant("resident", core.RungBlind, rungBound(t, core.RungBlind)+10*time.Millisecond)
	if v := c.Admit(res); !v.Admitted {
		t.Fatalf("resident: %s", v.Reason)
	}
	// Any added cross traffic breaks the resident's blind bound; at FIFO
	// rungs the resident would still fit comfortably.
	cand := Flow{
		ID:      "cand",
		Arrival: core.Arrival{Rate: 1, Burst: 1},
		Path:    []string{"s"},
		Rung:    core.RungTight,
	}
	v := c.Admit(cand)
	if v.Admitted {
		t.Fatalf("candidate admitted over a blind victim's SLO: %s", v.Reason)
	}
	if v.Binding != "victim:resident" {
		t.Errorf("binding = %q, want victim:resident", v.Binding)
	}
}

// The flight recorder must surface the tight rung's lattice-search effort on
// the decision record: nonzero scored combos for a tight admission, zero for
// a blind one.
func TestRungSearchEffortOnDecisionRecord(t *testing.T) {
	c := sharedNodePlatform(t)
	rec := c.EnableFlightRecorder(16)
	if v := c.Admit(rungTenant("b", core.RungBlind, 0)); !v.Admitted {
		t.Fatal(v.Reason)
	}
	if v := c.Admit(rungTenant("t", core.RungTight, 0)); !v.Admitted {
		t.Fatal(v.Reason)
	}
	recs := rec.Snapshot(0)
	if len(recs) != 2 {
		t.Fatalf("recorder depth = %d, want 2", len(recs))
	}
	// Newest first: recs[1] is the blind admission (no tight analyses
	// anywhere yet), recs[0] the tight one.
	if recs[1].RungCombos != 0 || recs[1].RungPruned != 0 {
		t.Errorf("blind decision reported search effort: %d/%d", recs[1].RungCombos, recs[1].RungPruned)
	}
	if recs[0].RungCombos <= 0 {
		t.Errorf("tight decision reported no scored combos: %+v", recs[0])
	}
}
