package admit

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"streamcalc/internal/curve"
	"streamcalc/internal/obs"
	"streamcalc/internal/units"
)

func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestEnableObsMetrics(t *testing.T) {
	defer curve.SetOpTimer(nil)
	c := testPlatform(t)
	reg := obs.NewRegistry()
	c.EnableObsOpts(reg, ObsOptions{PerNodeMetrics: true})

	if v := c.Admit(tenant("t1", 10*units.MiBPerSec)); !v.Admitted {
		t.Fatalf("expected admission: %s", v.Reason)
	}
	// Same oversized spec twice: the second rejection is served from the
	// epoch-scoped verdict cache (keyed on curves, not IDs).
	c.Admit(tenant("hog", 500*units.MiBPerSec))
	if v := c.Admit(tenant("hog2", 500*units.MiBPerSec)); !v.Cached {
		t.Error("identical rejection at same epoch should be cached")
	}
	if !c.Release("t1") {
		t.Fatal("release failed")
	}

	text := scrape(t, reg)
	for _, want := range []string{
		`nc_admit_verdicts_total{result="admitted"} 1`,
		`nc_admit_verdicts_total{result="rejected"} 2`,
		"nc_admit_cached_total 1",
		"nc_admit_releases_total 1",
		"nc_admit_decision_seconds_count 3",
		`nc_cache_hit_rate{cache="verdict"}`,
		"# TYPE nc_cache_hits_total counter",
		`nc_node_utilization{node="encrypt"}`,
		"nc_admit_epoch",
		"nc_admit_flows 0",
		"nc_curve_op_seconds_bucket",
		"nc_analysis_seconds_count",
		// 3 admissions + 1 release, all far under the 100ms objective.
		"nc_admit_slo_fast_total 4",
		"nc_admit_slo_objective_seconds 0.1",
		"nc_admit_slo_budget_burn 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if errs := obs.LintExposition([]byte(text)); len(errs) > 0 {
		t.Errorf("exposition lint: %v", errs)
	}
}

// TestObsPerNodeDefaultOff: without the PerNodeMetrics opt-in, a scrape
// carries the aggregate epoch gauges but no per-node series.
func TestObsPerNodeDefaultOff(t *testing.T) {
	defer curve.SetOpTimer(nil)
	c := testPlatform(t)
	reg := obs.NewRegistry()
	c.EnableObs(reg)
	c.Admit(tenant("t1", 10*units.MiBPerSec))

	text := scrape(t, reg)
	if strings.Contains(text, "nc_node_") {
		t.Error("per-node series exported without opt-in")
	}
	for _, want := range []string{"nc_admit_epoch_max", "nc_admit_epoch_distinct_nodes"} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing aggregate gauge %q", want)
		}
	}
}

func TestAuditLog(t *testing.T) {
	c := testPlatform(t)
	var buf bytes.Buffer
	c.SetAudit(slog.New(slog.NewTextHandler(&buf, nil)))

	c.Admit(tenant("aud", 10*units.MiBPerSec))
	c.Admit(tenant("hog", 500*units.MiBPerSec))
	c.Release("aud")

	out := buf.String()
	for _, want := range []string{
		"admit.verdict", "flow_id=aud", "admitted=true", "bottleneck=encrypt",
		"flow_id=hog", "admitted=false", "reason=",
		"admit.release", "released=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit log missing %q in:\n%s", want, out)
		}
	}
}

func TestTightness(t *testing.T) {
	c := testPlatform(t)
	if v := c.Admit(tenant("t1", 10*units.MiBPerSec)); !v.Admitted {
		t.Fatalf("expected admission: %s", v.Reason)
	}
	// A co-resident so the residual service is genuinely degraded.
	if v := c.Admit(tenant("t2", 10*units.MiBPerSec)); !v.Admitted {
		t.Fatalf("expected admission: %s", v.Reason)
	}

	tt, err := c.Tightness("t1", ReplayOptions{Total: 2 * units.MiB, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tt.SimDelayMax <= 0 || tt.SimBacklogMax <= 0 {
		t.Fatalf("replay observed nothing: %+v", tt)
	}
	// Soundness: the analytic bound must dominate every observation.
	if tt.DelayTightness < 1 {
		t.Errorf("delay tightness %.3f < 1 (bound %v, observed max %v)",
			tt.DelayTightness, tt.DelayBound, tt.SimDelayMax)
	}
	if tt.BacklogTightness < 1 {
		t.Errorf("backlog tightness %.3f < 1 (bound %v, observed max %v)",
			tt.BacklogTightness, tt.BacklogBound, tt.SimBacklogMax)
	}
	if tt.SimDelayP50 > tt.SimDelayP99 || tt.SimDelayP99 > tt.SimDelayMax {
		t.Errorf("quantiles out of order: p50=%v p99=%v max=%v",
			tt.SimDelayP50, tt.SimDelayP99, tt.SimDelayMax)
	}
	if tt.Capped {
		t.Error("short replay should not hit the event cap")
	}

	// Determinism per seed.
	tt2, err := c.Tightness("t1", ReplayOptions{Total: 2 * units.MiB, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tt2.SimDelayMax != tt.SimDelayMax || tt2.Events != tt.Events {
		t.Errorf("replay not deterministic: %+v vs %+v", tt, tt2)
	}

	if _, err := c.Tightness("ghost", ReplayOptions{}); err == nil {
		t.Error("expected error for unknown flow")
	}
}
