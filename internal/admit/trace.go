package admit

import (
	"sort"
	"time"

	"streamcalc/internal/obs"
)

// This file is the decision flight recorder: every Admit/Release/AdmitBatch
// call carries a decTrace through the combiner and the optimistic engine,
// recording a contiguous phase breakdown (queue wait, leader drain,
// analysis, victim sweep, validate-and-commit, retries, fallback) plus the
// outcome metadata a postmortem needs — verdict, retry count, victim
// counts, and the per-node epochs the analysis pinned. Finished decisions
// land in a ring buffer exposed by ncadmitd as GET /debug/decisions (JSON)
// and /debug/decisions/trace (Chrome trace_event), and each one stamps its
// sequence number onto the latency histogram as an exemplar, so a p99
// bucket on /metrics links to the concrete decision that landed there.
//
// Ownership rule: a decTrace is written by exactly one goroutine at a time
// — the submitter before enqueue and after the done-channel receive, the
// combiner leader in between. Both handoffs are channel/mutex synchronized,
// so no span access races (the -race combiner test exercises this).

// Phase names recorded on decision spans.
const (
	PhasePrecheck       = "precheck"        // spec checks + verdict-cache probe
	PhaseQueueWait      = "queue_wait"      // combiner queue, waiting for a leader
	PhaseDrain          = "drain"           // leader committing queued releases first
	PhaseAnalysis       = "analysis"        // candidate reservation + pipeline analysis
	PhaseVictimSweep    = "victim_sweep"    // re-checking co-resident classes
	PhaseValidateCommit = "validate_commit" // write-locked epoch validation + commit
	PhaseRetry          = "retry"           // post-conflict bookkeeping before re-analysis
	PhaseFallback       = "fallback"        // write-locked classic decision after retries
	PhaseHandoff        = "handoff"         // result delivery back to the caller
)

// Decision kinds.
const (
	KindAdmit   = "admit"
	KindRelease = "release"
	KindBatch   = "batch"
)

// decTrace accumulates one decision's phase span and outcome metadata while
// the decision is in flight. All methods are nil-receiver safe so
// uninstrumented controllers pass nil and pay one branch per call site.
type decTrace struct {
	span     *obs.Span
	kind     string
	group    int // combiner group size this decision rode in (0 = none)
	retries  int
	fellBack bool
	victims  int // victim classes analyzed
	reused   int // victim classes reused from a previous attempt's sweep
	deps     []NodeEpoch
	batchN   int // batch decisions: flows offered
	batchAdm int // batch decisions: flows admitted

	rungCombos int // tight-rung θ-vectors scored across this decision's analyses
	rungPruned int // tight-rung θ-vectors skipped by branch-and-bound
}

// newTrace starts a decision trace, or returns nil when no sink is
// attached (the uninstrumented fast path allocates nothing).
func (c *Controller) newTrace(kind string) *decTrace {
	if !c.instrumented() {
		return nil
	}
	return &decTrace{span: obs.StartSpan(), kind: kind}
}

func (tr *decTrace) mark(phase string) {
	if tr != nil {
		tr.span.Mark(phase)
	}
}

func (tr *decTrace) noteRetry() {
	if tr != nil {
		tr.retries++
	}
}

func (tr *decTrace) noteFallback() {
	if tr != nil {
		tr.fellBack = true
	}
}

func (tr *decTrace) noteVictim() {
	if tr != nil {
		tr.victims++
	}
}

func (tr *decTrace) noteReuse() {
	if tr != nil {
		tr.reused++
	}
}

func (tr *decTrace) noteGroup(n int) {
	if tr != nil {
		tr.group = n
	}
}

// noteRungSearch accumulates a tight-rung analysis's lattice-search effort
// (scored and pruned θ-vectors) onto the decision; analyses below RungTight
// report zeros and the call is a no-op.
func (tr *decTrace) noteRungSearch(combos, pruned int) {
	if tr != nil {
		tr.rungCombos += combos
		tr.rungPruned += pruned
	}
}

// absorb folds a leader's shared group trace (its span phases and victim
// counters) into this ticket's trace. Called by the leader before the
// done-channel handoff.
func (tr *decTrace) absorb(g *decTrace) {
	if tr == nil || g == nil {
		return
	}
	tr.span.Absorb(g.span)
	tr.victims += g.victims
	tr.reused += g.reused
	tr.rungCombos += g.rungCombos
	tr.rungPruned += g.rungPruned
}

// setDeps snapshots the sweep's dependency set as (node name, epoch) pairs,
// sorted by name. Callers need no lock: shard names and indices are
// immutable after New.
func (tr *decTrace) setDeps(c *Controller, sw *sweep) {
	if tr == nil || sw == nil || len(sw.deps) == 0 {
		return
	}
	out := make([]NodeEpoch, 0, len(sw.deps))
	for idx, e := range sw.deps {
		out = append(out, NodeEpoch{Node: c.byIdx[idx].node.Name, Epoch: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	tr.deps = out
}

// NodeEpoch is one node the decision's analysis read, with the epoch it
// observed (the dependency the validate-and-commit section checked).
type NodeEpoch struct {
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch"`
}

// DecisionRecord is one finished decision in the flight recorder, fully
// detached from controller state and JSON-serializable.
type DecisionRecord struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"` // "admit", "release", "batch"

	FlowID   string `json:"flow_id,omitempty"`
	Admitted bool   `json:"admitted"`
	Released bool   `json:"released,omitempty"` // release decisions
	Cached   bool   `json:"cached,omitempty"`
	Binding  string `json:"binding,omitempty"`
	Rung     string `json:"rung,omitempty"` // analysis tightness rung decided at
	Epoch    uint64 `json:"epoch,omitempty"`

	Start  time.Time      `json:"start"`
	Total  time.Duration  `json:"total_ns"`
	Phases []obs.PhaseDur `json:"phases,omitempty"`

	Retries   int  `json:"retries,omitempty"`
	Fallback  bool `json:"fallback,omitempty"`
	GroupSize int  `json:"group_size,omitempty"`

	VictimsChecked int         `json:"victims_checked,omitempty"`
	VictimsReused  int         `json:"victims_reused,omitempty"`
	Nodes          []NodeEpoch `json:"nodes,omitempty"`

	// RungCombos/RungPruned are the tight rung's θ-lattice search effort
	// summed over every analysis this decision consulted (candidate plus
	// victim sweeps); zero below RungTight. A memoized analysis contributes
	// the effort of its original computation — the cost the decision would
	// have paid without the memo.
	RungCombos int `json:"rung_combos,omitempty"`
	RungPruned int `json:"rung_pruned,omitempty"`

	BatchFlows    int `json:"batch_flows,omitempty"`
	BatchAdmitted int `json:"batch_admitted,omitempty"`
}

// record materializes the finished trace into a detached DecisionRecord
// (Seq is assigned by the recorder at push time). The caller must have
// marked the final phase already, so Total covers every recorded phase.
func (tr *decTrace) record(total time.Duration) DecisionRecord {
	return DecisionRecord{
		Kind:           tr.kind,
		Start:          tr.span.Start(),
		Total:          total,
		Phases:         tr.span.Phases(),
		Retries:        tr.retries,
		Fallback:       tr.fellBack,
		GroupSize:      tr.group,
		VictimsChecked: tr.victims,
		VictimsReused:  tr.reused,
		Nodes:          tr.deps,
		RungCombos:     tr.rungCombos,
		RungPruned:     tr.rungPruned,
		BatchFlows:     tr.batchN,
		BatchAdmitted:  tr.batchAdm,
	}
}

// --- Flight recorder --------------------------------------------------------

// FlightRecorder retains the last N finished decisions in a ring buffer.
// Push cost is one short mutex plus a struct copy, cheap relative to any
// decision; snapshots copy out under the same mutex.
type FlightRecorder struct {
	ring *obs.Ring[DecisionRecord]
}

// EnableFlightRecorder attaches a flight recorder keeping the last depth
// decisions and returns it. Call once, before serving traffic; enabling the
// recorder alone (without EnableObs) also turns on decision tracing.
func (c *Controller) EnableFlightRecorder(depth int) *FlightRecorder {
	r := &FlightRecorder{ring: obs.NewRing[DecisionRecord](depth)}
	c.rec = r
	return r
}

// Recorder returns the attached flight recorder (nil when disabled).
func (c *Controller) Recorder() *FlightRecorder { return c.rec }

// push stores a finished record, assigning and returning its sequence
// number (0 when no recorder is attached).
func (c *Controller) pushRecord(rec DecisionRecord) uint64 {
	if c.rec == nil {
		return 0
	}
	return c.rec.ring.PushSeq(func(seq uint64) DecisionRecord {
		rec.Seq = seq
		return rec
	})
}

// Depth returns the number of retained decisions.
func (r *FlightRecorder) Depth() int { return r.ring.Len() }

// Cap returns the recorder capacity.
func (r *FlightRecorder) Cap() int { return r.ring.Cap() }

// Seq returns the sequence number of the most recent decision (0 when
// empty).
func (r *FlightRecorder) Seq() uint64 { return r.ring.Seq() }

// Snapshot returns up to limit decisions, newest first (limit <= 0 means
// all retained).
func (r *FlightRecorder) Snapshot(limit int) []DecisionRecord {
	return r.ring.Snapshot(limit)
}

// Trace exports up to limit retained decisions as a Chrome trace_event
// timeline: one viewer thread per decision (named by kind, seq, and flow
// ID), its phases laid out contiguously as complete events, timestamps
// relative to the oldest exported decision.
func (r *FlightRecorder) Trace(limit int) *obs.Trace {
	recs := r.ring.Snapshot(limit)
	t := obs.NewTrace()
	if len(recs) == 0 {
		return t
	}
	base := recs[0].Start
	for _, rec := range recs {
		if rec.Start.Before(base) {
			base = rec.Start
		}
	}
	for _, rec := range recs {
		tid := int64(rec.Seq)
		name := rec.Kind + " #" + itoa(rec.Seq)
		if rec.FlowID != "" {
			name += " " + rec.FlowID
		}
		t.ThreadName(tid, name)
		at := rec.Start.Sub(base).Seconds()
		for _, p := range rec.Phases {
			d := p.Dur.Seconds()
			if d < 0 {
				d = 0
			}
			t.Complete(p.Phase, "phase", tid, at, d, nil)
			at += d
		}
		t.Complete("decision", "decision", tid, rec.Start.Sub(base).Seconds(),
			rec.Total.Seconds(), map[string]any{
				"kind":     rec.Kind,
				"flow_id":  rec.FlowID,
				"admitted": rec.Admitted,
				"binding":  rec.Binding,
				"retries":  rec.Retries,
				"fallback": rec.Fallback,
				"group":    rec.GroupSize,
				"victims":  rec.VictimsChecked,
			})
	}
	return t
}

// itoa avoids strconv for the one uint64 the trace namer needs.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
