package admit

import (
	"fmt"
	"time"
)

// This file implements the optimistic admission engine:
//
//   - sweep: the dependency tracker of one analysis attempt. It records the
//     epoch of every node the analysis read (candidate path + every analyzed
//     victim class's path), so the commit section can validate that exactly
//     that state is still current. On a conflict retry it also lets the
//     victim sweep skip classes whose node epochs never moved.
//   - ticket/submit/drain: the group-commit combiner. Concurrent
//     Admit/Release callers enqueue tickets; one caller at a time becomes
//     the leader (leaderSem), drains the queue, commits pending releases
//     first, and decides the queued admissions together. A group of
//     admissions costs ONE victim sweep (the transactional feasibility
//     check shared with AdmitBatch), so k concurrent clients amortize the
//     sweep k ways — the throughput lever that a read-locked analysis alone
//     cannot provide when the analysis itself is the CPU cost.
//
// Soundness rule (same as AdmitBatch): only analyzed states commit. A
// conflicted validate-and-commit section re-analyzes at the new state —
// never assumes the bounds are monotone in cross traffic — and after
// maxCommitRetries falls back to the fully write-locked classic decision.

// maxCommitRetries bounds optimistic re-analysis before an admission falls
// back to deciding under the write lock (which cannot conflict).
const maxCommitRetries = 3

// --- Dependency tracking ----------------------------------------------------

// sweep records the per-node epochs one optimistic analysis observed, plus
// the per-victim dependency snapshots that allow conflict-scoped retries.
// A nil *sweep disables tracking (the classic write-locked paths).
type sweep struct {
	deps    map[int]uint64           // shard idx -> epoch observed this attempt
	victims map[verdictKey][]nodeDep // passing victim class -> its path's epochs
}

func newSweep() *sweep {
	return &sweep{victims: make(map[verdictKey][]nodeDep)}
}

// begin starts a new analysis attempt: the dependency set is rebuilt from
// scratch (epochs may have moved), while victim results persist so
// unchanged classes can be reused.
func (sw *sweep) begin() {
	if sw == nil {
		return
	}
	sw.deps = make(map[int]uint64)
}

// addPath pins the current epoch of every node on path (first observation
// wins; epochs cannot move while the registry lock is held in any mode).
func (sw *sweep) addPath(c *Controller, path []string) {
	if sw == nil {
		return
	}
	for _, name := range path {
		sh := c.shards[name]
		if _, ok := sw.deps[sh.idx]; !ok {
			sw.deps[sh.idx] = sh.epoch.Load()
		}
	}
}

// victimOK reports whether class k passed the victim check on a previous
// attempt AND none of its path nodes changed since — in which case the
// prior analysis still holds, its dependencies are merged into the current
// attempt, and the class can be skipped. This is what restricts a retry
// sweep to the classes whose aggregates actually changed.
func (sw *sweep) victimOK(c *Controller, k verdictKey, path []string) bool {
	if sw == nil {
		return false
	}
	deps, ok := sw.victims[k]
	if !ok {
		return false
	}
	for _, d := range deps {
		if c.byIdx[d.idx].epoch.Load() != d.epoch {
			delete(sw.victims, k)
			return false
		}
	}
	sw.addPath(c, path) // unchanged epochs: recording current == recorded
	return true
}

// recordVictim stores a passing victim check with its path's epochs and
// merges them into the attempt's dependency set.
func (sw *sweep) recordVictim(c *Controller, k verdictKey, path []string) {
	if sw == nil {
		return
	}
	sw.addPath(c, path)
	deps := make([]nodeDep, 0, len(path))
	seen := make(map[int]struct{}, len(path))
	for _, name := range path {
		sh := c.shards[name]
		if _, dup := seen[sh.idx]; dup {
			continue
		}
		seen[sh.idx] = struct{}{}
		deps = append(deps, nodeDep{idx: sh.idx, epoch: sh.epoch.Load()})
	}
	sw.victims[k] = deps
}

// depList flattens the attempt's dependency set for the verdict cache.
func (sw *sweep) depList() []nodeDep {
	if sw == nil {
		return nil
	}
	out := make([]nodeDep, 0, len(sw.deps))
	for idx, e := range sw.deps {
		out = append(out, nodeDep{idx: idx, epoch: e})
	}
	return out
}

// depsCurrent reports whether every node epoch the sweep observed is still
// live — the validate step of validate-and-commit. Callers must hold the
// registry write lock (so a true answer stays true through the commit).
func (c *Controller) depsCurrent(sw *sweep) bool {
	if sw == nil {
		return true
	}
	for idx, e := range sw.deps {
		if c.byIdx[idx].epoch.Load() != e {
			return false
		}
	}
	return true
}

// --- Group-commit combiner --------------------------------------------------

const (
	tkAdmit = iota
	tkRelease
)

// ticket is one queued Admit or Release awaiting the combiner. tr (nil when
// uninstrumented) is written by the submitter before enqueue, by the leader
// while the ticket is being decided, and by the submitter again after the
// done receive — each handoff channel- or mutex-synchronized.
type ticket struct {
	kind int
	f    Flow       // tkAdmit
	key  verdictKey // tkAdmit
	id   string     // tkRelease
	tr   *decTrace
	done chan ticketResult
}

type ticketResult struct {
	v  Verdict // tkAdmit
	ok bool    // tkRelease
}

// submit enqueues t and waits for its result, volunteering as the combiner
// leader whenever leadership is free. An uncontended caller becomes the
// leader immediately and decides its own ticket; under contention, waiting
// callers' tickets accumulate and the next leader decides them as a group.
func (c *Controller) submit(t *ticket) ticketResult {
	t.done = make(chan ticketResult, 1)
	c.qmu.Lock()
	c.queue = append(c.queue, t)
	c.qmu.Unlock()
	for {
		select {
		case r := <-t.done:
			return r
		default:
		}
		select {
		case r := <-t.done:
			return r
		case c.leaderSem <- struct{}{}:
			c.drain()
			<-c.leaderSem
		}
	}
}

// drain processes queued tickets until the queue is empty. Only the leader
// (holder of leaderSem) runs this.
func (c *Controller) drain() {
	for {
		c.qmu.Lock()
		q := c.queue
		c.queue = nil
		c.qmu.Unlock()
		if len(q) == 0 {
			return
		}
		c.processGroup(q)
	}
}

// processGroup decides one drained batch of tickets: releases first (so
// admissions see the freshest state and releases never conflict with a
// sweep in flight), then the admissions as one group.
func (c *Controller) processGroup(q []*ticket) {
	var rel, adm []*ticket
	for _, t := range q {
		// The leader owns every drained ticket's trace from here until the
		// done send; everything since the submitter's last mark is combiner
		// queue wait.
		t.tr.mark(PhaseQueueWait)
		if t.kind == tkRelease {
			rel = append(rel, t)
		} else {
			adm = append(adm, t)
		}
	}
	if len(rel) > 0 {
		c.mu.Lock()
		for _, t := range rel {
			ok := c.releaseLocked(t.id)
			t.tr.mark(PhaseValidateCommit)
			t.done <- ticketResult{ok: ok}
		}
		c.mu.Unlock()
		// Admissions waited for the release drain; charge them that window.
		for _, t := range adm {
			t.tr.mark(PhaseDrain)
		}
	}
	if m := c.obsm; m != nil && len(adm) > 0 {
		m.groupSize.Observe(float64(len(adm)))
	}
	for _, t := range adm {
		t.tr.noteGroup(len(adm))
	}
	switch {
	case len(adm) == 1:
		t := adm[0]
		t.done <- ticketResult{v: c.admitOne(t.f, t.key, t.tr)}
	case len(adm) > 1:
		c.admitGroup(adm)
	}
}

// --- Single-flow optimistic admission ---------------------------------------

// admitOne is the optimistic single-flow path: analyze under the read lock
// with dependency tracking, then validate-and-commit under the write lock.
// Conflicts retry with a sweep scoped to the changed classes; after
// maxCommitRetries the decision falls back to the write-locked classic
// path. Semantics (verdict text, epoch accounting) are identical to the
// historical write-locked decide.
func (c *Controller) admitOne(f Flow, key verdictKey, tr *decTrace) Verdict {
	sw := newSweep()
	for attempt := 0; attempt <= maxCommitRetries; attempt++ {
		c.mu.RLock()
		epoch := c.epoch.Load()
		sw.begin()
		v, contrib := c.decide(f, epoch, sw, tr)
		c.mu.RUnlock()
		if !v.Admitted {
			// Rejections commit nothing; the verdict was computed at a
			// consistent snapshot and is cached against exactly the node
			// epochs that snapshot pinned.
			c.storeVerdict(key, sw.depList(), v)
			v.FlowID = f.ID
			tr.setDeps(c, sw)
			return v
		}
		waitStart := time.Now()
		c.mu.Lock()
		if _, dup := c.flows[f.ID]; dup {
			c.mu.Unlock()
			tr.mark(PhaseValidateCommit)
			return Verdict{FlowID: f.ID, Epoch: c.epoch.Load(), Binding: "spec",
				Reason: fmt.Sprintf("rejected: flow %q is already admitted", f.ID)}
		}
		if c.depsCurrent(sw) {
			c.commit(key, f, contrib, v)
			c.epoch.Add(1)
			c.mu.Unlock()
			c.observeCommitWait(time.Since(waitStart))
			tr.mark(PhaseValidateCommit)
			tr.setDeps(c, sw)
			return v
		}
		c.mu.Unlock()
		c.noteConflict()
		tr.mark(PhaseRetry)
		tr.noteRetry()
	}

	// Retries exhausted: decide under the write lock, where state cannot
	// move between analysis and commit.
	tr.noteFallback()
	waitStart := time.Now()
	c.mu.Lock()
	epoch := c.epoch.Load()
	sw.begin()
	v, contrib := c.decide(f, epoch, sw, tr)
	if v.Admitted {
		c.commit(key, f, contrib, v)
		c.epoch.Add(1)
	}
	c.mu.Unlock()
	c.observeCommitWait(time.Since(waitStart))
	tr.mark(PhaseFallback)
	tr.setDeps(c, sw)
	if !v.Admitted {
		c.storeVerdict(key, sw.depList(), v)
		v.FlowID = f.ID
	}
	return v
}

// --- Grouped admission ------------------------------------------------------

// admitGroup decides two or more queued admissions as one transaction: the
// whole group is feasibility-checked at the hypothetical final state under
// the read lock (one analysis per class — the same transactional core as
// AdmitBatch), then committed in a single validate-and-commit section with
// one global epoch bump. If the group is infeasible, or conflicts persist,
// every ticket falls back to the exact sequential admitOne path so each
// flow gets the precise verdict sequential admission would have produced.
func (c *Controller) admitGroup(ts []*ticket) {
	// Intra-group duplicate IDs get the sequential path (their verdict
	// depends on what happens to the first occurrence).
	seen := make(map[string]struct{}, len(ts))
	uniq := make([]*ticket, 0, len(ts))
	var dups []*ticket
	for _, t := range ts {
		if _, ok := seen[t.f.ID]; ok {
			dups = append(dups, t)
			continue
		}
		seen[t.f.ID] = struct{}{}
		uniq = append(uniq, t)
	}

	sequential := func(ts []*ticket) {
		for _, t := range ts {
			t.done <- ticketResult{v: c.admitOne(t.f, t.key, t.tr)}
		}
	}

	for attempt := 0; attempt < 2; attempt++ {
		// The leader's shared work (one sweep serving every ticket) is
		// recorded on a group trace and folded into each ticket's own trace
		// at delivery, so per-decision records carry the real phase costs.
		gtr := c.newTrace(KindAdmit)
		c.mu.RLock()
		epoch := c.epoch.Load()
		cands := make([]batchCand, 0, len(uniq))
		rejected := make(map[*ticket]Verdict)
		for _, t := range uniq {
			if _, dup := c.flows[t.f.ID]; dup {
				rejected[t] = Verdict{FlowID: t.f.ID, Epoch: epoch, Binding: "spec",
					Reason: fmt.Sprintf("rejected: flow %q is already admitted", t.f.ID)}
				continue
			}
			contrib, err := c.reservationFor(t.f)
			if err != nil {
				rejected[t] = Verdict{FlowID: t.f.ID, Epoch: epoch, Binding: "spec",
					Reason: "rejected: " + err.Error()}
				continue
			}
			cands = append(cands, batchCand{idx: len(cands), f: t.f, key: t.key, contrib: contrib})
		}
		gtr.mark(PhaseAnalysis)
		sw := newSweep()
		sw.begin()
		res := c.feasibleAt(cands, sw, gtr)
		c.mu.RUnlock()
		if !res.ok {
			// Someone in the group doesn't fit at the final state: decide
			// everyone sequentially so rejections carry exact per-flow
			// verdicts and admissible members still get in. The shared
			// analysis cost lands on every ticket before it re-decides.
			for _, t := range uniq {
				t.tr.absorb(gtr)
			}
			sequential(uniq)
			sequential(dups)
			return
		}
		waitStart := time.Now()
		c.mu.Lock()
		valid := c.depsCurrent(sw)
		if valid {
			for i := range cands {
				if _, dup := c.flows[cands[i].f.ID]; dup {
					valid = false
					break
				}
			}
		}
		if valid {
			live := uniq[:0]
			deliver := make([]ticketResult, 0, len(uniq))
			order := make([]*ticket, 0, len(uniq))
			for _, t := range uniq {
				if v, ok := rejected[t]; ok {
					deliver = append(deliver, ticketResult{v: v})
					order = append(order, t)
					continue
				}
				live = append(live, t)
			}
			for i := range cands {
				cd := &cands[i]
				v := res.verdicts[cd.key]
				v.FlowID = cd.f.ID
				c.commit(cd.key, cd.f, cd.contrib, v)
				deliver = append(deliver, ticketResult{v: v})
				order = append(order, live[cd.idx])
			}
			c.epoch.Add(1)
			c.mu.Unlock()
			c.observeCommitWait(time.Since(waitStart))
			// Finish the group trace and deliver outside the lock: each
			// ticket absorbs the shared phases, then its own setDeps/send.
			gtr.mark(PhaseValidateCommit)
			for i, t := range order {
				t.tr.absorb(gtr)
				if deliver[i].v.Admitted {
					t.tr.setDeps(c, sw)
				}
				t.done <- deliver[i]
			}
			sequential(dups)
			return
		}
		c.mu.Unlock()
		c.noteConflict()
		gtr.mark(PhaseRetry)
		for _, t := range uniq {
			t.tr.absorb(gtr)
			t.tr.noteRetry()
		}
	}
	sequential(uniq)
	sequential(dups)
}
