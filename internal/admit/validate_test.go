package admit

import (
	"testing"

	"streamcalc/internal/units"
)

func TestReplayNoViolations(t *testing.T) {
	c := testPlatform(t)
	ops := []TraceOp{
		{Op: "admit", Flow: tenant("t1", 10*units.MiBPerSec)},
		{Op: "admit", Flow: tenant("t2", 15*units.MiBPerSec)},
		{Op: "admit", Flow: tenant("hog", 400*units.MiBPerSec)}, // rejected
		{Op: "release", ID: "t1"},
		{Op: "admit", Flow: tenant("t3", 20*units.MiBPerSec)},
	}
	rep, err := Replay(c, ops, ReplayOptions{Total: 4 * units.MiB, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != 3 || rep.Rejected != 1 {
		t.Errorf("admitted/rejected = %d/%d, want 3/1", rep.Admitted, rep.Rejected)
	}
	if rep.Violations != 0 {
		for _, s := range rep.Steps {
			for _, v := range s.Violations {
				t.Errorf("step %d (%s %s): %s", s.Index, s.Op, s.FlowID, v)
			}
		}
	}
	for _, s := range rep.Steps {
		if s.Op == "admit" && s.Verdict.Admitted {
			if !s.Simulated {
				t.Errorf("admitted flow %s was not simulated", s.FlowID)
			}
			if s.SimDelayMax > s.Verdict.Delay {
				t.Errorf("flow %s: simulated delay %v above promised %v",
					s.FlowID, s.SimDelayMax, s.Verdict.Delay)
			}
		}
	}
}

func TestReplayFlagsUnknownRelease(t *testing.T) {
	c := testPlatform(t)
	rep, err := Replay(c, []TraceOp{{Op: "release", ID: "ghost"}}, ReplayOptions{Total: units.MiB})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 1 {
		t.Errorf("unknown release must count as a violation, got %d", rep.Violations)
	}
}

func TestReplayRejectsUnknownOp(t *testing.T) {
	c := testPlatform(t)
	if _, err := Replay(c, []TraceOp{{Op: "pause"}}, ReplayOptions{}); err == nil {
		t.Error("unknown op must error")
	}
}
