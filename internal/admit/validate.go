package admit

import (
	"fmt"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/sim"
	"streamcalc/internal/units"
)

// TraceOp is one step of an admitted-flow trace: an admission attempt or a
// release.
type TraceOp struct {
	Op   string // "admit" or "release"
	Flow Flow   // admission candidate (Op == "admit")
	ID   string // flow to release (Op == "release")
}

// ReplayOptions tunes the validation replay.
type ReplayOptions struct {
	// Total is the input volume each admitted flow is simulated with
	// (default 8 MiB).
	Total units.Bytes
	// Seed seeds the simulator (replays are deterministic per seed).
	Seed uint64
	// ThroughputSlack is the relative tolerance when checking the measured
	// finite-run throughput against the promised sustained bound (drain
	// tails bias short runs low). Default 0.05.
	ThroughputSlack float64
}

// StepReport records one replayed trace operation and, for committed
// admissions, the simulated measurements against the promised bounds.
type StepReport struct {
	Index   int
	Op      string
	FlowID  string
	Verdict Verdict

	// Simulated reports that the flow was admitted and replayed through
	// the discrete-event simulator.
	Simulated     bool
	SimDelayMax   time.Duration
	SimMaxBacklog units.Bytes
	SimThroughput units.Rate

	// Violations lists promised bounds the simulation broke (empty when
	// the controller's promises held).
	Violations []string
}

// ReplayReport summarizes a trace replay.
type ReplayReport struct {
	Steps []StepReport
	// Admitted and Rejected count admission verdicts; Violations counts
	// simulated SLO violations across all steps (0 means every promise
	// held).
	Admitted, Rejected, Violations int
}

// Replay drives the controller through a trace of admit/release operations
// and validates every admission the controller grants by simulating the
// flow over its path at the residual service the co-resident reservations
// leave, asserting the promised delay, backlog, and throughput bounds hold.
func Replay(c *Controller, ops []TraceOp, opt ReplayOptions) (*ReplayReport, error) {
	if opt.Total <= 0 {
		opt.Total = 8 * units.MiB
	}
	if opt.ThroughputSlack <= 0 {
		opt.ThroughputSlack = 0.05
	}
	rep := &ReplayReport{}
	for i, op := range ops {
		step := StepReport{Index: i, Op: op.Op}
		switch op.Op {
		case "admit":
			step.FlowID = op.Flow.ID
			v := c.Admit(op.Flow)
			step.Verdict = v
			if !v.Admitted {
				rep.Rejected++
				break
			}
			rep.Admitted++
			if err := simulateAdmitted(c, op.Flow, v, opt, &step); err != nil {
				return nil, fmt.Errorf("admit: replay step %d (%s): %w", i, op.Flow.ID, err)
			}
		case "release":
			step.FlowID = op.ID
			if !c.Release(op.ID) {
				step.Violations = append(step.Violations,
					fmt.Sprintf("release of unknown flow %q", op.ID))
			}
		default:
			return nil, fmt.Errorf("admit: replay step %d: unknown op %q", i, op.Op)
		}
		rep.Violations += len(step.Violations)
		rep.Steps = append(rep.Steps, step)
	}
	return rep, nil
}

// simulateAdmitted replays one admitted flow through internal/sim. Each
// path node serves deterministically at its residual sustained rate (the
// worst case the admission analysis assumed), with the residual latency as
// a one-time startup; the measured delay, backlog, and throughput must
// respect the promised bounds.
func simulateAdmitted(c *Controller, f Flow, v Verdict, opt ReplayOptions, step *StepReport) error {
	sp, err := c.replaySim(f, opt)
	if err != nil {
		return err
	}
	res, err := sp.Run()
	if err != nil {
		return err
	}
	step.Simulated = true
	step.SimDelayMax = res.DelayMax
	step.SimMaxBacklog = res.MaxBacklog
	step.SimThroughput = res.Throughput
	step.Violations = append(step.Violations, boundViolations(v, f.SLO, res, opt.ThroughputSlack)...)
	return nil
}

// boundViolations checks one replay's measurements against the promised
// bounds and the flow's SLO, returning the violated dimensions. Shared by
// the -validate trace replay and the batch revalidation path.
func boundViolations(v Verdict, s SLO, res *sim.Result, slack float64) []string {
	var out []string
	if res.DelayMax > v.Delay+time.Microsecond {
		out = append(out, fmt.Sprintf(
			"simulated delay %v exceeds promised bound %v", res.DelayMax, v.Delay))
	}
	if float64(res.MaxBacklog) > float64(v.Backlog)+1 {
		out = append(out, fmt.Sprintf(
			"simulated backlog %v exceeds promised bound %v", res.MaxBacklog, v.Backlog))
	}
	if float64(res.Throughput) < float64(v.Throughput)*(1-slack) {
		out = append(out, fmt.Sprintf(
			"simulated throughput %v below promised bound %v", res.Throughput, v.Throughput))
	}
	if s.MaxDelay > 0 && res.DelayMax > s.MaxDelay {
		out = append(out, fmt.Sprintf(
			"simulated delay %v exceeds SLO max_delay %v", res.DelayMax, s.MaxDelay))
	}
	if s.MaxBacklog > 0 && float64(res.MaxBacklog) > float64(s.MaxBacklog)+1 {
		out = append(out, fmt.Sprintf(
			"simulated backlog %v exceeds SLO max_backlog %v", res.MaxBacklog, s.MaxBacklog))
	}
	if s.MinThroughput > 0 && float64(res.Throughput) < float64(s.MinThroughput)*(1-slack) {
		out = append(out, fmt.Sprintf(
			"simulated throughput %v below SLO min_throughput %v", res.Throughput, s.MinThroughput))
	}
	return out
}

// replaySim builds the replay simulation for admitted flow f: its offered
// envelope played into the residual service its co-residents leave (see
// residualStages). Shared by the -validate replay and the bound-tightness
// probe.
func (c *Controller) replaySim(f Flow, opt ReplayOptions) (*sim.Pipeline, error) {
	stages, packet, err := c.residualStages(f)
	if err != nil {
		return nil, err
	}
	if f.Arrival.MaxPacket > 0 {
		packet = f.Arrival.MaxPacket
	}
	src := sim.SourceConfig{
		Rate:       f.Arrival.Rate,
		PacketSize: packet,
		Burst:      f.Arrival.Burst,
		TotalInput: opt.Total,
	}
	if len(f.Arrival.Extra) > 0 {
		src.Envelope = append(src.Envelope, sim.EnvelopeBucket{
			Rate: f.Arrival.Rate, Burst: f.Arrival.Burst + f.Arrival.MaxPacket,
		})
		for _, b := range f.Arrival.Extra {
			src.Envelope = append(src.Envelope, sim.EnvelopeBucket{Rate: b.Rate, Burst: b.Burst})
		}
	}
	sp := sim.New(src, opt.Seed)
	for _, cfg := range stages {
		sp.Add(cfg)
	}
	return sp, nil
}

// residualStages builds the simulator stages for f's path: each node serves
// deterministically at the sustained rate of the residual service curve the
// flow's analysis rung assumed under the co-resident reservations
// (excluding f's own), with a one-time startup latency. At the blind rung
// the residual is the rate-latency curve [beta - cross]⁺, replayed exactly;
// at the FIFO rungs the chosen theta-shifted member is not expressible as a
// (rate, startup) stage, so the stage serves its minimal rate-latency
// majorant — at least the service the analysis assumed everywhere, so the
// analytic bounds must still dominate every replay observation. It also
// returns the first node's job size as the default source packet.
func (c *Controller) residualStages(f Flow) ([]sim.StageConfig, units.Bytes, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var exclude verdictKey
	excludeN := 0
	if cs, ok := c.flows[f.ID]; ok {
		exclude, excludeN = cs.key, 1
	}
	rung := c.rungFor(f)
	var thetas []float64
	if rung != core.RungBlind {
		// The per-node thetas the flow's analysis committed to. Analysis
		// errors (saturation) surface as replay errors, as before.
		a, err := core.AnalyzeMemo(c.pipelineFor(f, nil), c.memo)
		if err != nil {
			return nil, 0, err
		}
		thetas = make([]float64, len(a.Nodes))
		for i, na := range a.Nodes {
			thetas[i] = na.FIFOTheta
		}
	}
	var out []sim.StageConfig
	for i, name := range f.Path {
		sh := c.shards[name]
		sh.mu.RLock()
		node := sh.node
		agg := sh.aggregate(exclude, excludeN)
		sh.mu.RUnlock()

		crossRate := node.CrossRate + agg.Rate
		crossBurst := node.CrossBurst + agg.Burst
		// Theta is a time quantity, so the input-referred value from the
		// analysis carries over to the node-local curves unchanged.
		full := curve.RateLatency(float64(node.Rate), node.Latency.Seconds())
		var resid curve.Curve
		ok := true
		switch {
		case crossRate <= 0:
			resid = full
		case thetas != nil && thetas[i] > 0:
			resid, ok = curve.FIFOResidual(full, curve.Affine(float64(crossRate), float64(crossBurst)), thetas[i])
		default:
			resid, ok = curve.ResidualService(full, curve.Affine(float64(crossRate), float64(crossBurst)))
		}
		if !ok {
			return nil, 0, fmt.Errorf("node %s: reservations starve the node", node.Name)
		}
		residRate := units.Rate(resid.UltimateSlope())
		if residRate <= 0 {
			return nil, 0, fmt.Errorf("node %s: reservations starve the node", node.Name)
		}
		cfg := sim.StageFromRate(node.Name, residRate, residRate, node.JobIn, node.JobOut)
		cfg.Startup = time.Duration(majorantLatency(resid) * float64(time.Second))
		out = append(out, cfg)
	}
	return out, c.shards[f.Path[0]].node.JobIn, nil
}

// majorantLatency returns the latency L of the minimal rate-latency curve
// (at the residual's own sustained rate s) dominating resid: the largest L
// with s·(t-L) >= resid(t) everywhere, i.e. inf over t of t - resid(t)/s.
// Every slope of a residual curve is at most its ultimate slope, so t -
// resid(t)/s is non-decreasing between breakpoints and the infimum sits on
// a breakpoint (right limit, catching upward jumps). For a rate-latency
// resid — the blind rung — this is exactly its own latency.
func majorantLatency(resid curve.Curve) float64 {
	s := resid.UltimateSlope()
	if s <= 0 {
		return 0
	}
	lat := resid.Latency()
	best := lat
	for _, x := range resid.Breakpoints() {
		// Before the latency point the curve is zero and the majorant
		// constraint is vacuous.
		if x < lat {
			continue
		}
		if l := x - resid.Value(x)/s; l < best {
			best = l
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
