package admit

import (
	"sort"

	"streamcalc/internal/core"
	"streamcalc/internal/units"
)

// batchCand is one batch candidate that passed prechecks: its input
// position, class key, and standalone reservation.
type batchCand struct {
	idx     int
	f       Flow
	key     verdictKey
	contrib map[string]core.Bucket
}

// feasResult is the outcome of one transactional feasibility check: whether
// every SLO (existing and candidate) holds at the hypothetical final state,
// and the per-class admitted verdict templates (FlowID blank) when it does.
type feasResult struct {
	ok       bool
	verdicts map[verdictKey]Verdict
}

// AdmitBatch decides a batch of candidate flows as one transaction,
// returning one verdict per input in order. Either the whole batch commits
// under a single feasibility check of the final state — one analysis per
// flow *class* rather than per flow, and a single epoch bump — or the
// controller commits the largest prefix it can verify feasible, rejects the
// first infeasible candidate with an exact per-flow verdict, and continues
// with the remainder.
//
// Soundness never relies on bound monotonicity in cross traffic: a batch
// commit is atomic, so intermediate admission orders never exist — only
// explicitly verified states are ever committed. (Greediness does: in the
// model's non-monotone corners — see the job-aggregation cliff notes in the
// tests — the committed prefix may be smaller than what sequential
// admission would have reached.) Relative order within the batch is
// preserved, so the sequence of committed states is a deterministic
// function of (registry state, batch).
//
// This is the bulk-ramp path for cmd/ncload: populating a million-flow
// registry through AdmitBatch costs O(batches × classes) analyses instead
// of O(flows × classes).
//
// The feasibility analysis first runs optimistically under the registry
// read lock with per-node epoch dependency tracking; a short write-locked
// validate-and-commit section re-checks exactly those epochs. Batches whose
// dependency footprints are disjoint therefore analyze concurrently. A
// validation conflict (or an infeasible batch) falls back to the classic
// fully write-locked path below, which re-analyzes at a state that cannot
// move — conflicted analyses are never committed.
func (c *Controller) AdmitBatch(flows []Flow) []Verdict {
	tr := c.newTrace(KindBatch)
	out := make([]Verdict, len(flows))

	// Phase 1, outside the registry lock: spec prechecks and intra-batch
	// duplicate detection.
	cands := make([]batchCand, 0, len(flows))
	seen := make(map[string]struct{}, len(flows))
	epoch := c.epoch.Load()
	for i, f := range flows {
		if v, bad := c.precheck(f, epoch); bad {
			out[i] = v
			continue
		}
		if _, dup := seen[f.ID]; dup {
			out[i] = Verdict{FlowID: f.ID, Epoch: epoch, Binding: "spec",
				Reason: "rejected: duplicate flow ID within batch"}
			continue
		}
		seen[f.ID] = struct{}{}
		cands = append(cands, batchCand{idx: i, f: f, key: c.keyFor(f)})
	}
	tr.mark(PhasePrecheck)

	// Optimistic fast path: analyze under the read lock, validate the
	// observed per-node epochs under the write lock, commit.
	if c.admitBatchOptimistic(cands, out, tr) {
		tr.mark(PhaseValidateCommit)
		c.observeBatch(out, tr)
		return out
	}
	// A conflict (or an infeasible batch) sends the whole transaction to the
	// classic write-locked path; the unattributed validation window counts
	// as retry, the classic decision as fallback.
	tr.mark(PhaseRetry)
	tr.noteFallback()

	c.mu.Lock()
	// Phase 2, under the lock: re-check against flows committed since the
	// precheck, and resolve each candidate's standalone reservation.
	rem := cands[:0]
	for _, cd := range cands {
		if _, dup := c.flows[cd.f.ID]; dup {
			out[cd.idx] = Verdict{FlowID: cd.f.ID, Epoch: c.epoch.Load(), Binding: "spec",
				Reason: "rejected: flow \"" + cd.f.ID + "\" is already admitted"}
			continue
		}
		contrib, err := c.reservationFor(cd.f)
		if err != nil {
			out[cd.idx] = Verdict{FlowID: cd.f.ID, Epoch: c.epoch.Load(), Binding: "spec",
				Reason: "rejected: " + err.Error()}
			continue
		}
		cd.contrib = contrib
		rem = append(rem, cd)
	}

	// Phase 3: transactional feasibility, largest-verified-prefix fallback.
	for len(rem) > 0 {
		res := c.feasibleAt(rem, nil, tr)
		if res.ok {
			c.commitBatch(rem, res, out)
			break
		}
		// The full remainder is infeasible. Search for a large prefix that
		// verifies feasible (lo is always verified; hi always failed).
		lo, hi := 0, len(rem)
		var good feasResult
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if r := c.feasibleAt(rem[:mid], nil, tr); r.ok {
				lo, good = mid, r
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			c.commitBatch(rem[:lo], good, out)
		}
		// Boundary candidate: run the exact sequential decision so its
		// rejection names the binding constraint (or, in the model's
		// non-monotone corners, admits after all).
		bd := rem[lo]
		ep := c.epoch.Load()
		v, contrib := c.decide(bd.f, ep, nil, tr)
		if v.Admitted {
			c.commit(bd.key, bd.f, contrib, v)
			c.epoch.Add(1)
		}
		out[bd.idx] = v
		// Replay the rejection onto same-class candidates further down the
		// batch — the platform hasn't changed since the decision, exactly the
		// epoch-scoped verdict-cache contract.
		rest := rem[lo+1:]
		next := make([]batchCand, 0, len(rest))
		for _, cd := range rest {
			if !v.Admitted && cd.key == bd.key {
				vc := v
				vc.FlowID = cd.f.ID
				vc.Cached = true
				out[cd.idx] = vc
				continue
			}
			next = append(next, cd)
		}
		rem = next
	}
	c.mu.Unlock()

	tr.mark(PhaseFallback)
	c.observeBatch(out, tr)
	return out
}

// admitBatchOptimistic attempts the whole batch under the registry read
// lock: phase-2 duplicate/reservation checks and the full-batch feasibility
// analysis run against an epoch-stamped snapshot, then a short write-locked
// section validates that no observed node epoch moved and commits. It
// reports false — having written only state-independent verdicts into out —
// when the batch must take the classic write-locked path instead: on a
// validation conflict, or when the batch is infeasible as a whole (the
// prefix search wants the write lock anyway).
func (c *Controller) admitBatchOptimistic(cands []batchCand, out []Verdict, tr *decTrace) bool {
	type dupRej struct {
		idx int
		id  string
		v   Verdict
	}

	c.mu.RLock()
	rem := make([]batchCand, 0, len(cands))
	var dups []dupRej
	for _, cd := range cands {
		if _, dup := c.flows[cd.f.ID]; dup {
			dups = append(dups, dupRej{idx: cd.idx, id: cd.f.ID,
				v: Verdict{FlowID: cd.f.ID, Epoch: c.epoch.Load(), Binding: "spec",
					Reason: "rejected: flow \"" + cd.f.ID + "\" is already admitted"}})
			continue
		}
		contrib, err := c.reservationFor(cd.f)
		if err != nil {
			// Standalone reservations depend only on the pristine platform,
			// so this rejection holds regardless of how validation goes.
			out[cd.idx] = Verdict{FlowID: cd.f.ID, Epoch: c.epoch.Load(), Binding: "spec",
				Reason: "rejected: " + err.Error()}
			continue
		}
		cd.contrib = contrib
		rem = append(rem, cd)
	}
	tr.mark(PhaseAnalysis)
	var res feasResult
	sw := newSweep()
	sw.begin()
	if len(rem) > 0 {
		res = c.feasibleAt(rem, sw, tr)
	}
	c.mu.RUnlock()
	if len(rem) > 0 && !res.ok {
		return false
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.depsCurrent(sw) {
		c.noteConflict()
		return false
	}
	// A candidate's ID appearing, or a snapshot-time duplicate vanishing
	// (released concurrently), both invalidate the snapshot's verdicts.
	for i := range rem {
		if _, dup := c.flows[rem[i].f.ID]; dup {
			c.noteConflict()
			return false
		}
	}
	for _, d := range dups {
		if _, still := c.flows[d.id]; !still {
			c.noteConflict()
			return false
		}
	}
	for _, d := range dups {
		out[d.idx] = d.v
	}
	if len(rem) > 0 {
		c.commitBatch(rem, res, out)
	}
	return true
}

// feasibleAt checks whether committing every candidate in cands on top of
// the current registry keeps every SLO: each admitted class sharing a node
// with the additions, and each added class, is analyzed once at the
// hypothetical final state (its own single membership excluded from its
// cross traffic, as in sequential admission). The registry lock must be
// held in either mode — shard state only mutates under the write lock. A
// non-nil sw records the per-node epochs the analysis depended on, for
// optimistic validate-and-commit. A non-nil tr accrues the victim-sweep and
// candidate-analysis phases plus victim counts onto the decision trace.
func (c *Controller) feasibleAt(cands []batchCand, sw *sweep, tr *decTrace) feasResult {
	// Added-class roster: member counts, a representative spec per class,
	// and the set of touched nodes.
	addN := make(map[verdictKey]int)
	addRep := make(map[verdictKey]*batchCand)
	nodes := make(map[string]struct{})
	for i := range cands {
		cd := &cands[i]
		addN[cd.key]++
		if _, ok := addRep[cd.key]; !ok {
			addRep[cd.key] = cd
			for name := range cd.contrib {
				nodes[name] = struct{}{}
			}
		}
	}
	addKeys := make([]verdictKey, 0, len(addN))
	for k := range addN {
		addKeys = append(addKeys, k)
	}
	sort.Slice(addKeys, func(i, j int) bool { return keyLess(addKeys[i], addKeys[j]) })

	epoch := c.epoch.Load()
	res := feasResult{verdicts: make(map[verdictKey]Verdict, len(addKeys))}

	check := func(arrival core.Arrival, path []string, slo SLO, self verdictKey) (*core.Analysis, bounds, bool) {
		sw.addPath(c, path)
		// self is the analyzed class's own key, so every class — existing
		// victim or batch addition — is checked at the rung it is (being)
		// admitted at.
		p := core.Pipeline{Name: c.name + "/shared", Arrival: arrival, Rung: self.rung}
		for _, name := range path {
			sh := c.shards[name]
			n := sh.node
			agg := c.hypAggregate(sh, addKeys, addN, addRep, name, self)
			n.CrossRate += agg.Rate
			n.CrossBurst += agg.Burst
			p.Nodes = append(p.Nodes, n)
		}
		a, err := core.AnalyzeMemo(p, c.memo)
		if err != nil {
			return nil, bounds{}, false
		}
		b := boundsOf(a)
		if sloViolation(slo, a, b) != nil {
			return nil, bounds{}, false
		}
		return a, b, true
	}

	// Existing classes touching any added node must keep their SLOs.
	for _, k := range c.sortedClassKeys() {
		cs := c.classes[k]
		touched := false
		for _, name := range cs.path {
			if _, hit := nodes[name]; hit {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		tr.noteVictim()
		if _, _, ok := check(cs.arrival, cs.path, cs.slo, k); !ok {
			tr.mark(PhaseVictimSweep)
			return feasResult{}
		}
	}
	tr.mark(PhaseVictimSweep)

	// Added classes must meet their own SLOs at the final state; their
	// analyses become the admitted verdict templates.
	for _, k := range addKeys {
		rep := addRep[k]
		a, b, ok := check(rep.f.Arrival, rep.f.Path, rep.f.SLO, k)
		if !ok {
			tr.mark(PhaseAnalysis)
			return feasResult{}
		}
		v := Verdict{Admitted: true, Epoch: epoch, Rung: k.rung.String()}
		v.Delay, v.Backlog, v.Throughput = b.delay, b.backlog, b.throughput
		bn := rep.f.Path[a.BottleneckIndex]
		v.Bottleneck = bn
		sh := c.shards[bn]
		full := c.hypAggregate(sh, addKeys, addN, addRep, bn, verdictKey{})
		v.HeadroomRate = sh.node.Rate - sh.node.CrossRate - full.Rate
		v.Reason = "admitted (batch): delay " + b.delay.String() +
			" <= " + orAny(rep.f.SLO.MaxDelay > 0, rep.f.SLO.MaxDelay) +
			", throughput " + b.throughput.String() +
			" >= " + orAny(rep.f.SLO.MinThroughput > 0, rep.f.SLO.MinThroughput) +
			"; bottleneck " + bn
		res.verdicts[k] = v
	}
	tr.mark(PhaseAnalysis)
	res.ok = true
	return res
}

// hypAggregate sums the node's hosted reservations plus the batch additions
// in global keyLess order (a sorted merge of the shard's classes and the
// added classes), minus one member of class self — the same deterministic
// summation discipline as shard.aggregate, extended with the hypothetical
// members. The registry lock must be held in either mode.
func (c *Controller) hypAggregate(sh *shard, addKeys []verdictKey, addN map[verdictKey]int, addRep map[verdictKey]*batchCand, node string, self verdictKey) core.Bucket {
	var out core.Bucket
	add := func(b core.Bucket, n int) {
		if n <= 0 {
			return
		}
		out.Rate += b.Rate * units.Rate(n)
		out.Burst += b.Burst * units.Bytes(n)
	}
	i, j := 0, 0
	for i < len(sh.keys) || j < len(addKeys) {
		var k verdictKey
		var b core.Bucket
		n := 0
		takeShard := j >= len(addKeys) ||
			(i < len(sh.keys) && !keyLess(addKeys[j], sh.keys[i]))
		takeAdd := i >= len(sh.keys) ||
			(j < len(addKeys) && !keyLess(sh.keys[i], addKeys[j]))
		if takeShard {
			k = sh.keys[i]
			e := sh.classes[k]
			b, n = e.b, e.n
			i++
		}
		if takeAdd {
			k = addKeys[j]
			if ab, hosted := addRep[k].contrib[node]; hosted {
				b = ab // equals the shard entry's bucket when both exist
				n += addN[k]
			}
			j++
		}
		if k == self {
			n--
		}
		add(b, n)
	}
	return out
}

// commitBatch registers every candidate under its class template verdict
// and bumps the epoch once. The registry write lock must be held.
func (c *Controller) commitBatch(cands []batchCand, res feasResult, out []Verdict) {
	for i := range cands {
		cd := &cands[i]
		v := res.verdicts[cd.key]
		v.FlowID = cd.f.ID
		out[cd.idx] = v
		c.commit(cd.key, cd.f, cd.contrib, v)
	}
	c.epoch.Add(1)
}

// observeBatch records one batch transaction on the attached telemetry
// sinks: per-verdict counters, a batch counter, a flight-recorder record,
// and a single audit line (per-flow audit at bulk-ramp rates would swamp
// the log).
func (c *Controller) observeBatch(out []Verdict, tr *decTrace) {
	if tr == nil {
		return
	}
	tr.mark(PhaseHandoff)
	took := tr.span.Total()
	admitted, rejected := 0, 0
	for i := range out {
		if out[i].Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	tr.batchN, tr.batchAdm = len(out), admitted

	rec := tr.record(took)
	rec.Admitted = admitted > 0
	seq := c.pushRecord(rec)

	if m := c.obsm; m != nil {
		m.admitted.Add(uint64(admitted))
		m.rejected.Add(uint64(rejected))
		m.reg.Counter("nc_admit_batches_total", "batch admission transactions").Inc()
		m.observeDecisionLatency(took, seq, "")
	}
	if c.audit != nil {
		c.audit.Info("admit.batch",
			"flows", len(out),
			"admitted", admitted,
			"rejected", rejected,
			"decision_us", took.Microseconds(),
		)
	}
}
