// Package admit implements online multi-tenant flow admission control over
// a shared heterogeneous platform, the service-oriented extension of the
// paper's offline pipeline analysis.
//
// A platform is a set of named nodes (internal/core measurements: sustained
// rate, latency, job sizes). Tenants submit flows: an arrival envelope, an
// ordered path of platform nodes, and an SLO (maximum delay, maximum
// backlog, minimum guaranteed throughput). The controller keeps a live
// registry of admitted flows and, for each candidate, decides whether the
// platform can still meet every admitted flow's SLO:
//
//   - each admitted flow reserves a leaky-bucket contribution at every node
//     of its path (its standalone propagated arrival bound, referred to the
//     node's local units — a deterministic function of the flow and the
//     platform, so bookkeeping is independent of admission order);
//   - a node's residual service curve is its rate-latency curve minus the
//     aggregate cross traffic of the flows it hosts — blind multiplexing
//     ([beta - cross]⁺) by default, or a tighter member of the FIFO
//     left-over family when the flow's analysis rung asks for one (see
//     core.Rung: the controller carries a default, each flow may override);
//   - a candidate is checked by running core.Analyze on its path with the
//     co-resident contributions as cross traffic, and every co-resident
//     flow sharing a node is re-checked with the candidate's contributions
//     added. Only if all SLOs hold is the candidate committed.
//
// # Scaling: flow classes
//
// The registry groups admitted flows into *classes*: flows with identical
// arrival envelopes (by structural curve digest), paths, and SLOs. Every
// member of a class has the same per-node reservation, the same analysis,
// and the same admissibility — so victim re-checks run once per class, not
// once per flow, and a node's aggregate cross traffic is the sorted-order
// sum over classes of (per-member bucket × member count). With a bounded
// number of tenant templates (the realistic shape: plans, tiers, device
// models) a registry holding millions of flows does per-admission work
// proportional to the number of *classes*, and per-flow state shrinks to
// two map entries. The batch admission path (AdmitBatch, batch.go) rides
// the same structure to ramp large populations transactionally.
//
// # Concurrency: optimistic analysis, per-node epochs, group commit
//
// State is sharded by node with per-shard locks so residual-curve queries
// never contend with each other. Every node carries its own epoch,
// advanced whenever its hosted reservation set changes. The expensive part
// of an admission — the candidate analysis and the victim sweep — runs
// under the registry *read* lock against an epoch-stamped snapshot,
// recording the epoch of every node it reads (the candidate's path plus
// the path of every analyzed victim class); a short validate-and-commit
// write section then re-checks exactly those epochs and commits, retrying
// the sweep on conflict — re-analyzing only classes whose node epochs
// actually moved — and falling back to the fully write-locked classic path
// after bounded retries. Only analyzed states ever commit: a conflicted
// retry re-analyzes rather than assuming the bounds are monotone in cross
// traffic (the job-aggregation cliff breaks monotonicity).
//
// Concurrent Admit/Release callers coalesce through a group-commit
// combiner (group.go): one caller at a time becomes the leader, drains the
// queue, commits pending releases first, and decides the queued admissions
// as one transactional group — a single sweep amortized over every waiting
// caller, which is what turns k concurrent clients into ~k× admission
// throughput even on one core.
//
// Verdict rejections are cached keyed by (arrival-envelope digest, path,
// SLO, analysis rung) — curve digests rather than spec hashes, so two specs
// with identical curves share one cache entry regardless of flow ID — and
// each entry pins the node epochs its analysis observed, so a commit on a
// disjoint path invalidates nothing. Reservations are likewise cached on
// (envelope digest, path, rung), and all analyses run through a
// controller-wide core.Memo so candidate and victim re-checks never
// recompute an identical pipeline.
package admit

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// SLO is the service-level objective a tenant requests for a flow. Zero
// fields are unconstrained.
type SLO struct {
	// MaxDelay bounds the end-to-end virtual delay (horizontal deviation).
	MaxDelay time.Duration
	// MaxBacklog bounds the end-to-end data occupancy (vertical deviation).
	MaxBacklog units.Bytes
	// MinThroughput is the guaranteed sustained throughput the flow needs
	// (checked against the analysis' lower throughput bound).
	MinThroughput units.Rate
}

// Flow is a tenant flow offered for admission.
type Flow struct {
	// ID identifies the flow; must be unique among admitted flows.
	ID string
	// Arrival is the flow's offered envelope in the units of the first
	// path node's input.
	Arrival core.Arrival
	// Path lists platform node names the flow traverses, in order.
	Path []string
	// SLO is what the tenant asks the platform to guarantee.
	SLO SLO
	// Rung selects the multi-flow analysis tightness for this flow
	// (core.RungBlind/RungFIFO/RungTight); core.RungDefault defers to the
	// controller's default (SetRung). Tighter rungs cost more analysis per
	// decision but admit strictly more load at identical SLOs.
	Rung core.Rung
}

// Verdict is the outcome of an admission check, with the explanation the
// API returns to tenants.
type Verdict struct {
	FlowID   string
	Admitted bool
	// Reason is a human-readable explanation of the decision.
	Reason string
	// Binding names the binding constraint: "max_delay", "max_backlog",
	// "min_throughput", "saturation", "victim:<id>", or "" when admitted
	// with headroom.
	Binding string

	// Promised bounds for the admitted flow (valid when Admitted).
	Delay      time.Duration
	Backlog    units.Bytes
	Throughput units.Rate
	// Bottleneck is the path node with the least input-referred residual
	// rate.
	Bottleneck string
	// HeadroomRate is the remaining service rate at the bottleneck node
	// (local units) after this flow's reservation.
	HeadroomRate units.Rate

	// Rung is the analysis tightness rung the decision ran at ("blind",
	// "fifo" or "tight") — the flow's own override, or the controller
	// default when unset.
	Rung string

	// Epoch is the platform epoch the verdict was computed at; Cached
	// reports a verdict served from the cache.
	Epoch  uint64
	Cached bool
}

// verdictKey identifies an admission question independently of the flow ID:
// the structural digest of the arrival envelope (curve.Curve.Digest), the
// arrival packetizer size, the path, the SLO, and the resolved analysis
// rung (two flows analyzed at different tightness are different admission
// questions with different reservations and verdicts). Two specs with
// identical curves map to the same key; the key doubles as the registry's
// flow-class identity and (with a zero SLO) the reservation-cache key.
type verdictKey struct {
	alpha uint64 // arrival envelope digest
	lmax  units.Bytes
	path  string // node names joined with NUL
	slo   SLO
	rung  core.Rung // resolved, never RungDefault
}

// keyLess is a total order over class keys, fixing the summation order of
// aggregates and the victim-check iteration order so both are deterministic
// functions of the admitted population (independent of arrival order).
func keyLess(a, b verdictKey) bool {
	if a.alpha != b.alpha {
		return a.alpha < b.alpha
	}
	if a.lmax != b.lmax {
		return a.lmax < b.lmax
	}
	if a.path != b.path {
		return a.path < b.path
	}
	if a.slo.MaxDelay != b.slo.MaxDelay {
		return a.slo.MaxDelay < b.slo.MaxDelay
	}
	if a.slo.MaxBacklog != b.slo.MaxBacklog {
		return a.slo.MaxBacklog < b.slo.MaxBacklog
	}
	if a.slo.MinThroughput != b.slo.MinThroughput {
		return a.slo.MinThroughput < b.slo.MinThroughput
	}
	return a.rung < b.rung
}

// shardEntry is one class's footprint on one node: the per-member reserved
// bucket and how many admitted members hold it.
type shardEntry struct {
	b core.Bucket // per-member reservation (local units)
	n int         // admitted members
}

// shard holds the per-node slice of controller state, guarded by its own
// lock so residual queries on different nodes never contend. Mutations
// additionally happen only under the registry write lock, so holders of the
// registry lock (either mode) may read shard state without the shard lock.
//
// epoch is the node's own modification counter: it advances (under the
// registry write lock) whenever the node's hosted reservation set changes.
// Optimistic admissions snapshot the epochs of every node their analysis
// read and re-check them at commit time; the verdict cache validates its
// entries the same way, so a commit on a disjoint path invalidates nothing.
type shard struct {
	mu      sync.RWMutex
	node    core.Node
	idx     int // position in Controller.byIdx (dense epoch addressing)
	epoch   atomic.Uint64
	classes map[verdictKey]*shardEntry
	keys    []verdictKey // classes keys, kept sorted by keyLess
	nflows  int          // total members hosted (sum of entry counts)
}

// insert adds m members of class k reserving bucket b each. Callers must
// hold the shard write lock.
func (s *shard) insert(k verdictKey, b core.Bucket, m int) {
	if e, ok := s.classes[k]; ok {
		e.n += m
	} else {
		i := sort.Search(len(s.keys), func(i int) bool { return !keyLess(s.keys[i], k) })
		s.keys = append(s.keys, verdictKey{})
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = k
		s.classes[k] = &shardEntry{b: b, n: m}
	}
	s.nflows += m
}

// remove drops m members of class k. Callers must hold the shard write lock.
func (s *shard) remove(k verdictKey, m int) {
	e, ok := s.classes[k]
	if !ok {
		return
	}
	e.n -= m
	s.nflows -= m
	if e.n <= 0 {
		delete(s.classes, k)
		i := sort.Search(len(s.keys), func(i int) bool { return !keyLess(s.keys[i], k) })
		if i < len(s.keys) && s.keys[i] == k {
			s.keys = append(s.keys[:i], s.keys[i+1:]...)
		}
	}
}

// aggregate sums the reserved buckets of hosted members in sorted class
// order — per class one multiply (bucket × count), so the cost is
// O(classes) regardless of how many flows the node hosts, and the result is
// a deterministic function of the admitted population. excludeN members of
// class exclude are left out (0 means none). Callers must hold the shard
// lock (any mode) or the registry lock.
func (s *shard) aggregate(exclude verdictKey, excludeN int) core.Bucket {
	var b core.Bucket
	for _, k := range s.keys {
		e := s.classes[k]
		n := e.n
		if excludeN > 0 && k == exclude {
			n -= excludeN
		}
		if n <= 0 {
			continue
		}
		b.Rate += e.b.Rate * units.Rate(n)
		b.Burst += e.b.Burst * units.Bytes(n)
	}
	return b
}

// classState is one admitted flow class: the shared spec, reservation, the
// latest admission verdict (ID-independent), and the member IDs.
type classState struct {
	key     verdictKey
	arrival core.Arrival
	path    []string
	slo     SLO
	contrib map[string]core.Bucket // node name -> per-member bucket (local units)
	verdict Verdict                // latest admission verdict, FlowID blank
	ids     map[string]struct{}    // member flow IDs

	// minID caches the lexicographically smallest member for victim-naming;
	// recomputed lazily after the minimum is released.
	minID    string
	minValid bool
}

// flowFor reconstructs the admit.Flow of member id. The rung is the
// resolved one the class was admitted at, pinned explicitly so later
// SetRung calls never silently re-ladder admitted classes.
func (cs *classState) flowFor(id string) Flow {
	return Flow{ID: id, Arrival: cs.arrival, Path: cs.path, SLO: cs.slo, Rung: cs.key.rung}
}

func (cs *classState) addID(id string) {
	cs.ids[id] = struct{}{}
	if !cs.minValid || id < cs.minID {
		// A smaller id keeps the cache exact; when invalid it stays invalid
		// unless this is the only member.
		if cs.minValid || len(cs.ids) == 1 {
			cs.minID, cs.minValid = id, true
		} else if id < cs.minID {
			cs.minID = id
		}
	}
}

func (cs *classState) removeID(id string) {
	delete(cs.ids, id)
	if cs.minValid && id == cs.minID {
		cs.minValid = false
	}
}

// representative returns the smallest member ID (for victim-naming in
// rejection reasons), rescanning only when the cached minimum was released.
func (cs *classState) representative() string {
	if !cs.minValid {
		first := true
		for id := range cs.ids {
			if first || id < cs.minID {
				cs.minID = id
				first = false
			}
		}
		cs.minValid = len(cs.ids) > 0
	}
	return cs.minID
}

// Controller is a concurrent-safe admission controller over one platform.
type Controller struct {
	name   string
	shards map[string]*shard
	order  []string // node names in platform order, for stable reports
	byIdx  []*shard // shards addressed by shard.idx (platform order)

	// rung is the default analysis tightness for flows that do not carry
	// their own (SetRung; zero value resolves to blind). Set before serving
	// traffic, immutable afterwards.
	rung core.Rung

	mu      sync.RWMutex // guards flows/classes and commit/release transactions
	flows   map[string]*classState
	classes map[verdictKey]*classState

	// epoch is the coarse global commit counter (one bump per committed
	// admission, release, or batch transaction) kept for external
	// observability and snapshot comparison; fine-grained invalidation is
	// per-node (shard.epoch).
	epoch atomic.Uint64

	// Group-commit combiner (group.go): concurrent Admit/Release callers
	// enqueue tickets; one caller at a time becomes the leader, drains the
	// queue, and decides the whole group in a single read-locked sweep with
	// one validate-and-commit write section.
	qmu       sync.Mutex
	queue     []*ticket
	leaderSem chan struct{}

	// conflicts counts validate-and-commit sections that found a stale
	// node epoch and had to retry (or fall back to the write-locked path).
	conflicts atomic.Uint64

	// memo caches whole-pipeline analyses across admission probes (the same
	// standalone, candidate, and victim pipelines recur constantly).
	memo *core.Memo

	cacheMu   sync.Mutex
	cache     map[verdictKey]cacheEntry
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64

	// resCache maps (arrival-envelope digest, path) to the flow's standalone
	// per-node reservation — a deterministic function of curves and path, so
	// it survives epochs and is shared across flow IDs.
	resMu    sync.Mutex
	resCache map[verdictKey]map[string]core.Bucket

	// Telemetry sinks (nil when detached): metric handles from EnableObs,
	// the structured audit logger from SetAudit (obs.go), and the decision
	// flight recorder from EnableFlightRecorder (trace.go).
	obsm  *ctrlObs
	audit *slog.Logger
	rec   *FlightRecorder
}

// New builds a controller for a platform of uniquely named nodes. Node
// parameters are validated with the core model's rules; nodes may carry
// static CrossRate/CrossBurst for non-tenant background traffic.
func New(name string, nodes []core.Node) (*Controller, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("admit: platform %q has no nodes", name)
	}
	c := &Controller{
		name:      name,
		shards:    make(map[string]*shard, len(nodes)),
		flows:     make(map[string]*classState),
		classes:   make(map[verdictKey]*classState),
		leaderSem: make(chan struct{}, 1),
		memo:      core.NewMemo(),
		cache:     make(map[verdictKey]cacheEntry),
		resCache:  make(map[verdictKey]map[string]core.Bucket),
	}
	for i, n := range nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("admit: node %d has no name", i)
		}
		if _, dup := c.shards[n.Name]; dup {
			return nil, fmt.Errorf("admit: duplicate node name %q", n.Name)
		}
		probe := core.Pipeline{
			Arrival: core.Arrival{Rate: 1},
			Nodes:   []core.Node{n},
		}
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("admit: %w", err)
		}
		sh := &shard{node: n, idx: len(c.byIdx), classes: make(map[verdictKey]*shardEntry)}
		c.shards[n.Name] = sh
		c.byIdx = append(c.byIdx, sh)
		c.order = append(c.order, n.Name)
	}
	return c, nil
}

// Name returns the platform name.
func (c *Controller) Name() string { return c.name }

// SetRung sets the controller's default analysis tightness rung, applied to
// every flow whose own Rung is core.RungDefault. Call before serving
// traffic: the field is read without synchronization on the decision path,
// and admitted classes keep the rung they were admitted at regardless.
func (c *Controller) SetRung(r core.Rung) { c.rung = r }

// DefaultRung returns the controller's resolved default rung.
func (c *Controller) DefaultRung() core.Rung { return c.rung.Resolved() }

// rungFor resolves the analysis rung for f: the flow's own override when
// set, the controller default otherwise. Never returns RungDefault.
func (c *Controller) rungFor(f Flow) core.Rung {
	if f.Rung != core.RungDefault {
		return f.Rung.Resolved()
	}
	return c.rung.Resolved()
}

// Epoch returns the current platform epoch; it increments on every
// successful admit or release (once per batch transaction). It is a coarse
// change detector for snapshots and replays; cache invalidation is scoped
// by the per-node epochs (see EpochStats).
func (c *Controller) Epoch() uint64 { return c.epoch.Load() }

// EpochStats summarizes the per-node epoch vector in O(nodes): the maximum
// node epoch and the number of distinct epoch values across nodes. A
// distinct count above 1 is the signature of path-scoped commits — disjoint
// paths advancing independently instead of every commit touching every
// node.
func (c *Controller) EpochStats() (max uint64, distinct int) {
	seen := make(map[uint64]struct{}, len(c.byIdx))
	for _, sh := range c.byIdx {
		e := sh.epoch.Load()
		if e > max {
			max = e
		}
		seen[e] = struct{}{}
	}
	return max, len(seen)
}

// NodeEpochs returns the per-node epoch of every platform node in
// declaration order, keyed by node name. O(nodes), lock-free.
func (c *Controller) NodeEpochs() map[string]uint64 {
	out := make(map[string]uint64, len(c.byIdx))
	for _, sh := range c.byIdx {
		out[sh.node.Name] = sh.epoch.Load()
	}
	return out
}

// CommitConflicts returns the cumulative count of optimistic
// validate-and-commit sections that observed a stale node epoch and had to
// retry or fall back.
func (c *Controller) CommitConflicts() uint64 { return c.conflicts.Load() }

// NodeNames returns the platform node names in declaration order.
func (c *Controller) NodeNames() []string { return append([]string(nil), c.order...) }

// FlowCount returns the number of admitted flows in O(1) — unlike
// len(Flows()), which materializes a sorted snapshot.
func (c *Controller) FlowCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.flows)
}

// ClassCount returns the number of distinct flow classes (flows sharing
// arrival curves, path, and SLO) currently admitted. Per-admission work
// scales with this figure, not with FlowCount.
func (c *Controller) ClassCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.classes)
}

// --- Admission -------------------------------------------------------------

// Admit decides whether f can join the platform without breaking any SLO,
// committing the reservation when it can. The verdict always explains the
// decision; rejected flows leave the platform untouched. With telemetry
// attached (EnableObs/SetAudit) every decision is counted, its latency
// recorded, and an audit line emitted.
func (c *Controller) Admit(f Flow) Verdict {
	tr := c.newTrace(KindAdmit)
	v := c.admit(f, tr)
	if tr != nil {
		c.observeAdmit(v, tr)
	}
	return v
}

func (c *Controller) admit(f Flow, tr *decTrace) Verdict {
	epoch := c.epoch.Load()
	// Spec and identity checks run before the cache probe: the verdict cache
	// is keyed on curves, not IDs, so ID problems (and arrivals too malformed
	// to build a curve from) must never reach it.
	if v, bad := c.precheck(f, epoch); bad {
		tr.mark(PhasePrecheck)
		return v
	}
	key := c.keyFor(f)
	if v, ok := c.cachedVerdict(key); ok {
		// The cached verdict is ID-independent; stamp the asking flow's ID.
		v.FlowID = f.ID
		tr.mark(PhasePrecheck)
		return v
	}
	tr.mark(PhasePrecheck)
	// Hand the decision to the group-commit combiner (group.go): an
	// uncontended caller becomes the leader and decides immediately via the
	// optimistic read-locked path; under concurrency, queued admissions are
	// analyzed together so one victim sweep serves the whole group.
	return c.submit(&ticket{kind: tkAdmit, f: f, key: key, tr: tr}).v
}

// commit registers flow f (already decided admissible) under class key and
// advances the epoch of every node the reservation touches. Callers must
// hold the registry write lock.
func (c *Controller) commit(key verdictKey, f Flow, contrib map[string]core.Bucket, v Verdict) {
	cs, ok := c.classes[key]
	if !ok {
		cs = &classState{
			key:     key,
			arrival: f.Arrival,
			path:    append([]string(nil), f.Path...),
			slo:     f.SLO,
			contrib: contrib,
			ids:     make(map[string]struct{}),
		}
		c.classes[key] = cs
	}
	cs.addID(f.ID)
	tv := v
	tv.FlowID = "" // the stored template is ID-independent
	cs.verdict = tv
	c.flows[f.ID] = cs
	for name, b := range contrib {
		sh := c.shards[name]
		sh.mu.Lock()
		sh.insert(key, b, 1)
		sh.mu.Unlock()
		sh.epoch.Add(1)
	}
}

// precheck runs the ID and spec checks that must precede the (ID-agnostic)
// verdict cache probe. bad is true when v is a rejection to return as-is;
// these rejections are never cached.
func (c *Controller) precheck(f Flow, epoch uint64) (v Verdict, bad bool) {
	v = Verdict{FlowID: f.ID, Epoch: epoch, Admitted: false}
	reject := func(binding, format string, args ...any) (Verdict, bool) {
		v.Binding = binding
		v.Reason = "rejected: " + fmt.Sprintf(format, args...)
		return v, true
	}
	if f.ID == "" {
		return reject("spec", "flow has no ID")
	}
	if len(f.Path) == 0 {
		return reject("spec", "flow %q has an empty path", f.ID)
	}
	for _, name := range f.Path {
		if _, ok := c.shards[name]; !ok {
			return reject("spec", "unknown platform node %q", name)
		}
	}
	if err := f.Arrival.Validate(); err != nil {
		return reject("spec", "%v", err)
	}
	c.mu.RLock()
	_, dup := c.flows[f.ID]
	c.mu.RUnlock()
	if dup {
		return reject("spec", "flow %q is already admitted", f.ID)
	}
	return v, false
}

// keyFor builds the ID-independent cache key for f. The arrival must have
// passed precheck (Envelope panics on malformed buckets).
func (c *Controller) keyFor(f Flow) verdictKey {
	return verdictKey{
		alpha: f.Arrival.Envelope().Digest(),
		lmax:  f.Arrival.MaxPacket,
		path:  strings.Join(f.Path, "\x00"),
		slo:   f.SLO,
		rung:  c.rungFor(f),
	}
}

// decide runs all admission checks without mutating state, returning the
// verdict and (when admitted) the reservation to commit. The registry lock
// must be held — the write lock on the classic path (sw == nil), or the
// read lock on the optimistic path, where sw records every node whose state
// the analysis read (the dependency closure: the candidate's path plus the
// path of every victim class analyzed) so the commit section can validate
// the snapshot against the per-node epochs. Precheck must have passed.
// Rejection reasons never mention the candidate's ID: they are cached and
// replayed for any flow with the same curves, path, and SLO.
func (c *Controller) decide(f Flow, epoch uint64, sw *sweep, tr *decTrace) (Verdict, map[string]core.Bucket) {
	v := Verdict{FlowID: f.ID, Epoch: epoch, Rung: c.rungFor(f).String()}
	// phase is what a rejection return attributes the elapsed time to; it
	// flips to the victim-sweep phase when the victim loop starts.
	phase := PhaseAnalysis
	reject := func(binding, format string, args ...any) (Verdict, map[string]core.Bucket) {
		v.Admitted = false
		v.Binding = binding
		v.Reason = "rejected: " + fmt.Sprintf(format, args...)
		tr.mark(phase)
		return v, nil
	}

	if _, dup := c.flows[f.ID]; dup {
		// Re-check under the lock (precheck ran before it).
		return reject("spec", "flow %q is already admitted", f.ID)
	}

	// Standalone reservation: the flow's propagated arrival bound at each
	// path node on the pristine platform (no co-resident reservations), so
	// the reservation is a deterministic function of (flow, platform).
	// Errors here are spec errors (bad arrival, starved platform node, ...).
	contrib, err := c.reservationFor(f)
	if err != nil {
		return reject("spec", "%v", err)
	}

	sw.addPath(c, f.Path)

	// Candidate analysis under the current co-resident cross traffic.
	// Saturation (aggregate cross >= node rate) surfaces as an Analyze
	// validation error.
	a, err := core.AnalyzeMemo(c.pipelineFor(f, nil), c.memo)
	if err != nil {
		return reject("saturation", "%v", err)
	}
	tr.noteRungSearch(a.TightCombos, a.TightPruned)
	b := boundsOf(a)
	if bad := sloViolation(f.SLO, a, b); bad != nil {
		return reject(bad.binding, "%s", bad.detail)
	}

	// Victim check: every admitted class sharing a node must keep its SLO
	// with the candidate's reservation added as cross traffic. One analysis
	// covers every member of a class — they are interchangeable. On a
	// conflict retry, classes whose node epochs are unchanged since the
	// previous attempt analyzed them are reused without re-analysis: the
	// sweep is scoped to the classes whose aggregates actually changed.
	tr.mark(PhaseAnalysis)
	phase = PhaseVictimSweep
	for _, k := range c.sortedClassKeys() {
		cs := c.classes[k]
		if !sharesNode(cs.path, f.Path) {
			continue
		}
		if sw.victimOK(c, k, cs.path) {
			tr.noteReuse()
			continue
		}
		tr.noteVictim()
		// Victims are re-analyzed at their own admitted rung, not the
		// candidate's: a tight-rung candidate must not loosen (or tighten)
		// the promises already made to blind-rung classes.
		p := c.buildPipeline(cs.arrival, cs.path, k.rung, k, 1, contrib)
		ga, err := core.AnalyzeMemo(p, c.memo)
		if err != nil {
			return reject("victim:"+cs.representative(),
				"admitting this flow would starve flow %q: %v", cs.representative(), err)
		}
		tr.noteRungSearch(ga.TightCombos, ga.TightPruned)
		if bad := sloViolation(cs.slo, ga, boundsOf(ga)); bad != nil {
			return reject("victim:"+cs.representative(),
				"admitting this flow would break flow %q: %s", cs.representative(), bad.detail)
		}
		sw.recordVictim(c, k, cs.path)
	}
	tr.mark(PhaseVictimSweep)

	// Admitted: promised bounds, bottleneck, and residual headroom with
	// the candidate's own reservation counted.
	v.Admitted = true
	v.Delay = b.delay
	v.Backlog = b.backlog
	v.Throughput = b.throughput
	bn := f.Path[a.BottleneckIndex]
	v.Bottleneck = bn
	sh := c.shards[bn]
	agg := sh.aggregate(verdictKey{}, 0)
	v.HeadroomRate = sh.node.Rate - sh.node.CrossRate - agg.Rate - contrib[bn].Rate
	v.Reason = fmt.Sprintf(
		"admitted: delay %v <= %s, backlog %v <= %s, throughput %v >= %s; bottleneck %s, residual headroom %v",
		b.delay, orAny(f.SLO.MaxDelay > 0, f.SLO.MaxDelay),
		b.backlog, orAny(f.SLO.MaxBacklog > 0, f.SLO.MaxBacklog),
		b.throughput, orAny(f.SLO.MinThroughput > 0, f.SLO.MinThroughput),
		bn, v.HeadroomRate)
	return v, contrib
}

// orAny renders an SLO field, or "(any)" when unconstrained.
func orAny(constrained bool, v any) string {
	if !constrained {
		return "(any)"
	}
	return fmt.Sprint(v)
}

// reservationFrom converts a standalone analysis into per-node leaky-bucket
// reservations in node-local units. The propagated arrival bound AlphaIn is
// input-referred; multiplying by the gain chain restores local bytes.
// Using the standalone (uncontended) propagation makes the reservation a
// deterministic function of (flow, platform): bookkeeping is associative
// and independent of admission order. It is exact at the path entry and an
// approximation downstream (contention smooths real traffic less than the
// uncontended bound assumes); the -validate sim replay checks the promised
// bounds end to end.
func reservationFrom(f Flow, a *core.Analysis) map[string]core.Bucket {
	out := make(map[string]core.Bucket, len(f.Path))
	for i, na := range a.Nodes {
		rate, offset := na.AlphaIn.UltimateAffine()
		b := core.Bucket{
			Rate:  units.Rate(rate * na.GainBefore),
			Burst: units.Bytes(math.Max(0, offset) * na.GainBefore),
		}
		// A flow visiting the same node twice reserves the sum of both
		// visits.
		prev := out[f.Path[i]]
		out[f.Path[i]] = core.Bucket{Rate: prev.Rate + b.Rate, Burst: prev.Burst + b.Burst}
	}
	return out
}

// reservationFor returns f's standalone per-node reservation, cached on
// (envelope digest, path, rung) — flow-ID- and epoch-independent, since the
// standalone propagation only sees the pristine platform. The rung matters
// when nodes carry static background cross traffic: a tighter rung yields a
// tighter (still sound) propagated bound, hence a smaller downstream
// reservation. The returned map is shared across cache hits and must be
// treated as read-only (all callers are).
func (c *Controller) reservationFor(f Flow) (map[string]core.Bucket, error) {
	key := verdictKey{
		alpha: f.Arrival.Envelope().Digest(),
		lmax:  f.Arrival.MaxPacket,
		path:  strings.Join(f.Path, "\x00"),
		rung:  c.rungFor(f),
	}
	c.resMu.Lock()
	contrib, ok := c.resCache[key]
	c.resMu.Unlock()
	if ok {
		return contrib, nil
	}
	standalone, err := core.AnalyzeMemo(c.standalonePipeline(f), c.memo)
	if err != nil {
		return nil, err
	}
	contrib = reservationFrom(f, standalone)
	c.resMu.Lock()
	if len(c.resCache) >= 4096 {
		c.resCache = make(map[verdictKey]map[string]core.Bucket)
	}
	c.resCache[key] = contrib
	c.resMu.Unlock()
	return contrib, nil
}

// standalonePipeline builds f's pipeline over the pristine platform: only
// each node's static background cross traffic, no tenant reservations. The
// pipeline name is ID-independent so the analysis memo can share results
// across flows with identical curves and paths.
func (c *Controller) standalonePipeline(f Flow) core.Pipeline {
	p := core.Pipeline{Name: c.name + "/standalone", Arrival: f.Arrival, Rung: c.rungFor(f)}
	for _, name := range f.Path {
		p.Nodes = append(p.Nodes, c.shards[name].node)
	}
	return p
}

// buildPipeline builds a pipeline for (arrival, path) over the platform at
// the given analysis rung, with cross traffic at each node = the node's
// static background + the hosted reservations minus excludeN members of
// class exclude + extra (a candidate's reservation during victim checks).
// The name is ID-independent (see standalonePipeline). Callers must hold
// the registry lock.
func (c *Controller) buildPipeline(arrival core.Arrival, path []string, rung core.Rung, exclude verdictKey, excludeN int, extra map[string]core.Bucket) core.Pipeline {
	p := core.Pipeline{Name: c.name + "/shared", Arrival: arrival, Rung: rung}
	for _, name := range path {
		sh := c.shards[name]
		n := sh.node
		agg := sh.aggregate(exclude, excludeN)
		n.CrossRate += agg.Rate
		n.CrossBurst += agg.Burst
		if extra != nil {
			if b, ok := extra[name]; ok {
				n.CrossRate += b.Rate
				n.CrossBurst += b.Burst
			}
		}
		p.Nodes = append(p.Nodes, n)
	}
	return p
}

// pipelineFor builds the core pipeline for flow f over the platform. When f
// is itself admitted, its own reservation is excluded from the cross
// traffic (one member of its class); extra adds a candidate's reservation
// during victim checks. Callers must hold the registry lock.
func (c *Controller) pipelineFor(f Flow, extra map[string]core.Bucket) core.Pipeline {
	var exclude verdictKey
	excludeN := 0
	if cs, ok := c.flows[f.ID]; ok {
		exclude, excludeN = cs.key, 1
	}
	return c.buildPipeline(f.Arrival, f.Path, c.rungFor(f), exclude, excludeN, extra)
}

// bounds are the end-to-end figures admission checks and verdicts promise.
type bounds struct {
	delay      time.Duration
	backlog    units.Bytes
	throughput units.Rate
}

// boundsOf derives the promised bounds from the exact concatenation of the
// per-node packetized service curves (Analysis.ConcatenatedBeta). The
// paper's folded closed form carries the packetizer term l_max only once on
// the arrival side, but a multi-hop store-and-forward chain pays a
// serialization delay at every hop; the concatenated curve keeps the
// promise sound against a packetized execution (checked by Replay).
func boundsOf(a *core.Analysis) bounds {
	b := bounds{throughput: a.ThroughputLower}
	if a.Overloaded {
		b.delay = time.Duration(math.MaxInt64)
		b.backlog = units.Bytes(math.Inf(1))
		return b
	}
	beta := a.ConcatenatedBeta()
	d := curve.HDev(a.AlphaPrime, beta)
	if math.IsInf(d, 1) {
		b.delay = time.Duration(math.MaxInt64)
	} else {
		b.delay = time.Duration(d * float64(time.Second))
	}
	b.backlog = units.Bytes(curve.VDev(a.AlphaPrime, beta))
	return b
}

// sloCheck describes a violated SLO dimension.
type sloCheck struct {
	binding string
	detail  string
}

// sloViolation checks the promised bounds against an SLO, returning the
// first violated dimension (delay, then backlog, then throughput) or nil.
func sloViolation(s SLO, a *core.Analysis, b bounds) *sloCheck {
	if a.Overloaded {
		return &sloCheck{"saturation", fmt.Sprintf(
			"arrival rate exceeds the residual service rate at node %d (steady-state bounds are infinite)",
			a.BottleneckIndex)}
	}
	if s.MaxDelay > 0 && b.delay > s.MaxDelay {
		return &sloCheck{"max_delay", fmt.Sprintf(
			"delay bound %v exceeds max_delay %v (bottleneck %s)",
			b.delay, s.MaxDelay, a.Bottleneck().Node.Name)}
	}
	if s.MaxBacklog > 0 && b.backlog > s.MaxBacklog {
		return &sloCheck{"max_backlog", fmt.Sprintf(
			"backlog bound %v exceeds max_backlog %v (bottleneck %s)",
			b.backlog, s.MaxBacklog, a.Bottleneck().Node.Name)}
	}
	if s.MinThroughput > 0 && b.throughput < s.MinThroughput {
		return &sloCheck{"min_throughput", fmt.Sprintf(
			"guaranteed throughput %v below min_throughput %v (bottleneck %s)",
			b.throughput, s.MinThroughput, a.Bottleneck().Node.Name)}
	}
	return nil
}

// sharesNode reports whether two paths visit a common node.
func sharesNode(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// sortedClassKeys returns the admitted class keys in keyLess order — the
// deterministic victim-check iteration order. Callers must hold the
// registry lock.
func (c *Controller) sortedClassKeys() []verdictKey {
	keys := make([]verdictKey, 0, len(c.classes))
	for k := range c.classes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

// sortedFlowIDs returns every admitted flow ID in sorted order. O(n log n):
// reserved for snapshot queries (Flows, RevalidateAll), never the admission
// hot path. Callers must hold the registry lock.
func (c *Controller) sortedFlowIDs() []string {
	ids := make([]string, 0, len(c.flows))
	for id := range c.flows {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// --- Release ---------------------------------------------------------------

// Release removes an admitted flow, freeing its reservations. It reports
// whether the flow was present.
func (c *Controller) Release(id string) bool {
	tr := c.newTrace(KindRelease)
	ok := c.release(id, tr)
	if tr != nil {
		c.observeRelease(id, ok, tr)
	}
	return ok
}

func (c *Controller) release(id string, tr *decTrace) bool {
	// Releases ride the same combiner as admissions: while a leader is
	// mid-sweep, pending releases queue instead of mutating node state
	// underneath the analysis, and each drain cycle commits them first so
	// admissions are decided against the freshest state.
	tr.mark(PhasePrecheck)
	return c.submit(&ticket{kind: tkRelease, id: id, tr: tr}).ok
}

// releaseLocked removes an admitted flow, freeing its reservations and
// advancing the touched nodes' epochs. Callers must hold the registry write
// lock.
func (c *Controller) releaseLocked(id string) bool {
	cs, ok := c.flows[id]
	if !ok {
		return false
	}
	for name := range cs.contrib {
		sh := c.shards[name]
		sh.mu.Lock()
		sh.remove(cs.key, 1)
		sh.mu.Unlock()
		sh.epoch.Add(1)
	}
	cs.removeID(id)
	if len(cs.ids) == 0 {
		delete(c.classes, cs.key)
	}
	delete(c.flows, id)
	c.epoch.Add(1)
	return true
}

// --- Queries ---------------------------------------------------------------

// AdmittedFlow is a registry snapshot entry: the flow and the bounds the
// controller promised at admission.
type AdmittedFlow struct {
	Flow Flow
	// Verdict is the latest admission verdict of the flow's class (flows
	// with identical curves, path, and SLO share promised bounds).
	Verdict Verdict
}

// Flows returns a snapshot of admitted flows sorted by ID. O(n log n) — use
// FlowCount for the cheap cardinality query.
func (c *Controller) Flows() []AdmittedFlow {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]AdmittedFlow, 0, len(c.flows))
	for _, id := range c.sortedFlowIDs() {
		cs := c.flows[id]
		v := cs.verdict
		v.FlowID = id
		out = append(out, AdmittedFlow{Flow: cs.flowFor(id), Verdict: v})
	}
	return out
}

// Recheck recomputes one admitted flow's analytic bounds under the current
// co-resident reservations (excluding its own) and re-asserts its SLO — the
// cheap, simulation-free sibling of RevalidateAll, suitable for sustained
// churn. The verdict's Admitted field reports whether the SLO still holds.
func (c *Controller) Recheck(id string) (Verdict, error) {
	c.mu.RLock()
	cs, ok := c.flows[id]
	if !ok {
		c.mu.RUnlock()
		return Verdict{}, fmt.Errorf("admit: recheck: flow %q not admitted", id)
	}
	f := cs.flowFor(id)
	a, err := core.AnalyzeMemo(c.pipelineFor(f, nil), c.memo)
	epoch := c.epoch.Load()
	c.mu.RUnlock()
	if err != nil {
		return Verdict{FlowID: id, Epoch: epoch, Binding: "saturation", Rung: f.Rung.String(),
			Reason: fmt.Sprintf("recheck: %v", err)}, nil
	}
	v := Verdict{FlowID: id, Epoch: epoch, Rung: f.Rung.String()}
	b := boundsOf(a)
	v.Delay, v.Backlog, v.Throughput = b.delay, b.backlog, b.throughput
	if bad := sloViolation(f.SLO, a, b); bad != nil {
		v.Binding = bad.binding
		v.Reason = "recheck violated: " + bad.detail
		return v, nil
	}
	v.Admitted = true
	v.Reason = "recheck ok"
	return v, nil
}

// Residual describes a node's leftover service after all admitted
// reservations.
type Residual struct {
	Node core.Node
	// Flows hosted on the node, sorted by ID.
	Flows []string
	// Cross is the aggregate reserved cross traffic (plus the node's
	// static background), local units.
	Cross core.Bucket
	// Curve is the residual service curve [beta - cross]⁺; Starved reports
	// that reservations consume the full service rate (Curve is zero).
	Curve   curve.Curve
	Starved bool
	// Rate is the residual sustained rate (ultimate slope of Curve).
	Rate units.Rate
}

// ResidualService returns the residual service of one platform node. The
// aggregate needs only that node's shard lock; the hosted-flow listing
// walks the classes under the registry read lock (O(hosted flows)).
func (c *Controller) ResidualService(node string) (Residual, error) {
	sh, ok := c.shards[node]
	if !ok {
		return Residual{}, fmt.Errorf("admit: unknown platform node %q", node)
	}
	r := Residual{Node: sh.node}

	c.mu.RLock()
	for _, cs := range c.classes {
		if _, hosted := cs.contrib[node]; !hosted {
			continue
		}
		for id := range cs.ids {
			r.Flows = append(r.Flows, id)
		}
	}
	c.mu.RUnlock()
	sort.Strings(r.Flows)

	sh.mu.RLock()
	agg := sh.aggregate(verdictKey{}, 0)
	sh.mu.RUnlock()
	r.Cross = core.Bucket{
		Rate:  agg.Rate + sh.node.CrossRate,
		Burst: agg.Burst + sh.node.CrossBurst,
	}
	beta := curve.RateLatency(float64(sh.node.Rate), sh.node.Latency.Seconds())
	if r.Cross.Rate <= 0 {
		r.Curve = beta
		r.Rate = sh.node.Rate
		return r, nil
	}
	resid, ok := curve.ResidualService(beta, curve.Affine(float64(r.Cross.Rate), float64(r.Cross.Burst)))
	if !ok {
		r.Starved = true
		r.Curve = curve.Zero()
		return r, nil
	}
	r.Curve = resid
	r.Rate = units.Rate(resid.UltimateSlope())
	return r, nil
}

// --- Verdict cache ---------------------------------------------------------

// nodeDep pins one node's epoch as observed during an analysis. A set of
// nodeDeps is a consistency witness: if every pinned epoch still matches
// the live shard epoch, no state the analysis read has changed since.
type nodeDep struct {
	idx   int
	epoch uint64
}

// cacheEntry is one cached (rejection) verdict plus the epochs of every
// node its analysis read. The entry stays valid exactly as long as those
// nodes are untouched — commits and releases on disjoint paths invalidate
// nothing.
type cacheEntry struct {
	v    Verdict
	deps []nodeDep
}

// cachedVerdict returns a stored verdict whose node dependencies are all
// still at their recorded epochs. Only rejections are ever stored: an
// admission commits state, so replaying it from a cache would skip the
// commit.
func (c *Controller) cachedVerdict(key verdictKey) (Verdict, bool) {
	c.cacheMu.Lock()
	e, ok := c.cache[key]
	c.cacheMu.Unlock()
	if ok {
		for _, d := range e.deps {
			if c.byIdx[d.idx].epoch.Load() != d.epoch {
				ok = false
				break
			}
		}
		if !ok {
			// Stale: drop it so the map doesn't accumulate dead entries.
			c.cacheMu.Lock()
			delete(c.cache, key)
			c.cacheMu.Unlock()
		}
	}
	if !ok {
		c.cacheMiss.Add(1)
		return Verdict{}, false
	}
	c.cacheHits.Add(1)
	e.v.Cached = true
	return e.v, true
}

// storeVerdict caches a rejection against the node epochs its analysis
// observed (deps, as recorded by the sweep). Node epochs only grow, so a
// verdict stored against an already-stale snapshot is harmless: the probe
// validation can never match it again.
func (c *Controller) storeVerdict(key verdictKey, deps []nodeDep, v Verdict) {
	v.Cached = false
	v.FlowID = "" // the stored verdict is ID-independent
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if len(c.cache) >= 8192 {
		c.cache = make(map[verdictKey]cacheEntry)
	}
	c.cache[key] = cacheEntry{v: v, deps: deps}
}

// Stats is a snapshot of the controller's cache and memo effectiveness, for
// the daemon's /healthz endpoint.
type Stats struct {
	// Registry cardinality: admitted flows and distinct flow classes.
	Flows   int `json:"flows"`
	Classes int `json:"classes"`
	// Verdict cache (epoch-scoped, digest-keyed).
	VerdictHits    uint64 `json:"verdict_hits"`
	VerdictMisses  uint64 `json:"verdict_misses"`
	VerdictEntries int    `json:"verdict_entries"`
	// Pipeline-analysis memo (core.Memo).
	AnalysisHits    uint64 `json:"analysis_hits"`
	AnalysisMisses  uint64 `json:"analysis_misses"`
	AnalysisEntries int    `json:"analysis_entries"`
	// Standalone reservation cache.
	ReservationEntries int `json:"reservation_entries"`
	// Process-wide curve operation memo.
	CurveOps curve.CacheStats `json:"curve_ops"`
	// Optimistic-concurrency counters: failed validate-and-commit sections
	// (each one retried or fell back to the write-locked path) and the
	// per-node epoch summary (see EpochStats).
	CommitConflicts   uint64 `json:"commit_conflicts"`
	EpochMax          uint64 `json:"epoch_max"`
	EpochDistinctNode int    `json:"epoch_distinct_nodes"`
}

// Stats reports cumulative cache counters.
func (c *Controller) Stats() Stats {
	var s Stats
	c.mu.RLock()
	s.Flows = len(c.flows)
	s.Classes = len(c.classes)
	c.mu.RUnlock()
	s.VerdictHits = c.cacheHits.Load()
	s.VerdictMisses = c.cacheMiss.Load()
	c.cacheMu.Lock()
	s.VerdictEntries = len(c.cache)
	c.cacheMu.Unlock()
	s.AnalysisHits, s.AnalysisMisses, s.AnalysisEntries = c.memo.Stats()
	c.resMu.Lock()
	s.ReservationEntries = len(c.resCache)
	c.resMu.Unlock()
	s.CurveOps = curve.MemoStats()
	s.CommitConflicts = c.conflicts.Load()
	s.EpochMax, s.EpochDistinctNode = c.EpochStats()
	return s
}
