package admit

import (
	"log/slog"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/obs"
)

// DecisionBuckets are the histogram bounds for admission-decision latency
// (seconds): 1µs (cached rejections) up to ~1s (deep victim re-checks).
var DecisionBuckets = obs.ExponentialBuckets(1e-6, 4, 11)

// OpBuckets are the histogram bounds for individual curve operations and
// pipeline analyses (seconds).
var OpBuckets = obs.ExponentialBuckets(1e-7, 4, 12)

// GroupSizeBuckets are the histogram bounds for combiner group sizes
// (tickets decided per group commit).
var GroupSizeBuckets = obs.ExponentialBuckets(1, 2, 8)

// ctrlObs bundles the controller's metric handles.
type ctrlObs struct {
	reg        *obs.Registry
	admitted   *obs.Counter
	rejected   *obs.Counter
	cached     *obs.Counter
	releases   *obs.Counter
	decision   *obs.Histogram
	conflicts  *obs.Counter
	commitWait *obs.Histogram
	groupSize  *obs.Histogram
}

// EnableObs wires the controller onto reg:
//
//   - verdict counters (nc_admit_verdicts_total by result, nc_admit_cached_total,
//     nc_admit_releases_total) and a decision-latency histogram;
//   - scrape-time gauges for admitted flows, platform epoch, per-node
//     reservation utilization, and every cache layer's hits/misses/entries
//     (verdict cache, analysis memo, reservation cache, curve-op memo);
//   - process-wide per-operation timing: curve.SetOpTimer and
//     core.SetAnalysisTimer feed nc_curve_op_seconds{op=...} and
//     nc_analysis_seconds histograms (global hooks — the daemon runs one
//     controller; a second EnableObs call rebinds them).
//
// Call once, before serving traffic.
func (c *Controller) EnableObs(reg *obs.Registry) {
	m := &ctrlObs{
		reg:      reg,
		admitted: reg.Counter("nc_admit_verdicts_total", "admission decisions by result", obs.Label{Key: "result", Value: "admitted"}),
		rejected: reg.Counter("nc_admit_verdicts_total", "admission decisions by result", obs.Label{Key: "result", Value: "rejected"}),
		cached:   reg.Counter("nc_admit_cached_total", "verdicts served from the epoch cache"),
		releases: reg.Counter("nc_admit_releases_total", "admitted flows released"),
		decision: reg.Histogram("nc_admit_decision_seconds", "admission decision latency", DecisionBuckets),
		conflicts: reg.Counter("nc_admit_commit_conflict_total",
			"optimistic validate-and-commit sections retried because an observed node epoch moved"),
		commitWait: reg.Histogram("nc_admit_commit_wait_seconds",
			"time spent in the write-locked validate-and-commit section per committed decision", DecisionBuckets),
		groupSize: reg.Histogram("nc_admit_group_size",
			"admissions decided together per combiner group commit", GroupSizeBuckets),
	}
	c.obsm = m

	// Pre-register the timing families so they exist (at zero) from startup:
	// the timers below only fire on memo *misses*, and a warm process-global
	// op memo would otherwise keep the families off /metrics indefinitely.
	for _, op := range curve.OpNames() {
		reg.Histogram("nc_curve_op_seconds", "computed (memo-miss) curve operation cost",
			OpBuckets, obs.Label{Key: "op", Value: op})
	}
	reg.Histogram("nc_analysis_seconds", "computed (memo-miss) pipeline analysis cost", OpBuckets)

	curve.SetOpTimer(func(op string, seconds float64) {
		reg.Histogram("nc_curve_op_seconds", "computed (memo-miss) curve operation cost",
			OpBuckets, obs.Label{Key: "op", Value: op}).Observe(seconds)
	})
	core.SetAnalysisTimer(func(seconds float64) {
		reg.Histogram("nc_analysis_seconds", "computed (memo-miss) pipeline analysis cost",
			OpBuckets).Observe(seconds)
	})

	reg.AddCollector(func(r *obs.Registry) { c.collect(r) })
}

// collect snapshots registry-independent controller state into gauges; runs
// at scrape time.
func (c *Controller) collect(r *obs.Registry) {
	st := c.Stats()
	set := func(name, help string, v float64, labels ...obs.Label) {
		r.Gauge(name, help, labels...).Set(v)
	}
	set("nc_admit_epoch", "platform epoch (bumps on every commit/release)", float64(c.Epoch()))
	emax, edistinct := c.EpochStats()
	set("nc_admit_epoch_max", "highest per-node epoch (modification counter of the busiest node)", float64(emax))
	set("nc_admit_epoch_distinct_nodes", "number of distinct per-node epoch values across the platform", float64(edistinct))

	c.mu.RLock()
	set("nc_admit_flows", "currently admitted flows", float64(len(c.flows)))
	set("nc_admit_classes", "distinct admitted flow classes (shared curves+path+SLO)", float64(len(c.classes)))
	c.mu.RUnlock()

	cache := func(layer string, hits, misses uint64, entries int) {
		l := obs.Label{Key: "cache", Value: layer}
		set("nc_cache_hits_total", "cache hits by layer", float64(hits), l)
		set("nc_cache_misses_total", "cache misses by layer", float64(misses), l)
		set("nc_cache_entries", "cache entries by layer", float64(entries), l)
		set("nc_cache_hit_rate", "hits/(hits+misses) by layer", obs.HitRate(hits, misses), l)
	}
	cache("verdict", st.VerdictHits, st.VerdictMisses, st.VerdictEntries)
	cache("analysis", st.AnalysisHits, st.AnalysisMisses, st.AnalysisEntries)
	cache("reservation", 0, 0, st.ReservationEntries)
	cache("curve_ops", st.CurveOps.Hits, st.CurveOps.Misses, st.CurveOps.Entries)

	// Per-node reservation pressure: reserved rate (tenants + static
	// background) over the node's service rate — the live utilization figure
	// behind every verdict.
	for _, name := range c.order {
		sh := c.shards[name]
		sh.mu.RLock()
		agg := sh.aggregate(verdictKey{}, 0)
		rate := sh.node.Rate
		reserved := agg.Rate + sh.node.CrossRate
		burst := agg.Burst + sh.node.CrossBurst
		nflows := sh.nflows
		sh.mu.RUnlock()

		l := obs.Label{Key: "node", Value: name}
		set("nc_node_epoch", "per-node modification epoch (bumps when the node's aggregate changes)", float64(sh.epoch.Load()), l)
		set("nc_node_reserved_rate_bytes_per_second", "aggregate reserved cross-traffic rate (local units)", float64(reserved), l)
		set("nc_node_reserved_burst_bytes", "aggregate reserved cross-traffic burst (local units)", float64(burst), l)
		set("nc_node_flows", "flows holding reservations on the node", float64(nflows), l)
		util := 0.0
		if rate > 0 {
			util = float64(reserved) / float64(rate)
		}
		set("nc_node_utilization", "reserved rate over service rate", util, l)
	}
}

// SetAudit attaches a structured audit logger: every admission decision and
// release emits one slog record with the flow, verdict, binding constraint,
// promised bounds, and decision latency. Nil detaches (the default).
func (c *Controller) SetAudit(l *slog.Logger) { c.audit = l }

// observeAdmit records one decision on the attached metrics/audit sinks.
func (c *Controller) observeAdmit(v Verdict, took time.Duration) {
	if m := c.obsm; m != nil {
		if v.Admitted {
			m.admitted.Inc()
		} else {
			m.rejected.Inc()
		}
		if v.Cached {
			m.cached.Inc()
		}
		m.decision.Observe(took.Seconds())
	}
	if c.audit != nil {
		attrs := []any{
			"flow_id", v.FlowID,
			"admitted", v.Admitted,
			"binding", v.Binding,
			"epoch", v.Epoch,
			"cached", v.Cached,
			"decision_us", took.Microseconds(),
		}
		if v.Admitted {
			attrs = append(attrs,
				"delay", v.Delay.String(),
				"backlog_bytes", float64(v.Backlog),
				"throughput", v.Throughput.String(),
				"bottleneck", v.Bottleneck,
				"headroom_rate", v.HeadroomRate.String(),
			)
		} else {
			attrs = append(attrs, "reason", v.Reason)
		}
		c.audit.Info("admit.verdict", attrs...)
	}
}

// noteConflict counts one failed optimistic validate-and-commit (an
// observed node epoch moved between analysis and commit).
func (c *Controller) noteConflict() {
	c.conflicts.Add(1)
	if m := c.obsm; m != nil {
		m.conflicts.Inc()
	}
}

// observeCommitWait records the duration of one write-locked
// validate-and-commit section.
func (c *Controller) observeCommitWait(d time.Duration) {
	if m := c.obsm; m != nil {
		m.commitWait.Observe(d.Seconds())
	}
}

// observeRelease records one release on the attached sinks.
func (c *Controller) observeRelease(id string, ok bool, took time.Duration) {
	if m := c.obsm; m != nil && ok {
		m.releases.Inc()
	}
	if c.audit != nil {
		c.audit.Info("admit.release", "flow_id", id, "released", ok,
			"decision_us", took.Microseconds())
	}
}

// instrumented reports whether any decision sink is attached.
func (c *Controller) instrumented() bool { return c.obsm != nil || c.audit != nil }
