package admit

import (
	"log/slog"
	"sync"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/obs"
)

// DecisionBuckets are the histogram bounds for admission-decision latency
// (seconds): 1µs (cached rejections) up to ~1s (deep victim re-checks).
var DecisionBuckets = obs.ExponentialBuckets(1e-6, 4, 11)

// OpBuckets are the histogram bounds for individual curve operations and
// pipeline analyses (seconds).
var OpBuckets = obs.ExponentialBuckets(1e-7, 4, 12)

// GroupSizeBuckets are the histogram bounds for combiner group sizes
// (tickets decided per group commit).
var GroupSizeBuckets = obs.ExponentialBuckets(1, 2, 8)

// ObsOptions tunes EnableObsOpts. The zero value is the recommended
// production default.
type ObsOptions struct {
	// PerNodeMetrics opts into the per-node gauge families (nc_node_epoch,
	// nc_node_utilization, ...): one series per platform node per family,
	// unbounded cardinality at 10k+ nodes. Off by default; the aggregate
	// nc_admit_epoch_max/_distinct_nodes gauges are always exported.
	PerNodeMetrics bool
	// SLOObjective is the decision-latency objective: decisions at or under
	// it count as "fast" for the SLO instruments. Default 100ms.
	SLOObjective time.Duration
	// SLOBudget is the tolerated slow fraction (error budget) the burn-rate
	// gauge normalizes against: burn = slow_fraction / budget, so burn > 1
	// means the budget is being spent faster than allowed. Default 0.01.
	SLOBudget float64
	// WindowSeconds sizes the sliding window behind the burn-rate gauge and
	// the decisions-per-second figure. Default 60.
	WindowSeconds int
}

// ctrlObs bundles the controller's metric handles.
type ctrlObs struct {
	reg        *obs.Registry
	opts       ObsOptions
	admitted   *obs.Counter
	rejected   *obs.Counter
	cached     *obs.Counter
	releases   *obs.Counter
	decision   *obs.Histogram
	conflicts  *obs.Counter
	commitWait *obs.Histogram
	groupSize  *obs.Histogram
	sloFast    *obs.Counter

	// Sliding windows: every decision, and the slow (objective-violating)
	// ones, for the burn-rate gauge and /healthz decisions-per-second.
	decWin  *obs.Window
	slowWin *obs.Window

	// st is the per-scrape Stats snapshot: the collector refreshes it once
	// per render, and the CounterFunc/GaugeFunc closures read it — so one
	// scrape sees one consistent snapshot and cache counters can be typed
	// as counters without re-snapshotting per family.
	stMu sync.Mutex
	st   Stats
}

func (m *ctrlObs) snapshot() Stats {
	m.stMu.Lock()
	defer m.stMu.Unlock()
	return m.st
}

// EnableObs wires the controller onto reg with default options — see
// EnableObsOpts. Call once, before serving traffic.
func (c *Controller) EnableObs(reg *obs.Registry) {
	c.EnableObsOpts(reg, ObsOptions{})
}

// EnableObsOpts wires the controller onto reg:
//
//   - verdict counters (nc_admit_verdicts_total by result, nc_admit_cached_total,
//     nc_admit_releases_total) and a decision-latency histogram whose buckets
//     carry exemplars pointing at flight-recorder sequence numbers;
//   - SLO instruments against opts.SLOObjective: nc_admit_slo_fast_total,
//     nc_admit_slo_objective_seconds, and the windowed burn-rate gauge
//     nc_admit_slo_budget_burn;
//   - scrape-time gauges for admitted flows, platform epoch, and every cache
//     layer's hits/misses/entries (verdict cache, analysis memo, reservation
//     cache, curve-op memo); per-node reservation gauges only with
//     opts.PerNodeMetrics (unbounded cardinality on large platforms);
//   - process-wide per-operation timing: curve.SetOpTimer and
//     core.SetAnalysisTimer feed nc_curve_op_seconds{op=...} and
//     nc_analysis_seconds histograms (global hooks — the daemon runs one
//     controller; a second EnableObs call rebinds them).
//
// Call once, before serving traffic.
func (c *Controller) EnableObsOpts(reg *obs.Registry, opts ObsOptions) {
	if opts.SLOObjective <= 0 {
		opts.SLOObjective = 100 * time.Millisecond
	}
	if opts.SLOBudget <= 0 {
		opts.SLOBudget = 0.01
	}
	if opts.WindowSeconds <= 0 {
		opts.WindowSeconds = 60
	}
	m := &ctrlObs{
		reg:      reg,
		opts:     opts,
		admitted: reg.Counter("nc_admit_verdicts_total", "admission decisions by result", obs.Label{Key: "result", Value: "admitted"}),
		rejected: reg.Counter("nc_admit_verdicts_total", "admission decisions by result", obs.Label{Key: "result", Value: "rejected"}),
		cached:   reg.Counter("nc_admit_cached_total", "verdicts served from the epoch cache"),
		releases: reg.Counter("nc_admit_releases_total", "admitted flows released"),
		decision: reg.Histogram("nc_admit_decision_seconds", "admission decision latency", DecisionBuckets),
		conflicts: reg.Counter("nc_admit_commit_conflict_total",
			"optimistic validate-and-commit sections retried because an observed node epoch moved"),
		commitWait: reg.Histogram("nc_admit_commit_wait_seconds",
			"time spent in the write-locked validate-and-commit section per committed decision", DecisionBuckets),
		groupSize: reg.Histogram("nc_admit_group_size",
			"admissions decided together per combiner group commit", GroupSizeBuckets),
		sloFast: reg.Counter("nc_admit_slo_fast_total",
			"decisions completing within the latency objective"),
		decWin:  obs.NewWindow(opts.WindowSeconds),
		slowWin: obs.NewWindow(opts.WindowSeconds),
	}
	c.obsm = m

	reg.Gauge("nc_admit_slo_objective_seconds",
		"decision-latency objective the SLO instruments measure against").Set(opts.SLOObjective.Seconds())
	reg.GaugeFunc("nc_admit_slo_budget_burn",
		"windowed slow-decision fraction over the error budget (>1 means burning faster than allowed)",
		func() float64 {
			total := m.decWin.Sum()
			if total == 0 {
				return 0
			}
			return (float64(m.slowWin.Sum()) / float64(total)) / opts.SLOBudget
		})

	// Cache effectiveness, typed honestly: the hit/miss tallies are
	// monotone, so they render as counters reading from the per-scrape
	// snapshot the collector refreshes.
	for _, layer := range []string{"verdict", "analysis", "reservation", "curve_ops"} {
		l := obs.Label{Key: "cache", Value: layer}
		layer := layer
		reg.CounterFunc("nc_cache_hits_total", "cache hits by layer",
			func() float64 { h, _, _ := m.snapshot().cacheLayer(layer); return float64(h) }, l)
		reg.CounterFunc("nc_cache_misses_total", "cache misses by layer",
			func() float64 { _, mi, _ := m.snapshot().cacheLayer(layer); return float64(mi) }, l)
		reg.GaugeFunc("nc_cache_entries", "cache entries by layer",
			func() float64 { _, _, e := m.snapshot().cacheLayer(layer); return float64(e) }, l)
		reg.GaugeFunc("nc_cache_hit_rate", "hits/(hits+misses) by layer",
			func() float64 { h, mi, _ := m.snapshot().cacheLayer(layer); return obs.HitRate(h, mi) }, l)
	}

	// Tight-rung lattice search effort, process-wide: θ-vectors actually
	// scored vs skipped by branch-and-bound. The prune-ratio gauge is the
	// live health figure for the search — a ratio near 0 on a tight-rung
	// workload means the bound is not cutting and decide latency scales
	// with the full lattice.
	reg.CounterFunc("nc_rung_combos_total",
		"tight-rung θ-vectors scored by the lattice search",
		func() float64 { combos, _ := core.RungSearchStats(); return float64(combos) })
	reg.CounterFunc("nc_rung_pruned_total",
		"tight-rung θ-vectors skipped by branch-and-bound pruning",
		func() float64 { _, pruned := core.RungSearchStats(); return float64(pruned) })
	reg.GaugeFunc("nc_rung_prune_ratio",
		"pruned/(scored+pruned) across all tight-rung searches since process start",
		func() float64 {
			combos, pruned := core.RungSearchStats()
			if combos+pruned == 0 {
				return 0
			}
			return float64(pruned) / float64(combos+pruned)
		})

	// Pre-register the timing families so they exist (at zero) from startup:
	// the timers below only fire on memo *misses*, and a warm process-global
	// op memo would otherwise keep the families off /metrics indefinitely.
	for _, op := range curve.OpNames() {
		reg.Histogram("nc_curve_op_seconds", "computed (memo-miss) curve operation cost",
			OpBuckets, obs.Label{Key: "op", Value: op})
	}
	reg.Histogram("nc_analysis_seconds", "computed (memo-miss) pipeline analysis cost", OpBuckets)

	curve.SetOpTimer(func(op string, seconds float64) {
		reg.Histogram("nc_curve_op_seconds", "computed (memo-miss) curve operation cost",
			OpBuckets, obs.Label{Key: "op", Value: op}).Observe(seconds)
	})
	core.SetAnalysisTimer(func(seconds float64) {
		reg.Histogram("nc_analysis_seconds", "computed (memo-miss) pipeline analysis cost",
			OpBuckets).Observe(seconds)
	})

	reg.AddCollector(func(r *obs.Registry) { c.collect(r) })
}

// cacheLayer maps a layer name onto the snapshot's counters.
func (s Stats) cacheLayer(layer string) (hits, misses uint64, entries int) {
	switch layer {
	case "verdict":
		return s.VerdictHits, s.VerdictMisses, s.VerdictEntries
	case "analysis":
		return s.AnalysisHits, s.AnalysisMisses, s.AnalysisEntries
	case "reservation":
		return 0, 0, s.ReservationEntries
	case "curve_ops":
		return s.CurveOps.Hits, s.CurveOps.Misses, s.CurveOps.Entries
	}
	return 0, 0, 0
}

// collect snapshots registry-independent controller state into gauges; runs
// at scrape time (before family rendering, so the CounterFunc closures read
// the fresh snapshot).
func (c *Controller) collect(r *obs.Registry) {
	m := c.obsm
	st := c.Stats()
	m.stMu.Lock()
	m.st = st
	m.stMu.Unlock()

	set := func(name, help string, v float64, labels ...obs.Label) {
		r.Gauge(name, help, labels...).Set(v)
	}
	set("nc_admit_epoch", "platform epoch (bumps on every commit/release)", float64(c.Epoch()))
	set("nc_admit_epoch_max", "highest per-node epoch (modification counter of the busiest node)", float64(st.EpochMax))
	set("nc_admit_epoch_distinct_nodes", "number of distinct per-node epoch values across the platform", float64(st.EpochDistinctNode))
	set("nc_admit_flows", "currently admitted flows", float64(st.Flows))
	set("nc_admit_classes", "distinct admitted flow classes (shared curves+path+SLO)", float64(st.Classes))

	if rec := c.rec; rec != nil {
		set("nc_admit_recorder_depth", "decisions retained in the flight recorder", float64(rec.Depth()))
	}

	if !m.opts.PerNodeMetrics {
		return
	}
	// Per-node reservation pressure: reserved rate (tenants + static
	// background) over the node's service rate — the live utilization figure
	// behind every verdict. Opt-in: one series per node per family.
	for _, name := range c.order {
		sh := c.shards[name]
		sh.mu.RLock()
		agg := sh.aggregate(verdictKey{}, 0)
		rate := sh.node.Rate
		reserved := agg.Rate + sh.node.CrossRate
		burst := agg.Burst + sh.node.CrossBurst
		nflows := sh.nflows
		sh.mu.RUnlock()

		l := obs.Label{Key: "node", Value: name}
		set("nc_node_epoch", "per-node modification epoch (bumps when the node's aggregate changes)", float64(sh.epoch.Load()), l)
		set("nc_node_reserved_rate_bytes_per_second", "aggregate reserved cross-traffic rate (local units)", float64(reserved), l)
		set("nc_node_reserved_burst_bytes", "aggregate reserved cross-traffic burst (local units)", float64(burst), l)
		set("nc_node_flows", "flows holding reservations on the node", float64(nflows), l)
		util := 0.0
		if rate > 0 {
			util = float64(reserved) / float64(rate)
		}
		set("nc_node_utilization", "reserved rate over service rate", util, l)
	}
}

// SetAudit attaches a structured audit logger: every admission decision and
// release emits one slog record with the flow, verdict, binding constraint,
// promised bounds, and decision latency. Nil detaches (the default).
func (c *Controller) SetAudit(l *slog.Logger) { c.audit = l }

// DecisionRate returns decisions per second averaged over the metrics
// window (0 without EnableObs). O(window seconds); safe for /healthz.
func (c *Controller) DecisionRate() float64 {
	if m := c.obsm; m != nil {
		return m.decWin.Rate()
	}
	return 0
}

// noteDecision feeds the SLO instruments and the decisions-per-second
// window (all decision kinds: admissions, batches, releases).
func (m *ctrlObs) noteDecision(took time.Duration) {
	m.decWin.Add(1)
	if took <= m.opts.SLOObjective {
		m.sloFast.Inc()
	} else {
		m.slowWin.Add(1)
	}
}

// observeDecisionLatency records one admission-decision latency on the
// histogram (with a flight-recorder exemplar when seq != 0) and the SLO
// instruments.
func (m *ctrlObs) observeDecisionLatency(took time.Duration, seq uint64, flowID string) {
	secs := took.Seconds()
	if seq != 0 {
		labels := []obs.Label{{Key: "decision_seq", Value: itoa(seq)}}
		if flowID != "" {
			labels = append(labels, obs.Label{Key: "flow_id", Value: flowID})
		}
		m.decision.ObserveEx(secs, &obs.Exemplar{
			Labels: labels,
			Value:  secs,
			Ts:     float64(time.Now().UnixNano()) / 1e9,
		})
	} else {
		m.decision.Observe(secs)
	}
	m.noteDecision(took)
}

// observeAdmit finalizes one decision trace and records it on the attached
// metrics/recorder/audit sinks.
func (c *Controller) observeAdmit(v Verdict, tr *decTrace) {
	tr.mark(PhaseHandoff)
	took := tr.span.Total()

	rec := tr.record(took)
	rec.FlowID = v.FlowID
	rec.Admitted = v.Admitted
	rec.Cached = v.Cached
	rec.Binding = v.Binding
	rec.Rung = v.Rung
	rec.Epoch = v.Epoch
	seq := c.pushRecord(rec)

	if m := c.obsm; m != nil {
		if v.Admitted {
			m.admitted.Inc()
		} else {
			m.rejected.Inc()
		}
		if v.Cached {
			m.cached.Inc()
		}
		m.observeDecisionLatency(took, seq, v.FlowID)
	}
	if c.audit != nil {
		attrs := []any{
			"flow_id", v.FlowID,
			"admitted", v.Admitted,
			"binding", v.Binding,
			"rung", v.Rung,
			"epoch", v.Epoch,
			"cached", v.Cached,
			"decision_us", took.Microseconds(),
		}
		if v.Admitted {
			attrs = append(attrs,
				"delay", v.Delay.String(),
				"backlog_bytes", float64(v.Backlog),
				"throughput", v.Throughput.String(),
				"bottleneck", v.Bottleneck,
				"headroom_rate", v.HeadroomRate.String(),
			)
		} else {
			attrs = append(attrs, "reason", v.Reason)
		}
		c.audit.Info("admit.verdict", attrs...)
	}
}

// noteConflict counts one failed optimistic validate-and-commit (an
// observed node epoch moved between analysis and commit).
func (c *Controller) noteConflict() {
	c.conflicts.Add(1)
	if m := c.obsm; m != nil {
		m.conflicts.Inc()
	}
}

// observeCommitWait records the duration of one write-locked
// validate-and-commit section.
func (c *Controller) observeCommitWait(d time.Duration) {
	if m := c.obsm; m != nil {
		m.commitWait.Observe(d.Seconds())
	}
}

// observeRelease finalizes one release trace and records it on the
// attached sinks.
func (c *Controller) observeRelease(id string, ok bool, tr *decTrace) {
	tr.mark(PhaseHandoff)
	took := tr.span.Total()

	rec := tr.record(took)
	rec.FlowID = id
	rec.Released = ok
	c.pushRecord(rec)

	if m := c.obsm; m != nil {
		if ok {
			m.releases.Inc()
		}
		// Releases feed the decision-rate window and SLO accounting but not
		// the admission-latency histogram (it measures admissions only).
		m.noteDecision(took)
	}
	if c.audit != nil {
		c.audit.Info("admit.release", "flow_id", id, "released", ok,
			"decision_us", took.Microseconds())
	}
}

// instrumented reports whether any decision sink is attached.
func (c *Controller) instrumented() bool {
	return c.obsm != nil || c.audit != nil || c.rec != nil
}
