package admit

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"streamcalc/internal/obs"
	"streamcalc/internal/units"
)

func revalidateFixture(t *testing.T) *Controller {
	t.Helper()
	c := testPlatform(t)
	for _, f := range []Flow{
		tenant("t1", 10*units.MiBPerSec),
		tenant("t2", 15*units.MiBPerSec),
		tenant("t3", 8*units.MiBPerSec),
	} {
		if v := c.Admit(f); !v.Admitted {
			t.Fatalf("fixture admit %s: %s", f.ID, v.Reason)
		}
	}
	return c
}

func TestRevalidateAllSound(t *testing.T) {
	c := revalidateFixture(t)
	rep, err := c.RevalidateAll(RevalidateOptions{
		Replay:  ReplayOptions{Total: 2 * units.MiB, Seed: 11},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != c.Epoch() {
		t.Errorf("epoch %d, controller at %d", rep.Epoch, c.Epoch())
	}
	if len(rep.Flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(rep.Flows))
	}
	for i, want := range []string{"t1", "t2", "t3"} {
		if rep.Flows[i].FlowID != want {
			t.Errorf("slot %d = %s, want %s (ID order)", i, rep.Flows[i].FlowID, want)
		}
	}
	if rep.Violations != 0 {
		for _, fr := range rep.Flows {
			for _, v := range fr.Violations {
				t.Errorf("%s: %s", fr.FlowID, v)
			}
		}
	}
	for _, fr := range rep.Flows {
		if fr.SimDelayMax <= 0 || fr.SimDelayMax > fr.Delay {
			t.Errorf("%s: sim delay %v outside (0, bound %v]", fr.FlowID, fr.SimDelayMax, fr.Delay)
		}
		if fr.Throughput <= 0 {
			t.Errorf("%s: no analytic throughput", fr.FlowID)
		}
	}
}

// TestRevalidateDeterministic requires identical reports at worker counts
// 1, 2, and 8 — the parallel fan-out must not change a single field.
func TestRevalidateDeterministic(t *testing.T) {
	c := revalidateFixture(t)
	opt := func(workers int) RevalidateOptions {
		return RevalidateOptions{Replay: ReplayOptions{Total: units.MiB, Seed: 3}, Workers: workers}
	}
	want, err := c.RevalidateAll(opt(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := c.RevalidateAll(opt(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: report differs:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestRevalidateEmptyPlatform(t *testing.T) {
	c := testPlatform(t)
	rep, err := c.RevalidateAll(RevalidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 0 || rep.Violations != 0 {
		t.Errorf("empty platform: %+v", rep)
	}
}

func TestRevalidateMetrics(t *testing.T) {
	c := revalidateFixture(t)
	reg := obs.NewRegistry()
	if _, err := c.RevalidateAll(RevalidateOptions{
		Replay:  ReplayOptions{Total: units.MiB, Seed: 5},
		Workers: 3,
		Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `nc_pool_tasks_total{pool="revalidate"} 3`) {
		t.Errorf("pool metrics missing:\n%s", buf.String())
	}
}
