package admit

import (
	"strings"
	"testing"
	"time"

	"streamcalc/internal/core"
	"streamcalc/internal/curve"
	"streamcalc/internal/units"
)

// testPlatform is a 3-stage edge platform: a fast ingest stage, a slower
// crypto stage (the natural bottleneck), and an uplink.
func testPlatform(t *testing.T) *Controller {
	t.Helper()
	// Jobs are small (one packet) so delay bounds degrade monotonically
	// with cross traffic: large JobIn values sit on the model's
	// job-aggregation cliff, where extra cross traffic can re-inflate the
	// propagated burst past JobIn and remove the aggregation-delay term.
	c, err := New("edge", []core.Node{
		{Name: "ingest", Rate: 200 * units.MiBPerSec, Latency: 200 * time.Microsecond,
			JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB},
		{Name: "encrypt", Rate: 50 * units.MiBPerSec, Latency: 500 * time.Microsecond,
			JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB},
		{Name: "uplink", Kind: core.Link, Rate: 120 * units.MiBPerSec, Latency: time.Millisecond,
			JobIn: 4 * units.KiB, JobOut: 4 * units.KiB, MaxPacket: 4 * units.KiB},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tenant(id string, rate units.Rate) Flow {
	return Flow{
		ID:      id,
		Arrival: core.Arrival{Rate: rate, Burst: 64 * units.KiB, MaxPacket: 4 * units.KiB},
		Path:    []string{"ingest", "encrypt", "uplink"},
		SLO: SLO{
			MaxDelay:      200 * time.Millisecond,
			MaxBacklog:    16 * units.MiB,
			MinThroughput: rate,
		},
	}
}

func TestAdmitWithinCapacity(t *testing.T) {
	c := testPlatform(t)
	v := c.Admit(tenant("t1", 10*units.MiBPerSec))
	if !v.Admitted {
		t.Fatalf("expected admission, got: %s", v.Reason)
	}
	if v.Delay <= 0 || v.Delay > 200*time.Millisecond {
		t.Errorf("promised delay %v outside (0, SLO]", v.Delay)
	}
	if v.Backlog <= 0 || v.Backlog > 16*units.MiB {
		t.Errorf("promised backlog %v outside (0, SLO]", v.Backlog)
	}
	if v.Throughput < 10*units.MiBPerSec {
		t.Errorf("promised throughput %v below SLO", v.Throughput)
	}
	if v.Bottleneck != "encrypt" {
		t.Errorf("bottleneck = %q, want encrypt", v.Bottleneck)
	}
	if !strings.Contains(v.Reason, "admitted") {
		t.Errorf("reason %q lacks explanation", v.Reason)
	}
	if len(c.Flows()) != 1 {
		t.Errorf("registry should hold 1 flow")
	}
}

func TestAdmitRejectsSaturation(t *testing.T) {
	c := testPlatform(t)
	admitted := 0
	var rej Verdict
	for i := 0; i < 6; i++ {
		v := c.Admit(tenant(string(rune('a'+i)), 10*units.MiBPerSec))
		if v.Admitted {
			admitted++
		} else {
			rej = v
			break
		}
	}
	// encrypt serves 50 MiB/s; five 10 MiB/s tenants exhaust it.
	if admitted >= 5 && rej.FlowID == "" {
		t.Fatalf("all 6 tenants admitted over a 50 MiB/s bottleneck")
	}
	if rej.FlowID != "" {
		if rej.Binding != "saturation" && rej.Binding != "min_throughput" {
			t.Errorf("binding = %q, want saturation or min_throughput (reason: %s)", rej.Binding, rej.Reason)
		}
		if !strings.Contains(rej.Reason, "rejected") {
			t.Errorf("reason %q lacks explanation", rej.Reason)
		}
	}
}

func TestAdmitRejectsUnknownNode(t *testing.T) {
	c := testPlatform(t)
	f := tenant("t1", units.MiBPerSec)
	f.Path = []string{"ingest", "gpu"}
	v := c.Admit(f)
	if v.Admitted || v.Binding != "spec" {
		t.Errorf("verdict = %+v, want spec rejection", v)
	}
}

func TestAdmitRejectsDuplicateID(t *testing.T) {
	c := testPlatform(t)
	if v := c.Admit(tenant("t1", units.MiBPerSec)); !v.Admitted {
		t.Fatalf("first admit failed: %s", v.Reason)
	}
	v := c.Admit(tenant("t1", units.MiBPerSec))
	if v.Admitted || v.Binding != "spec" {
		t.Errorf("duplicate ID must be rejected as spec error, got %+v", v)
	}
}

func TestAdmitProtectsVictims(t *testing.T) {
	// Admit a tenant with a delay SLO that just barely holds, then try to
	// add a heavy tenant that would push the first one's bound over.
	probe := testPlatform(t)
	vp := probe.Admit(tenant("a", 10*units.MiBPerSec))
	if !vp.Admitted {
		t.Fatalf("probe admission failed: %s", vp.Reason)
	}

	c := testPlatform(t)
	a := tenant("a", 10*units.MiBPerSec)
	a.SLO.MaxDelay = vp.Delay + vp.Delay/10 // 10% margin over the uncontended bound
	if v := c.Admit(a); !v.Admitted {
		t.Fatalf("tight-SLO admission failed: %s", v.Reason)
	}

	b := tenant("b", 30*units.MiBPerSec)
	b.SLO = SLO{} // b itself is unconstrained; it must still not hurt a
	v := c.Admit(b)
	if v.Admitted {
		t.Fatalf("heavy tenant admitted although it breaks a's delay SLO")
	}
	if v.Binding != "victim:a" {
		t.Errorf("binding = %q, want victim:a (reason: %s)", v.Binding, v.Reason)
	}
	if !strings.Contains(v.Reason, `"a"`) {
		t.Errorf("reason %q does not name the victim", v.Reason)
	}

	// On an empty platform the same tenant is fine.
	fresh := testPlatform(t)
	if v := fresh.Admit(b); !v.Admitted {
		t.Errorf("heavy tenant alone should be admissible: %s", v.Reason)
	}
}

func TestResidualShrinksAndRecovers(t *testing.T) {
	c := testPlatform(t)
	before, err := c.ResidualService("encrypt")
	if err != nil {
		t.Fatal(err)
	}
	if before.Rate != 50*units.MiBPerSec {
		t.Fatalf("pristine residual rate = %v", before.Rate)
	}

	if v := c.Admit(tenant("t1", 10*units.MiBPerSec)); !v.Admitted {
		t.Fatalf("admit failed: %s", v.Reason)
	}
	during, err := c.ResidualService("encrypt")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(during.Rate), float64(40*units.MiBPerSec); got > want*1.0000001 || got < want*0.9999999 {
		t.Errorf("residual rate after admit = %v, want ~%v", during.Rate, units.Rate(want))
	}
	if len(during.Flows) != 1 || during.Flows[0] != "t1" {
		t.Errorf("hosted flows = %v", during.Flows)
	}
	if during.Curve.Latency() <= before.Curve.Latency() {
		t.Errorf("residual latency must grow under cross traffic")
	}

	if !c.Release("t1") {
		t.Fatal("release failed")
	}
	after, err := c.ResidualService("encrypt")
	if err != nil {
		t.Fatal(err)
	}
	if !after.Curve.Equal(before.Curve) {
		t.Errorf("residual after release = %v, want pristine %v", after.Curve, before.Curve)
	}
}

// Reservations are a deterministic function of (flow, platform), so any
// admission/release interleaving that ends with the same admitted set
// yields identical residual state.
func TestBookkeepingOrderIndependent(t *testing.T) {
	flows := []Flow{
		tenant("a", 5*units.MiBPerSec),
		tenant("b", 7*units.MiBPerSec),
		tenant("c", 3*units.MiBPerSec),
	}

	c1 := testPlatform(t)
	for _, f := range flows {
		if v := c1.Admit(f); !v.Admitted {
			t.Fatalf("c1 admit %s: %s", f.ID, v.Reason)
		}
	}
	c1.Release("b")

	c2 := testPlatform(t)
	if v := c2.Admit(flows[2]); !v.Admitted { // c first, then a
		t.Fatalf("c2 admit c: %s", v.Reason)
	}
	if v := c2.Admit(flows[0]); !v.Admitted {
		t.Fatalf("c2 admit a: %s", v.Reason)
	}

	for _, node := range c1.NodeNames() {
		r1, err1 := c1.ResidualService(node)
		r2, err2 := c2.ResidualService(node)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !r1.Curve.Equal(r2.Curve) {
			t.Errorf("node %s: residuals differ:\n  %v\n  %v", node, r1.Curve, r2.Curve)
		}
		if r1.Cross != r2.Cross {
			t.Errorf("node %s: aggregates differ: %+v vs %+v", node, r1.Cross, r2.Cross)
		}
	}
}

func TestVerdictCache(t *testing.T) {
	c := testPlatform(t)
	// A rejection stays cached while the platform is unchanged.
	bad := tenant("big", 500*units.MiBPerSec)
	v1 := c.Admit(bad)
	if v1.Admitted || v1.Cached {
		t.Fatalf("first verdict: %+v", v1)
	}
	v2 := c.Admit(bad)
	if !v2.Cached {
		t.Error("identical re-check must be served from the cache")
	}
	if v2.Admitted != v1.Admitted || v2.Reason != v1.Reason {
		t.Error("cached verdict must match the original")
	}

	// Any commit bumps the epoch and invalidates the cache.
	e := c.Epoch()
	if v := c.Admit(tenant("t1", units.MiBPerSec)); !v.Admitted {
		t.Fatalf("admit failed: %s", v.Reason)
	}
	if c.Epoch() != e+1 {
		t.Errorf("epoch = %d, want %d", c.Epoch(), e+1)
	}
	v3 := c.Admit(bad)
	if v3.Cached {
		t.Error("cache must be invalidated by a commit")
	}

	// Release also bumps the epoch.
	e = c.Epoch()
	c.Release("t1")
	if c.Epoch() != e+1 {
		t.Errorf("epoch after release = %d, want %d", c.Epoch(), e+1)
	}
	if v := c.Admit(bad); v.Cached {
		t.Error("cache must be invalidated by a release")
	}
}

func TestReleaseUnknownFlow(t *testing.T) {
	c := testPlatform(t)
	if c.Release("ghost") {
		t.Error("releasing an unknown flow must report false")
	}
	if c.Epoch() != 0 {
		t.Error("failed release must not bump the epoch")
	}
}

func TestReAdmitAfterRelease(t *testing.T) {
	c := testPlatform(t)
	f := tenant("t1", 10*units.MiBPerSec)
	v1 := c.Admit(f)
	if !v1.Admitted {
		t.Fatalf("admit: %s", v1.Reason)
	}
	c.Release("t1")
	v2 := c.Admit(f)
	if !v2.Admitted {
		t.Fatalf("re-admit: %s", v2.Reason)
	}
	if v1.Delay != v2.Delay || v1.Backlog != v2.Backlog {
		t.Errorf("re-admission on the emptied platform must promise the same bounds: %+v vs %+v", v1, v2)
	}
}

func TestResidualUnknownNode(t *testing.T) {
	c := testPlatform(t)
	if _, err := c.ResidualService("gpu"); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestResidualStarvedReporting(t *testing.T) {
	// A node whose static background cross traffic nearly saturates it:
	// reservations can push it into starvation only through Admit, which
	// rejects first — but the Residual report must still handle the
	// starved shape when background + reservations meet the rate.
	c, err := New("tight", []core.Node{
		{Name: "n", Rate: 10, CrossRate: 9.5, JobIn: 1, JobOut: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.ResidualService("n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Starved {
		t.Fatal("0.5 B/s of residual rate is not starvation")
	}
	if got := r.Rate; got <= 0 || got > 0.5000001 {
		t.Errorf("residual rate = %v, want 0.5", got)
	}
}

func TestNewRejectsBadPlatforms(t *testing.T) {
	if _, err := New("p", nil); err == nil {
		t.Error("empty platform must fail")
	}
	if _, err := New("p", []core.Node{{Rate: 1, JobIn: 1, JobOut: 1}}); err == nil {
		t.Error("unnamed node must fail")
	}
	if _, err := New("p", []core.Node{
		{Name: "n", Rate: 1, JobIn: 1, JobOut: 1},
		{Name: "n", Rate: 1, JobIn: 1, JobOut: 1},
	}); err == nil {
		t.Error("duplicate names must fail")
	}
	if _, err := New("p", []core.Node{{Name: "n", Rate: -1, JobIn: 1, JobOut: 1}}); err == nil {
		t.Error("invalid node must fail")
	}
}

// The residual curve reported for a node equals the curve the pristine
// service minus all reservations produces directly.
func TestResidualMatchesCurveAlgebra(t *testing.T) {
	c := testPlatform(t)
	for _, id := range []string{"a", "b"} {
		if v := c.Admit(tenant(id, 8*units.MiBPerSec)); !v.Admitted {
			t.Fatalf("admit %s: %s", id, v.Reason)
		}
	}
	r, err := c.ResidualService("encrypt")
	if err != nil {
		t.Fatal(err)
	}
	beta := curve.RateLatency(float64(50*units.MiBPerSec), 500e-6)
	want, ok := curve.ResidualService(beta, curve.Affine(float64(r.Cross.Rate), float64(r.Cross.Burst)))
	if !ok {
		t.Fatal("unexpected starvation")
	}
	if !r.Curve.Equal(want) {
		t.Errorf("residual = %v, want %v", r.Curve, want)
	}
}
