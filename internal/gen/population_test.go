package gen

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"streamcalc/internal/des"
)

func testSpec() PopulationSpec {
	return PopulationSpec{
		Templates:    32,
		TemplateSkew: 1,
		RateDist:     Dist{Kind: "pareto", Min: 64 << 10, Alpha: 1.6, Max: 64 << 20},
		BurstDist:    Dist{Kind: "lognormal", Mu: math.Log(32 << 10), Sigma: 0.7},
		Paths:        [][]string{{"ingest", "transcode", "egress"}, {"ingest", "egress"}},
		PathSkew:     0.8,
		SLOTiers: []SLOTier{
			{Weight: 0.7, MaxDelayMs: 500},
			{Weight: 0.3, MaxDelayMs: 100, MinThroughputFrac: 0.9},
		},
		Churn:   ChurnMix{Admit: 0.5, Release: 0.3, Recheck: 0.2},
		Arrival: ArrivalProcess{BaseRPS: 500, DiurnalAmplitude: 0.4, DiurnalPeriodSec: 60, BurstFactor: 3, BurstOnSec: 2, BurstOffSec: 10},
	}
}

// Same spec + seed must reproduce the exact flow and op sequences; a
// different seed must not.
func TestPopulationDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		a, err := NewPopulation(testSpec(), seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewPopulation(testSpec(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Flows(0, 500), b.Flows(0, 500)) {
			t.Fatalf("seed %d: flow sequences diverge", seed)
		}
		if !reflect.DeepEqual(a.PlanOps(200, 1000), b.PlanOps(200, 1000)) {
			t.Fatalf("seed %d: op schedules diverge", seed)
		}
	}
	a, _ := NewPopulation(testSpec(), 1)
	b, _ := NewPopulation(testSpec(), 2)
	if reflect.DeepEqual(a.Flows(0, 100), b.Flows(0, 100)) {
		t.Fatal("different seeds produced identical flows")
	}
}

// Flow(i) is random-access pure: materializing out of order or repeatedly
// gives the same flow.
func TestPopulationRandomAccess(t *testing.T) {
	p, err := NewPopulation(testSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Flows(0, 200)
	for _, i := range []int{199, 3, 77, 0, 150, 3} {
		if !reflect.DeepEqual(p.Flow(i), want[i]) {
			t.Fatalf("flow %d differs on re-access", i)
		}
	}
}

// hillIndex is the Hill estimator of the tail index over the top-k order
// statistics.
func hillIndex(samples []float64, k int) float64 {
	sort.Float64s(samples)
	n := len(samples)
	xk := samples[n-k-1]
	var s float64
	for i := n - k; i < n; i++ {
		s += math.Log(samples[i] / xk)
	}
	return float64(k) / s
}

// The Pareto sampler's empirical tail index must match its alpha.
func TestParetoTailIndex(t *testing.T) {
	for _, alpha := range []float64{1.3, 1.8, 2.5} {
		d := Dist{Kind: "pareto", Min: 1000, Alpha: alpha}
		r := des.NewRNG(9, 1)
		n := 60000
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = d.Sample(r)
		}
		got := hillIndex(samples, n/20)
		if math.Abs(got-alpha) > 0.15*alpha {
			t.Errorf("alpha %.2f: Hill estimate %.3f out of tolerance", alpha, got)
		}
	}
}

// Sampled means must track the analytic Mean (loose tolerance for the
// heavy-tailed laws at this sample size).
func TestDistMeans(t *testing.T) {
	dists := []Dist{
		{Kind: "const", Min: 5},
		{Kind: "uniform", Min: 2, Max: 10},
		{Kind: "pareto", Min: 100, Alpha: 2.5},
		{Kind: "lognormal", Mu: 3, Sigma: 0.5},
	}
	for _, d := range dists {
		r := des.NewRNG(11, 2)
		var sum float64
		n := 200000
		for i := 0; i < n; i++ {
			sum += d.Sample(r)
		}
		got, want := sum/float64(n), d.Mean()
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("%s: empirical mean %.3f vs analytic %.3f", d.Kind, got, want)
		}
	}
}

// The planned op mix must converge to the configured churn ratios, and the
// schedule must be causally ordered with release/recheck targets drawn from
// planned-alive flows only.
func TestChurnMixConvergence(t *testing.T) {
	p, err := NewPopulation(testSpec(), 21)
	if err != nil {
		t.Fatal(err)
	}
	const rampN, n = 5000, 40000
	ops := p.PlanOps(rampN, n)
	if len(ops) != n {
		t.Fatalf("planned %d ops, want %d", len(ops), n)
	}
	counts := map[OpKind]int{}
	alive := map[string]bool{}
	for i := 0; i < rampN; i++ {
		alive[FlowID(i)] = true
	}
	last := ops[0].At
	for _, op := range ops {
		counts[op.Kind]++
		if op.At < last {
			t.Fatal("op schedule is not time-ordered")
		}
		last = op.At
		switch op.Kind {
		case OpAdmit:
			if alive[op.Flow.ID] {
				t.Fatalf("admit of already-planned flow %s", op.Flow.ID)
			}
			alive[op.Flow.ID] = true
		case OpRelease:
			if !alive[op.ID] {
				t.Fatalf("release of non-alive flow %s", op.ID)
			}
			delete(alive, op.ID)
		case OpRecheck:
			if !alive[op.ID] {
				t.Fatalf("recheck of non-alive flow %s", op.ID)
			}
		}
	}
	mix := testSpec().Churn
	total := mix.Admit + mix.Release + mix.Recheck
	for kind, weight := range map[OpKind]float64{
		OpAdmit: mix.Admit, OpRelease: mix.Release, OpRecheck: mix.Recheck,
	} {
		got := float64(counts[kind]) / float64(n)
		want := weight / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v ratio %.4f, want %.4f ±0.02", kind, got, want)
		}
	}
}

// The op-arrival process must realize roughly the configured mean intensity
// (diurnal modulation averages out; bursts raise it by the duty-cycled
// factor).
func TestArrivalIntensity(t *testing.T) {
	spec := testSpec()
	spec.Arrival = ArrivalProcess{BaseRPS: 1000} // plain Poisson
	p, err := NewPopulation(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	ops := p.PlanOps(1000, n)
	span := ops[n-1].At.Seconds()
	got := float64(n) / span
	if math.Abs(got-1000) > 50 {
		t.Errorf("achieved planning rate %.1f ops/s, want ~1000", got)
	}
}

func TestPopulationSpecValidation(t *testing.T) {
	bad := testSpec()
	bad.Paths = nil
	if _, err := NewPopulation(bad, 1); err == nil {
		t.Error("empty paths accepted")
	}
	bad = testSpec()
	bad.RateDist = Dist{Kind: "nope"}
	if _, err := NewPopulation(bad, 1); err == nil {
		t.Error("unknown dist kind accepted")
	}
	bad = testSpec()
	bad.Churn = ChurnMix{}
	if _, err := NewPopulation(bad, 1); err == nil {
		t.Error("zero churn mix accepted")
	}
}

func TestParsePopulationSpec(t *testing.T) {
	doc := []byte(`{
		"rate_dist": {"kind": "pareto", "min": 65536, "alpha": 1.6},
		"burst_dist": {"kind": "const", "min": 32768},
		"paths": [["a", "b"]],
		"slo_tiers": [{"weight": 1, "max_delay_ms": 200}],
		"churn": {"admit": 1, "release": 1, "recheck": 1},
		"arrival": {"base_rps": 100}
	}`)
	s, err := ParsePopulationSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPopulation(s, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePopulationSpec([]byte(`{"rate_dist": {"kind": "const", "min": 1}, "typo_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
