package gen

import (
	"bytes"
	"testing"
)

func TestDNAAlphabetAndDeterminism(t *testing.T) {
	seq := DNA(10000, 1)
	if len(seq) != 10000 {
		t.Fatalf("len = %d", len(seq))
	}
	counts := map[byte]int{}
	for _, b := range seq {
		counts[b]++
	}
	for _, b := range Bases {
		if counts[b] < 2000 || counts[b] > 3000 {
			t.Errorf("base %c count %d far from uniform", b, counts[b])
		}
	}
	if len(counts) != 4 {
		t.Errorf("unexpected alphabet: %v", counts)
	}
	if !bytes.Equal(seq, DNA(10000, 1)) {
		t.Error("same seed must reproduce")
	}
	if bytes.Equal(seq, DNA(10000, 2)) {
		t.Error("different seeds must differ")
	}
}

func TestDNAWithPlants(t *testing.T) {
	q := DNA(100, 3)
	seq, plants := DNAWithPlants(10000, q, 1000, 4)
	if len(plants) == 0 {
		t.Fatal("no plants")
	}
	for _, p := range plants {
		if !bytes.Equal(seq[p:p+len(q)], q) {
			t.Errorf("plant at %d not intact", p)
		}
	}
	// Degenerate parameters plant nothing.
	if _, pl := DNAWithPlants(10, q, 0, 4); pl != nil {
		t.Error("interval 0 must not plant")
	}
	if _, pl := DNAWithPlants(10, DNA(100, 5), 5, 4); pl != nil {
		t.Error("query longer than sequence must not plant")
	}
}

func TestMutatedCopy(t *testing.T) {
	src := DNA(10000, 5)
	mut := MutatedCopy(src, 0.1, 6)
	if len(mut) != len(src) {
		t.Fatal("length changed")
	}
	diff := 0
	for i := range src {
		if src[i] != mut[i] {
			diff++
		}
	}
	if diff < 700 || diff > 1300 {
		t.Errorf("mutations = %d, want ~1000", diff)
	}
	if d := MutatedCopy(src, 0, 7); !bytes.Equal(d, src) {
		t.Error("rate 0 must be identity")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	seq := DNA(503, 8)
	doc := FASTA("chr1 test", seq, 60)
	header, parsed := ParseFASTA(doc)
	if header != "chr1 test" {
		t.Errorf("header = %q", header)
	}
	if !bytes.Equal(parsed, seq) {
		t.Error("sequence round trip failed")
	}
	// Default width.
	doc2 := FASTA("x", seq, 0)
	if _, p2 := ParseFASTA(doc2); !bytes.Equal(p2, seq) {
		t.Error("default-width round trip failed")
	}
	lines := bytes.Split(doc, []byte("\n"))
	for _, l := range lines[1 : len(lines)-1] {
		if len(l) > 60 {
			t.Errorf("line too long: %d", len(l))
		}
	}
}

func TestTextLengthAndDeterminism(t *testing.T) {
	for _, r := range []float64{-1, 0, 0.3, 0.6, 0.95, 2} {
		txt := Text(10000, r, 9)
		if len(txt) != 10000 {
			t.Errorf("redundancy %v: len %d", r, len(txt))
		}
	}
	if !bytes.Equal(Text(5000, 0.5, 1), Text(5000, 0.5, 1)) {
		t.Error("same seed must reproduce")
	}
}

func TestIncompressibleAndRepetitive(t *testing.T) {
	inc := Incompressible(10000, 1)
	if len(inc) != 10000 {
		t.Fatal("length")
	}
	// Byte histogram roughly flat.
	counts := make([]int, 256)
	for _, b := range inc {
		counts[b]++
	}
	for v, c := range counts {
		if c > 200 {
			t.Errorf("byte %d count %d too frequent", v, c)
		}
	}
	rep := Repetitive(100, "ab")
	if !bytes.Equal(rep[:4], []byte("abab")) {
		t.Error("phrase repetition broken")
	}
	if len(Repetitive(50, "")) != 50 {
		t.Error("default phrase length")
	}
}
