package gen

import (
	"fmt"
	"math"

	"streamcalc/internal/des"
)

// Dist is a declarative scalar distribution, JSON-encodable so population
// specs can carry heavy-tailed rate/burst laws as data. Supported kinds:
//
//   - "const":     always Min
//   - "uniform":   uniform on [Min, Max)
//   - "pareto":    Pareto with scale Min and tail index Alpha (P[X>x] =
//     (Min/x)^Alpha) — the classic heavy-tailed law for flow rates; the
//     mean is Min·Alpha/(Alpha−1) for Alpha > 1
//   - "lognormal": exp(N(Mu, Sigma²)), the other standard heavy-ish tail
//
// Max, when positive, truncates any law from above (resampling would bias
// the quantized class templates; a hard clip keeps Sample a pure function
// of one underlying draw).
type Dist struct {
	Kind  string  `json:"kind"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// Validate checks the parameterization.
func (d Dist) Validate() error {
	switch d.Kind {
	case "const":
		if d.Min <= 0 {
			return fmt.Errorf("gen: const dist needs min > 0")
		}
	case "uniform":
		if d.Min <= 0 || d.Max < d.Min {
			return fmt.Errorf("gen: uniform dist needs 0 < min <= max")
		}
	case "pareto":
		if d.Min <= 0 || d.Alpha <= 0 {
			return fmt.Errorf("gen: pareto dist needs min > 0 and alpha > 0")
		}
	case "lognormal":
		if d.Sigma < 0 {
			return fmt.Errorf("gen: lognormal dist needs sigma >= 0")
		}
	default:
		return fmt.Errorf("gen: unknown dist kind %q", d.Kind)
	}
	return nil
}

// Sample draws one value. Exactly one (kind "const": zero) uniform draw is
// consumed per call except for "lognormal", which consumes two (Box-Muller)
// — callers that need stream alignment across kinds should dedicate an RNG
// stream per distribution, as Population does.
func (d Dist) Sample(r *des.RNG) float64 {
	var v float64
	switch d.Kind {
	case "const":
		v = d.Min
	case "uniform":
		v = r.Uniform(d.Min, d.Max)
	case "pareto":
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		// Inverse transform: X = min · U^(−1/α).
		v = d.Min * math.Pow(u, -1/d.Alpha)
	case "lognormal":
		v = math.Exp(d.Mu + d.Sigma*normal(r))
	}
	if d.Max > 0 && v > d.Max {
		v = d.Max
	}
	return v
}

// Mean returns the distribution's expectation (ignoring truncation), used
// by scenario builders to size platform capacity against the offered load.
// Pareto with Alpha <= 1 has an infinite mean; +Inf is returned.
func (d Dist) Mean() float64 {
	switch d.Kind {
	case "const":
		return d.Min
	case "uniform":
		return (d.Min + d.Max) / 2
	case "pareto":
		if d.Alpha <= 1 {
			return math.Inf(1)
		}
		return d.Min * d.Alpha / (d.Alpha - 1)
	case "lognormal":
		return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
	}
	return 0
}

// normal returns one standard normal draw via Box-Muller (two uniforms per
// call; the second variate is discarded to keep Sample stateless).
func normal(r *des.RNG) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// zipfWeights returns n weights w_i ∝ 1/(i+1)^s, normalized to sum 1 — the
// standard skew law for template popularity (s = 0 is uniform).
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// pick draws an index from cumulative weights cum (cum[len-1] == 1).
func pick(r *des.RNG, cum []float64) int {
	u := r.Float64()
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// cumulative converts weights into a cumulative distribution.
func cumulative(w []float64) []float64 {
	cum := make([]float64, len(w))
	var s float64
	for i, v := range w {
		s += v
		cum[i] = s
	}
	if len(cum) > 0 {
		cum[len(cum)-1] = 1
	}
	return cum
}
