// Package gen produces the synthetic workloads that stand in for the
// paper's proprietary inputs: DNA databases/queries in FASTA format for the
// BLAST case study, and text corpora with tunable redundancy so the LZ4
// kernel of the bump-in-the-wire case study can be driven to specific
// compression ratios. All generators are deterministic for a given seed.
package gen

import (
	"bytes"
	"fmt"

	"streamcalc/internal/des"
)

// Bases are the DNA alphabet used by the generators, in 2-bit encoding
// order: A=0, C=1, G=2, T=3.
var Bases = []byte{'A', 'C', 'G', 'T'}

// DNA returns n random bases drawn uniformly from ACGT.
func DNA(n int, seed uint64) []byte {
	rng := des.NewRNG(seed, 100)
	out := make([]byte, n)
	for i := range out {
		out[i] = Bases[rng.Intn(4)]
	}
	return out
}

// DNAWithPlants returns n random bases into which copies of the query have
// been planted every interval bases (so BLAST searches have true positives
// with known locations). It returns the sequence and the plant positions.
func DNAWithPlants(n int, query []byte, interval int, seed uint64) (seq []byte, plants []int) {
	seq = DNA(n, seed)
	if interval <= 0 || len(query) == 0 || len(query) > n {
		return seq, nil
	}
	for pos := interval; pos+len(query) <= n; pos += interval {
		copy(seq[pos:], query)
		plants = append(plants, pos)
	}
	return seq, plants
}

// MutatedCopy returns a copy of seq in which each base is replaced by a
// random different base with probability rate — for generating homologous
// (but not identical) queries.
func MutatedCopy(seq []byte, rate float64, seed uint64) []byte {
	rng := des.NewRNG(seed, 101)
	out := append([]byte(nil), seq...)
	for i := range out {
		if rng.Float64() < rate {
			b := Bases[rng.Intn(4)]
			for b == out[i] {
				b = Bases[rng.Intn(4)]
			}
			out[i] = b
		}
	}
	return out
}

// FASTA renders a sequence as a FASTA record with the given header and
// line width (default 70 when width <= 0).
func FASTA(header string, seq []byte, width int) []byte {
	if width <= 0 {
		width = 70
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, ">%s\n", header)
	for i := 0; i < len(seq); i += width {
		end := i + width
		if end > len(seq) {
			end = len(seq)
		}
		b.Write(seq[i:end])
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// ParseFASTA extracts the concatenated sequence data and the first header
// from a FASTA document (a minimal single-record parser sufficient for the
// generated inputs; multiple records are concatenated).
func ParseFASTA(doc []byte) (header string, seq []byte) {
	lines := bytes.Split(doc, []byte("\n"))
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			if header == "" {
				header = string(bytes.TrimSpace(line[1:]))
			}
			continue
		}
		seq = append(seq, bytes.TrimSpace(line)...)
	}
	return header, seq
}

// Text returns an n-byte corpus with tunable redundancy in [0, 1]:
// redundancy 0 yields (nearly incompressible) uniform random bytes;
// higher values insert back-references — runs copied from earlier in the
// buffer — with increasing probability and length, which LZ4-style
// compressors exploit directly. Redundancy ~0.95 reaches LZ4 ratios above
// 5x; ~0.6 lands near the paper's observed average of 2.2x.
func Text(n int, redundancy float64, seed uint64) []byte {
	if redundancy < 0 {
		redundancy = 0
	}
	if redundancy > 1 {
		redundancy = 1
	}
	rng := des.NewRNG(seed, 102)
	out := make([]byte, 0, n)
	for len(out) < n {
		if len(out) > 16 && rng.Float64() < redundancy {
			// Back-reference: copy an earlier run from within the last
			// 60 KB so LZ4-class compressors (64 KiB window) can exploit
			// it regardless of corpus size.
			maxLen := 8 + int(redundancy*120)
			l := 4 + rng.Intn(maxLen)
			if l > n-len(out) {
				l = n - len(out)
			}
			lo := 0
			if len(out) > 60000 {
				lo = len(out) - 60000
			}
			start := lo + rng.Intn(len(out)-lo)
			for i := 0; i < l; i++ {
				out = append(out, out[start+i%(len(out)-start)])
			}
			continue
		}
		// Literal run of printable-ish bytes.
		l := 4 + rng.Intn(12)
		if l > n-len(out) {
			l = n - len(out)
		}
		for i := 0; i < l; i++ {
			out = append(out, byte(32+rng.Intn(95)))
		}
	}
	return out
}

// Incompressible returns n uniformly random bytes (worst case for LZ4:
// compression ratio ~1.0).
func Incompressible(n int, seed uint64) []byte {
	rng := des.NewRNG(seed, 103)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Uint64())
	}
	return out
}

// Repetitive returns n bytes of a short repeating phrase (best case for
// LZ4: very high compression ratio).
func Repetitive(n int, phrase string) []byte {
	if phrase == "" {
		phrase = "streaming data applications on heterogeneous platforms. "
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = phrase[i%len(phrase)]
	}
	return out
}
