package gen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"streamcalc/internal/admit"
	"streamcalc/internal/core"
	"streamcalc/internal/des"
	"streamcalc/internal/units"
)

// RNG stream IDs for the population generator (the package convention:
// every generator owns fixed streams so adding one never perturbs another).
const (
	streamTemplates = 110 // template rate/burst/path/tier draws
	streamArrival   = 111 // churn arrival process (interarrivals, burst phases)
	streamChurn     = 112 // churn op kinds and release/recheck targets
	streamAssign    = 113 // base of the per-flow template assignment streams
)

// SLOTier is one service tier of a population: the SLO template and its
// popularity weight. MinThroughputFrac asks for that fraction of the flow's
// own sustained rate as guaranteed throughput (0 leaves it unconstrained).
type SLOTier struct {
	Weight            float64 `json:"weight"`
	MaxDelayMs        float64 `json:"max_delay_ms,omitempty"`
	MaxBacklogBytes   float64 `json:"max_backlog_bytes,omitempty"`
	MinThroughputFrac float64 `json:"min_throughput_frac,omitempty"`
}

// ChurnMix weighs the op kinds of the sustained-churn phase. Weights are
// relative; they need not sum to 1.
type ChurnMix struct {
	Admit   float64 `json:"admit"`
	Release float64 `json:"release"`
	Recheck float64 `json:"recheck"`
}

// ArrivalProcess shapes the op-arrival intensity of the churn phase: a base
// Poisson rate modulated by a sinusoidal diurnal profile and a two-state
// (on/off) burst process with exponentially distributed phase durations —
// rate(t) = BaseRPS · (1 + DiurnalAmplitude·sin(2πt/Period)) · (BurstFactor
// while bursting, 1 otherwise).
type ArrivalProcess struct {
	BaseRPS          float64 `json:"base_rps"`
	DiurnalAmplitude float64 `json:"diurnal_amplitude,omitempty"` // [0, 1)
	DiurnalPeriodSec float64 `json:"diurnal_period_sec,omitempty"`
	BurstFactor      float64 `json:"burst_factor,omitempty"` // >= 1
	BurstOnSec       float64 `json:"burst_on_sec,omitempty"` // mean burst duration
	BurstOffSec      float64 `json:"burst_off_sec,omitempty"`
}

// PopulationSpec declaratively describes a synthetic tenant population:
// how many distinct flow templates exist, the (heavy-tailed) laws their
// rates and bursts are drawn from, the path and SLO-tier popularity, the
// churn mix, and the op-arrival process. The spec is JSON-encodable so load
// scenarios are data, and — with a seed — fully determines every flow and
// every op the generator emits.
type PopulationSpec struct {
	// Templates is the number of distinct flow classes sampled from the
	// distributions below (default 64). Individual flows draw a template by
	// Zipf(TemplateSkew) popularity, so per-admission analysis cost stays
	// O(templates) while the population's rates remain heavy-tailed.
	Templates    int     `json:"templates,omitempty"`
	TemplateSkew float64 `json:"template_skew,omitempty"` // Zipf exponent, 0 = uniform

	RateDist       Dist    `json:"rate_dist"`  // sustained rate, bytes/second
	BurstDist      Dist    `json:"burst_dist"` // token-bucket burst, bytes
	MaxPacketBytes float64 `json:"max_packet_bytes,omitempty"`

	// Paths lists the candidate node paths through the platform; PathSkew is
	// the Zipf exponent of their popularity.
	Paths    [][]string `json:"paths"`
	PathSkew float64    `json:"path_skew,omitempty"`

	SLOTiers []SLOTier      `json:"slo_tiers"`
	Churn    ChurnMix       `json:"churn"`
	Arrival  ArrivalProcess `json:"arrival"`
}

// Validate checks the spec and reports the first problem.
func (s *PopulationSpec) Validate() error {
	if s.Templates < 0 {
		return fmt.Errorf("gen: population templates must be >= 0")
	}
	if err := s.RateDist.Validate(); err != nil {
		return fmt.Errorf("rate_dist: %w", err)
	}
	if err := s.BurstDist.Validate(); err != nil {
		return fmt.Errorf("burst_dist: %w", err)
	}
	if len(s.Paths) == 0 {
		return fmt.Errorf("gen: population needs at least one path")
	}
	for i, p := range s.Paths {
		if len(p) == 0 {
			return fmt.Errorf("gen: population path %d is empty", i)
		}
	}
	if len(s.SLOTiers) == 0 {
		return fmt.Errorf("gen: population needs at least one SLO tier")
	}
	for i, t := range s.SLOTiers {
		if t.Weight < 0 {
			return fmt.Errorf("gen: SLO tier %d has negative weight", i)
		}
	}
	if s.Churn.Admit < 0 || s.Churn.Release < 0 || s.Churn.Recheck < 0 {
		return fmt.Errorf("gen: churn weights must be >= 0")
	}
	if s.Churn.Admit+s.Churn.Release+s.Churn.Recheck == 0 {
		return fmt.Errorf("gen: churn weights are all zero")
	}
	if s.Arrival.BaseRPS <= 0 {
		return fmt.Errorf("gen: arrival base_rps must be > 0")
	}
	if s.Arrival.DiurnalAmplitude < 0 || s.Arrival.DiurnalAmplitude >= 1 {
		return fmt.Errorf("gen: diurnal_amplitude must be in [0, 1)")
	}
	return nil
}

// FlowTemplate is one sampled flow class: every flow assigned the template
// shares its arrival envelope, path, and SLO (and therefore its admission
// class in the controller).
type FlowTemplate struct {
	Arrival core.Arrival
	Path    []string
	SLO     admit.SLO
}

// OpKind discriminates churn operations.
type OpKind uint8

const (
	OpAdmit OpKind = iota
	OpRelease
	OpRecheck
)

func (k OpKind) String() string {
	switch k {
	case OpAdmit:
		return "admit"
	case OpRelease:
		return "release"
	case OpRecheck:
		return "recheck"
	}
	return "unknown"
}

// Op is one scheduled operation of the churn phase. At is the offset from
// the phase start at which an open-loop harness should issue it.
type Op struct {
	At   time.Duration
	Kind OpKind
	Flow admit.Flow // populated for OpAdmit
	ID   string     // populated for OpRelease and OpRecheck
}

// Population deterministically expands a PopulationSpec under a seed: flow
// i is a pure function of (spec, seed, i) — random access, safe to generate
// from concurrent workers — and PlanOps extends the same determinism to the
// churn schedule. Same spec + seed → identical flows and op sequence.
type Population struct {
	spec      PopulationSpec
	seed      uint64
	templates []FlowTemplate
	tplCum    []float64 // Zipf popularity over templates
}

// NewPopulation validates the spec, applies defaults (64 templates, skew 1,
// 1500-byte packets), and samples the template table.
func NewPopulation(spec PopulationSpec, seed uint64) (*Population, error) {
	if spec.Templates == 0 {
		spec.Templates = 64
	}
	if spec.TemplateSkew == 0 {
		spec.TemplateSkew = 1
	}
	if spec.MaxPacketBytes == 0 {
		spec.MaxPacketBytes = 1500
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Population{spec: spec, seed: seed}

	r := des.NewRNG(seed, streamTemplates)
	pathCum := cumulative(zipfWeights(len(spec.Paths), spec.PathSkew))
	tierW := make([]float64, len(spec.SLOTiers))
	var tierSum float64
	for i, t := range spec.SLOTiers {
		tierW[i] = t.Weight
		tierSum += t.Weight
	}
	if tierSum == 0 {
		for i := range tierW {
			tierW[i] = 1
		}
		tierSum = float64(len(tierW))
	}
	for i := range tierW {
		tierW[i] /= tierSum
	}
	tierCum := cumulative(tierW)

	p.templates = make([]FlowTemplate, spec.Templates)
	for i := range p.templates {
		rate := spec.RateDist.Sample(r)
		burst := spec.BurstDist.Sample(r)
		path := spec.Paths[pick(r, pathCum)]
		tier := spec.SLOTiers[pick(r, tierCum)]
		slo := admit.SLO{}
		if tier.MaxDelayMs > 0 {
			slo.MaxDelay = time.Duration(tier.MaxDelayMs * float64(time.Millisecond))
		}
		if tier.MaxBacklogBytes > 0 {
			slo.MaxBacklog = units.Bytes(tier.MaxBacklogBytes)
		}
		if tier.MinThroughputFrac > 0 {
			slo.MinThroughput = units.Rate(rate * tier.MinThroughputFrac)
		}
		p.templates[i] = FlowTemplate{
			Arrival: core.Arrival{
				Rate:      units.Rate(rate),
				Burst:     units.Bytes(burst),
				MaxPacket: units.Bytes(spec.MaxPacketBytes),
			},
			Path: path,
			SLO:  slo,
		}
	}
	p.tplCum = cumulative(zipfWeights(spec.Templates, spec.TemplateSkew))
	return p, nil
}

// Templates returns the sampled template table (shared slices; read-only).
func (p *Population) Templates() []FlowTemplate { return p.templates }

// TemplateWeights returns each template's Zipf popularity (sums to 1):
// the expected fraction of flows assigned to it. Together with Templates
// this gives the realized expected demand of the population — the quantity
// a load scenario should size its platform against, since heavy-tailed
// rate draws make the realized template mean differ widely from the
// distribution's analytic mean.
func (p *Population) TemplateWeights() []float64 {
	w := make([]float64, len(p.tplCum))
	prev := 0.0
	for i, c := range p.tplCum {
		w[i] = c - prev
		prev = c
	}
	return w
}

// Spec returns the normalized spec the population was built from.
func (p *Population) Spec() PopulationSpec { return p.spec }

// FlowID returns the canonical ID of flow i.
func FlowID(i int) string { return fmt.Sprintf("f%08d", i) }

// Flow materializes flow i — a pure function of (spec, seed, i), so workers
// may generate disjoint index ranges concurrently and an HTTP client and an
// in-process harness given the same spec and seed produce byte-identical
// request streams.
func (p *Population) Flow(i int) admit.Flow {
	r := des.NewRNG(p.seed, streamAssign+uint64(i)<<8)
	tpl := p.templates[pick(r, p.tplCum)]
	return admit.Flow{ID: FlowID(i), Arrival: tpl.Arrival, Path: tpl.Path, SLO: tpl.SLO}
}

// Flows materializes flows [lo, hi).
func (p *Population) Flows(lo, hi int) []admit.Flow {
	out := make([]admit.Flow, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, p.Flow(i))
	}
	return out
}

// PlanOps builds the open-loop churn schedule: n ops whose timestamps
// follow the spec's nonhomogeneous arrival process and whose kinds follow
// the churn mix. Flows [0, rampN) are assumed registered at time zero (the
// ramp phase); admits allocate fresh indexes from rampN upward, releases
// and rechecks target a uniformly drawn planned-alive flow. The schedule is
// planned, not reactive: it never observes runtime verdicts, so the request
// sequence is a deterministic function of (spec, seed, rampN, n) — a
// release may target a flow the controller actually rejected, which the
// harness accounts as a miss rather than perturbing the sequence.
func (p *Population) PlanOps(rampN, n int) []Op {
	arr := des.NewRNG(p.seed, streamArrival)
	churn := des.NewRNG(p.seed, streamChurn)

	cw := []float64{p.spec.Churn.Admit, p.spec.Churn.Release, p.spec.Churn.Recheck}
	sum := cw[0] + cw[1] + cw[2]
	for i := range cw {
		cw[i] /= sum
	}
	churnCum := cumulative(cw)

	a := p.spec.Arrival
	burstFactor := a.BurstFactor
	if burstFactor < 1 {
		burstFactor = 1
	}
	bursting := false
	phaseEnd := math.Inf(1)
	if burstFactor > 1 && a.BurstOnSec > 0 && a.BurstOffSec > 0 {
		phaseEnd = arr.Exp(a.BurstOffSec)
	}

	alive := make([]int, rampN)
	for i := range alive {
		alive[i] = i
	}
	next := rampN

	ops := make([]Op, 0, n)
	now := 0.0
	for len(ops) < n {
		rate := a.BaseRPS
		if a.DiurnalAmplitude > 0 && a.DiurnalPeriodSec > 0 {
			rate *= 1 + a.DiurnalAmplitude*math.Sin(2*math.Pi*now/a.DiurnalPeriodSec)
		}
		if bursting {
			rate *= burstFactor
		}
		now += arr.Exp(1 / rate)
		for now >= phaseEnd {
			bursting = !bursting
			if bursting {
				phaseEnd += arr.Exp(a.BurstOnSec)
			} else {
				phaseEnd += arr.Exp(a.BurstOffSec)
			}
		}

		kind := OpKind(pick(churn, churnCum))
		if kind != OpAdmit && len(alive) == 0 {
			kind = OpAdmit
		}
		op := Op{At: time.Duration(now * float64(time.Second)), Kind: kind}
		switch kind {
		case OpAdmit:
			op.Flow = p.Flow(next)
			alive = append(alive, next)
			next++
		case OpRelease:
			j := churn.Intn(len(alive))
			op.ID = FlowID(alive[j])
			alive[j] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		case OpRecheck:
			op.ID = FlowID(alive[churn.Intn(len(alive))])
		}
		ops = append(ops, op)
	}
	return ops
}

// ParsePopulationSpec decodes a JSON spec, rejecting unknown fields so
// typos in scenario files fail loudly.
func ParsePopulationSpec(data []byte) (PopulationSpec, error) {
	var s PopulationSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("gen: population spec: %w", err)
	}
	return s, nil
}
