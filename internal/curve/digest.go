package curve

import "math"

// Structural digests (hash-consing support).
//
// Every Curve carries a 64-bit digest of its normalized representation,
// computed once at construction. Because constructors canonicalize the
// segment list (collinear merge, coincident-breakpoint resolution, noise
// clamping) before hashing, two curves built through the same normalized
// representation share a digest, and the digest can serve as a value
// identity for memoization: the operation memo keys results by
// (op, digest(a), digest(b)), and the admission layer keys verdicts and
// reservations by the digest of a flow's arrival envelope.
//
// The digest is a splitmix64-style avalanche hash over the float64 bit
// patterns of f(0) and every segment's (X, Y, Slope), with -0 folded into
// +0 so the two zero representations hash identically (NaN never reaches
// the hash: validation rejects it). Digest equality therefore means
// bit-identical normalized representations, up to a 2^-64 collision risk
// that the design accepts — the same trade hash-consed curve libraries
// (e.g. Nancy) make.

// mix64 folds one 64-bit word into the running digest with a
// multiply-xorshift avalanche step.
func mix64(h, v uint64) uint64 {
	h ^= v
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	return h
}

// fbits returns the canonical bit pattern of v (-0 folds to +0).
func fbits(v float64) uint64 {
	if v == 0 {
		v = 0 // fold -0 into +0
	}
	return math.Float64bits(v)
}

// digestCurve hashes a normalized curve representation.
func digestCurve(y0 float64, segs []Segment) uint64 {
	h := 0x9e3779b97f4a7c15 ^ uint64(len(segs))
	h = mix64(h, fbits(y0))
	for _, s := range segs {
		h = mix64(h, fbits(s.X))
		h = mix64(h, fbits(s.Y))
		h = mix64(h, fbits(s.Slope))
	}
	// Final avalanche so truncated uses of the digest stay well mixed.
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return h
}

// Digest returns the curve's structural 64-bit digest, computed once at
// construction over the normalized representation. Curves with equal
// digests are (up to hash collision) structurally identical; the digest is
// stable for the lifetime of the process but NOT across processes or
// releases — persist curves, not digests.
func (c Curve) Digest() uint64 { return c.digest }
