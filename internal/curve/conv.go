package curve

import (
	"math"
)

// Convolve computes the min-plus convolution
//
//	(f ⊗ g)(t) = inf_{0 <= s <= t} [ f(s) + g(t-s) ].
//
// Exact closed forms are used for the families that cover deterministic
// network calculus practice:
//
//   - both curves concave with f(0) = g(0) = 0 (arrival curves, maximum
//     service curves): f ⊗ g = min(f, g);
//   - both curves convex (rate-latency service curves and their
//     concatenations): computed by the slope-merge rule — segments of both
//     curves are traversed in order of increasing slope;
//   - concave ⊗ rate-latency: ShiftRight(min(f, line), T).
//
// Any other shape is handled exactly as well, by the general
// piece-decomposition algorithm (ConvolveExact). ConvolveSampled remains
// available for cross-validation.
func Convolve(f, g Curve) Curve {
	return memoBinary(opConv, f, g, func() Curve { return convolveDispatch(f, g) })
}

func convolveDispatch(f, g Curve) Curve {
	if f.IsConcave() && g.IsConcave() && f.AtZero() == 0 && g.AtZero() == 0 {
		return Min(f, g)
	}
	if f.IsConvex() && g.IsConvex() {
		return convolveConvex(f, g)
	}
	// Mixed closed form: concave ⊗ rate-latency. Since
	// beta_{R,T} = delta_T ⊗ lambda_R and both factors commute,
	// f ⊗ beta_{R,T} = ShiftRight(min(f, lambda_R), T) for concave f with
	// f(0) = 0 (lambda_R is concave and zero at the origin).
	if f.IsConcave() && f.AtZero() == 0 {
		if r, t, ok := asRateLatency(g); ok {
			return ShiftRight(Min(f, Line(r)), t)
		}
	}
	if g.IsConcave() && g.AtZero() == 0 {
		if r, t, ok := asRateLatency(f); ok {
			return ShiftRight(Min(g, Line(r)), t)
		}
	}
	// General shapes: the exact piece-decomposition algorithm.
	return ConvolveExact(f, g)
}

// asRateLatency reports whether c is exactly a rate-latency curve
// R·(t-T)⁺ and returns its parameters.
func asRateLatency(c Curve) (rate, latency float64, ok bool) {
	segs := c.Segments()
	if c.AtZero() != 0 {
		return 0, 0, false
	}
	switch len(segs) {
	case 1:
		s := segs[0]
		if s.Y == 0 {
			return s.Slope, 0, true
		}
	case 2:
		a, b := segs[0], segs[1]
		if a.Y == 0 && a.Slope == 0 && b.Y == 0 {
			return b.Slope, b.X, true
		}
	}
	return 0, 0, false
}

const autoSamples = 2048

// autoHorizon picks a sampling horizon comfortably past all breakpoints of
// both curves, where each is in its ultimate affine regime.
func autoHorizon(f, g Curve) float64 {
	h := 4 * (f.LastBreak() + g.LastBreak())
	if h <= 0 {
		h = 1
	}
	return h
}

// convolveConvex implements the exact slope-merge rule for convex curves:
// the convolution traverses the combined segments in increasing slope order,
// starting from f(0)+g(0). Convexity means each curve's finite pieces are
// already sorted by slope, so the traversal is a two-pointer merge of the
// two segment lists — O(n+m), no sort.
func convolveConvex(f, g Curve) Curve {
	fs, gs := f.segs, g.segs
	ultimate := math.Min(f.UltimateSlope(), g.UltimateSlope())
	start := f.AtZero() + g.AtZero()
	t, y := 0.0, start
	segs := make([]Segment, 0, len(fs)+len(gs))
	i, j := 0, 0 // finite pieces are fs[:len-1], gs[:len-1]
	for i+1 < len(fs) || j+1 < len(gs) {
		var slope, length float64
		if i+1 < len(fs) && (j+1 >= len(gs) || fs[i].Slope <= gs[j].Slope) {
			slope, length = fs[i].Slope, fs[i+1].X-fs[i].X
			i++
		} else {
			slope, length = gs[j].Slope, gs[j+1].X-gs[j].X
			j++
		}
		if slope >= ultimate {
			break // the infinite minimum-slope ray dominates from here on
		}
		segs = append(segs, Segment{t, y, slope})
		t += length
		y += length * slope
	}
	segs = append(segs, Segment{t, y, ultimate})
	return newOwned(start, segs)
}

// ConvolveSampled evaluates (f ⊗ g) numerically on an n-point grid over
// [0, horizon] and returns the piecewise-linear interpolant, extended past
// the horizon with the exact ultimate slope min(f∞, g∞). The infimum at
// each grid point considers every grid split plus the exact endpoints s = 0
// and s = t (so origin jumps are honored). Complexity O(n²).
func ConvolveSampled(f, g Curve, horizon float64, n int) Curve {
	if n < 2 {
		n = 2
	}
	if horizon <= 0 {
		horizon = 1
	}
	xs := make([]float64, n+1)
	ys := make([]float64, n+1)
	step := horizon / float64(n)
	for i := 0; i <= n; i++ {
		t := float64(i) * step
		xs[i] = t
		best := math.Inf(1)
		for j := 0; j <= i; j++ {
			s := float64(j) * step
			if v := f.Value(s) + g.Value(t-s); v < best {
				best = v
			}
		}
		// Exact endpoints (the grid already contains them, but Value(0)
		// uses y0, which encodes the origin jump correctly).
		if v := f.AtZero() + g.Value(t); v < best {
			best = v
		}
		if v := f.Value(t) + g.AtZero(); v < best {
			best = v
		}
		ys[i] = best
	}
	// Enforce monotonicity against floating noise.
	for i := 1; i <= n; i++ {
		if ys[i] < ys[i-1] {
			ys[i] = ys[i-1]
		}
	}
	return FromPoints(xs, ys, math.Min(f.UltimateSlope(), g.UltimateSlope()))
}

// ConvolveAll folds Convolve over a non-empty list of curves (the
// concatenated end-to-end service curve of a chain of nodes).
func ConvolveAll(cs []Curve) Curve {
	if len(cs) == 0 {
		panic("curve: ConvolveAll of empty list")
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = Convolve(out, c)
	}
	return out
}

// MaxPlusConvolve computes the max-plus convolution
//
//	(f ⊕ g)(t) = sup_{0 <= s <= t} [ f(s) + g(t-s) ],
//
// exactly when both curves are convex with value 0 at the origin (then it
// equals max(f, g) — the dual of the concave min-plus rule) and by sampling
// otherwise.
func MaxPlusConvolve(f, g Curve) Curve {
	if f.IsConvex() && g.IsConvex() && f.AtZero() == 0 && g.AtZero() == 0 {
		return Max(f, g)
	}
	horizon := autoHorizon(f, g)
	n := autoSamples
	xs := make([]float64, n+1)
	ys := make([]float64, n+1)
	step := horizon / float64(n)
	for i := 0; i <= n; i++ {
		t := float64(i) * step
		xs[i] = t
		best := math.Inf(-1)
		for j := 0; j <= i; j++ {
			s := float64(j) * step
			if v := f.Value(s) + g.Value(t-s); v > best {
				best = v
			}
		}
		ys[i] = best
	}
	for i := 1; i <= n; i++ {
		if ys[i] < ys[i-1] {
			ys[i] = ys[i-1]
		}
	}
	return FromPoints(xs, ys, math.Max(f.UltimateSlope(), g.UltimateSlope()))
}
