package curve

import (
	"math"
	"math/rand"
	"testing"
)

// Scratch.HDev is a memo bypass, not a different algorithm: on any curve
// pair it must return the bitwise-identical value of the package function,
// including across reuse of the internal buffers.
func TestScratchHDevMatchesHDev(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := NewScratch()
	for trial := 0; trial < 300; trial++ {
		f := randCurve(rng, 5, 1)
		g := randCurve(rng, 5, 1)
		want := HDev(f, g)
		got := s.HDev(f, g)
		if math.IsInf(want, 1) {
			if !math.IsInf(got, 1) {
				t.Fatalf("trial %d: scratch %v, want +Inf", trial, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("trial %d: scratch HDev %v != HDev %v (must be bitwise identical)", trial, got, want)
		}
	}
}

func TestFIFOThetaInsert(t *testing.T) {
	g := []float64{0, 1, 2}
	if got := FIFOThetaInsert(g, 1); len(got) != 3 {
		t.Errorf("exact duplicate inserted: %v", got)
	}
	if got := FIFOThetaInsert(g, 1+1e-12); len(got) != 3 {
		t.Errorf("near-equal duplicate inserted: %v", got)
	}
	got := FIFOThetaInsert(g, 1.5)
	want := []float64{0, 1, 1.5, 2}
	if len(got) != 4 {
		t.Fatalf("insert failed: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("insert out of order: %v, want %v", got, want)
		}
	}
	for j := 1; j < len(got); j++ {
		if got[j] <= got[j-1] {
			t.Fatalf("grid not strictly increasing: %v", got)
		}
	}
	// Appending at the end and at the front both keep order.
	if got := FIFOThetaInsert([]float64{1, 2}, 3); got[2] != 3 {
		t.Errorf("tail insert: %v", got)
	}
	if got := FIFOThetaInsert([]float64{1, 2}, 0.5); got[0] != 0.5 {
		t.Errorf("head insert: %v", got)
	}
}
