package curve

import (
	"math"
	"math/rand"
	"testing"
)

func TestConcaveHullMajorantAndMinimal(t *testing.T) {
	// A packet staircase (100 bytes every 10 s): its step corners all lie
	// on the line 10*t + 100, so the least concave majorant is exactly the
	// leaky bucket Affine(10, 100).
	st := Staircase(100, 10, 5)
	h := ConcaveHull(st)
	if !h.IsConcave() {
		t.Fatalf("hull not concave: %v", h)
	}
	for _, x := range []float64{0, 0.01, 5, 10, 15, 37, 100} {
		if h.Value(x) < st.Value(x)-1e-9 {
			t.Errorf("hull below original at %v: %v < %v", x, h.Value(x), st.Value(x))
		}
	}
	if want := Affine(10, 100); !h.Equal(want) {
		t.Errorf("staircase hull = %v, want %v", h, want)
	}
}

func TestConcaveHullIdempotentAndTight(t *testing.T) {
	conc := Affine(50, 200)
	if got := ConcaveHull(conc); !got.Equal(conc) {
		t.Errorf("hull of concave curve changed it: %v", got)
	}
	// Fuzz: hull is concave, dominates, and touches the original at every
	// hull vertex (least majorant: each vertex is an original breakpoint).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		c := randomIncreasingCurve(rng)
		h := ConcaveHull(c)
		if !h.IsConcave() {
			t.Fatalf("trial %d: hull not concave\nc=%v\nh=%v", trial, c, h)
		}
		for _, x := range c.Breakpoints() {
			if h.Value(x) < c.Value(x)-1e-6*(1+c.Value(x)) {
				t.Fatalf("trial %d: hull below original at %v\nc=%v\nh=%v", trial, x, c, h)
			}
		}
		for _, s := range h.Segments() {
			if math.Abs(h.ValueRight(s.X)-c.ValueRight(s.X)) > 1e-6*(1+c.ValueRight(s.X)) {
				t.Fatalf("trial %d: hull vertex %v does not touch original (%v vs %v)\nc=%v\nh=%v",
					trial, s.X, h.ValueRight(s.X), c.ValueRight(s.X), c, h)
			}
		}
		hr, _ := h.UltimateAffine()
		cr, _ := c.UltimateAffine()
		if math.Abs(hr-cr) > 1e-9*(1+cr) {
			t.Fatalf("trial %d: hull changed ultimate rate %v -> %v", trial, cr, hr)
		}
	}
}

// randomIncreasingCurve builds a small random wide-sense increasing curve
// with upward jumps and mixed slopes (generally neither concave nor convex).
func randomIncreasingCurve(rng *rand.Rand) Curve {
	n := 1 + rng.Intn(5)
	segs := make([]Segment, n)
	x, y := 0.0, rng.Float64()*5
	for i := range segs {
		segs[i] = Segment{x, y, rng.Float64() * 20}
		dx := 0.1 + rng.Float64()*2
		y = segs[i].Y + segs[i].Slope*dx + rng.Float64()*3 // jump up
		x += dx
	}
	return newOwned(0, segs)
}

// ResidualService must now accept non-concave cross envelopes by
// concavifying them instead of reporting starvation.
func TestResidualServiceConcavifiesCross(t *testing.T) {
	beta := RateLatency(1000, 0.01)
	cross := Staircase(40, 0.2, 5) // packet staircase: not concave
	if cross.IsConcave() {
		t.Fatal("test premise: staircase should not be concave")
	}
	res, ok := ResidualService(beta, cross)
	if !ok {
		t.Fatal("residual with staircase cross reported starvation")
	}
	// The staircase's hull is Affine(200, 40) (its corners are collinear),
	// so the residual must reduce to the one computed against that hull —
	// sound because the hull is itself a valid envelope of the cross flow.
	want, wok := ResidualService(beta, Affine(200, 40))
	if !wok || !res.Equal(want) {
		t.Errorf("residual = %v, want %v (ok=%v)", res, want, wok)
	}
}

func TestFIFOResidualDominatesBlind(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		R := 100 + rng.Float64()*900
		T := rng.Float64() * 0.05
		beta := RateLatency(R, T)
		r := 1 + rng.Float64()*R*0.8
		b := rng.Float64() * 500
		cross := Affine(r, b)
		if rng.Intn(2) == 0 {
			h := b/4 + 1
			cross = Staircase(h, h/r, 6) // same ultimate rate, exercises the hull path
		}
		blind, ok := ResidualService(beta, cross)
		if !ok {
			continue
		}
		tmax, _ := FIFOThetaMax(beta, cross)
		for _, th := range []float64{0, tmax / 3, tmax / 2, tmax} {
			fifo, fok := FIFOResidual(beta, cross, th)
			if !fok {
				t.Fatalf("trial %d: fifo(th=%v) starved where blind did not", trial, th)
			}
			xs := mergeBreakpoints(blind.Breakpoints(), fifo.Breakpoints())
			xs = append(xs, tmax, tmax*2+1, tmax*10+5)
			for _, x := range xs {
				if fifo.Value(x) < blind.Value(x)-1e-6*(1+blind.Value(x)) {
					t.Fatalf("trial %d: fifo(th=%v) below blind at t=%v: %v < %v\nbeta=%v\ncross=%v",
						trial, th, x, fifo.Value(x), blind.Value(x), beta, cross)
				}
			}
		}
	}
}

func TestFIFOResidualCanonicalClosedForm(t *testing.T) {
	// beta = (R, T), cross = (r, b), theta past T + b/R: beta_theta jumps
	// to R(theta-T)-b at theta, then climbs at R - r.
	R, T, r, b := 1000.0, 0.01, 300.0, 50.0
	beta := RateLatency(R, T)
	cross := Affine(r, b)
	theta := T + b/R + 0.02
	fifo, ok := FIFOResidual(beta, cross, theta)
	if !ok {
		t.Fatal("starved")
	}
	jump := R*(theta-T) - b
	if got := fifo.ValueRight(theta); math.Abs(got-jump) > 1e-6*(1+jump) {
		t.Errorf("value just after theta = %v, want %v", got, jump)
	}
	if got := fifo.Value(theta * 0.999); got != 0 {
		t.Errorf("value before theta = %v, want 0", got)
	}
	at := theta + 0.05
	want := R*(at-T) - (r*(at-theta) + b)
	if got := fifo.Value(at); math.Abs(got-want) > 1e-6*(1+want) {
		t.Errorf("value at %v = %v, want %v", at, got, want)
	}
}

func TestFIFOResidualBestImprovesDelay(t *testing.T) {
	// With affine cross and rate-latency beta, delay(theta) is strictly
	// decreasing on the dominance-safe grid, so the optimum is thetaMax and
	// it strictly beats the blind bound.
	R, T, r, b := 1000.0, 0.01, 300.0, 50.0
	alpha := Affine(200, 100)
	beta := RateLatency(R, T)
	cross := Affine(r, b)
	blind, _ := ResidualService(beta, cross)
	blindD := HDev(alpha, blind)
	res, theta, ok := FIFOResidualBest(alpha, beta, cross)
	if !ok {
		t.Fatal("starved")
	}
	if bestD := HDev(alpha, res); bestD >= blindD {
		t.Errorf("best fifo delay %v not better than blind %v (theta=%v)", bestD, blindD, theta)
	}
	tmax, _ := FIFOThetaMax(beta, cross)
	if math.Abs(theta-tmax) > 1e-9*(1+tmax) {
		t.Errorf("affine case optimal theta = %v, want thetaMax %v", theta, tmax)
	}
	// Fuzz: the best member's delay bound never exceeds blind's.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		beta := RateLatency(100+rng.Float64()*900, rng.Float64()*0.05)
		cross := Affine(rng.Float64()*80, rng.Float64()*500)
		alpha := Affine(rng.Float64()*50, rng.Float64()*300)
		blind, ok := ResidualService(beta, cross)
		if !ok {
			continue
		}
		res, _, ok := FIFOResidualBest(alpha, beta, cross)
		if !ok {
			t.Fatalf("trial %d: best starved where blind did not", trial)
		}
		if d, bd := HDev(alpha, res), HDev(alpha, blind); d > bd+1e-9*(1+bd) {
			t.Fatalf("trial %d: best delay %v worse than blind %v", trial, d, bd)
		}
	}
}

func TestFIFOResidualZeroCross(t *testing.T) {
	beta := RateLatency(500, 0.02)
	res, ok := FIFOResidual(beta, Zero(), 0.5)
	if !ok || !res.Equal(beta) {
		t.Errorf("zero cross: got %v ok=%v, want beta back", res, ok)
	}
}
