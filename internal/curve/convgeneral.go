package curve

import (
	"math"
	"sort"
)

// Exact min-plus convolution for ARBITRARY piecewise-linear curves, via the
// classic decomposition used by the RTC/COINC toolboxes: a curve is the
// pointwise minimum of its pieces — each an affine segment on its domain
// and +inf outside — and convolution distributes over minima:
//
//	f ⊗ g = min_{i,j} (f_i ⊗ g_j).
//
// The convolution of two affine pieces has a closed form: the domains add
// and the result follows the smaller slope over its length, then the larger
// slope over its length (+inf beyond). The lower envelope of all pairwise
// results is assembled exactly: its kinks lie at piece breakpoints or at
// crossings of two affine legs, all of which are enumerated.
//
// This covers the mixed-shape cases that the fast closed forms in
// Convolve miss (e.g. a non-concave propagated output bound convolved with
// a multi-slope convex service curve) without resorting to sampling.

// piece is an affine piece on [x0, x1] (x1 may be +inf), +inf outside.
type piece struct {
	x0, x1 float64
	v0     float64
	slope  float64
}

// pieces decomposes a curve; the origin's point value contributes a
// zero-length piece when the curve jumps at 0.
func pieces(c Curve) []piece {
	segs := c.Segments()
	out := make([]piece, 0, len(segs)+1)
	if c.AtZero() < c.Burst() {
		out = append(out, piece{x0: 0, x1: 0, v0: c.AtZero(), slope: 0})
	}
	for i, s := range segs {
		end := math.Inf(1)
		if i+1 < len(segs) {
			end = segs[i+1].X
		}
		out = append(out, piece{x0: s.X, x1: end, v0: s.Y, slope: s.Slope})
	}
	return out
}

// leg is one affine stretch of a pairwise convolution result: value
// v0 + slope*(t-x0) on [x0, x1], +inf outside.
type leg struct {
	x0, x1 float64
	v0     float64
	slope  float64
}

func (l leg) valueAt(t float64) float64 {
	if t < l.x0-1e-12 || t > l.x1+1e-12 {
		return math.Inf(1)
	}
	if t > l.x1 {
		t = l.x1
	}
	if t < l.x0 {
		t = l.x0
	}
	return l.v0 + l.slope*(t-l.x0)
}

// convPieceLegs convolves two pieces and returns the (at most two) legs of
// the result.
func convPieceLegs(a, b piece) []leg {
	if a.slope > b.slope {
		a, b = b, a
	}
	lenA := a.x1 - a.x0
	lenB := b.x1 - b.x0
	start := a.x0 + b.x0
	v := a.v0 + b.v0
	var legs []leg
	end1 := start + lenA
	legs = append(legs, leg{x0: start, x1: end1, v0: v, slope: a.slope})
	if !math.IsInf(lenA, 1) {
		v1 := v + a.slope*lenA
		end2 := end1 + lenB
		if lenB > 0 || math.IsInf(lenB, 1) {
			legs = append(legs, leg{x0: end1, x1: end2, v0: v1, slope: b.slope})
		}
	}
	return legs
}

// ConvolveExact computes (f ⊗ g) exactly for arbitrary piecewise-linear
// curves by assembling the lower envelope of all pairwise piece
// convolutions. Complexity is quadratic in the total leg count (fine for
// the segment counts of real models); Convolve's closed forms remain the
// fast path for concave/convex families.
func ConvolveExact(f, g Curve) Curve {
	var legs []leg
	for _, a := range pieces(f) {
		for _, b := range pieces(g) {
			legs = append(legs, convPieceLegs(a, b)...)
		}
	}

	// Candidate kink abscissas: leg endpoints and pairwise leg crossings.
	candSet := map[float64]struct{}{0: {}}
	add := func(x float64) {
		if x >= 0 && !math.IsInf(x, 1) {
			candSet[x] = struct{}{}
		}
	}
	for _, l := range legs {
		add(l.x0)
		add(l.x1)
	}
	for i := 0; i < len(legs); i++ {
		for j := i + 1; j < len(legs); j++ {
			a, b := legs[i], legs[j]
			if a.slope == b.slope {
				continue
			}
			// Solve a.v0 + a.slope*(t-a.x0) = b.v0 + b.slope*(t-b.x0).
			t := (b.v0 - b.slope*b.x0 - a.v0 + a.slope*a.x0) / (a.slope - b.slope)
			lo := math.Max(a.x0, b.x0)
			hi := math.Min(a.x1, b.x1)
			if t > lo && t < hi {
				add(t)
			}
		}
	}
	xs := make([]float64, 0, len(candSet))
	for x := range candSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	uniq := xs[:0]
	for _, x := range xs {
		if len(uniq) == 0 || x-uniq[len(uniq)-1] > absEps(x) {
			uniq = append(uniq, x)
		}
	}
	xs = uniq

	minAt := func(t float64) float64 {
		best := math.Inf(1)
		for _, l := range legs {
			if v := l.valueAt(t); v < best {
				best = v
			}
		}
		return best
	}

	// Reconstruct the envelope segment by segment. On each open interval
	// between candidates the envelope is affine (all leg crossings are
	// candidates), but it may JUMP at a candidate (a constraining leg ends
	// there), so each segment's start value is recovered from two interior
	// evaluations rather than the point value. The representation is
	// right-continuous: at a jump point the (upper) right limit is stored,
	// matching the library-wide convention.
	segs := make([]Segment, 0, len(xs))
	for i, x := range xs {
		var y, slope float64
		if i+1 < len(xs) {
			w := xs[i+1] - x
			t1, t2 := x+w/3, x+2*w/3
			v1, v2 := minAt(t1), minAt(t2)
			slope = (v2 - v1) / (t2 - t1)
			y = v1 - slope*(t1-x)
		} else {
			// Final ray: every surviving leg is infinite and affine.
			v1, v2 := minAt(x+1), minAt(x+2)
			slope = v2 - v1
			y = v1 - slope*1
		}
		span := 1.0
		if i+1 < len(xs) {
			span = xs[i+1] - x
		}
		slope = clampSlope(slope, y, span)
		if y < 0 && -y <= absEps(minAt(x+span/2)) {
			y = 0 // cancellation noise, relative to the local value scale
		}
		segs = append(segs, Segment{x, y, slope})
	}
	// Monotonic guard against floating noise: segment start values must be
	// non-decreasing along the curve.
	for i := 1; i < len(segs); i++ {
		prevEnd := segs[i-1].Y + segs[i-1].Slope*(segs[i].X-segs[i-1].X)
		if segs[i].Y < prevEnd-absEps(prevEnd) {
			segs[i].Y = prevEnd
		}
	}
	// The exact origin value is f(0)+g(0) (the s=0 split).
	y0 := f.AtZero() + g.AtZero()
	if y0 > segs[0].Y {
		y0 = segs[0].Y
	}
	return newOwned(y0, segs)
}

// withOrigin returns c with its value at 0 replaced (clamped to the right
// limit so the curve stays wide-sense increasing).
func withOrigin(c Curve, y0 float64) Curve {
	segs := c.Segments()
	if y0 > segs[0].Y {
		y0 = segs[0].Y
	}
	return newOwned(y0, segs)
}
