package curve

import (
	"math"
	"math/rand"
	"testing"
)

// checkConvExact verifies got(t) == inf_s f(s)+g(t-s) against a fine grid:
// the exact result must never exceed the grid infimum (an over-estimate)
// and must match it at grid points that realize exact splits.
func checkConvExact(t *testing.T, f, g, got Curve, horizon float64) {
	t.Helper()
	const n = 400
	const splits = 2400 // finer than the outer grid: interior jumps make the split infimum sharp
	for i := 0; i <= n; i++ {
		x := horizon * float64(i) / float64(n)
		best := math.Inf(1)
		for j := 0; j <= splits; j++ {
			s := x * float64(j) / float64(splits)
			if v := f.Value(s) + g.Value(x-s); v < best {
				best = v
			}
		}
		if v := f.AtZero() + g.Value(x); v < best {
			best = v
		}
		if v := f.Value(x) + g.AtZero(); v < best {
			best = v
		}
		gv := got.Value(x)
		if gv > best+1e-6*(1+math.Abs(best)) {
			t.Fatalf("exact conv above brute at t=%g: %g > %g", x, gv, best)
		}
		// The exact algorithm should essentially achieve the brute value
		// (the grid can only over-estimate slightly).
		slack := (f.UltimateSlope() + g.UltimateSlope()) * horizon / splits * 4
		if gv < best-slack-1e-9 {
			t.Fatalf("exact conv far below brute at t=%g: %g < %g", x, gv, best)
		}
	}
}

func TestConvolveExactMatchesClosedForms(t *testing.T) {
	// Rate-latency concatenation.
	got := ConvolveExact(RateLatency(4, 3), RateLatency(7, 2))
	if !got.Equal(RateLatency(4, 5)) {
		t.Errorf("RL concat: %v", got)
	}
	// Concave min rule.
	a1, a2 := Affine(1, 10), Affine(3, 2)
	if !ConvolveExact(a1, a2).Equal(Min(a1, a2)) {
		t.Errorf("concave rule failed")
	}
	// Mixed closed form.
	a, b := Affine(2, 6), RateLatency(3, 2)
	want := ShiftRight(Min(a, Line(3)), 2)
	got = ConvolveExact(a, b)
	if !got.ZeroAtOrigin().Equal(want) {
		t.Errorf("mixed: %v want %v", got, want)
	}
}

func TestConvolveExactStaircase(t *testing.T) {
	// Staircase arrivals (interior jumps!) through a rate-latency server —
	// the shape class the closed forms do not cover.
	sc := Staircase(10, 2, 4)
	b := RateLatency(8, 1)
	got := ConvolveExact(sc, b)
	checkConvExact(t, sc, b, got, 16)
}

func TestConvolveExactNonConvexNonConcave(t *testing.T) {
	// An S-shaped curve (convex then concave): neither family.
	s := New(0, []Segment{{0, 0, 1}, {2, 2, 5}, {4, 12, 1}})
	b := RateLatency(3, 1)
	got := ConvolveExact(s, b)
	checkConvExact(t, s, b, got, 14)
	// And against another irregular curve.
	s2 := New(0, []Segment{{0, 1, 0}, {3, 1, 2}})
	got2 := ConvolveExact(s, s2)
	checkConvExact(t, s, s2, got2, 14)
}

func TestConvolveExactRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	randomCurve := func() Curve {
		// 2-4 random monotone segments.
		n := 2 + rng.Intn(3)
		x := 0.0
		y := 0.0
		segs := make([]Segment, 0, n)
		if rng.Intn(2) == 0 {
			y = rng.Float64() * 3 // jump at origin
		}
		for i := 0; i < n; i++ {
			slope := rng.Float64() * 4
			segs = append(segs, Segment{x, y, slope})
			dx := 0.5 + rng.Float64()*2
			y += slope * dx
			if rng.Intn(3) == 0 {
				y += rng.Float64() * 2 // interior jump
			}
			x += dx
		}
		return New(0, segs)
	}
	for k := 0; k < 15; k++ {
		f, g := randomCurve(), randomCurve()
		got := ConvolveExact(f, g)
		checkConvExact(t, f, g, got, 18)
	}
}

func TestConvolveExactOriginJumps(t *testing.T) {
	// Both curves jump at 0: the convolution's origin value is the sum of
	// the point values, the right limit the min of cross sums.
	f := Affine(1, 5)
	g := Affine(2, 3)
	got := ConvolveExact(f, g)
	if got.AtZero() != 0 {
		t.Errorf("origin = %v", got.AtZero())
	}
	// Right limit at 0: min(f(0)+g(0+), f(0+)+g(0)) = min(3, 5) = 3.
	if v := got.Burst(); math.Abs(v-3) > 1e-9 {
		t.Errorf("burst = %v, want 3", v)
	}
}

func TestConvolveDispatchesToExact(t *testing.T) {
	// The general Convolve entry point must route irregular shapes to the
	// exact algorithm (same result, no sampling artifacts).
	s := New(0, []Segment{{0, 0, 1}, {2, 2, 5}, {4, 12, 1}})
	b := New(0, []Segment{{0, 1, 0}, {3, 1, 2}})
	viaConvolve := Convolve(s, b)
	viaExact := ConvolveExact(s, b)
	if !viaConvolve.Equal(viaExact) {
		t.Error("Convolve must dispatch irregular shapes to ConvolveExact")
	}
}
