package curve

import (
	"math"
	"sort"
)

// combine computes op applied pointwise to a and b. When crossings is true
// (required for min/max), intersection points of the two curves inside
// segment interiors are added as breakpoints so the result is exactly
// piecewise linear.
func combine(a, b Curve, op func(x, y float64) float64, crossings bool) Curve {
	xs := mergeBreakpoints(a.Breakpoints(), b.Breakpoints())
	if crossings {
		xs = insertCrossings(xs, a, b)
	}
	segs := make([]Segment, 0, len(xs))
	for i, x := range xs {
		var y float64
		if x == 0 {
			y = op(a.Burst(), b.Burst())
		} else {
			y = op(a.Value(x), b.Value(x))
		}
		var slope float64
		if i+1 < len(xs) {
			next := xs[i+1]
			vL := op(a.ValueLeft(next), b.ValueLeft(next))
			slope = (vL - y) / (next - x)
		} else {
			// Final ray: both curves are affine past the last breakpoint.
			p1, p2 := x+1, x+2
			slope = op(a.Value(p2), b.Value(p2)) - op(a.Value(p1), b.Value(p1))
		}
		if slope < 0 && slope > -1e-7 {
			slope = 0
		}
		segs = append(segs, Segment{x, y, slope})
	}
	return New(op(a.AtZero(), b.AtZero()), segs)
}

func mergeBreakpoints(a, b []float64) []float64 {
	xs := append(append([]float64(nil), a...), b...)
	sort.Float64s(xs)
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x-out[len(out)-1] > absEps(x) {
			out = append(out, x)
		}
	}
	return out
}

// insertCrossings adds, between every pair of adjacent breakpoints (and on
// the final ray), the abscissa where the two curves intersect, if any.
func insertCrossings(xs []float64, a, b Curve) []float64 {
	extra := []float64(nil)
	cross := func(lo, hi float64) {
		mid := (lo + hi) / 2
		if math.IsInf(hi, 1) {
			mid = lo + 1
		}
		sa, sb := a.segAt(mid), b.segAt(mid)
		va := sa.Y + sa.Slope*(mid-sa.X)
		vb := sb.Y + sb.Slope*(mid-sb.X)
		ds := sa.Slope - sb.Slope
		if ds == 0 {
			return
		}
		t := mid + (vb-va)/ds
		if t > lo+absEps(lo) && (math.IsInf(hi, 1) || t < hi-absEps(hi)) {
			extra = append(extra, t)
		}
	}
	for i := 0; i+1 < len(xs); i++ {
		cross(xs[i], xs[i+1])
	}
	cross(xs[len(xs)-1], math.Inf(1))
	if len(extra) == 0 {
		return xs
	}
	return mergeBreakpoints(xs, extra)
}

// Min returns the pointwise minimum of a and b. For concave curves that are
// 0 at the origin this equals their min-plus convolution.
func Min(a, b Curve) Curve { return combine(a, b, math.Min, true) }

// Max returns the pointwise maximum of a and b.
func Max(a, b Curve) Curve { return combine(a, b, math.Max, true) }

// Add returns the pointwise sum a + b.
func Add(a, b Curve) Curve { return combine(a, b, func(x, y float64) float64 { return x + y }, false) }

// Sub returns the pointwise difference a - b. The result must still be
// wide-sense increasing (e.g. b is a constant curve, as in the packetizer
// transform); Sub panics otherwise.
func Sub(a, b Curve) Curve {
	return combine(a, b, func(x, y float64) float64 { return x - y }, false)
}

// PositivePart returns max(a, 0) — the [·]⁺ operator.
func PositivePart(a Curve) Curve { return Max(a, Zero()) }

// Scale returns k*a for k >= 0.
func Scale(a Curve, k float64) Curve {
	if k < 0 {
		panic("curve: Scale by negative factor")
	}
	segs := a.Segments()
	for i := range segs {
		segs[i].Y *= k
		segs[i].Slope *= k
	}
	return New(a.AtZero()*k, segs)
}

// ScaleTime returns g(t) = a(t/k) for k > 0 (time stretched by factor k):
// breakpoints move to k*X and slopes divide by k.
func ScaleTime(a Curve, k float64) Curve {
	if k <= 0 {
		panic("curve: ScaleTime by non-positive factor")
	}
	segs := a.Segments()
	for i := range segs {
		segs[i].X *= k
		segs[i].Slope /= k
	}
	return New(a.AtZero(), segs)
}

// ShiftRight delays the curve by T >= 0:
//
//	g(t) = a(t-T) for t > T, g(t) = 0 for t <= T
//
// (with g(T) = a(0+) in our right-continuous representation when a jumps at
// the origin). ShiftRight(a, T) equals the min-plus convolution of a with
// the pure-delay curve delta_T.
func ShiftRight(a Curve, T float64) Curve {
	if T < 0 {
		panic("curve: ShiftRight by negative delay")
	}
	if T == 0 {
		return a
	}
	src := a.Segments()
	segs := make([]Segment, 0, len(src)+1)
	segs = append(segs, Segment{0, 0, 0})
	for _, s := range src {
		segs = append(segs, Segment{s.X + T, s.Y, s.Slope})
	}
	return New(0, segs)
}

// ShiftLeft advances the curve by T >= 0: g(t) = a(t+T). The value at the
// new origin is a's (right-continuous) value at T.
func ShiftLeft(a Curve, T float64) Curve {
	if T < 0 {
		panic("curve: ShiftLeft by negative amount")
	}
	if T == 0 {
		return a
	}
	src := a.Segments()
	segs := make([]Segment, 0, len(src))
	for _, s := range src {
		switch {
		case s.X <= T:
			// This segment covers (or ends before) the new origin; (re)set
			// the head segment to its restriction starting at T.
			head := Segment{0, s.Y + s.Slope*(T-s.X), s.Slope}
			if len(segs) == 0 {
				segs = append(segs, head)
			} else {
				segs[0] = head
			}
		default:
			segs = append(segs, Segment{s.X - T, s.Y, s.Slope})
		}
	}
	return New(segs[0].Y, segs)
}

// AddBurst adds c to the curve for all t > 0, leaving the value at 0
// unchanged — the packetizer arrival transform alpha(t) + l_max·1_{t>0}.
func AddBurst(a Curve, c float64) Curve {
	if c < 0 {
		panic("curve: AddBurst with negative c")
	}
	segs := a.Segments()
	for i := range segs {
		segs[i].Y += c
	}
	return New(a.AtZero(), segs)
}

// SubConstantPositive returns [a - c]⁺ for c >= 0 — the packetizer service
// transform beta'(t) = [beta(t) - l_max]⁺.
func SubConstantPositive(a Curve, c float64) Curve {
	if c < 0 {
		panic("curve: SubConstantPositive with negative c")
	}
	if c == 0 {
		return a
	}
	tc := a.InverseLower(c)
	if math.IsInf(tc, 1) {
		return Zero() // a never reaches c
	}
	if tc == 0 {
		// Positive from the origin (a(0+) >= c); every later value is >= c
		// by monotonicity.
		segs := a.Segments()
		for i := range segs {
			segs[i].Y = math.Max(0, segs[i].Y-c)
		}
		return New(math.Max(0, a.AtZero()-c), segs)
	}
	segs := []Segment{{0, 0, 0}}
	at := a.segAt(tc)
	segs = append(segs, Segment{tc, math.Max(0, a.Value(tc)-c), at.Slope})
	for _, s := range a.Segments() {
		if s.X > tc {
			segs = append(segs, Segment{s.X, s.Y - c, s.Slope})
		}
	}
	return New(0, segs)
}
