package curve

import (
	"math"
	"sort"
)

// binOp identifies a pointwise binary operation for the merge kernels.
type binOp uint8

const (
	binMin binOp = iota
	binMax
	binAdd
	binSub
)

func (op binOp) apply(x, y float64) float64 {
	switch op {
	case binMin:
		return math.Min(x, y)
	case binMax:
		return math.Max(x, y)
	case binAdd:
		return x + y
	default:
		return x - y
	}
}

// needsCrossings reports whether the op's result can kink strictly inside a
// segment pair (min/max switch attaining operand where the curves cross).
func (op binOp) needsCrossings() bool { return op == binMin || op == binMax }

// combine computes op applied pointwise to a and b, dispatching to the
// O(n+m) two-pointer merge kernel, with the sort-based path kept as a
// fallback for pathological inputs (non-finite breakpoints) and as the
// reference implementation for differential tests.
func combine(a, b Curve, op binOp) Curve {
	if !kernelSafe(a) || !kernelSafe(b) {
		return combineSorted(a, b, op)
	}
	return combineMerge(a, b, op)
}

// kernelSafe reports whether the merge kernel's preconditions hold: finite,
// strictly increasing breakpoints (guaranteed by validation except for
// curves deliberately built with infinite abscissas).
func kernelSafe(c Curve) bool {
	for i, s := range c.segs {
		if math.IsInf(s.X, 0) {
			return false
		}
		if i > 0 && !(s.X > c.segs[i-1].X) {
			return false
		}
	}
	return true
}

// combineMerge is the O(n+m+k) two-pointer kernel (k = crossings inserted):
// it walks both already-sorted segment lists once, evaluating each curve
// incrementally at merged breakpoints and, for min/max, inserting the
// crossing abscissa where the attaining operand switches inside an interval.
func combineMerge(a, b Curve, op binOp) Curve {
	as, bs := a.segs, b.segs
	segs := make([]Segment, 0, len(as)+len(bs)+4)
	ia, ib := 0, 0
	x := 0.0
	for {
		sa, sb := as[ia], bs[ib]
		// End of the current interval: the nearest upcoming breakpoint.
		nx := math.Inf(1)
		if ia+1 < len(as) {
			nx = as[ia+1].X
		}
		if ib+1 < len(bs) && bs[ib+1].X < nx {
			nx = bs[ib+1].X
		}
		va := sa.Y + sa.Slope*(x-sa.X)
		vb := sb.Y + sb.Slope*(x-sb.X)
		for {
			y := op.apply(va, vb)
			var slope float64
			switch op {
			case binAdd:
				slope = sa.Slope + sb.Slope
			case binSub:
				slope = sa.Slope - sb.Slope
			default:
				// Min/max: the slope is the attaining operand's; on a tie the
				// lower (for min) or higher (for max) slope wins going forward.
				tol := absEps(math.Max(math.Abs(va), math.Abs(vb)))
				switch {
				case math.Abs(va-vb) <= tol:
					if op == binMin {
						slope = math.Min(sa.Slope, sb.Slope)
					} else {
						slope = math.Max(sa.Slope, sb.Slope)
					}
				case (va < vb) == (op == binMin):
					slope = sa.Slope
				default:
					slope = sb.Slope
				}
			}
			if op.needsCrossings() && sa.Slope != sb.Slope {
				// Crossing strictly inside the remaining interval: emit the
				// current piece and restart from the crossing, where the
				// attaining operand flips.
				tc := x + (vb-va)/(sa.Slope-sb.Slope)
				inside := tc > x+absEps(x) && (math.IsInf(nx, 1) || tc < nx-absEps(nx))
				if inside {
					segs = append(segs, Segment{x, y, slope})
					x = tc
					va = sa.Y + sa.Slope*(x-sa.X)
					vb = sb.Y + sb.Slope*(x-sb.X)
					continue
				}
			}
			segs = append(segs, Segment{x, y, slope})
			break
		}
		if math.IsInf(nx, 1) {
			break
		}
		x = nx
		if ia+1 < len(as) && as[ia+1].X <= nx {
			ia++
		}
		if ib+1 < len(bs) && bs[ib+1].X <= nx {
			ib++
		}
	}
	return newOwned(op.apply(a.y0, b.y0), segs)
}

// combineSorted is the original sort-based implementation: merge all
// breakpoints, insert crossings by bisection, and evaluate both curves from
// scratch (O(log n) per point) at every breakpoint. Kept as the reference
// semantics for the differential tests and as the fallback for inputs the
// merge kernel does not accept.
func combineSorted(a, b Curve, op binOp) Curve {
	xs := mergeBreakpoints(a.Breakpoints(), b.Breakpoints())
	if op.needsCrossings() {
		xs = insertCrossings(xs, a, b)
	}
	segs := make([]Segment, 0, len(xs))
	for i, x := range xs {
		var y float64
		if x == 0 {
			y = op.apply(a.Burst(), b.Burst())
		} else {
			y = op.apply(a.Value(x), b.Value(x))
		}
		var slope float64
		if i+1 < len(xs) {
			next := xs[i+1]
			vL := op.apply(a.ValueLeft(next), b.ValueLeft(next))
			slope = clampSlope((vL-y)/(next-x), y, next-x)
		} else {
			// Final ray: both curves are affine past the last breakpoint.
			p1, p2 := x+1, x+2
			slope = op.apply(a.Value(p2), b.Value(p2)) - op.apply(a.Value(p1), b.Value(p1))
			slope = clampSlope(slope, y, math.Inf(1))
		}
		segs = append(segs, Segment{x, y, slope})
	}
	return newOwned(op.apply(a.AtZero(), b.AtZero()), segs)
}

func mergeBreakpoints(a, b []float64) []float64 {
	xs := append(append([]float64(nil), a...), b...)
	sort.Float64s(xs)
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x-out[len(out)-1] > absEps(x) {
			out = append(out, x)
		}
	}
	return out
}

// insertCrossings adds, between every pair of adjacent breakpoints (and on
// the final ray), the abscissa where the two curves intersect, if any.
func insertCrossings(xs []float64, a, b Curve) []float64 {
	extra := []float64(nil)
	cross := func(lo, hi float64) {
		mid := (lo + hi) / 2
		if math.IsInf(hi, 1) {
			mid = lo + 1
		}
		sa, sb := a.segAt(mid), b.segAt(mid)
		va := sa.Y + sa.Slope*(mid-sa.X)
		vb := sb.Y + sb.Slope*(mid-sb.X)
		ds := sa.Slope - sb.Slope
		if ds == 0 {
			return
		}
		t := mid + (vb-va)/ds
		if t > lo+absEps(lo) && (math.IsInf(hi, 1) || t < hi-absEps(hi)) {
			extra = append(extra, t)
		}
	}
	for i := 0; i+1 < len(xs); i++ {
		cross(xs[i], xs[i+1])
	}
	cross(xs[len(xs)-1], math.Inf(1))
	if len(extra) == 0 {
		return xs
	}
	return mergeBreakpoints(xs, extra)
}

// Min returns the pointwise minimum of a and b. For concave curves that are
// 0 at the origin this equals their min-plus convolution.
func Min(a, b Curve) Curve {
	return memoBinary(opMin, a, b, func() Curve { return combine(a, b, binMin) })
}

// Max returns the pointwise maximum of a and b.
func Max(a, b Curve) Curve {
	return memoBinary(opMax, a, b, func() Curve { return combine(a, b, binMax) })
}

// Add returns the pointwise sum a + b.
func Add(a, b Curve) Curve {
	return memoBinary(opAdd, a, b, func() Curve { return combine(a, b, binAdd) })
}

// Sub returns the pointwise difference a - b. The result must still be
// wide-sense increasing (e.g. b is a constant curve, as in the packetizer
// transform); Sub panics otherwise.
func Sub(a, b Curve) Curve { return combine(a, b, binSub) }

// PositivePart returns max(a, 0) — the [·]⁺ operator.
func PositivePart(a Curve) Curve { return Max(a, Zero()) }

// Scale returns k*a for k >= 0.
func Scale(a Curve, k float64) Curve {
	if k < 0 {
		panic("curve: Scale by negative factor")
	}
	segs := a.Segments()
	for i := range segs {
		segs[i].Y *= k
		segs[i].Slope *= k
	}
	return newOwned(a.AtZero()*k, segs)
}

// ScaleTime returns g(t) = a(t/k) for k > 0 (time stretched by factor k):
// breakpoints move to k*X and slopes divide by k.
func ScaleTime(a Curve, k float64) Curve {
	if k <= 0 {
		panic("curve: ScaleTime by non-positive factor")
	}
	segs := a.Segments()
	for i := range segs {
		segs[i].X *= k
		segs[i].Slope /= k
	}
	return newOwned(a.AtZero(), segs)
}

// ShiftRight delays the curve by T >= 0:
//
//	g(t) = a(t-T) for t > T, g(t) = 0 for t <= T
//
// (with g(T) = a(0+) in our right-continuous representation when a jumps at
// the origin). ShiftRight(a, T) equals the min-plus convolution of a with
// the pure-delay curve delta_T.
func ShiftRight(a Curve, T float64) Curve {
	if T < 0 {
		panic("curve: ShiftRight by negative delay")
	}
	if T == 0 {
		return a
	}
	return memoUnary(opShiftRight, a, T, func() Curve {
		segs := make([]Segment, 0, len(a.segs)+1)
		segs = append(segs, Segment{0, 0, 0})
		for _, s := range a.segs {
			segs = append(segs, Segment{s.X + T, s.Y, s.Slope})
		}
		return newOwned(0, segs)
	})
}

// ShiftLeft advances the curve by T >= 0: g(t) = a(t+T). The value at the
// new origin is a's (right-continuous) value at T.
func ShiftLeft(a Curve, T float64) Curve {
	if T < 0 {
		panic("curve: ShiftLeft by negative amount")
	}
	if T == 0 {
		return a
	}
	src := a.segs
	segs := make([]Segment, 0, len(src))
	for _, s := range src {
		switch {
		case s.X <= T:
			// This segment covers (or ends before) the new origin; (re)set
			// the head segment to its restriction starting at T.
			head := Segment{0, s.Y + s.Slope*(T-s.X), s.Slope}
			if len(segs) == 0 {
				segs = append(segs, head)
			} else {
				segs[0] = head
			}
		default:
			segs = append(segs, Segment{s.X - T, s.Y, s.Slope})
		}
	}
	return newOwned(segs[0].Y, segs)
}

// AddBurst adds c to the curve for all t > 0, leaving the value at 0
// unchanged — the packetizer arrival transform alpha(t) + l_max·1_{t>0}.
func AddBurst(a Curve, c float64) Curve {
	if c < 0 {
		panic("curve: AddBurst with negative c")
	}
	return memoUnary(opAddBurst, a, c, func() Curve {
		segs := a.Segments()
		for i := range segs {
			segs[i].Y += c
		}
		return newOwned(a.AtZero(), segs)
	})
}

// SubConstantPositive returns [a - c]⁺ for c >= 0 — the packetizer service
// transform beta'(t) = [beta(t) - l_max]⁺.
func SubConstantPositive(a Curve, c float64) Curve {
	if c < 0 {
		panic("curve: SubConstantPositive with negative c")
	}
	if c == 0 {
		return a
	}
	return memoUnary(opSubConst, a, c, func() Curve {
		tc := a.InverseLower(c)
		if math.IsInf(tc, 1) {
			return Zero() // a never reaches c
		}
		if tc == 0 {
			// Positive from the origin (a(0+) >= c); every later value is >= c
			// by monotonicity.
			segs := a.Segments()
			for i := range segs {
				segs[i].Y = math.Max(0, segs[i].Y-c)
			}
			return newOwned(math.Max(0, a.AtZero()-c), segs)
		}
		segs := []Segment{{0, 0, 0}}
		at := a.segAt(tc)
		segs = append(segs, Segment{tc, math.Max(0, a.Value(tc)-c), at.Slope})
		for _, s := range a.segs {
			if s.X > tc {
				segs = append(segs, Segment{s.X, s.Y - c, s.Slope})
			}
		}
		return newOwned(0, segs)
	})
}
