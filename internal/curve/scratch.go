package curve

// Scratch holds per-worker reusable buffers for the hot deviation queries of
// a lattice search. The tight-rung enumeration in internal/core scores one
// HDev per θ-vector; routing those through the global op memo would pay a
// shard lock and a map insert per leaf for keys that never recur within a
// search (every leaf curve is distinct). Scratch.HDev bypasses the memo and
// runs the identical kernel on reused breakpoint buffers instead: zero
// steady-state allocation, no cross-worker contention, and — because it is
// the same candidate evaluation on the same immutable curves — results that
// are bitwise identical to HDev's.
//
// A Scratch is not safe for concurrent use; give each worker its own.
type Scratch struct {
	fbp, gbp []float64
}

// NewScratch returns an empty Scratch; buffers grow on first use and are
// retained across calls.
func NewScratch() *Scratch { return &Scratch{} }

// HDev computes the horizontal deviation h(f, g) exactly like the package
// function HDev, bypassing the op memo and reusing internal buffers.
func (s *Scratch) HDev(f, g Curve) float64 {
	s.fbp = f.appendBreakpoints(s.fbp[:0])
	s.gbp = g.appendBreakpoints(s.gbp[:0])
	return hDevOn(f, g, s.fbp, s.gbp)
}
