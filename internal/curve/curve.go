// Package curve implements the piecewise-linear function algebra that
// underlies deterministic network calculus: wide-sense-increasing curves on
// [0, +inf) with the min-plus operations (minimum, maximum, addition,
// min-plus convolution and deconvolution) and the deviation measures
// (horizontal deviation = delay bound, vertical deviation = backlog bound).
//
// # Representation
//
// A Curve is a finite sequence of affine segments plus an explicit value at
// t = 0. Segment i starts at X_i (X_0 = 0) with value Y_i and slope S_i and
// extends to the start of segment i+1; the final segment extends to +inf.
// The curve is right-continuous on (0, inf): Value(X_i) = Y_i. A jump at the
// origin — ubiquitous in network calculus (a leaky-bucket arrival curve has
// alpha(0) = 0 but alpha(0+) = b) — is expressed by y0 < segs[0].Y.
//
// All curves are wide-sense increasing with non-negative slopes; constructors
// and operations preserve this invariant.
package curve

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// eps is the base relative/absolute tolerance used when comparing breakpoint
// coordinates, values, and slopes. All comparisons derived from it are
// relative-or-absolute (see absEps and slopeTol), so curves at byte/sec
// magnitudes (1e9 slopes, 1e9 values) normalize as reliably as unit-scale
// ones.
const eps = 1e-9

// Segment is one affine piece of a Curve: on [X, nextX) the curve has value
// Y + Slope*(t-X).
type Segment struct {
	X     float64 // start abscissa
	Y     float64 // value at X (right limit when X == 0)
	Slope float64 // non-negative slope
}

// Curve is a wide-sense-increasing piecewise-linear function on [0, +inf).
// Curves are immutable after construction and carry a structural digest
// (see Digest) computed once by the constructor. The zero value of Curve is
// not valid; use a constructor.
type Curve struct {
	y0     float64 // value at exactly t = 0
	segs   []Segment
	digest uint64 // structural hash of the normalized representation
}

// New builds a curve from an explicit value at zero and a segment list.
// Segments must start at X = 0, be strictly increasing in X, have
// non-negative slopes, and be wide-sense increasing overall. New panics on a
// malformed description; it is intended for package-internal constructors
// and tests (use the named constructors for common shapes).
//
// New copies segs; package-internal code that owns its slice uses newOwned
// to skip the copy.
func New(y0 float64, segs []Segment) Curve {
	return newOwned(y0, append([]Segment(nil), segs...))
}

// newOwned is the internal no-copy constructor: it takes ownership of segs,
// normalizes, validates, and computes the structural digest. Every Curve in
// the package is built through here so the digest invariant holds globally.
func newOwned(y0 float64, segs []Segment) Curve {
	c := Curve{y0: y0, segs: segs}
	c.normalize()
	if err := c.validate(); err != nil {
		panic("curve: " + err.Error())
	}
	c.digest = digestCurve(c.y0, c.segs)
	return c
}

// normalize clamps floating-point slope noise, merges adjacent collinear
// segments, and drops zero-length segments that carry no jump.
func (c *Curve) normalize() {
	if len(c.segs) == 0 {
		return
	}
	// Clamp slightly-negative slopes produced by catastrophic cancellation
	// in upstream arithmetic (value differences divided by short intervals).
	// The tolerance scales with the segment's value magnitude over its own
	// span, so GB-scale curves with sub-microsecond breakpoints are handled
	// the same as unit-scale ones; genuinely decreasing segments still fail
	// validation below.
	for i := range c.segs {
		s := &c.segs[i]
		if s.Slope < 0 {
			dt := math.Inf(1)
			if i+1 < len(c.segs) {
				dt = c.segs[i+1].X - s.X
			}
			if -s.Slope <= slopeTol(s.Slope, 0, s.Y, dt) {
				s.Slope = 0
			}
		}
	}
	out := c.segs[:0]
	for i, s := range c.segs {
		if len(out) > 0 {
			p := &out[len(out)-1]
			endV := p.Y + p.Slope*(s.X-p.X)
			if math.Abs(s.X-p.X) <= absEps(s.X) {
				// Coincident start: keep the later definition (it
				// overrides), preserving any jump it encodes.
				*p = s
				continue
			}
			// Collinear continuation: merge when the value matches and the
			// slopes agree to within what is distinguishable over this
			// segment's own span at its value magnitude.
			dt := math.Inf(1)
			if i+1 < len(c.segs) {
				dt = c.segs[i+1].X - s.X
			}
			if math.Abs(s.Y-endV) <= absEps(endV) && math.Abs(s.Slope-p.Slope) <= slopeTol(s.Slope, p.Slope, s.Y, dt) {
				continue
			}
		}
		out = append(out, s)
	}
	c.segs = out
}

func absEps(v float64) float64 { return eps * (1 + math.Abs(v)) }

// slopeTol is the relative-or-absolute tolerance for comparing slopes s1 and
// s2 on a segment of span dt at value magnitude y. Two slope contributions
// are indistinguishable: noise proportional to the slopes themselves, and
// noise from value-difference cancellation, which is relative to the value
// magnitude divided by the span. The latter term is what makes GB/s curves
// (|y| ~ 1e9) with microsecond spans normalize correctly — their slope noise
// is orders of magnitude above any absolute cutoff.
func slopeTol(s1, s2, y, dt float64) float64 {
	t := 8 * eps * (1 + math.Abs(s1) + math.Abs(s2))
	if dt > 0 && !math.IsInf(dt, 1) {
		t += 8 * eps * (1 + math.Abs(y)) / dt
	}
	return t
}

// clampSlope zeroes a computed slope that is negative only by cancellation
// noise (relative to value magnitude y over span dt); larger negatives pass
// through for validation to reject.
func clampSlope(slope, y, dt float64) float64 {
	if slope < 0 && -slope <= slopeTol(slope, 0, y, dt) {
		return 0
	}
	return slope
}

func (c *Curve) validate() error {
	if len(c.segs) == 0 {
		return fmt.Errorf("no segments")
	}
	if c.segs[0].X != 0 {
		return fmt.Errorf("first segment must start at 0, got %g", c.segs[0].X)
	}
	if c.y0 > c.segs[0].Y+absEps(c.y0) {
		return fmt.Errorf("downward jump at origin: y0=%g > f(0+)=%g", c.y0, c.segs[0].Y)
	}
	for i, s := range c.segs {
		if s.Slope < 0 {
			return fmt.Errorf("segment %d has negative slope %g", i, s.Slope)
		}
		if math.IsNaN(s.X) || math.IsNaN(s.Y) || math.IsNaN(s.Slope) {
			return fmt.Errorf("segment %d contains NaN", i)
		}
		if i > 0 {
			p := c.segs[i-1]
			if s.X <= p.X {
				return fmt.Errorf("segment %d X=%g not increasing past %g", i, s.X, p.X)
			}
			endV := p.Y + p.Slope*(s.X-p.X)
			if s.Y < endV-absEps(endV) {
				return fmt.Errorf("downward jump at X=%g: %g -> %g", s.X, endV, s.Y)
			}
		}
	}
	return nil
}

// --- Constructors ---------------------------------------------------------

// Zero returns the identically-zero curve.
func Zero() Curve {
	return newOwned(0, []Segment{{0, 0, 0}})
}

// Constant returns the curve that is 0 at t=0 and c for all t>0 (c >= 0).
// For c == 0 it is the zero curve.
func Constant(c float64) Curve {
	return newOwned(0, []Segment{{0, c, 0}})
}

// Affine returns the leaky-bucket (token-bucket) arrival curve
//
//	alpha(t) = rate*t + burst for t > 0, alpha(0) = 0.
//
// This is the curve the paper uses for arrival constraints.
func Affine(rate, burst float64) Curve {
	return newOwned(0, []Segment{{0, burst, rate}})
}

// RateLatency returns the rate-latency service curve
//
//	beta(t) = rate * max(0, t-latency).
func RateLatency(rate, latency float64) Curve {
	if latency <= 0 {
		return newOwned(0, []Segment{{0, 0, rate}})
	}
	return newOwned(0, []Segment{{0, 0, 0}, {latency, 0, rate}})
}

// Line returns the curve rate*t (an affine curve with zero burst).
func Line(rate float64) Curve { return Affine(rate, 0) }

// Step returns the curve that is 0 on [0, at) and height for t >= at
// (right-continuous). For at <= 0 it equals Constant(height).
func Step(height, at float64) Curve {
	if at <= 0 {
		return Constant(height)
	}
	return newOwned(0, []Segment{{0, 0, 0}, {at, height, 0}})
}

// Bucket is a (rate, burst) leaky-bucket descriptor for Envelope.
type Bucket struct {
	Rate  float64
	Burst float64
}

// Envelope builds the concave arrival envelope min_i(Rate_i·t + Burst_i)
// over one or more leaky buckets, with f(0) = 0, in a single O(k log k)
// lower-envelope construction instead of folding Min over k affine curves.
// All rates and bursts must be non-negative and at least one bucket is
// required.
func Envelope(buckets []Bucket) Curve {
	if len(buckets) == 0 {
		panic("curve: Envelope needs at least one bucket")
	}
	if len(buckets) == 1 {
		return Affine(buckets[0].Rate, buckets[0].Burst)
	}
	// Lower envelope of lines y = r·t + b on t >= 0, via a monotone
	// convex-hull sweep: sort by rate descending (envelope pieces appear in
	// decreasing slope order from t = 0 outward), keep min burst among equal
	// rates, then stack-prune lines that never attain the minimum.
	lines := append([]Bucket(nil), buckets...)
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Rate != lines[j].Rate {
			return lines[i].Rate > lines[j].Rate
		}
		return lines[i].Burst < lines[j].Burst
	})
	// hull[k] holds envelope lines in decreasing rate order; start[k] is
	// where hull[k] becomes the minimum.
	hull := make([]Bucket, 0, len(lines))
	start := make([]float64, 0, len(lines))
	for _, l := range lines {
		if len(hull) > 0 && l.Rate == hull[len(hull)-1].Rate {
			continue // same rate, larger-or-equal burst: dominated
		}
		for len(hull) > 0 {
			top := hull[len(hull)-1]
			if l.Burst >= top.Burst {
				// Flatter and no cheaper at t=0 ... still wins eventually
				// (strictly smaller rate), at the crossing below.
				x := (l.Burst - top.Burst) / (top.Rate - l.Rate)
				if x > start[len(start)-1] {
					hull = append(hull, l)
					start = append(start, x)
					break
				}
				// Crossing at or before top's own start: top never attains
				// the minimum; pop and retry against the previous line.
				hull = hull[:len(hull)-1]
				start = start[:len(start)-1]
				continue
			}
			// Cheaper at t=0 and flatter: top is dominated everywhere.
			hull = hull[:len(hull)-1]
			start = start[:len(start)-1]
		}
		if len(hull) == 0 {
			hull = append(hull, l)
			start = append(start, 0)
		}
	}
	segs := make([]Segment, len(hull))
	for i, l := range hull {
		segs[i] = Segment{X: start[i], Y: l.Rate*start[i] + l.Burst, Slope: l.Rate}
	}
	return newOwned(0, segs)
}

// Staircase returns the packetized-flow staircase arrival curve
//
//	f(t) = height * (floor(t/period) + 1)  for t > 0,  f(0) = 0,
//
// i.e. one packet of size height released every period, with the whole first
// packet available immediately after 0. The explicit staircase is kept for n
// steps; afterwards the curve continues with the average slope
// height/period (a conservative, wide-sense-increasing continuation).
// period and height must be positive.
func Staircase(height, period float64, n int) Curve {
	if height <= 0 || period <= 0 {
		panic("curve: Staircase needs positive height and period")
	}
	if n < 1 {
		n = 1
	}
	segs := make([]Segment, 0, n+1)
	for k := 0; k < n; k++ {
		segs = append(segs, Segment{float64(k) * period, float64(k+1) * height, 0})
	}
	segs = append(segs, Segment{float64(n) * period, float64(n+1) * height, height / period})
	return newOwned(0, segs)
}

// FromPoints builds a continuous curve passing through the given (x, y)
// points, linearly interpolated, continuing after the last point with
// finalSlope. Points must be sorted by strictly increasing x with x[0] == 0
// and non-decreasing y.
func FromPoints(xs, ys []float64, finalSlope float64) Curve {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("curve: FromPoints needs matching non-empty xs, ys")
	}
	segs := make([]Segment, len(xs))
	for i := range xs {
		var slope float64
		if i+1 < len(xs) {
			dx := xs[i+1] - xs[i]
			if dx <= 0 {
				panic("curve: FromPoints xs must be strictly increasing")
			}
			slope = (ys[i+1] - ys[i]) / dx
		} else {
			slope = finalSlope
		}
		segs[i] = Segment{xs[i], ys[i], slope}
	}
	return newOwned(ys[0], segs)
}

// --- Inspection -----------------------------------------------------------

// Value returns f(t). For t < 0 it returns 0 (the conventional extension in
// network calculus).
func (c Curve) Value(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 {
		return c.y0
	}
	s := c.segAt(t)
	return s.Y + s.Slope*(t-s.X)
}

// ValueRight returns the right limit f(t+).
func (c Curve) ValueRight(t float64) float64 {
	if t < 0 {
		return 0
	}
	s := c.segAt(math.Nextafter(t, math.Inf(1)))
	if t >= s.X {
		return s.Y + s.Slope*(t-s.X)
	}
	return s.Y
}

// ValueLeft returns the left limit f(t-) for t > 0, and f(0) for t <= 0.
func (c Curve) ValueLeft(t float64) float64 {
	if t <= 0 {
		return c.y0
	}
	// Find the segment strictly containing points < t.
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].X >= t })
	// segs[i-1] covers just left of t (i >= 1 because segs[0].X == 0 < t).
	s := c.segs[i-1]
	return s.Y + s.Slope*(t-s.X)
}

// segAt returns the segment covering t (t > 0).
func (c Curve) segAt(t float64) Segment {
	i := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].X > t })
	return c.segs[i-1]
}

// AtZero returns f(0).
func (c Curve) AtZero() float64 { return c.y0 }

// Burst returns f(0+), the instantaneous jump at the origin (the burst b of
// a leaky-bucket arrival curve).
func (c Curve) Burst() float64 { return c.segs[0].Y }

// UltimateSlope returns the slope of the final (infinite) segment — the
// long-run rate of the curve.
func (c Curve) UltimateSlope() float64 { return c.segs[len(c.segs)-1].Slope }

// UltimateAffine returns (rate, offset) such that f(t) = rate*t + offset for
// all t >= the last breakpoint.
func (c Curve) UltimateAffine() (rate, offset float64) {
	s := c.segs[len(c.segs)-1]
	return s.Slope, s.Y - s.Slope*s.X
}

// LastBreak returns the abscissa of the last breakpoint.
func (c Curve) LastBreak() float64 { return c.segs[len(c.segs)-1].X }

// Latency returns the largest T such that f(t) = 0 for all t <= T (the
// latency of a rate-latency service curve). It returns 0 when f(0+) > 0 and
// +inf for the identically-zero curve.
func (c Curve) Latency() float64 {
	if c.segs[0].Y > 0 {
		return 0
	}
	for _, s := range c.segs {
		if s.Y > 0 {
			// Jump to positive value at s.X: latency is just below s.X,
			// report s.X.
			return s.X
		}
		if s.Slope > 0 {
			return s.X
		}
	}
	return math.Inf(1)
}

// ZeroAtOrigin returns a copy of the curve with the value at t = 0 forced to
// zero. Min-plus deconvolution yields curves with f(0) = sup(f-g) > 0; when
// such a curve is reinterpreted as an arrival constraint (which only ever
// applies over positive-length windows), the conventional normalization is
// f(0) = 0.
func (c Curve) ZeroAtOrigin() Curve {
	if c.y0 == 0 {
		return c // immutable, digest unchanged: safe to share
	}
	return newOwned(0, append([]Segment(nil), c.segs...))
}

// Segments returns a copy of the curve's segment list.
func (c Curve) Segments() []Segment { return append([]Segment(nil), c.segs...) }

// Breakpoints returns the abscissas of all breakpoints (including 0).
func (c Curve) Breakpoints() []float64 {
	xs := make([]float64, len(c.segs))
	for i, s := range c.segs {
		xs[i] = s.X
	}
	return xs
}

// appendBreakpoints appends the breakpoint abscissas to dst and returns it —
// the allocation-free sibling of Breakpoints for scratch-buffer callers.
func (c Curve) appendBreakpoints(dst []float64) []float64 {
	for _, s := range c.segs {
		dst = append(dst, s.X)
	}
	return dst
}

// IsConcave reports whether the curve is concave on [0, inf) (slopes
// non-increasing, no upward jumps except possibly at the origin).
func (c Curve) IsConcave() bool {
	for i := 1; i < len(c.segs); i++ {
		p, s := c.segs[i-1], c.segs[i]
		if s.Slope > p.Slope+absEps(p.Slope) {
			return false
		}
		endV := p.Y + p.Slope*(s.X-p.X)
		if s.Y > endV+absEps(endV) { // interior upward jump breaks concavity
			return false
		}
	}
	return true
}

// IsConvex reports whether the curve is convex on [0, inf): slopes
// non-decreasing, continuous everywhere including the origin (y0 == f(0+)).
func (c Curve) IsConvex() bool {
	if c.segs[0].Y > c.y0+absEps(c.y0) {
		return false
	}
	for i := 1; i < len(c.segs); i++ {
		p, s := c.segs[i-1], c.segs[i]
		if s.Slope < p.Slope-absEps(p.Slope) {
			return false
		}
		endV := p.Y + p.Slope*(s.X-p.X)
		if s.Y > endV+absEps(endV) {
			return false
		}
	}
	return true
}

// Equal reports whether two curves agree to within tolerance at all
// breakpoints of both and in their ultimate affine behavior. Equal digests
// short-circuit to true: they mean structurally identical normalized
// representations (up to the accepted 2^-64 collision risk).
func (c Curve) Equal(d Curve) bool {
	if c.digest == d.digest && len(c.segs) > 0 && len(d.segs) > 0 {
		return true
	}
	if math.Abs(c.y0-d.y0) > absEps(c.y0) {
		return false
	}
	for _, x := range append(c.Breakpoints(), d.Breakpoints()...) {
		cv, dv := c.Value(x), d.Value(x)
		if math.Abs(cv-dv) > 1e-6*(1+math.Abs(cv)) {
			return false
		}
		cv, dv = c.ValueRight(x), d.ValueRight(x)
		if math.Abs(cv-dv) > 1e-6*(1+math.Abs(cv)) {
			return false
		}
	}
	cr, co := c.UltimateAffine()
	dr, do := d.UltimateAffine()
	return math.Abs(cr-dr) <= 1e-6*(1+math.Abs(cr)) && math.Abs(co-do) <= 1e-6*(1+math.Abs(co))
}

// String renders a compact human-readable description.
func (c Curve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "curve{f(0)=%g", c.y0)
	for _, s := range c.segs {
		fmt.Fprintf(&b, "; [%g: %g +%g·t]", s.X, s.Y, s.Slope)
	}
	b.WriteString("}")
	return b.String()
}

// Sample evaluates the curve at n+1 evenly spaced points on [0, horizon],
// returning parallel xs, ys slices (useful for plotting/export).
func (c Curve) Sample(horizon float64, n int) (xs, ys []float64) {
	if n < 1 {
		n = 1
	}
	xs = make([]float64, n+1)
	ys = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		x := horizon * float64(i) / float64(n)
		xs[i] = x
		ys[i] = c.Value(x)
	}
	return xs, ys
}
