package curve

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsInf(want, 1) {
		if !math.IsInf(got, 1) {
			t.Errorf("%s: got %v, want +Inf", msg, got)
		}
		return
	}
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestAffineValues(t *testing.T) {
	a := Affine(2, 5) // alpha(t) = 2t+5 for t>0
	if v := a.Value(0); v != 0 {
		t.Errorf("alpha(0) = %v, want 0", v)
	}
	approx(t, a.Value(3), 11, 1e-12, "alpha(3)")
	approx(t, a.Burst(), 5, 1e-12, "burst")
	approx(t, a.UltimateSlope(), 2, 1e-12, "rate")
	if !a.IsConcave() {
		t.Error("leaky bucket must be concave")
	}
	if a.IsConvex() {
		t.Error("leaky bucket with burst is not convex")
	}
	if a.Value(-1) != 0 {
		t.Error("negative time must give 0")
	}
}

func TestRateLatencyValues(t *testing.T) {
	b := RateLatency(4, 3)
	approx(t, b.Value(0), 0, 0, "beta(0)")
	approx(t, b.Value(3), 0, 0, "beta(T)")
	approx(t, b.Value(5), 8, 1e-12, "beta(5)")
	approx(t, b.Latency(), 3, 1e-12, "latency")
	if !b.IsConvex() {
		t.Error("rate-latency must be convex")
	}
	if b.IsConcave() {
		t.Error("rate-latency with T>0 is not concave")
	}
	// Zero latency degenerates to a line.
	l := RateLatency(4, 0)
	approx(t, l.Value(2), 8, 1e-12, "line value")
	if !l.IsConcave() || !l.IsConvex() {
		t.Error("a line is both concave and convex")
	}
}

func TestZeroAndConstant(t *testing.T) {
	z := Zero()
	approx(t, z.Value(10), 0, 0, "zero")
	if z.Latency() != math.Inf(1) {
		t.Errorf("zero latency = %v", z.Latency())
	}
	c := Constant(7)
	approx(t, c.Value(0), 0, 0, "const at 0")
	approx(t, c.Value(0.001), 7, 1e-12, "const at 0+")
	approx(t, c.ValueRight(0), 7, 1e-12, "right limit at 0")
	approx(t, c.ValueLeft(5), 7, 1e-12, "left limit")
}

func TestStep(t *testing.T) {
	s := Step(10, 4)
	approx(t, s.Value(3.999), 0, 0, "before step")
	approx(t, s.Value(4), 10, 0, "at step (right-continuous)")
	approx(t, s.ValueLeft(4), 0, 0, "left limit at step")
	approx(t, s.Value(100), 10, 0, "after")
	s0 := Step(3, 0)
	approx(t, s0.Value(1), 3, 0, "step at 0 = constant")
}

func TestStaircase(t *testing.T) {
	sc := Staircase(100, 2, 3)
	approx(t, sc.Value(0), 0, 0, "s(0)")
	approx(t, sc.Value(0.5), 100, 0, "first packet")
	approx(t, sc.Value(2), 200, 0, "second packet at breakpoint")
	approx(t, sc.Value(3.9), 200, 0, "still second")
	approx(t, sc.Value(4), 300, 0, "third")
	approx(t, sc.UltimateSlope(), 50, 1e-12, "average slope")
	// After n steps, the curve follows the average rate.
	approx(t, sc.Value(8), 400+50*(8-6), 1e-9, "ray")
}

func TestStaircasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Staircase(0, 1, 3)
}

func TestFromPoints(t *testing.T) {
	c := FromPoints([]float64{0, 2, 5}, []float64{0, 4, 10}, 3)
	approx(t, c.Value(1), 2, 1e-12, "interp 1")
	approx(t, c.Value(3.5), 7, 1e-12, "interp 2")
	approx(t, c.Value(7), 16, 1e-12, "final ray")
}

func TestLatencyOfJump(t *testing.T) {
	s := Step(5, 2)
	approx(t, s.Latency(), 2, 1e-12, "step latency")
	a := Affine(1, 1)
	approx(t, a.Latency(), 0, 0, "burst latency")
}

func TestInverseLower(t *testing.T) {
	b := RateLatency(4, 3)
	approx(t, b.InverseLower(0), 0, 0, "inv(0)")
	approx(t, b.InverseLower(8), 5, 1e-12, "inv(8)")
	a := Affine(2, 5)
	approx(t, a.InverseLower(5), 0, 0, "inv at burst")
	approx(t, a.InverseLower(4), 0, 0, "inv below burst")
	approx(t, a.InverseLower(9), 2, 1e-12, "inv above burst")
	z := Constant(3)
	if !math.IsInf(z.InverseLower(4), 1) {
		t.Error("inverse above bounded curve must be +Inf")
	}
	s := Step(10, 4)
	approx(t, s.InverseLower(7), 4, 1e-12, "jump inverse")
}

func TestMinMax(t *testing.T) {
	a := Affine(1, 10) // t + 10
	b := Affine(3, 2)  // 3t + 2
	m := Min(a, b)
	// Crossing at t = 4.
	approx(t, m.Value(2), 8, 1e-9, "min before crossing (b)")
	approx(t, m.Value(4), 14, 1e-9, "min at crossing")
	approx(t, m.Value(10), 20, 1e-9, "min after crossing (a)")
	approx(t, m.UltimateSlope(), 1, 1e-9, "min ultimate slope")
	if !m.IsConcave() {
		t.Error("min of concave is concave")
	}
	x := Max(a, b)
	approx(t, x.Value(2), 12, 1e-9, "max before crossing (a)")
	approx(t, x.Value(10), 32, 1e-9, "max after crossing (b)")
	approx(t, x.UltimateSlope(), 3, 1e-9, "max ultimate slope")
}

func TestMinWithJumps(t *testing.T) {
	a := Affine(1, 5)
	z := Zero()
	m := Min(a, z)
	if !m.Equal(Zero()) {
		t.Errorf("min with zero = %v", m)
	}
	x := Max(a, z)
	if !x.Equal(a) {
		t.Errorf("max with zero = %v", x)
	}
}

func TestAddSub(t *testing.T) {
	a := Affine(2, 3)
	b := RateLatency(5, 1)
	s := Add(a, b)
	approx(t, s.Value(2), 2*2+3+5*1, 1e-9, "sum at 2")
	approx(t, s.UltimateSlope(), 7, 1e-9, "sum slope")
	d := Sub(s, b)
	if !d.Equal(a) {
		t.Errorf("(a+b)-b != a: %v vs %v", d, a)
	}
}

func TestScale(t *testing.T) {
	a := Affine(2, 3)
	s := Scale(a, 2.5)
	approx(t, s.Value(2), 2.5*(7), 1e-9, "scaled")
	st := ScaleTime(a, 2)
	approx(t, st.Value(4), a.Value(2), 1e-9, "time-scaled")
}

func TestShiftRight(t *testing.T) {
	a := Affine(2, 3)
	s := ShiftRight(a, 5)
	approx(t, s.Value(4), 0, 0, "before shift")
	approx(t, s.Value(7), a.Value(2), 1e-9, "after shift")
	if got := ShiftRight(a, 0); !got.Equal(a) {
		t.Error("shift by 0 must be identity")
	}
}

func TestShiftLeft(t *testing.T) {
	b := RateLatency(4, 3)
	s := ShiftLeft(b, 2)
	approx(t, s.Value(0), 0, 0, "shifted origin")
	approx(t, s.Value(1), 0, 0, "still in latency")
	approx(t, s.Value(3), 8, 1e-9, "past latency")
	s2 := ShiftLeft(b, 5)
	approx(t, s2.Value(0), 8, 1e-9, "origin past latency")
	approx(t, s2.Value(2), 16, 1e-9, "slope continues")
	if got := ShiftLeft(b, 0); !got.Equal(b) {
		t.Error("shift by 0 must be identity")
	}
}

func TestAddBurst(t *testing.T) {
	a := Affine(2, 3)
	p := AddBurst(a, 4) // packetizer transform
	approx(t, p.Value(0), 0, 0, "still 0 at origin")
	approx(t, p.Burst(), 7, 1e-9, "burst grew")
	approx(t, p.Value(2), 11, 1e-9, "value")
}

func TestSubConstantPositive(t *testing.T) {
	b := RateLatency(4, 3)
	p := SubConstantPositive(b, 8) // [beta - 8]+ = 4(t-5)+
	want := RateLatency(4, 5)
	if !p.Equal(want) {
		t.Errorf("[beta-l]+ = %v, want %v", p, want)
	}
	// Subtracting nothing is the identity.
	if got := SubConstantPositive(b, 0); !got.Equal(b) {
		t.Error("subtract 0 must be identity")
	}
	// Subtracting below a burst clips at the origin.
	a := Affine(2, 5)
	q := SubConstantPositive(a, 3)
	approx(t, q.Burst(), 2, 1e-9, "clipped burst")
	approx(t, q.Value(1), 4, 1e-9, "value after clip")
	// Subtracting more than the curve ever reaches gives zero.
	c := Constant(3)
	if got := SubConstantPositive(c, 5); !got.Equal(Zero()) {
		t.Errorf("unreachable subtraction = %v", got)
	}
}

func TestEqual(t *testing.T) {
	if !Affine(2, 3).Equal(Affine(2, 3)) {
		t.Error("identical curves must be Equal")
	}
	if Affine(2, 3).Equal(Affine(2, 4)) {
		t.Error("different bursts must differ")
	}
	if Affine(2, 3).Equal(Affine(3, 3)) {
		t.Error("different rates must differ")
	}
}

func TestNewValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"no segments":    func() { New(0, nil) },
		"nonzero start":  func() { New(0, []Segment{{1, 0, 1}}) },
		"negative slope": func() { New(0, []Segment{{0, 0, -1}}) },
		"downward jump":  func() { New(0, []Segment{{0, 5, 1}, {2, 3, 1}}) },
		"origin above":   func() { New(5, []Segment{{0, 1, 1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNormalizeMergesCollinear(t *testing.T) {
	c := New(0, []Segment{{0, 0, 2}, {3, 6, 2}, {5, 10, 2}})
	if len(c.Segments()) != 1 {
		t.Errorf("collinear segments not merged: %v", c)
	}
}

func TestSample(t *testing.T) {
	a := Affine(2, 3)
	xs, ys := a.Sample(10, 5)
	if len(xs) != 6 || len(ys) != 6 {
		t.Fatalf("lengths %d %d", len(xs), len(ys))
	}
	approx(t, xs[5], 10, 1e-12, "last x")
	approx(t, ys[5], 23, 1e-9, "last y")
	approx(t, ys[0], 0, 0, "first y is f(0)")
}

func TestStringNonEmpty(t *testing.T) {
	if Affine(1, 2).String() == "" {
		t.Error("String must not be empty")
	}
}
