package curve

import (
	"math"
	"math/rand"
	"testing"
)

// This file checks the fundamental laws of the min-plus algebra on the
// closed-form curve families, sampled pointwise:
//
//	commutativity       f ⊗ g = g ⊗ f
//	associativity       (f ⊗ g) ⊗ h = f ⊗ (g ⊗ h)
//	neutrality of δ_0   shift by 0 is identity
//	isotonicity         f <= f' implies f ⊗ g <= f' ⊗ g
//	duality             (f ⊘ g) <= h  iff  f <= h ⊗ g (checked one way)
//	output-bound law    backlog/delay from alpha* match direct bounds

func sampleLE(t *testing.T, f, g Curve, horizon float64, msg string) {
	t.Helper()
	for i := 0; i <= 300; i++ {
		x := horizon * float64(i) / 300
		fv, gv := f.Value(x), g.Value(x)
		if fv > gv+1e-6*(1+math.Abs(gv)) {
			t.Fatalf("%s: f(%g)=%g > g(%g)=%g", msg, x, fv, x, gv)
		}
	}
}

func randConcave(rng *rand.Rand) Curve {
	a := Affine(0.5+4*rng.Float64(), 10*rng.Float64())
	if rng.Intn(2) == 0 {
		a = Min(a, Affine(0.2+rng.Float64(), 3+10*rng.Float64()))
	}
	return a
}

func randConvex(rng *rand.Rand) Curve {
	return RateLatency(0.5+5*rng.Float64(), 4*rng.Float64())
}

func TestLawCommutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for k := 0; k < 20; k++ {
		f, g := randConcave(rng), randConcave(rng)
		if !Convolve(f, g).Equal(Convolve(g, f)) {
			t.Fatalf("concave commutativity failed: %v %v", f, g)
		}
		cf, cg := randConvex(rng), randConvex(rng)
		if !Convolve(cf, cg).Equal(Convolve(cg, cf)) {
			t.Fatalf("convex commutativity failed: %v %v", cf, cg)
		}
	}
}

func TestLawAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for k := 0; k < 20; k++ {
		f, g, h := randConvex(rng), randConvex(rng), randConvex(rng)
		l := Convolve(Convolve(f, g), h)
		r := Convolve(f, Convolve(g, h))
		if !l.Equal(r) {
			t.Fatalf("convex associativity failed: %v %v %v", f, g, h)
		}
		a, b, c := randConcave(rng), randConcave(rng), randConcave(rng)
		l = Convolve(Convolve(a, b), c)
		r = Convolve(a, Convolve(b, c))
		if !l.Equal(r) {
			t.Fatalf("concave associativity failed: %v %v %v", a, b, c)
		}
	}
}

func TestLawShiftNeutrality(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for k := 0; k < 10; k++ {
		f := randConcave(rng)
		if !ShiftRight(f, 0).Equal(f) || !ShiftLeft(f, 0).Equal(f) {
			t.Fatal("zero shift must be identity")
		}
		// Shift round trip: left(right(f, T), T) = f for continuous f... the
		// right-shift introduces a flat prefix that the left shift removes.
		T := rng.Float64() * 3
		back := ShiftLeft(ShiftRight(f, T), T)
		for i := 0; i <= 100; i++ {
			x := 20 * float64(i) / 100
			if x == 0 {
				continue // the origin jump may be clipped by the round trip
			}
			if math.Abs(back.Value(x)-f.Value(x)) > 1e-6*(1+f.Value(x)) {
				t.Fatalf("shift round trip failed at %g", x)
			}
		}
	}
}

func TestLawIsotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for k := 0; k < 20; k++ {
		f := randConcave(rng)
		fUp := AddBurst(f, 1+rng.Float64()) // f' >= f
		g := randConvex(rng)
		sampleLE(t, Convolve(f, g), Convolve(fUp, g), 20, "isotonicity of conv")
	}
}

// Duality (one direction): h := f ⊘ g satisfies f <= h ⊗ g.
func TestLawDeconvolutionDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for k := 0; k < 20; k++ {
		f := randConcave(rng)
		g := RateLatency(f.UltimateSlope()+0.5+3*rng.Float64(), 3*rng.Float64())
		h, ok := Deconvolve(f, g)
		if !ok {
			t.Fatal("bounded deconvolution expected")
		}
		// f <= h ⊗ g pointwise.
		conv := Convolve(h.ZeroAtOrigin(), g)
		// h(0)>0 was clipped; compensate by comparing against conv + h(0)
		// only when needed: the duality uses the exact h, so evaluate the
		// convolution with the exact origin value via direct sampling.
		for i := 1; i <= 200; i++ {
			x := 20 * float64(i) / 200
			// (h ⊗ g)(x) with exact h: inf over grid.
			best := math.Inf(1)
			for j := 0; j <= 200; j++ {
				s := x * float64(j) / 200
				if v := h.Value(s) + g.Value(x-s); v < best {
					best = v
				}
			}
			if f.Value(x) > best+1e-6*(1+best) {
				t.Fatalf("duality violated at %g: f=%g > (f⊘g)⊗g=%g", x, f.Value(x), best)
			}
			_ = conv
		}
	}
}

// The output bound alpha* = alpha ⊘ beta yields the same backlog bound as
// the direct vertical deviation: alpha*(0) = vdev(alpha, beta).
func TestLawOutputBoundBacklogConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for k := 0; k < 20; k++ {
		alpha := randConcave(rng)
		beta := RateLatency(alpha.UltimateSlope()+0.5+2*rng.Float64(), 3*rng.Float64())
		out, ok := Deconvolve(alpha, beta)
		if !ok {
			t.Fatal("bounded")
		}
		vd := VDev(alpha, beta)
		if math.Abs(out.AtZero()-vd) > 1e-6*(1+math.Abs(vd)) {
			t.Fatalf("alpha*(0)=%g != vdev=%g", out.AtZero(), vd)
		}
	}
}

// Concatenation dominance: serving through two nodes is never better than
// the bottleneck alone — beta1 ⊗ beta2 <= min(beta1, beta2).
func TestLawConcatenationDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for k := 0; k < 20; k++ {
		b1, b2 := randConvex(rng), randConvex(rng)
		sampleLE(t, Convolve(b1, b2), Min(b1, b2), 25, "concatenation dominance")
	}
}

// Packetizer sandwich: beta' <= beta <= gamma' and alpha <= alpha'.
func TestLawPacketizerSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	for k := 0; k < 20; k++ {
		beta := randConvex(rng)
		alpha := randConcave(rng)
		l := 1 + 3*rng.Float64()
		sampleLE(t, SubConstantPositive(beta, l), beta, 25, "beta' <= beta")
		sampleLE(t, alpha, AddBurst(alpha, l), 25, "alpha <= alpha'")
	}
}
