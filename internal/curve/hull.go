package curve

import "math"

// ConcaveHull returns the least concave majorant of c: the smallest concave
// curve dominating c pointwise on [0, ∞). The value at exactly t = 0 is
// kept (concavity in this package permits a jump at the origin), so the
// hull of an arrival envelope is again a valid — if looser — envelope:
// any flow bounded by c is bounded by ConcaveHull(c).
//
// This is what makes residual-service subtraction total: a non-concave
// cross envelope (a staircase, a composite of packetized flows) can always
// be replaced by its hull before subtracting, yielding a sound residual
// instead of a starvation verdict.
func ConcaveHull(c Curve) Curve {
	if c.IsConcave() {
		return c
	}
	return memoUnary(opConcaveHull, c, 0, func() Curve { return concaveHull(c) })
}

func concaveHull(c Curve) Curve {
	// Candidate vertices are the segment start points (X_i, Y_i). Interior
	// end-values need no separate points: the curve is wide-sense
	// increasing, so a segment's end value is dominated by the next
	// segment's Y, and a concave function dominating two points dominates
	// the chord (hence the affine piece) between them.
	type pt struct{ x, y float64 }
	pts := make([]pt, len(c.segs))
	for i, s := range c.segs {
		pts[i] = pt{s.X, s.Y}
	}
	slope := func(a, b pt) float64 { return (b.y - a.y) / (b.x - a.x) }

	// Upper-hull Graham scan, left to right. The first point (the origin
	// burst) is never popped, so hull(0+) = c(0+).
	hull := pts[:0]
	for _, p := range pts {
		for len(hull) >= 2 && slope(hull[len(hull)-2], hull[len(hull)-1]) <= slope(hull[len(hull)-1], p) {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Final ray: treat the ultimate slope as a vertex at infinity. Each pop
	// moves to a vertex whose ray intercept (y - s∞·x) is no smaller, so
	// the surviving vertex's ray dominates the popped vertices and the
	// curve's own final ray.
	sInf := c.UltimateSlope()
	for len(hull) >= 2 && slope(hull[len(hull)-2], hull[len(hull)-1]) <= sInf {
		hull = hull[:len(hull)-1]
	}

	segs := make([]Segment, len(hull))
	for i, v := range hull {
		sl := sInf
		if i+1 < len(hull) {
			sl = slope(v, hull[i+1])
		}
		segs[i] = Segment{v.x, v.y, math.Max(0, sl)}
	}
	return newOwned(c.y0, segs)
}
