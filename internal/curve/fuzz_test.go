package curve

import (
	"math"
	"testing"
)

// buildFuzzCurve turns raw fuzz bytes into a valid wide-sense-increasing
// curve: each byte pair contributes a segment length and slope; every third
// byte occasionally adds an upward jump.
func buildFuzzCurve(data []byte) Curve {
	x, y := 0.0, 0.0
	segs := []Segment{}
	for i := 0; i+1 < len(data) && len(segs) < 12; i += 2 {
		slope := float64(data[i]%40) / 4
		segs = append(segs, Segment{x, y, slope})
		dx := 0.25 + float64(data[i+1]%32)/8
		y += slope * dx
		if data[i]%5 == 0 {
			y += float64(data[i+1]%16) / 4 // upward jump
		}
		x += dx
	}
	if len(segs) == 0 {
		return Affine(1, float64(len(data)))
	}
	return New(0, segs)
}

// FuzzCurveOps: random curve pairs must keep every operation's invariants —
// results monotone, convolution below both shifted operands, deconvolution
// above the arrival, deviations non-negative.
func FuzzCurveOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, []byte{7, 8, 9, 10})
	f.Add([]byte{0, 0}, []byte{255, 255, 13, 40})
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80}, []byte{5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a := buildFuzzCurve(da)
		b := buildFuzzCurve(db)

		checkMonotone := func(name string, c Curve) {
			prev := c.AtZero()
			for i := 0; i <= 80; i++ {
				x := 25 * float64(i) / 80
				v := c.Value(x)
				if v < prev-1e-6*(1+math.Abs(prev)) {
					t.Fatalf("%s not monotone at %g: %g < %g", name, x, v, prev)
				}
				prev = v
			}
		}

		m := Min(a, b)
		checkMonotone("min", m)
		x := Max(a, b)
		checkMonotone("max", x)
		s := Add(a, b)
		checkMonotone("add", s)
		conv := Convolve(a, b)
		checkMonotone("conv", conv)

		// Differential: the O(n+m) merge kernel must agree with the
		// sort-based reference on every fuzzed pair.
		horizon := 1.5*math.Max(a.LastBreak(), b.LastBreak()) + 1
		for _, tc := range []struct {
			name string
			op   binOp
			got  Curve
		}{{"min", binMin, m}, {"max", binMax, x}, {"add", binAdd, s}} {
			ref := combineSorted(a, b, tc.op)
			for i := 0; i <= 120; i++ {
				xx := horizon * float64(i) / 120
				gv, rv := tc.got.Value(xx), ref.Value(xx)
				if math.Abs(gv-rv) > 1e-6*(1+math.Abs(gv)+math.Abs(rv)) {
					t.Fatalf("%s kernel diverges from reference at %g: %g vs %g",
						tc.name, xx, gv, rv)
				}
			}
		}

		for i := 0; i <= 40; i++ {
			tt := 20 * float64(i) / 40
			if m.Value(tt) > math.Min(a.Value(tt), b.Value(tt))+1e-6 {
				t.Fatal("min above operands")
			}
			if conv.Value(tt) > a.Value(tt)+b.Burst()+b.AtZero()+1e-6 &&
				conv.Value(tt) > b.Value(tt)+a.Burst()+a.AtZero()+1e-6 {
				// conv <= min over splits; s=0 and s=t splits bound it.
				if conv.Value(tt) > a.AtZero()+b.Value(tt)+1e-6 && conv.Value(tt) > b.AtZero()+a.Value(tt)+1e-6 {
					t.Fatalf("conv above trivial splits at %g", tt)
				}
			}
		}

		if VDev(a, b) < -1e-9 && !math.IsInf(VDev(a, b), 1) {
			// vdev can be negative if a < b everywhere? sup(a-b) could be
			// negative; only require it is not NaN.
			if math.IsNaN(VDev(a, b)) {
				t.Fatal("vdev NaN")
			}
		}
		if d := HDev(a, b); d < 0 || math.IsNaN(d) {
			t.Fatalf("hdev invalid: %v", d)
		}
		if out, ok := Deconvolve(a, b); ok {
			checkMonotone("deconv", out)
			for i := 1; i <= 40; i++ {
				tt := 20 * float64(i) / 40
				if out.Value(tt) < a.Value(tt)-b.AtZero()-1e-6*(1+a.Value(tt)) {
					t.Fatalf("deconv below arrival at %g", tt)
				}
			}
		}
	})
}
